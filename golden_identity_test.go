package gpusecmem

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"sort"
	"testing"
)

// The catalogue-wide identity net for the optimized cycle loop: every
// (scheme, benchmark) pair is simulated at a fixed cycle budget and the
// sha256 of its canonical Result JSON compared against digests captured
// on the pre-optimization tree (testdata/golden_digests.json). Any
// change to a single output bit — a stat, a counter, an IPC — flips a
// digest and fails the test.
//
// After an *intentional* behavioral change, regenerate with:
//
//	go test -run TestGoldenResultDigests -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_digests.json from the current tree")

const (
	goldenDigestPath = "testdata/golden_digests.json"
	goldenCycles     = 6000
)

// goldenFile is the digest archive schema.
type goldenFile struct {
	Cycles  uint64            `json:"cycles"`
	Digests map[string]string `json:"digests"`
}

// goldenDigest canonicalizes one run to a hex sha256. shards selects
// the engine: 0 is sequential, >1 the parallel partition engine —
// which must not change a single digest bit.
func goldenDigest(t *testing.T, scheme, bench string, shards int) string {
	t.Helper()
	cfg, err := ConfigForScheme(scheme)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxCycles = goldenCycles
	cfg.Shards = shards
	res, err := Simulate(cfg, bench)
	if err != nil {
		t.Fatalf("%s/%s: %v", scheme, bench, err)
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// shortPairs is the -short subset: both encryption families, the
// insecure baseline, and workloads spanning bandwidth-bound to
// compute-bound.
var shortPairs = map[string]bool{
	"baseline/fdtd2d":       true,
	"ctr_mac_bmt/fdtd2d":    true,
	"ctr_mac_bmt/heartwall": true,
	"ctr_bmt/lbm":           true,
	"direct_mac_mt/srad_v2": true,
	"unified/bfs":           true,
}

func TestGoldenResultDigests(t *testing.T) {
	want := goldenFile{Cycles: goldenCycles, Digests: map[string]string{}}
	if !*updateGolden {
		raw, err := os.ReadFile(goldenDigestPath)
		if err != nil {
			t.Fatalf("missing golden digests (generate with -update-golden): %v", err)
		}
		if err := json.Unmarshal(raw, &want); err != nil {
			t.Fatal(err)
		}
		if want.Cycles != goldenCycles {
			t.Fatalf("golden file captured at %d cycles, test runs %d — regenerate with -update-golden",
				want.Cycles, goldenCycles)
		}
	}

	got := map[string]string{}
	for _, scheme := range SchemeNames() {
		for _, bench := range Benchmarks() {
			name := scheme + "/" + bench
			if testing.Short() && !shortPairs[name] {
				continue
			}
			scheme, bench := scheme, bench
			t.Run(name, func(t *testing.T) {
				d := goldenDigest(t, scheme, bench, 0)
				got[name] = d
				if *updateGolden {
					return
				}
				w, ok := want.Digests[name]
				if !ok {
					t.Fatalf("no golden digest for %s — regenerate with -update-golden", name)
				}
				if d != w {
					t.Errorf("result digest changed: got %s want %s (output is no longer byte-identical to the pre-optimization tree)", d, w)
				}
			})
		}
	}

	if *updateGolden {
		if testing.Short() {
			t.Fatal("-update-golden needs the full catalogue; drop -short")
		}
		out := goldenFile{Cycles: goldenCycles, Digests: got}
		raw, err := json.MarshalIndent(&out, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		raw = append(raw, '\n')
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenDigestPath, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		t.Logf("wrote %s (%d digests)", goldenDigestPath, len(keys))
	}
}
