module gpusecmem

go 1.22
