# Development entry points. `make verify` is the tier-1 gate — CI and
# contributors run the same thing.

GO ?= go

.PHONY: verify vet doc-lint build test race race-full smoke bench gobench results audit fuzz daemon perf-gate

## verify: vet + doc-lint + build + full test suite + CLI smoke run (tier-1 gate)
verify: vet doc-lint build test smoke

vet:
	$(GO) vet ./...

## doc-lint: every package documented; concurrency-sensitive packages
## must state their concurrency/aliasing contract (see cmd/doclint)
doc-lint:
	$(GO) run ./cmd/doclint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: concurrency suite under the race detector (short cycle budget)
race:
	$(GO) test -race -short ./...

## race-full: the whole suite under the race detector (CI runs this on
## a weekly schedule; expect tens of minutes)
race-full:
	$(GO) test -race ./...

## daemon: serve results over HTTP with a local persistent cache
## (catalogue, ad-hoc runs, experiment tables; see README)
daemon:
	$(GO) run ./cmd/secmemd -addr localhost:8080 -cache-dir .cache/results

## smoke: fastest end-to-end CLI exercise (static table, no simulation)
smoke:
	$(GO) run ./cmd/experiments -exp table1

## bench: tracked simulator-throughput baseline — measures cycles/sec
## and steady-state allocations on a fixed scheme x benchmark grid
## (including sharded @s4 points on the parallel partition engine) and
## writes BENCH_PR9.json with the PR6 reference embedded.
bench:
	$(GO) run ./cmd/perfbench -baseline BENCH_PR6.json -out BENCH_PR9.json

## perf-gate: quick perfbench run diffed against the committed
## BENCH_PR9.json baseline — exits nonzero when any case regresses
## past the threshold (the CI regression gate; thresholds are loose
## because baselines come from a different host).
perf-gate:
	$(GO) run ./cmd/perfbench -quick -out /tmp/perfgate.json -compare BENCH_PR9.json -compare-threshold 0.25

## gobench: package micro-benchmarks via go test
gobench:
	$(GO) test -bench=. -benchmem

## results: regenerate the committed results/ snapshot (see README)
results:
	$(GO) run ./cmd/experiments -exp all -cycles 24000 -format md -out results -progress

## audit: run every simulation with the invariant auditors enabled
## (request conservation, MSHR accounting, queue bounds) — slower, but
## any bookkeeping bug aborts the sweep with an *AuditError.
audit:
	$(GO) test -run 'TestAuditorsPassOnCatalogue|TestWatchdog' ./internal/sim
	$(GO) run ./cmd/experiments -exp fig3 -cycles 8000 -audit -progress > /dev/null

## fuzz: short fuzzing smoke over the crypto and secmem codecs
fuzz:
	$(GO) test -run Fuzz -fuzz FuzzCounterModeRoundTrip -fuzztime 10s ./internal/secmem
	$(GO) test -run Fuzz -fuzz FuzzAESAgainstStdlib -fuzztime 10s ./internal/crypto
