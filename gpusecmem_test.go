package gpusecmem

import (
	"bytes"
	"strings"
	"testing"
)

func testKeys() Keys {
	var k Keys
	copy(k.Encryption[:], "test-encrypt-key")
	copy(k.MAC[:], "test-mac-key-abc")
	copy(k.Tree[:], "test-tree-key-ab")
	return k
}

func TestFunctionalAPICounterMode(t *testing.T) {
	mem, err := NewCounterModeMemory(64*1024, testKeys(), FullProtection)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 128)
	copy(data, "hello secure world")
	if err := mem.WriteLine(0x400, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 128)
	if err := mem.ReadLine(0x400, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip failed")
	}
	if bytes.Contains(mem.Backing().Snapshot(0x400, 128), data[:16]) {
		t.Fatal("plaintext at rest")
	}
}

func TestFunctionalAPIDirect(t *testing.T) {
	mem, err := NewDirectMemory(64*1024, testKeys(), FullProtection)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 128)
	copy(data, "direct encryption")
	if err := mem.WriteLine(0, data); err != nil {
		t.Fatal(err)
	}
	// Tamper -> IntegrityError through the public API.
	raw := mem.Backing().Snapshot(0, 1)
	mem.Backing().Write(0, []byte{raw[0] ^ 1})
	err = mem.ReadLine(0, make([]byte, 128))
	if err == nil {
		t.Fatal("tamper undetected")
	}
	if !strings.Contains(err.Error(), "integrity violation") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestMetadataStorageTableII(t *testing.T) {
	ctr, mac, tree, err := MetadataStorage(4<<30, true)
	if err != nil {
		t.Fatal(err)
	}
	if ctr != 32<<20 || mac != 256<<20 {
		t.Fatalf("ctr=%d mac=%d", ctr, mac)
	}
	if mb := float64(tree) / (1 << 20); mb < 2.0 || mb > 2.3 {
		t.Fatalf("BMT %.2fMB", mb)
	}
	_, mac2, tree2, err := MetadataStorage(4<<30, false)
	if err != nil {
		t.Fatal(err)
	}
	if mac2 != 256<<20 {
		t.Fatalf("mac=%d", mac2)
	}
	if mb := float64(tree2) / (1 << 20); mb < 16.8 || mb > 17.3 {
		t.Fatalf("MT %.2fMB", mb)
	}
	if _, _, _, err := MetadataStorage(100, true); err == nil {
		t.Fatal("want error for unaligned size")
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	want := []string{
		"table1", "table2", "table3", "table4", "table5",
		"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "table6", "table7",
		"fig13", "fig14", "fig15", "fig16", "fig17",
		"ablation-mergecap", "ablation-allocpolicy", "ablation-specverify",
		"ablation-lazyupdate", "ablation-sectoredl2", "ext-smartunified", "ext-selective",
		"ext-faultcoverage", "ext-latency", "ext-designspace",
	}
	if len(exps) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(exps), len(want))
	}
	for i, id := range want {
		if exps[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, exps[i].ID, id)
		}
		if exps[i].Title == "" || exps[i].PaperFinding == "" || exps[i].Run == nil {
			t.Errorf("%s: incomplete descriptor", id)
		}
	}
	if _, ok := ExperimentByID("fig7"); !ok {
		t.Error("fig7 not found")
	}
	if _, ok := ExperimentByID("fig99"); ok {
		t.Error("fig99 should not exist")
	}
	if len(SortedIDs()) != len(want) {
		t.Error("SortedIDs length mismatch")
	}
}

func tinyContext() *Context {
	return NewContext(Options{Cycles: 2500, Benchmarks: []string{"nw", "fdtd2d"}})
}

func TestContextMemoizes(t *testing.T) {
	ctx := tinyContext()
	r1 := ctx.Run(BaselineConfig(), "nw")
	n := ctx.CachedRuns()
	r2 := ctx.Run(BaselineConfig(), "nw")
	if ctx.CachedRuns() != n {
		t.Fatal("second identical run was not memoized")
	}
	if r1 != r2 {
		t.Fatal("memoized run returned a different result object")
	}
	ctx.Run(SecureMemConfig(), "nw")
	if ctx.CachedRuns() != n+1 {
		t.Fatal("distinct config did not create a new run")
	}
}

func TestStaticExperimentsProduceTables(t *testing.T) {
	ctx := tinyContext()
	for _, id := range []string{"table1", "table2", "table3", "table5", "table6", "table7"} {
		e, _ := ExperimentByID(id)
		tables := e.Run(ctx)
		if len(tables) == 0 {
			t.Errorf("%s produced no tables", id)
			continue
		}
		for _, tab := range tables {
			if len(tab.Rows) == 0 {
				t.Errorf("%s produced an empty table", id)
			}
			var b strings.Builder
			if err := tab.WriteText(&b); err != nil {
				t.Errorf("%s render: %v", id, err)
			}
		}
	}
	if ctx.CachedRuns() != 0 {
		t.Error("static experiments should not simulate")
	}
}

func TestSimulatedExperimentShape(t *testing.T) {
	ctx := tinyContext()
	e, _ := ExperimentByID("fig16")
	tables := e.Run(ctx)
	if len(tables) != 1 {
		t.Fatalf("fig16 tables = %d", len(tables))
	}
	tab := tables[0]
	// benchmark column + 3 schemes; rows = 2 benchmarks + gmean.
	if len(tab.Headers) != 4 {
		t.Fatalf("headers: %v", tab.Headers)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	if tab.Rows[2][0] != "gmean" {
		t.Fatalf("last row: %v", tab.Rows[2])
	}
}

func TestReuseExperimentsRun(t *testing.T) {
	ctx := NewContext(Options{Cycles: 2500, Benchmarks: []string{"fdtd2d"}})
	for _, id := range []string{"fig10", "fig11"} {
		e, _ := ExperimentByID(id)
		tables := e.Run(ctx)
		if len(tables) != 1 || len(tables[0].Rows) == 0 {
			t.Fatalf("%s produced no data", id)
		}
	}
	// Both figures share the same profiled run.
	if ctx.CachedRuns() > 2 {
		t.Fatalf("reuse figures did not share runs: %d", ctx.CachedRuns())
	}
}

func TestGmeanNormalizedIPC(t *testing.T) {
	ctx := tinyContext()
	g := GmeanNormalizedIPC(ctx, BaselineConfig())
	if g < 0.999 || g > 1.001 {
		t.Fatalf("baseline gmean vs itself = %f", g)
	}
	gs := GmeanNormalizedIPC(ctx, SecureMemConfig())
	if gs >= 1 || gs <= 0 {
		t.Fatalf("secure gmean = %f", gs)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Cycles == 0 || len(o.Benchmarks) != 14 {
		t.Fatalf("defaults: %+v", o)
	}
}

func TestSimulatePublicAPI(t *testing.T) {
	cfg := BaselineConfig()
	cfg.MaxCycles = 1500
	r, err := Simulate(cfg, "fdtd2d")
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC() <= 0 {
		t.Fatal("no progress")
	}
	if len(Benchmarks()) != 14 {
		t.Fatal("benchmark list")
	}
}

// TestEveryExperimentRuns drives the complete registry end to end on
// a minimal context: every experiment must produce non-empty,
// renderable tables without panicking.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep")
	}
	ctx := NewContext(Options{Cycles: 1500, Benchmarks: []string{"fdtd2d"}})
	for _, e := range Experiments() {
		tables := e.Run(ctx)
		if len(tables) == 0 {
			t.Errorf("%s: no tables", e.ID)
			continue
		}
		for _, tab := range tables {
			if len(tab.Headers) == 0 || len(tab.Rows) == 0 {
				t.Errorf("%s: empty table %q", e.ID, tab.Title)
			}
			var b strings.Builder
			if err := tab.WriteText(&b); err != nil {
				t.Errorf("%s: text render: %v", e.ID, err)
			}
			b.Reset()
			if err := tab.WriteCSV(&b); err != nil {
				t.Errorf("%s: csv render: %v", e.ID, err)
			}
			b.Reset()
			if err := tab.WriteMarkdown(&b); err != nil {
				t.Errorf("%s: md render: %v", e.ID, err)
			}
		}
	}
	if ctx.CachedRuns() == 0 {
		t.Error("sweep simulated nothing")
	}
}
