// Command doclint enforces the repository's package-documentation
// policy (the vet-adjacent `make doc-lint` step):
//
//  1. Every package in the module carries a package-level doc comment.
//  2. Packages that own concurrency-sensitive state (the required set
//     below) must state their concurrency/aliasing contract in that
//     doc — who may call from which goroutines, and who owns returned
//     or retained memory — detected by contract vocabulary in the
//     comment ("concurren…", "goroutine", "single-owner", …).
//
// The point of rule 2 is the same as the rest of the determinism
// work: the parallel partition engine is only correct because each
// component's ownership story is explicit. A package whose doc cannot
// say "single-owner" or "safe for concurrent use" is a package nobody
// has thought about under -shards.
//
// Usage:
//
//	doclint            # lint the module rooted at the working directory
//	doclint -root dir  # lint another module
//
// Exits non-zero with one line per violation.
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// contractRequired lists the packages (by import-path suffix) whose
// package docs must state a concurrency/aliasing contract. These are
// the packages holding state the parallel partition engine shards,
// shares, or deliberately restricts.
var contractRequired = map[string]bool{
	"internal/atomicfile":  true,
	"internal/cache":       true,
	"internal/checkpoint":  true,
	"internal/cluster":     true,
	"internal/daemon":      true,
	"internal/dram":        true,
	"internal/eventq":      true,
	"internal/faults":      true,
	"internal/icnt":        true,
	"internal/mem":         true,
	"internal/probe":       true,
	"internal/resultcache": true,
	"internal/runner":      true,
	"internal/shard":       true,
	"internal/sim":         true,
	"internal/smcore":      true,
	"internal/stats":       true,
	"internal/telemetry":   true,
	"internal/trace":       true,
}

// contractVocabulary matches the words a concurrency/aliasing
// contract is stated with. The lint is lexical on purpose: it cannot
// judge whether a contract is *right*, only force one to be written.
var contractVocabulary = regexp.MustCompile(
	`(?i)(concurren|goroutine|single.owner|thread.safe|not safe for|safe for concurrent|aliasing|externally synchronized)`)

func main() {
	root := flag.String("root", ".", "module root to lint")
	flag.Parse()

	var violations []string
	err := filepath.WalkDir(*root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if name == "testdata" || name == "results" || strings.HasPrefix(name, ".") && path != *root {
			return fs.SkipDir
		}
		rel, _ := filepath.Rel(*root, path)
		violations = append(violations, lintDir(path, filepath.ToSlash(rel))...)
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "doclint:", err)
		os.Exit(1)
	}
	sort.Strings(violations)
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "doclint: "+v)
	}
	if len(violations) > 0 {
		os.Exit(1)
	}
}

// lintDir checks one directory's (non-test) package, returning its
// violations. Directories without Go files lint clean.
func lintDir(dir, rel string) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", rel, err)}
	}
	fset := token.NewFileSet()
	var doc strings.Builder
	hasGo := false
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		hasGo = true
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
			parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return []string{fmt.Sprintf("%s/%s: %v", rel, name, err)}
		}
		if f.Doc != nil {
			doc.WriteString(f.Doc.Text())
		}
	}
	if !hasGo {
		return nil
	}
	var out []string
	text := doc.String()
	if strings.TrimSpace(text) == "" {
		out = append(out, fmt.Sprintf("%s: package has no package-level doc comment", rel))
	}
	if contractRequired[rel] && !contractVocabulary.MatchString(text) {
		out = append(out, fmt.Sprintf(
			"%s: package doc does not state its concurrency/aliasing contract (expected vocabulary like %q)",
			rel, "single-owner / safe for concurrent use / goroutine"))
	}
	return out
}
