// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp fig3                        # one experiment
//	experiments -exp all                         # everything, in paper order
//	experiments -list                            # show the catalogue
//	experiments -exp fig7 -cycles 60000 -benchmarks fdtd2d,lbm -format csv
//	experiments -exp all -out results/           # one file per experiment
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gpusecmem"
	"gpusecmem/internal/report"
)

func writeTable(w io.Writer, t *report.Table, format string) error {
	switch format {
	case "csv":
		return t.WriteCSV(w)
	case "md":
		return t.WriteMarkdown(w)
	default:
		return t.WriteText(w)
	}
}

func extFor(format string) string {
	switch format {
	case "csv":
		return "csv"
	case "md":
		return "md"
	default:
		return "txt"
	}
}

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		cycles     = flag.Uint64("cycles", 24000, "simulated cycles per run")
		benchmarks = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all of Table IV)")
		format     = flag.String("format", "text", "output format: text|csv|md")
		outDir     = flag.String("out", "", "write one file per experiment into this directory instead of stdout")
		list       = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range gpusecmem.Experiments() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
		return
	}
	switch *format {
	case "text", "csv", "md":
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}

	opts := gpusecmem.Options{Cycles: *cycles}
	if *benchmarks != "" {
		opts.Benchmarks = strings.Split(*benchmarks, ",")
	}
	ctx := gpusecmem.NewContext(opts)

	var selected []gpusecmem.Experiment
	if *exp == "all" {
		selected = gpusecmem.Experiments()
	} else {
		e, ok := gpusecmem.ExperimentByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			os.Exit(2)
		}
		selected = []gpusecmem.Experiment{e}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	for _, e := range selected {
		start := time.Now()
		tables := e.Run(ctx)

		var w io.Writer = os.Stdout
		var f *os.File
		if *outDir != "" {
			path := filepath.Join(*outDir, e.ID+"."+extFor(*format))
			var err error
			f, err = os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			w = f
		}

		fmt.Fprintf(w, "# %s\n", e.Title)
		fmt.Fprintf(w, "# paper: %s\n", e.PaperFinding)
		for _, t := range tables {
			if err := writeTable(w, t, *format); err != nil {
				fmt.Fprintf(os.Stderr, "write: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintln(w)
		}
		if f != nil {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("%-22s -> %s (%s, %d cached runs)\n",
				e.ID, filepath.Join(*outDir, e.ID+"."+extFor(*format)),
				time.Since(start).Round(time.Millisecond), ctx.CachedRuns())
		} else {
			fmt.Printf("# (%s, %d cached runs)\n\n", time.Since(start).Round(time.Millisecond), ctx.CachedRuns())
		}
	}
}
