// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp fig3                        # one experiment
//	experiments -exp all                         # everything, in paper order
//	experiments -list                            # show the catalogue
//	experiments -exp fig7 -cycles 60000 -benchmarks fdtd2d,lbm -format csv
//	experiments -exp all -out results/           # one file per experiment
//	experiments -exp all -jobs 8 -progress       # parallel sweep with ticker
//	experiments -exp all -stats-out runs.json    # machine-readable run stats
//	experiments -exp all -cache-dir ~/.cache/gpusecmem   # persistent results
//
// Runs execute on a worker pool (default GOMAXPROCS workers, divided
// by -shards when intra-run sharding is on) and are memoized with
// singleflight semantics, so shared configurations simulate exactly
// once. With -cache-dir, results also persist on disk
// keyed by their canonical configuration digest, so repeated sweeps
// across process restarts skip simulation entirely. Output is rendered
// in catalogue order from the memoized results and is byte-identical
// at any -jobs value; timing and progress chatter goes to stderr, data
// to stdout or -out.
//
// SIGINT (Ctrl-C) cancels the sweep cooperatively: in-flight runs stop
// at their next cancellation check, the pool drains, and -stats-out is
// still flushed — marked "aborted": true with the runs completed so
// far. All file artifacts are written atomically (temp + rename), so
// an interrupted regeneration never leaves truncated tables.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"gpusecmem"
	"gpusecmem/internal/atomicfile"
	"gpusecmem/internal/checkpoint"
	"gpusecmem/internal/report"
	"gpusecmem/internal/resultcache"
	"gpusecmem/internal/runner"
)

// stampFor reconstructs the canonical regeneration command for one
// experiment's output. Only flags that affect content appear —
// -jobs/-progress/-stats-out/-out/-cache-dir are deliberately excluded
// so output stays byte-identical across worker counts, caches, and
// target directories.
func stampFor(expID string, cycles uint64, benchmarks, format string) string {
	parts := []string{"go run ./cmd/experiments", "-exp " + expID}
	parts = append(parts, fmt.Sprintf("-cycles %d", cycles))
	if benchmarks != "" {
		parts = append(parts, "-benchmarks "+benchmarks)
	}
	if format != "text" {
		parts = append(parts, "-format "+format)
	}
	return strings.Join(parts, " ")
}

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		cycles     = flag.Uint64("cycles", 24000, "simulated cycles per run")
		benchmarks = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all of Table IV)")
		format     = flag.String("format", "text", "output format: text|csv|md")
		outDir     = flag.String("out", "", "write one file per experiment into this directory instead of stdout")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		jobs       = flag.Int("jobs", 0, "parallel simulation workers (0 = GOMAXPROCS/shards)")
		shards     = flag.Int("shards", 0, "shard goroutines per simulation (parallel partition engine; 0/1 = sequential, results bit-identical)")
		progress   = flag.Bool("progress", false, "print a periodic progress line to stderr")
		statsOut   = flag.String("stats-out", "", "write machine-readable per-run stats (JSON) to this file")
		audit      = flag.Bool("audit", false, "run every simulation with invariant auditors enabled (changes memo keys; slower)")
		debugAddr  = flag.String("debug-addr", "", "serve the sweep debug HTTP endpoint (live progress, expvar, pprof) on this address, e.g. localhost:6060")
		quick      = flag.Bool("quick", false, "CI smoke mode: 2000 cycles and a two-benchmark subset unless overridden explicitly")
		cacheDir   = flag.String("cache-dir", "", "persist simulation results in this directory, keyed by canonical config digest")
		ckptDir    = flag.String("checkpoint-dir", "", "persist mid-run machine checkpoints in this directory; interrupted sweeps resume instead of restarting")
		ckptEvery  = flag.Uint64("checkpoint-every", 5000, "checkpoint interval in cycles (with -checkpoint-dir)")
	)
	flag.Parse()

	if *quick {
		// Smoke-test defaults: short horizon, two representative
		// benchmarks. Explicit -cycles/-benchmarks still win, so -quick
		// composes with a targeted invocation.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["cycles"] {
			*cycles = 2000
		}
		if !set["benchmarks"] {
			*benchmarks = "nw,fdtd2d"
		}
	}

	if *list {
		for _, e := range gpusecmem.Experiments() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
		return
	}
	if !report.ValidFormat(*format) {
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}

	opts := gpusecmem.Options{Cycles: *cycles, Audit: *audit, Shards: *shards}
	if *benchmarks != "" {
		opts.Benchmarks = strings.Split(*benchmarks, ",")
	}
	gctx := gpusecmem.NewContext(opts)
	if *cacheDir != "" {
		disk, err := resultcache.Open(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		gctx.SetResultCache(disk)
	}
	var ckpt *checkpoint.Store
	if *ckptDir != "" {
		var err error
		ckpt, err = checkpoint.Open(*ckptDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		gctx.SetCheckpointStore(ckpt, *ckptEvery)
	}

	var selected []gpusecmem.Experiment
	if *exp == "all" {
		selected = gpusecmem.Experiments()
	} else {
		e, ok := gpusecmem.ExperimentByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			os.Exit(2)
		}
		selected = []gpusecmem.Experiment{e}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	// Ctrl-C cancels the sweep cooperatively: runner.Run drains the
	// pool and returns a partial, Aborted report; -stats-out is still
	// flushed below. A second signal kills the process the usual way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep := runner.Run(ctx, gctx, selected, runner.Options{
		Jobs:      *jobs,
		Shards:    *shards,
		Progress:  *progress,
		DebugAddr: *debugAddr,
	})
	if rep.Aborted {
		fmt.Fprintf(os.Stderr, "interrupted: %d/%d runs completed before cancellation\n",
			rep.ExecutedRuns, rep.PlannedRuns)
	}

	failures := 0
	for _, res := range rep.Results {
		e := res.Experiment
		if res.Err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.ID, res.Err)
			if re, ok := res.Err.(*gpusecmem.RunError); ok {
				fmt.Fprintf(os.Stderr, "  config: %s\n", re.ConfigJSON())
			}
			continue
		}

		render := func(w io.Writer) error {
			fmt.Fprintf(w, "# %s\n", e.Title)
			fmt.Fprintf(w, "# paper: %s\n", e.PaperFinding)
			fmt.Fprintf(w, "# generated: %s\n", stampFor(e.ID, *cycles, *benchmarks, *format))
			for _, t := range res.Tables {
				if err := t.Write(w, *format); err != nil {
					return err
				}
				fmt.Fprintln(w)
			}
			return nil
		}
		if *outDir == "" {
			if err := render(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "write: %v\n", err)
				os.Exit(1)
			}
			continue
		}
		path := filepath.Join(*outDir, e.ID+"."+report.Ext(*format))
		if err := atomicfile.WriteFile(path, render); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "%-22s -> %s (%s)\n",
			e.ID, path, res.Elapsed.Round(time.Millisecond))
	}

	diskNote := ""
	if *cacheDir != "" {
		diskNote = fmt.Sprintf(" (%d from disk)", rep.DiskHits)
	}
	if ckpt != nil {
		cs := ckpt.Stats()
		diskNote += fmt.Sprintf(", checkpoints %d resumed / %d saved / %d errors",
			cs.Hits, cs.Puts, cs.Errors)
	}
	fmt.Fprintf(os.Stderr,
		"sweep: %d experiments (%d failed), %d runs planned / %d executed (%d failed), cache %d hits / %d misses%s, jobs %d, wall %s, %.0f cycles/sec aggregate\n",
		len(rep.Results), failures, rep.PlannedRuns, rep.ExecutedRuns, rep.FailedRuns,
		rep.CacheHits, rep.CacheMisses, diskNote, rep.Jobs, rep.Wall.Round(time.Millisecond),
		rep.AggregateCyclesPerSec())

	if *statsOut != "" {
		cmd := "experiments " + strings.Join(os.Args[1:], " ")
		err := atomicfile.WriteFile(*statsOut, func(w io.Writer) error {
			return rep.WriteStats(w, cmd)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "stats -> %s\n", *statsOut)
	}

	switch {
	case rep.Aborted:
		os.Exit(130)
	case failures > 0:
		os.Exit(1)
	}
}
