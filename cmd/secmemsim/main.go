// Command secmemsim runs one benchmark on one secure-memory
// configuration and prints the full statistics — the low-level tool
// behind the experiment harness.
//
// Usage:
//
//	secmemsim -bench fdtd2d -scheme ctr_mac_bmt -cycles 60000
//	secmemsim -bench lbm -scheme direct_mac -aes-latency 80
//	secmemsim -bench lbm -faults seed=1,rate=1e-4,sites=all -audit
//	secmemsim -bench fdtd2d -probe                          # latency attribution
//	secmemsim -bench fdtd2d -timeline out.ndjson -probe-interval 500
//	secmemsim -bench fdtd2d -trace-out trace.json           # Perfetto trace
//	secmemsim -list
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"gpusecmem"
	"gpusecmem/internal/atomicfile"
	"gpusecmem/internal/checkpoint"
)

func schemeConfig(scheme string, aesLatency, engines, metaKB, mshrs int, unified bool) (gpusecmem.Config, error) {
	cfg, err := gpusecmem.ConfigForScheme(scheme)
	if err != nil {
		return cfg, err
	}
	if cfg.Secure.Encryption != gpusecmem.EncNone {
		cfg.Secure.AESLatency = aesLatency
		cfg.Secure.AESEngines = engines
		if metaKB > 0 {
			cfg.Secure.MetaCacheBytes = metaKB * 1024
		}
		cfg.Secure.MetaMSHRs = mshrs
		cfg.Secure.Unified = unified
	}
	return cfg, nil
}

func main() {
	var (
		bench      = flag.String("bench", "fdtd2d", "benchmark name (Table IV)")
		scheme     = flag.String("scheme", "ctr_mac_bmt", "baseline|ctr|ctr_bmt|ctr_mac_bmt|direct|direct_mac|direct_mac_mt")
		cycles     = flag.Uint64("cycles", 60000, "simulated cycles")
		aesLatency = flag.Int("aes-latency", 40, "AES latency in cycles")
		engines    = flag.Int("aes-engines", 2, "AES engines per partition")
		metaKB     = flag.Int("meta-kb", 0, "metadata cache KB per type (0 = scheme default)")
		mshrs      = flag.Int("mshrs", 64, "MSHRs per metadata cache")
		unified    = flag.Bool("unified", false, "use a unified metadata cache")
		faultSpec  = flag.String("faults", "", "fault-injection plan, e.g. seed=1,rate=1e-4,sites=data,meta,drop (empty = none)")
		audit      = flag.Bool("audit", false, "run per-cycle invariant auditors")
		watchdog   = flag.Uint64("watchdog", 0, "override watchdog stall threshold in cycles (0 = config default)")
		shards     = flag.Int("shards", 0, "shard goroutines for the parallel partition engine (0/1 = sequential; results are bit-identical)")
		asJSON     = flag.Bool("json", false, "emit the result as JSON")
		list       = flag.Bool("list", false, "list benchmarks and schemes, then exit")
		probeSpans = flag.Bool("probe", false, "collect request-lifecycle spans and print the latency attribution")
		timeline   = flag.String("timeline", "", "write a windowed timeline to this file (.csv extension selects CSV, anything else NDJSON)")
		probeEvery = flag.Uint64("probe-interval", 500, "timeline sampling interval in cycles")
		traceOut   = flag.String("trace-out", "", "write span records as Chrome trace-event JSON (Perfetto) to this file")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile taken after the simulation to this file")
		ckptDir    = flag.String("checkpoint-dir", "", "persist machine checkpoints in this directory; a rerun resumes from the newest valid one instead of restarting")
		ckptEvery  = flag.Uint64("checkpoint-every", 5000, "checkpoint interval in cycles (with -checkpoint-dir)")
	)
	flag.Parse()

	if *list {
		fmt.Println("benchmarks:")
		for _, b := range gpusecmem.Benchmarks() {
			fmt.Println("  " + b)
		}
		fmt.Println("schemes:")
		for _, s := range gpusecmem.SchemeNames() {
			fmt.Println("  " + s)
		}
		return
	}

	cfg, err := schemeConfig(*scheme, *aesLatency, *engines, *metaKB, *mshrs, *unified)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg.MaxCycles = *cycles
	cfg.Audit = *audit
	cfg.Shards = *shards
	if *watchdog > 0 {
		cfg.WatchdogCycles = *watchdog
	}
	plan, err := gpusecmem.ParseFaultPlan(*faultSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg.Faults = plan

	if *probeSpans || *timeline != "" || *traceOut != "" {
		pc := &gpusecmem.ProbeConfig{
			Spans: *probeSpans || *traceOut != "",
			Trace: *traceOut != "",
		}
		if *timeline != "" {
			pc.TimelineInterval = *probeEvery
		}
		cfg.Probe = pc
	}

	if *cpuProfile != "" {
		// The profile streams into a temp file and only renames into
		// place on a clean finish — a mid-run kill leaves no truncated
		// profile behind.
		f, err := atomicfile.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Abort()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Commit(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	// With -checkpoint-dir, both runs snapshot periodically and resume
	// from the newest valid checkpoint of their lineage; SIGINT/SIGTERM
	// stop cooperatively and checkpoint before exiting, so the next
	// invocation continues where this one left off. Results are
	// bit-identical to uninterrupted runs either way.
	var ckpt gpusecmem.CheckpointStore
	if *ckptDir != "" {
		store, err := checkpoint.Open(*ckptDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ckpt = store
	}
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()
	simulate := func(cfg gpusecmem.Config, bench string) (*gpusecmem.Result, error) {
		if ckpt != nil {
			if from := gpusecmem.ResumedFrom(cfg, bench, ckpt); from > 0 {
				fmt.Fprintf(os.Stderr, "resuming from checkpoint at cycle %d\n", from)
			}
		}
		return gpusecmem.SimulateCheckpointed(ctx, cfg, bench, ckpt, *ckptEvery)
	}

	// The baseline comparison run stays fault-free and unaudited: it is
	// only there to normalize IPC.
	base := gpusecmem.BaselineConfig()
	base.MaxCycles = *cycles
	base.Shards = *shards
	bres, err := simulate(base, *bench)
	if err != nil {
		fail(err)
	}
	res, err := simulate(cfg, *bench)
	if err != nil {
		fail(err)
	}
	if *memProfile != "" {
		runtime.GC() // settle the heap so the profile shows retained state
		err := atomicfile.WriteFile(*memProfile, pprof.WriteHeapProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := writeProbeFiles(res, *timeline, *traceOut); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("benchmark        %s\n", *bench)
	fmt.Printf("scheme           %s\n", *scheme)
	fmt.Printf("cycles           %d\n", res.Cycles)
	fmt.Printf("IPC              %.2f (baseline %.2f, normalized %.3f)\n",
		res.IPC(), bres.IPC(), res.NormalizedIPC(bres))
	fmt.Printf("bandwidth        %.2f%% of peak\n", 100*res.BandwidthUtilization())
	fmt.Printf("L1 miss rate     %.2f%%\n", 100*res.L1.MissRate())
	fmt.Printf("L2 miss rate     %.2f%%\n", 100*res.L2.MissRate())
	fmt.Printf("DRAM requests    data=%d ctr=%d mac=%d bmt=%d wb=%d\n",
		res.RequestsByKind[0], res.RequestsByKind[1], res.RequestsByKind[2],
		res.RequestsByKind[3], res.RequestsByKind[4])
	fmt.Printf("DRAM bytes       data=%d ctr=%d mac=%d bmt=%d wb=%d\n",
		res.BytesByKind[0], res.BytesByKind[1], res.BytesByKind[2],
		res.BytesByKind[3], res.BytesByKind[4])
	for m := 0; m < 3; m++ {
		ms := res.Meta[m]
		if ms.Accesses == 0 {
			continue
		}
		fmt.Printf("meta[%d]          accesses=%d miss=%.2f%% secondary=%.2f%%\n",
			m, ms.Accesses, 100*ms.MissRate(), 100*ms.SecondaryRatio())
	}
	if plan != nil {
		f := res.Faults
		fmt.Printf("faults injected  %v (plan %s)\n", f.Injected, plan)
		fmt.Printf("faults detected  %d of %d corruptions (%.1f%% coverage), %d silent\n",
			f.Detected, f.Corruptions(), 100*f.DetectionRate(), f.Silent)
		fmt.Printf("replies dropped  %d, duplicated %d\n", f.DroppedReplies, f.DuplicatedReplies)
	}
	if res.Probe != nil && res.Probe.Spans != nil {
		sp := res.Probe.Spans
		fmt.Printf("spans traced     %d (%d unbalanced)\n", sp.Spans, sp.Unbalanced)
		for _, kb := range sp.Kinds {
			fmt.Printf("  %-5s n=%-9d mean=%-8.1f p50=%-6d p95=%-6d p99=%-6d max=%d\n",
				kb.Kind, kb.Spans, kb.MeanLatency, kb.P50, kb.P95, kb.P99, kb.MaxLatency)
			for _, st := range kb.Stages {
				if st.Cycles == 0 {
					continue
				}
				fmt.Printf("        %-7s %12d cycles (%5.1f%%)\n", st.Stage, st.Cycles, 100*st.Share)
			}
		}
	}
}

// writeProbeFiles exports a probed run's timeline and trace artifacts
// (atomically: a failed export leaves no partial file).
func writeProbeFiles(res *gpusecmem.Result, timeline, traceOut string) error {
	pr := res.Probe
	if timeline != "" {
		err := atomicfile.WriteFile(timeline, func(w io.Writer) error {
			if strings.HasSuffix(timeline, ".csv") {
				return gpusecmem.WriteTimelineCSV(w, pr.Timeline)
			}
			return gpusecmem.WriteTimelineNDJSON(w, pr.Timeline)
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "timeline -> %s (%d windows)\n", timeline, len(pr.Timeline))
	}
	if traceOut != "" {
		err := atomicfile.WriteFile(traceOut, func(w io.Writer) error {
			return gpusecmem.WriteChromeTrace(w, pr)
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace -> %s (%d spans)\n", traceOut, pr.TraceSpans())
	}
	return nil
}

// fail reports a simulation error; a watchdog stall also gets its
// machine-state dump so a wedged configuration is diagnosable. A
// cooperative interrupt exits 130 like a conventional Ctrl-C.
func fail(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "interrupted; with -checkpoint-dir the run checkpointed and a rerun resumes")
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, err)
	var stall *gpusecmem.StallError
	if errors.As(err, &stall) && stall.Dump != "" {
		fmt.Fprintln(os.Stderr, stall.Dump)
	}
	os.Exit(1)
}
