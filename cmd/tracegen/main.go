// Command tracegen dumps the synthetic memory-access stream of a
// Table IV workload generator, either as a CSV trace (for inspection
// or replay in other simulators) or as a summary of its address-space
// behaviour. It exists so the substitution of synthetic generators for
// the paper's CUDA benchmarks is auditable.
//
// Usage:
//
//	tracegen -bench fdtd2d -warps 4 -iters 16           # CSV to stdout
//	tracegen -bench kmeans -summary -iters 2000         # behaviour summary
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"gpusecmem/internal/smcore"
	"gpusecmem/internal/trace"
)

func main() {
	var (
		bench   = flag.String("bench", "fdtd2d", "benchmark name")
		sms     = flag.Int("sms", 2, "SMs to sample")
		warps   = flag.Int("warps", 2, "warps per SM to sample")
		iters   = flag.Int("iters", 8, "steps per warp")
		summary = flag.Bool("summary", false, "print an address-behaviour summary instead of the CSV trace")
		list    = flag.Bool("list", false, "list benchmarks and exit")
	)
	flag.Parse()

	if *list {
		for _, b := range trace.Names() {
			fmt.Println(b)
		}
		return
	}

	gen, err := trace.New(*bench)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		fmt.Fprintln(os.Stderr, "valid benchmarks:")
		for _, b := range trace.Names() {
			fmt.Fprintf(os.Stderr, "  %s\n", b)
		}
		os.Exit(2)
	}
	if *warps > gen.WarpsPerSM() {
		*warps = gen.WarpsPerSM()
	}
	if *summary {
		printSummary(gen, *sms, *warps, *iters)
		return
	}

	fmt.Println("sm,warp,iter,compute,spacing,lanes,write,sectors")
	for sm := 0; sm < *sms; sm++ {
		for w := 0; w < *warps; w++ {
			for it := 0; it < *iters; it++ {
				op := gen.Next(sm, w, it)
				fmt.Printf("%d,%d,%d,%d,%d,%d,%t,", sm, w, it,
					op.ComputeInstrs, op.ComputeSpacing, op.ActiveLanes, op.Write)
				for i, s := range op.Sectors {
					if i > 0 {
						fmt.Print(" ")
					}
					fmt.Printf("%#x", s)
				}
				fmt.Println()
			}
		}
	}
}

// printSummary characterizes the sampled stream: footprint, line
// reuse, write fraction, and coalescing.
func printSummary(gen smcore.Generator, sms, warps, iters int) {
	const lineSize = 128
	lines := map[uint64]int{}
	var ops, writes, sectors int
	var lo, hi uint64 = ^uint64(0), 0
	var instrs int
	for sm := 0; sm < sms; sm++ {
		for w := 0; w < warps; w++ {
			for it := 0; it < iters; it++ {
				op := gen.Next(sm, w, it)
				ops++
				instrs += op.ComputeInstrs + 1
				if op.Write {
					writes++
				}
				sectors += len(op.Sectors)
				for _, s := range op.Sectors {
					lines[s/lineSize]++
					if s < lo {
						lo = s
					}
					if s > hi {
						hi = s
					}
				}
			}
		}
	}
	var reuse []int
	for _, n := range lines {
		reuse = append(reuse, n)
	}
	sort.Ints(reuse)
	med := 0
	if len(reuse) > 0 {
		med = reuse[len(reuse)/2]
	}
	fmt.Printf("benchmark        %s\n", gen.Name())
	fmt.Printf("warps/SM         %d (sampled %d SMs x %d warps x %d steps)\n", gen.WarpsPerSM(), sms, warps, iters)
	fmt.Printf("memory ops       %d (%.1f%% writes)\n", ops, 100*float64(writes)/float64(max(ops, 1)))
	fmt.Printf("sectors/op       %.2f\n", float64(sectors)/float64(max(ops, 1)))
	fmt.Printf("compute/mem      %.1f instructions per memory op\n", float64(instrs)/float64(max(ops, 1)))
	fmt.Printf("unique lines     %d\n", len(lines))
	fmt.Printf("median line use  %d accesses\n", med)
	fmt.Printf("address span     [%#x, %#x] (%.2f MB)\n", lo, hi, float64(hi-lo)/(1<<20))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
