package main

import "testing"

func run(name string, cps, slope float64) RunResult {
	return RunResult{Name: name, CyclesPerSec: cps, SteadyAllocsPerKCycle: slope}
}

func TestCompareRunsPasses(t *testing.T) {
	base := []RunResult{run("a/x", 10000, 500), run("b/y", 20000, 1000)}
	curr := []RunResult{run("a/x", 9000, 550), run("b/y", 30000, 900)}
	if regs := compareRuns(curr, base, 0.5); len(regs) != 0 {
		t.Fatalf("expected no regressions, got %v", regs)
	}
}

func TestCompareRunsFlagsThroughputRegression(t *testing.T) {
	base := []RunResult{run("a/x", 10000, 500)}
	// Injected regression: throughput drops to 30% of baseline.
	curr := []RunResult{run("a/x", 3000, 500)}
	regs := compareRuns(curr, base, 0.5)
	if len(regs) != 1 {
		t.Fatalf("expected 1 regression, got %v", regs)
	}
	if regs[0].Metric != "cycles_per_sec" || regs[0].Name != "a/x" {
		t.Fatalf("unexpected regression: %v", regs[0])
	}
	if got, want := regs[0].Ratio, 0.3; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("ratio = %v, want %v", got, want)
	}
}

func TestCompareRunsFlagsAllocGrowth(t *testing.T) {
	base := []RunResult{run("a/x", 10000, 500)}
	// Allocation storm: slope grows past 2x + floor.
	curr := []RunResult{run("a/x", 10000, 500*allocSlopeFactor+allocSlopeFloor+1)}
	regs := compareRuns(curr, base, 0.5)
	if len(regs) != 1 || regs[0].Metric != "steady_allocs_per_kcycle" {
		t.Fatalf("expected one alloc-slope regression, got %v", regs)
	}
}

func TestCompareRunsAllocSlack(t *testing.T) {
	base := []RunResult{run("a/x", 10000, 500)}
	// Within the 2x+floor envelope: not a regression.
	curr := []RunResult{run("a/x", 10000, 500*allocSlopeFactor+allocSlopeFloor-1)}
	if regs := compareRuns(curr, base, 0.5); len(regs) != 0 {
		t.Fatalf("expected no regressions, got %v", regs)
	}
	// A near-zero baseline gets the absolute floor, so GC wobble on a
	// zero-alloc loop cannot trip the gate.
	base = []RunResult{run("b/y", 10000, 0)}
	curr = []RunResult{run("b/y", 10000, allocSlopeFloor/2)}
	if regs := compareRuns(curr, base, 0.5); len(regs) != 0 {
		t.Fatalf("expected no regressions for sub-floor slope, got %v", regs)
	}
}

func TestCompareRunsSkipsUnmatchedCases(t *testing.T) {
	base := []RunResult{run("a/x", 10000, 500)}
	curr := []RunResult{run("new/case", 1, 1e6)} // no baseline entry
	if regs := compareRuns(curr, base, 0.5); len(regs) != 0 {
		t.Fatalf("unmatched case must be skipped, got %v", regs)
	}
}

func TestCompareRunsDeterministicOrder(t *testing.T) {
	base := []RunResult{run("b/y", 10000, 0), run("a/x", 10000, 0)}
	curr := []RunResult{run("b/y", 100, 0), run("a/x", 100, 0)}
	regs := compareRuns(curr, base, 0.5)
	if len(regs) != 2 || regs[0].Name != "a/x" || regs[1].Name != "b/y" {
		t.Fatalf("expected name-sorted regressions, got %v", regs)
	}
}
