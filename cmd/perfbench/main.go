// Command perfbench measures raw simulator throughput (host-side
// cycles/sec) and allocation behaviour on a fixed set of catalogue
// configurations, and writes the measurements as JSON — the tracked
// perf baseline behind `make bench`.
//
// Each case simulates one (scheme, benchmark) pair at the default
// machine configuration via testing.Benchmark, so ns/op, allocs/op and
// bytes/op follow the standard Go benchmark methodology. On top of the
// whole-run numbers, perfbench estimates the *steady-state* allocation
// rate of the cycle loop by differencing two run lengths: allocations
// that scale with cycles (per-cycle garbage) show up in the slope,
// one-time construction cost does not. The optimized cycle loop is
// expected to hold that slope at ~0 allocs per 1000 cycles.
//
// Usage:
//
//	perfbench -out BENCH_PR6.json                  # full measurement
//	perfbench -quick -out /tmp/bench.json          # CI smoke (short)
//	perfbench -baseline BENCH_PR4.json -out BENCH_PR6.json  # embed reference + speedups
//	perfbench -quick -compare BENCH_PR6.json       # CI perf gate: exit 1 on regression
//
// Comparing two files: run perfbench on the old tree with -out
// old.json, then on the new tree with `-baseline old.json`; the output
// then carries the reference runs and per-case cycles/sec speedups.
//
// The -compare flag is the CI regression gate: it diffs the fresh
// measurements against a committed baseline file and exits nonzero
// when any case's cycles/sec falls below -compare-threshold times the
// recorded value, or its steady allocation slope clearly grows.
// Thresholds default loose (0.5) because baselines are recorded on a
// different host than CI runs on; the gate exists to catch
// order-of-magnitude regressions, not single-digit drift.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"gpusecmem"
)

// benchCase is one tracked configuration point. Shards > 1 runs the
// point on the parallel partition engine (bit-identical results; the
// "@sN" name suffix marks sharded points).
type benchCase struct {
	Name      string
	Scheme    string
	Benchmark string
	Shards    int
}

// cases span the perf envelope: the insecure baseline, the full secure
// design on bandwidth-bound workloads (partition/DRAM dominated), a
// compute-bound workload (SM/idle-skip dominated), and direct
// encryption (AES path). The @s4 points rerun the two bandwidth-bound
// workloads on the parallel partition engine; comparing them to their
// sequential twins (the shard_speedup map) measures intra-run scaling
// on the measurement host — which requires GOMAXPROCS > 1 cores to
// show a speedup.
var cases = []benchCase{
	{Name: "baseline/fdtd2d", Scheme: "baseline", Benchmark: "fdtd2d"},
	{Name: "ctr_mac_bmt/fdtd2d", Scheme: "ctr_mac_bmt", Benchmark: "fdtd2d"},
	{Name: "ctr_mac_bmt/lbm", Scheme: "ctr_mac_bmt", Benchmark: "lbm"},
	{Name: "ctr_mac_bmt/heartwall", Scheme: "ctr_mac_bmt", Benchmark: "heartwall"},
	{Name: "ctr_bmt/streamcluster", Scheme: "ctr_bmt", Benchmark: "streamcluster"},
	{Name: "direct_mac_mt/srad_v2", Scheme: "direct_mac_mt", Benchmark: "srad_v2"},
	{Name: "ctr_mac_bmt/fdtd2d@s4", Scheme: "ctr_mac_bmt", Benchmark: "fdtd2d", Shards: 4},
	{Name: "ctr_mac_bmt/lbm@s4", Scheme: "ctr_mac_bmt", Benchmark: "lbm", Shards: 4},
}

// RunResult is one case's measurements.
type RunResult struct {
	Name      string `json:"name"`
	Scheme    string `json:"scheme"`
	Benchmark string `json:"benchmark"`
	// Shards is the parallel-engine shard count (0 = sequential engine).
	Shards       int     `json:"shards,omitempty"`
	Cycles       uint64  `json:"cycles"`
	NsPerOp      int64   `json:"ns_per_op"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	// SteadyAllocsPerKCycle is the marginal allocation rate of the
	// cycle loop: (allocs(long) - allocs(short)) / Δkcycles. ~0 means
	// the steady-state hot path is allocation-free.
	SteadyAllocsPerKCycle float64 `json:"steady_allocs_per_kcycle"`
}

// File is the BENCH_PR4.json schema.
type File struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	// GOMAXPROCS is the measurement host's scheduler width. Sharded
	// (@sN) points can only beat their sequential twins when it exceeds
	// 1 — on a single-core host the parallel engine degrades to barrier
	// bookkeeping overhead, and ShardSpeedup honestly records that.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Cycles is the per-op simulation length of the throughput runs.
	Cycles uint64      `json:"cycles"`
	Runs   []RunResult `json:"runs"`
	// Baseline carries the runs of the reference file passed with
	// -baseline (a previous tree's measurements), and Speedup the
	// per-case cycles/sec ratio current/reference.
	Baseline []RunResult        `json:"baseline,omitempty"`
	Speedup  map[string]float64 `json:"speedup,omitempty"`
	// ShardSpeedup compares each sharded point against its sequential
	// twin within this same file: cycles/sec of "name@sN" over "name".
	ShardSpeedup map[string]float64 `json:"shard_speedup,omitempty"`
}

func simulate(cfg gpusecmem.Config, bench string) {
	if _, err := gpusecmem.Simulate(cfg, bench); err != nil {
		fmt.Fprintf(os.Stderr, "perfbench: %s: %v\n", bench, err)
		os.Exit(1)
	}
}

// measure runs one case: a timed throughput benchmark at `cycles`
// plus the two-point allocation slope.
func measure(c benchCase, cycles uint64) RunResult {
	cfg, err := gpusecmem.ConfigForScheme(c.Scheme)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(1)
	}
	cfg.MaxCycles = cycles
	cfg.Shards = c.Shards
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			simulate(cfg, c.Benchmark)
		}
	})
	short, long := cfg, cfg
	short.MaxCycles = cycles / 4
	long.MaxCycles = cycles + cycles/4
	slope := allocSlope(short, long, c.Benchmark)
	ns := br.NsPerOp()
	res := RunResult{
		Name:                  c.Name,
		Scheme:                c.Scheme,
		Benchmark:             c.Benchmark,
		Shards:                c.Shards,
		Cycles:                cycles,
		NsPerOp:               ns,
		AllocsPerOp:           br.AllocsPerOp(),
		BytesPerOp:            br.AllocedBytesPerOp(),
		SteadyAllocsPerKCycle: slope,
	}
	if ns > 0 {
		res.CyclesPerSec = float64(cycles) / (float64(ns) / 1e9)
	}
	return res
}

// allocSlope estimates per-cycle allocations by differencing a short
// and a long run (single iterations; allocation counts are exact and
// deterministic, so one sample each suffices).
func allocSlope(short, long gpusecmem.Config, bench string) float64 {
	count := func(cfg gpusecmem.Config) float64 {
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		simulate(cfg, bench)
		runtime.ReadMemStats(&m1)
		return float64(m1.Mallocs - m0.Mallocs)
	}
	dk := float64(long.MaxCycles-short.MaxCycles) / 1000
	if dk <= 0 {
		return 0
	}
	return (count(long) - count(short)) / dk
}

func main() {
	var (
		out      = flag.String("out", "BENCH_PR6.json", "output JSON path (- for stdout)")
		baseline = flag.String("baseline", "", "reference perfbench JSON to embed and compare against")
		cycles   = flag.Uint64("cycles", 4000, "simulated cycles per throughput op")
		quick    = flag.Bool("quick", false, "CI smoke: three-case subset (incl. one sharded point), short runs")
		compare  = flag.String("compare", "", "committed perfbench JSON to gate against: exit 1 when any case regresses past -compare-threshold")
		compThr  = flag.Float64("compare-threshold", 0.5, "minimum acceptable cycles/sec ratio current/baseline for -compare")
	)
	flag.Parse()

	sel := cases
	if *quick {
		// Smoke subset: one cheap sequential pair each way plus one
		// sharded point, so CI exercises the parallel engine too.
		sel = nil
		for _, c := range cases {
			switch c.Name {
			case "baseline/fdtd2d", "ctr_mac_bmt/fdtd2d", "ctr_mac_bmt/fdtd2d@s4":
				sel = append(sel, c)
			}
		}
		if *cycles > 2000 {
			*cycles = 2000
		}
	}

	f := File{
		Schema:     "gpusecmem-perfbench/v1",
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Cycles:     *cycles,
	}
	for _, c := range sel {
		fmt.Fprintf(os.Stderr, "perfbench: %s ...\n", c.Name)
		r := measure(c, *cycles)
		fmt.Fprintf(os.Stderr, "perfbench: %-24s %12.0f cycles/sec  %8d allocs/op  %+.2f steady allocs/kcycle\n",
			r.Name, r.CyclesPerSec, r.AllocsPerOp, r.SteadyAllocsPerKCycle)
		f.Runs = append(f.Runs, r)
	}

	// Pair each sharded point with its sequential twin from this run.
	seq := map[string]RunResult{}
	for _, r := range f.Runs {
		if r.Shards == 0 {
			seq[r.Name] = r
		}
	}
	for _, r := range f.Runs {
		if r.Shards <= 1 {
			continue
		}
		twin := r.Scheme + "/" + r.Benchmark
		if b, ok := seq[twin]; ok && b.CyclesPerSec > 0 {
			if f.ShardSpeedup == nil {
				f.ShardSpeedup = map[string]float64{}
			}
			f.ShardSpeedup[r.Name] = r.CyclesPerSec / b.CyclesPerSec
		}
	}

	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(1)
		}
		var ref File
		if err := json.Unmarshal(raw, &ref); err != nil {
			fmt.Fprintln(os.Stderr, "perfbench: parsing baseline:", err)
			os.Exit(1)
		}
		f.Baseline = ref.Runs
		f.Speedup = map[string]float64{}
		byName := map[string]RunResult{}
		for _, r := range ref.Runs {
			byName[r.Name] = r
		}
		for _, r := range f.Runs {
			if b, ok := byName[r.Name]; ok && b.CyclesPerSec > 0 {
				f.Speedup[r.Name] = r.CyclesPerSec / b.CyclesPerSec
			}
		}
	}

	enc, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "perfbench: wrote %s (%d cases)\n", *out, len(f.Runs))
	}

	// The regression gate: diff this run against a committed baseline
	// and fail the process when any case fell past the threshold. Runs
	// after the output is written so a failing gate still leaves the
	// fresh measurements behind as a CI artifact.
	if *compare != "" {
		raw, err := os.ReadFile(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(1)
		}
		var ref File
		if err := json.Unmarshal(raw, &ref); err != nil {
			fmt.Fprintln(os.Stderr, "perfbench: parsing compare baseline:", err)
			os.Exit(1)
		}
		regs := compareRuns(f.Runs, ref.Runs, *compThr)
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "perfbench: %d regression(s) vs %s (threshold %.2f):\n", len(regs), *compare, *compThr)
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "perfbench:   %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "perfbench: no regressions vs %s (threshold %.2f, %d cases compared)\n",
			*compare, *compThr, len(f.Runs))
	}
}
