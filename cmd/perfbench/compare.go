package main

import (
	"fmt"
	"sort"
)

// regression is one case that fell below the comparison threshold.
type regression struct {
	Name string
	// Metric is "cycles_per_sec" or "steady_allocs_per_kcycle".
	Metric string
	// Current and Baseline are the two measurements; Ratio is
	// current/baseline for throughput (lower is worse) and
	// baseline-relative growth for the alloc slope (higher is worse).
	Current, Baseline, Ratio float64
}

func (r regression) String() string {
	return fmt.Sprintf("%s: %s %.0f vs baseline %.0f (ratio %.2f)",
		r.Name, r.Metric, r.Current, r.Baseline, r.Ratio)
}

// allocSlopeSlack is the multiplicative headroom the steady-allocs
// check allows before flagging: the committed slopes range from a few
// hundred to a few thousand allocs/kcycle and wobble with GC timing,
// so only a growth beyond 2x (plus an absolute floor of 64 for
// near-zero baselines) counts as a regression.
const (
	allocSlopeFactor = 2.0
	allocSlopeFloor  = 64.0
)

// compareRuns diffs a fresh measurement against a committed baseline.
// threshold is the minimum acceptable cycles/sec ratio
// current/baseline — 0.5 means "fail if the new tree runs at less
// than half the recorded throughput". Thresholds are deliberately
// loose: baselines are recorded on one host and CI runs on another,
// so the gate catches order-of-magnitude regressions (an accidental
// O(n^2), an allocation storm), not single-digit drift. Cases present
// in only one file are skipped — the grid may grow between PRs.
func compareRuns(curr, base []RunResult, threshold float64) []regression {
	byName := make(map[string]RunResult, len(base))
	for _, b := range base {
		byName[b.Name] = b
	}
	var regs []regression
	for _, c := range curr {
		b, ok := byName[c.Name]
		if !ok {
			continue
		}
		if b.CyclesPerSec > 0 && c.CyclesPerSec > 0 {
			ratio := c.CyclesPerSec / b.CyclesPerSec
			if ratio < threshold {
				regs = append(regs, regression{
					Name:     c.Name,
					Metric:   "cycles_per_sec",
					Current:  c.CyclesPerSec,
					Baseline: b.CyclesPerSec,
					Ratio:    ratio,
				})
			}
		}
		// The alloc slope is near-deterministic on one host but the
		// absolute values differ across Go versions; flag only clear
		// growth.
		limit := b.SteadyAllocsPerKCycle*allocSlopeFactor + allocSlopeFloor
		if c.SteadyAllocsPerKCycle > limit {
			ratio := 0.0
			if b.SteadyAllocsPerKCycle > 0 {
				ratio = c.SteadyAllocsPerKCycle / b.SteadyAllocsPerKCycle
			}
			regs = append(regs, regression{
				Name:     c.Name,
				Metric:   "steady_allocs_per_kcycle",
				Current:  c.SteadyAllocsPerKCycle,
				Baseline: b.SteadyAllocsPerKCycle,
				Ratio:    ratio,
			})
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Name != regs[j].Name {
			return regs[i].Name < regs[j].Name
		}
		return regs[i].Metric < regs[j].Metric
	})
	return regs
}
