// Command secmemd serves simulation results over HTTP/JSON: the
// benchmark/scheme catalogue, ad-hoc runs, and the paper's experiment
// tables, backed by an in-memory LRU and an optional on-disk result
// cache so repeated requests — across restarts — skip simulation.
//
// Usage:
//
//	secmemd -addr :8080 -cache-dir /var/cache/gpusecmem
//	curl localhost:8080/api/catalogue
//	curl 'localhost:8080/api/run?bench=nw&scheme=ctr_mac_bmt&cycles=3000'
//	curl 'localhost:8080/api/experiment/fig8?format=csv&cycles=6000'
//	curl localhost:8080/healthz
//	curl localhost:8080/metrics
//
// Every request is logged (one structured line via log/slog; pick
// -log-format json for machine ingestion, -log-level debug to include
// scrape routes) and tagged with a trace ID that appears on the
// X-Secmem-Trace-Id response header, in the log line, and in any JSON
// error body.
//
// SIGINT/SIGTERM triggers a graceful shutdown: the listener closes,
// in-flight requests get -drain to finish, then remaining simulations
// are cancelled cooperatively and the process exits.
//
// Cluster mode (DESIGN.md §16) joins this daemon to a static peer
// fleet: every member runs the same member set, canonical run keys
// are placed by rendezvous hashing, and a member answers misses from
// the key owner's cache or forwards the request there — falling back
// to local simulation when the owner is down:
//
//	secmemd -addr :8081 -cache-dir /var/cache/a \
//	        -self http://10.0.0.1:8081 \
//	        -peers http://10.0.0.2:8081,http://10.0.0.3:8081
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gpusecmem/internal/checkpoint"
	"gpusecmem/internal/cluster"
	"gpusecmem/internal/daemon"
	"gpusecmem/internal/resultcache"
	"gpusecmem/internal/telemetry"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:8080", "listen address")
		cacheDir = flag.String("cache-dir", "", "persist simulation results in this directory (shared with cmd/experiments)")
		workers  = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", -1, "admitted requests waiting beyond -workers before 429 (-1 = 2*workers)")
		timeout  = flag.Duration("timeout", 2*time.Minute, "per-request simulation budget")
		drain    = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget before in-flight runs are cancelled")
		memCap   = flag.Int("mem-cache", 256, "in-process result LRU entries (negative disables)")
		shards   = flag.Int("shards", 0, "shard goroutines per served simulation (parallel partition engine; 0/1 = sequential, results bit-identical)")
		ckptDir  = flag.String("checkpoint-dir", "", "persist mid-run machine checkpoints in this directory; longer-horizon requests resume instead of restarting, and shutdown checkpoints in-flight runs")
		ckptN    = flag.Uint64("checkpoint-every", 5000, "checkpoint interval in cycles (with -checkpoint-dir)")
		grace    = flag.Duration("abort-grace", 5*time.Second, "post-abort budget for cancelled handlers to flush (after -drain expires)")
		logFmt   = flag.String("log-format", "text", "request log format: text|json")
		logLvl   = flag.String("log-level", "info", "request log level: debug|info|warn|error (scrape routes log at debug)")

		self       = flag.String("self", "", "this node's advertised base URL in the cluster (required with -peers)")
		peers      = flag.String("peers", "", "comma-separated peer base URLs; enables cluster mode")
		peerTO     = flag.Duration("peer-timeout", 5*time.Second, "per peer fetch/push/forward budget")
		probeEvery = flag.Duration("peer-probe-every", 2*time.Second, "peer health-probe interval")
	)
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, *logFmt, *logLvl)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	cfg := daemon.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		RequestTimeout:  *timeout,
		MemCacheEntries: *memCap,
		Shards:          *shards,
		Logger:          logger,
	}
	if *cacheDir != "" {
		disk, err := resultcache.Open(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg.Cache = disk
		logger.Info("result cache open", "dir", disk.Dir(), "entries", disk.Len())
	}
	if *ckptDir != "" {
		store, err := checkpoint.Open(*ckptDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg.Checkpoints = store
		cfg.CheckpointEvery = *ckptN
		logger.Info("checkpoint store open", "dir", store.Dir(), "entries", store.Len(), "every_cycles", *ckptN)
	}
	var cl *cluster.Cluster
	if *peers != "" {
		var err error
		cl, err = cluster.New(cluster.Config{
			Self:       *self,
			Peers:      strings.Split(*peers, ","),
			Timeout:    *peerTO,
			ProbeEvery: *probeEvery,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg.Cluster = cl
		logger.Info("cluster joined", "self", cl.Self(), "members", len(cl.Nodes()))
	}
	d := daemon.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: d.Handler()}
	logger.Info("serving", "addr", fmt.Sprintf("http://%s/", ln.Addr()),
		"routes", "/api/catalogue /api/run /api/experiment/{id} /healthz /metrics")

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if cl != nil {
		cl.Start(ctx) // health probes stop with the shutdown signal
	}
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the usual way

	logger.Info("shutting down", "drain", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		// Drain budget exhausted: cancel in-flight simulations so their
		// handlers return — each checkpointed run snapshots on the way
		// out, so a restart resumes it — then close whatever is left
		// after -abort-grace.
		logger.Warn("drain expired, cancelling in-flight runs")
		d.Abort()
		abortCtx, cancel2 := context.WithTimeout(context.Background(), *grace)
		defer cancel2()
		if err := srv.Shutdown(abortCtx); err != nil {
			srv.Close()
		}
	}
	logger.Info("bye")
}
