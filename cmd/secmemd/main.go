// Command secmemd serves simulation results over HTTP/JSON: the
// benchmark/scheme catalogue, ad-hoc runs, and the paper's experiment
// tables, backed by an in-memory LRU and an optional on-disk result
// cache so repeated requests — across restarts — skip simulation.
//
// Usage:
//
//	secmemd -addr :8080 -cache-dir /var/cache/gpusecmem
//	curl localhost:8080/api/catalogue
//	curl 'localhost:8080/api/run?bench=nw&scheme=ctr_mac_bmt&cycles=3000'
//	curl 'localhost:8080/api/experiment/fig8?format=csv&cycles=6000'
//	curl localhost:8080/healthz
//
// SIGINT/SIGTERM triggers a graceful shutdown: the listener closes,
// in-flight requests get -drain to finish, then remaining simulations
// are cancelled cooperatively and the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gpusecmem/internal/checkpoint"
	"gpusecmem/internal/daemon"
	"gpusecmem/internal/resultcache"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:8080", "listen address")
		cacheDir = flag.String("cache-dir", "", "persist simulation results in this directory (shared with cmd/experiments)")
		workers  = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", -1, "admitted requests waiting beyond -workers before 429 (-1 = 2*workers)")
		timeout  = flag.Duration("timeout", 2*time.Minute, "per-request simulation budget")
		drain    = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget before in-flight runs are cancelled")
		memCap   = flag.Int("mem-cache", 256, "in-process result LRU entries (negative disables)")
		shards   = flag.Int("shards", 0, "shard goroutines per served simulation (parallel partition engine; 0/1 = sequential, results bit-identical)")
		ckptDir  = flag.String("checkpoint-dir", "", "persist mid-run machine checkpoints in this directory; longer-horizon requests resume instead of restarting, and shutdown checkpoints in-flight runs")
		ckptN    = flag.Uint64("checkpoint-every", 5000, "checkpoint interval in cycles (with -checkpoint-dir)")
		grace    = flag.Duration("abort-grace", 5*time.Second, "post-abort budget for cancelled handlers to flush (after -drain expires)")
	)
	flag.Parse()

	cfg := daemon.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		RequestTimeout:  *timeout,
		MemCacheEntries: *memCap,
		Shards:          *shards,
	}
	if *cacheDir != "" {
		disk, err := resultcache.Open(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg.Cache = disk
		fmt.Fprintf(os.Stderr, "secmemd: result cache at %s (%d entries)\n", disk.Dir(), disk.Len())
	}
	if *ckptDir != "" {
		store, err := checkpoint.Open(*ckptDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg.Checkpoints = store
		cfg.CheckpointEvery = *ckptN
		fmt.Fprintf(os.Stderr, "secmemd: checkpoint store at %s (%d checkpoints, every %d cycles)\n",
			store.Dir(), store.Len(), *ckptN)
	}
	d := daemon.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: d.Handler()}
	fmt.Fprintf(os.Stderr, "secmemd: serving http://%s/ (/api/catalogue, /api/run, /api/experiment/{id}, /healthz)\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the usual way

	fmt.Fprintf(os.Stderr, "secmemd: shutting down (draining up to %s)\n", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		// Drain budget exhausted: cancel in-flight simulations so their
		// handlers return — each checkpointed run snapshots on the way
		// out, so a restart resumes it — then close whatever is left
		// after -abort-grace.
		fmt.Fprintln(os.Stderr, "secmemd: drain expired, cancelling in-flight runs")
		d.Abort()
		abortCtx, cancel2 := context.WithTimeout(context.Background(), *grace)
		defer cancel2()
		if err := srv.Shutdown(abortCtx); err != nil {
			srv.Close()
		}
	}
	fmt.Fprintln(os.Stderr, "secmemd: bye")
}
