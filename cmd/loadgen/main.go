// Command loadgen drives /api/run traffic against one secmemd — or a
// whole cluster of them — and reports throughput and latency, so the
// serving claims in EXPERIMENTS.md are measured, not asserted.
//
// The workload is a key mix: -keys distinct canonical run
// configurations (bench × cycles variations of one scheme), drawn per
// request from a Zipf distribution when -skew > 1 (a few hot keys,
// a long cold tail — the shape a memoizing cache actually sees) or
// uniformly otherwise, and sprayed round-robin across every -targets
// member the way a naive load balancer would. An optional warm pass
// simulates each key once before measurement starts, so the measured
// window exercises the cache tiers rather than the simulator.
//
// Pacing is closed-loop (every worker back-to-back) when -qps is 0,
// or open-loop at the target aggregate rate otherwise. Latencies are
// folded into the shared log2-bucket histogram (internal/probe.Hist),
// per worker and merged at the end — no contention on the hot path.
//
// Usage:
//
//	loadgen -targets http://localhost:8081,http://localhost:8082,http://localhost:8083 \
//	        -duration 10s -workers 64 -keys 24 -skew 1.2 -out report.json
//
// The JSON report records the run parameters, throughput, latency
// quantiles, and the serving-tier mix (from X-Run-Source), which is
// what BENCH_PR9.json's cluster summary is built from.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"strings"
	"sync"
	"time"

	"gpusecmem"
	"gpusecmem/internal/probe"
)

// workload is the immutable request mix shared by every worker.
type workload struct {
	targets []string
	urls    []string // one /api/run URL per key
	skew    float64
	qps     float64
	gate    <-chan struct{} // open-loop pacing; nil = closed loop
}

// workerStats is one worker's private tally, merged after the run.
type workerStats struct {
	requests uint64
	errors   uint64
	lat      probe.Hist
	sources  map[string]uint64
	codes    map[int]uint64
}

// report is the JSON output schema.
type report struct {
	Schema     string   `json:"schema"`
	Targets    []string `json:"targets"`
	Workers    int      `json:"workers"`
	DurationS  float64  `json:"duration_s"`
	QPSTarget  float64  `json:"qps_target"`
	Keys       int      `json:"keys"`
	Skew       float64  `json:"skew"`
	Warmed     bool     `json:"warmed"`
	Requests   uint64   `json:"requests"`
	Errors     uint64   `json:"errors"`
	Throughput float64  `json:"throughput_rps"`

	LatencyUS struct {
		Mean float64 `json:"mean"`
		P50  uint64  `json:"p50"`
		P90  uint64  `json:"p90"`
		P99  uint64  `json:"p99"`
		Max  uint64  `json:"max"`
	} `json:"latency_us"`

	Sources map[string]uint64 `json:"sources"`
	Codes   map[string]uint64 `json:"codes"`
}

func main() {
	var (
		targets  = flag.String("targets", "http://localhost:8080", "comma-separated secmemd base URLs")
		duration = flag.Duration("duration", 10*time.Second, "measured window")
		workers  = flag.Int("workers", 32, "concurrent client workers")
		qps      = flag.Float64("qps", 0, "target aggregate request rate (0 = closed loop)")
		keys     = flag.Int("keys", 20, "distinct run configurations in the mix")
		skew     = flag.Float64("skew", 1.2, "Zipf s for key popularity (<=1 = uniform)")
		scheme   = flag.String("scheme", "ctr_mac_bmt", "scheme every key uses")
		cycles   = flag.Uint64("cycles", 1500, "base cycles; keys step up from here")
		warm     = flag.Bool("warm", true, "simulate every key once before measuring")
		seed     = flag.Int64("seed", 1, "workload RNG seed")
		out      = flag.String("out", "", "write the JSON report here (default stdout)")
	)
	flag.Parse()

	w := &workload{
		targets: strings.Split(*targets, ","),
		skew:    *skew,
		qps:     *qps,
	}
	benches := gpusecmem.Benchmarks()
	for i := 0; i < *keys; i++ {
		// bench × cycles variations: distinct canonical keys, same
		// scheme, bounded simulation cost.
		q := url.Values{
			"scheme": {*scheme},
			"bench":  {benches[i%len(benches)]},
			"cycles": {fmt.Sprint(*cycles + uint64(i/len(benches))*100)},
		}
		w.urls = append(w.urls, "/api/run?"+q.Encode())
	}

	client := &http.Client{Timeout: 5 * time.Minute}
	if *warm {
		if err := warmKeys(client, w); err != nil {
			fmt.Fprintln(os.Stderr, "warm:", err)
			os.Exit(1)
		}
	}

	if *qps > 0 {
		gate := make(chan struct{}, *workers)
		go func() {
			t := time.NewTicker(time.Duration(float64(time.Second) / *qps))
			defer t.Stop()
			for range t.C {
				select {
				case gate <- struct{}{}:
				default: // saturated: drop the tick, never queue debt
				}
			}
		}()
		w.gate = gate
	}

	stats := make([]workerStats, *workers)
	stop := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for i := 0; i < *workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runWorker(client, w, &stats[i], rand.New(rand.NewSource(*seed+int64(i))), stop, i)
		}(i)
	}
	t0 := time.Now()
	wg.Wait()
	elapsed := time.Since(t0)

	total := mergeStats(stats)

	rep := report{
		Schema:    "gpusecmem-loadgen/1",
		Targets:   w.targets,
		Workers:   *workers,
		DurationS: elapsed.Seconds(),
		QPSTarget: *qps,
		Keys:      *keys,
		Skew:      *skew,
		Warmed:    *warm,
		Requests:  total.requests,
		Errors:    total.errors,
		Sources:   total.sources,
		Codes:     map[string]uint64{},
	}
	if elapsed > 0 {
		rep.Throughput = float64(total.requests) / elapsed.Seconds()
	}
	rep.LatencyUS.Mean = total.lat.Mean()
	rep.LatencyUS.P50 = total.lat.Quantile(0.50)
	rep.LatencyUS.P90 = total.lat.Quantile(0.90)
	rep.LatencyUS.P99 = total.lat.Quantile(0.99)
	rep.LatencyUS.Max = total.lat.Max
	for code, n := range total.codes {
		rep.Codes[fmt.Sprint(code)] = n
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if total.errors > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d/%d requests failed\n", total.errors, total.requests)
		os.Exit(1)
	}
}

// mergeStats folds the per-worker tallies into one. Counts and
// histogram buckets sum; Max is the max of maxes, so the merged
// histogram answers quantiles exactly as if one worker had observed
// every latency.
func mergeStats(stats []workerStats) workerStats {
	total := workerStats{sources: map[string]uint64{}, codes: map[int]uint64{}}
	for i := range stats {
		s := &stats[i]
		total.requests += s.requests
		total.errors += s.errors
		total.lat.Count += s.lat.Count
		total.lat.Sum += s.lat.Sum
		if s.lat.Max > total.lat.Max {
			total.lat.Max = s.lat.Max
		}
		for b, n := range s.lat.Buckets {
			total.lat.Buckets[b] += n
		}
		for src, n := range s.sources {
			total.sources[src] += n
		}
		for code, n := range s.codes {
			total.codes[code] += n
		}
	}
	return total
}

// warmKeys simulates every key once, round-robin over the targets, so
// the measured window hits caches. In cluster mode each result lands
// at (or is write-through replicated to) its owner, warming the whole
// fleet regardless of which member served it.
func warmKeys(client *http.Client, w *workload) error {
	for i, u := range w.urls {
		target := w.targets[i%len(w.targets)]
		resp, err := client.Get(target + u)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s%s: status %d", target, u, resp.StatusCode)
		}
	}
	return nil
}

// runWorker issues requests until the deadline: draw a key, pick the
// next target round-robin, measure, tally.
func runWorker(client *http.Client, w *workload, s *workerStats, rng *rand.Rand, stop time.Time, offset int) {
	s.sources = map[string]uint64{}
	s.codes = map[int]uint64{}
	var zipf *rand.Zipf
	if w.skew > 1 {
		zipf = rand.NewZipf(rng, w.skew, 1, uint64(len(w.urls)-1))
	}
	for n := offset; time.Now().Before(stop); n++ {
		if w.gate != nil {
			select {
			case <-w.gate:
			case <-time.After(time.Until(stop)):
				return
			}
		}
		var key int
		if zipf != nil {
			key = int(zipf.Uint64())
		} else {
			key = rng.Intn(len(w.urls))
		}
		target := w.targets[n%len(w.targets)]

		t0 := time.Now()
		resp, err := client.Get(target + w.urls[key])
		lat := time.Since(t0)
		s.requests++
		if err != nil {
			s.errors++
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		s.lat.Observe(uint64(lat.Microseconds()))
		s.codes[resp.StatusCode]++
		if resp.StatusCode != http.StatusOK {
			s.errors++
			continue
		}
		if src := resp.Header.Get("X-Run-Source"); src != "" {
			s.sources[src]++
		}
	}
}
