package main

import (
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestSingleKeySkewed is the -keys 1 -skew 1.2 edge case: the Zipf
// draw is built with imax = len(urls)-1 = 0, which must degrade to
// "always key 0" — not panic, not index out of range.
func TestSingleKeySkewed(t *testing.T) {
	var hits atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("X-Run-Source", "memory")
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	w := &workload{
		targets: []string{ts.URL},
		urls:    []string{"/api/run?bench=nw&cycles=1500"},
		skew:    1.2,
	}
	var s workerStats
	runWorker(ts.Client(), w, &s, rand.New(rand.NewSource(1)),
		time.Now().Add(100*time.Millisecond), 0)

	if s.requests == 0 || hits.Load() != s.requests {
		t.Fatalf("requests = %d, server saw %d", s.requests, hits.Load())
	}
	if s.errors != 0 {
		t.Fatalf("single-key run produced %d errors", s.errors)
	}
	if s.sources["memory"] != s.requests {
		t.Fatalf("sources = %v, want every request attributed", s.sources)
	}
}

// TestMergeStats pins the per-worker fold: counts and buckets sum,
// Max is the max of maxes, and label maps union — the merged
// histogram must answer exactly as if one worker saw everything.
func TestMergeStats(t *testing.T) {
	a := workerStats{sources: map[string]uint64{"memory": 2}, codes: map[int]uint64{200: 2}}
	a.requests, a.errors = 3, 1
	a.lat.Observe(100)
	a.lat.Observe(200)

	b := workerStats{sources: map[string]uint64{"memory": 1, "disk": 4}, codes: map[int]uint64{200: 4, 503: 1}}
	b.requests = 5
	b.lat.Observe(50)
	b.lat.Observe(4000)

	total := mergeStats([]workerStats{a, b})
	if total.requests != 8 || total.errors != 1 {
		t.Fatalf("requests/errors = %d/%d, want 8/1", total.requests, total.errors)
	}
	if total.lat.Count != 4 || total.lat.Sum != 4350 || total.lat.Max != 4000 {
		t.Fatalf("merged hist count/sum/max = %d/%d/%d",
			total.lat.Count, total.lat.Sum, total.lat.Max)
	}
	var bucketSum uint64
	for _, n := range total.lat.Buckets {
		bucketSum += n
	}
	if bucketSum != 4 {
		t.Fatalf("merged buckets hold %d observations, want 4", bucketSum)
	}
	if total.sources["memory"] != 3 || total.sources["disk"] != 4 {
		t.Fatalf("merged sources = %v", total.sources)
	}
	if total.codes[200] != 6 || total.codes[503] != 1 {
		t.Fatalf("merged codes = %v", total.codes)
	}

	empty := mergeStats(nil)
	if empty.requests != 0 || empty.lat.Count != 0 || len(empty.sources) != 0 {
		t.Fatalf("empty merge not zero: %+v", empty)
	}
}

// TestErrorAccountingContract pins how failures are tallied. Transport
// errors count as requests and errors but never enter the latency
// histogram (there is no response to time); HTTP-level failures (a
// 503) are errors too but DO carry a latency and a status code.
func TestErrorAccountingContract(t *testing.T) {
	// A listener that is closed immediately: every dial fails.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + l.Addr().String()
	l.Close()

	w := &workload{targets: []string{dead}, urls: []string{"/api/run?bench=nw"}}
	var s workerStats
	runWorker(&http.Client{Timeout: time.Second}, w, &s, rand.New(rand.NewSource(1)),
		time.Now().Add(50*time.Millisecond), 0)
	if s.requests == 0 {
		t.Fatal("worker never attempted the dead target")
	}
	if s.errors != s.requests {
		t.Fatalf("errors = %d of %d requests, want all", s.errors, s.requests)
	}
	if s.lat.Count != 0 {
		t.Fatalf("transport errors leaked %d observations into the histogram", s.lat.Count)
	}
	if len(s.codes) != 0 {
		t.Fatalf("transport errors recorded status codes: %v", s.codes)
	}

	// HTTP-level failure: a live server answering 503.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	w2 := &workload{targets: []string{ts.URL}, urls: []string{"/api/run?bench=nw"}}
	var s2 workerStats
	runWorker(ts.Client(), w2, &s2, rand.New(rand.NewSource(1)),
		time.Now().Add(50*time.Millisecond), 0)
	if s2.requests == 0 || s2.errors != s2.requests {
		t.Fatalf("503s not all counted as errors: %d of %d", s2.errors, s2.requests)
	}
	if s2.lat.Count != s2.requests {
		t.Fatalf("503 latencies not observed: %d of %d", s2.lat.Count, s2.requests)
	}
	if s2.codes[http.StatusServiceUnavailable] != s2.requests {
		t.Fatalf("codes = %v, want %d 503s", s2.codes, s2.requests)
	}
	if len(s2.sources) != 0 {
		t.Fatalf("failed requests attributed to a serving tier: %v", s2.sources)
	}
}
