// Command areamodel prints the die-area analysis of Section V-F
// (Tables VI and VII) without running any simulation.
package main

import (
	"fmt"
	"os"

	"gpusecmem"
)

func main() {
	for _, id := range []string{"table6", "table7"} {
		e, ok := gpusecmem.ExperimentByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "missing experiment %s\n", id)
			os.Exit(1)
		}
		for _, t := range e.Run(gpusecmem.NewContext(gpusecmem.Options{})) {
			if err := t.WriteText(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println()
		}
	}
}
