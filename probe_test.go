package gpusecmem

import (
	"encoding/json"
	"testing"

	"gpusecmem/internal/probe"
)

const probeTestCycles = 6000

// TestProbeDisabledByteIdentical is the zero-cost contract: enabling
// every probe instrument must not perturb the simulation. For the full
// scheme catalogue, a probed run's Result — with the probe report
// stripped — must marshal to exactly the bytes of the unprobed run's.
func TestProbeDisabledByteIdentical(t *testing.T) {
	for _, name := range SchemeNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg, err := ConfigForScheme(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg.MaxCycles = probeTestCycles

			plain, err := Simulate(cfg, "fdtd2d")
			if err != nil {
				t.Fatal(err)
			}
			probed := cfg
			probed.Probe = &ProbeConfig{Spans: true, Trace: true, TimelineInterval: 500}
			pres, err := Simulate(probed, "fdtd2d")
			if err != nil {
				t.Fatal(err)
			}
			if pres.Probe == nil {
				t.Fatal("probed run carried no report")
			}
			pres.Probe = nil

			a, err := json.Marshal(plain)
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(pres)
			if err != nil {
				t.Fatal(err)
			}
			if string(a) != string(b) {
				t.Errorf("probed result diverged from unprobed:\n plain: %s\nprobed: %s", a, b)
			}
		})
	}
}

// TestSpanConservation: every scheme's span attribution must partition
// issue→reply exactly — zero unbalanced spans, catalogue-wide — and
// actually trace something. Blocking (non-speculative) verification is
// covered explicitly since it exercises the verify stage.
func TestSpanConservation(t *testing.T) {
	blocking := SecureMemConfig()
	blocking.Secure.SpeculativeVerify = false

	cases := map[string]Config{"ctr_mac_bmt_blocking": blocking}
	for _, name := range SchemeNames() {
		cfg, err := ConfigForScheme(name)
		if err != nil {
			t.Fatal(err)
		}
		cases[name] = cfg
	}

	for name, cfg := range cases {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg.MaxCycles = probeTestCycles
			cfg.Probe = &ProbeConfig{Spans: true}
			res, err := Simulate(cfg, "fdtd2d")
			if err != nil {
				t.Fatal(err)
			}
			sp := res.Probe.Spans
			if sp.Spans == 0 {
				t.Fatal("no spans traced")
			}
			if sp.Unbalanced != 0 {
				t.Fatalf("%d of %d spans unbalanced", sp.Unbalanced, sp.Spans)
			}
			if name == "ctr_mac_bmt_blocking" && sp.Stage("data", "verify") == 0 {
				t.Fatal("blocking verification attributed no verify cycles")
			}
		})
	}
}

// TestProbeResultJSONCarriesReport: a probed run's JSON form includes
// the probe report; an unprobed run's omits the key entirely.
func TestProbeResultJSONCarriesReport(t *testing.T) {
	cfg := SecureMemConfig()
	cfg.MaxCycles = probeTestCycles
	cfg.Probe = &ProbeConfig{Spans: true, TimelineInterval: 500}
	res, err := Simulate(cfg, "fdtd2d")
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["probe"]; !ok {
		t.Fatal("probed result JSON missing probe key")
	}
	var rep struct {
		Spans    *probe.SpansReport `json:"spans"`
		Timeline []probe.Sample     `json:"timeline"`
	}
	if err := json.Unmarshal(m["probe"], &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Spans == nil || rep.Spans.Spans == 0 || len(rep.Timeline) == 0 {
		t.Fatalf("probe JSON incomplete: %s", m["probe"])
	}

	cfg.Probe = nil
	res, err = Simulate(cfg, "fdtd2d")
	if err != nil {
		t.Fatal(err)
	}
	b, err = json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	m = nil
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["probe"]; ok {
		t.Fatal("unprobed result JSON still carries probe key")
	}
}

// TestProbeMemoKeysDiffer: probed and unprobed runs must memoize under
// different keys, or a sweep could serve a probe-less cached result to
// a probed request.
func TestProbeMemoKeysDiffer(t *testing.T) {
	plain := SecureMemConfig()
	probed := SecureMemConfig()
	probed.Probe = &ProbeConfig{Spans: true}
	if RunKey(plain, "fdtd2d") == RunKey(probed, "fdtd2d") {
		t.Fatal("probe config not part of the memo key")
	}
	tl := SecureMemConfig()
	tl.Probe = &ProbeConfig{Spans: true, TimelineInterval: 500}
	if RunKey(probed, "fdtd2d") == RunKey(tl, "fdtd2d") {
		t.Fatal("probe instruments not distinguished in the memo key")
	}
}

// TestExtLatencyMetadataDominatesAES pins the headline claim of the
// ext-latency experiment: for the full counter-mode design on a
// memory-bound benchmark, total metadata cycles (data-path meta wait
// plus ctr/mac/bmt traffic residency) exceed AES cycles.
func TestExtLatencyMetadataDominatesAES(t *testing.T) {
	cfg := SecureMemConfig()
	cfg.MaxCycles = probeTestCycles
	cfg.Probe = &ProbeConfig{Spans: true}
	res, err := Simulate(cfg, "fdtd2d")
	if err != nil {
		t.Fatal(err)
	}
	sp := res.Probe.Spans
	meta := sp.Stage("data", "meta")
	for _, kind := range []string{"ctr", "mac", "bmt"} {
		if kb := sp.Kind(kind); kb != nil {
			meta += kb.TotalCycles
		}
	}
	aes := sp.Stage("data", "aes")
	if aes == 0 {
		t.Fatal("no AES cycles attributed")
	}
	if meta <= aes {
		t.Fatalf("metadata cycles %d do not exceed AES cycles %d", meta, aes)
	}
}

// TestSchemeNamesListedAndValid guards the -list contract: every
// listed scheme must resolve to a valid configuration.
func TestSchemeNamesListedAndValid(t *testing.T) {
	names := SchemeNames()
	if len(names) == 0 {
		t.Fatal("no schemes listed")
	}
	for _, n := range names {
		cfg, err := ConfigForScheme(n)
		if err != nil {
			t.Errorf("scheme %s: %v", n, err)
			continue
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("scheme %s invalid: %v", n, err)
		}
	}
}
