package gpusecmem

// Tests for the singleflight memo Context: canonical keys, exactly-one
// simulation under concurrency, memoized error propagation, and run
// planning.

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunKeyCanonical(t *testing.T) {
	a, b := SecureMemConfig(), SecureMemConfig()
	if RunKey(a, "nw") != RunKey(b, "nw") {
		t.Fatal("two equal configs produced different keys")
	}
	b.Secure.MetaMSHRs++
	if RunKey(a, "nw") == RunKey(b, "nw") {
		t.Fatal("differing configs collided")
	}
	if RunKey(a, "nw") == RunKey(a, "lbm") {
		t.Fatal("differing benchmarks collided")
	}
	// The key is data, not a fmt dump: it must survive round-tripping
	// as JSON (the canonicalization contract).
	if !strings.HasPrefix(RunKey(a, "nw"), "{") || !strings.HasSuffix(RunKey(a, "nw"), "|nw") {
		t.Fatalf("key is not canonical JSON + benchmark: %q", RunKey(a, "nw")[:40])
	}
}

// TestSingleflightStress hammers one key from many goroutines and
// asserts exactly one Simulate call, with every caller receiving the
// same result object.
func TestSingleflightStress(t *testing.T) {
	ctx := NewContext(Options{Cycles: 1000, Benchmarks: []string{"nw"}})
	var calls atomic.Int64
	ctx.simulate = func(_ context.Context, cfg Config, benchmark string) (*Result, error) {
		calls.Add(1)
		time.Sleep(20 * time.Millisecond) // widen the race window
		return &Result{Benchmark: benchmark, Cycles: cfg.MaxCycles, Instructions: 1}, nil
	}

	const goroutines = 32
	results := make([]*Result, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = ctx.Run(BaselineConfig(), "nw")
		}(i)
	}
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("Simulate called %d times, want exactly 1", n)
	}
	for i, r := range results {
		if r != results[0] {
			t.Fatalf("goroutine %d got a different result object", i)
		}
	}
	s := ctx.CacheStats()
	if s.Misses != 1 || s.Hits != goroutines-1 {
		t.Fatalf("stats = %+v, want 1 miss / %d hits", s, goroutines-1)
	}
}

func TestRunErrorMemoizedAndPropagated(t *testing.T) {
	ctx := NewContext(Options{Cycles: 1000})
	var calls atomic.Int64
	boom := errors.New("boom")
	ctx.simulate = func(context.Context, Config, string) (*Result, error) {
		calls.Add(1)
		return nil, boom
	}

	_, err := ctx.RunE(context.Background(), BaselineConfig(), "nw")
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("RunE error = %v, want *RunError", err)
	}
	if re.Benchmark != "nw" || !errors.Is(err, boom) {
		t.Fatalf("RunError did not carry context: %+v", re)
	}
	if !strings.Contains(re.ConfigJSON(), "\"NumSMs\":80") {
		t.Fatalf("ConfigJSON missing config: %s", re.ConfigJSON()[:60])
	}

	// The failure is memoized: no retry per requester.
	if _, err2 := ctx.RunE(context.Background(), BaselineConfig(), "nw"); err2 != err {
		t.Fatalf("second call returned a different error: %v", err2)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("failed run re-simulated: %d calls", n)
	}

	// Run panics with the same typed error for the runner to recover.
	defer func() {
		r := recover()
		if _, ok := r.(*RunError); !ok {
			t.Fatalf("Run panicked with %T, want *RunError", r)
		}
	}()
	ctx.Run(BaselineConfig(), "nw")
	t.Fatal("Run did not panic on a failed run")
}

func TestSimulatorPanicBecomesError(t *testing.T) {
	ctx := NewContext(Options{Cycles: 1000, Benchmarks: []string{"no-such-benchmark"}})
	_, err := ctx.RunE(context.Background(), BaselineConfig(), "no-such-benchmark")
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("unknown benchmark: err = %v, want *RunError", err)
	}
	if !strings.Contains(err.Error(), "unknown benchmark") {
		t.Fatalf("error lost the panic message: %v", err)
	}
}

// TestPlanRuns verifies the planner discovers the deduplicated work
// set of a sweep without simulating anything.
func TestPlanRuns(t *testing.T) {
	ctx := NewContext(Options{Cycles: 2500, Benchmarks: []string{"nw", "fdtd2d"}})
	var exps []Experiment
	for _, id := range []string{"fig8", "fig16"} {
		e, _ := ExperimentByID(id)
		exps = append(exps, e)
	}
	plan := ctx.PlanRuns(exps)
	if ctx.CachedRuns() != 0 {
		t.Fatal("planning simulated")
	}
	// fig8: {baseline, separate, unified} x 2 benchmarks = 6;
	// fig16: {baseline(shared), direct_40, ctr, ctr_bmt} x 2 = +6.
	if len(plan) != 12 {
		t.Fatalf("plan has %d specs, want 12 (baseline deduplicated)", len(plan))
	}
	seen := map[string]bool{}
	for _, s := range plan {
		if seen[s.Key] {
			t.Fatalf("duplicate key in plan: %s", s.Benchmark)
		}
		seen[s.Key] = true
		if s.Cfg.MaxCycles != 2500 {
			t.Fatalf("plan spec cycles = %d, want options applied", s.Cfg.MaxCycles)
		}
		if s.Key != RunKey(s.Cfg, s.Benchmark) {
			t.Fatal("spec key does not match its config")
		}
	}
	// Planning is deterministic: same experiments, same order.
	plan2 := ctx.PlanRuns(exps)
	for i := range plan {
		if plan[i].Key != plan2[i].Key {
			t.Fatalf("plan order unstable at %d", i)
		}
	}
}
