package gpusecmem

import (
	"encoding/json"
	"os"
	"testing"
)

// TestGoldenResultDigestsSharded pins the parallel partition engine to
// the same digest archive as the sequential engine: every catalogue
// pair, simulated with Shards > 1, must hash to the byte-identical
// golden digest. Combined with TestGoldenResultDigests this proves the
// two engines agree bit-for-bit across all 140 pinned points (the
// -short subset covers both encryption families either way).
//
// Shard counts alternate across pairs — an even divisor of the 32
// partitions and a non-dividing count — so round-robin remainder
// handling is exercised over the full catalogue too.
func TestGoldenResultDigestsSharded(t *testing.T) {
	raw, err := os.ReadFile(goldenDigestPath)
	if err != nil {
		t.Fatalf("missing golden digests (generate with -update-golden): %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if want.Cycles != goldenCycles {
		t.Fatalf("golden file captured at %d cycles, test runs %d — regenerate with -update-golden",
			want.Cycles, goldenCycles)
	}

	shardCounts := []int{8, 5}
	i := 0
	for _, scheme := range SchemeNames() {
		for _, bench := range Benchmarks() {
			name := scheme + "/" + bench
			if testing.Short() && !shortPairs[name] {
				continue
			}
			shards := shardCounts[i%len(shardCounts)]
			i++
			scheme, bench := scheme, bench
			t.Run(name, func(t *testing.T) {
				d := goldenDigest(t, scheme, bench, shards)
				w, ok := want.Digests[name]
				if !ok {
					t.Fatalf("no golden digest for %s — regenerate with -update-golden", name)
				}
				if d != w {
					t.Errorf("shards=%d digest diverged from the sequential golden: got %s want %s",
						shards, d, w)
				}
			})
		}
	}
}
