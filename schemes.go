package gpusecmem

import (
	"fmt"
	"sort"
)

// SchemeNames lists the named secure-memory design points of Tables V
// and VIII, resolvable with ConfigForScheme.
func SchemeNames() []string {
	names := make([]string, 0, len(schemes))
	for n := range schemes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

var schemes = map[string]func() Config{
	// baseline: no secure memory.
	"baseline": BaselineConfig,
	// ctr: counter-mode encryption, no integrity metadata.
	"ctr": func() Config {
		cfg := SecureMemConfig()
		cfg.Secure.MAC = false
		cfg.Secure.Tree = false
		return cfg
	},
	// ctr_bmt: counter-mode encryption with the BMT protecting
	// counters, no data MACs.
	"ctr_bmt": func() Config {
		cfg := SecureMemConfig()
		cfg.Secure.MAC = false
		return cfg
	},
	// ctr_mac_bmt: the full counter-mode secure memory (alias:
	// "secure").
	"ctr_mac_bmt": SecureMemConfig,
	"secure":      SecureMemConfig,
	// secure_nomshr: the paper's Fig 3 secureMem (no metadata MSHRs).
	"secure_nomshr": func() Config {
		cfg := SecureMemConfig()
		cfg.Secure.MetaMSHRs = 0
		return cfg
	},
	// direct: direct encryption only.
	"direct": func() Config { return DirectMemConfig(40, false, false) },
	// direct_mac: direct encryption with sector MACs (6KB MAC cache).
	"direct_mac": func() Config { return DirectMemConfig(40, true, false) },
	// direct_mac_mt: direct encryption with MACs and the Merkle tree
	// (3KB + 3KB caches).
	"direct_mac_mt": func() Config { return DirectMemConfig(40, true, true) },
	// unified: the full counter-mode design with a unified 6KB
	// metadata cache.
	"unified": func() Config {
		cfg := SecureMemConfig()
		cfg.Secure.Unified = true
		return cfg
	},
	// scattered: secret-shared line placement (Secure Scattered Memory,
	// arXiv:2402.15824) with the default 2-way share fan-out and a 6KB
	// share-map cache; no AES, MACs, or integrity tree.
	"scattered": func() Config { return ScatteredMemConfig(2) },
	// sw_crypto: MemShield-style software encryption (arXiv:2004.09252)
	// at 320 cycles per sector; no hardware metadata structures.
	"sw_crypto": func() Config { return SWCryptoConfig(320) },
}

// ConfigForScheme resolves a named design point (see SchemeNames).
func ConfigForScheme(name string) (Config, error) {
	mk, ok := schemes[name]
	if !ok {
		return Config{}, fmt.Errorf("gpusecmem: unknown scheme %q (known: %v)", name, SchemeNames())
	}
	return mk(), nil
}
