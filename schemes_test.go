package gpusecmem

import "testing"

func TestSchemeNamesStable(t *testing.T) {
	names := SchemeNames()
	if len(names) != 12 {
		t.Fatalf("schemes = %v", names)
	}
	for _, n := range names {
		cfg, err := ConfigForScheme(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: invalid config: %v", n, err)
		}
	}
}

func TestConfigForSchemeUnknown(t *testing.T) {
	if _, err := ConfigForScheme("nonsense"); err == nil {
		t.Fatal("want error")
	}
}

func TestSchemeSemantics(t *testing.T) {
	cases := []struct {
		name       string
		enc        int
		mac, tree  bool
		metaCache  int
		metaMSHRs  int
		unifiedSet bool
	}{
		{"baseline", int(EncNone), false, false, 2048, 64, false},
		{"ctr", int(EncCounter), false, false, 2048, 64, false},
		{"ctr_bmt", int(EncCounter), false, true, 2048, 64, false},
		{"ctr_mac_bmt", int(EncCounter), true, true, 2048, 64, false},
		{"secure", int(EncCounter), true, true, 2048, 64, false},
		{"secure_nomshr", int(EncCounter), true, true, 2048, 0, false},
		{"direct", int(EncDirect), false, false, 2048, 64, false},
		{"direct_mac", int(EncDirect), true, false, 6144, 64, false},
		{"direct_mac_mt", int(EncDirect), true, true, 3072, 64, false},
		{"unified", int(EncCounter), true, true, 2048, 64, true},
	}
	for _, tc := range cases {
		cfg, err := ConfigForScheme(tc.name)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		sc := cfg.Secure
		if int(sc.Encryption) != tc.enc || sc.MAC != tc.mac || sc.Tree != tc.tree {
			t.Errorf("%s: enc=%v mac=%v tree=%v", tc.name, sc.Encryption, sc.MAC, sc.Tree)
		}
		if sc.MetaCacheBytes != tc.metaCache {
			t.Errorf("%s: meta cache %d, want %d", tc.name, sc.MetaCacheBytes, tc.metaCache)
		}
		if sc.MetaMSHRs != tc.metaMSHRs {
			t.Errorf("%s: MSHRs %d, want %d", tc.name, sc.MetaMSHRs, tc.metaMSHRs)
		}
		if sc.Unified != tc.unifiedSet {
			t.Errorf("%s: unified %v", tc.name, sc.Unified)
		}
	}
}
