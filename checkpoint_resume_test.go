package gpusecmem

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"testing"

	"gpusecmem/internal/checkpoint"
	"gpusecmem/internal/sim"
)

// The resume-identity net for checkpoint/restore: a run interrupted at
// an arbitrary checkpoint and resumed in a second process (modeled
// here by a second store handle and a fresh simulation) must produce a
// Result bit-identical to a never-interrupted run — which
// TestGoldenResultDigests pins against the pre-checkpoint tree, so
// identity here is transitively golden-pinned.

func resultDigest(t *testing.T, res *Result) string {
	t.Helper()
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

func schemeCfg(t *testing.T, scheme string, cycles uint64, shards int) Config {
	t.Helper()
	cfg, err := ConfigForScheme(scheme)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxCycles = cycles
	cfg.Shards = shards
	return cfg
}

func ckptStore(t *testing.T) *checkpoint.Store {
	t.Helper()
	s, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func runCheckpointed(t *testing.T, cfg Config, bench string, cs CheckpointStore, every uint64) *Result {
	t.Helper()
	res, err := SimulateCheckpointed(context.Background(), cfg, bench, cs, every)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestResumeIdentity interrupts runs at a shorter horizon and resumes
// them to the golden horizon, across schemes, checkpoint intervals on
// and off fast-forward boundaries, and both engines (checkpoint under
// shards, resume sequentially, and the reverse). Every resumed digest
// must equal the uninterrupted run's.
func TestResumeIdentity(t *testing.T) {
	type combo struct {
		scheme, bench             string
		every                     uint64
		shardsFirst, shardsSecond int
	}
	combos := []combo{
		// Intervals: 1500 divides typical probe/watchdog-free horizons
		// evenly; 1237 is prime, so checkpoints land mid-window, off any
		// fast-forward boundary.
		{"ctr_mac_bmt", "fdtd2d", 1500, 0, 0},
		{"ctr_mac_bmt", "fdtd2d", 1237, 0, 0},
		{"direct_mac_mt", "srad_v2", 1237, 0, 0},
		{"baseline", "fdtd2d", 1500, 0, 0},
		{"unified", "bfs", 1237, 0, 0},
		// Cross-engine: barrier checkpoints are the same states the
		// sequential engine snapshots, in both directions.
		{"ctr_mac_bmt", "fdtd2d", 1500, 4, 0},
		{"ctr_mac_bmt", "fdtd2d", 1500, 0, 4},
	}
	for _, c := range combos {
		c := c
		name := c.scheme + "/" + c.bench
		if testing.Short() && !shortPairs[name] {
			continue
		}
		t.Run(namef(c.scheme, c.bench, c.every, c.shardsFirst, c.shardsSecond), func(t *testing.T) {
			want := referenceDigest(t, c.scheme, c.bench)
			store := ckptStore(t)

			// Phase 1: the "interrupted" run, to half the horizon. Its
			// final checkpoint at 3000 is what phase 2 resumes from.
			short := schemeCfg(t, c.scheme, goldenCycles/2, c.shardsFirst)
			runCheckpointed(t, short, c.bench, store, c.every)

			// Phase 2: the full-horizon run must resume, not restart.
			full := schemeCfg(t, c.scheme, goldenCycles, c.shardsSecond)
			if from := ResumedFrom(full, c.bench, store); from != goldenCycles/2 {
				t.Fatalf("would resume from cycle %d, want %d", from, goldenCycles/2)
			}
			res := runCheckpointed(t, full, c.bench, store, c.every)
			if got := resultDigest(t, res); got != want {
				t.Errorf("resumed run digest %s != uninterrupted %s", got, want)
			}
		})
	}
}

func namef(scheme, bench string, every uint64, s1, s2 int) string {
	return fmt.Sprintf("%s/%s/every=%d/shards=%d-%d", scheme, bench, every, s1, s2)
}

// referenceDigests memoizes the uninterrupted reference runs: several
// combos share one (scheme, bench) pair.
var referenceDigests = map[string]string{}

func referenceDigest(t *testing.T, scheme, bench string) string {
	t.Helper()
	key := scheme + "/" + bench
	if d, ok := referenceDigests[key]; ok {
		return d
	}
	d := goldenDigest(t, scheme, bench, 0)
	referenceDigests[key] = d
	return d
}

// A request whose horizon equals an existing checkpoint's cycle is the
// incremental-serving edge: restore, simulate zero cycles, collect.
func TestResumeAtExactHorizon(t *testing.T) {
	store := ckptStore(t)
	cfg := schemeCfg(t, "ctr_mac_bmt", 3000, 0)
	first := runCheckpointed(t, cfg, "nw", store, 1000)
	second := runCheckpointed(t, cfg, "nw", store, 1000)
	if a, b := resultDigest(t, first), resultDigest(t, second); a != b {
		t.Fatalf("resume-at-horizon digest %s != original %s", b, a)
	}
	if from := ResumedFrom(cfg, "nw", store); from != 3000 {
		t.Fatalf("final checkpoint at %d, want 3000", from)
	}
}

// Corrupt or foreign-version checkpoints must silently restart the run
// from cycle 0 — never resume wrong, never fail the run.
func TestBadCheckpointRestartsFromZero(t *testing.T) {
	cfg := schemeCfg(t, "ctr_mac_bmt", 3000, 0)
	const bench = "nw"
	plain, err := Simulate(cfg, bench)
	if err != nil {
		t.Fatal(err)
	}
	want := resultDigest(t, plain)

	t.Run("undecodable-state", func(t *testing.T) {
		store := ckptStore(t)
		store.Put(CheckpointKey(cfg, bench), 2000, []byte("not a machine state"))
		res := runCheckpointed(t, cfg, bench, store, 1000)
		if got := resultDigest(t, res); got != want {
			t.Errorf("digest %s != plain %s", got, want)
		}
	})
	t.Run("foreign-version", func(t *testing.T) {
		store := ckptStore(t)
		// A real snapshot, re-stamped with a future StateVersion: the
		// envelope validates, DecodeState succeeds, Restore refuses.
		seed := ckptStore(t)
		runCheckpointed(t, cfg, bench, seed, 2000)
		_, raw, ok := seed.Latest(CheckpointKey(cfg, bench), cfg.MaxCycles)
		if !ok {
			t.Fatal("no seed checkpoint")
		}
		st, err := sim.DecodeState(raw)
		if err != nil {
			t.Fatal(err)
		}
		st.Version = sim.StateVersion + 1
		reraw, err := sim.EncodeState(st)
		if err != nil {
			t.Fatal(err)
		}
		store.Put(CheckpointKey(cfg, bench), st.Now, reraw)
		res := runCheckpointed(t, cfg, bench, store, 1000)
		if got := resultDigest(t, res); got != want {
			t.Errorf("digest %s != plain %s", got, want)
		}
	})
}

// Configurations checkpointing does not cover run plain: correct
// results, no checkpoints written.
func TestUncoveredConfigsRunPlain(t *testing.T) {
	store := ckptStore(t)
	cfg := schemeCfg(t, "ctr_mac_bmt", 2000, 0)
	cfg.Probe = &ProbeConfig{Spans: true}
	res := runCheckpointed(t, cfg, "nw", store, 500)
	if res == nil || res.Probe == nil {
		t.Fatal("probed run lost its report through the checkpointed path")
	}
	if n := store.Len(); n != 0 {
		t.Fatalf("store holds %d checkpoints for an uncoverable config, want 0", n)
	}
}

// CheckpointKey must be horizon-independent (that is the whole point:
// one lineage serves every MaxCycles) but distinguish everything else.
func TestCheckpointKeyLineage(t *testing.T) {
	a := schemeCfg(t, "ctr_mac_bmt", 3000, 0)
	b := schemeCfg(t, "ctr_mac_bmt", 60000, 0)
	if CheckpointKey(a, "nw") != CheckpointKey(b, "nw") {
		t.Fatal("checkpoint key depends on MaxCycles")
	}
	if CheckpointKey(a, "nw") == CheckpointKey(a, "lbm") {
		t.Fatal("checkpoint key ignores the benchmark")
	}
	c := schemeCfg(t, "direct_mac", 3000, 0)
	if CheckpointKey(a, "nw") == CheckpointKey(c, "nw") {
		t.Fatal("checkpoint key ignores the scheme")
	}
	// Shards is an execution hint, excluded from the canonical JSON:
	// both engines share one lineage.
	d := schemeCfg(t, "ctr_mac_bmt", 3000, 4)
	if CheckpointKey(a, "nw") != CheckpointKey(d, "nw") {
		t.Fatal("checkpoint key depends on Shards")
	}
}
