package checkpoint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"gpusecmem/internal/atomicfile"
)

func open(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutLatestRoundTrip(t *testing.T) {
	s := open(t)
	const key = "cfg|nw"
	state := []byte("machine state at 2000")
	s.Put(key, 2000, state)
	cycle, got, ok := s.Latest(key, 6000)
	if !ok || cycle != 2000 || !bytes.Equal(got, state) {
		t.Fatalf("Latest = (%d, %q, %v), want (2000, %q, true)", cycle, got, ok, state)
	}
	st := s.Stats()
	if st.Puts != 1 || st.Hits != 1 || st.Misses != 0 || st.Errors != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// A newer Put prunes the older checkpoints of the same key: the newest
// serves every horizon the stale ones could, with less remaining work.
func TestPutPrunesOlderCycles(t *testing.T) {
	s := open(t)
	const key = "cfg|nw"
	s.Put(key, 1000, []byte("old"))
	s.Put(key, 3000, []byte("new"))
	if n := s.Len(); n != 1 {
		t.Fatalf("Len = %d after prune, want 1", n)
	}
	if cycle, _, ok := s.Latest(key, 6000); !ok || cycle != 3000 {
		t.Fatalf("Latest = (%d, ok=%v), want 3000", cycle, ok)
	}
	// The pruned 1000-cycle checkpoint is gone, so a shorter horizon
	// has nothing to resume from.
	if _, _, ok := s.Latest(key, 2000); ok {
		t.Fatal("Latest served a pruned checkpoint")
	}
}

// Latest must never return a checkpoint past the requested horizon —
// resuming from beyond MaxCycles would skip the cycles the caller
// asked to simulate.
func TestLatestRespectsMaxCycle(t *testing.T) {
	s := open(t)
	const key = "cfg|nw"
	s.Put(key, 3000, []byte("state"))
	if _, _, ok := s.Latest(key, 2999); ok {
		t.Fatal("Latest returned a checkpoint past maxCycle")
	}
	if cycle, _, ok := s.Latest(key, 3000); !ok || cycle != 3000 {
		t.Fatalf("Latest at exact horizon = (%d, ok=%v), want 3000", cycle, ok)
	}
}

func TestKeysDoNotCollide(t *testing.T) {
	s := open(t)
	s.Put("key-a", 1000, []byte("state-a"))
	s.Put("key-b", 1000, []byte("state-b"))
	if _, got, ok := s.Latest("key-a", 5000); !ok || string(got) != "state-a" {
		t.Fatalf("key-a = (%q, %v)", got, ok)
	}
	if _, got, ok := s.Latest("key-b", 5000); !ok || string(got) != "state-b" {
		t.Fatalf("key-b = (%q, %v)", got, ok)
	}
}

// An entry grafted under another key's file name (digest collision,
// hand-copied file) carries its true key in the envelope and must
// never resume the wrong machine.
func TestForeignEntryIsMissAndRemoved(t *testing.T) {
	s := open(t)
	s.Put("key-a", 1000, []byte("state-a"))
	src := s.path(digestOf("key-a"), 1000)
	dst := s.path(digestOf("key-b"), 1000)
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Latest("key-b", 5000); ok {
		t.Fatal("served an entry stored under a different key")
	}
	if _, err := os.Stat(dst); !os.IsNotExist(err) {
		t.Fatalf("foreign entry not removed (stat err %v)", err)
	}
	if st := s.Stats(); st.Errors == 0 {
		t.Fatalf("foreign entry did not bump the error counter: %+v", st)
	}
}

// A schema from a different (future) store version reads as a miss and
// self-heals, so a downgrade never resumes from state it cannot parse.
func TestSchemaMismatchIsMiss(t *testing.T) {
	s := open(t)
	const key = "cfg|nw"
	path := s.path(digestOf(key), 1000)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	err := atomicfile.WriteFile(path, func(w io.Writer) error {
		return gob.NewEncoder(w).Encode(entry{Schema: "gpusecmem-checkpoint/999", Key: key, Cycle: 1000, State: []byte("x")})
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Latest(key, 5000); ok {
		t.Fatal("served an entry with a foreign schema")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("mismatched entry not removed (stat err %v)", err)
	}
}

// The torn-write table: a checkpoint file truncated or bit-flipped at
// arbitrary byte offsets — the artifacts of crashes and bit rot — must
// read as a clean miss, be removed, and bump the error counter, for
// every variant. The sha256 in the envelope catches flips the gob
// framing would survive.
func TestTornWritesSelfHeal(t *testing.T) {
	const key = "cfg|nw"
	state := bytes.Repeat([]byte("machine state payload "), 64)

	type corruption struct {
		name string
		mut  func([]byte) []byte
	}
	var cases []corruption
	for _, frac := range []struct {
		name string
		at   func(n int) int
	}{
		{"start", func(n int) int { return 1 }},
		{"quarter", func(n int) int { return n / 4 }},
		{"half", func(n int) int { return n / 2 }},
		{"almost-all", func(n int) int { return n - 1 }},
	} {
		frac := frac
		cases = append(cases,
			corruption{"truncate-" + frac.name, func(b []byte) []byte {
				return b[:frac.at(len(b))]
			}},
			corruption{"bitflip-" + frac.name, func(b []byte) []byte {
				out := append([]byte(nil), b...)
				out[frac.at(len(out))] ^= 0x40
				return out
			}},
		)
	}
	cases = append(cases, corruption{"empty", func([]byte) []byte { return nil }})

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := open(t)
			s.Put(key, 1000, state)
			path := s.path(digestOf(key), 1000)
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mut(b), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, _, ok := s.Latest(key, 5000); ok {
				t.Fatal("served a corrupt checkpoint")
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt checkpoint not removed (stat err %v)", err)
			}
			st := s.Stats()
			if st.Errors != 1 || st.Misses != 1 {
				t.Fatalf("stats = %+v, want 1 error + 1 miss", st)
			}
			// A re-Put repairs the slot.
			s.Put(key, 1000, state)
			if _, got, ok := s.Latest(key, 5000); !ok || !bytes.Equal(got, state) {
				t.Fatal("miss after repair Put")
			}
		})
	}
}

// When the newest checkpoint is corrupt, Latest falls back to the
// next-newest valid one instead of reporting a blanket miss.
func TestLatestFallsBackPastCorruption(t *testing.T) {
	s := open(t)
	const key = "cfg|nw"
	s.Put(key, 1000, []byte("older"))
	// Write the newer checkpoint without pruning the older one, as a
	// concurrent writer that died mid-prune would leave it.
	digest := digestOf(key)
	path := s.path(digest, 2000)
	err := atomicfile.WriteFile(path, func(w io.Writer) error {
		// Sum left zero: invalid on read.
		return gob.NewEncoder(w).Encode(entry{Schema: Schema, Key: key, Cycle: 2000, State: []byte("torn")})
	})
	if err != nil {
		t.Fatal(err)
	}
	cycle, got, ok := s.Latest(key, 5000)
	if !ok || cycle != 1000 || string(got) != "older" {
		t.Fatalf("Latest = (%d, %q, %v), want fallback to (1000, older)", cycle, got, ok)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt newest checkpoint not removed during fallback")
	}
}

func TestZeroAndEmptyPutsIgnored(t *testing.T) {
	s := open(t)
	s.Put("k", 0, []byte("state"))
	s.Put("k", 100, nil)
	if n := s.Len(); n != 0 {
		t.Fatalf("Len = %d after degenerate Puts, want 0", n)
	}
	if st := s.Stats(); st.Puts != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLenCountsAcrossKeys(t *testing.T) {
	s := open(t)
	for i := 0; i < 5; i++ {
		s.Put(fmt.Sprintf("key-%d", i), 1000, []byte("s"))
	}
	if n := s.Len(); n != 5 {
		t.Fatalf("Len = %d, want 5", n)
	}
}
