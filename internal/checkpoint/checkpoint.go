// Package checkpoint is the content-addressed on-disk checkpoint
// store behind crash-safe long-horizon runs and incremental horizon
// extension (DESIGN.md §14). Entries are keyed by the checkpoint key —
// the canonical RunKey of the configuration with MaxCycles zeroed, so
// runs of the same machine at different horizons share one lineage —
// plus the snapshot cycle, and hold an opaque, gob-encoded
// sim.MachineState produced by sim.EncodeState.
//
// The envelope discipline mirrors internal/resultcache: a schema tag,
// the full key (so a digest collision can never resume the wrong
// machine), the cycle, and a sha256 over the state bytes, written via
// atomicfile (temp + fsync + rename) so a kill never leaves a torn
// checkpoint. Any unreadable, truncated, schema-mismatched, foreign,
// or sum-mismatched file reads as a miss, is removed, and bumps the
// error counter — corrupt checkpoints self-heal as "start from
// cycle 0", never as wrong state.
//
// Concurrency and aliasing contract: a Store is safe for concurrent
// use by any number of goroutines and processes sharing one directory
// — it holds no mutable in-memory state beyond atomic counters, reads
// only complete files, and writes rename complete files into place.
// The state bytes Latest returns are a fresh read owned by the caller;
// the bytes passed to Put are only read, synchronously, during the
// call.
package checkpoint

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"gpusecmem/internal/atomicfile"
)

// Schema versions the on-disk envelope; bump it when the envelope
// changes (the machine-state payload carries its own sim.StateVersion
// inside the opaque bytes).
const Schema = "gpusecmem-checkpoint/1"

// ext is the checkpoint file extension.
const ext = ".ckpt"

// entry is the on-disk envelope.
type entry struct {
	Schema string
	Key    string
	Cycle  uint64
	// Sum is the sha256 of State, so a torn or bit-rotted payload is
	// detected even when the gob framing happens to survive.
	Sum   [sha256.Size]byte
	State []byte
}

// Stats counts store behaviour since Open.
type Stats struct {
	// Hits counts Latest calls that returned a valid checkpoint;
	// Misses counts those that found none.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Puts   uint64 `json:"puts"`
	// Errors counts unreadable/corrupt entries (removed on sight) and
	// failed writes; the store degrades to "start from cycle 0" rather
	// than failing a run.
	Errors uint64 `json:"errors"`
}

// Store is a persistent checkpoint store rooted at one directory.
type Store struct {
	dir string

	hits, misses, puts, errs atomic.Uint64
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store root.
func (s *Store) Dir() string { return s.dir }

func digestOf(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// path fans entries over 256 two-hex-digit subdirectories; the file
// name carries the cycle so Latest can order candidates without
// opening them.
func (s *Store) path(digest string, cycle uint64) string {
	return filepath.Join(s.dir, digest[:2], fmt.Sprintf("%s-%d%s", digest, cycle, ext))
}

// Put stores the state snapshot taken at the given cycle, atomically,
// and prunes older checkpoints of the same key (the newest dominates:
// any horizon a stale checkpoint could serve, the new one serves with
// less remaining work). Best-effort: a failed write is counted and
// swallowed — checkpointing must never fail the run it protects.
func (s *Store) Put(key string, cycle uint64, state []byte) error {
	if len(state) == 0 || cycle == 0 {
		return nil
	}
	digest := digestOf(key)
	path := s.path(digest, cycle)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		s.errs.Add(1)
		return nil
	}
	err := atomicfile.WriteFile(path, func(w io.Writer) error {
		return gob.NewEncoder(w).Encode(entry{
			Schema: Schema,
			Key:    key,
			Cycle:  cycle,
			Sum:    sha256.Sum256(state),
			State:  state,
		})
	})
	if err != nil {
		s.errs.Add(1)
		return nil
	}
	s.puts.Add(1)
	for _, c := range s.cycles(digest) {
		if c < cycle {
			os.Remove(s.path(digest, c))
		}
	}
	return nil
}

// cycles lists the on-disk checkpoint cycles for a key digest, newest
// first. Files whose names do not parse are ignored (Latest will never
// open them; they are not this store's).
func (s *Store) cycles(digest string) []uint64 {
	dir := filepath.Join(s.dir, digest[:2])
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []uint64
	prefix := digest + "-"
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ext) {
			continue
		}
		c, err := strconv.ParseUint(name[len(prefix):len(name)-len(ext)], 10, 64)
		if err != nil || c == 0 {
			continue
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}

// Latest returns the newest valid checkpoint for key with cycle <=
// maxCycle, or ok=false. Every candidate is validated — envelope
// decode, schema, key, cycle, payload sha256 — and any invalid file is
// removed (self-heal) before the next-newest is tried.
func (s *Store) Latest(key string, maxCycle uint64) (cycle uint64, state []byte, ok bool) {
	digest := digestOf(key)
	for _, c := range s.cycles(digest) {
		if c > maxCycle {
			continue
		}
		path := s.path(digest, c)
		st, valid := s.read(path, key, c)
		if !valid {
			os.Remove(path)
			s.errs.Add(1)
			continue
		}
		s.hits.Add(1)
		return c, st, true
	}
	s.misses.Add(1)
	return 0, nil, false
}

// read opens and fully validates one checkpoint file.
func (s *Store) read(path, key string, cycle uint64) ([]byte, bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	var e entry
	if err := gob.NewDecoder(f).Decode(&e); err != nil ||
		e.Schema != Schema || e.Key != key || e.Cycle != cycle ||
		len(e.State) == 0 || sha256.Sum256(e.State) != e.Sum {
		return nil, false
	}
	return e.State, true
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:   s.hits.Load(),
		Misses: s.misses.Load(),
		Puts:   s.puts.Load(),
		Errors: s.errs.Load(),
	}
}

// Len walks the store and counts checkpoints (diagnostics only).
func (s *Store) Len() int {
	n := 0
	filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) == ext {
			n++
		}
		return nil
	})
	return n
}
