// Package probe is the simulator's cycle-domain observability layer:
// request-lifecycle spans with per-stage latency attribution, a
// windowed timeline sampler, and bounded span records for Chrome
// trace-event export.
//
// The layer follows the same zero-cost-when-nil contract as
// internal/faults: a nil *Config on sim.Config leaves every hot path
// behind a single nil check and the simulation byte-identical to an
// uninstrumented run. Probes only *observe* — they never schedule
// work, never perturb timing, and derive every number from cycle
// stamps the simulator already computes. With the same configuration
// and workload, a probed run therefore produces the same Result as an
// unprobed one, plus a deterministic Report (see DESIGN.md §9 for the
// determinism contract).
//
// Concurrency and aliasing contract: a probe instance is single-owner
// state attached to one simulator instance and driven from its
// goroutine. Span and timeline records index global cycle-ordered
// state, which is why the parallel partition engine falls back to the
// sequential engine when a probe is attached rather than interleave
// writers (DESIGN.md "Parallel partition engine").
package probe

import "fmt"

// Stage identifies one phase of a memory request's lifecycle. The
// stages partition a traced request's issue→reply interval: whatever
// resource is the binding constraint at each point in time owns those
// cycles, so the per-stage durations of a span always sum exactly to
// its end-to-end latency (the conservation property tests enforce).
type Stage int

// Lifecycle stages.
const (
	// StageQueue is interconnect transit (request and reply hops) plus
	// reply-scheduling slack.
	StageQueue Stage = iota
	// StageL2 is L2 bank lookup/hit service time.
	StageL2
	// StageDRAM is DRAM service of the request's own data (queueing in
	// the channel included).
	StageDRAM
	// StageMeta is time waiting on metadata (counter/MAC line fetches)
	// beyond the point the data itself was ready — the paper's
	// "metadata traffic" cost on the critical path.
	StageMeta
	// StageAES is cipher time exposed on the critical path (OTP
	// generation that outlasted the data fetch, or direct decryption).
	StageAES
	// StageVerify is blocking MAC verification time (zero under
	// speculative verification, where the check runs in background).
	StageVerify
	// StageShareFetch is the secret-share fan-out window of a
	// scattered-memory read: from the placement answer to the last
	// share's arrival. Zero for every non-scattered scheme. (Named
	// apart from the StageShare report struct below.)
	StageShareFetch
	// StageCombine is the share-reconstruction (XOR combine) time of a
	// scattered-memory read after its last share lands.
	StageCombine
	// NumStages bounds the stage space.
	NumStages
)

var stageNames = [NumStages]string{
	StageQueue:      "queue",
	StageL2:         "l2",
	StageDRAM:       "dram",
	StageMeta:       "meta",
	StageAES:        "aes",
	StageVerify:     "verify",
	StageShareFetch: "share",
	StageCombine:    "combine",
}

func (s Stage) String() string {
	if s >= 0 && s < NumStages {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// Config selects which instruments a run carries. It is a plain value
// struct so it participates in the canonical JSON memo key of a
// simulator Config — probed and unprobed runs memoize separately even
// though their timing is identical.
type Config struct {
	// Spans enables request-lifecycle span collection (per-kind,
	// per-stage latency histograms and cycle attribution).
	Spans bool
	// TimelineInterval samples the windowed timeline every N cycles;
	// 0 disables the sampler.
	TimelineInterval uint64
	// TimelineCap bounds retained timeline samples; when the ring is
	// full the oldest window is evicted. 0 means DefaultTimelineCap.
	TimelineCap int
	// Trace retains bounded per-span records for Chrome trace-event
	// export (implies span collection).
	Trace bool
	// TraceCap bounds retained span records; once full, later spans
	// still feed the histograms but are not recorded. 0 means
	// DefaultTraceCap.
	TraceCap int
}

// Default buffer bounds.
const (
	DefaultTimelineCap = 4096
	DefaultTraceCap    = 65536
)

// Enabled reports whether the config switches any instrument on.
func (c *Config) Enabled() bool {
	return c != nil && (c.Spans || c.Trace || c.TimelineInterval > 0)
}

// Validate reports malformed probe configurations.
func (c *Config) Validate() error {
	if c == nil {
		return nil
	}
	if c.TimelineCap < 0 {
		return fmt.Errorf("probe: TimelineCap %d negative", c.TimelineCap)
	}
	if c.TraceCap < 0 {
		return fmt.Errorf("probe: TraceCap %d negative", c.TraceCap)
	}
	return nil
}

// Span is one traced request: its lifecycle window and the exact
// partition of that window across stages.
type Span struct {
	// Kind is the caller's traffic-kind index (see State kinds).
	Kind int
	// Part is the memory partition that serviced the request.
	Part int
	// Start / End bound the lifecycle (issue cycle → reply delivery).
	Start, End uint64
	// Stages attributes every cycle of [Start, End) to a stage.
	Stages [NumStages]uint64
}

// SpanRecord is the compact retained form of a Span for trace export.
type SpanRecord struct {
	Kind   uint8
	Part   uint16
	Start  uint64
	Stages [NumStages]uint32
}

// Hist is a log2-bucketed latency histogram: bucket i counts values v
// with 2^(i-1) <= v < 2^i (bucket 0 counts zeros).
type Hist struct {
	Buckets [33]uint64
	Count   uint64
	Sum     uint64
	Max     uint64
}

// bucketOf returns the bucket index of v.
func bucketOf(v uint64) int {
	b := 0
	for v > 0 {
		b++
		v >>= 1
	}
	return b
}

// Observe records one value.
func (h *Hist) Observe(v uint64) {
	h.Buckets[bucketOf(v)]++
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
}

// Mean is the average observed value.
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile approximates the q-quantile (q in [0,1]) from the bucket
// boundaries: it returns the upper bound of the bucket holding the
// q-th observation.
func (h *Hist) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	target := uint64(q * float64(h.Count))
	if target >= h.Count {
		target = h.Count - 1
	}
	var seen uint64
	for i, c := range h.Buckets {
		seen += c
		if seen > target {
			if i == 0 {
				return 0
			}
			return 1 << uint(i-1)
		}
	}
	return h.Max
}

// SpanCollector folds spans into per-kind, per-stage histograms and
// cycle totals, and retains up to traceCap compact records.
type SpanCollector struct {
	kinds       []string
	latency     []Hist            // [kind]: end-to-end latency
	stageHist   [][NumStages]Hist // [kind][stage]: per-stage duration
	stageCycles [][NumStages]uint64
	spans       uint64
	unbalanced  uint64

	records  []SpanRecord
	traceCap int
	dropped  uint64
}

// NewSpanCollector builds a collector over the given kind labels.
// traceCap bounds retained records (0 disables record retention).
func NewSpanCollector(kinds []string, traceCap int) *SpanCollector {
	return &SpanCollector{
		kinds:       kinds,
		latency:     make([]Hist, len(kinds)),
		stageHist:   make([][NumStages]Hist, len(kinds)),
		stageCycles: make([][NumStages]uint64, len(kinds)),
		traceCap:    traceCap,
	}
}

// Record folds one span. A span whose stage durations do not sum to
// its end-to-end latency is still counted, but flags the collector's
// Unbalanced counter — the conservation tests assert it stays zero.
func (c *SpanCollector) Record(s Span) {
	if s.Kind < 0 || s.Kind >= len(c.kinds) {
		return
	}
	c.spans++
	total := s.End - s.Start
	var sum uint64
	for st, d := range s.Stages {
		sum += d
		if d > 0 {
			c.stageHist[s.Kind][st].Observe(d)
			c.stageCycles[s.Kind][st] += d
		}
	}
	if sum != total {
		c.unbalanced++
	}
	c.latency[s.Kind].Observe(total)
	if c.traceCap > 0 {
		if len(c.records) < c.traceCap {
			rec := SpanRecord{Kind: uint8(s.Kind), Part: uint16(s.Part), Start: s.Start}
			for st, d := range s.Stages {
				rec.Stages[st] = uint32(d)
			}
			c.records = append(c.records, rec)
		} else {
			c.dropped++
		}
	}
}

// Spans reports how many spans were recorded.
func (c *SpanCollector) Spans() uint64 { return c.spans }

// Unbalanced reports spans whose stages did not sum to their latency.
func (c *SpanCollector) Unbalanced() uint64 { return c.unbalanced }

// StageCycles returns total cycles attributed to (kind, stage).
func (c *SpanCollector) StageCycles(kind int, st Stage) uint64 {
	if kind < 0 || kind >= len(c.stageCycles) {
		return 0
	}
	return c.stageCycles[kind][st]
}

// State is the live instrument set of one simulation run. Build one
// per GPU with NewState; it is not safe for concurrent use (neither
// is the simulator).
type State struct {
	cfg      Config
	kinds    []string
	Spans    *SpanCollector
	Timeline *Timeline
}

// NewState builds the instruments cfg asks for over the given traffic
// kind labels. Returns nil when cfg enables nothing — callers gate
// every hook on that nil.
func NewState(cfg *Config, kinds []string) *State {
	if !cfg.Enabled() {
		return nil
	}
	s := &State{cfg: *cfg, kinds: kinds}
	if cfg.Spans || cfg.Trace {
		traceCap := 0
		if cfg.Trace {
			traceCap = cfg.TraceCap
			if traceCap == 0 {
				traceCap = DefaultTraceCap
			}
		}
		s.Spans = NewSpanCollector(kinds, traceCap)
	}
	if cfg.TimelineInterval > 0 {
		tlCap := cfg.TimelineCap
		if tlCap == 0 {
			tlCap = DefaultTimelineCap
		}
		s.Timeline = NewTimeline(cfg.TimelineInterval, tlCap, kinds)
	}
	return s
}

// Report freezes the run's observations into the deterministic output
// form carried on sim.Result.
func (s *State) Report() *Report {
	if s == nil {
		return nil
	}
	r := &Report{kinds: s.kinds}
	if s.Spans != nil {
		r.Spans = s.Spans.report()
		r.trace = s.Spans.records
	}
	if s.Timeline != nil {
		r.Timeline = s.Timeline.Samples()
		r.TimelineDropped = s.Timeline.Dropped()
	}
	return r
}

// Report is the output of a probed run: the latency-attribution
// breakdown, the timeline samples, and (not marshalled) the retained
// span records for trace export.
type Report struct {
	Spans           *SpansReport `json:"spans,omitempty"`
	Timeline        []Sample     `json:"timeline,omitempty"`
	TimelineDropped uint64       `json:"timeline_dropped,omitempty"`

	// trace and kinds feed WriteChromeTrace; they are not part of the
	// JSON form (trace files are written separately).
	trace []SpanRecord
	kinds []string
}

// TraceSpans reports how many span records are available for trace
// export.
func (r *Report) TraceSpans() int { return len(r.trace) }

// SpansReport is the per-kind latency-attribution summary.
type SpansReport struct {
	// Spans counts traced requests; Unbalanced counts spans whose
	// stage durations failed to sum to their latency (always 0 unless
	// the attribution logic has a bug).
	Spans      uint64          `json:"spans"`
	Unbalanced uint64          `json:"unbalanced,omitempty"`
	Dropped    uint64          `json:"trace_dropped,omitempty"`
	Kinds      []KindBreakdown `json:"kinds"`
}

// KindBreakdown attributes one traffic kind's cycles across stages.
type KindBreakdown struct {
	Kind        string       `json:"kind"`
	Spans       uint64       `json:"spans"`
	TotalCycles uint64       `json:"total_cycles"`
	MeanLatency float64      `json:"mean_latency"`
	P50         uint64       `json:"p50"`
	P95         uint64       `json:"p95"`
	P99         uint64       `json:"p99"`
	MaxLatency  uint64       `json:"max_latency"`
	Stages      []StageShare `json:"stages"`
}

// StageShare is one stage's slice of a kind's cycles.
type StageShare struct {
	Stage  string  `json:"stage"`
	Cycles uint64  `json:"cycles"`
	Share  float64 `json:"share"`
}

// Stage returns the cycles attributed to (kind, stage), 0 when the
// kind was never traced.
func (r *SpansReport) Stage(kind, stage string) uint64 {
	for _, k := range r.Kinds {
		if k.Kind != kind {
			continue
		}
		for _, s := range k.Stages {
			if s.Stage == stage {
				return s.Cycles
			}
		}
	}
	return 0
}

// Kind returns the breakdown for one kind label, nil when untraced.
func (r *SpansReport) Kind(kind string) *KindBreakdown {
	for i := range r.Kinds {
		if r.Kinds[i].Kind == kind {
			return &r.Kinds[i]
		}
	}
	return nil
}

func (c *SpanCollector) report() *SpansReport {
	rep := &SpansReport{Spans: c.spans, Unbalanced: c.unbalanced, Dropped: c.dropped}
	for k, label := range c.kinds {
		lat := &c.latency[k]
		if lat.Count == 0 {
			continue
		}
		kb := KindBreakdown{
			Kind:        label,
			Spans:       lat.Count,
			TotalCycles: lat.Sum,
			MeanLatency: lat.Mean(),
			P50:         lat.Quantile(0.50),
			P95:         lat.Quantile(0.95),
			P99:         lat.Quantile(0.99),
			MaxLatency:  lat.Max,
		}
		for st := Stage(0); st < NumStages; st++ {
			cyc := c.stageCycles[k][st]
			share := 0.0
			if lat.Sum > 0 {
				share = float64(cyc) / float64(lat.Sum)
			}
			kb.Stages = append(kb.Stages, StageShare{Stage: st.String(), Cycles: cyc, Share: share})
		}
		rep.Kinds = append(rep.Kinds, kb)
	}
	return rep
}
