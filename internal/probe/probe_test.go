package probe

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestHistBuckets(t *testing.T) {
	// bucket 0 holds zeros; bucket i holds 2^(i-1) <= v < 2^i.
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{255, 8}, {256, 9}, {1 << 31, 32},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}

	var h Hist
	for _, c := range cases {
		h.Observe(c.v)
	}
	if h.Count != uint64(len(cases)) {
		t.Fatalf("Count = %d, want %d", h.Count, len(cases))
	}
	if h.Max != 1<<31 {
		t.Fatalf("Max = %d, want %d", h.Max, 1<<31)
	}
	var sum uint64
	for _, c := range cases {
		sum += c.v
	}
	if h.Sum != sum {
		t.Fatalf("Sum = %d, want %d", h.Sum, sum)
	}
}

func TestHistQuantile(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	// 100 observations of 100 cycles each: every quantile lands in the
	// bucket [64, 128), whose reported bound is 64.
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1.0} {
		if got := h.Quantile(q); got != 64 {
			t.Errorf("Quantile(%g) = %d, want 64", q, got)
		}
	}
	// A tail observation moves only the top quantile.
	h.Observe(100000)
	if got := h.Quantile(0.5); got != 64 {
		t.Errorf("median moved to %d after one outlier", got)
	}
	if got := h.Quantile(1.0); got != 1<<16 {
		t.Errorf("Quantile(1.0) = %d, want %d", got, 1<<16)
	}
}

func TestHistMean(t *testing.T) {
	var h Hist
	if h.Mean() != 0 {
		t.Fatal("empty histogram mean must be 0")
	}
	h.Observe(10)
	h.Observe(20)
	if h.Mean() != 15 {
		t.Fatalf("Mean = %g, want 15", h.Mean())
	}
}

func TestSpanCollectorConservation(t *testing.T) {
	c := NewSpanCollector([]string{"data", "ctr"}, 0)
	balanced := Span{Kind: 0, Start: 100, End: 150}
	balanced.Stages[StageQueue] = 20
	balanced.Stages[StageDRAM] = 30
	c.Record(balanced)
	if c.Unbalanced() != 0 {
		t.Fatal("balanced span flagged unbalanced")
	}

	broken := Span{Kind: 0, Start: 100, End: 150}
	broken.Stages[StageDRAM] = 49 // one cycle lost
	c.Record(broken)
	if c.Unbalanced() != 1 {
		t.Fatalf("Unbalanced = %d, want 1", c.Unbalanced())
	}
	if c.Spans() != 2 {
		t.Fatalf("Spans = %d, want 2", c.Spans())
	}
	if got := c.StageCycles(0, StageDRAM); got != 79 {
		t.Fatalf("StageCycles(data, dram) = %d, want 79", got)
	}
	// Out-of-range kinds are ignored, not counted.
	c.Record(Span{Kind: 7, Start: 0, End: 1})
	c.Record(Span{Kind: -1, Start: 0, End: 1})
	if c.Spans() != 2 {
		t.Fatalf("out-of-range kind recorded: Spans = %d", c.Spans())
	}
}

func TestSpanCollectorTraceCap(t *testing.T) {
	c := NewSpanCollector([]string{"data"}, 2)
	for i := 0; i < 5; i++ {
		s := Span{Kind: 0, Start: uint64(i), End: uint64(i) + 10}
		s.Stages[StageDRAM] = 10
		c.Record(s)
	}
	if len(c.records) != 2 {
		t.Fatalf("retained %d records, want 2", len(c.records))
	}
	if c.dropped != 3 {
		t.Fatalf("dropped = %d, want 3", c.dropped)
	}
	// All five still feed the histograms.
	if c.Spans() != 5 {
		t.Fatalf("Spans = %d, want 5", c.Spans())
	}
	rep := c.report()
	if rep.Dropped != 3 {
		t.Fatalf("report Dropped = %d, want 3", rep.Dropped)
	}
}

func TestSpansReportLookups(t *testing.T) {
	c := NewSpanCollector([]string{"data", "ctr"}, 0)
	s := Span{Kind: 0, Start: 0, End: 40}
	s.Stages[StageQueue] = 10
	s.Stages[StageAES] = 30
	c.Record(s)
	rep := c.report()
	if rep.Stage("data", "aes") != 30 {
		t.Fatalf("Stage(data, aes) = %d", rep.Stage("data", "aes"))
	}
	if rep.Stage("ctr", "aes") != 0 || rep.Stage("data", "nope") != 0 {
		t.Fatal("missing kind/stage must return 0")
	}
	kb := rep.Kind("data")
	if kb == nil || kb.TotalCycles != 40 {
		t.Fatalf("Kind(data) = %+v", kb)
	}
	if rep.Kind("ctr") != nil {
		t.Fatal("untraced kind must be nil")
	}
	var share float64
	for _, st := range kb.Stages {
		share += st.Share
	}
	if share < 0.999 || share > 1.001 {
		t.Fatalf("stage shares sum to %g, want 1", share)
	}
}

func TestTimelineRing(t *testing.T) {
	tl := NewTimeline(100, 3, []string{"data"})
	for i := 1; i <= 5; i++ {
		tl.Observe(uint64(i*100), Totals{Instructions: uint64(i * 50)}, Instant{DRAMQueue: i})
	}
	if tl.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", tl.Dropped())
	}
	got := tl.Samples()
	if len(got) != 3 {
		t.Fatalf("retained %d samples, want 3", len(got))
	}
	// Chronological order after wraparound: windows 3, 4, 5.
	for i, want := range []uint64{300, 400, 500} {
		if got[i].Cycle != want {
			t.Fatalf("sample %d at cycle %d, want %d", i, got[i].Cycle, want)
		}
	}
	// Windowed deltas: each window adds 50 instructions at interval 100.
	for i, s := range got {
		if s.Instructions != 50 {
			t.Fatalf("sample %d instructions = %d, want 50", i, s.Instructions)
		}
		if s.IPC != 0.5 {
			t.Fatalf("sample %d IPC = %g, want 0.5", i, s.IPC)
		}
	}
	if got[2].DRAMQueue != 5 {
		t.Fatalf("gauge not carried: DRAMQueue = %d", got[2].DRAMQueue)
	}
}

func TestTimelineFirstWindowIsAbsolute(t *testing.T) {
	tl := NewTimeline(100, 8, []string{"data"})
	tl.Observe(100, Totals{Instructions: 42, BytesByKind: []uint64{128}}, Instant{})
	s := tl.Samples()
	if len(s) != 1 || s[0].Instructions != 42 || s[0].Bytes["data"] != 128 {
		t.Fatalf("first window not absolute: %+v", s)
	}
}

func makeSamples() []Sample {
	tl := NewTimeline(500, 16, []string{"data", "ctr"})
	tl.Observe(500, Totals{
		Instructions: 1000, DRAMReads: 20, RowHits: 15, RowMisses: 5,
		BytesByKind: []uint64{640, 128}, RequestsByKind: []uint64{20, 4},
		MetaAccesses: [8]uint64{10, 0, 0}, MetaMisses: [8]uint64{4, 0, 0},
	}, Instant{MetaMSHRs: 3, DRAMQueue: 7, BusyBanks: 2})
	tl.Observe(1000, Totals{
		Instructions: 1800, DRAMReads: 25, RowHits: 18, RowMisses: 7,
		BytesByKind: []uint64{960, 192}, RequestsByKind: []uint64{30, 6},
		MetaAccesses: [8]uint64{14, 0, 0}, MetaMisses: [8]uint64{5, 0, 0},
	}, Instant{})
	return tl.Samples()
}

func TestWriteTimelineNDJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTimelineNDJSON(&buf, makeSamples()); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var s Sample
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("line %d: %v", lines+1, err)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("wrote %d lines, want 2", lines)
	}
}

func TestWriteTimelineCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTimelineCSV(&buf, makeSamples()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("wrote %d lines, want header + 2 rows", len(lines))
	}
	header := strings.Split(lines[0], ",")
	want := len(timelineColumns) + 4 // bytes_ctr, bytes_data, requests_ctr, requests_data
	if len(header) != want {
		t.Fatalf("header has %d columns, want %d: %v", len(header), want, header)
	}
	for _, row := range lines[1:] {
		if got := len(strings.Split(row, ",")); got != want {
			t.Fatalf("row has %d columns, want %d", got, want)
		}
	}
	// Per-kind columns are sorted: ctr before data.
	h := lines[0]
	if strings.Index(h, "bytes_ctr") > strings.Index(h, "bytes_data") {
		t.Fatal("per-kind columns not sorted")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	c := NewSpanCollector([]string{"data", "ctr"}, 16)
	s := Span{Kind: 0, Part: 3, Start: 1000, End: 1100}
	s.Stages[StageQueue] = 20
	s.Stages[StageDRAM] = 60
	s.Stages[StageAES] = 20
	c.Record(s)
	st := &State{kinds: []string{"data", "ctr"}, Spans: c}
	rep := st.Report()
	if rep.TraceSpans() != 1 {
		t.Fatalf("TraceSpans = %d, want 1", rep.TraceSpans())
	}

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   uint64 `json:"ts"`
			Dur  uint64 `json:"dur"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	var xs, ms int
	var end uint64
	for _, e := range out.TraceEvents {
		switch e.Ph {
		case "X":
			xs++
			if e.Tid != 3 {
				t.Fatalf("event on tid %d, want partition 3", e.Tid)
			}
			if e.Ts+e.Dur > end {
				end = e.Ts + e.Dur
			}
		case "M":
			ms++
		}
	}
	if xs != 3 {
		t.Fatalf("%d X events, want 3 (one per non-zero stage)", xs)
	}
	if ms < 2 {
		t.Fatalf("%d metadata events, want process + thread names", ms)
	}
	// Stages tile the span contiguously from its start.
	if end != 1100 {
		t.Fatalf("stages end at %d, want 1100", end)
	}
}

func TestConfigEnabledAndValidate(t *testing.T) {
	var nilCfg *Config
	if nilCfg.Enabled() {
		t.Fatal("nil config enabled")
	}
	if err := nilCfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if (&Config{}).Enabled() {
		t.Fatal("zero config enabled")
	}
	for _, c := range []Config{{Spans: true}, {Trace: true}, {TimelineInterval: 100}} {
		if !c.Enabled() {
			t.Fatalf("config %+v not enabled", c)
		}
	}
	if err := (&Config{TimelineCap: -1}).Validate(); err == nil {
		t.Fatal("negative TimelineCap accepted")
	}
	if err := (&Config{TraceCap: -1}).Validate(); err == nil {
		t.Fatal("negative TraceCap accepted")
	}
}

func TestNewState(t *testing.T) {
	kinds := []string{"data"}
	if NewState(nil, kinds) != nil {
		t.Fatal("nil config must produce nil state")
	}
	if NewState(&Config{}, kinds) != nil {
		t.Fatal("disabled config must produce nil state")
	}
	var nilState *State
	if nilState.Report() != nil {
		t.Fatal("nil state Report must be nil")
	}

	s := NewState(&Config{Spans: true}, kinds)
	if s == nil || s.Spans == nil || s.Timeline != nil {
		t.Fatalf("spans-only state wrong: %+v", s)
	}
	if s.Spans.traceCap != 0 {
		t.Fatal("spans without trace must not retain records")
	}
	s = NewState(&Config{Trace: true}, kinds)
	if s.Spans == nil || s.Spans.traceCap != DefaultTraceCap {
		t.Fatal("trace must imply span collection with the default cap")
	}
	s = NewState(&Config{TimelineInterval: 500}, kinds)
	if s.Timeline == nil || s.Spans != nil {
		t.Fatalf("timeline-only state wrong: %+v", s)
	}
	if s.Timeline.Interval() != 500 {
		t.Fatalf("interval = %d", s.Timeline.Interval())
	}
}
