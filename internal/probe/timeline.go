package probe

// Totals is the cumulative-counter snapshot the simulator hands the
// timeline every sampling interval; the sampler differences
// consecutive snapshots into windowed rates.
type Totals struct {
	Instructions   uint64
	DRAMReads      uint64
	DRAMWrites     uint64
	RowHits        uint64
	RowMisses      uint64
	BytesByKind    []uint64
	RequestsByKind []uint64
	// Metadata cache accesses/misses, indexed like the caller's
	// MetaKind space (counter, MAC, tree, plus the extension schemes'
	// share-map and key-table types; sized for headroom).
	MetaAccesses [8]uint64
	MetaMisses   [8]uint64
}

// Instant is the gauge snapshot taken at the sampling cycle.
type Instant struct {
	MetaMSHRs        int
	L2MSHRs          int
	DRAMQueue        int
	BusyBanks        int
	OutstandingLoads int
	BlockedWarps     int
}

// Sample is one timeline window: rates over [Cycle-interval, Cycle)
// plus end-of-window gauges.
type Sample struct {
	Cycle uint64 `json:"cycle"`

	// Windowed deltas.
	Instructions uint64            `json:"instructions"`
	IPC          float64           `json:"ipc"`
	DRAMReads    uint64            `json:"dram_reads"`
	DRAMWrites   uint64            `json:"dram_writes"`
	RowHitRate   float64           `json:"row_hit_rate"`
	Bytes        map[string]uint64 `json:"bytes"`
	Requests     map[string]uint64 `json:"requests"`
	CtrMissRate  float64           `json:"ctr_miss_rate"`
	MACMissRate  float64           `json:"mac_miss_rate"`
	TreeMissRate float64           `json:"tree_miss_rate"`

	// End-of-window gauges.
	MetaMSHRs        int `json:"meta_mshrs"`
	L2MSHRs          int `json:"l2_mshrs"`
	DRAMQueue        int `json:"dram_queue"`
	BusyBanks        int `json:"busy_banks"`
	OutstandingLoads int `json:"outstanding_loads"`
	BlockedWarps     int `json:"blocked_warps"`
}

// Timeline is the windowed sampler: a ring buffer of the most recent
// capacity windows. Older windows are evicted (and counted) rather
// than letting a multi-hour sweep grow without bound.
type Timeline struct {
	interval uint64
	capacity int
	kinds    []string
	prev     Totals
	havePrev bool

	samples []Sample
	head    int // ring start when full
	dropped uint64
}

// NewTimeline builds a sampler with the given interval (cycles per
// window), ring capacity, and traffic-kind labels.
func NewTimeline(interval uint64, capacity int, kinds []string) *Timeline {
	if capacity <= 0 {
		capacity = DefaultTimelineCap
	}
	return &Timeline{interval: interval, capacity: capacity, kinds: kinds}
}

// Interval is the sampling period in cycles.
func (t *Timeline) Interval() uint64 { return t.interval }

// Dropped counts windows evicted from the ring.
func (t *Timeline) Dropped() uint64 { return t.dropped }

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Observe closes the current window at cycle `now`: cumulative totals
// are differenced against the previous window's, gauges are taken
// as-is.
func (t *Timeline) Observe(now uint64, tot Totals, inst Instant) {
	s := Sample{
		Cycle:            now,
		MetaMSHRs:        inst.MetaMSHRs,
		L2MSHRs:          inst.L2MSHRs,
		DRAMQueue:        inst.DRAMQueue,
		BusyBanks:        inst.BusyBanks,
		OutstandingLoads: inst.OutstandingLoads,
		BlockedWarps:     inst.BlockedWarps,
		Bytes:            make(map[string]uint64, len(t.kinds)),
		Requests:         make(map[string]uint64, len(t.kinds)),
	}
	prev := t.prev
	if !t.havePrev {
		prev = Totals{
			BytesByKind:    make([]uint64, len(tot.BytesByKind)),
			RequestsByKind: make([]uint64, len(tot.RequestsByKind)),
		}
	}
	s.Instructions = tot.Instructions - prev.Instructions
	if t.interval > 0 {
		s.IPC = float64(s.Instructions) / float64(t.interval)
	}
	s.DRAMReads = tot.DRAMReads - prev.DRAMReads
	s.DRAMWrites = tot.DRAMWrites - prev.DRAMWrites
	s.RowHitRate = ratio(tot.RowHits-prev.RowHits,
		(tot.RowHits-prev.RowHits)+(tot.RowMisses-prev.RowMisses))
	for k, label := range t.kinds {
		var b, r uint64
		if k < len(tot.BytesByKind) {
			b = tot.BytesByKind[k]
			if k < len(prev.BytesByKind) {
				b -= prev.BytesByKind[k]
			}
		}
		if k < len(tot.RequestsByKind) {
			r = tot.RequestsByKind[k]
			if k < len(prev.RequestsByKind) {
				r -= prev.RequestsByKind[k]
			}
		}
		s.Bytes[label] = b
		s.Requests[label] = r
	}
	s.CtrMissRate = ratio(tot.MetaMisses[0]-prev.MetaMisses[0], tot.MetaAccesses[0]-prev.MetaAccesses[0])
	s.MACMissRate = ratio(tot.MetaMisses[1]-prev.MetaMisses[1], tot.MetaAccesses[1]-prev.MetaAccesses[1])
	s.TreeMissRate = ratio(tot.MetaMisses[2]-prev.MetaMisses[2], tot.MetaAccesses[2]-prev.MetaAccesses[2])

	t.prev = tot
	t.havePrev = true
	if len(t.samples) < t.capacity {
		t.samples = append(t.samples, s)
		return
	}
	t.samples[t.head] = s
	t.head = (t.head + 1) % t.capacity
	t.dropped++
}

// Samples returns the retained windows in chronological order.
func (t *Timeline) Samples() []Sample {
	if t.head == 0 {
		return append([]Sample(nil), t.samples...)
	}
	out := make([]Sample, 0, len(t.samples))
	out = append(out, t.samples[t.head:]...)
	out = append(out, t.samples[:t.head]...)
	return out
}
