package probe

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteTimelineNDJSON emits one JSON object per timeline window, one
// per line (newline-delimited JSON).
func WriteTimelineNDJSON(w io.Writer, samples []Sample) error {
	enc := json.NewEncoder(w)
	for i := range samples {
		if err := enc.Encode(&samples[i]); err != nil {
			return err
		}
	}
	return nil
}

// timelineColumns is the fixed CSV column set ahead of the per-kind
// bytes/requests columns.
var timelineColumns = []string{
	"cycle", "instructions", "ipc", "dram_reads", "dram_writes",
	"row_hit_rate", "ctr_miss_rate", "mac_miss_rate", "tree_miss_rate",
	"meta_mshrs", "l2_mshrs", "dram_queue", "busy_banks", "outstanding_loads", "blocked_warps",
}

// WriteTimelineCSV emits the timeline as CSV with a stable header:
// the fixed columns, then bytes_<kind> and requests_<kind> for every
// kind observed (sorted).
func WriteTimelineCSV(w io.Writer, samples []Sample) error {
	kinds := map[string]bool{}
	for i := range samples {
		for k := range samples[i].Bytes {
			kinds[k] = true
		}
	}
	sorted := make([]string, 0, len(kinds))
	for k := range kinds {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	header := append([]string(nil), timelineColumns...)
	for _, k := range sorted {
		header = append(header, "bytes_"+k)
	}
	for _, k := range sorted {
		header = append(header, "requests_"+k)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
	for i := range samples {
		s := &samples[i]
		row := []string{
			strconv.FormatUint(s.Cycle, 10),
			strconv.FormatUint(s.Instructions, 10),
			f(s.IPC),
			strconv.FormatUint(s.DRAMReads, 10),
			strconv.FormatUint(s.DRAMWrites, 10),
			f(s.RowHitRate),
			f(s.CtrMissRate),
			f(s.MACMissRate),
			f(s.TreeMissRate),
			strconv.Itoa(s.MetaMSHRs),
			strconv.Itoa(s.L2MSHRs),
			strconv.Itoa(s.DRAMQueue),
			strconv.Itoa(s.BusyBanks),
			strconv.Itoa(s.OutstandingLoads),
			strconv.Itoa(s.BlockedWarps),
		}
		for _, k := range sorted {
			row = append(row, strconv.FormatUint(s.Bytes[k], 10))
		}
		for _, k := range sorted {
			row = append(row, strconv.FormatUint(s.Requests[k], 10))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// traceEvent is one Chrome trace-event (the JSON Array/Object format
// Perfetto and chrome://tracing consume). Timestamps are in
// microseconds; we map one simulated cycle to one microsecond.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceStageOrder lays span stages on the trace timeline in rough
// chronological order (queue transit first, verification last).
// Every stage must appear exactly once: a missing entry leaves a
// zero-valued slot that re-emits StageQueue per span.
var traceStageOrder = [NumStages]Stage{
	StageQueue, StageL2, StageDRAM, StageMeta,
	StageShareFetch, StageCombine, StageAES, StageVerify,
}

// WriteChromeTrace emits the report's retained span records in Chrome
// trace-event format: one complete ("X") event per non-zero stage,
// threaded by memory partition, plus thread-name metadata. Load the
// file in Perfetto (ui.perfetto.dev) or chrome://tracing.
func WriteChromeTrace(w io.Writer, r *Report) error {
	events := make([]traceEvent, 0, 2*len(r.trace)+8)
	parts := map[int]bool{}
	for _, rec := range r.trace {
		kind := "?"
		if int(rec.Kind) < len(r.kinds) {
			kind = r.kinds[rec.Kind]
		}
		parts[int(rec.Part)] = true
		ts := rec.Start
		for _, st := range traceStageOrder {
			d := uint64(rec.Stages[st])
			if d == 0 {
				continue
			}
			events = append(events, traceEvent{
				Name: kind + ":" + st.String(),
				Cat:  kind,
				Ph:   "X",
				Ts:   ts,
				Dur:  d,
				Pid:  0,
				Tid:  int(rec.Part),
			})
			ts += d
		}
	}
	meta := []traceEvent{{
		Name: "process_name", Ph: "M", Pid: 0,
		Args: map[string]any{"name": "gpusecmem"},
	}}
	tids := make([]int, 0, len(parts))
	for p := range parts {
		tids = append(tids, p)
	}
	sort.Ints(tids)
	for _, p := range tids {
		meta = append(meta, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: p,
			Args: map[string]any{"name": fmt.Sprintf("partition %d", p)},
		})
	}
	out := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: append(meta, events...), DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
