package resultcache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"gpusecmem/internal/sim"
)

func simulate(t *testing.T, cycles uint64) *sim.Result {
	t.Helper()
	cfg := sim.SecureMem()
	cfg.MaxCycles = cycles
	res, err := sim.Run(cfg, "nw")
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The disk cache must alter no output bit: a round-tripped Result's
// canonical JSON (the golden-digest form) is byte-identical to the
// fresh simulation's.
func TestRoundTripByteIdentical(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := simulate(t, 2000)
	const key = "cfg-json|nw"
	c.Put(key, res)
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("Get missed after Put")
	}
	want, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	have, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(want) != string(have) {
		t.Fatalf("round trip changed canonical JSON:\nwant %s\nhave %s", want, have)
	}
	st := c.Stats()
	if st.Puts != 1 || st.Hits != 1 || st.Errors != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMissOnUnknownKey(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("never stored"); ok {
		t.Fatal("hit on unknown key")
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// A truncated entry — the artifact a crashed writer without
// atomicfile would leave — must read as a miss and be removed.
func TestCorruptEntrySelfHeals(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := simulate(t, 1000)
	const key = "corrupt|nw"
	c.Put(key, res)
	path := c.path(key)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on truncated entry")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry not removed (stat err %v)", err)
	}
	// A re-Put repairs the slot.
	c.Put(key, res)
	if _, ok := c.Get(key); !ok {
		t.Fatal("miss after repair Put")
	}
}

// The torn-write table: entries truncated at arbitrary byte offsets —
// what a crashed writer or interrupted copy leaves — and entries with
// corruption in the envelope region must all read as a clean miss, be
// removed, and bump the error counter. (Unlike the checkpoint store,
// result entries carry no payload checksum: truncation at any offset
// breaks the gob stream, and envelope corruption trips the schema/key
// checks, but the test deliberately confines bit flips to the envelope
// region.)
func TestTornWritesSelfHeal(t *testing.T) {
	res := simulate(t, 1000)
	const key = "torn|nw"

	type corruption struct {
		name string
		mut  func([]byte) []byte
	}
	var cases []corruption
	for _, frac := range []struct {
		name string
		at   func(n int) int
	}{
		{"start", func(n int) int { return 1 }},
		{"quarter", func(n int) int { return n / 4 }},
		{"half", func(n int) int { return n / 2 }},
		{"almost-all", func(n int) int { return n - 1 }},
	} {
		frac := frac
		cases = append(cases, corruption{"truncate-" + frac.name, func(b []byte) []byte {
			return b[:frac.at(len(b))]
		}})
	}
	for _, off := range []int{4, 16, 32} {
		off := off
		cases = append(cases, corruption{fmt.Sprintf("bitflip-envelope-%d", off), func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[off] ^= 0x40
			return out
		}})
	}
	cases = append(cases, corruption{"empty", func([]byte) []byte { return nil }})

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			c.Put(key, res)
			path := c.path(key)
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mut(b), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := c.Get(key); ok {
				t.Fatal("served a corrupt entry")
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt entry not removed (stat err %v)", err)
			}
			st := c.Stats()
			if st.Errors != 1 || st.Misses != 1 {
				t.Fatalf("stats = %+v, want 1 error + 1 miss", st)
			}
			// A re-Put repairs the slot.
			c.Put(key, res)
			if _, ok := c.Get(key); !ok {
				t.Fatal("miss after repair Put")
			}
		})
	}
}

// An entry whose stored canonical key differs from the requested one
// (digest collision, copied file) must never be served.
func TestKeyMismatchIsMiss(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := simulate(t, 1000)
	c.Put("key-a", res)
	// Graft key-a's entry into key-b's slot.
	if err := os.MkdirAll(filepath.Dir(c.path("key-b")), 0o755); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(c.path("key-a"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.path("key-b"), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("key-b"); ok {
		t.Fatal("served an entry stored under a different key")
	}
}

func TestLenCountsEntries(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := simulate(t, 1000)
	c.Put("a", res)
	c.Put("b", res)
	c.Put("a", res) // overwrite, not a new entry
	if n := c.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
}

// TestRawRoundTripBitIdentity pins the peer-proxy contract: the raw
// envelope a node serves (GetRaw) is the exact bytes its store holds;
// a peer installing them verbatim (PutRaw) reproduces the entry bit-
// for-bit; and the typed view decoded from the raw path renders the
// same canonical JSON as the typed Put/Get path — so a result served
// through any number of peer hops is byte-identical to a direct
// library run.
func TestRawRoundTripBitIdentity(t *testing.T) {
	owner, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := simulate(t, 1500)
	const key = "cfg-json|nw-raw"
	owner.Put(key, res)

	raw, ok := owner.GetRaw(key)
	if !ok {
		t.Fatal("GetRaw missed after Put")
	}
	onDisk, err := os.ReadFile(owner.path(key))
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(onDisk) {
		t.Fatal("GetRaw bytes differ from the on-disk entry")
	}

	// A second node installs the fetched bytes verbatim.
	peer, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := peer.PutRaw(key, raw); err != nil {
		t.Fatal(err)
	}
	raw2, ok := peer.GetRaw(key)
	if !ok || string(raw2) != string(raw) {
		t.Fatal("PutRaw/GetRaw did not preserve the envelope bit-for-bit")
	}

	got, ok := peer.Get(key)
	if !ok {
		t.Fatal("typed Get missed after PutRaw")
	}
	want, _ := json.Marshal(res)
	have, _ := json.Marshal(got)
	if string(want) != string(have) {
		t.Fatalf("raw hop changed canonical JSON:\nwant %s\nhave %s", want, have)
	}
}

// TestEncodeDecodeEnvelope covers the exported codec pair the cluster
// push path uses, including every rejection reason.
func TestEncodeDecodeEnvelope(t *testing.T) {
	res := simulate(t, 1500)
	const key = "envelope-key|nw"
	raw, err := EncodeEnvelope(key, res)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEnvelope(raw, key)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(res)
	have, _ := json.Marshal(got)
	if string(want) != string(have) {
		t.Fatal("envelope round trip changed the result")
	}

	if _, err := EncodeEnvelope(key, nil); err == nil {
		t.Fatal("EncodeEnvelope accepted a nil result")
	}
	if _, err := DecodeEnvelope(raw, "some-other-key"); err == nil {
		t.Fatal("DecodeEnvelope accepted a key mismatch")
	}
	if _, err := DecodeEnvelope(raw[:len(raw)/2], key); err == nil {
		t.Fatal("DecodeEnvelope accepted a truncated envelope")
	}
	if _, err := DecodeEnvelope([]byte("garbage"), key); err == nil {
		t.Fatal("DecodeEnvelope accepted garbage")
	}
}

// TestPutRawRejectsBadEnvelopes: PutRaw validates before writing —
// network bytes never land on disk unchecked — and GetRaw keeps the
// same self-heal-as-miss semantics as Get for entries corrupted
// after the fact.
func TestPutRawRejectsBadEnvelopes(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := simulate(t, 1500)
	const key = "putraw-key|nw"
	raw, err := EncodeEnvelope(key, res)
	if err != nil {
		t.Fatal(err)
	}

	if err := c.PutRaw("a-different-key", raw); err == nil {
		t.Fatal("PutRaw accepted an envelope for the wrong key")
	}
	if err := c.PutRaw(key, []byte("junk")); err == nil {
		t.Fatal("PutRaw accepted junk")
	}
	if c.Len() != 0 {
		t.Fatal("rejected PutRaw left a file behind")
	}
	if st := c.Stats(); st.Errors != 2 {
		t.Fatalf("stats = %+v, want 2 errors", st)
	}

	if err := c.PutRaw(key, raw); err != nil {
		t.Fatal(err)
	}
	// Corrupt the stored entry in place: GetRaw must miss, count an
	// error, and remove the file (identical to Get's self-heal).
	if err := os.WriteFile(c.path(key), raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetRaw(key); ok {
		t.Fatal("GetRaw served a truncated entry")
	}
	if _, err := os.Stat(c.path(key)); !os.IsNotExist(err) {
		t.Fatal("GetRaw did not self-heal the corrupt entry away")
	}
}
