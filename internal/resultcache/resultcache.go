// Package resultcache is the content-addressed on-disk result store
// layered under the in-memory singleflight memo (it implements
// gpusecmem.ResultCache). Entries are keyed by the sha256 of the
// canonical RunKey — the deterministic JSON of the fully resolved
// Config plus the benchmark name — so any configuration change,
// however small, addresses a different entry, and repeated requests
// across process restarts are served from disk bit-identically.
//
// Entries are gob-encoded sim.Result values wrapped in a schema/key
// envelope and written via atomicfile (temp + rename), so a crashed or
// cancelled writer never leaves a truncated entry; a corrupt or
// foreign file reads as a miss and is removed. The envelope is also
// the cluster wire format: GetRaw/PutRaw move the exact on-disk bytes
// between peers with validation but no re-encode (DESIGN.md §16), so
// an entry is encoded once no matter how many nodes serve it. Only successful runs
// are stored — errors stay in the in-memory memo where retry policy
// lives. The retained Chrome-trace span records of a probed run are
// not persisted (they are unexported scratch for trace export, which
// never reads from this cache); everything an experiment table or the
// JSON wire form renders survives the round trip.
//
// Concurrency and aliasing contract: a Cache is safe for concurrent
// use by any number of goroutines *and processes* sharing one
// directory — it holds no mutable in-memory state beyond atomic
// counters, reads only open complete files, and writes rename
// complete files into place. The *sim.Result a Get returns is a fresh
// decode owned by the caller; the Result passed to Put is only read,
// synchronously, during the call.
package resultcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"

	"gpusecmem/internal/atomicfile"
	"gpusecmem/internal/sim"
)

// Schema versions the on-disk entry format; bump it when the encoding
// changes and old entries become unreadable (they then read as misses
// and are replaced on the next Put).
// (Schema 2: Result's kind/metadata arrays widened for the scattered
// and software-encryption schemes, changing the gob shape.)
const Schema = "gpusecmem-resultcache/2"

// entry is the on-disk envelope: the full canonical key is stored so a
// digest collision (or a hand-copied file) can never serve the wrong
// result.
type entry struct {
	Schema string
	Key    string
	Result *sim.Result
}

// EncodeEnvelope renders the wire/disk form of one entry: the gob
// encoding of the schema/key envelope wrapping res. It is what Put
// writes and what GetRaw returns, exposed so the cluster tier can
// push a freshly simulated result to its owner without a second
// encode at the receiver.
func EncodeEnvelope(key string, res *sim.Result) ([]byte, error) {
	if res == nil {
		return nil, fmt.Errorf("resultcache: nil result")
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(entry{Schema: Schema, Key: key, Result: res}); err != nil {
		return nil, fmt.Errorf("resultcache: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeEnvelope validates and opens a raw envelope: the schema must
// match, the embedded canonical key must equal key (so a digest
// collision, a hand-copied file, or a peer answering the wrong
// question can never serve the wrong result), and the result must be
// present. The returned Result is a fresh decode owned by the caller.
func DecodeEnvelope(raw []byte, key string) (*sim.Result, error) {
	var e entry
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&e); err != nil {
		return nil, fmt.Errorf("resultcache: decode: %w", err)
	}
	if e.Schema != Schema {
		return nil, fmt.Errorf("resultcache: schema %q, want %q", e.Schema, Schema)
	}
	if e.Key != key {
		return nil, fmt.Errorf("resultcache: envelope key mismatch")
	}
	if e.Result == nil {
		return nil, fmt.Errorf("resultcache: envelope holds no result")
	}
	return e.Result, nil
}

// Stats counts cache behaviour since Open.
type Stats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Puts   uint64 `json:"puts"`
	// Errors counts unreadable/corrupt entries and failed writes; the
	// cache degrades to miss/no-op rather than failing a run.
	Errors uint64 `json:"errors"`
}

// Cache is a persistent result store rooted at one directory. Safe
// for concurrent use by any number of goroutines and processes: reads
// open complete files, writes rename complete files into place.
type Cache struct {
	dir string

	hits, misses, puts, errs atomic.Uint64
}

// Open creates (if needed) and returns the cache rooted at dir.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("resultcache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// path fans entries out over 256 two-hex-digit subdirectories so huge
// sweeps do not pile every entry into one directory.
func (c *Cache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	digest := hex.EncodeToString(sum[:])
	return filepath.Join(c.dir, digest[:2], digest+".gob")
}

// read is the shared load path under Get and GetRaw: it reads the
// entry file whole, validates the envelope, and self-heals — a
// corrupt, truncated, or mismatched entry is removed, counted as an
// error, and reported as a miss.
func (c *Cache) read(key string) (raw []byte, res *sim.Result, ok bool) {
	path := c.path(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		c.misses.Add(1)
		return nil, nil, false
	}
	res, err = DecodeEnvelope(raw, key)
	if err != nil {
		// Unreadable or foreign: self-heal by dropping the file so the
		// next Put rewrites it.
		os.Remove(path)
		c.errs.Add(1)
		c.misses.Add(1)
		return nil, nil, false
	}
	c.hits.Add(1)
	return raw, res, true
}

// Get returns the stored result for key, or (nil, false). A corrupt,
// truncated, or mismatched entry is removed and reported as a miss.
func (c *Cache) Get(key string) (*sim.Result, bool) {
	_, res, ok := c.read(key)
	return res, ok
}

// GetRaw returns the exact on-disk envelope bytes for key, validated
// (same self-heal-as-miss semantics as Get) but never re-encoded —
// the hot half of the peer proxy path: a daemon serving a peer fetch
// hands the bytes straight from disk to the wire, and the receiving
// peer stores them verbatim with PutRaw, so a result is encoded once
// cluster-wide. The slice is fresh and owned by the caller.
func (c *Cache) GetRaw(key string) ([]byte, bool) {
	raw, _, ok := c.read(key)
	return raw, ok
}

// write atomically installs raw (an already-encoded envelope) as
// key's entry. Best-effort like Put.
func (c *Cache) write(key string, raw []byte) error {
	path := c.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		c.errs.Add(1)
		return err
	}
	err := atomicfile.WriteFile(path, func(w io.Writer) error {
		_, werr := w.Write(raw)
		return werr
	})
	if err != nil {
		c.errs.Add(1)
		return err
	}
	c.puts.Add(1)
	return nil
}

// Put stores res under key, atomically. Best-effort: a failed write
// is counted and swallowed — the cache must never fail the run that
// produced the result.
func (c *Cache) Put(key string, res *sim.Result) {
	raw, err := EncodeEnvelope(key, res)
	if err != nil {
		if res != nil {
			c.errs.Add(1)
		}
		return
	}
	c.write(key, raw)
}

// PutRaw stores an already-encoded envelope under key, verbatim —
// the other half of the zero-re-encode proxy path. Unlike Put it
// validates first (the bytes came off a network) and reports the
// error: a raw envelope that does not decode, or whose embedded key
// disagrees, is rejected rather than planted for a later Get to
// self-heal away.
func (c *Cache) PutRaw(key string, raw []byte) error {
	if _, err := DecodeEnvelope(raw, key); err != nil {
		c.errs.Add(1)
		return err
	}
	return c.write(key, raw)
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:   c.hits.Load(),
		Misses: c.misses.Load(),
		Puts:   c.puts.Load(),
		Errors: c.errs.Load(),
	}
}

// Len walks the cache and counts stored entries (diagnostics only).
func (c *Cache) Len() int {
	n := 0
	filepath.WalkDir(c.dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) == ".gob" {
			n++
		}
		return nil
	})
	return n
}
