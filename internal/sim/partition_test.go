package sim

import (
	"testing"

	"gpusecmem/internal/cache"
	"gpusecmem/internal/geometry"
	"gpusecmem/internal/smcore"
	"gpusecmem/internal/trace"
)

// nullGen is an idle workload for partition-level unit tests.
type nullGen struct{}

func (nullGen) Name() string    { return "null" }
func (nullGen) WarpsPerSM() int { return 1 }
func (nullGen) ActiveSMs() int  { return 1 }
func (nullGen) Next(sm, warp, iter int) smcore.WarpOp {
	return smcore.WarpOp{ComputeInstrs: 1, ComputeSpacing: 1, ActiveLanes: 1}
}

func newTestPartition(t *testing.T, mutate func(*Config)) *partition {
	t.Helper()
	cfg := SecureMem()
	if mutate != nil {
		mutate(&cfg)
	}
	g, err := New(cfg, nullGen{})
	if err != nil {
		t.Fatal(err)
	}
	return g.parts[0]
}

// drain advances the partition until its DRAM queue and replies are
// empty (bounded).
func drain(t *testing.T, p *partition, from, limit uint64) uint64 {
	t.Helper()
	now := from
	for ; now < from+limit; now++ {
		p.tick(now)
		if p.dram.Drained() && p.replies.Len() == 0 {
			return now
		}
	}
	t.Fatalf("partition did not drain within %d cycles", limit)
	return now
}

func TestPartitionReadCriticalPath(t *testing.T) {
	p := newTestPartition(t, nil)
	// Prime the L2 bank with a miss for sector 0.
	p.handleL2Read(0, 0, 777, 1)
	if len(p.reads) != 1 {
		t.Fatalf("reads = %d", len(p.reads))
	}
	// Data + counter line + MAC line fetches are enqueued; the tree
	// walk only starts when the counter fill returns.
	if got := p.dram.InFlight(); got != 3 {
		t.Fatalf("DRAM requests = %d, want 3 (data, ctr, mac)", got)
	}
	drain(t, p, 2, 5000)
	if len(p.reads) != 0 {
		t.Fatal("read state not retired")
	}
	// Counter and MAC lines are now cached; a second read of the next
	// sector only fetches data.
	before := p.dram.Stats.Reads
	p.handleL2Read(32, 32, 778, 6000)
	if got := p.dram.InFlight(); got != 1 {
		t.Fatalf("second read enqueued %d requests, want 1 (data only)", got)
	}
	drain(t, p, 6001, 5000)
	if p.dram.Stats.Reads != before+1 {
		t.Fatalf("extra metadata fetches on warm read")
	}
}

func TestPartitionCounterHitShortensPath(t *testing.T) {
	p := newTestPartition(t, func(c *Config) { c.Secure.PerfectMeta = true })
	p.handleL2Read(0, 0, 1, 1)
	// Perfect metadata: only the data fetch goes to DRAM.
	if got := p.dram.InFlight(); got != 1 {
		t.Fatalf("DRAM requests = %d, want 1", got)
	}
}

// TestPartitionVerifyWalkStopsAtCachedLevel: the first counter fill
// walks the tree; once the walked nodes are cached, the next counter
// fill from the same subtree stops immediately.
func TestPartitionVerifyWalkStopsAtCachedLevel(t *testing.T) {
	p := newTestPartition(t, nil)
	p.handleL2Read(0, 0, 1, 1)
	drain(t, p, 2, 8000)
	treeReqs := kindReqs(p, KindTree)
	if treeReqs == 0 {
		t.Fatal("no tree fetches from the first counter fill")
	}
	// A read covered by a *different* counter line in the same lowest
	// tree node (counter lines 0..15 share a parent): its walk hits.
	addr := uint64(geometry.CounterCoverage) // counter line 1
	p.handleL2Read(addr, addr, 2, 9000)
	drain(t, p, 9001, 8000)
	if got := kindReqs(p, KindTree); got != treeReqs {
		t.Fatalf("second walk fetched %d more tree nodes, want 0", got-treeReqs)
	}
}

// TestPartitionWritePathRMWAndWriteback: a dirty L2 data eviction
// fetches the counter and MAC lines (RMW), dirties them, and their
// later eviction produces wb traffic plus a lazy parent update.
func kindReqs(p *partition, k TrafficKind) uint64 {
	if int(k) >= len(p.dram.Stats.RequestsByKind) {
		return 0
	}
	return p.dram.Stats.RequestsByKind[int(k)]
}

func TestPartitionWritePathRMWAndWriteback(t *testing.T) {
	p := newTestPartition(t, nil)
	p.handleDataWriteback(&cache.Eviction{LineAddr: 0, DirtyBytes: 128}, 1)
	drain(t, p, 2, 8000)
	if got := kindReqs(p, KindData); got != 1 {
		t.Fatalf("data writes = %d", got)
	}
	// Thrash the counter cache (16 lines) so line 0 evicts dirty.
	for i := uint64(1); i <= 40; i++ {
		p.handleDataWriteback(&cache.Eviction{LineAddr: i * geometry.CounterCoverage, DirtyBytes: 128}, 8000+i)
	}
	drain(t, p, 8100, 30000)
	if got := kindReqs(p, KindWB); got == 0 {
		t.Fatal("no metadata writebacks after counter-cache thrash")
	}
	// Lazy update touched the tree.
	if p.metaStats[MetaTree].Accesses == 0 {
		t.Fatal("no lazy parent updates")
	}
}

// TestPartitionUnifiedAliasing: with a unified cache the three
// metadata pointers alias one cache instance and per-type stats are
// still tracked separately.
func TestPartitionUnifiedAliasing(t *testing.T) {
	p := newTestPartition(t, func(c *Config) { c.Secure.Unified = true })
	if p.ctr != p.mac || p.mac != p.tree {
		t.Fatal("unified caches do not alias")
	}
	p.handleL2Read(0, 0, 1, 1)
	if p.metaStats[MetaCounter].Accesses != 1 || p.metaStats[MetaMAC].Accesses != 1 {
		t.Fatalf("per-type stats not tracked: %+v %+v",
			p.metaStats[MetaCounter], p.metaStats[MetaMAC])
	}
}

// TestPartitionDirectModeNoCounters: EncDirect allocates no counter
// cache and a read issues only data + MAC fetches.
func TestPartitionDirectModeNoCounters(t *testing.T) {
	cfg := DirectMem(40, true, true)
	g, err := New(cfg, nullGen{})
	if err != nil {
		t.Fatal(err)
	}
	p := g.parts[0]
	if p.ctr != nil {
		t.Fatal("direct mode allocated a counter cache")
	}
	p.handleL2Read(0, 0, 1, 1)
	if got := p.dram.InFlight(); got != 2 {
		t.Fatalf("DRAM requests = %d, want 2 (data, mac)", got)
	}
	drain(t, p, 2, 8000)
	// The MAC fill triggered an MT walk.
	if kindReqs(p, KindTree) == 0 {
		t.Fatal("no MT walk after MAC fill")
	}
}

// TestAESScheduleOccupancy: engine slots serialize at 8 thirds per
// sector and the latency is added on top.
func TestAESScheduleOccupancy(t *testing.T) {
	p := newTestPartition(t, func(c *Config) { c.Secure.AESEngines = 1 })
	r1 := p.aesSchedule(100)
	r2 := p.aesSchedule(100)
	r3 := p.aesSchedule(100)
	if r1 != 100+40 {
		t.Fatalf("first op ready at %d, want 140", r1)
	}
	if r2 <= r1 || r3 <= r2 {
		t.Fatalf("engine occupancy not serializing: %d %d %d", r1, r2, r3)
	}
	// 8 thirds apart = 2-3 cycles.
	if r3-r1 < 4 || r3-r1 > 7 {
		t.Fatalf("pipeline spacing off: %d..%d", r1, r3)
	}
}

func TestAESScheduleTwoEnginesParallel(t *testing.T) {
	p := newTestPartition(t, nil) // 2 engines
	r1 := p.aesSchedule(100)
	r2 := p.aesSchedule(100)
	if r1 != r2 {
		t.Fatalf("two engines should start together: %d vs %d", r1, r2)
	}
	r3 := p.aesSchedule(100)
	if r3 <= r1 {
		t.Fatal("third op should queue")
	}
}

func TestZeroCryptoSkipsEngines(t *testing.T) {
	p := newTestPartition(t, func(c *Config) {
		c.Secure.AESLatency = 0
		c.Secure.MACLatency = 0
	})
	if got := p.aesSchedule(123); got != 123 {
		t.Fatalf("zero-crypto AES ready at %d", got)
	}
	if got := p.macSchedule(321); got != 321 {
		t.Fatalf("zero-crypto MAC ready at %d", got)
	}
}

// TestSelectiveStriping: isProtected follows the 1MB/16-stripe rule.
func TestSelectiveStriping(t *testing.T) {
	p := newTestPartition(t, func(c *Config) { c.Secure.ProtectedFraction = 0.25 })
	if p.protectedStripes != 4 {
		t.Fatalf("stripes = %d", p.protectedStripes)
	}
	cases := []struct {
		addr uint64
		want bool
	}{
		{0, true},
		{3 << 20, true},
		{4 << 20, false},
		{15 << 20, false},
		{16 << 20, true}, // next period
		{20 << 20, false},
	}
	for _, tc := range cases {
		if got := p.isProtected(tc.addr); got != tc.want {
			t.Errorf("isProtected(%#x) = %v", tc.addr, got)
		}
	}
}

// TestPartitionStatsAccounting: metadata access counts equal the read
// plus write probes issued.
func TestPartitionStatsAccounting(t *testing.T) {
	p := newTestPartition(t, nil)
	for i := uint64(0); i < 10; i++ {
		p.handleL2Read(i*32, i*32, 100+i, 1+i)
	}
	if p.metaStats[MetaCounter].Accesses != 10 || p.metaStats[MetaMAC].Accesses != 10 {
		t.Fatalf("meta accesses: ctr=%d mac=%d", p.metaStats[MetaCounter].Accesses, p.metaStats[MetaMAC].Accesses)
	}
	// 10 sectors in one line region: 1 primary + 9 secondary for each
	// metadata type.
	if p.metaStats[MetaCounter].MissesPrimary != 1 || p.metaStats[MetaCounter].MissesSecondary != 9 {
		t.Fatalf("ctr misses: %+v", p.metaStats[MetaCounter])
	}
}

// TestGPUPartitionRouting: every global address routes to exactly one
// partition whose local address stays within the layout.
func TestGPUPartitionRouting(t *testing.T) {
	cfg := Baseline()
	cfg.MaxCycles = 100
	g, err := New(cfg, trace.MustNew("fdtd2d"))
	if err != nil {
		t.Fatal(err)
	}
	localLimit := cfg.ProtectedBytes / uint64(cfg.NumPartitions)
	for a := uint64(0); a < 1<<22; a += 4093 {
		part, local := g.partitionOf(a)
		if part < 0 || part >= cfg.NumPartitions {
			t.Fatalf("partition %d", part)
		}
		if local >= localLimit {
			t.Fatalf("local %#x beyond %#x", local, localLimit)
		}
	}
}
