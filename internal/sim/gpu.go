package sim

import (
	"fmt"

	"gpusecmem/internal/cache"
	"gpusecmem/internal/faults"
	"gpusecmem/internal/geometry"
	"gpusecmem/internal/icnt"
	"gpusecmem/internal/probe"
	"gpusecmem/internal/smcore"
	"gpusecmem/internal/trace"
)

// l2Msg travels SM -> partition.
type l2Msg struct {
	globalAddr uint64
	token      uint64
	write      bool
}

// smReply travels partition -> SM; token identifies the L1-level
// request (and thus the SM and warp).
type smReply struct {
	globalAddr uint64
	token      uint64
}

// loadReq records an outstanding L1-level sector request.
type loadReq struct {
	sm         int
	warp       int
	fillBypass bool
}

// GPU is one simulated machine instance running one workload.
type GPU struct {
	cfg Config
	gen smcore.Generator

	sms   []*smcore.SM
	l1s   []*cache.Cache
	parts []*partition

	toL2 *icnt.DelayQueue[l2Msg]
	toSM *icnt.DelayQueue[smReply]

	now      uint64
	tokenSeq uint64
	loads    map[uint64]loadReq

	// inj executes cfg.Faults; nil on the (zero-cost) no-fault path.
	inj *faults.Injector
	// probe carries the observability instruments; nil on the
	// (zero-cost) unprobed path.
	probe *probe.State
	// completedLoads counts retirements; with issued instructions it
	// forms the watchdog's forward-progress metric.
	completedLoads uint64
	lastProgress   uint64
	lastProgressAt uint64
}

// New builds a GPU for cfg running the given workload generator.
func New(cfg Config, gen smcore.Generator) (*GPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &GPU{
		cfg:   cfg,
		gen:   gen,
		toL2:  icnt.NewDelayQueue[l2Msg](cfg.IcntLatency),
		toSM:  icnt.NewDelayQueue[smReply](cfg.IcntLatency),
		loads: make(map[uint64]loadReq),
	}
	gen = g.wrapGenerator(gen)
	g.gen = gen
	active := gen.ActiveSMs()
	if active <= 0 || active > cfg.NumSMs {
		active = cfg.NumSMs
	}
	for i := 0; i < active; i++ {
		g.sms = append(g.sms, smcore.New(i, gen, cfg.IssueWidth))
		g.l1s = append(g.l1s, cache.New(cache.Config{
			Name:        "L1",
			SizeBytes:   cfg.L1Bytes,
			LineSize:    geometry.LineSize,
			Assoc:       cfg.L1Assoc,
			Sectored:    true,
			NumMSHRs:    64,
			MergeCap:    16,
			AllocOnFill: true,
		}))
	}
	for p := 0; p < cfg.NumPartitions; p++ {
		g.parts = append(g.parts, newPartition(p, g))
	}
	g.inj = faults.NewInjector(cfg.Faults)
	g.probe = probe.NewState(cfg.Probe, kindLabels())
	if in := g.inj; in != nil &&
		(cfg.Faults.Sites.Has(faults.SiteIcntDrop) || cfg.Faults.Sites.Has(faults.SiteIcntDup)) {
		// Attack the response path: a dropped reply loses a completion
		// (the victim warp wedges until the watchdog notices); a
		// duplicated reply replays one (tolerated — the second delivery
		// finds its load already retired).
		g.toSM.SetTap(func(r smReply) int {
			if in.Fire(faults.SiteIcntDrop, r.globalAddr) {
				return 0
			}
			if in.Fire(faults.SiteIcntDup, r.globalAddr) {
				return 2
			}
			return 1
		})
	}
	return g, nil
}

// wrapGenerator applies the WarpOverride and clamps addresses to the
// protected region.
func (g *GPU) wrapGenerator(gen smcore.Generator) smcore.Generator {
	return &boundedGen{inner: gen, limit: g.cfg.ProtectedBytes, warpOverride: g.cfg.WarpOverride}
}

type boundedGen struct {
	inner        smcore.Generator
	limit        uint64
	warpOverride int
}

func (b *boundedGen) Name() string { return b.inner.Name() }
func (b *boundedGen) WarpsPerSM() int {
	if b.warpOverride > 0 {
		return b.warpOverride
	}
	return b.inner.WarpsPerSM()
}
func (b *boundedGen) ActiveSMs() int { return b.inner.ActiveSMs() }
func (b *boundedGen) Next(sm, warp, iter int) smcore.WarpOp {
	op := b.inner.Next(sm, warp, iter)
	for i, a := range op.Sectors {
		op.Sectors[i] = a % b.limit / trace.SectorSize * trace.SectorSize
	}
	return op
}

func (g *GPU) newToken() uint64 {
	g.tokenSeq++
	return g.tokenSeq
}

// partitionOf returns the partition index and partition-local address
// of a global address (256 B interleave across partitions).
func (g *GPU) partitionOf(globalAddr uint64) (int, uint64) {
	np := uint64(g.cfg.NumPartitions)
	chunk := globalAddr / 256
	part := int(chunk % np)
	local := (chunk/np)*256 + globalAddr%256
	return part, local
}

// scheduleReply sends completed sector data back toward the SMs.
func (g *GPU) scheduleReply(at uint64, globalAddr uint64, tokens []uint64) {
	extra := uint64(0)
	if at > g.now {
		extra = at - g.now
	}
	for _, tok := range tokens {
		g.toSM.PushAfter(g.now, extra, smReply{globalAddr: globalAddr, token: tok})
	}
}

// issueMem is the SM memory callback: it performs L1 lookups and
// forwards misses and stores toward the partitions.
func (g *GPU) issueMem(mi smcore.MemIssue) int {
	if mi.Write {
		for _, addr := range mi.Sectors {
			g.toL2.Push(g.now, l2Msg{globalAddr: addr, write: true})
		}
		return 0
	}
	l1 := g.l1s[mi.SM]
	outstanding := 0
	for _, addr := range mi.Sectors {
		tok := g.newToken()
		acc := l1.Access(addr, false, tok)
		switch {
		case acc.Outcome == cache.Hit:
			outstanding++
			g.loads[tok] = loadReq{sm: mi.SM, warp: mi.Warp}
			// Hit latency reply through the local pipeline (no icnt).
			g.toSM.PushAfter(g.now, g.cfg.L1Latency, smReply{globalAddr: addr, token: tok})
		case acc.NeedFetch:
			outstanding++
			g.loads[tok] = loadReq{sm: mi.SM, warp: mi.Warp, fillBypass: acc.Bypass}
			g.toL2.Push(g.now, l2Msg{globalAddr: addr, token: tok})
		default: // merged into an L1 MSHR
			outstanding++
			g.loads[tok] = loadReq{sm: mi.SM, warp: mi.Warp}
		}
	}
	return outstanding
}

// deliverReply processes one sector arriving back at an SM: fill the
// L1 and wake every warp waiting on it.
func (g *GPU) deliverReply(r smReply) {
	lr, ok := g.loads[r.token]
	if !ok {
		return
	}
	l1 := g.l1s[lr.sm]
	if l1.Present(r.globalAddr) {
		// L1 hit reply or a redundant bypass fill.
		g.completeLoad(r.token)
		return
	}
	fill := g.l1s[lr.sm].Fill(r.globalAddr, lr.fillBypass, false)
	// L1 is write-through: evictions are clean, no writeback path.
	tokens := fill.Tokens
	if lr.fillBypass {
		tokens = append(tokens, r.token)
	}
	if len(tokens) == 0 {
		tokens = []uint64{r.token}
	}
	for _, tok := range tokens {
		g.completeLoad(tok)
	}
}

func (g *GPU) completeLoad(token uint64) {
	lr, ok := g.loads[token]
	if !ok {
		return
	}
	delete(g.loads, token)
	g.completedLoads++
	g.sms[lr.sm].Complete(lr.warp, g.now)
}

// step advances the machine one cycle.
func (g *GPU) step() {
	g.now++
	// Interconnect deliveries into the partitions.
	for _, m := range g.toL2.PopReady(g.now) {
		part, local := g.partitionOf(m.globalAddr)
		if m.write {
			g.parts[part].handleL2Write(local, g.now)
		} else {
			g.parts[part].handleL2Read(m.globalAddr, local, m.token, g.now)
		}
	}
	// Partitions: replies and DRAM.
	for _, p := range g.parts {
		p.tick(g.now)
	}
	// Replies into the SMs.
	for _, r := range g.toSM.PopReady(g.now) {
		g.deliverReply(r)
	}
	// Issue.
	for _, sm := range g.sms {
		sm.Tick(g.now, g.issueMem)
	}
	if g.probe != nil {
		g.sampleProbe()
	}
}

// Run simulates cfg.MaxCycles cycles and gathers the result. It
// returns a *StallError when the watchdog detects a forward-progress
// stall and an *AuditError when an enabled invariant auditor finds the
// machine's books out of balance; both carry diagnostic state.
func (g *GPU) Run() (*Result, error) {
	for g.now < g.cfg.MaxCycles {
		g.step()
		if g.cfg.Audit {
			if err := g.audit(g.now%auditDeepPeriod == 0); err != nil {
				return nil, err
			}
		}
		if err := g.checkWatchdog(); err != nil {
			return nil, err
		}
	}
	if g.cfg.Audit {
		if err := g.audit(true); err != nil {
			return nil, err
		}
	}
	return g.collect(), nil
}

func (g *GPU) collect() *Result {
	res := &Result{Benchmark: g.gen.Name(), Cycles: g.now}
	for _, sm := range g.sms {
		res.Instructions += sm.Instructions
	}
	for _, l1 := range g.l1s {
		addStats(&res.L1, l1.Stats)
	}
	for _, p := range g.parts {
		for _, b := range p.banks {
			addStats(&res.L2, b.Stats)
		}
		ds := p.dram.Stats
		res.RowHits += ds.RowHits
		res.RowMisses += ds.RowMisses
		for k := 0; k < int(numKinds); k++ {
			if k < len(ds.RequestsByKind) {
				res.RequestsByKind[k] += ds.RequestsByKind[k]
				res.BytesByKind[k] += ds.BytesByKind[k]
			}
		}
		for m := 0; m < int(numMeta); m++ {
			res.Meta[m].Accesses += p.metaStats[m].Accesses
			res.Meta[m].MissesPrimary += p.metaStats[m].MissesPrimary
			res.Meta[m].MissesSecondary += p.metaStats[m].MissesSecondary
		}
		for _, mc := range []*cache.Cache{p.ctr, p.mac, p.tree} {
			if mc != nil {
				res.MetaCacheWritebacks += mc.Stats.Writebacks
			}
		}
		if p.cfg.Secure.Unified && p.ctr != nil {
			// The aliased unified cache was counted three times.
			res.MetaCacheWritebacks -= 2 * p.ctr.Stats.Writebacks
		}
		if p.ctrReuse != nil {
			res.CounterReuse = p.ctrReuse
			res.MACReuse = p.macReuse
		}
	}
	res.Faults.Injected = g.inj.Stats().Injected
	for _, p := range g.parts {
		res.Faults.Detected += p.faultDetected
		res.Faults.Silent += p.faultSilent
	}
	res.Faults.DroppedReplies = g.toSM.Stats.Dropped + g.toL2.Stats.Dropped
	res.Faults.DuplicatedReplies = g.toSM.Stats.Duplicated + g.toL2.Stats.Duplicated
	// Peak bytes/cycle per partition = BeatBytes / (BeatThirds/3).
	perPart := uint64(g.cfg.DRAM.BeatBytes) * 3 / uint64(g.cfg.DRAM.BeatThirds)
	res.PeakBandwidthBytes = perPart * uint64(g.cfg.NumPartitions) * g.now
	res.Probe = g.probe.Report()
	return res
}

func addStats(dst *cache.Stats, src cache.Stats) {
	dst.Accesses += src.Accesses
	dst.Hits += src.Hits
	dst.MissesPrimary += src.MissesPrimary
	dst.MissesSecondary += src.MissesSecondary
	dst.MissesBypass += src.MissesBypass
	dst.Fills += src.Fills
	dst.Evictions += src.Evictions
	dst.Writebacks += src.Writebacks
}

// Run is the package-level convenience: build a GPU for cfg and the
// named benchmark and simulate it.
func Run(cfg Config, benchmark string) (*Result, error) {
	gen, err := trace.New(benchmark)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	g, err := New(cfg, gen)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	return g.Run()
}
