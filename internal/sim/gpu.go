package sim

import (
	"context"
	"fmt"

	"gpusecmem/internal/cache"
	"gpusecmem/internal/faults"
	"gpusecmem/internal/geometry"
	"gpusecmem/internal/icnt"
	"gpusecmem/internal/probe"
	"gpusecmem/internal/smcore"
	"gpusecmem/internal/trace"
)

// l2Msg travels SM -> partition.
type l2Msg struct {
	globalAddr uint64
	token      uint64
	write      bool
}

// smReply travels partition -> SM; token identifies the L1-level
// request (and thus the SM and warp).
type smReply struct {
	globalAddr uint64
	token      uint64
}

// loadReq records an outstanding L1-level sector request.
type loadReq struct {
	sm         int
	warp       int
	fillBypass bool
}

// GPU is one simulated machine instance running one workload.
type GPU struct {
	cfg Config
	gen smcore.Generator

	sms   []*smcore.SM
	l1s   []*cache.Cache
	parts []*partition

	toL2 *icnt.DelayQueue[l2Msg]
	toSM *icnt.DelayQueue[smReply]

	now      uint64
	tokenSeq uint64
	loads    map[uint64]loadReq

	// Activity tracking for the event-driven cycle loop. smWake[i] and
	// partNext[i] are conservative lower bounds on the next cycle SM i
	// (resp. partition i) could do anything; a component is skipped
	// while its bound lies in the future, and the whole loop
	// fast-forwards to the earliest bound when every component is idle.
	// smLastTick[i] is the last cycle SM i actually ticked, for lazy
	// full-stall settlement (see smcore.AccountIdle).
	smWake     []uint64
	smLastTick []uint64
	partNext   []uint64
	// stepped counts executed steps (<= now once fast-forwarding
	// skips); disableFF forces the legacy every-cycle loop — both are
	// test hooks for the idle-skip machinery.
	stepped   uint64
	disableFF bool
	// oneTok backs single-token reply delivery without allocating.
	oneTok [1]uint64

	// smStage, when non-nil, redirects issueMem's L1-hit replies into
	// the parallel engine's SM-task staging buffer; parallelWindows
	// counts executed barrier windows (a test hook asserting which
	// engine actually ran).
	smStage         *replyStage
	parallelWindows uint64

	// inj executes cfg.Faults; nil on the (zero-cost) no-fault path.
	inj *faults.Injector
	// probe carries the observability instruments; nil on the
	// (zero-cost) unprobed path.
	probe *probe.State
	// Checkpointing (DESIGN.md §14): every ckptEvery cycles the run
	// loop snapshots the machine at an end-of-cycle boundary and hands
	// the state to ckptSink; ckptLast suppresses duplicate snapshots
	// when the loop lands on the same cycle twice. Inert (nil sink)
	// unless SetCheckpoint armed it.
	ckptEvery uint64
	ckptSink  func(cycle uint64, st *MachineState)
	ckptLast  uint64

	// completedLoads counts retirements; with issued instructions it
	// forms the watchdog's forward-progress metric.
	completedLoads uint64
	lastProgress   uint64
	lastProgressAt uint64
	// maxProgressGap is the longest observed stretch between progress
	// events (diagnostics and tests; maintained by the sequential
	// engine's watchdog check).
	maxProgressGap uint64
}

// New builds a GPU for cfg running the given workload generator.
func New(cfg Config, gen smcore.Generator) (*GPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &GPU{
		cfg:   cfg,
		gen:   gen,
		toL2:  icnt.NewDelayQueue[l2Msg](cfg.IcntLatency),
		toSM:  icnt.NewDelayQueue[smReply](cfg.IcntLatency),
		loads: make(map[uint64]loadReq),
	}
	gen = g.wrapGenerator(gen)
	g.gen = gen
	active := gen.ActiveSMs()
	if active <= 0 || active > cfg.NumSMs {
		active = cfg.NumSMs
	}
	for i := 0; i < active; i++ {
		g.sms = append(g.sms, smcore.New(i, gen, cfg.IssueWidth))
		g.l1s = append(g.l1s, cache.New(cache.Config{
			Name:        "L1",
			SizeBytes:   cfg.L1Bytes,
			LineSize:    geometry.LineSize,
			Assoc:       cfg.L1Assoc,
			Sectored:    true,
			NumMSHRs:    64,
			MergeCap:    16,
			AllocOnFill: true,
		}))
	}
	for p := 0; p < cfg.NumPartitions; p++ {
		g.parts = append(g.parts, newPartition(p, g))
	}
	g.smWake = make([]uint64, len(g.sms))
	g.smLastTick = make([]uint64, len(g.sms))
	g.partNext = make([]uint64, len(g.parts))
	g.inj = faults.NewInjector(cfg.Faults)
	g.probe = probe.NewState(cfg.Probe, kindLabels())
	if in := g.inj; in != nil &&
		(cfg.Faults.Sites.Has(faults.SiteIcntDrop) || cfg.Faults.Sites.Has(faults.SiteIcntDup)) {
		// Attack the response path: a dropped reply loses a completion
		// (the victim warp wedges until the watchdog notices); a
		// duplicated reply replays one (tolerated — the second delivery
		// finds its load already retired).
		g.toSM.SetTap(func(r smReply) int {
			if in.Fire(faults.SiteIcntDrop, r.globalAddr) {
				return 0
			}
			if in.Fire(faults.SiteIcntDup, r.globalAddr) {
				return 2
			}
			return 1
		})
	}
	return g, nil
}

// wrapGenerator applies the WarpOverride and clamps addresses to the
// protected region.
func (g *GPU) wrapGenerator(gen smcore.Generator) smcore.Generator {
	return &boundedGen{inner: gen, limit: g.cfg.ProtectedBytes, warpOverride: g.cfg.WarpOverride}
}

type boundedGen struct {
	inner        smcore.Generator
	limit        uint64
	warpOverride int
}

func (b *boundedGen) Name() string { return b.inner.Name() }
func (b *boundedGen) WarpsPerSM() int {
	if b.warpOverride > 0 {
		return b.warpOverride
	}
	return b.inner.WarpsPerSM()
}
func (b *boundedGen) ActiveSMs() int { return b.inner.ActiveSMs() }
func (b *boundedGen) Next(sm, warp, iter int) smcore.WarpOp {
	op := b.inner.Next(sm, warp, iter)
	for i, a := range op.Sectors {
		op.Sectors[i] = a % b.limit / trace.SectorSize * trace.SectorSize
	}
	return op
}

func (g *GPU) newToken() uint64 {
	g.tokenSeq++
	return g.tokenSeq
}

// partitionOf returns the partition index and partition-local address
// of a global address (256 B interleave across partitions).
func (g *GPU) partitionOf(globalAddr uint64) (int, uint64) {
	np := uint64(g.cfg.NumPartitions)
	chunk := globalAddr / 256
	part := int(chunk % np)
	local := (chunk/np)*256 + globalAddr%256
	return part, local
}

// scheduleReply sends completed sector data back toward the SMs.
func (g *GPU) scheduleReply(at uint64, globalAddr uint64, tokens []uint64) {
	extra := uint64(0)
	if at > g.now {
		extra = at - g.now
	}
	for _, tok := range tokens {
		g.toSM.PushAfter(g.now, extra, smReply{globalAddr: globalAddr, token: tok})
	}
}

// issueMem is the SM memory callback: it performs L1 lookups and
// forwards misses and stores toward the partitions.
func (g *GPU) issueMem(mi smcore.MemIssue) int {
	if mi.Write {
		for _, addr := range mi.Sectors {
			g.toL2.Push(g.now, l2Msg{globalAddr: addr, write: true})
		}
		return 0
	}
	l1 := g.l1s[mi.SM]
	outstanding := 0
	for _, addr := range mi.Sectors {
		tok := g.newToken()
		acc := l1.Access(addr, false, tok)
		switch {
		case acc.Outcome == cache.Hit:
			outstanding++
			g.loads[tok] = loadReq{sm: mi.SM, warp: mi.Warp}
			// Hit latency reply through the local pipeline (no icnt).
			if st := g.smStage; st != nil {
				g.oneTok[0] = tok
				st.stageReply(g.now, g.now+g.cfg.L1Latency, addr, g.oneTok[:])
			} else {
				g.toSM.PushAfter(g.now, g.cfg.L1Latency, smReply{globalAddr: addr, token: tok})
			}
		case acc.NeedFetch:
			outstanding++
			g.loads[tok] = loadReq{sm: mi.SM, warp: mi.Warp, fillBypass: acc.Bypass}
			g.toL2.Push(g.now, l2Msg{globalAddr: addr, token: tok})
		default: // merged into an L1 MSHR
			outstanding++
			g.loads[tok] = loadReq{sm: mi.SM, warp: mi.Warp}
		}
	}
	return outstanding
}

// deliverReply processes one sector arriving back at an SM: fill the
// L1 and wake every warp waiting on it.
func (g *GPU) deliverReply(r smReply) {
	lr, ok := g.loads[r.token]
	if !ok {
		return
	}
	l1 := g.l1s[lr.sm]
	if l1.Present(r.globalAddr) {
		// L1 hit reply or a redundant bypass fill.
		g.completeLoad(r.token)
		return
	}
	fill := g.l1s[lr.sm].Fill(r.globalAddr, lr.fillBypass, false)
	// L1 is write-through: evictions are clean, no writeback path.
	// fill.Tokens is cache-owned scratch; completeLoad consumes it
	// before anything can touch the L1 again.
	tokens := fill.Tokens
	if lr.fillBypass {
		tokens = append(tokens, r.token)
	}
	if len(tokens) == 0 {
		g.oneTok[0] = r.token
		tokens = g.oneTok[:]
	}
	for _, tok := range tokens {
		g.completeLoad(tok)
	}
}

func (g *GPU) completeLoad(token uint64) {
	lr, ok := g.loads[token]
	if !ok {
		return
	}
	delete(g.loads, token)
	g.completedLoads++
	g.sms[lr.sm].Complete(lr.warp, g.now)
	// The woken warp is ready at now+1.
	if g.smWake[lr.sm] > g.now+1 {
		g.smWake[lr.sm] = g.now + 1
	}
}

// step advances the machine one cycle, touching only components whose
// activity bound says they could do something. Skipping is
// state-identical to the legacy all-components step: a DelayQueue with
// nothing ready pops nothing, an idle partition's tick moves nothing,
// and an SM with no ready warp only accrues full-stall cycles (settled
// lazily via AccountIdle).
func (g *GPU) step() {
	g.now++
	g.stepped++
	// Interconnect deliveries into the partitions. A delivery re-arms
	// its partition for this cycle.
	if g.toL2.NextReady() <= g.now {
		for _, m := range g.toL2.PopReady(g.now) {
			part, local := g.partitionOf(m.globalAddr)
			g.partNext[part] = g.now
			if m.write {
				g.parts[part].handleL2Write(local, g.now)
			} else {
				g.parts[part].handleL2Read(m.globalAddr, local, m.token, g.now)
			}
		}
	}
	// Partitions: replies and DRAM.
	for i, p := range g.parts {
		if g.partNext[i] > g.now {
			continue
		}
		p.tick(g.now)
		g.partNext[i] = p.nextEvent(g.now)
	}
	// Replies into the SMs.
	if g.toSM.NextReady() <= g.now {
		for _, r := range g.toSM.PopReady(g.now) {
			g.deliverReply(r)
		}
	}
	// Issue.
	for i, sm := range g.sms {
		if g.smWake[i] > g.now {
			continue
		}
		if idle := g.now - g.smLastTick[i] - 1; idle > 0 {
			sm.AccountIdle(idle)
		}
		sm.Tick(g.now, g.issueMem)
		g.smLastTick[i] = g.now
		g.smWake[i] = sm.NextReady(g.now + 1)
	}
	if g.probe != nil {
		g.sampleProbe()
	}
}

// settleIdleStalls books the full-stall cycles of SMs that were
// skipped since their last tick, bringing Stalls up to date through
// g.now. Called before any reader of SM counters outside the loop.
func (g *GPU) settleIdleStalls() {
	for i, sm := range g.sms {
		if idle := g.now - g.smLastTick[i]; idle > 0 {
			sm.AccountIdle(idle)
			g.smLastTick[i] = g.now
		}
	}
}

// nextInteresting returns the earliest cycle after g.now at which any
// component could act: interconnect deliveries, partition events, and
// SM wake-ups, capped by the cycles external observers must land on —
// the watchdog's firing cycle and the probe timeline's sampling
// boundaries.
func (g *GPU) nextInteresting() uint64 {
	next := g.toL2.NextReady()
	if t := g.toSM.NextReady(); t < next {
		next = t
	}
	for _, t := range g.partNext {
		if t < next {
			next = t
		}
	}
	for _, t := range g.smWake {
		if t < next {
			next = t
		}
	}
	if g.cfg.WatchdogCycles > 0 {
		// Land exactly on the cycle checkWatchdog would fire, so a
		// wedged run stalls at the same cycle with the same dump as the
		// legacy loop.
		if fire := g.lastProgressAt + g.cfg.WatchdogCycles; fire < next {
			next = fire
		}
	}
	if g.probe != nil && g.probe.Timeline != nil {
		// Timeline windows close on every interval multiple.
		if iv := g.probe.Timeline.Interval(); iv > 0 {
			if b := (g.now/iv + 1) * iv; b < next {
				next = b
			}
		}
	}
	if g.ckptSink != nil {
		// Land exactly on checkpoint cycles, like the watchdog and
		// probe-timeline caps; the landing step is a no-op for an idle
		// machine, so resumability costs no timing fidelity.
		if b := (g.now/g.ckptEvery + 1) * g.ckptEvery; b < next {
			next = b
		}
	}
	if next <= g.now {
		next = g.now + 1
	}
	return next
}

// SetCheckpoint arms periodic checkpointing: every `every` cycles (and
// at run completion or cancellation) the run loop snapshots the
// machine and calls sink(cycle, state). The call is a no-op — the run
// stays checkpoint-free — when every is 0, sink is nil, or the
// configuration is not checkpointable (fault injection, probes,
// auditing, reuse profiling; see Snapshot). Arm it before Run; the
// sink runs on the simulation goroutine.
func (g *GPU) SetCheckpoint(every uint64, sink func(cycle uint64, st *MachineState)) {
	if every == 0 || sink == nil || g.checkpointable() != nil {
		return
	}
	g.ckptEvery = every
	g.ckptSink = sink
}

// maybeCheckpoint snapshots the machine for the armed sink. With
// force it fires at any cycle (run completion, cancellation); without
// it only on ckptEvery multiples. Cycle 0 (nothing simulated) and the
// cycle of the previous snapshot are never re-snapshotted.
func (g *GPU) maybeCheckpoint(force bool) {
	if g.ckptSink == nil || g.now == 0 || g.now == g.ckptLast {
		return
	}
	if !force && g.now%g.ckptEvery != 0 {
		return
	}
	st, err := g.Snapshot()
	if err != nil {
		return
	}
	g.ckptLast = g.now
	g.ckptSink(g.now, st)
}

// fastForward advances g.now to just before the next interesting
// cycle, so the following step lands on it. Cycles in between would
// have been no-op steps.
func (g *GPU) fastForward() {
	next := g.nextInteresting()
	if next > g.cfg.MaxCycles {
		// Nothing left before the horizon: idle out the remaining
		// cycles.
		g.now = g.cfg.MaxCycles
		return
	}
	if next > g.now+1 {
		g.now = next - 1
	}
}

// Run simulates cfg.MaxCycles cycles and gathers the result. It
// returns a *StallError when the watchdog detects a forward-progress
// stall and an *AuditError when an enabled invariant auditor finds the
// machine's books out of balance; both carry diagnostic state.
func (g *GPU) Run() (*Result, error) { return g.RunContext(context.Background()) }

// cancelCheckMask gates the cooperative cancellation poll: the loop
// consults ctx only once every cancelCheckMask+1 executed steps, so
// the hot path of an uncancellable run (ctx.Done() == nil) stays a
// single nil comparison and a cancellable one adds a masked counter
// test. At simulator speeds (millions of steps per second) this still
// bounds the reaction latency to well under a millisecond.
const cancelCheckMask = 0x3ff

// RunContext is Run with cooperative cancellation: when ctx is
// cancelled the simulation stops at the next check boundary and
// returns (nil, ctx.Err()) — never a partial Result. Cancellation is
// polled between steps (on the same boundary the watchdog and
// fast-forward logic run), so a run that is never cancelled produces
// bit-identical results to Run.
func (g *GPU) RunContext(ctx context.Context) (*Result, error) {
	if g.parallelEligible() {
		return g.runParallel(ctx)
	}
	// Per-cycle auditing wants every cycle stepped; per-component
	// skipping inside step stays on (it is state-identical, so the
	// auditors see the same books).
	ff := !g.disableFF && !g.cfg.Audit
	done := ctx.Done()
	if done != nil {
		// An already-dead context never simulates, however short the
		// run — the loop's masked poll may not fire on one this small.
		select {
		case <-done:
			return nil, ctx.Err()
		default:
		}
	}
	for g.now < g.cfg.MaxCycles {
		g.step()
		if g.cfg.Audit {
			if err := g.audit(g.now%auditDeepPeriod == 0); err != nil {
				return nil, err
			}
		}
		if err := g.checkWatchdog(); err != nil {
			return nil, err
		}
		if g.ckptSink != nil {
			g.maybeCheckpoint(false)
		}
		if done != nil && g.stepped&cancelCheckMask == 0 {
			select {
			case <-done:
				// Snapshot before abandoning the run so a drain or kill
				// loses at most the work since the last boundary.
				g.maybeCheckpoint(true)
				return nil, ctx.Err()
			default:
			}
		}
		if ff {
			g.fastForward()
		}
	}
	if g.cfg.Audit {
		if err := g.audit(true); err != nil {
			return nil, err
		}
	}
	// A final checkpoint at the horizon lets a later, longer-horizon
	// run resume from here instead of cycle 0.
	g.maybeCheckpoint(true)
	return g.collect(), nil
}

func (g *GPU) collect() *Result {
	g.settleIdleStalls()
	res := &Result{Benchmark: g.gen.Name(), Cycles: g.now}
	for _, sm := range g.sms {
		res.Instructions += sm.Instructions
	}
	for _, l1 := range g.l1s {
		addStats(&res.L1, l1.Stats)
	}
	for _, p := range g.parts {
		for _, b := range p.banks {
			addStats(&res.L2, b.Stats)
		}
		ds := p.dram.Stats
		res.RowHits += ds.RowHits
		res.RowMisses += ds.RowMisses
		for k := 0; k < int(numKinds); k++ {
			if k < len(ds.RequestsByKind) {
				res.RequestsByKind[k] += ds.RequestsByKind[k]
				res.BytesByKind[k] += ds.BytesByKind[k]
			}
		}
		for m := 0; m < int(numMeta); m++ {
			res.Meta[m].Accesses += p.metaStats[m].Accesses
			res.Meta[m].MissesPrimary += p.metaStats[m].MissesPrimary
			res.Meta[m].MissesSecondary += p.metaStats[m].MissesSecondary
		}
		for _, mc := range []*cache.Cache{p.ctr, p.mac, p.tree} {
			if mc != nil {
				res.MetaCacheWritebacks += mc.Stats.Writebacks
			}
		}
		if p.cfg.Secure.Unified && p.ctr != nil {
			// The aliased unified cache was counted three times.
			res.MetaCacheWritebacks -= 2 * p.ctr.Stats.Writebacks
		}
		if p.ctrReuse != nil {
			res.CounterReuse = p.ctrReuse
			res.MACReuse = p.macReuse
		}
	}
	res.Faults.Injected = g.inj.Stats().Injected
	for _, p := range g.parts {
		res.Faults.Detected += p.faultDetected
		res.Faults.Silent += p.faultSilent
	}
	res.Faults.DroppedReplies = g.toSM.Stats.Dropped + g.toL2.Stats.Dropped
	res.Faults.DuplicatedReplies = g.toSM.Stats.Duplicated + g.toL2.Stats.Duplicated
	// Peak bytes/cycle per partition = BeatBytes / (BeatThirds/3).
	perPart := uint64(g.cfg.DRAM.BeatBytes) * 3 / uint64(g.cfg.DRAM.BeatThirds)
	res.PeakBandwidthBytes = perPart * uint64(g.cfg.NumPartitions) * g.now
	res.Probe = g.probe.Report()
	return res
}

func addStats(dst *cache.Stats, src cache.Stats) {
	dst.Accesses += src.Accesses
	dst.Hits += src.Hits
	dst.MissesPrimary += src.MissesPrimary
	dst.MissesSecondary += src.MissesSecondary
	dst.MissesBypass += src.MissesBypass
	dst.Fills += src.Fills
	dst.Evictions += src.Evictions
	dst.Writebacks += src.Writebacks
}

// Run is the package-level convenience: build a GPU for cfg and the
// named benchmark and simulate it.
func Run(cfg Config, benchmark string) (*Result, error) {
	return RunContext(context.Background(), cfg, benchmark)
}

// RunContext is Run with cooperative cancellation (see
// GPU.RunContext).
func RunContext(ctx context.Context, cfg Config, benchmark string) (*Result, error) {
	gen, err := trace.New(benchmark)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	g, err := New(cfg, gen)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	return g.RunContext(ctx)
}
