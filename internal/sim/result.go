package sim

import (
	"fmt"

	"gpusecmem/internal/cache"
	"gpusecmem/internal/faults"
	"gpusecmem/internal/probe"
	"gpusecmem/internal/stats"
)

// TrafficKind classifies DRAM requests for the Figure 4 breakdown.
type TrafficKind int

// Traffic kinds. KindWB covers all metadata-cache writebacks, matching
// the paper's 'wb' series; data writebacks count as KindData ("regular
// data read and write requests"). The kinds past KindWB belong to the
// extension scheme families: KindShare is the extra secret-share
// fetches of EncScattered (the primary share still counts as KindData),
// KindSMap its share-map line traffic, and KindKey the key-table line
// reads of EncSWCrypto. They are zero — and omitted from the JSON form
// — for every paper scheme, so the golden digests of the original
// catalogue are unaffected by their existence.
const (
	KindData TrafficKind = iota
	KindCounter
	KindMAC
	KindTree
	KindWB
	KindShare
	KindSMap
	KindKey
	numKinds
)

func (k TrafficKind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindCounter:
		return "ctr"
	case KindMAC:
		return "mac"
	case KindTree:
		return "bmt"
	case KindWB:
		return "wb"
	case KindShare:
		return "share"
	case KindSMap:
		return "smap"
	case KindKey:
		return "key"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// MetaKind indexes per-metadata-type statistics.
type MetaKind int

// Metadata types. MetaSMap tracks EncScattered's share-map cache and
// MetaKey EncSWCrypto's software key-table lookups; both stay all-zero
// for the paper schemes (and the JSON form already omits zero-access
// metadata types, so old digests are unaffected).
const (
	MetaCounter MetaKind = iota
	MetaMAC
	MetaTree
	MetaSMap
	MetaKey
	numMeta
)

func (m MetaKind) String() string {
	switch m {
	case MetaCounter:
		return "counter"
	case MetaMAC:
		return "mac"
	case MetaTree:
		return "bmt"
	case MetaSMap:
		return "smap"
	case MetaKey:
		return "key"
	}
	return fmt.Sprintf("meta(%d)", int(m))
}

// MetaStats aggregates one metadata type's cache behaviour across
// partitions (tracked outside cache.Stats so the unified cache still
// yields per-type numbers for Figure 9).
type MetaStats struct {
	Accesses        uint64
	MissesPrimary   uint64
	MissesSecondary uint64
}

// Misses is the total.
func (m MetaStats) Misses() uint64 { return m.MissesPrimary + m.MissesSecondary }

// MissRate is misses/accesses.
func (m MetaStats) MissRate() float64 { return stats.Ratio(m.Misses(), m.Accesses) }

// SecondaryRatio is the Figure 5 metric.
func (m MetaStats) SecondaryRatio() float64 { return stats.Ratio(m.MissesSecondary, m.Misses()) }

// FaultStats summarizes a fault-injection campaign (Config.Faults):
// how many corruptions were injected per site, and how the configured
// protection level classified the bit-flip corruptions. The timing
// simulator carries no data, so detection is modeled structurally at
// the injection point: a data flip is caught iff the access is
// MAC-protected; a counter flip iff a tree or (stateful) MAC covers
// it; MAC-line and tree-node flips iff that metadata exists to
// miscompare. The functional ground truth for the same model lives in
// internal/secmem (see the ext-faultcoverage experiment).
type FaultStats struct {
	// Injected counts injections per site, indexed by faults.Site.
	Injected [faults.NumSites]uint64
	// Detected / Silent classify injected bit-flip corruptions.
	Detected uint64
	Silent   uint64
	// DroppedReplies / DuplicatedReplies count interconnect-tap
	// interventions (these exercise the watchdog, not detection).
	DroppedReplies    uint64
	DuplicatedReplies uint64
}

// Corruptions is the number of injected bit flips.
func (f FaultStats) Corruptions() uint64 { return f.Detected + f.Silent }

// DetectionRate is the fraction of bit-flip corruptions the protection
// level catches.
func (f FaultStats) DetectionRate() float64 { return stats.Ratio(f.Detected, f.Corruptions()) }

// Result is the outcome of one simulation run.
type Result struct {
	Benchmark string
	Cycles    uint64
	// Instructions counts thread-instructions; IPC = Instructions /
	// Cycles, the paper's metric.
	Instructions uint64

	// DRAM traffic, chip-wide.
	RequestsByKind [numKinds]uint64
	BytesByKind    [numKinds]uint64
	RowHits        uint64
	RowMisses      uint64

	// Cache stats, chip-wide aggregates.
	L1   cache.Stats
	L2   cache.Stats
	Meta [numMeta]MetaStats

	// MetaCacheStats aggregates the raw cache counters of the
	// metadata caches (fills, evictions, writebacks).
	MetaCacheWritebacks uint64

	// Reuse profilers (partition 0) when Config.ProfileReuse is set.
	CounterReuse *stats.ReuseProfiler
	MACReuse     *stats.ReuseProfiler

	// PeakBandwidthBytes is the theoretical DRAM byte capacity of the
	// run (peak bytes/cycle x cycles), for utilization.
	PeakBandwidthBytes uint64

	// Faults summarizes the injection campaign; all-zero without one.
	Faults FaultStats

	// Probe is the observability report of a probed run (Config.Probe);
	// nil without one.
	Probe *probe.Report
}

// IPC is thread-instructions per cycle.
func (r *Result) IPC() float64 { return stats.Ratio(r.Instructions, r.Cycles) }

// TotalRequests sums DRAM requests over kinds.
func (r *Result) TotalRequests() uint64 {
	var t uint64
	for _, v := range r.RequestsByKind {
		t += v
	}
	return t
}

// TotalBytes sums DRAM bytes over kinds.
func (r *Result) TotalBytes() uint64 {
	var t uint64
	for _, v := range r.BytesByKind {
		t += v
	}
	return t
}

// BandwidthUtilization is DRAM bytes moved / theoretical capacity.
func (r *Result) BandwidthUtilization() float64 {
	return stats.Ratio(r.TotalBytes(), r.PeakBandwidthBytes)
}

// RequestShare returns kind's fraction of all DRAM requests (Fig 4).
func (r *Result) RequestShare(k TrafficKind) float64 {
	return stats.Ratio(r.RequestsByKind[k], r.TotalRequests())
}

// NormalizedIPC divides this run's IPC by a baseline run's IPC.
func (r *Result) NormalizedIPC(baseline *Result) float64 {
	b := baseline.IPC()
	if b == 0 {
		return 0
	}
	return r.IPC() / b
}

func (r *Result) String() string {
	return fmt.Sprintf("%s: IPC=%.1f bw=%.1f%% reqs[data=%d ctr=%d mac=%d bmt=%d wb=%d]",
		r.Benchmark, r.IPC(), 100*r.BandwidthUtilization(),
		r.RequestsByKind[KindData], r.RequestsByKind[KindCounter],
		r.RequestsByKind[KindMAC], r.RequestsByKind[KindTree], r.RequestsByKind[KindWB])
}
