package sim

import (
	"encoding/json"
	"testing"
)

func TestResultJSON(t *testing.T) {
	cfg := SecureMem()
	cfg.MaxCycles = 3000
	r, err := Run(cfg, "fdtd2d")
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]interface{}
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"benchmark", "ipc", "bandwidth_utilization", "dram_requests", "metadata", "l2_miss_rate"} {
		if _, ok := out[key]; !ok {
			t.Errorf("missing key %q in %s", key, b)
		}
	}
	reqs := out["dram_requests"].(map[string]interface{})
	if reqs["ctr"].(float64) <= 0 {
		t.Error("no counter requests serialized")
	}
	meta := out["metadata"].(map[string]interface{})
	if _, ok := meta["counter"]; !ok {
		t.Error("missing counter metadata stats")
	}
}

func TestResultJSONBaselineOmitsMeta(t *testing.T) {
	cfg := Baseline()
	cfg.MaxCycles = 1500
	r, err := Run(cfg, "nw")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := json.Marshal(r)
	var out struct {
		Meta map[string]interface{} `json:"metadata"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Meta) != 0 {
		t.Errorf("baseline serialized metadata stats: %v", out.Meta)
	}
}
