package sim

// Probe glue: the simulator side of internal/probe. Everything in
// this file runs only when Config.Probe enables an instrument — every
// call site is gated on a single `g.probe != nil` check, and nothing
// here mutates machine state, so a probed run's Result is identical
// to an unprobed one (the probe determinism tests enforce this
// byte-for-byte).

import "gpusecmem/internal/probe"

// kindLabels names the TrafficKind space for probe output.
func kindLabels() []string {
	out := make([]string, numKinds)
	for k := TrafficKind(0); k < numKinds; k++ {
		out[k] = k.String()
	}
	return out
}

// recordHitSpan traces an L2 hit: interconnect transit both ways plus
// the bank's hit service time.
func (p *partition) recordHitSpan(pr *probe.State, now uint64) {
	if pr.Spans == nil {
		return
	}
	icnt := p.cfg.IcntLatency
	var st [probe.NumStages]uint64
	st[probe.StageQueue] = 2 * icnt
	st[probe.StageL2] = p.cfg.L2Latency
	pr.Spans.Record(probe.Span{
		Kind:   int(KindData),
		Part:   p.id,
		Start:  now - icnt,
		End:    now + p.cfg.L2Latency + icnt,
		Stages: st,
	})
}

// recordReadSpan attributes a completed secure read's issue→reply
// latency across stages. The attribution is conservative by
// construction: consecutive critical-path segments partition the
// interval, so the stage durations always sum to End-Start.
//
//	issue ──icnt──▶ partition ──dram──▶ data ready
//	  └─ beyond data: metadata wait, then exposed AES, then blocking
//	     verify, then scheduling slack ──icnt──▶ reply delivered
//
// otpReady is the counter-mode pad-ready cycle (0 when not computed),
// encDone the critical path after encryption, verifyDone the blocking
// MAC completion (0 under speculative verification), finalAt the
// scheduled reply cycle after clamping.
func (p *partition) recordReadSpan(pr *probe.State, rs *readState, otpReady, encDone, verifyDone, finalAt uint64) {
	if pr.Spans == nil {
		return
	}
	icnt := p.cfg.IcntLatency
	sc := &p.cfg.Secure
	var st [probe.NumStages]uint64
	st[probe.StageQueue] = 2 * icnt
	st[probe.StageDRAM] = rs.dataReady - rs.arrivedAt
	base := rs.dataReady
	switch {
	case rs.unprotected || sc.Encryption == EncNone:
		// No crypto on the reply path.
	case sc.Encryption == EncCounter:
		if otpReady > base {
			// The pad outlasted the data: time up to the counter's
			// arrival is metadata wait, the rest is exposed AES.
			m := rs.ctrReady
			if m < base {
				m = base
			}
			st[probe.StageMeta] = m - base
			st[probe.StageAES] = otpReady - m
			base = otpReady
		}
	case sc.Encryption == EncScattered:
		// The map lookup gated the whole fan-out: time until the
		// placement answer is metadata, the share-fetch window is
		// share, and the XOR reconstruction is combine — there is no
		// "plain DRAM" segment to attribute.
		m := rs.ctrReady
		if m < rs.arrivedAt {
			m = rs.arrivedAt
		}
		if m > rs.dataReady {
			m = rs.dataReady
		}
		st[probe.StageDRAM] = 0
		st[probe.StageMeta] = m - rs.arrivedAt
		st[probe.StageShareFetch] = rs.dataReady - m
		st[probe.StageCombine] = encDone - rs.dataReady
		base = encDone
	case sc.Encryption == EncSWCrypto:
		if rs.ctrReady > base {
			// The key-table fetch outlasted the ciphertext.
			st[probe.StageMeta] = rs.ctrReady - base
			base = rs.ctrReady
		}
		// The software cipher pass is the scheme's "AES" stage.
		st[probe.StageAES] = encDone - base
		base = encDone
	default: // EncDirect: decryption always follows the data.
		st[probe.StageAES] = encDone - base
		base = encDone
	}
	if verifyDone > base {
		// Blocking verification extended the path: the slice waiting
		// for the MAC line is metadata, the remainder is the check.
		w := rs.macReady
		if rs.dataReady > w {
			w = rs.dataReady
		}
		extra := verifyDone - base
		metaExtra := uint64(0)
		if w > base {
			metaExtra = w - base
			if metaExtra > extra {
				metaExtra = extra
			}
		}
		st[probe.StageMeta] += metaExtra
		st[probe.StageVerify] = extra - metaExtra
		base = verifyDone
	}
	if finalAt > base {
		// Reply-scheduling slack (the at<=now clamp).
		st[probe.StageQueue] += finalAt - base
	}
	pr.Spans.Record(probe.Span{
		Kind:   int(KindData),
		Part:   p.id,
		Start:  rs.arrivedAt - icnt,
		End:    finalAt + icnt,
		Stages: st,
	})
}

// recordMetaSpan traces one metadata-line DRAM fetch (counter, MAC,
// or tree) from enqueue to fill completion.
func (p *partition) recordMetaSpan(pr *probe.State, d dest, kind TrafficKind, now uint64) {
	if pr.Spans == nil || d.issuedAt == 0 {
		return
	}
	var st [probe.NumStages]uint64
	st[probe.StageDRAM] = now - d.issuedAt
	pr.Spans.Record(probe.Span{
		Kind:   int(kind),
		Part:   p.id,
		Start:  d.issuedAt,
		End:    now,
		Stages: st,
	})
}

// sampleProbe closes a timeline window when the sampling cycle comes
// up. Called from step() behind the g.probe nil check.
func (g *GPU) sampleProbe() {
	tl := g.probe.Timeline
	if tl == nil || g.now%tl.Interval() != 0 {
		return
	}
	var tot probe.Totals
	tot.BytesByKind = make([]uint64, numKinds)
	tot.RequestsByKind = make([]uint64, numKinds)
	var inst probe.Instant
	for _, sm := range g.sms {
		instr, _, _, blocked := sm.Counters()
		tot.Instructions += instr
		inst.BlockedWarps += blocked
	}
	for _, p := range g.parts {
		ds := &p.dram.Stats
		tot.DRAMReads += ds.Reads
		tot.DRAMWrites += ds.Writes
		tot.RowHits += ds.RowHits
		tot.RowMisses += ds.RowMisses
		for k := 0; k < int(numKinds) && k < len(ds.BytesByKind); k++ {
			tot.BytesByKind[k] += ds.BytesByKind[k]
			tot.RequestsByKind[k] += ds.RequestsByKind[k]
		}
		for m := 0; m < int(numMeta) && m < len(tot.MetaAccesses); m++ {
			tot.MetaAccesses[m] += p.metaStats[m].Accesses
			tot.MetaMisses[m] += p.metaStats[m].Misses()
		}
		for _, b := range p.banks {
			inst.L2MSHRs += b.MSHRsInUse()
		}
		if p.ctr != nil {
			inst.MetaMSHRs += p.ctr.MSHRsInUse()
		}
		if !p.cfg.Secure.Unified {
			// With a unified cache ctr/mac/tree alias one instance;
			// separate caches each contribute their own occupancy.
			if p.mac != nil {
				inst.MetaMSHRs += p.mac.MSHRsInUse()
			}
			if p.tree != nil {
				inst.MetaMSHRs += p.tree.MSHRsInUse()
			}
		}
		inst.DRAMQueue += p.dram.QueueLen()
		inst.BusyBanks += p.dram.BusyBanks(g.now)
	}
	inst.OutstandingLoads = len(g.loads)
	tl.Observe(g.now, tot, inst)
}
