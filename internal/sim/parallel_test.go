package sim

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"

	"gpusecmem/internal/faults"
	"gpusecmem/internal/probe"
	"gpusecmem/internal/trace"
)

// runSharded runs cfg/bench with the given shard count and reports the
// result plus how many parallel barrier windows executed (0 = the
// sequential engine ran).
func runSharded(t *testing.T, cfg Config, bench string, shards int) (*Result, error, uint64) {
	t.Helper()
	cfg.Shards = shards
	g, err := New(cfg, trace.MustNew(bench))
	if err != nil {
		t.Fatal(err)
	}
	res, rerr := g.Run()
	return res, rerr, g.parallelWindows
}

// TestParallelIdentity: the barrier-synchronized engine must produce
// byte-identical results to the sequential engine for every shard
// count, including counts that do not divide the partition count and
// the one-partition-per-shard extreme.
func TestParallelIdentity(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		bench string
	}{
		{"securemem/fdtd2d", SecureMem(), "fdtd2d"},
		{"securemem/heartwall", SecureMem(), "heartwall"},
		{"baseline/nw", Baseline(), "nw"},
		{"direct_mac_mt/lbm", DirectMem(60, true, true), "lbm"},
	}
	shardCounts := []int{2, 4, 5, 8, 32}
	for _, tc := range cases {
		tc.cfg.MaxCycles = testCycles
		seq, err, seqWindows := runSharded(t, tc.cfg, tc.bench, 0)
		if err != nil {
			t.Fatal(err)
		}
		if seqWindows != 0 {
			t.Fatalf("%s: sequential run executed %d parallel windows", tc.name, seqWindows)
		}
		seqJSON, _ := json.Marshal(seq)
		for _, s := range shardCounts {
			par, err, windows := runSharded(t, tc.cfg, tc.bench, s)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", tc.name, s, err)
			}
			if windows == 0 {
				t.Fatalf("%s shards=%d: parallel engine did not run", tc.name, s)
			}
			parJSON, _ := json.Marshal(par)
			if string(parJSON) != string(seqJSON) {
				t.Errorf("%s shards=%d: result differs from sequential engine\nseq: %s\npar: %s",
					tc.name, s, seqJSON, parJSON)
			}
		}
	}
}

// TestParallelFallbacks: configurations the parallel engine cannot
// reproduce exactly must silently run the sequential engine — and
// still produce results identical to an explicitly sequential run.
func TestParallelFallbacks(t *testing.T) {
	base := SecureMem()
	base.MaxCycles = 3000
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"audit", func(c *Config) { c.Audit = true }},
		{"faults", func(c *Config) {
			c.Faults = &faults.Plan{Seed: 7, Rate: 0.01, Sites: faults.SiteDRAMData.Mask()}
		}},
		{"probe", func(c *Config) { c.Probe = &probe.Config{TimelineInterval: 500} }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		seq, err, _ := runSharded(t, cfg, "fdtd2d", 0)
		if err != nil {
			t.Fatalf("%s sequential: %v", tc.name, err)
		}
		par, err, windows := runSharded(t, cfg, "fdtd2d", 8)
		if err != nil {
			t.Fatalf("%s shards=8: %v", tc.name, err)
		}
		if windows != 0 {
			t.Errorf("%s: parallel engine ran despite the restriction (%d windows)", tc.name, windows)
		}
		sj, _ := json.Marshal(seq)
		pj, _ := json.Marshal(par)
		if string(sj) != string(pj) {
			t.Errorf("%s: fallback result differs from sequential run", tc.name)
		}
	}
}

// TestParallelWatchdogBoundary: a run that stalls must fire the
// watchdog at the identical cycle with the identical diagnostic state
// under both engines. The aggressive threshold turns the first
// all-warps-blocked DRAM stretch into a "stall", exercising the
// barrier's exact landing on the fire cycle.
func TestParallelWatchdogBoundary(t *testing.T) {
	cfg := SecureMem()
	cfg.MaxCycles = 200000
	// Empirically below the longest quiet stretch of this workload, so
	// the watchdog fires mid-run under both engines.
	cfg.WatchdogCycles = watchdogProbeThreshold(t, cfg, "fdtd2d")

	_, seqErr, _ := runSharded(t, cfg, "fdtd2d", 0)
	_, parErr, windows := runSharded(t, cfg, "fdtd2d", 8)
	var seqStall, parStall *StallError
	if !errors.As(seqErr, &seqStall) {
		t.Fatalf("sequential run: want StallError, got %v", seqErr)
	}
	if !errors.As(parErr, &parStall) {
		t.Fatalf("parallel run: want StallError, got %v", parErr)
	}
	if windows == 0 {
		t.Fatal("parallel engine did not run")
	}
	if seqStall.Cycle != parStall.Cycle || seqStall.LastProgressCycle != parStall.LastProgressCycle {
		t.Errorf("watchdog timing differs: sequential fired at %d (progress %d), parallel at %d (progress %d)",
			seqStall.Cycle, seqStall.LastProgressCycle, parStall.Cycle, parStall.LastProgressCycle)
	}
	if seqStall.Dump != parStall.Dump {
		t.Errorf("stall dumps differ:\nseq:\n%s\npar:\n%s", seqStall.Dump, parStall.Dump)
	}
}

// watchdogProbeThreshold finds a threshold that stalls cfg/bench: the
// longest progress gap of an unrestricted run, halved. Skips the test
// if the workload never goes quiet long enough to fake a stall.
func watchdogProbeThreshold(t *testing.T, cfg Config, bench string) uint64 {
	t.Helper()
	probeCfg := cfg
	probeCfg.WatchdogCycles = 0
	probeCfg.Shards = 0
	g, err := New(probeCfg, trace.MustNew(bench))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(); err != nil {
		t.Fatal(err)
	}
	gap := g.maxProgressGap
	if gap < 8 {
		t.Skipf("workload never idles (max progress gap %d); cannot provoke a stall", gap)
	}
	return gap / 2
}

// TestParallelBarrierMergeRace is the -race stress: many concurrent
// sharded runs hammer fork/join, staging, and the canonical merge
// while asserting determinism against a reference digest.
func TestParallelBarrierMergeRace(t *testing.T) {
	cfg := SecureMem()
	cfg.MaxCycles = 2500
	ref, err, _ := runSharded(t, cfg, "fdtd2d", 0)
	if err != nil {
		t.Fatal(err)
	}
	refJSON, _ := json.Marshal(ref)
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for i := 0; i < 12; i++ {
		shards := []int{2, 3, 8}[i%3]
		wg.Add(1)
		go func(shards, i int) {
			defer wg.Done()
			c := cfg
			c.Shards = shards
			g, err := New(c, trace.MustNew("fdtd2d"))
			if err != nil {
				errs <- err
				return
			}
			res, err := g.Run()
			if err != nil {
				errs <- err
				return
			}
			if g.parallelWindows == 0 {
				errs <- fmt.Errorf("run %d: parallel engine did not run", i)
				return
			}
			j, _ := json.Marshal(res)
			if string(j) != string(refJSON) {
				errs <- fmt.Errorf("run %d (shards=%d): nondeterministic result", i, shards)
			}
		}(shards, i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestValidateShards: invalid shard counts must be rejected with
// actionable errors before simulation, not panic at runtime.
func TestValidateShards(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		ok   bool
	}{
		{"zero (sequential)", func(c *Config) { c.Shards = 0 }, true},
		{"one (sequential)", func(c *Config) { c.Shards = 1 }, true},
		{"equal to partitions", func(c *Config) { c.Shards = c.NumPartitions }, true},
		{"non-dividing", func(c *Config) { c.Shards = 5 }, true},
		{"negative", func(c *Config) { c.Shards = -1 }, false},
		{"more shards than partitions", func(c *Config) { c.Shards = c.NumPartitions + 1 }, false},
		{"zero icnt latency", func(c *Config) { c.Shards = 4; c.IcntLatency = 0 }, false},
	}
	for _, tc := range cases {
		cfg := Baseline()
		tc.mut(&cfg)
		err := cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: Validate accepted an invalid shard setup", tc.name)
		}
	}
}
