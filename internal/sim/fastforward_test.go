package sim

import (
	"encoding/json"
	"errors"
	"testing"

	"gpusecmem/internal/faults"
	"gpusecmem/internal/probe"
	"gpusecmem/internal/trace"
)

// runCounting runs cfg on bench with fast-forwarding optionally forced
// off and returns the result (or error) plus how many cycle steps were
// actually executed.
func runCounting(t *testing.T, cfg Config, bench string, disableFF bool) (*Result, error, uint64) {
	t.Helper()
	g, err := New(cfg, trace.MustNew(bench))
	if err != nil {
		t.Fatal(err)
	}
	g.disableFF = disableFF
	res, rerr := g.Run()
	return res, rerr, g.stepped
}

// TestFastForwardIdentity: the activity-driven loop must produce
// bit-identical results to stepping every cycle — skipped cycles are
// provably no-ops, so every statistic down to the last stall has to
// match the legacy loop exactly.
func TestFastForwardIdentity(t *testing.T) {
	cases := []struct {
		cfg   Config
		bench string
	}{
		{SecureMem(), "fdtd2d"},
		{SecureMem(), "heartwall"},
		{Baseline(), "nw"},
	}
	for _, tc := range cases {
		tc.cfg.MaxCycles = testCycles
		fast, err1, _ := runCounting(t, tc.cfg, tc.bench, false)
		if err1 != nil {
			t.Fatal(err1)
		}
		slow, err2, slowSteps := runCounting(t, tc.cfg, tc.bench, true)
		if err2 != nil {
			t.Fatal(err2)
		}
		if slowSteps != testCycles {
			t.Fatalf("%s: legacy loop stepped %d of %d cycles", tc.bench, slowSteps, testCycles)
		}
		fj, _ := json.Marshal(fast)
		sj, _ := json.Marshal(slow)
		if string(fj) != string(sj) {
			t.Errorf("%s/%s: fast-forwarded result differs from every-cycle result\nfast: %s\nslow: %s",
				tc.cfg.Secure.Encryption, tc.bench, fj, sj)
		}
	}
}

// TestIdleSkipWedgedMachine wedges every SM by dropping all
// interconnect messages: every load stays outstanding forever, so after
// the in-flight work drains the machine has nothing to do until the
// watchdog fires. The activity-driven loop must (a) skip nearly all of
// those dead cycles, and (b) still land the watchdog on the exact cycle
// the legacy loop fires it, with the same diagnostic state.
func TestIdleSkipWedgedMachine(t *testing.T) {
	cfg := Baseline()
	cfg.MaxCycles = 100000
	cfg.WatchdogCycles = 20000
	cfg.Faults = &faults.Plan{Seed: 1, Rate: 1, Sites: faults.SiteIcntDrop.Mask()}

	_, fastErr, fastSteps := runCounting(t, cfg, "fdtd2d", false)
	_, slowErr, slowSteps := runCounting(t, cfg, "fdtd2d", true)

	var fastStall, slowStall *StallError
	if !errors.As(fastErr, &fastStall) {
		t.Fatalf("fast run: want StallError, got %v", fastErr)
	}
	if !errors.As(slowErr, &slowStall) {
		t.Fatalf("slow run: want StallError, got %v", slowErr)
	}
	if fastStall.Cycle != slowStall.Cycle || fastStall.LastProgressCycle != slowStall.LastProgressCycle {
		t.Errorf("watchdog timing differs: fast fired at %d (progress %d), slow at %d (progress %d)",
			fastStall.Cycle, fastStall.LastProgressCycle, slowStall.Cycle, slowStall.LastProgressCycle)
	}
	if fastStall.OutstandingLoads != slowStall.OutstandingLoads ||
		fastStall.BlockedWarps != slowStall.BlockedWarps {
		t.Errorf("stall state differs: fast %d loads/%d warps, slow %d loads/%d warps",
			fastStall.OutstandingLoads, fastStall.BlockedWarps,
			slowStall.OutstandingLoads, slowStall.BlockedWarps)
	}
	// The wedged stretch is ~WatchdogCycles long; the legacy loop steps
	// all of it, the activity-driven loop should step almost none.
	if slowSteps != slowStall.Cycle {
		t.Fatalf("legacy loop stepped %d cycles, watchdog fired at %d", slowSteps, slowStall.Cycle)
	}
	if fastSteps*10 > slowSteps {
		t.Errorf("fast-forward skipped too little: %d steps vs %d wedged cycles", fastSteps, slowSteps)
	}
}

// TestFastForwardRespectsProbeTimeline: fast-forwarding may not skip a
// timeline sampling boundary; window counts and contents must match the
// every-cycle loop.
func TestFastForwardRespectsProbeTimeline(t *testing.T) {
	cfg := SecureMem()
	cfg.MaxCycles = testCycles
	cfg.Probe = &probe.Config{TimelineInterval: 500}
	fast, err1, _ := runCounting(t, cfg, "heartwall", false)
	if err1 != nil {
		t.Fatal(err1)
	}
	slow, err2, _ := runCounting(t, cfg, "heartwall", true)
	if err2 != nil {
		t.Fatal(err2)
	}
	fj, _ := json.Marshal(fast.Probe)
	sj, _ := json.Marshal(slow.Probe)
	if string(fj) != string(sj) {
		t.Errorf("probe timelines differ between fast and slow loops")
	}
}
