package sim

// The barrier-synchronized parallel partition engine (DESIGN.md §13).
//
// Partitions never touch each other: the only state a partition shares
// with the rest of the machine is the pair of interconnect delay
// queues, and a delay queue cannot deliver anything sooner than
// IcntLatency cycles after its push. That fixed minimum latency is a
// conservative lookahead window, Chandy–Misra style: inside a window
// of W = IcntLatency cycles, every cross-component message that could
// arrive was already in flight when the window began, and everything
// pushed inside the window is deliverable only after it ends. So the
// engine alternates:
//
//   barrier (single-threaded)          window (parallel)
//   ─ merge staged toSM pushes         ─ S shard workers advance their
//     in canonical order                 partitions through (T, T+W]
//   ─ pre-drain both queues              against pre-drained inboxes
//     through T+W into inboxes        ─ the coordinator runs the SM
//   ─ watchdog / cancellation           task over the same cycles
//
// Determinism: every toSM push is tagged with a merge key — (cycle,
// phase, major, minor) — reproducing the sequential engine's exact
// push order: phase 0 is delivery-handler pushes ordered by the global
// FIFO order of the toL2 messages that triggered them, phase 1 is
// partition-tick pushes ordered by partition index, phase 2 is SM-tick
// pushes ordered by SM index. Sorting the union of all staging buffers
// by that key and appending to toSM therefore rebuilds the byte-exact
// queue the sequential engine would hold, regardless of shard count or
// goroutine interleaving. Everything else a worker touches is
// partition-owned (caches, DRAM channel, MSHRs, read states, tokens).

import (
	"context"
	"sort"

	"gpusecmem/internal/shard"
)

// mergeKey orders staged toSM pushes into the sequential engine's push
// order. Keys are unique across a window (minor disambiguates pushes
// from one handler), so the sort is a total order.
type mergeKey struct {
	cycle uint64
	phase uint8 // 0 = toL2 delivery handler, 1 = partition tick, 2 = SM tick
	major uint64
	minor uint32
}

func (k mergeKey) less(o mergeKey) bool {
	if k.cycle != o.cycle {
		return k.cycle < o.cycle
	}
	if k.phase != o.phase {
		return k.phase < o.phase
	}
	if k.major != o.major {
		return k.major < o.major
	}
	return k.minor < o.minor
}

type stagedReply struct {
	key     mergeKey
	readyAt uint64
	r       smReply
}

// replyStage collects one shard's (or the SM task's) toSM pushes
// during a window. Each stage is owned by exactly one goroutine inside
// a window and read only by the coordinator at the barrier; the shard
// pool's fork/join edges order those accesses.
type replyStage struct {
	latency uint64
	buf     []stagedReply
	// Current merge-key context, set by the engine before invoking a
	// handler; minor counts pushes within it.
	cycle uint64
	phase uint8
	major uint64
	minor uint32
}

func (st *replyStage) setCtx(cycle uint64, phase uint8, major uint64) {
	st.cycle, st.phase, st.major, st.minor = cycle, phase, major, 0
}

// stageReply records one sendReply: readyAt reproduces
// DelayQueue.PushAfter's arithmetic (push cycle + latency + extra),
// and the token slice — possibly cache-owned scratch — is copied
// entry-by-entry.
func (st *replyStage) stageReply(now, at, globalAddr uint64, tokens []uint64) {
	if at < now {
		at = now
	}
	readyAt := at + st.latency
	for _, tok := range tokens {
		st.buf = append(st.buf, stagedReply{
			key:     mergeKey{cycle: st.cycle, phase: st.phase, major: st.major, minor: st.minor},
			readyAt: readyAt,
			r:       smReply{globalAddr: globalAddr, token: tok},
		})
		st.minor++
	}
}

// inboxMsg is one pre-drained SM→L2 message routed to its partition:
// at is its head-blocking-exact delivery cycle, seq its global FIFO
// delivery order (the phase-0 merge major).
type inboxMsg struct {
	at    uint64
	seq   uint64
	local uint64
	m     l2Msg
}

type inbox struct {
	items []inboxMsg
	head  int
}

type smDelivery struct {
	at uint64
	r  smReply
}

// parEngine is the per-run state of the parallel engine.
type parEngine struct {
	g       *GPU
	shards  int
	pool    *shard.Pool
	stages  []*replyStage // one per shard worker
	inboxes []inbox       // one per partition
	smInbox []smDelivery
	smHead  int
	merged  []stagedReply
	// instrTotal mirrors the sum of all SM instruction counters so the
	// SM task can maintain the watchdog's progress metric exactly (to
	// the cycle) without re-summing 80 SMs every executed cycle.
	instrTotal uint64
}

// parallelEligible reports whether the parallel engine may run this
// configuration. Anything it cannot reproduce bit-identically falls
// back to the sequential engine: per-cycle auditing wants the whole
// machine stepped in lockstep, and fault injection / probes hang
// shared mutable state (injector PRNG order, span and timeline
// buffers) off paths that would race across shards. DESIGN.md §13
// documents each restriction.
func (g *GPU) parallelEligible() bool {
	return g.cfg.Shards > 1 &&
		len(g.parts) > 1 &&
		g.cfg.IcntLatency >= 1 &&
		!g.cfg.Audit &&
		!g.disableFF &&
		g.inj == nil &&
		g.probe == nil
}

// runParallel is the parallel counterpart of the RunContext loop. Its
// results are bit-identical to the sequential engine's for every shard
// count (the golden-digest suite pins this).
func (g *GPU) runParallel(ctx context.Context) (*Result, error) {
	S := g.cfg.Shards
	if S > len(g.parts) {
		S = len(g.parts)
	}
	e := &parEngine{g: g, shards: S, pool: shard.NewPool(S)}
	defer e.pool.Close()
	lat := g.cfg.IcntLatency
	for w := 0; w < S; w++ {
		e.stages = append(e.stages, &replyStage{latency: lat})
	}
	e.inboxes = make([]inbox, len(g.parts))
	for i, p := range g.parts {
		p.stage = e.stages[i%S]
	}
	g.smStage = &replyStage{latency: lat}
	defer func() {
		for _, p := range g.parts {
			p.stage = nil
		}
		g.smStage = nil
	}()
	for _, sm := range g.sms {
		e.instrTotal += sm.Instructions
	}

	done := ctx.Done()
	if done != nil {
		select {
		case <-done:
			return nil, ctx.Err()
		default:
		}
	}
	maxC := g.cfg.MaxCycles
	var windows uint64
	T := g.now
	for T < maxC {
		// Jump idle stretches: land the next window on the earliest
		// cycle any component could act (the parallel analogue of
		// nextInteresting). Queue heads are lower bounds on effective
		// delivery, partNext/smWake are the per-component bounds the
		// last window left behind; undershooting costs a no-op window.
		next := g.toL2.NextReady()
		if t := g.toSM.NextReady(); t < next {
			next = t
		}
		for _, t := range g.partNext {
			if t <= T {
				t = T + 1
			}
			if t < next {
				next = t
			}
		}
		for _, t := range g.smWake {
			if t <= T {
				t = T + 1
			}
			if t < next {
				next = t
			}
		}
		// Cap at the watchdog's firing cycle so a wedged run reaches
		// its barrier exactly there. A fire cycle already at or behind
		// T means the watchdog cannot fire (no loads were outstanding
		// when we passed it — otherwise we'd have stalled), so it must
		// not pin the window.
		fire := ^uint64(0)
		if g.cfg.WatchdogCycles > 0 {
			if f := g.lastProgressAt + g.cfg.WatchdogCycles; f > T {
				fire = f
			}
		}
		if fire < next {
			next = fire
		}
		// Cap windows at checkpoint cycles exactly like the watchdog
		// fire cycle, so snapshots land on a merge barrier — the
		// parallel engine's only consistent (and sequential-identical)
		// state point.
		bound := ^uint64(0)
		if g.ckptSink != nil {
			bound = (T/g.ckptEvery + 1) * g.ckptEvery
		}
		if bound < next {
			next = bound
		}
		if next > maxC {
			// Nothing left before the horizon: idle out the rest.
			g.now = maxC
			break
		}
		if next > T+1 {
			T = next - 1
		}
		E := T + lat
		if E > maxC {
			E = maxC
		}
		if E > fire {
			E = fire
		}
		if E > bound {
			E = bound
		}

		// Pre-drain both queues through E. Deliveries land in
		// per-partition inboxes (tagged with their global FIFO order)
		// and the SM task's reply inbox; nothing pushed during the
		// window can be due before E+1, so the drain is complete.
		partWork := false
		seq := uint64(0)
		g.toL2.DrainThrough(E, func(at uint64, m l2Msg) {
			part, local := g.partitionOf(m.globalAddr)
			ib := &e.inboxes[part]
			ib.items = append(ib.items, inboxMsg{at: at, seq: seq, local: local, m: m})
			seq++
			partWork = true
		})
		e.smInbox = e.smInbox[:0]
		e.smHead = 0
		g.toSM.DrainThrough(E, func(at uint64, r smReply) {
			e.smInbox = append(e.smInbox, smDelivery{at: at, r: r})
		})
		if !partWork {
			for _, t := range g.partNext {
				if t <= E {
					partWork = true
					break
				}
			}
		}
		smWork := len(e.smInbox) > 0
		if !smWork {
			for _, t := range g.smWake {
				if t <= E {
					smWork = true
					break
				}
			}
		}

		// The window: shard workers advance partitions while the
		// coordinator runs the SM task. Sides with nothing due skip
		// their fork entirely.
		if partWork {
			e.pool.Fork(func(worker int) {
				for i := worker; i < len(g.parts); i += S {
					e.partitionWindow(i, T, E)
				}
			})
			if smWork {
				e.smWindow(T, E)
			}
			e.pool.Join()
		} else if smWork {
			e.smWindow(T, E)
		}
		g.now = E
		e.mergeBarrier()
		if err := g.checkWatchdog(); err != nil {
			return nil, err
		}
		if g.ckptSink != nil {
			// The barrier is a consistent point: staging buffers and
			// inboxes are empty, so the snapshot equals the sequential
			// engine's state at the end of cycle E.
			g.maybeCheckpoint(false)
		}
		g.parallelWindows++
		windows++
		if done != nil && windows&63 == 0 {
			select {
			case <-done:
				g.maybeCheckpoint(true)
				return nil, ctx.Err()
			default:
			}
		}
		T = E
	}
	g.maybeCheckpoint(true)
	return g.collect(), nil
}

// partitionWindow advances partition i through (T, E]: inbox
// deliveries re-arm the partition exactly as the sequential loop's
// delivery phase does, ticks happen at the cycles the sequential loop
// would have ticked (nextEvent undershoot costs the same no-op tick),
// and every cycle in between is provably inert for this partition.
func (e *parEngine) partitionWindow(i int, T, E uint64) {
	g := e.g
	p := g.parts[i]
	ib := &e.inboxes[i]
	st := p.stage
	t := g.partNext[i]
	if t <= T {
		t = T + 1
	}
	for {
		if ib.head < len(ib.items) && ib.items[ib.head].at < t {
			t = ib.items[ib.head].at
		}
		if t > E {
			break
		}
		for ib.head < len(ib.items) && ib.items[ib.head].at <= t {
			im := &ib.items[ib.head]
			ib.head++
			st.setCtx(t, 0, im.seq)
			if im.m.write {
				p.handleL2Write(im.local, t)
			} else {
				p.handleL2Read(im.m.globalAddr, im.local, im.m.token, t)
			}
		}
		st.setCtx(t, 1, uint64(p.id))
		p.tick(t)
		t = p.nextEvent(t)
	}
	g.partNext[i] = t
	ib.items = ib.items[:0]
	ib.head = 0
}

// smWindow advances the SM side through (T, E] on the coordinator:
// reply deliveries, then SM ticks in index order, at exactly the
// cycles the sequential loop would execute them. It also maintains the
// watchdog's progress metric to the exact cycle — progress only ever
// changes here (load completions and instruction issue), so
// lastProgressAt matches the sequential engine cycle-for-cycle.
func (e *parEngine) smWindow(T, E uint64) {
	g := e.g
	st := g.smStage
	t := T + 1
	for {
		next := ^uint64(0)
		if e.smHead < len(e.smInbox) {
			next = e.smInbox[e.smHead].at
		}
		for _, w := range g.smWake {
			if w < next {
				next = w
			}
		}
		if next < t {
			next = t
		}
		if next > E {
			break
		}
		t = next
		g.now = t
		g.stepped++
		clBefore := g.completedLoads
		instrBefore := e.instrTotal
		for e.smHead < len(e.smInbox) && e.smInbox[e.smHead].at <= t {
			g.deliverReply(e.smInbox[e.smHead].r)
			e.smHead++
		}
		for i, sm := range g.sms {
			if g.smWake[i] > t {
				continue
			}
			if idle := t - g.smLastTick[i] - 1; idle > 0 {
				sm.AccountIdle(idle)
			}
			st.setCtx(t, 2, uint64(i))
			before := sm.Instructions
			sm.Tick(t, g.issueMem)
			e.instrTotal += sm.Instructions - before
			g.smLastTick[i] = t
			g.smWake[i] = sm.NextReady(t + 1)
		}
		if g.completedLoads != clBefore || e.instrTotal != instrBefore {
			g.lastProgress = g.completedLoads + e.instrTotal
			g.lastProgressAt = t
		}
		t++
	}
}

// mergeBarrier rebuilds the sequential toSM push order: concatenate
// every staging buffer, sort by merge key, append to the queue.
// Staged items' ready cycles all lie beyond the window just run, and
// the queue's residual items were all pushed in earlier windows, so
// appending preserves FIFO faithfulness too.
func (e *parEngine) mergeBarrier() {
	e.merged = e.merged[:0]
	for _, st := range e.stages {
		e.merged = append(e.merged, st.buf...)
		st.buf = st.buf[:0]
	}
	if st := e.g.smStage; len(st.buf) > 0 {
		e.merged = append(e.merged, st.buf...)
		st.buf = st.buf[:0]
	}
	if len(e.merged) == 0 {
		return
	}
	sort.Slice(e.merged, func(i, j int) bool { return e.merged[i].key.less(e.merged[j].key) })
	for i := range e.merged {
		e.g.toSM.PushAt(e.merged[i].readyAt, e.merged[i].r)
	}
}
