package sim

import (
	"fmt"
	"sort"
	"strings"
)

// StallError reports a forward-progress stall: no instruction issued
// and no load completed for Config.WatchdogCycles cycles while loads
// were outstanding. It carries a diagnostic dump of the machine state
// (queue depths, MSHR occupancy, per-SM blocked warps) so a wedged
// configuration is debuggable from the sweep report alone.
type StallError struct {
	Benchmark string
	// Cycle is when the watchdog fired; LastProgressCycle is the last
	// cycle anything retired or issued.
	Cycle             uint64
	LastProgressCycle uint64
	OutstandingLoads  int
	BlockedWarps      int
	// Dump is the multi-line machine-state snapshot.
	Dump string
}

func (e *StallError) Error() string {
	return fmt.Sprintf("sim: %s stalled: no forward progress since cycle %d (watchdog fired at cycle %d; %d loads outstanding, %d warps blocked)",
		e.Benchmark, e.LastProgressCycle, e.Cycle, e.OutstandingLoads, e.BlockedWarps)
}

// progress is the watchdog's monotone forward-progress metric:
// anything the machine does that moves a workload along.
func (g *GPU) progress() uint64 {
	p := g.completedLoads
	for _, sm := range g.sms {
		p += sm.Instructions
	}
	return p
}

// checkWatchdog aborts the run when the machine has made no forward
// progress for WatchdogCycles cycles with loads still in flight. An
// idle machine (nothing outstanding) is not a stall.
func (g *GPU) checkWatchdog() error {
	if p := g.progress(); p != g.lastProgress {
		if gap := g.now - g.lastProgressAt; gap > g.maxProgressGap {
			g.maxProgressGap = gap
		}
		g.lastProgress = p
		g.lastProgressAt = g.now
		return nil
	}
	if g.cfg.WatchdogCycles == 0 {
		return nil
	}
	if len(g.loads) == 0 || g.now-g.lastProgressAt < g.cfg.WatchdogCycles {
		return nil
	}
	blocked := 0
	for _, sm := range g.sms {
		blocked += sm.BlockedWarps()
	}
	return &StallError{
		Benchmark:         g.gen.Name(),
		Cycle:             g.now,
		LastProgressCycle: g.lastProgressAt,
		OutstandingLoads:  len(g.loads),
		BlockedWarps:      blocked,
		Dump:              g.dumpState(),
	}
}

// dumpState renders a bounded snapshot of the machine for stall
// diagnostics: interconnect queues, per-SM blocked warps, and the
// partitions that still hold work.
func (g *GPU) dumpState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle %d, %d loads outstanding\n", g.now, len(g.loads))
	fmt.Fprintf(&b, "icnt toL2: %d queued (pushed %d, delivered %d, dropped %d, duplicated %d)\n",
		g.toL2.Len(), g.toL2.Stats.Pushed, g.toL2.Stats.Delivered, g.toL2.Stats.Dropped, g.toL2.Stats.Duplicated)
	fmt.Fprintf(&b, "icnt toSM: %d queued (pushed %d, delivered %d, dropped %d, duplicated %d)\n",
		g.toSM.Len(), g.toSM.Stats.Pushed, g.toSM.Stats.Delivered, g.toSM.Stats.Dropped, g.toSM.Stats.Duplicated)

	type smLine struct {
		id, blocked, outstanding, pendingL1 int
	}
	var stuck []smLine
	for i, sm := range g.sms {
		if bw := sm.BlockedWarps(); bw > 0 {
			stuck = append(stuck, smLine{i, bw, sm.OutstandingLoads(), g.l1s[i].PendingFills()})
		}
	}
	fmt.Fprintf(&b, "SMs with blocked warps: %d/%d\n", len(stuck), len(g.sms))
	sort.Slice(stuck, func(i, j int) bool { return stuck[i].outstanding > stuck[j].outstanding })
	for i, s := range stuck {
		if i == 8 {
			fmt.Fprintf(&b, "  ... %d more\n", len(stuck)-i)
			break
		}
		fmt.Fprintf(&b, "  SM %d: %d blocked warps, %d outstanding sectors, %d pending L1 fills\n",
			s.id, s.blocked, s.outstanding, s.pendingL1)
	}

	busy := 0
	for _, p := range g.parts {
		if p.dram.InFlight() == 0 && len(p.reads) == 0 && len(p.dests) == 0 && p.replies.Len() == 0 {
			continue
		}
		busy++
		if busy <= 8 {
			l2Pending := 0
			for _, bank := range p.banks {
				l2Pending += bank.PendingFills()
			}
			fmt.Fprintf(&b, "partition %d: dram queue %d, in flight %d, reads %d, fills awaited %d, replies scheduled %d, L2 MSHR fills %d\n",
				p.id, p.dram.QueueLen(), p.dram.InFlight(), len(p.reads), len(p.dests), p.replies.Len(), l2Pending)
		}
	}
	fmt.Fprintf(&b, "partitions with work: %d/%d\n", busy, len(g.parts))
	return b.String()
}
