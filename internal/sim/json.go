package sim

import (
	"encoding/json"

	"gpusecmem/internal/probe"
	"gpusecmem/internal/stats"
)

// resultJSON is the stable wire form of a Result: derived metrics are
// materialized so downstream analysis needs no simulator code. The
// optional sections (reuse profiles, probe report) are omitempty so an
// uninstrumented run's JSON stays byte-identical across versions.
type resultJSON struct {
	Benchmark     string               `json:"benchmark"`
	Cycles        uint64               `json:"cycles"`
	Instructions  uint64               `json:"instructions"`
	IPC           float64              `json:"ipc"`
	BandwidthUtil float64              `json:"bandwidth_utilization"`
	Requests      map[string]uint64    `json:"dram_requests"`
	Bytes         map[string]uint64    `json:"dram_bytes"`
	L1MissRate    float64              `json:"l1_miss_rate"`
	L2MissRate    float64              `json:"l2_miss_rate"`
	L2Accesses    uint64               `json:"l2_accesses"`
	Meta          map[string]metaOut   `json:"metadata"`
	RowHitRate    float64              `json:"dram_row_hit_rate"`
	CounterReuse  *stats.ReuseProfiler `json:"counter_reuse,omitempty"`
	MACReuse      *stats.ReuseProfiler `json:"mac_reuse,omitempty"`
	Probe         *probe.Report        `json:"probe,omitempty"`
}

type metaOut struct {
	Accesses       uint64  `json:"accesses"`
	MissRate       float64 `json:"miss_rate"`
	SecondaryRatio float64 `json:"secondary_ratio"`
}

// MarshalJSON renders the result with derived metrics included.
func (r *Result) MarshalJSON() ([]byte, error) {
	out := resultJSON{
		Benchmark:     r.Benchmark,
		Cycles:        r.Cycles,
		Instructions:  r.Instructions,
		IPC:           r.IPC(),
		BandwidthUtil: r.BandwidthUtilization(),
		Requests:      map[string]uint64{},
		Bytes:         map[string]uint64{},
		L1MissRate:    r.L1.MissRate(),
		L2MissRate:    r.L2.MissRate(),
		L2Accesses:    r.L2.Accesses,
		Meta:          map[string]metaOut{},
	}
	for k := KindData; k < numKinds; k++ {
		// The paper's five kinds always appear (zeros included) — that is
		// the shape the golden digests were pinned against. The extension
		// kinds (share/smap/key) appear only when the scheme produced
		// them, so every original catalogue digest is untouched.
		if k > KindWB && r.RequestsByKind[k] == 0 && r.BytesByKind[k] == 0 {
			continue
		}
		out.Requests[k.String()] = r.RequestsByKind[k]
		out.Bytes[k.String()] = r.BytesByKind[k]
	}
	for m := MetaCounter; m < numMeta; m++ {
		if r.Meta[m].Accesses == 0 {
			continue
		}
		out.Meta[m.String()] = metaOut{
			Accesses:       r.Meta[m].Accesses,
			MissRate:       r.Meta[m].MissRate(),
			SecondaryRatio: r.Meta[m].SecondaryRatio(),
		}
	}
	if hm := r.RowHits + r.RowMisses; hm > 0 {
		out.RowHitRate = float64(r.RowHits) / float64(hm)
	}
	out.CounterReuse = r.CounterReuse
	out.MACReuse = r.MACReuse
	out.Probe = r.Probe
	return json.Marshal(out)
}
