package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"gpusecmem/internal/trace"
)

func newGPU(t *testing.T, cfg Config, bench string) *GPU {
	t.Helper()
	gen, err := trace.New(bench)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(cfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// captureAt runs cfg/bench with a checkpoint sink armed at `every` and
// returns the encoded snapshots in fire order.
func captureAt(t *testing.T, cfg Config, bench string, every uint64) [][]byte {
	t.Helper()
	g := newGPU(t, cfg, bench)
	var states [][]byte
	g.SetCheckpoint(every, func(cycle uint64, st *MachineState) {
		b, err := EncodeState(st)
		if err != nil {
			t.Fatal(err)
		}
		states = append(states, b)
	})
	if _, err := g.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	return states
}

// A snapshot restored into a fresh machine and re-snapshotted must
// encode to the same bytes: restore loses nothing, and the sorted-
// slice/raw-heap serialization discipline makes identical states
// encode identically.
func TestSnapshotRestoreRoundTripBytes(t *testing.T) {
	cfg := SecureMem()
	cfg.MaxCycles = 4000
	states := captureAt(t, cfg, "nw", 2000)
	if len(states) == 0 {
		t.Fatal("no checkpoints fired")
	}
	for i, b := range states {
		st, err := DecodeState(b)
		if err != nil {
			t.Fatal(err)
		}
		g := newGPU(t, cfg, "nw")
		if err := g.Restore(st); err != nil {
			t.Fatalf("restore snapshot %d: %v", i, err)
		}
		st2, err := g.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		b2, err := EncodeState(st2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, b2) {
			t.Fatalf("snapshot %d not byte-stable across restore: %d vs %d bytes", i, len(b), len(b2))
		}
	}
}

// Restore must reject snapshots from other machines rather than
// installing mismatched state.
func TestRestoreRejectsMismatches(t *testing.T) {
	cfg := SecureMem()
	cfg.MaxCycles = 2000
	states := captureAt(t, cfg, "nw", 1000)
	st, err := DecodeState(states[0])
	if err != nil {
		t.Fatal(err)
	}

	t.Run("wrong-benchmark", func(t *testing.T) {
		g := newGPU(t, cfg, "lbm")
		if err := g.Restore(st); err == nil {
			t.Fatal("restored an nw snapshot into an lbm machine")
		}
	})
	t.Run("wrong-config-shape", func(t *testing.T) {
		base := Baseline()
		base.MaxCycles = 2000
		g := newGPU(t, base, "nw")
		if err := g.Restore(st); err == nil {
			t.Fatal("restored a secure-memory snapshot into a baseline machine")
		}
	})
	t.Run("wrong-version", func(t *testing.T) {
		bad, err := DecodeState(states[0])
		if err != nil {
			t.Fatal(err)
		}
		bad.Version = StateVersion + 1
		g := newGPU(t, cfg, "nw")
		if err := g.Restore(bad); err == nil {
			t.Fatal("restored a snapshot with a foreign StateVersion")
		}
	})
}

// Configurations whose auxiliary state is not captured refuse to
// checkpoint: Snapshot errors and SetCheckpoint stays unarmed, so runs
// silently fall back to starting from cycle 0.
func TestCheckpointRefusesUncoveredConfigs(t *testing.T) {
	cfg := SecureMem()
	cfg.MaxCycles = 1000
	cfg.Audit = true
	g := newGPU(t, cfg, "nw")
	if _, err := g.Snapshot(); err == nil {
		t.Fatal("snapshot succeeded with auditing enabled")
	}
	fired := false
	g.SetCheckpoint(500, func(uint64, *MachineState) { fired = true })
	if _, err := g.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("checkpoint sink fired for an audited run")
	}
}

// Arming a checkpoint sink must not change a single output bit: the
// landing steps it adds at checkpoint boundaries are no-ops.
func TestCheckpointingIsResultTransparent(t *testing.T) {
	cfg := SecureMem()
	cfg.MaxCycles = 4000
	plain := newGPU(t, cfg, "fdtd2d")
	want, err := plain.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ck := newGPU(t, cfg, "fdtd2d")
	// A prime interval lands between fast-forward boundaries on
	// purpose.
	ck.SetCheckpoint(1237, func(uint64, *MachineState) {})
	got, err := ck.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("checkpointed run diverged:\nwant %s\ngot  %s", wantJSON, gotJSON)
	}
}
