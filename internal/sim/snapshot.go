package sim

// Checkpoint snapshot/restore for a whole machine (DESIGN.md §14).
//
// A MachineState is a deep copy of every simulator component's
// behavioral state, taken at an end-of-cycle boundary: between steps
// in the sequential engine, at a merge barrier in the parallel engine
// (where staging buffers and inboxes are provably empty, so the two
// engines' snapshot states coincide). Restoring it into a freshly
// constructed GPU of the same Config and benchmark and running to the
// horizon produces a Result bit-identical to a never-interrupted run —
// the resume-identity tests pin this against the golden digests.
//
// Everything map-shaped is serialized as a slice sorted by key, and
// event heaps are serialized in raw heap layout (eventq.Elems), so (a)
// identical machine states always encode to identical bytes and (b)
// equal-time event pop order survives the round trip.
//
// Configurations whose auxiliary state is not captured — fault
// injection, probes, per-cycle auditing, reuse profiling — refuse to
// snapshot or restore; callers fall back to running from cycle 0.

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"gpusecmem/internal/cache"
	"gpusecmem/internal/dram"
	"gpusecmem/internal/icnt"
	"gpusecmem/internal/smcore"
)

// StateVersion tags MachineState's schema. Bump it whenever any
// serialized component state changes shape or meaning; Restore rejects
// other versions and the caller starts from cycle 0.
//
// Version history: 2 widened MetaStats to the extension metadata kinds
// and added ReadRecState.SharesLeft / PartitionState.LastKeyLine for
// the scattered-memory and software-encryption schemes.
const StateVersion = 2

// QueuedL2 is one undelivered SM→partition interconnect message.
type QueuedL2 struct {
	ReadyAt uint64
	Addr    uint64
	Token   uint64
	Write   bool
}

// QueuedReply is one undelivered partition→SM interconnect message.
type QueuedReply struct {
	ReadyAt uint64
	Addr    uint64
	Token   uint64
}

// LoadState is one outstanding L1-level sector request.
type LoadState struct {
	Token      uint64
	SM         int
	Warp       int
	FillBypass bool
}

// DestState is one in-flight DRAM transaction's completion routing.
type DestState struct {
	Token    uint64
	Kind     int
	Addr     uint64
	ReadID   uint64
	Bypass   bool
	Write    bool
	IssuedAt uint64
}

// ReadRecState is one in-flight secure read.
type ReadRecState struct {
	ID          uint64
	GlobalAddr  uint64
	LocalAddr   uint64
	L2Token     uint64
	L2Bypass    bool
	L2Bank      int
	DataDone    bool
	CtrDone     bool
	MacDone     bool
	SharesLeft  int
	Unprotected bool
	ArrivedAt   uint64
	DataReady   uint64
	CtrReady    uint64
	MacReady    uint64
	Replied     bool
	Finished    bool
}

// ReplyEventState is one scheduled reply event (raw heap layout).
type ReplyEventState struct {
	At     uint64
	ReadID uint64
}

// PartitionState is one memory partition's complete state.
type PartitionState struct {
	Banks []*cache.State
	DRAM  *dram.State
	// Metadata caches. When UnifiedAlias is set, Ctr holds the single
	// unified cache's state and MAC/Tree are nil (ctr/mac/tree alias
	// one instance); otherwise each present cache carries its own.
	Ctr, MAC, Tree *cache.State
	UnifiedAlias   bool

	AESFree3 []uint64
	MACFree3 uint64

	Dests   []DestState       // sorted by Token
	Reads   []ReadRecState    // sorted by ID
	Replies []ReplyEventState // raw heap layout

	MetaStats     [numMeta]MetaStats
	FaultDetected uint64
	FaultSilent   uint64
	LocalTok      uint64
	// LastKeyLine is EncSWCrypto's software key register (^0 = empty);
	// zero-valued and ignored by every other scheme.
	LastKeyLine uint64
}

// MachineState is a complete, detached snapshot of a GPU mid-run.
type MachineState struct {
	Version   int
	Benchmark string

	Now      uint64
	TokenSeq uint64
	Stepped  uint64

	CompletedLoads uint64
	LastProgress   uint64
	LastProgressAt uint64
	MaxProgressGap uint64

	Loads []LoadState // sorted by Token

	SMWake     []uint64
	SMLastTick []uint64
	PartNext   []uint64

	ToL2Items []QueuedL2
	ToL2Stats icnt.Stats
	ToSMItems []QueuedReply
	ToSMStats icnt.Stats

	SMs   []*smcore.State
	L1s   []*cache.State
	Parts []*PartitionState
}

// checkpointable reports whether this configuration's complete state
// is captured by MachineState. Fault injectors (PRNG call order),
// probes (span/timeline buffers), auditing, and reuse profilers hang
// state off the run that a snapshot does not carry, so checkpointing
// refuses rather than silently resume wrong.
func (g *GPU) checkpointable() error {
	switch {
	case g.cfg.Audit:
		return fmt.Errorf("sim: checkpointing is unavailable with auditing enabled")
	case g.inj != nil:
		return fmt.Errorf("sim: checkpointing is unavailable with fault injection enabled")
	case g.probe != nil:
		return fmt.Errorf("sim: checkpointing is unavailable with probes enabled")
	case g.cfg.ProfileReuse:
		return fmt.Errorf("sim: checkpointing is unavailable with reuse profiling enabled")
	}
	return nil
}

// Snapshot captures the machine's full state at the current
// end-of-cycle boundary. The result shares no memory with the GPU.
// It returns an error for configurations checkpointing does not cover
// (fault injection, probes, auditing, reuse profiling).
func (g *GPU) Snapshot() (*MachineState, error) {
	if err := g.checkpointable(); err != nil {
		return nil, err
	}
	st := &MachineState{
		Version:        StateVersion,
		Benchmark:      g.gen.Name(),
		Now:            g.now,
		TokenSeq:       g.tokenSeq,
		Stepped:        g.stepped,
		CompletedLoads: g.completedLoads,
		LastProgress:   g.lastProgress,
		LastProgressAt: g.lastProgressAt,
		MaxProgressGap: g.maxProgressGap,
		SMWake:         append([]uint64(nil), g.smWake...),
		SMLastTick:     append([]uint64(nil), g.smLastTick...),
		PartNext:       append([]uint64(nil), g.partNext...),
		ToL2Stats:      g.toL2.Stats,
		ToSMStats:      g.toSM.Stats,
	}
	if len(g.loads) > 0 {
		st.Loads = make([]LoadState, 0, len(g.loads))
		for tok, lr := range g.loads {
			st.Loads = append(st.Loads, LoadState{Token: tok, SM: lr.sm, Warp: lr.warp, FillBypass: lr.fillBypass})
		}
		sortLoads(st.Loads)
	}
	for _, d := range g.toL2.Snapshot() {
		st.ToL2Items = append(st.ToL2Items, QueuedL2{ReadyAt: d.ReadyAt, Addr: d.Item.globalAddr, Token: d.Item.token, Write: d.Item.write})
	}
	for _, d := range g.toSM.Snapshot() {
		st.ToSMItems = append(st.ToSMItems, QueuedReply{ReadyAt: d.ReadyAt, Addr: d.Item.globalAddr, Token: d.Item.token})
	}
	for _, sm := range g.sms {
		st.SMs = append(st.SMs, sm.Snapshot())
	}
	for _, l1 := range g.l1s {
		st.L1s = append(st.L1s, l1.Snapshot())
	}
	for _, p := range g.parts {
		st.Parts = append(st.Parts, p.snapshot())
	}
	return st, nil
}

// Restore replaces the machine's state with a snapshot taken from a
// GPU of identical Config and benchmark. It validates version,
// benchmark, and component shapes; on any error the GPU must be
// considered unusable (restore into a freshly constructed instance and
// fall back to cycle 0 on failure).
func (g *GPU) Restore(st *MachineState) error {
	if err := g.checkpointable(); err != nil {
		return err
	}
	switch {
	case st.Version != StateVersion:
		return fmt.Errorf("sim: snapshot version %d, want %d", st.Version, StateVersion)
	case st.Benchmark != g.gen.Name():
		return fmt.Errorf("sim: snapshot is for benchmark %q, machine runs %q", st.Benchmark, g.gen.Name())
	case len(st.SMs) != len(g.sms) || len(st.L1s) != len(g.l1s):
		return fmt.Errorf("sim: snapshot has %d SMs / %d L1s, machine has %d / %d",
			len(st.SMs), len(st.L1s), len(g.sms), len(g.l1s))
	case len(st.Parts) != len(g.parts):
		return fmt.Errorf("sim: snapshot has %d partitions, machine has %d", len(st.Parts), len(g.parts))
	case len(st.SMWake) != len(g.smWake) || len(st.SMLastTick) != len(g.smLastTick) || len(st.PartNext) != len(g.partNext):
		return fmt.Errorf("sim: snapshot activity-bound shapes do not match the machine")
	}
	for i, sm := range g.sms {
		if err := sm.Restore(st.SMs[i]); err != nil {
			return err
		}
		if err := g.l1s[i].Restore(st.L1s[i]); err != nil {
			return err
		}
	}
	for i, p := range g.parts {
		if err := p.restore(st.Parts[i]); err != nil {
			return err
		}
	}
	g.now = st.Now
	g.tokenSeq = st.TokenSeq
	g.stepped = st.Stepped
	g.completedLoads = st.CompletedLoads
	g.lastProgress = st.LastProgress
	g.lastProgressAt = st.LastProgressAt
	g.maxProgressGap = st.MaxProgressGap
	copy(g.smWake, st.SMWake)
	copy(g.smLastTick, st.SMLastTick)
	copy(g.partNext, st.PartNext)
	g.loads = make(map[uint64]loadReq, len(st.Loads))
	for _, l := range st.Loads {
		g.loads[l.Token] = loadReq{sm: l.SM, warp: l.Warp, fillBypass: l.FillBypass}
	}
	l2Items := make([]icnt.Delayed[l2Msg], 0, len(st.ToL2Items))
	for _, q := range st.ToL2Items {
		l2Items = append(l2Items, icnt.Delayed[l2Msg]{ReadyAt: q.ReadyAt, Item: l2Msg{globalAddr: q.Addr, token: q.Token, write: q.Write}})
	}
	g.toL2.Restore(l2Items, st.ToL2Stats)
	smItems := make([]icnt.Delayed[smReply], 0, len(st.ToSMItems))
	for _, q := range st.ToSMItems {
		smItems = append(smItems, icnt.Delayed[smReply]{ReadyAt: q.ReadyAt, Item: smReply{globalAddr: q.Addr, token: q.Token}})
	}
	g.toSM.Restore(smItems, st.ToSMStats)
	return nil
}

func sortLoads(ls []LoadState) {
	// Insertion sort by token; load maps are small relative to run cost
	// and this avoids pulling in sort for one call site. Tokens are
	// unique.
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && ls[j].Token < ls[j-1].Token; j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
}

// snapshot captures one partition. Transient fields — the parallel
// staging pointer, the readState pool, reuse profilers (gated off by
// checkpointable) — are excluded.
func (p *partition) snapshot() *PartitionState {
	st := &PartitionState{
		DRAM:          p.dram.Snapshot(),
		MACFree3:      p.macFree3,
		MetaStats:     p.metaStats,
		FaultDetected: p.faultDetected,
		FaultSilent:   p.faultSilent,
		LocalTok:      p.localTok,
		LastKeyLine:   p.lastKeyLine,
	}
	for _, b := range p.banks {
		st.Banks = append(st.Banks, b.Snapshot())
	}
	if p.cfg.Secure.Unified && p.ctr != nil {
		st.UnifiedAlias = true
		st.Ctr = p.ctr.Snapshot()
	} else {
		if p.ctr != nil {
			st.Ctr = p.ctr.Snapshot()
		}
		if p.mac != nil {
			st.MAC = p.mac.Snapshot()
		}
		if p.tree != nil {
			st.Tree = p.tree.Snapshot()
		}
	}
	st.AESFree3 = append([]uint64(nil), p.aesFree3...)
	if len(p.dests) > 0 {
		st.Dests = make([]DestState, 0, len(p.dests))
		for tok, d := range p.dests {
			st.Dests = append(st.Dests, DestState{
				Token: tok, Kind: int(d.kind), Addr: d.addr, ReadID: d.readID,
				Bypass: d.bypass, Write: d.write, IssuedAt: d.issuedAt,
			})
		}
		sortDests(st.Dests)
	}
	if len(p.reads) > 0 {
		st.Reads = make([]ReadRecState, 0, len(p.reads))
		for _, rs := range p.reads {
			st.Reads = append(st.Reads, ReadRecState{
				ID: rs.id, GlobalAddr: rs.globalAddr, LocalAddr: rs.localAddr,
				L2Token: rs.l2Token, L2Bypass: rs.l2Bypass, L2Bank: rs.l2Bank,
				DataDone: rs.dataDone, CtrDone: rs.ctrDone, MacDone: rs.macDone,
				SharesLeft: rs.sharesLeft,
				Unprotected: rs.unprotected, ArrivedAt: rs.arrivedAt,
				DataReady: rs.dataReady, CtrReady: rs.ctrReady, MacReady: rs.macReady,
				Replied: rs.replied, Finished: rs.finished,
			})
		}
		sortReads(st.Reads)
	}
	for _, ev := range p.replies.Elems() {
		st.Replies = append(st.Replies, ReplyEventState{At: ev.at, ReadID: ev.readID})
	}
	return st
}

func sortDests(ds []DestState) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j].Token < ds[j-1].Token; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

func sortReads(rs []ReadRecState) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].ID < rs[j-1].ID; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// restore replaces the partition's state. The layout and
// protectedStripes fields are derived from Config at construction and
// stay as built.
func (p *partition) restore(st *PartitionState) error {
	if len(st.Banks) != len(p.banks) {
		return fmt.Errorf("sim: partition %d snapshot has %d L2 banks, machine has %d", p.id, len(st.Banks), len(p.banks))
	}
	for i, b := range p.banks {
		if err := b.Restore(st.Banks[i]); err != nil {
			return err
		}
	}
	if err := p.dram.Restore(st.DRAM); err != nil {
		return err
	}
	if st.UnifiedAlias != (p.cfg.Secure.Unified && p.ctr != nil) {
		return fmt.Errorf("sim: partition %d snapshot unified-cache shape does not match the configuration", p.id)
	}
	if st.UnifiedAlias {
		// ctr, mac, and tree alias one cache; restore it once.
		if err := p.ctr.Restore(st.Ctr); err != nil {
			return err
		}
	} else {
		for _, mc := range []struct {
			c  *cache.Cache
			st *cache.State
		}{{p.ctr, st.Ctr}, {p.mac, st.MAC}, {p.tree, st.Tree}} {
			if (mc.c == nil) != (mc.st == nil) {
				return fmt.Errorf("sim: partition %d snapshot metadata-cache shape does not match the configuration", p.id)
			}
			if mc.c != nil {
				if err := mc.c.Restore(mc.st); err != nil {
					return err
				}
			}
		}
	}
	if len(st.AESFree3) != len(p.aesFree3) {
		return fmt.Errorf("sim: partition %d snapshot has %d AES engines, machine has %d", p.id, len(st.AESFree3), len(p.aesFree3))
	}
	copy(p.aesFree3, st.AESFree3)
	p.macFree3 = st.MACFree3
	p.metaStats = st.MetaStats
	p.faultDetected = st.FaultDetected
	p.faultSilent = st.FaultSilent
	p.localTok = st.LocalTok
	p.lastKeyLine = st.LastKeyLine
	p.dests = make(map[uint64]dest, len(st.Dests))
	for _, d := range st.Dests {
		p.dests[d.Token] = dest{
			kind: destKind(d.Kind), addr: d.Addr, readID: d.ReadID,
			bypass: d.Bypass, write: d.Write, issuedAt: d.IssuedAt,
		}
	}
	p.reads = make(map[uint64]*readState, len(st.Reads))
	for _, r := range st.Reads {
		p.reads[r.ID] = &readState{
			id: r.ID, globalAddr: r.GlobalAddr, localAddr: r.LocalAddr,
			l2Token: r.L2Token, l2Bypass: r.L2Bypass, l2Bank: r.L2Bank,
			dataDone: r.DataDone, ctrDone: r.CtrDone, macDone: r.MacDone,
			sharesLeft: r.SharesLeft,
			unprotected: r.Unprotected, arrivedAt: r.ArrivedAt,
			dataReady: r.DataReady, ctrReady: r.CtrReady, macReady: r.MacReady,
			replied: r.Replied, finished: r.Finished,
		}
	}
	replies := make([]replyEvent, 0, len(st.Replies))
	for _, ev := range st.Replies {
		replies = append(replies, replyEvent{at: ev.At, readID: ev.ReadID})
	}
	p.replies.SetElems(replies)
	p.rsPool = nil
	return nil
}

// EncodeState serializes a MachineState with encoding/gob. Identical
// states encode to identical bytes (maps are sorted slices in the
// state, and gob itself is deterministic for a fixed type).
func EncodeState(st *MachineState) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("sim: encoding machine state: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeState deserializes a MachineState produced by EncodeState.
func DecodeState(b []byte) (*MachineState, error) {
	var st MachineState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st); err != nil {
		return nil, fmt.Errorf("sim: decoding machine state: %w", err)
	}
	return &st, nil
}
