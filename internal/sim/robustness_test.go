package sim

import (
	"errors"
	"reflect"
	"testing"

	"gpusecmem/internal/faults"
	"gpusecmem/internal/trace"
)

// TestWatchdogFiresOnWedge: dropping every interconnect reply wedges
// the machine (warps block on loads that never return); the watchdog
// must abort with a *StallError carrying a diagnostic dump instead of
// spinning to MaxCycles.
func TestWatchdogFiresOnWedge(t *testing.T) {
	cfg := Baseline()
	cfg.MaxCycles = 200_000
	cfg.WatchdogCycles = 2_000
	cfg.Faults = &faults.Plan{Seed: 1, Rate: 1, Sites: faults.SiteIcntDrop.Mask()}
	cfg.Audit = true // invariants must hold even on a wedged machine

	_, err := Run(cfg, "fdtd2d")
	if err == nil {
		t.Fatal("wedged run completed without error")
	}
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("want *StallError, got %T: %v", err, err)
	}
	if stall.OutstandingLoads == 0 {
		t.Error("stall reported with no outstanding loads")
	}
	if stall.Dump == "" {
		t.Error("stall error carries no diagnostic dump")
	}
	if stall.Cycle >= cfg.MaxCycles {
		t.Errorf("watchdog fired at %d, after MaxCycles", stall.Cycle)
	}
	if stall.Cycle-stall.LastProgressCycle < cfg.WatchdogCycles {
		t.Errorf("fired after %d silent cycles, threshold %d",
			stall.Cycle-stall.LastProgressCycle, cfg.WatchdogCycles)
	}
}

// TestWatchdogQuietOnHealthyRun: a healthy run under the default
// (Baseline) watchdog threshold must complete normally.
func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	cfg := SecureMem()
	if cfg.WatchdogCycles == 0 {
		t.Fatal("default configs should enable the watchdog")
	}
	runFor(t, cfg, "fdtd2d") // fatals on any error
}

// TestAuditorsPassOnCatalogue: the invariant auditors must stay quiet
// across the whole benchmark catalogue on both the baseline and the
// full secure design. -short checks a representative subset.
func TestAuditorsPassOnCatalogue(t *testing.T) {
	benches := trace.Names()
	if testing.Short() {
		benches = []string{"fdtd2d", "b+tree", "lbm"}
	}
	for _, cfg := range []Config{Baseline(), SecureMem()} {
		cfg.Audit = true
		for _, b := range benches {
			runFor(t, cfg, b)
		}
	}
}

// TestFaultPlanRateZeroIdentical: a rate-0 plan (and a nil one) must
// be byte-identical to an uninstrumented run — the zero-cost-off
// property the injection layer promises.
func TestFaultPlanRateZeroIdentical(t *testing.T) {
	plain := runFor(t, SecureMem(), "fdtd2d")

	cfg := SecureMem()
	cfg.Faults = &faults.Plan{Seed: 99, Rate: 0, Sites: faults.AllSites}
	armed := runFor(t, cfg, "fdtd2d")

	if !reflect.DeepEqual(plain, armed) {
		t.Fatalf("rate-0 plan perturbed the run:\nplain %+v\narmed %+v", plain, armed)
	}
}

// TestFaultDetectionByProtection: under full protection every injected
// data/metadata corruption is classified detected; with no protection
// the same plan runs entirely silent.
func TestFaultDetectionByProtection(t *testing.T) {
	plan := &faults.Plan{Seed: 7, Rate: 0.01, Sites: faults.FlipSites}

	full := SecureMem()
	full.Faults = plan
	r := runFor(t, full, "fdtd2d")
	if r.Faults.Corruptions() == 0 {
		t.Fatal("plan injected nothing; raise the rate")
	}
	if r.Faults.Silent != 0 {
		t.Errorf("full protection let %d corruptions pass silently", r.Faults.Silent)
	}
	if r.Faults.Detected == 0 {
		t.Error("full protection detected nothing")
	}

	bare := Baseline()
	bare.Faults = plan
	r = runFor(t, bare, "fdtd2d")
	if r.Faults.Corruptions() == 0 {
		t.Fatal("plan injected nothing on baseline")
	}
	if r.Faults.Detected != 0 {
		t.Errorf("unprotected baseline claims %d detections", r.Faults.Detected)
	}
	if r.Faults.Silent == 0 {
		t.Error("unprotected baseline reports no silent corruptions")
	}
}

// TestDuplicateRepliesTolerated: duplicated interconnect replies must
// be absorbed (idempotent load completion) without tripping the
// auditors or corrupting accounting.
func TestDuplicateRepliesTolerated(t *testing.T) {
	cfg := SecureMem()
	cfg.Audit = true
	cfg.Faults = &faults.Plan{Seed: 3, Rate: 0.05, Sites: faults.SiteIcntDup.Mask()}
	r := runFor(t, cfg, "fdtd2d")
	if r.Faults.DuplicatedReplies == 0 {
		t.Fatal("dup site injected nothing; raise the rate")
	}
}

// TestDroppedRepliesCounted: a low drop rate should register in the
// stats while the watchdog (long threshold) stays quiet for the short
// unit-test horizon.
func TestDroppedRepliesCounted(t *testing.T) {
	cfg := Baseline()
	cfg.WatchdogCycles = 0 // drops legitimately wedge some warps
	cfg.Faults = &faults.Plan{Seed: 5, Rate: 0.02, Sites: faults.SiteIcntDrop.Mask()}
	r := runFor(t, cfg, "fdtd2d")
	if r.Faults.DroppedReplies == 0 {
		t.Fatal("drop site injected nothing; raise the rate")
	}
}
