package sim

// Cooperative-cancellation contract of the simulator core: a
// cancelled RunContext returns the bare context error and no partial
// Result, an uncancelled context changes nothing, and the
// cancellation check is cheap enough to sit on the hot path.

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := SecureMem()
	cfg.MaxCycles = 100000
	res, err := RunContext(ctx, cfg, "nw")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run returned a partial Result")
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg := SecureMem()
	cfg.MaxCycles = 1 << 40 // would run for hours
	done := make(chan error, 1)
	go func() {
		res, err := RunContext(ctx, cfg, "nw")
		if res != nil {
			err = errors.New("cancelled run returned a partial Result")
		}
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the run get going
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not stop after cancellation")
	}
}

// A deadline behaves like a cancel but surfaces DeadlineExceeded, so
// callers can distinguish budget exhaustion from client disconnects.
func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	cfg := SecureMem()
	cfg.MaxCycles = 1 << 40
	_, err := RunContext(ctx, cfg, "nw")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// An un-cancellable context must not change results: Run is documented
// to be RunContext(Background) and the golden digests pin the output,
// but assert the equivalence directly on a short run too.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	cfg := SecureMem()
	cfg.MaxCycles = 2000
	a, err := Run(cfg, "nw")
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), cfg, "nw")
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions ||
		a.RequestsByKind != b.RequestsByKind || a.BytesByKind != b.BytesByKind {
		t.Fatalf("RunContext(Background) diverged from Run:\n%+v\n%+v", a, b)
	}
}
