package sim

import (
	"fmt"

	"gpusecmem/internal/cache"
)

// auditDeepPeriod is how often (in cycles) the O(state) leak audits
// run; the O(SMs) conservation and queue-bound audits run every cycle.
const auditDeepPeriod = 256

// AuditError reports a violated simulator invariant: the machine's
// bookkeeping went out of balance, which would otherwise surface (if
// at all) as silently wrong results.
type AuditError struct {
	Benchmark string
	Cycle     uint64
	Check     string
	Detail    string
}

func (e *AuditError) Error() string {
	return fmt.Sprintf("sim: %s audit failed at cycle %d: %s: %s", e.Benchmark, e.Cycle, e.Check, e.Detail)
}

func (g *GPU) auditErr(check, format string, args ...interface{}) error {
	return &AuditError{
		Benchmark: g.gen.Name(),
		Cycle:     g.now,
		Check:     check,
		Detail:    fmt.Sprintf(format, args...),
	}
}

// audit runs the opt-in invariant checks after a completed cycle.
//
// Cheap (every cycle):
//   - conservation: every issued load sector is tracked exactly once —
//     the GPU's outstanding-load table matches the sum of what the SMs'
//     blocked warps are waiting for;
//   - queue bounds: every queued SM reply corresponds to an
//     outstanding load; every pending DRAM fill destination has a live
//     DRAM transaction.
//
// Deep (every auditDeepPeriod cycles and at the end of the run):
//   - MSHR/line accounting in every L1, L2 bank, and metadata cache
//     (free-list conservation, no phantom entries, no stale tokens).
//
// Auditing only reads state; it cannot perturb timing.
func (g *GPU) audit(deep bool) error {
	smOutstanding := 0
	for _, sm := range g.sms {
		smOutstanding += sm.OutstandingLoads()
	}
	if smOutstanding != len(g.loads) {
		return g.auditErr("conservation", "SMs await %d sector completions but %d loads are tracked", smOutstanding, len(g.loads))
	}
	if q := g.toSM.Len(); q > len(g.loads) {
		return g.auditErr("queue-bound", "toSM holds %d replies for %d outstanding loads", q, len(g.loads))
	}
	for _, p := range g.parts {
		if len(p.dests) > p.dram.InFlight() {
			return g.auditErr("queue-bound", "partition %d awaits %d DRAM fills but only %d transactions are live",
				p.id, len(p.dests), p.dram.InFlight())
		}
	}
	if !deep {
		return nil
	}
	for i, l1 := range g.l1s {
		if err := l1.AuditLeaks(); err != nil {
			return g.auditErr("mshr-accounting", "SM %d: %v", i, err)
		}
	}
	for _, p := range g.parts {
		for bi, bank := range p.banks {
			if err := bank.AuditLeaks(); err != nil {
				return g.auditErr("mshr-accounting", "partition %d bank %d: %v", p.id, bi, err)
			}
		}
		// With a unified configuration ctr/mac/tree alias one cache.
		seen := map[*cache.Cache]bool{}
		for _, mc := range []*cache.Cache{p.ctr, p.mac, p.tree} {
			if mc == nil || seen[mc] {
				continue
			}
			seen[mc] = true
			if err := mc.AuditLeaks(); err != nil {
				return g.auditErr("mshr-accounting", "partition %d: %v", p.id, err)
			}
		}
	}
	return nil
}
