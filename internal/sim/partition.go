package sim

import (
	"gpusecmem/internal/cache"
	"gpusecmem/internal/dram"
	"gpusecmem/internal/eventq"
	"gpusecmem/internal/faults"
	"gpusecmem/internal/geometry"
	"gpusecmem/internal/stats"
)

// destKind classifies what a completed DRAM transaction was for.
type destKind int

const (
	destDataFill destKind = iota
	destCtrFill
	destMACFill
	destTreeFill
	// destKeyFill is an EncSWCrypto key-table line returning from DRAM.
	// Key fetches are uncached and unmerged (the software path has no
	// MSHRs), so each carries at most one waiting read.
	destKeyFill
)

type dest struct {
	kind   destKind
	addr   uint64 // metadata line address (fills)
	readID uint64 // waiting read for destDataFill / bypass metadata fetches
	bypass bool
	write  bool
	// issuedAt is the enqueue cycle, kept for probe span attribution.
	issuedAt uint64
}

// readState tracks one in-flight L2 read miss through the secure
// engine.
type readState struct {
	id         uint64
	globalAddr uint64
	localAddr  uint64
	l2Token    uint64
	l2Bypass   bool
	l2Bank     int

	dataDone, ctrDone, macDone bool
	// sharesLeft counts outstanding secret-share fetches under
	// EncScattered; the read's data is reconstructible only once the
	// last share arrives. Zero for every other scheme, where one DRAM
	// transaction carries the whole sector.
	sharesLeft int
	// unprotected marks reads outside the selective-encryption range:
	// no crypto on the reply path.
	unprotected bool
	// arrivedAt is the cycle the miss reached the partition, kept for
	// probe span attribution.
	arrivedAt           uint64
	dataReady, ctrReady uint64
	macReady            uint64
	replied             bool
	// finished is set once the reply event fired and the L2 was
	// filled; only then may the state be retired.
	finished bool
}

type replyEvent struct {
	at     uint64
	readID uint64
}

// When orders reply events for the partition's eventq.
func (e replyEvent) When() uint64 { return e.at }

// partition is one memory partition: L2 banks, the secure memory
// engine (metadata caches, AES engines, MAC unit), and the DRAM
// channel.
type partition struct {
	id  int
	gpu *GPU
	cfg *Config
	lay *geometry.Layout

	banks []*cache.Cache
	dram  *dram.DRAM

	// Metadata caches. With a unified configuration all three point
	// at the same cache; with EncDirect ctr is nil. EncScattered reuses
	// the ctr slot for its share-map cache (the only metadata cache the
	// scheme has), so the counter wake/fill machinery serves the map
	// gate unchanged; EncSWCrypto has no metadata caches at all.
	ctr, mac, tree *cache.Cache

	// metaBase is where the extension schemes' partition-local metadata
	// region starts: the first address past the partition's data space.
	// EncScattered's share map and EncSWCrypto's key table live there
	// (the paper schemes derive their region bases from lay instead).
	metaBase uint64
	// lastKeyLine is EncSWCrypto's single software-held key register:
	// the key-table line the driver last loaded. ^0 = none held.
	lastKeyLine uint64

	aesFree3 []uint64
	macFree3 uint64

	dests   map[uint64]dest
	reads   map[uint64]*readState
	replies eventq.Queue[replyEvent]
	// rsPool recycles retired readStates; reads are the per-L2-miss
	// hot-path allocation.
	rsPool []*readState

	metaStats [numMeta]MetaStats

	// faultDetected / faultSilent classify injected corruptions by
	// whether the configured protection level catches them.
	faultDetected, faultSilent uint64

	// protectedStripes is the number of 1 MB partition-local stripes
	// out of 16 that the secure engine covers (selective encryption);
	// 16 = everything.
	protectedStripes uint64

	// localTok seeds newToken: partition-owned tokens (readState ids,
	// DRAM destination tokens) are generated locally so the parallel
	// engine needs no shared counter. Token values are opaque map keys
	// and never ordered or iterated, so local generation changes no
	// observable result.
	localTok uint64
	// stage, when non-nil, redirects sendReply into the parallel
	// engine's per-shard staging buffer instead of the shared toSM
	// queue; nil (the sequential engine) costs one pointer test.
	stage *replyStage

	ctrReuse, macReuse *stats.ReuseProfiler
}

func newPartition(id int, gpu *GPU) *partition {
	cfg := &gpu.cfg
	p := &partition{
		id:    id,
		gpu:   gpu,
		cfg:   cfg,
		dram:  dram.New(cfg.DRAM),
		dests: make(map[uint64]dest),
		reads: make(map[uint64]*readState),
	}
	for b := 0; b < cfg.L2BanksPerPartition; b++ {
		p.banks = append(p.banks, cache.New(cache.Config{
			Name:        "L2",
			SizeBytes:   cfg.L2BankBytes,
			LineSize:    geometry.LineSize,
			Assoc:       cfg.L2Assoc,
			Sectored:    cfg.SectoredL2,
			NumMSHRs:    cfg.L2MSHRs,
			MergeCap:    cfg.L2MergeCap,
			AllocOnFill: true,
		}))
	}
	sc := &cfg.Secure
	if sc.Encryption != EncNone {
		p.protectedStripes = uint64(sc.ProtectedFraction*16 + 0.5)
		p.metaBase = cfg.ProtectedBytes / uint64(cfg.NumPartitions)
		metaCache := func(name string, mergeCap int) *cache.Cache {
			return cache.New(cache.Config{
				Name:        name,
				SizeBytes:   sc.MetaCacheBytes,
				LineSize:    geometry.LineSize,
				Assoc:       sc.MetaAssoc,
				NumMSHRs:    sc.MetaMSHRs,
				MergeCap:    mergeCap,
				AllocOnFill: sc.AllocOnFill,
				Perfect:     sc.PerfectMeta,
				Unlimited:   sc.UnlimitedMeta,
			})
		}
		switch sc.Encryption {
		case EncScattered:
			// One share-map cache; no AES pipeline, MAC unit, or
			// counter/MAC/tree geometry — the placement map is the
			// scheme's entire metadata footprint.
			p.ctr = metaCache("smap$", sc.MergeCapCounter)
			return p
		case EncSWCrypto:
			// No hardware metadata structures at all: the software
			// driver holds one key-table line in a register.
			p.lastKeyLine = ^uint64(0)
			return p
		}
		p.lay = layoutFor(cfg)
		p.aesFree3 = make([]uint64, sc.AESEngines)
		if sc.Unified {
			u := cache.New(cache.Config{
				Name:        "unified$",
				SizeBytes:   sc.UnifiedBytes,
				LineSize:    geometry.LineSize,
				Assoc:       sc.MetaAssoc,
				NumMSHRs:    sc.UnifiedMSHRs,
				MergeCap:    sc.MergeCapCounter,
				AllocOnFill: sc.AllocOnFill,
				Perfect:     sc.PerfectMeta,
				Unlimited:   sc.UnlimitedMeta,
				Policy:      sc.UnifiedPolicy,
			})
			p.ctr, p.mac, p.tree = u, u, u
		} else {
			if sc.Encryption == EncCounter {
				p.ctr = metaCache("ctr$", sc.MergeCapCounter)
			}
			if sc.MAC {
				p.mac = metaCache("mac$", sc.MergeCapMAC)
			}
			if sc.Tree {
				p.tree = metaCache("tree$", sc.MergeCapTree)
			}
		}
		if id == 0 && cfg.ProfileReuse {
			p.ctrReuse = stats.NewReuseProfiler()
			p.macReuse = stats.NewReuseProfiler()
		}
	}
	return p
}

// layoutFor builds the partition-local metadata layout.
func layoutFor(cfg *Config) *geometry.Layout {
	kind := geometry.BMT
	if cfg.Secure.Encryption == EncDirect {
		kind = geometry.MT
	}
	return geometry.MustLayout(cfg.ProtectedBytes/uint64(cfg.NumPartitions), kind)
}

// newToken returns a fresh partition-unique token. Tokens are only
// ever compared for equality against tokens of the same partition, so
// uniqueness within the partition suffices; the partition-id high bits
// keep them globally distinct anyway, and the +1 keeps them nonzero (0
// is the "no waiter" sentinel in the metadata wake paths).
func (p *partition) newToken() uint64 {
	p.localTok++
	return uint64(p.id+1)<<40 | p.localTok
}

// sendReply forwards completed sector data toward the SMs: directly
// onto the toSM delay queue under the sequential engine, or into the
// shard's staging buffer under the parallel engine (merged into toSM
// in canonical order at the window barrier). tokens may alias
// cache-owned scratch; the staged path copies token-by-token.
func (p *partition) sendReply(now, at, globalAddr uint64, tokens []uint64) {
	if st := p.stage; st != nil {
		st.stageReply(now, at, globalAddr, tokens)
		return
	}
	p.gpu.scheduleReply(at, globalAddr, tokens)
}

// isProtected reports whether a partition-local data address falls in
// the selectively-protected stripes (1 MB granularity, 16 stripes per
// 16 MB period).
func (p *partition) isProtected(localAddr uint64) bool {
	return (localAddr>>20)&15 < p.protectedStripes
}

func (p *partition) bankFor(localAddr uint64) int {
	if len(p.banks) == 1 {
		return 0
	}
	return int(localAddr>>8) % len(p.banks)
}

// --- AES / MAC unit scheduling ---

// aesSchedule books one 32 B sector through a pipelined AES engine
// that is free no earlier than readyCycle, and returns the cycle its
// result is available. Zero-crypto configs short-circuit.
func (p *partition) aesSchedule(readyCycle uint64) uint64 {
	sc := &p.cfg.Secure
	if sc.AESLatency == 0 && sc.MACLatency == 0 {
		return readyCycle
	}
	ready3 := readyCycle * 3
	best := 0
	for i := 1; i < len(p.aesFree3); i++ {
		if p.aesFree3[i] < p.aesFree3[best] {
			best = i
		}
	}
	start3 := ready3
	if p.aesFree3[best] > start3 {
		start3 = p.aesFree3[best]
	}
	// 32 B through a 16 B/memory-cycle pipeline = 2 memory cycles =
	// 8 thirds of a core cycle.
	p.aesFree3[best] = start3 + 8
	return start3/3 + uint64(sc.AESLatency)
}

// macSchedule books one sector MAC computation/verification.
func (p *partition) macSchedule(readyCycle uint64) uint64 {
	sc := &p.cfg.Secure
	if sc.AESLatency == 0 && sc.MACLatency == 0 {
		return readyCycle
	}
	ready3 := readyCycle * 3
	start3 := ready3
	if p.macFree3 > start3 {
		start3 = p.macFree3
	}
	p.macFree3 = start3 + 8
	return start3/3 + uint64(sc.MACLatency)
}

// --- L2-side entry points ---

// handleL2Read services a load sector arriving from the interconnect.
func (p *partition) handleL2Read(globalAddr, localAddr, token uint64, now uint64) {
	bank := p.bankFor(localAddr)
	acc := p.banks[bank].Access(localAddr, false, token)
	switch {
	case acc.Outcome == cache.Hit:
		if pr := p.gpu.probe; pr != nil {
			p.recordHitSpan(pr, now)
		}
		p.sendReply(now, now+p.cfg.L2Latency, globalAddr, []uint64{token})
	case acc.NeedFetch:
		p.startRead(globalAddr, localAddr, token, acc.Bypass, bank, now)
	}
	// Merged: the existing fetch's fill will wake this token.
}

// handleL2Write services a store sector (write-validate policy).
func (p *partition) handleL2Write(localAddr uint64, now uint64) {
	bank := p.bankFor(localAddr)
	ev, _ := p.banks[bank].WriteValidate(localAddr)
	if ev != nil {
		p.handleDataWriteback(ev, now)
	}
}

// startRead launches the secure read path for an L2 sector miss.
func (p *partition) startRead(globalAddr, localAddr, token uint64, l2Bypass bool, bank int, now uint64) {
	var rs *readState
	if n := len(p.rsPool); n > 0 {
		rs = p.rsPool[n-1]
		p.rsPool = p.rsPool[:n-1]
	} else {
		rs = new(readState)
	}
	*rs = readState{
		id:         p.newToken(),
		globalAddr: globalAddr,
		localAddr:  localAddr,
		l2Token:    token,
		l2Bypass:   l2Bypass,
		l2Bank:     bank,
		arrivedAt:  now,
	}
	p.reads[rs.id] = rs
	sc := &p.cfg.Secure
	protected := p.isProtected(localAddr)
	if protected && sc.Encryption == EncScattered {
		// The share locations are unknown until the share map answers,
		// so no data fetch is issued here: the map lookup gates the
		// whole fan-out (a map hit issues the shares this cycle).
		rs.macDone = true
		p.smapAccess(rs, now)
		return
	}
	// Data fetch.
	dt := p.newToken()
	p.dests[dt] = dest{kind: destDataFill, readID: rs.id}
	p.dram.Enqueue(dram.Request{Addr: localAddr, Bytes: geometry.SectorSize, Token: dt, Kind: int(KindData)})

	switch {
	case protected && sc.Encryption == EncCounter:
		p.counterAccess(rs, now)
	case protected && sc.Encryption == EncSWCrypto:
		p.keyAccess(rs, now)
	default:
		rs.ctrDone = true
	}
	if protected && sc.MAC {
		p.macAccess(rs, now)
	} else {
		rs.macDone = true
	}
	if !protected {
		rs.unprotected = true
	}
	p.maybeReply(rs, now)
}

// --- EncScattered share-map + share fan-out ---

// mix64 is the splitmix64 finalizer: a deterministic 64-bit mixer used
// to derive pseudorandom share placements. Scattering quality only
// needs decorrelation from the row/bank/set-index bits, not
// cryptographic strength (the real scheme's placements are keyed; the
// timing model only needs their locality-destroying shape).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// smapLineAddr is the share-map line holding the placement entry for a
// data address: 8 B per 128 B data line, the map region starting at
// metaBase.
func (p *partition) smapLineAddr(localAddr uint64) uint64 {
	off := localAddr / geometry.LineSize * 8
	return p.metaBase + off/geometry.LineSize*geometry.LineSize
}

// shareAddr is the partition-local address of share i (1..k-1) of a
// protected line; share 0 is the line's home address itself. The
// placement is a pure function of (line, i) so reads and writebacks
// agree, and it preserves the sector offset so sectored-DRAM byte
// accounting matches the primary share's.
func (p *partition) shareAddr(localAddr uint64, i int) uint64 {
	line := localAddr / geometry.LineSize
	h := mix64(line + uint64(i)*0x9e3779b97f4a7c15)
	dataLines := p.metaBase / geometry.LineSize
	return h%dataLines*geometry.LineSize + localAddr%geometry.LineSize
}

// smapAccess probes the share-map cache on the read critical path. A
// hit releases the share fan-out immediately; a miss defers it to the
// map line's fill (wakeCounterWaiters — the map reuses the counter
// gate in readState).
func (p *partition) smapAccess(rs *readState, now uint64) {
	mapAddr := p.smapLineAddr(rs.localAddr)
	ms := &p.metaStats[MetaSMap]
	ms.Accesses++
	acc := p.ctr.Access(mapAddr, false, rs.id)
	switch acc.Outcome {
	case cache.Hit:
		rs.ctrDone = true
		rs.ctrReady = now + p.cfg.MetaLatency
	case cache.MissPrimary:
		ms.MissesPrimary++
	default:
		ms.MissesSecondary++
	}
	if acc.NeedFetch {
		dt := p.newToken()
		d := dest{kind: destCtrFill, addr: mapAddr, bypass: acc.Bypass, issuedAt: now}
		if acc.Bypass {
			d.readID = rs.id
		}
		p.dests[dt] = d
		p.dram.Enqueue(dram.Request{Addr: mapAddr, Bytes: geometry.LineSize, Token: dt, Kind: int(KindSMap)})
	}
	if rs.ctrDone {
		p.issueShares(rs, now)
	}
}

// issueShares launches the k-way share fetch once the placement is
// known: the home-address share counts as ordinary data traffic, the
// k-1 scattered shares as KindShare. All shares feed the same
// destDataFill wait; the last arrival completes the read's data.
func (p *partition) issueShares(rs *readState, now uint64) {
	k := p.cfg.Secure.ScatterShares
	rs.sharesLeft = k
	for i := 0; i < k; i++ {
		addr, kind := rs.localAddr, KindData
		if i > 0 {
			addr, kind = p.shareAddr(rs.localAddr, i), KindShare
		}
		dt := p.newToken()
		p.dests[dt] = dest{kind: destDataFill, readID: rs.id}
		p.dram.Enqueue(dram.Request{Addr: addr, Bytes: geometry.SectorSize, Token: dt, Kind: int(kind)})
	}
}

// --- EncSWCrypto key table ---

// keyLineAddr is the key-table line holding the page key for a data
// address: 8 B per 4 KB page, the table starting at metaBase.
func (p *partition) keyLineAddr(localAddr uint64) uint64 {
	off := localAddr >> 12 * 8
	return p.metaBase + off/geometry.LineSize*geometry.LineSize
}

// keyAccess models the software driver's key lookup: one key-table
// line is held in a register; any other page's key is a full uncached
// DRAM line read. There are no MSHRs — concurrent misses to the same
// key line each pay their own fetch, which is exactly the cost the
// hardware metadata path exists to avoid.
func (p *partition) keyAccess(rs *readState, now uint64) {
	keyLine := p.keyLineAddr(rs.localAddr)
	ms := &p.metaStats[MetaKey]
	ms.Accesses++
	if keyLine == p.lastKeyLine {
		rs.ctrDone = true
		rs.ctrReady = now + p.cfg.MetaLatency
		return
	}
	ms.MissesPrimary++
	dt := p.newToken()
	p.dests[dt] = dest{kind: destKeyFill, addr: keyLine, readID: rs.id, issuedAt: now}
	p.dram.Enqueue(dram.Request{Addr: keyLine, Bytes: geometry.LineSize, Token: dt, Kind: int(KindKey)})
}

// swSchedule books one sector's software decrypt/encrypt pass through
// the SM-side crypto kernel, modeled as a single serial unit three
// times slower per sector than the hardware MAC pipe, plus the
// SWCryptoCycles software latency.
func (p *partition) swSchedule(readyCycle uint64) uint64 {
	sc := &p.cfg.Secure
	if sc.SWCryptoCycles == 0 {
		return readyCycle
	}
	start3 := readyCycle * 3
	if p.macFree3 > start3 {
		start3 = p.macFree3
	}
	p.macFree3 = start3 + 24
	return start3/3 + uint64(sc.SWCryptoCycles)
}

// counterAccess probes the counter cache on the read critical path.
func (p *partition) counterAccess(rs *readState, now uint64) {
	ctrAddr := p.lay.CounterLineAddr(p.lay.CounterLine(rs.localAddr))
	if p.ctrReuse != nil {
		p.ctrReuse.Touch(ctrAddr / geometry.LineSize)
	}
	ms := &p.metaStats[MetaCounter]
	ms.Accesses++
	acc := p.ctr.Access(ctrAddr, false, rs.id)
	switch acc.Outcome {
	case cache.Hit:
		rs.ctrDone = true
		rs.ctrReady = now + p.cfg.MetaLatency
	case cache.MissPrimary:
		ms.MissesPrimary++
	default:
		ms.MissesSecondary++
	}
	if acc.NeedFetch {
		dt := p.newToken()
		d := dest{kind: destCtrFill, addr: ctrAddr, bypass: acc.Bypass, issuedAt: now}
		if acc.Bypass {
			d.readID = rs.id
		}
		p.dests[dt] = d
		p.dram.Enqueue(dram.Request{Addr: ctrAddr, Bytes: geometry.LineSize, Token: dt, Kind: int(KindCounter)})
	}
}

// macAccess probes the MAC cache (background under speculative
// verification).
func (p *partition) macAccess(rs *readState, now uint64) {
	macAddr := p.lay.MACSectorAddr(rs.localAddr)
	macLine := macAddr / geometry.LineSize * geometry.LineSize
	if p.macReuse != nil {
		p.macReuse.Touch(macLine / geometry.LineSize)
	}
	ms := &p.metaStats[MetaMAC]
	ms.Accesses++
	acc := p.mac.Access(macAddr, false, rs.id)
	switch acc.Outcome {
	case cache.Hit:
		rs.macDone = true
		rs.macReady = now + p.cfg.MetaLatency
	case cache.MissPrimary:
		ms.MissesPrimary++
	default:
		ms.MissesSecondary++
	}
	if acc.NeedFetch {
		dt := p.newToken()
		d := dest{kind: destMACFill, addr: macLine, bypass: acc.Bypass, issuedAt: now}
		if acc.Bypass {
			d.readID = rs.id
		}
		p.dests[dt] = d
		p.dram.Enqueue(dram.Request{Addr: macLine, Bytes: geometry.LineSize, Token: dt, Kind: int(KindMAC)})
	}
}

// maybeReply checks whether rs can be scheduled for its L2 fill and
// SM reply, and if so computes the reply time through the crypto
// pipeline.
func (p *partition) maybeReply(rs *readState, now uint64) {
	if rs.replied {
		p.maybeRetire(rs)
		return
	}
	sc := &p.cfg.Secure
	if !rs.dataDone || !rs.ctrDone {
		return
	}
	if !sc.SpeculativeVerify && sc.MAC && !rs.macDone {
		return
	}
	// otpReady / encDone / verifyDone stay at zero on paths that do not
	// compute them; recordReadSpan uses them for stage attribution.
	var at, otpReady, encDone, verifyDone uint64
	switch {
	case rs.unprotected || sc.Encryption == EncNone:
		at = rs.dataReady
	case sc.Encryption == EncCounter:
		// OTP generation starts when the counter is known; the pad is
		// XORed when both pad and data are present.
		otpReady = p.aesSchedule(rs.ctrReady)
		at = rs.dataReady
		if otpReady > at {
			at = otpReady
		}
	case sc.Encryption == EncScattered:
		// The XOR reconstruction starts once the last share arrives
		// (dataReady); the map lookup already gated the fan-out, so it
		// is never the later event here.
		encDone = rs.dataReady + uint64(sc.ScatterCombineLatency)
		at = encDone
	case sc.Encryption == EncSWCrypto:
		// The software kernel needs both the ciphertext and the page
		// key before it can start, then pays the serial software pass.
		base := rs.dataReady
		if rs.ctrReady > base {
			base = rs.ctrReady
		}
		encDone = p.swSchedule(base)
		at = encDone
	default: // EncDirect: decryption starts after the ciphertext arrives.
		encDone = p.aesSchedule(rs.dataReady)
		at = encDone
	}
	if sc.MAC && !rs.unprotected {
		if !sc.SpeculativeVerify {
			v := rs.macReady
			if rs.dataReady > v {
				v = rs.dataReady
			}
			v = p.macSchedule(v)
			verifyDone = v
			if v > at {
				at = v
			}
		} else {
			// Background verification still occupies the MAC unit.
			p.macSchedule(now)
		}
	}
	if at <= now {
		at = now + 1
	}
	rs.replied = true
	if pr := p.gpu.probe; pr != nil {
		p.recordReadSpan(pr, rs, otpReady, encDone, verifyDone, at)
	}
	p.replies.Push(replyEvent{at: at, readID: rs.id})
}

// maybeRetire frees the read state once the reply has fired and every
// tracked fill has returned. The state returns to the pool; callers
// must not touch rs after this (a recycled state gets a fresh token,
// so stale IDs in late events simply miss the reads map).
func (p *partition) maybeRetire(rs *readState) {
	if rs.finished && rs.dataDone && rs.ctrDone && rs.macDone {
		delete(p.reads, rs.id)
		p.rsPool = append(p.rsPool, rs)
	}
}

// finishRead fires at the reply time: fill the L2 bank, forward the
// data to the waiting SMs, and handle any dirty L2 eviction.
func (p *partition) finishRead(rs *readState, now uint64) {
	fill := p.banks[rs.l2Bank].Fill(rs.localAddr, rs.l2Bypass, false)
	tokens := fill.Tokens
	if rs.l2Bypass {
		tokens = append(tokens, rs.l2Token)
	}
	if fill.Writeback != nil {
		p.handleDataWriteback(fill.Writeback, now)
	}
	if len(tokens) > 0 {
		p.sendReply(now, now, rs.globalAddr, tokens)
	}
	rs.finished = true
	p.maybeRetire(rs)
}

// --- Write path ---

// handleDataWriteback processes a dirty L2 data eviction through the
// secure write path: counter increment, encryption, MAC update, and
// the DRAM data write.
func (p *partition) handleDataWriteback(ev *cache.Eviction, now uint64) {
	sc := &p.cfg.Secure
	p.dram.Enqueue(dram.Request{Addr: ev.LineAddr, Bytes: ev.DirtyBytes, Write: true, Kind: int(KindData)})
	if sc.Encryption == EncNone || !p.isProtected(ev.LineAddr) {
		return
	}
	switch sc.Encryption {
	case EncScattered:
		// A dirty writeback re-splits the line: the home share was the
		// data write above, the k-1 scattered shares follow, and the
		// placement entry is read-modified-written (fresh shares mean
		// fresh map contents).
		for i := 1; i < sc.ScatterShares; i++ {
			p.dram.Enqueue(dram.Request{Addr: p.shareAddr(ev.LineAddr, i), Bytes: ev.DirtyBytes, Write: true, Kind: int(KindShare)})
		}
		p.metaWriteAccess(MetaSMap, p.ctr, p.smapLineAddr(ev.LineAddr), destCtrFill, KindSMap, now)
		return
	case EncSWCrypto:
		// Software encryption of each dirty sector, after the driver
		// swaps the page key into its register if it isn't held.
		for b := 0; b < ev.DirtyBytes; b += geometry.SectorSize {
			p.swSchedule(now)
		}
		keyLine := p.keyLineAddr(ev.LineAddr)
		ms := &p.metaStats[MetaKey]
		ms.Accesses++
		if keyLine != p.lastKeyLine {
			ms.MissesPrimary++
			dt := p.newToken()
			p.dests[dt] = dest{kind: destKeyFill, addr: keyLine, write: true, issuedAt: now}
			p.dram.Enqueue(dram.Request{Addr: keyLine, Bytes: geometry.LineSize, Token: dt, Kind: int(KindKey)})
		}
		return
	}
	// Encryption occupancy, one AES pass per dirty sector.
	for b := 0; b < ev.DirtyBytes; b += geometry.SectorSize {
		p.aesSchedule(now)
	}
	if sc.Encryption == EncCounter {
		// Counter increment: read-modify-write of the counter line.
		ctrAddr := p.lay.CounterLineAddr(p.lay.CounterLine(ev.LineAddr))
		if p.ctrReuse != nil {
			p.ctrReuse.Touch(ctrAddr / geometry.LineSize)
		}
		p.metaWriteAccess(MetaCounter, p.ctr, ctrAddr, destCtrFill, KindCounter, now)
		if sc.Tree && !sc.LazyTreeUpdate {
			level, idx, _ := p.lay.LeafParent(p.lay.CounterLine(ev.LineAddr))
			p.treeWriteAccess(p.lay.TreeNodeAddr(level, idx), now)
		}
	}
	if sc.MAC {
		for b := 0; b < ev.DirtyBytes; b += geometry.SectorSize {
			p.macSchedule(now)
		}
		macAddr := p.lay.MACSectorAddr(ev.LineAddr)
		macLine := macAddr / geometry.LineSize * geometry.LineSize
		if p.macReuse != nil {
			p.macReuse.Touch(macLine / geometry.LineSize)
		}
		p.metaWriteAccess(MetaMAC, p.mac, macAddr, destMACFill, KindMAC, now)
		if sc.Encryption == EncDirect && sc.Tree && !sc.LazyTreeUpdate {
			level, idx, _ := p.lay.LeafParent(p.lay.MACLine(ev.LineAddr))
			p.treeWriteAccess(p.lay.TreeNodeAddr(level, idx), now)
		}
	}
}

// metaWriteAccess performs a read-modify-write access to a metadata
// cache, fetching the line on a miss.
func (p *partition) metaWriteAccess(mk MetaKind, c *cache.Cache, addr uint64, fillKind destKind, traffic TrafficKind, now uint64) {
	ms := &p.metaStats[mk]
	ms.Accesses++
	acc := c.Access(addr, true, 0)
	switch acc.Outcome {
	case cache.Hit:
	case cache.MissPrimary:
		ms.MissesPrimary++
	default:
		ms.MissesSecondary++
	}
	if acc.Writeback != nil { // allocate-on-miss reservation
		p.handleMetaWriteback(acc.Writeback, now)
	}
	if acc.NeedFetch {
		lineAddr := addr / geometry.LineSize * geometry.LineSize
		dt := p.newToken()
		p.dests[dt] = dest{kind: fillKind, addr: lineAddr, bypass: acc.Bypass, write: true, issuedAt: now}
		p.dram.Enqueue(dram.Request{Addr: lineAddr, Bytes: geometry.LineSize, Token: dt, Kind: int(traffic)})
	}
}

// treeWriteAccess updates a tree node in the tree cache (lazy-update
// parent propagation).
func (p *partition) treeWriteAccess(nodeAddr uint64, now uint64) {
	p.metaWriteAccess(MetaTree, p.tree, nodeAddr, destTreeFill, KindTree, now)
}

// handleMetaWriteback processes a dirty metadata-cache eviction: the
// DRAM writeback plus the lazy parent update it triggers.
func (p *partition) handleMetaWriteback(ev *cache.Eviction, now uint64) {
	p.dram.Enqueue(dram.Request{Addr: ev.LineAddr, Bytes: ev.DirtyBytes, Write: true, Kind: int(KindWB)})
	sc := &p.cfg.Secure
	if !sc.Tree || !sc.LazyTreeUpdate {
		return
	}
	switch p.lay.RegionOf(ev.LineAddr) {
	case geometry.RegionCounter:
		leaf := (ev.LineAddr - p.lay.CounterBase) / geometry.LineSize
		level, idx, _ := p.lay.LeafParent(leaf)
		p.treeWriteAccess(p.lay.TreeNodeAddr(level, idx), now)
	case geometry.RegionMAC:
		if sc.Encryption == EncDirect {
			leaf := (ev.LineAddr - p.lay.MACBase) / geometry.LineSize
			level, idx, _ := p.lay.LeafParent(leaf)
			p.treeWriteAccess(p.lay.TreeNodeAddr(level, idx), now)
		}
	case geometry.RegionTree:
		level, idx := p.lay.NodeByAddr(ev.LineAddr)
		if plevel, pidx, _, ok := p.lay.Parent(level, idx); ok {
			p.treeWriteAccess(p.lay.TreeNodeAddr(plevel, pidx), now)
		}
		// Level 0's hash lives in the on-chip root register: no
		// further traffic.
	}
}

// --- Integrity verification walks (background, speculative) ---

// verifyWalkFromLeaf starts the tree walk that authenticates a freshly
// fetched leaf (counter line under BMT, MAC line under MT).
func (p *partition) verifyWalkFromLeaf(leaf uint64, now uint64) {
	level, idx, _ := p.lay.LeafParent(leaf)
	p.verifyWalk(level, idx, now)
}

// verifyWalk authenticates upward from node (level, idx): a cached
// node terminates the walk (cached implies verified); a miss fetches
// the node and continues from its parent when the fill returns.
func (p *partition) verifyWalk(level int, idx uint64, now uint64) {
	for {
		nodeAddr := p.lay.TreeNodeAddr(level, idx)
		ms := &p.metaStats[MetaTree]
		ms.Accesses++
		acc := p.tree.Access(nodeAddr, false, 0)
		switch acc.Outcome {
		case cache.Hit:
			return
		case cache.MissPrimary:
			ms.MissesPrimary++
		default:
			ms.MissesSecondary++
		}
		if acc.Writeback != nil {
			p.handleMetaWriteback(acc.Writeback, now)
		}
		if acc.NeedFetch {
			dt := p.newToken()
			p.dests[dt] = dest{kind: destTreeFill, addr: nodeAddr, bypass: acc.Bypass, issuedAt: now}
			p.dram.Enqueue(dram.Request{Addr: nodeAddr, Bytes: geometry.LineSize, Token: dt, Kind: int(KindTree)})
			return // continue from the parent at fill time
		}
		// Merged into an in-flight fetch: that walk continues for us.
		return
	}
}

// --- DRAM completion dispatch ---

// nextEvent returns the earliest cycle after `now` at which tick could
// do anything — fire a scheduled reply or move the DRAM channel —
// assuming no new L2 message arrives in between (the cycle loop
// re-arms the partition on delivery). Like dram.NextEvent it is a
// lower bound: undershooting costs a no-op tick, which is exactly what
// the legacy every-cycle loop did, so skipping up to the bound is
// state-identical.
func (p *partition) nextEvent(now uint64) uint64 {
	next := p.dram.NextEvent(now)
	if r := p.replies.NextWhen(); r < next {
		next = r
	}
	if next <= now && next != ^uint64(0) {
		next = now + 1
	}
	return next
}

func (p *partition) tick(now uint64) {
	for p.replies.Len() > 0 && p.replies.Min().at <= now {
		ev := p.replies.Pop()
		if rs, ok := p.reads[ev.readID]; ok {
			p.finishRead(rs, now)
		}
	}
	for _, tok := range p.dram.Tick(now) {
		d, ok := p.dests[tok]
		if !ok {
			continue
		}
		delete(p.dests, tok)
		p.dispatch(d, now)
	}
}

// recordCorruption books one injected bit flip as detected (the
// protection level would raise a verification error) or silent.
func (p *partition) recordCorruption(detected bool) {
	if detected {
		p.faultDetected++
	} else {
		p.faultSilent++
	}
}

// injectMeta gives the fault plan its two shots at a returning
// metadata line: SiteDRAMMeta models the line corrupted at rest in
// DRAM, SiteMetaFill models corruption on the fill path into the
// metadata cache. Both are detected iff `covered` — whether the
// configured protection level has a check that would miscompare.
func (p *partition) injectMeta(in *faults.Injector, addr uint64, covered bool) {
	if in.Fire(faults.SiteDRAMMeta, addr) {
		p.recordCorruption(covered)
	}
	if in.Fire(faults.SiteMetaFill, addr) {
		p.recordCorruption(covered)
	}
}

func (p *partition) dispatch(d dest, now uint64) {
	sc := &p.cfg.Secure
	switch d.kind {
	case destDataFill:
		if rs, ok := p.reads[d.readID]; ok {
			if in := p.gpu.inj; in != nil && in.Fire(faults.SiteDRAMData, rs.localAddr) {
				// A flipped data line is caught only by a MAC over a
				// protected address; decryption alone scrambles
				// silently.
				p.recordCorruption(sc.MAC && !rs.unprotected)
			}
			if rs.sharesLeft > 1 {
				// EncScattered: more shares outstanding — the line is
				// reconstructible only once the last one lands.
				rs.sharesLeft--
				return
			}
			rs.sharesLeft = 0
			rs.dataDone = true
			rs.dataReady = now
			p.maybeReply(rs, now)
		}
	case destCtrFill:
		if in := p.gpu.inj; in != nil {
			// A corrupt counter fails the tree check directly, or the
			// (stateful) MAC check indirectly via the wrong OTP. (Under
			// EncScattered this is the share map and neither exists:
			// the flip lands silently.)
			p.injectMeta(in, d.addr, sc.Tree || sc.MAC)
		}
		if pr := p.gpu.probe; pr != nil {
			k := KindCounter
			if sc.Encryption == EncScattered {
				k = KindSMap
			}
			p.recordMetaSpan(pr, d, k, now)
		}
		fill := p.ctr.Fill(d.addr, d.bypass, d.write)
		if fill.Writeback != nil {
			p.handleMetaWriteback(fill.Writeback, now)
		}
		p.wakeCounterWaiters(fill.Tokens, d, now)
		if sc.Tree {
			leaf := (d.addr - p.lay.CounterBase) / geometry.LineSize
			p.verifyWalkFromLeaf(leaf, now)
		}
	case destMACFill:
		if in := p.gpu.inj; in != nil {
			// A flipped stored MAC always miscompares against the
			// recomputed one.
			p.injectMeta(in, d.addr, true)
		}
		if pr := p.gpu.probe; pr != nil {
			p.recordMetaSpan(pr, d, KindMAC, now)
		}
		fill := p.mac.Fill(d.addr, d.bypass, d.write)
		if fill.Writeback != nil {
			p.handleMetaWriteback(fill.Writeback, now)
		}
		p.wakeMACWaiters(fill.Tokens, d, now)
		if sc.Encryption == EncDirect && sc.Tree {
			leaf := (d.addr - p.lay.MACBase) / geometry.LineSize
			p.verifyWalkFromLeaf(leaf, now)
		}
	case destTreeFill:
		if in := p.gpu.inj; in != nil {
			// A flipped tree node fails its parent's hash check.
			p.injectMeta(in, d.addr, true)
		}
		if pr := p.gpu.probe; pr != nil {
			p.recordMetaSpan(pr, d, KindTree, now)
		}
		fill := p.tree.Fill(d.addr, d.bypass, d.write)
		if fill.Writeback != nil {
			p.handleMetaWriteback(fill.Writeback, now)
		}
		// Continue the verification walk upward.
		level, idx := p.lay.NodeByAddr(d.addr)
		if plevel, pidx, _, ok := p.lay.Parent(level, idx); ok {
			p.verifyWalk(plevel, pidx, now)
		}
	case destKeyFill:
		if in := p.gpu.inj; in != nil {
			// A flipped page key scrambles the plaintext with nothing
			// to miscompare against: always silent.
			p.injectMeta(in, d.addr, false)
		}
		if pr := p.gpu.probe; pr != nil {
			p.recordMetaSpan(pr, d, KindKey, now)
		}
		// The driver's register holds this key line from the fill cycle
		// on. Updating at fill (not issue) time means concurrent misses
		// on the same line each pay their own fetch — the software path
		// has no MSHRs to merge them.
		p.lastKeyLine = d.addr
		if rs, ok := p.reads[d.readID]; ok {
			rs.ctrDone = true
			rs.ctrReady = now
			p.maybeReply(rs, now)
		}
	}
}

func (p *partition) wakeCounterWaiters(tokens []uint64, d dest, now uint64) {
	if d.bypass && d.readID != 0 {
		tokens = append(tokens, d.readID)
	}
	for _, tok := range tokens {
		if tok == 0 {
			continue
		}
		if rs, ok := p.reads[tok]; ok {
			rs.ctrDone = true
			rs.ctrReady = now
			if p.cfg.Secure.Encryption == EncScattered {
				// The placement just became known: release the share
				// fan-out (the reply waits on the shares, not here).
				p.issueShares(rs, now)
			} else {
				p.maybeReply(rs, now)
			}
		}
	}
}

func (p *partition) wakeMACWaiters(tokens []uint64, d dest, now uint64) {
	if d.bypass && d.readID != 0 {
		tokens = append(tokens, d.readID)
	}
	for _, tok := range tokens {
		if tok == 0 {
			continue
		}
		if rs, ok := p.reads[tok]; ok {
			rs.macDone = true
			rs.macReady = now
			p.maybeReply(rs, now)
		}
	}
}
