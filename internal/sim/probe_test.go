package sim

import (
	"testing"

	"gpusecmem/internal/probe"
)

func TestMetaKindString(t *testing.T) {
	cases := map[MetaKind]string{
		MetaCounter: "counter",
		MetaMAC:     "mac",
		MetaTree:    "bmt",
		MetaSMap:    "smap",
		MetaKey:     "key",
		MetaKind(9): "meta(9)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("MetaKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestKindLabels(t *testing.T) {
	labels := kindLabels()
	if len(labels) != int(numKinds) {
		t.Fatalf("%d labels for %d kinds", len(labels), numKinds)
	}
	want := []string{"data", "ctr", "mac", "bmt", "wb", "share", "smap", "key"}
	for i, w := range want {
		if labels[i] != w {
			t.Errorf("label[%d] = %q, want %q", i, labels[i], w)
		}
	}
}

// TestProbeTimelineSampling: a probed run with a timeline interval
// produces windows at exact interval multiples, and the per-kind
// window deltas reconcile with the run's cumulative totals.
func TestProbeTimelineSampling(t *testing.T) {
	cfg := SecureMem()
	cfg.Probe = &probe.Config{TimelineInterval: 1000}
	r := runFor(t, cfg, "fdtd2d")
	if r.Probe == nil || len(r.Probe.Timeline) == 0 {
		t.Fatal("no timeline samples")
	}
	var dataBytes uint64
	for i, s := range r.Probe.Timeline {
		if s.Cycle%1000 != 0 {
			t.Fatalf("sample %d at cycle %d, not an interval multiple", i, s.Cycle)
		}
		dataBytes += s.Bytes["data"]
	}
	// Windows cover [0, lastSample]; traffic after the final window is
	// not sampled, so the sum is a lower bound on the cumulative total.
	if dataBytes == 0 {
		t.Fatal("timeline saw no data traffic")
	}
	if dataBytes > r.BytesByKind[KindData] {
		t.Fatalf("timeline data bytes %d exceed run total %d",
			dataBytes, r.BytesByKind[KindData])
	}
}

// TestProbeSpanStagesMatchScheme: stage attribution must reflect the
// configured protection — no AES cycles without encryption, no meta
// wait without counter mode.
func TestProbeSpanStagesMatchScheme(t *testing.T) {
	base := Baseline()
	base.Probe = &probe.Config{Spans: true}
	r := runFor(t, base, "fdtd2d")
	sp := r.Probe.Spans
	for _, stage := range []string{"meta", "aes", "verify"} {
		if c := sp.Stage("data", stage); c != 0 {
			t.Errorf("baseline attributed %d cycles to %s", c, stage)
		}
	}
	if sp.Stage("data", "dram") == 0 {
		t.Error("baseline attributed no DRAM cycles")
	}

	sec := SecureMem()
	sec.Probe = &probe.Config{Spans: true}
	r = runFor(t, sec, "fdtd2d")
	sp = r.Probe.Spans
	if sp.Stage("data", "aes") == 0 {
		t.Error("counter mode attributed no AES cycles")
	}
	for _, kind := range []string{"ctr", "mac", "bmt"} {
		kb := sp.Kind(kind)
		if kb == nil || kb.Spans == 0 {
			t.Errorf("no %s metadata spans traced", kind)
		}
	}
}
