// Package sim is the cycle-level GPU timing simulator: SMs with warp
// scheduling, sectored L1/L2 caches, interconnect, and 32 memory
// partitions each carrying a secure-memory engine (metadata caches,
// MSHRs, AES engine queues, MAC units, and integrity-tree traffic)
// in front of a banked DRAM channel. It reproduces the experimental
// platform of the paper's Section IV.
//
// Concurrency and aliasing contract: a GPU instance is single-owner —
// drive it from one goroutine; distinct instances share nothing and
// may run concurrently without limit (the sweep runner's parallelism).
// With Config.Shards > 1 a run *internally* fans partition work out
// across a goroutine pool, but that parallelism never escapes the
// instance and results stay bit-identical to a sequential run (see
// DESIGN.md "Parallel partition engine"). The *Result a run returns
// is detached from simulator state and safe to share read-only.
package sim

import (
	"fmt"

	"gpusecmem/internal/cache"
	"gpusecmem/internal/dram"
	"gpusecmem/internal/faults"
	"gpusecmem/internal/geometry"
	"gpusecmem/internal/probe"
)

// EncryptionKind selects the data-path encryption scheme.
type EncryptionKind int

// Encryption schemes.
const (
	// EncNone is the insecure baseline GPU.
	EncNone EncryptionKind = iota
	// EncCounter is counter-mode (OTP) encryption with split counters.
	EncCounter
	// EncDirect is direct (address-tweaked block cipher) encryption.
	EncDirect
	// EncScattered is secret-shared line placement (Secure Scattered
	// Memory): every protected line is stored as ScatterShares secret
	// shares at pseudorandom locations, reads fan out to all shares and
	// reconstruct by XOR, and a share-map metadata cache tracks
	// placement. No AES pipeline, MACs, or integrity tree.
	EncScattered
	// EncSWCrypto is a MemShield-style software-encryption baseline:
	// decryption costs SWCryptoCycles of GPU compute per sector on the
	// reply critical path, keys come from a DRAM-resident key table read
	// through a single software-held key register — no hardware metadata
	// caches or MSHRs exist.
	EncSWCrypto
)

func (e EncryptionKind) String() string {
	switch e {
	case EncNone:
		return "none"
	case EncCounter:
		return "counter"
	case EncScattered:
		return "scattered"
	case EncSWCrypto:
		return "sw_crypto"
	}
	return "direct"
}

// SecureConfig describes the per-partition secure memory engine.
type SecureConfig struct {
	Encryption EncryptionKind
	// MAC enables per-sector data MACs (and their cache + traffic).
	MAC bool
	// Tree enables the integrity tree: a BMT over counter lines under
	// EncCounter, an MT over MAC lines under EncDirect.
	Tree bool

	// AESLatency is the cipher pipeline depth in core cycles. Under
	// counter mode it applies to OTP generation (usually hidden);
	// under direct encryption it sits on the read critical path.
	AESLatency int
	// MACLatency is the MAC unit pipeline depth in cycles.
	MACLatency int
	// AESEngines is the number of pipelined AES engines per partition
	// (1 or 2 in the paper; each moves 16 B per memory cycle).
	AESEngines int

	// MetaCacheBytes is the per-type metadata cache capacity per
	// partition (2 KB default; Figure 7 sweeps it).
	MetaCacheBytes int
	// MetaMSHRs is the MSHR count per metadata cache (64 default,
	// 0 = none; Figure 6 sweeps it).
	MetaMSHRs int
	// MergeCapCounter/MAC/Tree bound merged requests per MSHR entry
	// (512/64/64 in the paper).
	MergeCapCounter int
	MergeCapMAC     int
	MergeCapTree    int
	// MetaAssoc is the metadata cache associativity.
	MetaAssoc int

	// Unified replaces the three separate metadata caches with one
	// shared cache (Section V-D) of UnifiedBytes with UnifiedMSHRs.
	Unified      bool
	UnifiedBytes int
	UnifiedMSHRs int
	// UnifiedPolicy selects the unified cache's replacement policy.
	// The paper suggests "smart replacement policies" as an
	// alternative to separate caches; cache.PolicyDIP implements
	// RRIP set-dueling for the ext-smartunified experiment.
	UnifiedPolicy cache.Policy

	// PerfectMeta makes metadata caches always hit (perf_mdc).
	PerfectMeta bool
	// UnlimitedMeta gives metadata caches infinite capacity
	// (large_mdc).
	UnlimitedMeta bool
	// AllocOnFill is the metadata cache allocation policy (paper
	// default true).
	AllocOnFill bool
	// LazyTreeUpdate updates a dirty counter/tree line's parent only
	// when the line is evicted from its cache (paper default true);
	// false updates the parent on every write (eager).
	LazyTreeUpdate bool
	// SpeculativeVerify delivers data before integrity verification
	// completes (paper default true); false blocks the reply until the
	// MAC check would have finished.
	SpeculativeVerify bool
	// ProtectedFraction limits secure-memory coverage to the lowest
	// fraction of each partition's data space (1.0 = everything, the
	// paper's model). Fractions below 1 model the selective-encryption
	// approach of Zuo et al. that the paper's related work discusses:
	// accesses outside the protected range skip all metadata.
	ProtectedFraction float64

	// ScatterShares is EncScattered's fan-out: the number of secret
	// shares (2..8) each protected line is split into. Every read
	// fetches all of them; every dirty writeback rewrites all of them.
	ScatterShares int
	// ScatterCombineLatency is the cycles EncScattered spends
	// reconstructing a line once its last share has arrived (XOR
	// combine — cheap, but not free).
	ScatterCombineLatency int
	// SWCryptoCycles is EncSWCrypto's software decrypt/encrypt latency
	// per sector, on the read critical path. Software AES on SM cores
	// is an order of magnitude slower than the paper's 40-cycle
	// hardware pipeline.
	SWCryptoCycles int
}

// Config is the full machine configuration (Table I baseline).
type Config struct {
	NumSMs     int
	IssueWidth int
	// WarpOverride, when positive, overrides the generator's
	// warps-per-SM.
	WarpOverride int

	L1Bytes int
	L1Assoc int

	L2BankBytes         int
	L2Assoc             int
	L2BanksPerPartition int
	L2MSHRs             int
	L2MergeCap          int
	// SectoredL2 models the 4x32B sectored L2 (paper default true;
	// ablation flips it).
	SectoredL2 bool

	NumPartitions int
	L1Latency     uint64
	L2Latency     uint64
	IcntLatency   uint64
	MetaLatency   uint64

	DRAM dram.Config

	// ProtectedBytes is the total protected device memory (4 GB).
	ProtectedBytes uint64

	// MaxCycles is the simulation length.
	MaxCycles uint64

	// ProfileReuse enables the Figure 10/11 reuse-distance profilers
	// on partition 0's counter and MAC access streams.
	ProfileReuse bool

	// Faults is an optional deterministic fault-injection campaign
	// (Section II-B's active physical adversary at cycle granularity).
	// nil — and any plan with rate 0 — leaves the simulation
	// byte-identical to an uninstrumented run.
	Faults *faults.Plan

	// Probe is an optional cycle-domain observability configuration
	// (internal/probe): request-lifecycle spans with per-stage latency
	// attribution, a windowed timeline sampler, and Chrome trace-event
	// records. nil disables every instrument, leaving the hot paths a
	// single pointer comparison; probes only observe, so a probed run's
	// Result (minus the probe report itself) is byte-identical to an
	// unprobed one.
	Probe *probe.Config

	// Audit enables the per-cycle invariant auditors (request
	// conservation, MSHR accounting, queue bounds). Auditing never
	// changes timing; a violated invariant aborts the run with an
	// *AuditError.
	Audit bool

	// WatchdogCycles is the forward-progress stall threshold: if no
	// instruction issues and no load completes for this many cycles
	// while loads are outstanding, the run aborts with a *StallError
	// carrying a diagnostic dump. 0 disables the watchdog.
	WatchdogCycles uint64

	// Shards, when > 1, runs the simulation on the barrier-synchronized
	// parallel partition engine: the memory partitions are distributed
	// round-robin over this many worker goroutines and advance in
	// lookahead windows of IcntLatency cycles between merge barriers.
	// Results are bit-identical to the sequential engine for every
	// shard count — Shards is an execution hint, not a model parameter
	// — so it is excluded from the JSON form (run keys, result caches,
	// and golden digests ignore it). 0 and 1 both select the sequential
	// engine. Shards need not divide NumPartitions (round-robin
	// assignment handles any remainder); it may not exceed it.
	// Configurations the parallel engine cannot reproduce exactly
	// (Audit, fault injection, probes) silently fall back to the
	// sequential engine; see DESIGN.md §13.
	Shards int `json:"-"`

	Secure SecureConfig
}

// Baseline returns the paper's Table I configuration with secure
// memory disabled.
func Baseline() Config {
	return Config{
		NumSMs:              80,
		IssueWidth:          2,
		L1Bytes:             32 * 1024,
		L1Assoc:             4,
		L2BankBytes:         96 * 1024,
		L2Assoc:             16,
		L2BanksPerPartition: 2,
		L2MSHRs:             256,
		L2MergeCap:          16,
		SectoredL2:          true,
		NumPartitions:       32,
		L1Latency:           28,
		L2Latency:           34,
		IcntLatency:         12,
		MetaLatency:         2,
		DRAM:                dram.DefaultConfig(),
		ProtectedBytes:      4 << 30,
		MaxCycles:           60_000,
		// A healthy machine completes loads every few hundred cycles at
		// worst; 25k cycles of total silence with loads in flight is a
		// wedge, not a workload.
		WatchdogCycles: 25_000,
		Secure: SecureConfig{
			Encryption:        EncNone,
			AESLatency:        40,
			MACLatency:        40,
			AESEngines:        2,
			MetaCacheBytes:    2 * 1024,
			MetaMSHRs:         64,
			MergeCapCounter:   512,
			MergeCapMAC:       64,
			MergeCapTree:      64,
			MetaAssoc:         8,
			UnifiedBytes:      6 * 1024,
			UnifiedMSHRs:      192,
			AllocOnFill:       true,
			LazyTreeUpdate:    true,
			SpeculativeVerify: true,
			ProtectedFraction: 1.0,

			ScatterShares:         2,
			ScatterCombineLatency: 4,
			SWCryptoCycles:        320,
		},
	}
}

// SecureMem returns the Table I machine with the full counter-mode +
// MAC + BMT secure memory enabled (the paper's secureMem design with
// MSHRs).
func SecureMem() Config {
	cfg := Baseline()
	cfg.Secure.Encryption = EncCounter
	cfg.Secure.MAC = true
	cfg.Secure.Tree = true
	return cfg
}

// DirectMem returns the Table I machine with direct encryption at the
// given AES latency and the requested integrity level.
func DirectMem(aesLatency int, mac, tree bool) Config {
	cfg := Baseline()
	cfg.Secure.Encryption = EncDirect
	cfg.Secure.AESLatency = aesLatency
	cfg.Secure.MAC = mac
	cfg.Secure.Tree = tree
	if mac && !tree {
		// Fig 17 fairness: direct_mac gets the whole 6 KB as MAC cache.
		cfg.Secure.MetaCacheBytes = 6 * 1024
	} else if mac && tree {
		// direct_mac_mt: 3 KB MAC + 3 KB MT.
		cfg.Secure.MetaCacheBytes = 3 * 1024
	}
	return cfg
}

// Scattered returns the Table I machine with secret-shared line
// placement (EncScattered) at the given share fan-out. The share map
// is cached in the partition's metadata cache; there is no AES
// pipeline, MAC, or integrity tree.
func Scattered(shares int) Config {
	cfg := Baseline()
	cfg.Secure.Encryption = EncScattered
	cfg.Secure.ScatterShares = shares
	// The whole per-type metadata budget serves the one share-map cache.
	cfg.Secure.MetaCacheBytes = 6 * 1024
	return cfg
}

// SWCrypto returns the Table I machine with MemShield-style software
// encryption (EncSWCrypto) at the given per-sector software cipher
// latency. No hardware metadata caches exist.
func SWCrypto(cycles int) Config {
	cfg := Baseline()
	cfg.Secure.Encryption = EncSWCrypto
	cfg.Secure.SWCryptoCycles = cycles
	return cfg
}

// Validate reports configuration errors early — including the cases
// internal/cache and internal/dram would otherwise only catch with a
// panic mid-construction (non-positive sizes/associativity, invalid
// channel timing), so a bad config fails before simulation starts.
func (c *Config) Validate() error {
	switch {
	case c.NumSMs <= 0:
		return fmt.Errorf("sim: NumSMs must be positive")
	case c.IssueWidth <= 0:
		return fmt.Errorf("sim: IssueWidth must be positive")
	case c.NumPartitions <= 0:
		return fmt.Errorf("sim: NumPartitions must be positive")
	case c.MaxCycles == 0:
		return fmt.Errorf("sim: MaxCycles must be positive")
	case c.ProtectedBytes%uint64(c.NumPartitions) != 0:
		return fmt.Errorf("sim: ProtectedBytes %d not divisible by %d partitions", c.ProtectedBytes, c.NumPartitions)
	case c.Secure.Encryption == EncDirect && c.Secure.Tree && !c.Secure.MAC:
		return fmt.Errorf("sim: direct encryption MT requires MACs (tree leaves)")
	case (c.Secure.Encryption == EncCounter || c.Secure.Encryption == EncDirect) && c.Secure.AESEngines <= 0:
		return fmt.Errorf("sim: AESEngines must be positive with hardware encryption enabled")
	case c.Secure.Encryption == EncScattered && (c.Secure.ScatterShares < 2 || c.Secure.ScatterShares > 8):
		return fmt.Errorf("sim: ScatterShares %d outside [2,8] — scattered memory needs at least two shares, and more than eight models no published design", c.Secure.ScatterShares)
	case c.Secure.Encryption == EncScattered && c.Secure.ScatterCombineLatency < 0:
		return fmt.Errorf("sim: ScatterCombineLatency must be >= 0")
	case c.Secure.Encryption == EncScattered && (c.Secure.MAC || c.Secure.Tree):
		return fmt.Errorf("sim: scattered memory models confidentiality by secret sharing only — MAC/Tree are not part of the design; disable them")
	case c.Secure.Encryption == EncScattered && c.Secure.Unified:
		return fmt.Errorf("sim: scattered memory has a single share-map cache — Unified does not apply")
	case c.Secure.Encryption == EncSWCrypto && c.Secure.SWCryptoCycles < 0:
		return fmt.Errorf("sim: SWCryptoCycles must be >= 0")
	case c.Secure.Encryption == EncSWCrypto && (c.Secure.MAC || c.Secure.Tree || c.Secure.Unified):
		return fmt.Errorf("sim: the software-encryption baseline has no hardware metadata path — MAC/Tree/Unified do not apply; disable them")
	case c.Secure.ProtectedFraction < 0 || c.Secure.ProtectedFraction > 1:
		return fmt.Errorf("sim: ProtectedFraction %f outside [0,1]", c.Secure.ProtectedFraction)
	case c.Shards < 0:
		return fmt.Errorf("sim: Shards must be >= 0 (0 or 1 selects the sequential engine; got %d)", c.Shards)
	case c.Shards > c.NumPartitions:
		return fmt.Errorf("sim: Shards %d exceeds NumPartitions %d — each shard needs at least one partition; lower the shard count or raise NumPartitions", c.Shards, c.NumPartitions)
	case c.Shards > 1 && c.IcntLatency == 0:
		return fmt.Errorf("sim: Shards %d requires IcntLatency >= 1 — the interconnect latency is the parallel engine's conservative lookahead window", c.Shards)
	}
	if err := validateCacheGeom("L1", c.L1Bytes, c.L1Assoc); err != nil {
		return err
	}
	if err := validateCacheGeom("L2 bank", c.L2BankBytes, c.L2Assoc); err != nil {
		return err
	}
	if c.L2BanksPerPartition <= 0 {
		return fmt.Errorf("sim: L2BanksPerPartition must be positive")
	}
	// EncSWCrypto has no hardware metadata caches at all, so its runs
	// ignore the metadata-cache geometry entirely.
	if sc := &c.Secure; sc.Encryption != EncNone && sc.Encryption != EncSWCrypto {
		if sc.MetaAssoc <= 0 {
			return fmt.Errorf("sim: MetaAssoc must be positive with encryption enabled")
		}
		if !sc.PerfectMeta && !sc.UnlimitedMeta {
			if sc.Unified {
				if err := validateCacheGeom("unified metadata cache", sc.UnifiedBytes, sc.MetaAssoc); err != nil {
					return err
				}
			} else if err := validateCacheGeom("metadata cache", sc.MetaCacheBytes, sc.MetaAssoc); err != nil {
				return err
			}
		}
	}
	if err := c.DRAM.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if err := c.Faults.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if err := c.Probe.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	return nil
}

// validateCacheGeom mirrors internal/cache.New's constructor panics as
// errors: positive size and associativity, capacity a whole number of
// lines and of sets.
func validateCacheGeom(name string, sizeBytes, assoc int) error {
	if assoc <= 0 {
		return fmt.Errorf("sim: %s associativity must be positive (got %d)", name, assoc)
	}
	if sizeBytes <= 0 || sizeBytes%geometry.LineSize != 0 {
		return fmt.Errorf("sim: %s size %d not a positive multiple of the %d B line", name, sizeBytes, geometry.LineSize)
	}
	return nil
}
