package sim

import (
	"strings"
	"testing"

	"gpusecmem/internal/faults"
	"gpusecmem/internal/trace"
)

// testCycles keeps unit runs fast; steady state is reached within a
// few thousand cycles for the synthetic workloads.
const testCycles = 8000

func runFor(t testing.TB, cfg Config, bench string) *Result {
	t.Helper()
	cfg.MaxCycles = testCycles
	r, err := Run(cfg, bench)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.NumSMs = 0 },
		func(c *Config) { c.IssueWidth = 0 },
		func(c *Config) { c.NumPartitions = 0 },
		func(c *Config) { c.MaxCycles = 0 },
		func(c *Config) { c.ProtectedBytes = 100 },
		func(c *Config) { c.Secure.Encryption = EncDirect; c.Secure.Tree = true; c.Secure.MAC = false },
		func(c *Config) { c.Secure.Encryption = EncCounter; c.Secure.AESEngines = 0 },
		// Geometry and timing that used to panic deep inside cache.New
		// and dram.New must be rejected up front.
		func(c *Config) { c.L1Assoc = 0 },
		func(c *Config) { c.L1Bytes = 100 }, // not a multiple of the line size
		func(c *Config) { c.L2Assoc = -4 },
		func(c *Config) { c.L2BanksPerPartition = 0 },
		func(c *Config) { c.DRAM.Banks = 0 },
		func(c *Config) { c.DRAM.RowHitCycles = c.DRAM.RowMissCycles + 1 },
		func(c *Config) { c.DRAM.MaxIssuePerCycle = 0 },
		func(c *Config) { c.Faults = &faults.Plan{Rate: 2} },
		func(c *Config) { c.Faults = &faults.Plan{Rate: 0.1, Sites: faults.SiteMask(1 << 30)} },
		// The related-work backends have their own envelope: share
		// count bounds, non-negative latencies, and no integrity
		// hardware to combine with.
		func(c *Config) { *c = Scattered(1) },
		func(c *Config) { *c = Scattered(9) },
		func(c *Config) { *c = Scattered(2); c.Secure.ScatterCombineLatency = -1 },
		func(c *Config) { *c = Scattered(2); c.Secure.MAC = true },
		func(c *Config) { *c = Scattered(2); c.Secure.Tree = true },
		func(c *Config) { *c = Scattered(2); c.Secure.Unified = true },
		func(c *Config) { *c = SWCrypto(-1) },
		func(c *Config) { *c = SWCrypto(320); c.Secure.MAC = true },
		func(c *Config) { *c = SWCrypto(320); c.Secure.Tree = true },
		func(c *Config) { *c = SWCrypto(320); c.Secure.Unified = true },
	}
	for i, mutate := range bad {
		cfg := Baseline()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: config accepted", i)
		}
	}
	for _, good := range []Config{Baseline(), Scattered(2), Scattered(8), SWCrypto(0), SWCrypto(320)} {
		if err := good.Validate(); err != nil {
			t.Fatalf("%s rejected: %v", good.Secure.Encryption, err)
		}
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	_, err := Run(Baseline(), "nonexistent")
	if err == nil {
		t.Fatal("want error for unknown benchmark")
	}
	if !strings.Contains(err.Error(), "unknown benchmark") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestDeterminism: identical configurations produce bit-identical
// results — required for the memoizing experiment harness.
func TestDeterminism(t *testing.T) {
	a := runFor(t, SecureMem(), "fdtd2d")
	b := runFor(t, SecureMem(), "fdtd2d")
	if a.Instructions != b.Instructions || a.Cycles != b.Cycles {
		t.Fatalf("IPC differs: %d/%d vs %d/%d", a.Instructions, a.Cycles, b.Instructions, b.Cycles)
	}
	if a.RequestsByKind != b.RequestsByKind {
		t.Fatalf("traffic differs: %v vs %v", a.RequestsByKind, b.RequestsByKind)
	}
}

// TestBaselineNoMetadataTraffic: the insecure baseline must not touch
// counters, MACs, or the tree.
func TestBaselineNoMetadataTraffic(t *testing.T) {
	r := runFor(t, Baseline(), "fdtd2d")
	for k := KindCounter; k <= KindWB; k++ {
		if r.RequestsByKind[k] != 0 {
			t.Errorf("baseline produced %s traffic: %d", k, r.RequestsByKind[k])
		}
	}
	if r.RequestsByKind[KindData] == 0 {
		t.Error("no data traffic at all")
	}
}

// TestBaselineClasses: one representative workload per Table IV class
// lands in its class.
func TestBaselineClasses(t *testing.T) {
	cases := []struct {
		bench  string
		lo, hi float64
	}{
		{"heartwall", 0, 0.20},
		{"cfd", 0.15, 0.55},
		{"fdtd2d", 0.50, 1.05},
	}
	for _, tc := range cases {
		r := runFor(t, Baseline(), tc.bench)
		bw := r.BandwidthUtilization()
		if bw < tc.lo || bw > tc.hi {
			t.Errorf("%s: bandwidth %.2f outside [%.2f, %.2f]", tc.bench, bw, tc.lo, tc.hi)
		}
	}
}

// TestSecureMemGeneratesMetadataTraffic: counter-mode + MAC + BMT
// produces all four metadata kinds for a streaming workload.
func TestSecureMemGeneratesMetadataTraffic(t *testing.T) {
	r := runFor(t, SecureMem(), "lbm")
	if r.RequestsByKind[KindCounter] == 0 {
		t.Error("no counter traffic")
	}
	if r.RequestsByKind[KindMAC] == 0 {
		t.Error("no MAC traffic")
	}
	if r.RequestsByKind[KindTree] == 0 {
		t.Error("no tree traffic")
	}
}

// TestPerfectMetaCachesRecoverBaseline is the paper's Fig 3 diagnosis:
// with ideal metadata caches the secure GPU is close to the baseline,
// proving metadata *traffic* (not crypto latency) is the bottleneck.
func TestPerfectMetaCachesRecoverBaseline(t *testing.T) {
	base := runFor(t, Baseline(), "fdtd2d")
	perf := SecureMem()
	perf.Secure.PerfectMeta = true
	r := runFor(t, perf, "fdtd2d")
	if n := r.NormalizedIPC(base); n < 0.9 {
		t.Fatalf("perfect metadata caches: normalized IPC %.3f, want >= 0.9", n)
	}
	for k := KindCounter; k <= KindWB; k++ {
		if r.RequestsByKind[k] != 0 {
			t.Errorf("perfect caches still produced %s traffic", k)
		}
	}
}

// TestZeroCryptoDoesNotHelp: zero-latency AES/MAC barely changes
// secureMem performance (Fig 3's other half).
func TestZeroCryptoDoesNotHelp(t *testing.T) {
	base := runFor(t, Baseline(), "fdtd2d")
	sec := SecureMem()
	sec.Secure.MetaMSHRs = 0
	zc := sec
	zc.Secure.AESLatency = 0
	zc.Secure.MACLatency = 0
	n1 := runFor(t, sec, "fdtd2d").NormalizedIPC(base)
	n2 := runFor(t, zc, "fdtd2d").NormalizedIPC(base)
	if n2 > n1+0.1 {
		t.Fatalf("zero crypto recovered too much: %.3f vs %.3f", n2, n1)
	}
}

// TestMSHRsFilterRedundantTraffic: MSHRs on metadata caches cut
// counter traffic and improve IPC (Fig 6).
func TestMSHRsFilterRedundantTraffic(t *testing.T) {
	noMSHR := SecureMem()
	noMSHR.Secure.MetaMSHRs = 0
	with := SecureMem()
	r0 := runFor(t, noMSHR, "streamcluster")
	r64 := runFor(t, with, "streamcluster")
	if r64.RequestsByKind[KindCounter] >= r0.RequestsByKind[KindCounter] {
		t.Fatalf("MSHRs did not reduce counter traffic: %d vs %d",
			r64.RequestsByKind[KindCounter], r0.RequestsByKind[KindCounter])
	}
	if r64.IPC() <= r0.IPC() {
		t.Fatalf("MSHRs did not improve IPC: %.1f vs %.1f", r64.IPC(), r0.IPC())
	}
}

// TestSecondaryMissesDominate is Fig 5: with the sectored L2 and
// streaming accesses, most metadata misses are secondary.
func TestSecondaryMissesDominate(t *testing.T) {
	cfg := SecureMem()
	cfg.Secure.MetaMSHRs = 0
	r := runFor(t, cfg, "streamcluster")
	if sr := r.Meta[MetaCounter].SecondaryRatio(); sr < 0.5 {
		t.Errorf("counter secondary ratio %.2f, want > 0.5", sr)
	}
	if sr := r.Meta[MetaMAC].SecondaryRatio(); sr < 0.5 {
		t.Errorf("MAC secondary ratio %.2f, want > 0.5", sr)
	}
}

// TestSectoredL2CausesSecondaryMisses is the Section V-B mechanism: a
// non-sectored L2 (whole-line fetches) produces far fewer secondary
// metadata misses.
func TestSectoredL2CausesSecondaryMisses(t *testing.T) {
	sec := SecureMem()
	sec.Secure.MetaMSHRs = 0
	nonsec := sec
	nonsec.SectoredL2 = false
	rs := runFor(t, sec, "streamcluster")
	rn := runFor(t, nonsec, "streamcluster")
	if rn.Meta[MetaCounter].SecondaryRatio() >= rs.Meta[MetaCounter].SecondaryRatio() {
		t.Fatalf("non-sectored L2 should reduce secondary misses: %.2f vs %.2f",
			rn.Meta[MetaCounter].SecondaryRatio(), rs.Meta[MetaCounter].SecondaryRatio())
	}
}

// TestBiggerMetaCachesHelp is Fig 7's direction: 64KB metadata caches
// beat 2KB ones.
func TestBiggerMetaCachesHelp(t *testing.T) {
	small := SecureMem()
	big := SecureMem()
	big.Secure.MetaCacheBytes = 64 * 1024
	rs := runFor(t, small, "lbm")
	rb := runFor(t, big, "lbm")
	if rb.IPC() <= rs.IPC() {
		t.Fatalf("64KB caches not better than 2KB: %.1f vs %.1f", rb.IPC(), rs.IPC())
	}
}

// TestDirectEncryptionNearFree is Fig 15: with 40-cycle latency and
// no integrity metadata, direct encryption costs almost nothing on a
// latency-tolerant workload.
func TestDirectEncryptionNearFree(t *testing.T) {
	base := runFor(t, Baseline(), "srad_v2")
	r := runFor(t, DirectMem(40, false, false), "srad_v2")
	if n := r.NormalizedIPC(base); n < 0.9 {
		t.Fatalf("direct_40 normalized IPC %.3f, want >= 0.9", n)
	}
}

// TestDirectLatencySensitivityOrder: higher AES latency cannot help,
// and nw (tiny kernel) suffers more than a well-occupied workload.
func TestDirectLatencySensitivityOrder(t *testing.T) {
	base := runFor(t, Baseline(), "nw")
	n40 := runFor(t, DirectMem(40, false, false), "nw").NormalizedIPC(base)
	n160 := runFor(t, DirectMem(160, false, false), "nw").NormalizedIPC(base)
	if n160 > n40+0.02 {
		t.Fatalf("latency 160 beat latency 40: %.3f vs %.3f", n160, n40)
	}
	baseS := runFor(t, Baseline(), "srad_v2")
	s160 := runFor(t, DirectMem(160, false, false), "srad_v2").NormalizedIPC(baseS)
	if s160+0.02 < n160 {
		t.Fatalf("well-occupied workload should tolerate latency at least as well: srad %.3f vs nw %.3f", s160, n160)
	}
}

// TestDirectBeatsCounterMode is Fig 16: for encryption-only designs on
// a memory-intensive workload, direct encryption outperforms counter
// mode (counter traffic is pure overhead).
func TestDirectBeatsCounterMode(t *testing.T) {
	base := runFor(t, Baseline(), "lbm")
	direct := runFor(t, DirectMem(40, false, false), "lbm").NormalizedIPC(base)
	ctr := SecureMem()
	ctr.Secure.MAC = false
	ctr.Secure.Tree = false
	counter := runFor(t, ctr, "lbm").NormalizedIPC(base)
	if direct <= counter {
		t.Fatalf("direct (%.3f) should beat counter mode (%.3f) on lbm", direct, counter)
	}
}

// TestBMTAddsOverheadToCounterMode: protecting counters with the BMT
// costs additional performance (Fig 16's ctr vs ctr_bmt).
func TestBMTAddsOverheadToCounterMode(t *testing.T) {
	base := runFor(t, Baseline(), "fdtd2d")
	ctr := SecureMem()
	ctr.Secure.MAC = false
	ctr.Secure.Tree = false
	ctrBMT := SecureMem()
	ctrBMT.Secure.MAC = false
	nc := runFor(t, ctr, "fdtd2d").NormalizedIPC(base)
	nb := runFor(t, ctrBMT, "fdtd2d").NormalizedIPC(base)
	if nb > nc+0.02 {
		t.Fatalf("ctr_bmt (%.3f) should not beat ctr (%.3f)", nb, nc)
	}
}

// TestOneAESEngineSuffices is Fig 12: halving AES throughput changes
// performance only marginally.
func TestOneAESEngineSuffices(t *testing.T) {
	two := runFor(t, SecureMem(), "srad_v2")
	one := SecureMem()
	one.Secure.AESEngines = 1
	r1 := runFor(t, one, "srad_v2")
	ratio := r1.IPC() / two.IPC()
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("1 vs 2 engines ratio %.3f, want ~1", ratio)
	}
}

// TestUnifiedVsSeparate is Fig 8: the unified cache must not beat
// separate caches on a streaming workload, and its per-type miss rates
// must not improve (Fig 9).
func TestUnifiedVsSeparate(t *testing.T) {
	sep := runFor(t, SecureMem(), "lbm")
	uni := SecureMem()
	uni.Secure.Unified = true
	ru := runFor(t, uni, "lbm")
	if ru.IPC() > sep.IPC()*1.05 {
		t.Fatalf("unified (%.1f) significantly beat separate (%.1f)", ru.IPC(), sep.IPC())
	}
}

// TestReuseProfiling is Figs 10/11: fdtd2d counter and MAC accesses
// are dominated by reuse distance 0.
func TestReuseProfiling(t *testing.T) {
	cfg := SecureMem()
	cfg.ProfileReuse = true
	r := runFor(t, cfg, "fdtd2d")
	if r.CounterReuse == nil || r.MACReuse == nil {
		t.Fatal("profilers missing")
	}
	cf := r.CounterReuse.Fractions()
	if cf[0] < 0.5 {
		t.Errorf("counter reuse distance 0 fraction %.2f, want > 0.5", cf[0])
	}
	mf := r.MACReuse.Fractions()
	if mf[0] < 0.5 {
		t.Errorf("MAC reuse distance 0 fraction %.2f, want > 0.5", mf[0])
	}
}

// TestProfilingOffByDefault: no profiler allocations unless asked.
func TestProfilingOffByDefault(t *testing.T) {
	r := runFor(t, SecureMem(), "fdtd2d")
	if r.CounterReuse != nil || r.MACReuse != nil {
		t.Fatal("profilers active without ProfileReuse")
	}
}

// TestBandwidthNeverExceedsPeakMuch: accounting sanity (issue-time
// counting may overshoot the last partial transfer only slightly).
func TestBandwidthNeverExceedsPeakMuch(t *testing.T) {
	for _, b := range []string{"fdtd2d", "lbm", "streamcluster"} {
		r := runFor(t, Baseline(), b)
		if bw := r.BandwidthUtilization(); bw > 1.06 {
			t.Errorf("%s: bandwidth %.3f exceeds peak", b, bw)
		}
	}
}

// TestRequestSharesSumToOne: the Fig 4 breakdown is a partition of all
// DRAM requests.
func TestRequestSharesSumToOne(t *testing.T) {
	r := runFor(t, SecureMem(), "lbm")
	sum := 0.0
	for k := KindData; k <= KindWB; k++ {
		sum += r.RequestShare(k)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("request shares sum to %.4f", sum)
	}
}

// TestSmallKernelUsesFewSMs: nw's ActiveSMs cap is honoured.
func TestSmallKernelUsesFewSMs(t *testing.T) {
	cfg := Baseline()
	cfg.MaxCycles = 2000
	gen := trace.MustNew("nw")
	g, err := New(cfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.sms) != gen.ActiveSMs() {
		t.Fatalf("nw uses %d SMs, want %d", len(g.sms), gen.ActiveSMs())
	}
}

// TestWarpOverride: Config.WarpOverride replaces the generator's warp
// count.
func TestWarpOverride(t *testing.T) {
	cfg := Baseline()
	cfg.MaxCycles = 2000
	cfg.WarpOverride = 3
	g, err := New(cfg, trace.MustNew("fdtd2d"))
	if err != nil {
		t.Fatal(err)
	}
	if got := g.gen.WarpsPerSM(); got != 3 {
		t.Fatalf("warp override = %d, want 3", got)
	}
}

// TestPartitionLocalAddressing: the global->partition mapping is a
// bijection on 256-byte chunks.
func TestPartitionLocalAddressing(t *testing.T) {
	cfg := Baseline()
	cfg.MaxCycles = 1000
	g, err := New(cfg, trace.MustNew("fdtd2d"))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]uint64]uint64{}
	for addr := uint64(0); addr < 1<<20; addr += 4096 + 256 {
		part, local := g.partitionOf(addr)
		key := [2]uint64{uint64(part), local}
		if prev, dup := seen[key]; dup {
			t.Fatalf("addresses %#x and %#x collide at partition %d local %#x", prev, addr, part, local)
		}
		seen[key] = addr
		if part < 0 || part >= cfg.NumPartitions {
			t.Fatalf("partition %d out of range", part)
		}
	}
}

// TestWritesReachDRAM: a write-heavy workload produces DRAM write
// traffic through L2 evictions.
func TestWritesReachDRAM(t *testing.T) {
	r := runFor(t, Baseline(), "lbm")
	if r.BytesByKind[KindData] == 0 {
		t.Fatal("no data bytes at all")
	}
	g, err := New(Baseline(), trace.MustNew("lbm"))
	if err != nil {
		t.Fatal(err)
	}
	g.cfg.MaxCycles = testCycles
	res, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.L2.Writebacks == 0 {
		t.Fatal("lbm produced no L2 writebacks")
	}
}

// TestMetaWritebacksAppear: with MSHRs (so the DRAM queue drains),
// write-heavy workloads generate metadata writeback traffic.
func TestMetaWritebacksAppear(t *testing.T) {
	r := runFor(t, SecureMem(), "lbm")
	if r.RequestsByKind[KindWB] == 0 {
		t.Fatal("no metadata writebacks for lbm")
	}
}

// TestEncryptionLatencyHiddenInCounterMode: raising AES latency from
// 40 to 160 changes counter-mode performance much less than it changes
// direct encryption on a latency-sensitive workload (the paper's core
// counter-mode property).
func TestEncryptionLatencyHiddenInCounterMode(t *testing.T) {
	// Perfect metadata caches isolate the latency question: the
	// counter is always on-chip, so the OTP can overlap the data fetch.
	mk := func(enc EncryptionKind, lat int) float64 {
		var cfg Config
		if enc == EncCounter {
			cfg = SecureMem()
			cfg.Secure.MAC = false
			cfg.Secure.Tree = false
			cfg.Secure.PerfectMeta = true
		} else {
			cfg = DirectMem(lat, false, false)
		}
		cfg.Secure.AESLatency = lat
		return runFor(t, cfg, "nw").IPC()
	}
	// At the default 40-cycle latency the OTP hides entirely behind
	// the DRAM fetch; at 160 cycles it exceeds the unloaded DRAM
	// latency and is only partially hidden, but counter mode must
	// still lose strictly less than direct encryption, which exposes
	// the full latency.
	if c0, c40 := mk(EncCounter, 0), mk(EncCounter, 40); c0-c40 > 0.5 {
		t.Fatalf("40-cycle AES not hidden in counter mode: %.2f -> %.2f IPC", c0, c40)
	}
	ctrDrop := mk(EncCounter, 0) - mk(EncCounter, 160)
	dirDrop := mk(EncDirect, 0) - mk(EncDirect, 160)
	if ctrDrop >= dirDrop {
		t.Fatalf("counter mode should hide AES latency better: lost %.2f IPC vs direct's %.2f", ctrDrop, dirDrop)
	}
}

// TestSelectiveEncryptionScales: shrinking the protected fraction
// monotonically reduces metadata traffic and recovers performance;
// fraction 0 behaves like the baseline plus idle engines.
func TestSelectiveEncryptionScales(t *testing.T) {
	base := runFor(t, Baseline(), "fdtd2d")
	mk := func(frac float64) *Result {
		cfg := SecureMem()
		cfg.Secure.ProtectedFraction = frac
		return runFor(t, cfg, "fdtd2d")
	}
	full := mk(1.0)
	half := mk(0.5)
	none := mk(0.0)
	if !(none.IPC() >= half.IPC() && half.IPC() >= full.IPC()) {
		t.Fatalf("IPC not monotone in coverage: %.1f / %.1f / %.1f",
			full.IPC(), half.IPC(), none.IPC())
	}
	meta := func(r *Result) uint64 {
		return r.RequestsByKind[KindCounter] + r.RequestsByKind[KindMAC] + r.RequestsByKind[KindTree]
	}
	if !(meta(none) == 0 && meta(half) < meta(full)) {
		t.Fatalf("metadata traffic not monotone: %d / %d / %d", meta(full), meta(half), meta(none))
	}
	if n := none.NormalizedIPC(base); n < 0.95 {
		t.Fatalf("0%% coverage should match baseline: %.3f", n)
	}
}

// TestSelectiveValidation: out-of-range fractions are rejected.
func TestSelectiveValidation(t *testing.T) {
	cfg := SecureMem()
	cfg.Secure.ProtectedFraction = 1.5
	if err := cfg.Validate(); err == nil {
		t.Fatal("fraction 1.5 accepted")
	}
	cfg.Secure.ProtectedFraction = -0.1
	if err := cfg.Validate(); err == nil {
		t.Fatal("fraction -0.1 accepted")
	}
}
