// Package trace provides synthetic workload generators standing in
// for the paper's Rodinia / Parboil / Polybench benchmarks (Table IV).
//
// Each generator reproduces the *memory behaviour class* that drives
// every experiment in the paper: access pattern (streaming, stencil,
// strided, gather, tree traversal, blocked/compute-resident), arithmetic
// intensity, SIMT occupancy, coalescing degree, and working-set size —
// calibrated so the baseline simulation lands in the paper's
// bandwidth-utilization class (non / medium / memory-intensive) with
// an IPC of comparable magnitude. All generators are deterministic:
// irregular patterns derive addresses from a splitmix64 hash of
// (sm, warp, iter), never from a global RNG.
//
// Concurrency and aliasing contract: generators are stateless after
// construction — every address is a pure function of (sm, warp, iter)
// — so one generator instance may serve any number of goroutines, and
// the parallel partition engine needs no special handling for them.
package trace

import (
	"fmt"
	"strings"

	"gpusecmem/internal/smcore"
)

// SectorSize is the coalesced access granularity (32 B).
const SectorSize = 32

// LineSize is the 128 B cache-line size.
const LineSize = 128

// splitmix64 is the deterministic hash behind all irregular patterns.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash3 mixes the (sm, warp, iter) coordinates.
func hash3(sm, warp, iter int) uint64 {
	return splitmix64(uint64(sm)<<40 ^ uint64(warp)<<20 ^ uint64(iter))
}

// sectors builds n consecutive sector addresses starting at base,
// each aligned down to SectorSize.
func sectors(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	a := base / SectorSize * SectorSize
	for i := range out {
		out[i] = a + uint64(i)*SectorSize
	}
	return out
}

// Config parameterizes a synthetic kernel. The pattern-specific
// fields are documented on each pattern constructor.
type Config struct {
	Name       string
	Warps      int // warps per SM
	SMs        int // 0 = all SMs
	Compute    int // compute instructions per step
	Spacing    int // issue spacing of compute instructions
	Lanes      int // active SIMT lanes
	SectorsPer int // coalesced sectors per memory op
	WriteEvery int // every n-th memory op is a store (0 = never)
	// WorkingSet is the per-benchmark footprint in bytes; patterns
	// wrap within it.
	WorkingSet uint64
	// Streams is the number of concurrently traversed arrays
	// (multi-array kernels like fdtd2d, lbm).
	Streams int
	// Reuse, for patterns with temporal locality, is how many times a
	// tile is re-touched before moving on.
	Reuse int
}

// kernel is the shared implementation: a Config plus a pattern
// function computing the base address of a step.
type kernel struct {
	cfg  Config
	base func(k *kernel, sm, warp, iter int) uint64
}

var _ smcore.Generator = (*kernel)(nil)

func (k *kernel) Name() string    { return k.cfg.Name }
func (k *kernel) WarpsPerSM() int { return k.cfg.Warps }
func (k *kernel) ActiveSMs() int  { return k.cfg.SMs }

func (k *kernel) Next(sm, warp, iter int) smcore.WarpOp {
	op := smcore.WarpOp{
		ComputeInstrs:  k.cfg.Compute,
		ComputeSpacing: k.cfg.Spacing,
		ActiveLanes:    k.cfg.Lanes,
	}
	base := k.base(k, sm, warp, iter) % k.cfg.WorkingSet
	op.Sectors = sectors(base, k.cfg.SectorsPer)
	if k.cfg.WriteEvery > 0 && iter%k.cfg.WriteEvery == k.cfg.WriteEvery-1 {
		op.Write = true
	}
	return op
}

// totalWarps is the grid width of a kernel: resident warps across all
// active SMs. Grid-stride patterns advance by this per step so that
// concurrently running warps touch *adjacent* lines — the canonical
// coalesced GPU layout, and the reason one metadata line is shared by
// many in-flight requests (Section V-B).
func (k *kernel) totalWarps() uint64 {
	smCount := k.cfg.SMs
	if smCount <= 0 {
		smCount = 80
	}
	return uint64(smCount * k.cfg.Warps)
}

// blockWarps is how many warps share one thread block's data chunk.
// Warps inside a block access adjacent lines (coalesced bursts, the
// Section V-B pattern); different blocks stream chunks spread across
// the whole array, which is what keeps the *concurrent* metadata
// working set far larger than the 2 KB metadata caches — the paper's
// workloads thrash them even with perfect per-burst merging.
const blockWarps = 32

// chunkOf splits an array of arrBytes into one contiguous chunk per
// thread block and returns this warp's block, lane, and chunk size.
func (k *kernel) chunkOf(warpID uint64, arrBytes uint64) (block, lane, chunk uint64) {
	block = warpID / blockWarps
	lane = warpID % blockWarps
	numBlocks := k.totalWarps() / blockWarps
	if numBlocks == 0 {
		numBlocks = 1
	}
	chunk = arrBytes / numBlocks / LineSize * LineSize
	if chunk == 0 {
		chunk = LineSize
	}
	return block, lane, chunk
}

// streamBase: block-chunked streaming — the warps of a block sweep
// their chunk together in grid-stride order, while the blocks
// themselves are spread across the array. Multi-stream kernels
// round-robin Streams arrays at distinct offsets.
func streamBase(k *kernel, sm, warp, iter int) uint64 {
	streams := k.cfg.Streams
	if streams <= 0 {
		streams = 1
	}
	stride := uint64(k.cfg.SectorsPer) * SectorSize
	warpID := uint64(sm*k.cfg.Warps + warp)
	s := uint64(iter % streams)
	step := uint64(iter / streams)
	arr := k.cfg.WorkingSet / uint64(streams)
	block, lane, chunk := k.chunkOf(warpID, arr)
	pos := (lane + step*blockWarps) * stride % chunk
	return s*arr + block*chunk + pos
}

// stencilBase: block-chunked 2D row-major neighbourhood; each tile is
// touched Reuse times with row offsets (same row, row above, row
// below) within the block's chunk.
func stencilBase(k *kernel, sm, warp, iter int) uint64 {
	reuse := k.cfg.Reuse
	if reuse <= 0 {
		reuse = 1
	}
	tile := uint64(iter / reuse)
	neighbour := iter % reuse
	warpID := uint64(sm*k.cfg.Warps + warp)
	stride := uint64(k.cfg.SectorsPer) * SectorSize
	block, lane, chunk := k.chunkOf(warpID, k.cfg.WorkingSet)
	rowBytes := chunk / 4 / LineSize * LineSize
	base := (lane + tile*blockWarps) * stride % chunk
	switch neighbour % 3 {
	case 1:
		base = (base + rowBytes) % chunk
	case 2:
		base = (base + 2*rowBytes) % chunk
	}
	return block*chunk + base
}

// gatherBase: hash-random addresses over the working set (kmeans
// membership, bfs frontiers).
func gatherBase(k *kernel, sm, warp, iter int) uint64 {
	return hash3(sm, warp, iter)
}

// treeBase: root-biased random descent — early levels (small
// addresses) are re-touched constantly and cache well; deep levels are
// effectively random (b+tree).
func treeBase(k *kernel, sm, warp, iter int) uint64 {
	h := hash3(sm, warp, iter)
	depth := iter % 8 // descend 8 levels then restart
	// Level d occupies a 16x larger region than level d-1.
	levelSpan := k.cfg.WorkingSet >> (2 * (7 - depth))
	if levelSpan == 0 {
		levelSpan = LineSize
	}
	return h % levelSpan
}

// blockBase: a tiny per-warp tile reused heavily (compute-bound
// kernels whose data lives in L1). The Reuse field bounds the tile to
// Reuse lines so an SM's resident warps fit its L1.
func blockBase(k *kernel, sm, warp, iter int) uint64 {
	lines := k.cfg.Reuse
	if lines <= 0 {
		lines = 8
	}
	warpID := uint64(sm*k.cfg.Warps + warp)
	tile := uint64(lines) * LineSize * 2
	return warpID*tile + uint64(iter%lines)*LineSize
}

// New constructs the named benchmark generator. The names follow the
// paper's Table IV; use Names for the catalogue. An unknown name is an
// error, not a panic, so CLIs and sweeps can report it and continue.
func New(name string) (smcore.Generator, error) {
	cfg, ok := catalogue[name]
	if !ok {
		return nil, fmt.Errorf("trace: unknown benchmark %q (known: %s)", name, strings.Join(Names(), " "))
	}
	return &kernel{cfg: cfg.Config, base: patterns[cfg.patternName]}, nil
}

// MustNew is New for static benchmark names (tests, examples); it
// panics on an unknown name.
func MustNew(name string) smcore.Generator {
	gen, err := New(name)
	if err != nil {
		panic(err)
	}
	return gen
}

// Names lists the benchmarks in the paper's Table IV order.
func Names() []string {
	return []string{
		"heartwall", "lavaMD", "nw", "b+tree",
		"backprop", "cfd", "dwt2d", "kmeans", "bfs",
		"srad_v2", "streamcluster", "2Dconvolution", "fdtd2d", "lbm",
	}
}

// Class is the paper's bandwidth-utilization categorization.
type Class int

const (
	// NonIntensive: < 20% of peak DRAM bandwidth.
	NonIntensive Class = iota
	// MediumIntensive: 20%..50%.
	MediumIntensive
	// MemoryIntensive: > 50%.
	MemoryIntensive
)

func (c Class) String() string {
	switch c {
	case NonIntensive:
		return "non-memory-intensive"
	case MediumIntensive:
		return "medium-memory-intensive"
	}
	return "memory-intensive"
}

// PaperClass returns the paper's class for a benchmark (Table IV).
func PaperClass(name string) Class {
	switch name {
	case "heartwall", "lavaMD", "nw", "b+tree":
		return NonIntensive
	case "backprop", "cfd", "dwt2d", "kmeans", "bfs":
		return MediumIntensive
	default:
		return MemoryIntensive
	}
}

// PaperIPC returns the paper's reported baseline IPC (Table IV).
func PaperIPC(name string) float64 {
	return map[string]float64{
		"heartwall": 1195.37, "lavaMD": 4615.23, "nw": 23.90, "b+tree": 2768.61,
		"backprop": 3067.61, "cfd": 1076.98, "dwt2d": 784.70, "kmeans": 97.04,
		"bfs": 699.51, "srad_v2": 3306.82, "streamcluster": 1178.18,
		"2Dconvolution": 2487.22, "fdtd2d": 1773.95, "lbm": 552.12,
	}[name]
}

type catalogueEntry struct {
	Config
	patternName string
}

var patterns = map[string]func(k *kernel, sm, warp, iter int) uint64{
	"stream":  streamBase,
	"stencil": stencilBase,
	"gather":  gatherBase,
	"tree":    treeBase,
	"block":   blockBase,
}

const mb = 1 << 20

// catalogue holds the per-benchmark calibration. Working sets are per
// the whole GPU; the simulator maps them across partitions.
var catalogue = map[string]catalogueEntry{
	// --- non memory intensive ---
	"heartwall": {Config{Name: "heartwall", Warps: 16, Compute: 24, Spacing: 32,
		Lanes: 32, SectorsPer: 2, WorkingSet: 12 * mb, Reuse: 8}, "block"},
	"lavaMD": {Config{Name: "lavaMD", Warps: 16, Compute: 40, Spacing: 1,
		Lanes: 30, SectorsPer: 2, WorkingSet: 16 * mb, Reuse: 8}, "block"},
	"nw": {Config{Name: "nw", Warps: 2, SMs: 8, Compute: 4, Spacing: 2,
		Lanes: 16, SectorsPer: 2, WorkingSet: 64 * mb}, "stream"},
	"b+tree": {Config{Name: "b+tree", Warps: 24, Compute: 20, Spacing: 1,
		Lanes: 20, SectorsPer: 1, WorkingSet: 64 * mb}, "tree"},

	// --- medium memory intensive ---
	"backprop": {Config{Name: "backprop", Warps: 32, Compute: 44, Spacing: 24,
		Lanes: 32, SectorsPer: 4, WriteEvery: 4, WorkingSet: 256 * mb, Streams: 2}, "stream"},
	"cfd": {Config{Name: "cfd", Warps: 24, Compute: 11, Spacing: 48,
		Lanes: 32, SectorsPer: 4, WriteEvery: 6, WorkingSet: 48 * mb, Streams: 4}, "stream"},
	"dwt2d": {Config{Name: "dwt2d", Warps: 16, Compute: 8, Spacing: 48,
		Lanes: 32, SectorsPer: 4, WriteEvery: 3, WorkingSet: 32 * mb, Streams: 2}, "stream"},
	"kmeans": {Config{Name: "kmeans", Warps: 8, Compute: 0, Spacing: 1,
		Lanes: 32, SectorsPer: 4, WorkingSet: 256 * mb}, "gather"},
	"bfs": {Config{Name: "bfs", Warps: 12, Compute: 12, Spacing: 22,
		Lanes: 16, SectorsPer: 4, WriteEvery: 8, WorkingSet: 64 * mb}, "gather"},

	// --- memory intensive ---
	"srad_v2": {Config{Name: "srad_v2", Warps: 32, Compute: 20, Spacing: 20,
		Lanes: 32, SectorsPer: 4, WriteEvery: 5, WorkingSet: 512 * mb, Streams: 2}, "stream"},
	"streamcluster": {Config{Name: "streamcluster", Warps: 8, Compute: 7, Spacing: 1,
		Lanes: 32, SectorsPer: 4, WorkingSet: 512 * mb}, "stream"},
	"2Dconvolution": {Config{Name: "2Dconvolution", Warps: 32, Compute: 24, Spacing: 28,
		Lanes: 32, SectorsPer: 4, WriteEvery: 9, WorkingSet: 512 * mb, Reuse: 3}, "stencil"},
	"fdtd2d": {Config{Name: "fdtd2d", Warps: 32, Compute: 10, Spacing: 4,
		Lanes: 32, SectorsPer: 4, WriteEvery: 4, WorkingSet: 512 * mb, Streams: 3}, "stream"},
	"lbm": {Config{Name: "lbm", Warps: 32, Compute: 4, Spacing: 2,
		Lanes: 32, SectorsPer: 4, WriteEvery: 2, WorkingSet: 512 * mb, Streams: 4}, "stream"},
}
