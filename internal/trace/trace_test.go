package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCatalogueComplete(t *testing.T) {
	if len(Names()) != 14 {
		t.Fatalf("Table IV has 14 benchmarks, got %d", len(Names()))
	}
	for _, n := range Names() {
		g := MustNew(n)
		if g.Name() != n {
			t.Errorf("%s: Name() = %s", n, g.Name())
		}
		if g.WarpsPerSM() <= 0 {
			t.Errorf("%s: no warps", n)
		}
	}
}

func TestNewUnknown(t *testing.T) {
	if _, err := New("no-such-benchmark"); err == nil {
		t.Fatal("want error for unknown benchmark")
	} else if !strings.Contains(err.Error(), "fdtd2d") {
		t.Fatalf("error should list the valid benchmarks, got %q", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic from MustNew")
		}
	}()
	MustNew("no-such-benchmark")
}

// TestDeterminism: generators must be pure functions of (sm, warp,
// iter) — the simulator and experiments rely on reproducible runs.
func TestDeterminism(t *testing.T) {
	for _, n := range Names() {
		g1, g2 := MustNew(n), MustNew(n)
		for iter := 0; iter < 50; iter++ {
			a := g1.Next(3, 5, iter)
			b := g2.Next(3, 5, iter)
			if len(a.Sectors) != len(b.Sectors) || a.Write != b.Write {
				t.Fatalf("%s: nondeterministic op at iter %d", n, iter)
			}
			for i := range a.Sectors {
				if a.Sectors[i] != b.Sectors[i] {
					t.Fatalf("%s: nondeterministic address at iter %d", n, iter)
				}
			}
		}
	}
}

// TestAddressesInWorkingSet: all generated sectors stay inside the
// benchmark's declared footprint and are sector-aligned.
func TestAddressesInWorkingSet(t *testing.T) {
	for _, n := range Names() {
		g := MustNew(n)
		ws := catalogue[n].WorkingSet
		for sm := 0; sm < 80; sm += 13 {
			for w := 0; w < g.WarpsPerSM(); w += 3 {
				for iter := 0; iter < 40; iter++ {
					op := g.Next(sm, w, iter)
					for _, a := range op.Sectors {
						if a%SectorSize != 0 {
							t.Fatalf("%s: unaligned sector %#x", n, a)
						}
						if a >= ws+uint64(len(op.Sectors))*SectorSize {
							t.Fatalf("%s: sector %#x beyond working set %#x", n, a, ws)
						}
					}
				}
			}
		}
	}
}

func TestOpsWellFormed(t *testing.T) {
	for _, n := range Names() {
		g := MustNew(n)
		sawMem := false
		for iter := 0; iter < 30; iter++ {
			op := g.Next(0, 0, iter)
			if op.ActiveLanes < 1 || op.ActiveLanes > 32 {
				t.Fatalf("%s: lanes %d", n, op.ActiveLanes)
			}
			if len(op.Sectors) > 0 {
				sawMem = true
			}
		}
		if !sawMem {
			t.Fatalf("%s: never issues memory ops", n)
		}
	}
}

// TestStreamingIsSequential: the stream pattern's consecutive steps of
// one warp advance by the grid stride within its chunk.
func TestStreamingIsSequential(t *testing.T) {
	g := MustNew("streamcluster") // single stream
	a0 := g.Next(0, 0, 0).Sectors[0]
	a1 := g.Next(0, 0, 1).Sectors[0]
	want := uint64(blockWarps) * uint64(catalogue["streamcluster"].SectorsPer) * SectorSize
	if a1-a0 != want {
		t.Fatalf("stream stride = %d, want %d", a1-a0, want)
	}
}

// TestBlockNeighboursAdjacent: warps in the same block touch adjacent
// line-sized positions at the same step (coalesced across the block).
func TestBlockNeighboursAdjacent(t *testing.T) {
	g := MustNew("streamcluster")
	stride := uint64(catalogue["streamcluster"].SectorsPer) * SectorSize
	a := g.Next(0, 0, 0).Sectors[0]
	b := g.Next(0, 1, 0).Sectors[0]
	if b-a != stride {
		t.Fatalf("block lanes not adjacent: %#x vs %#x", a, b)
	}
}

// TestBlocksAreSpread: different blocks work on distant chunks — the
// property that makes the concurrent metadata working set large.
func TestBlocksAreSpread(t *testing.T) {
	g := MustNew("streamcluster")
	a := g.Next(0, 0, 0).Sectors[0]  // block 0
	b := g.Next(16, 0, 0).Sectors[0] // a later block (blocks span 32 warps)
	if diff := int64(b) - int64(a); diff < 64*1024 && diff > -64*1024 {
		t.Fatalf("blocks too close: %#x vs %#x", a, b)
	}
}

// TestGatherIsSpread: the gather pattern produces addresses spanning
// most of the working set.
func TestGatherIsSpread(t *testing.T) {
	g := MustNew("kmeans")
	ws := catalogue["kmeans"].WorkingSet
	var lo, hi uint64 = ^uint64(0), 0
	for iter := 0; iter < 200; iter++ {
		a := g.Next(0, 0, iter).Sectors[0]
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	if hi-lo < ws/4 {
		t.Fatalf("gather span too small: [%#x, %#x] of %#x", lo, hi, ws)
	}
}

// TestTreeIsRootBiased: shallow tree levels produce small addresses
// far more often than deep levels, so the hot top of the tree caches.
func TestTreeIsRootBiased(t *testing.T) {
	g := MustNew("b+tree")
	small := 0
	total := 0
	for w := 0; w < 8; w++ {
		for iter := 0; iter < 80; iter++ {
			a := g.Next(0, w, iter).Sectors[0]
			total++
			if a < 1<<20 {
				small++
			}
		}
	}
	if small*3 < total {
		t.Fatalf("tree pattern not root-biased: %d/%d small addresses", small, total)
	}
}

// TestBlockPatternTiny: compute-bound kernels touch a per-warp tile
// small enough for 80 SMs' L1s.
func TestBlockPatternTiny(t *testing.T) {
	g := MustNew("lavaMD")
	seen := map[uint64]bool{}
	for iter := 0; iter < 500; iter++ {
		seen[g.Next(2, 3, iter).Sectors[0]/LineSize] = true
	}
	if len(seen) > 16 {
		t.Fatalf("lavaMD warp touches %d lines, want a small L1-resident tile", len(seen))
	}
}

func TestWriteMix(t *testing.T) {
	g := MustNew("lbm") // WriteEvery: 2
	writes := 0
	for iter := 0; iter < 100; iter++ {
		if g.Next(0, 0, iter).Write {
			writes++
		}
	}
	if writes != 50 {
		t.Fatalf("lbm writes = %d/100, want 50", writes)
	}
	g = MustNew("streamcluster") // read-only
	for iter := 0; iter < 100; iter++ {
		if g.Next(0, 0, iter).Write {
			t.Fatal("streamcluster should be read-only")
		}
	}
}

func TestClassesAndIPC(t *testing.T) {
	for _, n := range Names() {
		if PaperIPC(n) <= 0 {
			t.Errorf("%s: missing paper IPC", n)
		}
	}
	if PaperClass("lbm") != MemoryIntensive || PaperClass("nw") != NonIntensive || PaperClass("cfd") != MediumIntensive {
		t.Error("paper classes wrong")
	}
	for _, c := range []Class{NonIntensive, MediumIntensive, MemoryIntensive} {
		if c.String() == "" {
			t.Error("empty class name")
		}
	}
}

// TestSplitmixUniformity: a weak property check that the hash spreads
// inputs (no collisions over a small dense range).
func TestSplitmixUniformity(t *testing.T) {
	f := func(a, b uint32) bool {
		if a == b {
			return true
		}
		return splitmix64(uint64(a)) != splitmix64(uint64(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSectorsHelper(t *testing.T) {
	s := sectors(100, 3) // aligns down to 96
	want := []uint64{96, 128, 160}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("sectors = %v, want %v", s, want)
		}
	}
}
