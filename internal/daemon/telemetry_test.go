package daemon

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"gpusecmem"
	"gpusecmem/internal/telemetry"
)

func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	return string(body)
}

// TestMetricsEndpoint drives a run through the daemon and asserts the
// exposition carries the RED surface and the tier counters.
func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{})
	if code := getJSON(t, ts.URL+"/api/run?bench=nw&scheme=ctr_mac_bmt&cycles=1500", nil); code != 200 {
		t.Fatalf("run status %d", code)
	}
	text := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		`gpusecmem_http_requests_total{route="/api/run",code="200"} `,
		`gpusecmem_http_request_duration_us_bucket{route="/api/run",le="+Inf"} `,
		"gpusecmem_runs_simulated_total ",
		"gpusecmem_requests_admitted_total ",
		`gpusecmem_run_duration_us_count{tier="simulated"} `,
		"gpusecmem_retry_mean_run_ms ",
		"gpusecmem_retry_backlog ",
		"gpusecmem_memcache_entries ",
		"# TYPE gpusecmem_http_requests_total counter",
		"# TYPE gpusecmem_run_duration_us histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// A memory-tier repeat shows up under the cache-hit counter.
	if code := getJSON(t, ts.URL+"/api/run?bench=nw&scheme=ctr_mac_bmt&cycles=1500", nil); code != 200 {
		t.Fatalf("repeat run status %d", code)
	}
	text = scrapeMetrics(t, ts.URL)
	if !strings.Contains(text, `gpusecmem_cache_hits_total{tier="memory"} `) {
		t.Error("/metrics missing memory-tier hit counter after repeat run")
	}
}

// TestTraceIDRoundTrip checks the trace-ID contract: every response
// carries X-Secmem-Trace-Id, a valid inbound ID is adopted, an invalid
// one is replaced, and error bodies carry the same ID as the header.
func TestTraceIDRoundTrip(t *testing.T) {
	ts := newTestServer(t, Config{})

	// No inbound ID: one is minted.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	minted := resp.Header.Get(telemetry.TraceHeader)
	if !telemetry.ValidTraceID(minted) {
		t.Fatalf("minted trace ID %q invalid", minted)
	}

	do := func(inbound, path string) (*http.Response, []byte) {
		req, _ := http.NewRequest("GET", ts.URL+path, nil)
		req.Header.Set(telemetry.TraceHeader, inbound)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, body
	}

	// A valid inbound ID is echoed on the header and the success body.
	resp, body := do("cafe1234deadbeef", "/api/run?bench=nw&scheme=baseline&cycles=1500")
	if got := resp.Header.Get(telemetry.TraceHeader); got != "cafe1234deadbeef" {
		t.Fatalf("valid inbound ID not adopted: header %q", got)
	}
	var run struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(body, &run); err != nil || run.TraceID != "cafe1234deadbeef" {
		t.Fatalf("run body trace_id = %q (err %v), want cafe1234deadbeef", run.TraceID, err)
	}

	// An invalid inbound ID (here non-hex text; the same check rejects
	// injection attempts with control characters) is replaced.
	resp, _ = do("evil id {injected}", "/healthz")
	if got := resp.Header.Get(telemetry.TraceHeader); !telemetry.ValidTraceID(got) || got == "evil id {injected}" {
		t.Fatalf("invalid inbound ID not replaced: %q", got)
	}

	// Error bodies carry the trace ID too.
	resp, body = do("beefbeefbeefbeef", "/api/run?cycles=abc")
	if resp.StatusCode != 400 {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var e struct {
		Error   string `json:"error"`
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.TraceID != "beefbeefbeefbeef" {
		t.Fatalf("error body trace_id = %q, want beefbeefbeefbeef", e.TraceID)
	}
}

// TestRequestLogging asserts one structured line per request, carrying
// the trace ID and the serving tier.
func TestRequestLogging(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	lockedWriter := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	logger, err := telemetry.NewLogger(lockedWriter, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, Config{Logger: logger})

	req, _ := http.NewRequest("GET", ts.URL+"/api/run?bench=nw&scheme=baseline&cycles=1500", nil)
	req.Header.Set(telemetry.TraceHeader, "feedfacefeedface")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// /healthz scrapes log at debug, which info-level drops.
	if code := getJSON(t, ts.URL+"/healthz", nil); code != 200 {
		t.Fatalf("healthz status %d", code)
	}

	mu.Lock()
	lines := strings.TrimSpace(buf.String())
	mu.Unlock()
	var rec struct {
		Msg     string `json:"msg"`
		Path    string `json:"path"`
		Status  int    `json:"status"`
		Source  string `json:"source"`
		TraceID string `json:"trace_id"`
	}
	found := false
	for _, line := range strings.Split(lines, "\n") {
		if line == "" {
			continue
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line not JSON: %v\n%s", err, line)
		}
		if rec.Msg == "request" && rec.Path == "/api/run" {
			found = true
			if rec.Status != 200 || rec.TraceID != "feedfacefeedface" || rec.Source != "simulated" {
				t.Fatalf("request log line incomplete: %+v", rec)
			}
		}
		if rec.Path == "/healthz" {
			t.Fatalf("healthz scrape logged at info level: %s", line)
		}
	}
	if !found {
		t.Fatalf("no request log line for /api/run:\n%s", lines)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestTelemetryByteIdentity is the zero-cost contract at the serving
// boundary: the result payload served with full telemetry active is
// byte-identical to a direct library simulation with none of it.
func TestTelemetryByteIdentity(t *testing.T) {
	logger, err := telemetry.NewLogger(io.Discard, "json", "debug")
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, Config{Logger: logger})
	var run struct {
		Result json.RawMessage `json:"result"`
	}
	if code := getJSON(t, ts.URL+"/api/run?bench=nw&scheme=ctr_mac_bmt&cycles=2000", &run); code != 200 {
		t.Fatalf("run status %d", code)
	}
	// Scrape mid-stream for good measure: observation must not perturb.
	scrapeMetrics(t, ts.URL)

	cfg, err := gpusecmem.ConfigForScheme("ctr_mac_bmt")
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxCycles = 2000
	want, err := gpusecmem.Simulate(cfg, "nw")
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := json.Compact(&got, run.Result); err != nil {
		t.Fatal(err)
	}
	if got.String() != string(wantJSON) {
		t.Fatal("served result differs from direct simulation — telemetry is not zero-cost")
	}
}

// TestMetricsConcurrentScrape races scrapes against served runs; under
// -race this covers the daemon's whole instrumented path.
func TestMetricsConcurrentScrape(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 3; j++ {
				resp, err := http.Get(ts.URL + "/api/run?bench=nw&scheme=baseline&cycles=1500")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	for i := 0; i < 20; i++ {
		scrapeMetrics(t, ts.URL)
	}
	wg.Wait()
}
