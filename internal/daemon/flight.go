package daemon

import (
	"context"
	"errors"
	"sync"

	"gpusecmem"
)

// runFlight is one in-flight local simulation shared by every request
// asking for the same canonical key.
type runFlight struct {
	done   chan struct{}
	res    *gpusecmem.Result
	source string
	err    error
	// retry marks a flight whose leader was cancelled: waiters loop
	// and re-lead under their own contexts instead of inheriting the
	// leader's fate (the PR 5 memo contract, hoisted to server scope).
	retry bool
}

// flightGroup coalesces identical simulation work across concurrent
// requests — the server-scope singleflight that cluster forwarding
// relies on: every member routes a key's misses to its owner, so the
// owner's group dedupes identical in-flight work for the whole
// cluster. It deliberately holds no completed results (the memory LRU
// does that); entries live only while a simulation runs.
//
// Safe for concurrent use: the map is mutex-guarded and flight fields
// are written only before done is closed.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*runFlight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*runFlight)}
}

// do runs fn once per key per flight: the first caller leads and
// executes fn; concurrent callers with the same key wait and share
// the outcome (shared=true). A waiter whose own ctx dies leaves with
// ctx.Err(). If the leader's run is cancelled, waiters do not inherit
// the cancellation — the flight is marked retry and each live waiter
// loops to lead its own attempt.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*gpusecmem.Result, string, error)) (res *gpusecmem.Result, source string, shared bool, err error) {
	for {
		g.mu.Lock()
		if f, ok := g.m[key]; ok {
			g.mu.Unlock()
			select {
			case <-f.done:
				if f.retry {
					continue
				}
				return f.res, f.source, true, f.err
			case <-ctx.Done():
				return nil, "", true, ctx.Err()
			}
		}
		f := &runFlight{done: make(chan struct{})}
		g.m[key] = f
		g.mu.Unlock()

		f.res, f.source, f.err = fn()
		// Un-register before waking waiters so a retrying waiter can
		// immediately lead a fresh flight.
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		f.retry = f.err != nil &&
			(errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded))
		close(f.done)
		return f.res, f.source, false, f.err
	}
}
