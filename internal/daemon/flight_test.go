package daemon

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gpusecmem"
)

// TestFlightGroupShares pins the coalescing contract: concurrent
// callers with one key run fn once; everyone gets the leader's result
// and the waiters report shared=true.
func TestFlightGroupShares(t *testing.T) {
	g := newFlightGroup()
	want := &gpusecmem.Result{}
	block := make(chan struct{})
	var calls atomic.Int32

	fn := func() (*gpusecmem.Result, string, error) {
		calls.Add(1)
		<-block
		return want, "simulated", nil
	}

	const n = 8
	var wg sync.WaitGroup
	var sharedCount atomic.Int32
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, source, shared, err := g.do(context.Background(), "k", fn)
			if err != nil || res != want || source != "simulated" {
				t.Errorf("do: res=%p source=%q err=%v", res, source, err)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// Let the leader start and the waiters pile up, then release.
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(block)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	if got := sharedCount.Load(); got != n-1 {
		t.Fatalf("shared for %d callers, want %d", got, n-1)
	}
}

// TestFlightGroupIndependentKeys pins that distinct keys never share a
// flight.
func TestFlightGroupIndependentKeys(t *testing.T) {
	g := newFlightGroup()
	var calls atomic.Int32
	var wg sync.WaitGroup
	for _, key := range []string{"a", "b", "c"} {
		wg.Add(1)
		go func(key string) {
			defer wg.Done()
			g.do(context.Background(), key, func() (*gpusecmem.Result, string, error) {
				calls.Add(1)
				return &gpusecmem.Result{}, "simulated", nil
			})
		}(key)
	}
	wg.Wait()
	if got := calls.Load(); got != 3 {
		t.Fatalf("fn ran %d times, want 3", got)
	}
}

// TestFlightGroupRetryAfterCancelledLeader pins the PR 5 memo contract
// at server scope: a waiter does not inherit the leader's
// cancellation — it re-leads its own attempt under its own context.
func TestFlightGroupRetryAfterCancelledLeader(t *testing.T) {
	g := newFlightGroup()
	want := &gpusecmem.Result{}
	leaderIn := make(chan struct{})

	go g.do(context.Background(), "k", func() (*gpusecmem.Result, string, error) {
		close(leaderIn)
		// Hold the flight long enough for the waiter to be queued on it,
		// then die as a cancelled run would.
		time.Sleep(30 * time.Millisecond)
		return nil, "", context.Canceled
	})

	<-leaderIn
	res, source, shared, err := g.do(context.Background(), "k", func() (*gpusecmem.Result, string, error) {
		return want, "simulated", nil
	})
	if err != nil {
		t.Fatalf("waiter inherited the leader's cancellation: %v", err)
	}
	if res != want || source != "simulated" {
		t.Fatalf("retry result: res=%p source=%q", res, source)
	}
	if shared {
		t.Fatal("retrying waiter should have led its own flight (shared=false)")
	}
}

// TestFlightGroupWaiterContext pins that a waiter whose own context
// dies leaves with its context's error instead of blocking on the
// leader.
func TestFlightGroupWaiterContext(t *testing.T) {
	g := newFlightGroup()
	block := make(chan struct{})
	defer close(block)
	started := make(chan struct{})

	go g.do(context.Background(), "k", func() (*gpusecmem.Result, string, error) {
		close(started)
		<-block
		return &gpusecmem.Result{}, "simulated", nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _, err := g.do(ctx, "k", func() (*gpusecmem.Result, string, error) {
		t.Error("cancelled waiter ran fn")
		return nil, "", nil
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
