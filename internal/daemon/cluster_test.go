package daemon

import (
	"bytes"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync/atomic"
	"testing"
	"time"

	"gpusecmem"
	"gpusecmem/internal/cluster"
	"gpusecmem/internal/resultcache"
)

// reserveListeners grabs n loopback listeners up front so every node's
// advertised URL is known before any daemon is built — the static
// member list the cluster package expects from flags.
func reserveListeners(t *testing.T, n int) ([]net.Listener, []string) {
	t.Helper()
	ls := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range ls {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ls[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	return ls, urls
}

// startNode serves handler on a reserved listener.
func startNode(t *testing.T, l net.Listener, handler http.Handler) *httptest.Server {
	t.Helper()
	ts := &httptest.Server{Listener: l, Config: &http.Server{Handler: handler}}
	ts.Start()
	t.Cleanup(ts.Close)
	return ts
}

// newClusterMember builds one clustered daemon over its own disk cache.
func newClusterMember(t *testing.T, self string, peers []string) *Server {
	t.Helper()
	disk, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{
		Self:    self,
		Peers:   peers,
		Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(Config{Cache: disk, Cluster: cl})
}

const clusterRunQuery = "bench=nw&scheme=ctr_mac_bmt&cycles=1500"

// clusterRunKey computes the canonical key for clusterRunQuery exactly
// as the daemon does.
func clusterRunKey(t *testing.T) string {
	t.Helper()
	q, err := url.ParseQuery(clusterRunQuery)
	if err != nil {
		t.Fatal(err)
	}
	cfg, _, bench, err := parseRunConfig(q)
	if err != nil {
		t.Fatal(err)
	}
	return gpusecmem.RunKey(cfg, bench)
}

// pickOwnerNonOwner maps two member URLs onto (owner, nonOwner) for the
// test key, using the same ring the daemons use.
func pickOwnerNonOwner(t *testing.T, key string, urls []string) (owner, nonOwner int) {
	t.Helper()
	ring, err := cluster.NewRing(urls)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range urls {
		if ring.Owner(key) == u {
			for j := range urls {
				if j != i {
					return i, j
				}
			}
		}
	}
	t.Fatal("no owner among members")
	return 0, 0
}

// compactJSON canonicalizes whitespace so wire-indented and
// library-marshalled forms compare byte-for-byte.
func compactJSON(t *testing.T, raw []byte) string {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatalf("compact: %v", err)
	}
	return buf.String()
}

// TestClusterPeerTierByteIdentity drives the whole distributed story
// on a live two-node cluster: a miss through the non-owner forwards to
// the owner (which sees the hop guard) and simulates there; the repeat
// through the non-owner is served from the owner's store via the raw
// peer tier (source=peer) with a payload byte-identical to a direct
// library run; the third repeat comes from the non-owner's own memory
// LRU, where the peer hit was promoted.
func TestClusterPeerTierByteIdentity(t *testing.T) {
	ls, urls := reserveListeners(t, 2)
	key := clusterRunKey(t)
	ownerIdx, otherIdx := pickOwnerNonOwner(t, key, urls)

	var ownerRuns atomic.Int32
	var sawHop atomic.Bool
	for i := range ls {
		d := newClusterMember(t, urls[i], []string{urls[1-i]})
		h := d.Handler()
		if i == ownerIdx {
			inner := h
			h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/api/run" {
					ownerRuns.Add(1)
					if r.Header.Get(cluster.HopHeader) != "" {
						sawHop.Store(true)
					}
				}
				inner.ServeHTTP(w, r)
			})
		}
		startNode(t, ls[i], h)
	}

	runURL := urls[otherIdx] + "/api/run?" + clusterRunQuery
	var first, second, third struct {
		Source string          `json:"source"`
		Key    string          `json:"key"`
		Result json.RawMessage `json:"result"`
	}
	if code := getJSON(t, runURL, &first); code != 200 {
		t.Fatalf("first run: status %d", code)
	}
	if first.Source != "simulated" {
		t.Fatalf("first run source = %q, want simulated (on the owner)", first.Source)
	}
	if ownerRuns.Load() != 1 || !sawHop.Load() {
		t.Fatalf("owner saw %d /api/run (hop header: %v), want 1 forwarded request",
			ownerRuns.Load(), sawHop.Load())
	}

	if code := getJSON(t, runURL, &second); code != 200 {
		t.Fatalf("second run: status %d", code)
	}
	if second.Source != "peer" {
		t.Fatalf("second run source = %q, want peer", second.Source)
	}
	if ownerRuns.Load() != 1 {
		t.Fatal("peer-tier hit still hit the owner's /api/run")
	}

	// The acceptance pin: the peer-tier payload is byte-identical to a
	// direct library run of the same canonical configuration.
	q, _ := url.ParseQuery(clusterRunQuery)
	cfg, _, bench, err := parseRunConfig(q)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := gpusecmem.Simulate(cfg, bench)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	if got := compactJSON(t, second.Result); got != string(want) {
		t.Fatal("peer-tier result differs from a direct library run")
	}
	if compactJSON(t, first.Result) != compactJSON(t, second.Result) {
		t.Fatal("forwarded and peer-tier results differ")
	}

	if code := getJSON(t, runURL, &third); code != 200 {
		t.Fatalf("third run: status %d", code)
	}
	if third.Source != "memory" {
		t.Fatalf("third run source = %q, want memory (promoted peer hit)", third.Source)
	}
}

// TestClusterHopGuard pins the loop guard: a request that already
// carries the hop header is answered locally — never re-forwarded —
// even by a non-owner whose owner is up, so disagreeing member lists
// cost an extra hop instead of a loop.
func TestClusterHopGuard(t *testing.T) {
	ls, urls := reserveListeners(t, 2)
	key := clusterRunKey(t)
	ownerIdx, otherIdx := pickOwnerNonOwner(t, key, urls)

	var ownerRuns atomic.Int32
	for i := range ls {
		d := newClusterMember(t, urls[i], []string{urls[1-i]})
		h := d.Handler()
		if i == ownerIdx {
			inner := h
			h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/api/run" {
					ownerRuns.Add(1)
				}
				inner.ServeHTTP(w, r)
			})
		}
		startNode(t, ls[i], h)
	}

	req, err := http.NewRequest(http.MethodGet, urls[otherIdx]+"/api/run?"+clusterRunQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(cluster.HopHeader, "http://somewhere.else")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Source string `json:"source"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || body.Source != "simulated" {
		t.Fatalf("hop-guarded request: status %d source %q, want 200 simulated locally",
			resp.StatusCode, body.Source)
	}
	if ownerRuns.Load() != 0 {
		t.Fatal("hop-guarded request was re-forwarded to the owner")
	}
}

// TestClusterFailOpen kills the owner and pins the failure model: the
// non-owner's forward fails, the peer is marked down, and the request
// is simulated locally — degraded service, not an outage.
func TestClusterFailOpen(t *testing.T) {
	ls, urls := reserveListeners(t, 2)
	key := clusterRunKey(t)
	ownerIdx, otherIdx := pickOwnerNonOwner(t, key, urls)

	nodes := make([]*Server, 2)
	for i := range ls {
		nodes[i] = newClusterMember(t, urls[i], []string{urls[1-i]})
		startNode(t, ls[i], nodes[i].Handler())
	}

	// The owner dies before ever answering.
	ls[ownerIdx].Close()

	var got struct {
		Source string `json:"source"`
	}
	if code := getJSON(t, urls[otherIdx]+"/api/run?"+clusterRunQuery, &got); code != 200 {
		t.Fatalf("fail-open run: status %d", code)
	}
	if got.Source != "simulated" {
		t.Fatalf("fail-open source = %q, want simulated locally", got.Source)
	}
	if nodes[otherIdx].cfg.Cluster.Up(urls[ownerIdx]) {
		t.Fatal("failed forward did not mark the owner down")
	}

	// With the owner marked down the repeat skips straight to the local
	// tiers — served from the survivor's memory, no peer involvement.
	if code := getJSON(t, urls[otherIdx]+"/api/run?"+clusterRunQuery, &got); code != 200 {
		t.Fatalf("post-failure run: status %d", code)
	}
	if got.Source != "memory" {
		t.Fatalf("post-failure source = %q, want memory", got.Source)
	}
}

// failingRawStore wraps a real persistent store but refuses every raw
// envelope write, so tests can pin the typed-Put fallback path.
type failingRawStore struct {
	gpusecmem.ResultCache
	putRawCalls atomic.Int32
}

func (f *failingRawStore) GetRaw(string) ([]byte, bool) { return nil, false }

func (f *failingRawStore) PutRaw(string, []byte) error {
	f.putRawCalls.Add(1)
	return errors.New("injected raw-store failure")
}

// TestPutRawFailureFallsBackToTypedPut is the write-through regression
// test: in cluster mode the local disk write uses the already-encoded
// raw envelope, and when that PutRaw fails the result must still land
// in the disk tier via the typed Put — not evaporate silently. The
// run goes to the non-owner with the hop guard set, so it simulates
// locally and takes the raw write-through path.
func TestPutRawFailureFallsBackToTypedPut(t *testing.T) {
	ls, urls := reserveListeners(t, 2)
	key := clusterRunKey(t)
	_, otherIdx := pickOwnerNonOwner(t, key, urls)

	disk, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	failing := &failingRawStore{ResultCache: disk}
	for i := range ls {
		cl, err := cluster.New(cluster.Config{
			Self:    urls[i],
			Peers:   []string{urls[1-i]},
			Timeout: 2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		var cache gpusecmem.ResultCache
		if i == otherIdx {
			cache = failing
		} else {
			if cache, err = resultcache.Open(t.TempDir()); err != nil {
				t.Fatal(err)
			}
		}
		startNode(t, ls[i], New(Config{Cache: cache, Cluster: cl}).Handler())
	}
	fallbacksBefore := met.putRawFallbacks.Value()

	req, err := http.NewRequest(http.MethodGet, urls[otherIdx]+"/api/run?"+clusterRunQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(cluster.HopHeader, "http://somewhere.else")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Source string `json:"source"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || body.Source != "simulated" {
		t.Fatalf("status %d source %q, want 200 simulated", resp.StatusCode, body.Source)
	}

	if n := failing.putRawCalls.Load(); n == 0 {
		t.Fatal("test never exercised the raw write path")
	}
	if got := met.putRawFallbacks.Value(); got == fallbacksBefore {
		t.Fatal("PutRaw failure not counted in gpusecmem_cache_putraw_fallbacks_total")
	}
	// The acceptance pin: despite the failed raw write, the result is in
	// the disk tier under its canonical key via the typed fallback.
	if _, ok := disk.Get(key); !ok {
		t.Fatal("PutRaw failure lost the result: not found in the disk tier")
	}
}

// TestCacheAPI exercises the server half of the peer protocol over
// real HTTP: push an envelope, fetch it back byte-identically, and
// reject the failure cases.
func TestCacheAPI(t *testing.T) {
	disk, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, Config{Cache: disk})

	cfg := gpusecmem.SecureMemConfig()
	cfg.MaxCycles = 1500
	res, err := gpusecmem.Simulate(cfg, "nw")
	if err != nil {
		t.Fatal(err)
	}
	key := "some canonical key | nw"
	raw, err := resultcache.EncodeEnvelope(key, res)
	if err != nil {
		t.Fatal(err)
	}

	cacheURL := ts.URL + "/api/cache?key=" + url.QueryEscape(key)
	// Miss before push.
	resp, err := http.Get(cacheURL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("pre-push GET: status %d, want 404", resp.StatusCode)
	}

	put := func(body []byte) int {
		req, err := http.NewRequest(http.MethodPut, cacheURL, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := put(raw); code != 204 {
		t.Fatalf("PUT: status %d, want 204", code)
	}
	if code := put([]byte("junk")); code != 400 {
		t.Fatalf("junk PUT: status %d, want 400", code)
	}

	resp, err = http.Get(cacheURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET: status %d, want 200", resp.StatusCode)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !bytes.Equal(buf.Bytes(), raw) {
		t.Fatal("fetched envelope differs from the pushed bytes")
	}
}

// TestCacheAPIWithoutStore pins the degraded answers of a daemon with
// no raw-capable persistent store.
func TestCacheAPIWithoutStore(t *testing.T) {
	ts := newTestServer(t, Config{})
	u := ts.URL + "/api/cache?key=k"
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("GET without store: status %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodPut, u, bytes.NewReader([]byte("x")))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 501 {
		t.Fatalf("PUT without store: status %d, want 501", resp.StatusCode)
	}
}

// TestClusterStatusRoute pins the /api/cluster payload: membership in
// canonical order with self marked, and — when a run is named — the
// key's digest and owner.
func TestClusterStatusRoute(t *testing.T) {
	ls, urls := reserveListeners(t, 2)
	for i := range ls {
		startNode(t, ls[i], newClusterMember(t, urls[i], []string{urls[1-i]}).Handler())
	}

	var status struct {
		Self  string `json:"self"`
		Nodes []struct {
			Node string `json:"node"`
			Self bool   `json:"self"`
			Up   bool   `json:"up"`
		} `json:"nodes"`
	}
	if code := getJSON(t, urls[0]+"/api/cluster", &status); code != 200 {
		t.Fatalf("status %d", code)
	}
	if status.Self != urls[0] || len(status.Nodes) != 2 {
		t.Fatalf("bad status payload: %+v", status)
	}
	selfSeen := false
	for _, n := range status.Nodes {
		if n.Self {
			selfSeen = true
			if n.Node != urls[0] {
				t.Fatalf("self row names %q, want %q", n.Node, urls[0])
			}
		}
	}
	if !selfSeen {
		t.Fatal("no self row")
	}

	var placed struct {
		Key     string `json:"key"`
		Owner   string `json:"owner"`
		OwnerUp bool   `json:"owner_up"`
	}
	if code := getJSON(t, urls[0]+"/api/cluster?"+clusterRunQuery, &placed); code != 200 {
		t.Fatalf("placement status %d", code)
	}
	ring, err := cluster.NewRing(urls)
	if err != nil {
		t.Fatal(err)
	}
	if placed.Owner != ring.Owner(clusterRunKey(t)) || placed.Key == "" || !placed.OwnerUp {
		t.Fatalf("bad placement payload: %+v", placed)
	}

	// A non-clustered daemon has no cluster view.
	ts := newTestServer(t, Config{})
	if code := getJSON(t, ts.URL+"/api/cluster", nil); code != 404 {
		t.Fatalf("unclustered /api/cluster: status %d, want 404", code)
	}
}
