package daemon

// The server half of the cluster peer protocol (internal/cluster is
// the client half; DESIGN.md §16): /api/cache moves raw result
// envelopes between peers without a decode/re-encode round trip, and
// /api/cluster exposes membership, health, and key placement for
// operators and the CI smoke test.

import (
	"encoding/json"
	"io"
	"net/http"

	"gpusecmem"
	"gpusecmem/internal/runner"
)

// maxEnvelopeBytes bounds one pushed result envelope. Real envelopes
// are a few KB; the cap only exists so a confused or malicious peer
// cannot make us buffer an unbounded body.
const maxEnvelopeBytes = 64 << 20

// handleCacheGet serves the exact on-disk envelope bytes for a key —
// the peer fetch path. Only a raw-capable persistent store can answer;
// a daemon without one (or without the entry) is simply a miss.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		httpError(w, r, http.StatusBadRequest, "missing key")
		return
	}
	rs, ok := s.cfg.Cache.(rawStore)
	if !ok {
		httpError(w, r, http.StatusNotFound, "no raw-capable result store")
		return
	}
	raw, ok := rs.GetRaw(key)
	if !ok {
		httpError(w, r, http.StatusNotFound, "no entry")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(raw)
}

// handleCachePut installs a pushed envelope verbatim — the
// write-through replication path. The store validates before writing
// (schema, embedded key, non-nil result), so a bad push is a 400, not
// a planted corrupt entry.
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		httpError(w, r, http.StatusBadRequest, "missing key")
		return
	}
	rs, ok := s.cfg.Cache.(rawStore)
	if !ok {
		httpError(w, r, http.StatusNotImplemented, "no raw-capable result store")
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxEnvelopeBytes))
	if err != nil {
		httpError(w, r, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if err := rs.PutRaw(key, raw); err != nil {
		httpError(w, r, http.StatusBadRequest, "bad envelope: %v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleCluster reports membership and per-peer health, and — when the
// query also names a run (same knobs as /api/run) — where that key
// lives: its digest, its owner, and whether the owner is up.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	cl := s.cfg.Cluster
	if cl == nil {
		httpError(w, r, http.StatusNotFound, "daemon is not clustered")
		return
	}
	payload := map[string]any{
		"self":  cl.Self(),
		"nodes": cl.StatusAll(),
	}
	if q := r.URL.Query(); q.Get("scheme") != "" || q.Get("bench") != "" {
		cfg, _, bench, err := parseRunConfig(q)
		if err != nil {
			httpError(w, r, http.StatusBadRequest, "%v", err)
			return
		}
		if !validBenchmark(bench) {
			httpError(w, r, http.StatusBadRequest, "unknown benchmark %q (see /api/catalogue)", bench)
			return
		}
		key := gpusecmem.RunKey(cfg, bench)
		owner, self := cl.Owner(key)
		payload["key"] = runner.KeyDigest(key)
		payload["owner"] = owner
		payload["owner_self"] = self
		payload["owner_up"] = cl.Up(owner)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(payload)
}

// proxyResponse streams a forwarded peer's response back to the
// client, replacing any header the middleware already set (the trace
// ID rode the forward and comes back identical).
func proxyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		w.Header()[k] = vs
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}
