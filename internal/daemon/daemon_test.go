package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gpusecmem"
	"gpusecmem/internal/checkpoint"
	"gpusecmem/internal/resultcache"
)

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestCatalogue(t *testing.T) {
	ts := newTestServer(t, Config{})
	var cat struct {
		Benchmarks  []string `json:"benchmarks"`
		Schemes     []string `json:"schemes"`
		Experiments []struct {
			ID    string `json:"id"`
			Title string `json:"title"`
		} `json:"experiments"`
		Formats []string `json:"formats"`
	}
	if code := getJSON(t, ts.URL+"/api/catalogue", &cat); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(cat.Benchmarks) == 0 || len(cat.Schemes) == 0 || len(cat.Experiments) == 0 {
		t.Fatalf("catalogue incomplete: %+v", cat)
	}
	found := false
	for _, e := range cat.Experiments {
		if e.ID == "fig8" && e.Title != "" {
			found = true
		}
	}
	if !found {
		t.Fatal("catalogue missing fig8")
	}
}

// TestRunCacheSources drives the full tiering story: a fresh run
// simulates, a repeat is served from memory, and a new daemon sharing
// the same cache directory — a restart — serves it from disk, all
// byte-identical.
func TestRunCacheSources(t *testing.T) {
	dir := t.TempDir()
	disk, err := resultcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, Config{Cache: disk})
	url := ts.URL + "/api/run?bench=nw&scheme=ctr_mac_bmt&cycles=1500"

	var first, second, third struct {
		Source string          `json:"source"`
		Key    string          `json:"key"`
		Result json.RawMessage `json:"result"`
	}
	if code := getJSON(t, url, &first); code != 200 {
		t.Fatalf("first run: status %d", code)
	}
	if first.Source != "simulated" {
		t.Fatalf("first run source = %q, want simulated", first.Source)
	}
	if code := getJSON(t, url, &second); code != 200 {
		t.Fatalf("second run: status %d", code)
	}
	if second.Source != "memory" {
		t.Fatalf("second run source = %q, want memory", second.Source)
	}

	// "Restart": a new daemon, empty memory tier, same disk.
	disk2, err := resultcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := newTestServer(t, Config{Cache: disk2})
	if code := getJSON(t, ts2.URL+"/api/run?bench=nw&scheme=ctr_mac_bmt&cycles=1500", &third); code != 200 {
		t.Fatalf("post-restart run: status %d", code)
	}
	if third.Source != "disk" {
		t.Fatalf("post-restart source = %q, want disk", third.Source)
	}

	if string(first.Result) != string(second.Result) || string(first.Result) != string(third.Result) {
		t.Fatal("cached results differ from the fresh simulation")
	}
	if first.Key == "" || first.Key != third.Key {
		t.Fatalf("key mismatch: %q vs %q", first.Key, third.Key)
	}
}

func TestRunValidation(t *testing.T) {
	ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		query string
		code  int
	}{
		{"scheme=no-such-scheme", 400},
		{"bench=no-such-bench", 400},
		{"cycles=abc", 400},
		{"cycles=0", 400}, // Config.Validate: MaxCycles must be positive
		{"scheme=ctr_mac_bmt&aes-engines=0", 400},
		{"aes-latency=banana", 400},
	} {
		var e struct {
			Error string `json:"error"`
		}
		code := getJSON(t, ts.URL+"/api/run?"+tc.query, &e)
		if code != tc.code {
			t.Errorf("query %q: status %d, want %d", tc.query, code, tc.code)
		}
		if e.Error == "" {
			t.Errorf("query %q: empty error message", tc.query)
		}
	}
}

func TestExperimentEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/api/experiment/fig8?cycles=1500&benchmarks=nw&format=csv")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if src := resp.Header.Get("X-Run-Source"); src != "simulated" {
		t.Fatalf("X-Run-Source = %q, want simulated", src)
	}
	if !strings.Contains(string(body), "benchmark") {
		t.Fatalf("rendered table missing header column: %s", body)
	}

	// Same request again: every run comes from the shared memory tier.
	resp2, err := http.Get(ts.URL + "/api/experiment/fig8?cycles=1500&benchmarks=nw&format=csv")
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if src := resp2.Header.Get("X-Run-Source"); src != "memory" {
		t.Fatalf("repeat X-Run-Source = %q, want memory", src)
	}
	if string(body) != string(body2) {
		t.Fatal("cached experiment render differs from fresh render")
	}

	if code := getJSON(t, ts.URL+"/api/experiment/no-such-exp", nil); code != 404 {
		t.Fatalf("unknown experiment: status %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/api/experiment/fig8?format=xml", nil); code != 400 {
		t.Fatalf("bad format: status %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/api/experiment/fig8?benchmarks=bogus", nil); code != 400 {
		t.Fatalf("bad benchmark subset: status %d, want 400", code)
	}
}

// waitRunning polls /healthz until the daemon reports n running
// simulations.
func waitRunning(t *testing.T, url string, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var h struct {
			Metrics struct {
				Running int64 `json:"running"`
			} `json:"metrics"`
		}
		if code := getJSON(t, url+"/healthz", &h); code != 200 {
			t.Fatalf("healthz status %d", code)
		}
		if h.Metrics.Running == n {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("daemon never reached %d running simulations", n)
}

// TestAdmissionOverflow fills the single worker slot with a run too
// long to finish, asserts the next request bounces with 429 +
// Retry-After, then cancels the long run and checks the slot frees.
func TestAdmissionOverflow(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1, QueueDepth: 0})

	longCtx, cancelLong := context.WithCancel(context.Background())
	defer cancelLong()
	longDone := make(chan struct{})
	go func() {
		defer close(longDone)
		req, _ := http.NewRequestWithContext(longCtx, "GET",
			ts.URL+"/api/run?bench=nw&cycles=4000000000", nil)
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	waitRunning(t, ts.URL, 1)

	resp, err := http.Get(ts.URL + "/api/run?bench=nw&cycles=1000")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Client disconnect cancels the simulation cooperatively and frees
	// the slot: the same request now gets through.
	cancelLong()
	<-longDone
	waitRunning(t, ts.URL, 0)
	if code := getJSON(t, ts.URL+"/api/run?bench=nw&cycles=1000", nil); code != 200 {
		t.Fatalf("post-cancel run: status %d, want 200", code)
	}
}

// TestRequestTimeout bounds a runaway simulation with the per-request
// budget: the handler answers 504 instead of hanging.
func TestRequestTimeout(t *testing.T) {
	ts := newTestServer(t, Config{RequestTimeout: 50 * time.Millisecond})
	var e struct {
		Error string `json:"error"`
	}
	code := getJSON(t, ts.URL+"/api/run?bench=nw&cycles=4000000000", &e)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", code, e.Error)
	}
}

// TestAbortFailsInFlight is the drain-expired shutdown path: Abort
// cancels a stuck in-flight run and its handler returns 503.
func TestAbortFailsInFlight(t *testing.T) {
	d := New(Config{Workers: 1, QueueDepth: 0})
	ts := httptest.NewServer(d.Handler())
	t.Cleanup(ts.Close)

	type result struct {
		code int
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/api/run?bench=nw&cycles=4000000000")
		if err != nil {
			got <- result{err: err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		got <- result{code: resp.StatusCode}
	}()
	waitRunning(t, ts.URL, 1)

	d.Abort()
	select {
	case r := <-got:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.code != http.StatusServiceUnavailable {
			t.Fatalf("aborted run status %d, want 503", r.code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("handler did not return after Abort")
	}

	// A post-abort request is refused rather than hung.
	if code := getJSON(t, ts.URL+"/api/run?bench=nw&cycles=1000", nil); code == 200 {
		t.Fatal("daemon accepted work after Abort")
	}
}

func TestHealthzAndDebugRoutes(t *testing.T) {
	ts := newTestServer(t, Config{})
	var h struct {
		Status string `json:"status"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &h); code != 200 || h.Status != "ok" {
		t.Fatalf("healthz: code %d status %q", code, h.Status)
	}
	// The reused debug layer must be mounted and include the daemon
	// expvar.
	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "gpusecmem_daemon") {
		t.Fatalf("/debug/vars missing daemon metrics (status %d)", resp.StatusCode)
	}
	if code := getJSON(t, ts.URL+"/progress", nil); code != 200 {
		t.Fatalf("/progress status %d", code)
	}
}

// TestMemCacheLRU exercises the bounded memory tier directly.
func TestMemCacheLRU(t *testing.T) {
	m := newMemCache(2)
	resA, resB, resC := &gpusecmem.Result{}, &gpusecmem.Result{}, &gpusecmem.Result{}
	m.put("a", resA)
	m.put("b", resB)
	if _, ok := m.get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("miss on a")
	}
	m.put("c", resC)
	if _, ok := m.get("b"); ok {
		t.Fatal("LRU kept b over recently-used a")
	}
	if _, ok := m.get("a"); !ok {
		t.Fatal("evicted the recently-used entry")
	}
	if m.len() != 2 {
		t.Fatalf("len = %d, want 2", m.len())
	}
	if got := m.evictions.Load(); got != 1 {
		t.Fatalf("evictions = %d, want 1 (b displaced by c)", got)
	}
	m.put("a", resB) // overwrite in place: not a capacity eviction
	if got := m.evictions.Load(); got != 1 {
		t.Fatalf("evictions after overwrite = %d, want still 1", got)
	}

	disabled := newMemCache(0)
	disabled.put("x", resA)
	if _, ok := disabled.get("x"); ok {
		t.Fatal("disabled cache served a hit")
	}
}

// TestIncrementalServing drives the horizon-extension story: a short
// run leaves a final checkpoint, and a later, longer request — here to
// a freshly restarted daemon sharing only the checkpoint directory —
// resumes from it instead of simulating from cycle 0, reports
// source=resumed, and still returns a result byte-identical to an
// uninterrupted full-horizon simulation.
func TestIncrementalServing(t *testing.T) {
	dir := t.TempDir()
	store, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, Config{Checkpoints: store, CheckpointEvery: 1000})

	var short struct {
		Source string `json:"source"`
	}
	if code := getJSON(t, ts.URL+"/api/run?bench=nw&scheme=ctr_mac_bmt&cycles=2000", &short); code != 200 {
		t.Fatalf("short run: status %d", code)
	}
	if short.Source != "simulated" {
		t.Fatalf("short run source = %q, want simulated", short.Source)
	}

	// "Restart": a new daemon with no caches, same checkpoint store.
	store2, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := newTestServer(t, Config{Checkpoints: store2, CheckpointEvery: 1000})
	var long struct {
		Source string          `json:"source"`
		Result json.RawMessage `json:"result"`
	}
	if code := getJSON(t, ts2.URL+"/api/run?bench=nw&scheme=ctr_mac_bmt&cycles=6000", &long); code != 200 {
		t.Fatalf("long run: status %d", code)
	}
	if long.Source != "resumed" {
		t.Fatalf("long run source = %q, want resumed", long.Source)
	}

	cfg, err := gpusecmem.ConfigForScheme("ctr_mac_bmt")
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxCycles = 6000
	want, err := gpusecmem.Simulate(cfg, "nw")
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var gotJSON bytes.Buffer
	if err := json.Compact(&gotJSON, long.Result); err != nil {
		t.Fatal(err)
	}
	if gotJSON.String() != string(wantJSON) {
		t.Fatal("resumed daemon result differs from an uninterrupted simulation")
	}

	// The checkpoint store's counters surface in /healthz.
	var h struct {
		Checkpoints *struct {
			Hits uint64 `json:"hits"`
			Puts uint64 `json:"puts"`
		} `json:"checkpoint_store"`
		Metrics struct {
			Resumed uint64 `json:"resumed"`
		} `json:"metrics"`
	}
	if code := getJSON(t, ts2.URL+"/healthz", &h); code != 200 {
		t.Fatalf("healthz status %d", code)
	}
	if h.Checkpoints == nil || h.Checkpoints.Hits == 0 || h.Checkpoints.Puts == 0 {
		t.Fatalf("healthz checkpoint_store stats missing or empty: %+v", h.Checkpoints)
	}
	if h.Metrics.Resumed == 0 {
		t.Fatal("healthz metrics.resumed not bumped by the resumed run")
	}
}
