// Package daemon implements secmemd, the long-running HTTP/JSON
// service that serves simulation results. It layers the existing
// execution stack instead of duplicating it: each admitted request
// gets a fresh gpusecmem.Context (singleflight memo) wired to the
// daemon's shared result cache — an in-process LRU over the optional
// on-disk store — and a per-request context that cancels the
// simulation cooperatively on client disconnect, timeout, or
// shutdown.
//
// Routes:
//
//	GET /api/catalogue             benchmarks, schemes, experiments, formats
//	GET /api/run                   one (scheme, benchmark) simulation as JSON
//	GET /api/experiment/{id}       a paper table/figure, rendered text|csv|md
//	GET/PUT /api/cache             raw result envelopes (the peer cache protocol)
//	GET /api/cluster               membership, health, and key placement
//	GET /healthz                   liveness + counters
//	GET /metrics                   Prometheus text-format exposition
//	GET /progress, /debug/...      the sweep debug layer (expvar, pprof)
//
// Admission is bounded: at most Workers simulations run concurrently
// and at most QueueDepth more wait; beyond that requests are rejected
// immediately with 429 and a Retry-After hint, so a burst degrades to
// fast failures instead of unbounded goroutine pile-up. Admission
// guards *simulation* only: requests every cached tier can answer —
// memory, disk, peer — are served before taking a slot, so cached
// lookups scale with the HTTP stack rather than the worker pool, and
// concurrent identical misses coalesce onto one in-flight simulation
// via a server-scope singleflight (flightGroup).
//
// Cluster mode (Config.Cluster, DESIGN.md §16) chains one more tier
// and one forwarding rule into /api/run: a key missing from every
// local tier is fetched raw from its rendezvous owner's store, and if
// the owner has not computed it either, the whole request is proxied
// to the owner (loop-guarded by cluster.HopHeader) so the owner's
// flightGroup coalesces identical work cluster-wide. A down owner
// fails open to local simulation, whose result is write-through
// replicated to the owner once it returns.
//
// Telemetry: every request is assigned a trace ID at admission
// (honoring a valid inbound X-Secmem-Trace-Id), which rides the
// request context through the cache tiers, the runner, and the
// simulator's cancellation context, and appears on the response
// header, in every log line (via telemetry.ContextHandler), and in
// every JSON error body. All counters live in the process-wide
// telemetry registry; /healthz, the gpusecmem_daemon expvar, and
// /metrics are views over the same instruments (see DESIGN.md
// "Serving telemetry").
//
// Concurrency and aliasing contract: a Server's handlers run on
// arbitrarily many goroutines; all cross-request state is either
// immutable after New (config, mux, logger), channel-based (the
// admission and worker semaphores), atomic (the telemetry registry's
// instruments), or internally locked (the memCache LRU). Cached
// *Result values are shared between requests and must be treated as
// immutable by everything downstream — render, encode, but never
// mutate.
package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"gpusecmem"
	"gpusecmem/internal/checkpoint"
	"gpusecmem/internal/cluster"
	"gpusecmem/internal/report"
	"gpusecmem/internal/resultcache"
	"gpusecmem/internal/runner"
	"gpusecmem/internal/telemetry"
)

// Config controls a daemon Server.
type Config struct {
	// Workers is the number of simulations allowed to run concurrently
	// (<=0 means GOMAXPROCS).
	Workers int
	// QueueDepth is how many admitted requests may wait for a worker
	// beyond the ones running (<0 means 2*Workers). Requests beyond
	// Workers+QueueDepth get 429.
	QueueDepth int
	// RequestTimeout bounds one request's simulation work (default
	// 2m). The simulation aborts cooperatively at the deadline and the
	// request fails with 504.
	RequestTimeout time.Duration
	// Cache is the persistent result store shared by all requests
	// (nil: in-memory LRU only).
	Cache gpusecmem.ResultCache
	// MemCacheEntries caps the in-process result LRU (default 256;
	// negative disables it).
	MemCacheEntries int
	// Shards > 1 runs every served simulation on the parallel partition
	// engine with that many shard goroutines. Results — and therefore
	// cache entries — are bit-identical to sequential runs, so a cache
	// directory can be shared between daemons with different shard
	// settings. Size Workers down accordingly: each running simulation
	// occupies Shards goroutines.
	Shards int
	// Checkpoints is the optional persistent machine-checkpoint store
	// (nil disables checkpointing). With it, every fresh simulation
	// resumes from the newest valid checkpoint of its lineage — so a
	// longer-horizon request for a config served before simulates only
	// the remaining cycles (source "resumed") — snapshots periodically,
	// and checkpoints once more when a shutdown cancels it mid-run.
	Checkpoints gpusecmem.CheckpointStore
	// CheckpointEvery is the checkpoint interval in cycles (default
	// 5000 when Checkpoints is set).
	CheckpointEvery uint64
	// Logger receives one structured record per request (trace ID,
	// route, status, duration, serving tier) plus lifecycle events.
	// nil disables request logging; build one with telemetry.NewLogger.
	Logger *slog.Logger
	// Cluster joins this daemon to a peer fleet (nil: single node).
	// Peer serving wants a persistent Cache too — without one this
	// node can answer no peer fetches. The caller starts the cluster's
	// health-probe loop.
	Cluster *cluster.Cluster
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Shards > 1 {
			// Each running simulation occupies Shards goroutines; divide
			// the cores between concurrent requests and intra-run shards.
			c.Workers /= c.Shards
		}
		if c.Workers < 1 {
			c.Workers = 1
		}
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Minute
	}
	if c.MemCacheEntries == 0 {
		c.MemCacheEntries = 256
	}
	if c.Checkpoints != nil && c.CheckpointEvery == 0 {
		c.CheckpointEvery = 5000
	}
	return c
}

// metricsSnapshot is the JSON view served by /healthz — a read-out of
// the telemetry registry's instruments, kept in the daemon's
// historical field names. It holds no state of its own: the registry
// is the single source, so this view, the expvar view, and /metrics
// cannot disagree.
type metricsSnapshot struct {
	Requests      uint64  `json:"requests"`
	Rejected      uint64  `json:"rejected"`
	Failed        uint64  `json:"failed"`
	Cancelled     uint64  `json:"cancelled"`
	MemHits       uint64  `json:"mem_hits"`
	DiskHits      uint64  `json:"disk_hits"`
	Simulated     uint64  `json:"simulated"`
	Resumed       uint64  `json:"resumed"`
	Checkpointed  uint64  `json:"checkpointed"`
	WatchdogFires uint64  `json:"watchdog_fires"`
	Running       int64   `json:"running"`
	Queued        int64   `json:"queued"`
	CompletedRuns uint64  `json:"completed_runs"`
	MeanRunMS     float64 `json:"mean_run_ms"`
}

// snapshotMetrics reads the current values out of the registry
// handles.
func snapshotMetrics() metricsSnapshot {
	s := metricsSnapshot{
		Requests:      met.admitted.Value(),
		Rejected:      met.rejected.Value(),
		Failed:        met.failed.Value(),
		Cancelled:     met.cancelled.Value(),
		MemHits:       met.memHits.Value(),
		DiskHits:      met.diskHits.Value(),
		Simulated:     met.simulated.Value(),
		Resumed:       met.resumed.Value(),
		Checkpointed:  met.saved.Value(),
		WatchdogFires: met.watchdog.Value(),
		Running:       int64(met.running.Value()),
		Queued:        int64(met.queued.Value()),
		CompletedRuns: met.completed.Value(),
	}
	if s.CompletedRuns > 0 {
		s.MeanRunMS = float64(met.wallMS.Value()) / float64(s.CompletedRuns)
	}
	return s
}

// observeRun folds one completed request's simulation wall time into
// the Retry-After estimate.
func observeRun(wall time.Duration) {
	met.completed.Inc()
	ms := wall.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	met.wallMS.Add(uint64(ms))
}

// Server is the secmemd request handler plus its shared state. Create
// with New, mount Handler on an http.Server, and call Abort during
// shutdown if draining exceeds its budget.
type Server struct {
	cfg       Config
	mem       *memCache
	flights   *flightGroup  // coalesces identical in-flight simulations
	admission chan struct{} // Workers+QueueDepth slots: full => 429
	workers   chan struct{} // Workers slots: queued requests block here
	start     time.Time
	mux       *http.ServeMux
	handler   http.Handler // mux wrapped in the telemetry middleware
	log       *slog.Logger

	base   context.Context // cancelled by Abort to kill in-flight sims
	cancel context.CancelFunc
}

var publishOnce sync.Once

// New builds a Server. The daemon's counters live in the process-wide
// telemetry registry (telemetry.Default); the gpusecmem_daemon expvar
// republishes a snapshot of that registry so the existing /debug/vars
// route keeps exposing them.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	initInstruments()
	s := &Server{
		cfg:       cfg,
		mem:       newMemCache(cfg.MemCacheEntries),
		flights:   newFlightGroup(),
		admission: make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		workers:   make(chan struct{}, cfg.Workers),
		start:     time.Now(),
		log:       cfg.Logger,
	}
	s.base, s.cancel = context.WithCancel(context.Background())

	// The registry replaces the old per-Server counter struct, so the
	// expvar needs no handle on the newest Server (the activeServer
	// workaround this code used to carry): per-instance state is wired
	// in as replace-on-reregister Func views instead.
	publishOnce.Do(func() {
		expvar.Publish("gpusecmem_daemon", expvar.Func(func() any {
			return telemetry.Default.Snapshot()
		}))
	})
	s.registerServerViews()

	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/catalogue", s.handleCatalogue)
	mux.HandleFunc("GET /api/run", s.handleRun)
	mux.HandleFunc("GET /api/experiment/{id}", s.handleExperiment)
	mux.HandleFunc("GET /api/cache", s.handleCacheGet)
	mux.HandleFunc("PUT /api/cache", s.handleCachePut)
	mux.HandleFunc("GET /api/cluster", s.handleCluster)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", telemetry.Default.Handler())
	// The existing sweep debug layer: /progress, /debug/vars (which
	// now includes gpusecmem_daemon), /debug/pprof/*.
	dbg := runner.NewDebugHandler()
	mux.Handle("/progress", dbg)
	mux.Handle("/debug/", dbg)
	s.mux = mux
	s.handler = s.withTelemetry(mux)
	return s
}

// Handler returns the daemon's routes wrapped in the telemetry
// middleware (trace IDs, RED metrics, request logging).
func (s *Server) Handler() http.Handler { return s.handler }

// Abort cancels every in-flight simulation. Call it when a graceful
// drain exceeds its budget: blocked handlers fail fast and the
// http.Server shutdown completes.
func (s *Server) Abort() { s.cancel() }

// httpError is the uniform JSON error payload. Every error body
// carries the request's trace ID so a client-reported failure — a
// 429, a 504, a shutdown 503 — can be correlated with the daemon's
// logs and metrics.
func httpError(w http.ResponseWriter, r *http.Request, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	payload := map[string]any{
		"error": fmt.Sprintf(format, args...),
		"code":  code,
	}
	if id := telemetry.TraceID(r.Context()); id != "" {
		payload["trace_id"] = id
	}
	json.NewEncoder(w).Encode(payload)
}

// admit claims a simulation slot, or answers the request itself (429
// on a full queue, 503 after Abort) and reports ok=false. On ok the
// caller runs with release deferred and a context that dies with the
// client, the timeout, or the daemon. The returned context carries
// the request's trace ID (from the telemetry middleware) into the
// simulator.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (ctx context.Context, release func(), ok bool) {
	// Post-Abort the select below could still win a free worker slot;
	// refuse deterministically instead.
	if s.base.Err() != nil {
		httpError(w, r, http.StatusServiceUnavailable, "daemon shutting down")
		return nil, nil, false
	}
	select {
	case s.admission <- struct{}{}:
	default:
		met.rejected.Inc()
		w.Header().Set("Retry-After", s.retryAfter())
		httpError(w, r, http.StatusTooManyRequests, "admission queue full (%d running + %d queued)",
			s.cfg.Workers, s.cfg.QueueDepth)
		return nil, nil, false
	}
	met.queued.Add(1)

	// Queued: wait for one of the Workers run slots.
	select {
	case s.workers <- struct{}{}:
	case <-r.Context().Done():
		met.queued.Add(-1)
		<-s.admission
		met.cancelled.Inc()
		httpError(w, r, statusClientClosedRequest, "request cancelled while queued")
		return nil, nil, false
	case <-s.base.Done():
		met.queued.Add(-1)
		<-s.admission
		httpError(w, r, http.StatusServiceUnavailable, "daemon shutting down")
		return nil, nil, false
	}
	met.queued.Add(-1)
	met.running.Add(1)
	met.admitted.Inc()

	ctx, cancel := context.WithTimeout(s.base, s.cfg.RequestTimeout)
	ctx = telemetry.WithTraceID(ctx, telemetry.TraceID(r.Context()))
	stop := context.AfterFunc(r.Context(), cancel)
	release = func() {
		stop()
		cancel()
		met.running.Add(-1)
		<-s.workers
		<-s.admission
	}
	return ctx, release, true
}

// retryAfter estimates (in whole seconds, clamped to [1, 60]) when a
// rejected request is worth retrying: the backlog ahead of it —
// everything running plus everything queued — divided across the
// worker pool, at the observed mean simulation wall time. Before any
// run has completed the estimate degrades to the old one-second hint.
// The two inputs are surfaced as the gpusecmem_retry_mean_run_ms and
// gpusecmem_retry_backlog gauges.
func (s *Server) retryAfter() string {
	mean := time.Second
	if n := met.completed.Value(); n > 0 {
		mean = time.Duration(met.wallMS.Value()/n) * time.Millisecond
	}
	backlog := int64(met.running.Value() + met.queued.Value())
	if backlog < 1 {
		backlog = 1
	}
	secs := int64(math.Ceil(mean.Seconds() * float64(backlog) / float64(s.cfg.Workers)))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return strconv.FormatInt(secs, 10)
}

// statusClientClosedRequest is nginx's 499: the client went away
// before we could answer. Nothing standard fits better.
const statusClientClosedRequest = 499

// failStatus maps a simulation error to an HTTP status and counts it.
func (s *Server) failStatus(err error) int {
	var stall *gpusecmem.StallError
	if errors.As(err, &stall) {
		met.watchdog.Inc()
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		met.cancelled.Inc()
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		met.cancelled.Inc()
		if s.base.Err() != nil {
			return http.StatusServiceUnavailable
		}
		return statusClientClosedRequest
	default:
		met.failed.Inc()
		return http.StatusInternalServerError
	}
}

// --- catalogue ---

type catalogueExperiment struct {
	ID           string `json:"id"`
	Title        string `json:"title"`
	PaperFinding string `json:"paper_finding"`
}

func (s *Server) handleCatalogue(w http.ResponseWriter, r *http.Request) {
	exps := gpusecmem.Experiments()
	ces := make([]catalogueExperiment, 0, len(exps))
	for _, e := range exps {
		ces = append(ces, catalogueExperiment{ID: e.ID, Title: e.Title, PaperFinding: e.PaperFinding})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]any{
		"benchmarks":  gpusecmem.Benchmarks(),
		"schemes":     gpusecmem.SchemeNames(),
		"experiments": ces,
		"formats":     []string{"text", "csv", "md"},
	})
}

// --- ad-hoc runs ---

// runResponse is the /api/run payload. Source records where the
// result came from — "memory", "disk", "peer", "resumed", or
// "simulated" — so callers (and the CI smoke tests) can assert cache
// and cluster behaviour. TraceID repeats the X-Secmem-Trace-Id header
// for clients that only keep bodies.
type runResponse struct {
	Benchmark string          `json:"benchmark"`
	Scheme    string          `json:"scheme"`
	Key       string          `json:"key"`
	Source    string          `json:"source"`
	TraceID   string          `json:"trace_id,omitempty"`
	WallMS    float64         `json:"wall_ms"`
	Result    json.RawMessage `json:"result"`
}

// parseRunConfig resolves the /api/run query into a validated Config.
// It accepts the same knobs as the secmemsim CLI.
func parseRunConfig(q url.Values) (cfg gpusecmem.Config, scheme, bench string, err error) {
	get := func(key, def string) string {
		if v := q.Get(key); v != "" {
			return v
		}
		return def
	}
	scheme = get("scheme", "ctr_mac_bmt")
	bench = get("bench", "fdtd2d")
	cfg, err = gpusecmem.ConfigForScheme(scheme)
	if err != nil {
		return cfg, scheme, bench, err
	}
	intArg := func(key string, def int) int {
		if err != nil {
			return def
		}
		v := get(key, "")
		if v == "" {
			return def
		}
		n, perr := strconv.Atoi(v)
		if perr != nil {
			err = fmt.Errorf("bad %s: %v", key, perr)
			return def
		}
		return n
	}
	cycles := get("cycles", "24000")
	if cfg.MaxCycles, err = strconv.ParseUint(cycles, 10, 64); err != nil {
		return cfg, scheme, bench, fmt.Errorf("bad cycles: %v", err)
	}
	if cfg.Secure.Encryption != gpusecmem.EncNone {
		cfg.Secure.AESLatency = intArg("aes-latency", cfg.Secure.AESLatency)
		cfg.Secure.AESEngines = intArg("aes-engines", cfg.Secure.AESEngines)
		if kb := intArg("meta-kb", 0); kb > 0 {
			cfg.Secure.MetaCacheBytes = kb * 1024
		}
		cfg.Secure.MetaMSHRs = intArg("mshrs", cfg.Secure.MetaMSHRs)
		if v := q.Get("unified"); v != "" {
			cfg.Secure.Unified = v == "true" || v == "1"
		}
	}
	if err != nil {
		return cfg, scheme, bench, err
	}
	if q.Get("audit") == "true" || q.Get("audit") == "1" {
		cfg.Audit = true
	}
	return cfg, scheme, bench, cfg.Validate()
}

func validBenchmark(name string) bool {
	for _, b := range gpusecmem.Benchmarks() {
		if b == name {
			return true
		}
	}
	return false
}

// writeRun renders one /api/run success: tier-attributed duration
// metric, the X-Run-Source header, and the JSON payload.
func (s *Server) writeRun(w http.ResponseWriter, r *http.Request, res *gpusecmem.Result, source, scheme, bench, key string, wall time.Duration) {
	body, err := json.Marshal(res)
	if err != nil {
		httpError(w, r, http.StatusInternalServerError, "encode result: %v", err)
		return
	}
	met.runDur.With(source).Observe(uint64(wall.Microseconds()))
	w.Header().Set("X-Run-Source", source)
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(runResponse{
		Benchmark: bench,
		Scheme:    scheme,
		Key:       runner.KeyDigest(key),
		Source:    source,
		TraceID:   telemetry.TraceID(r.Context()),
		WallMS:    float64(wall.Microseconds()) / 1000,
		Result:    body,
	})
}

// handleRun serves one simulation in escalating cost order. Cached
// tiers — memory, disk, and (clustered) the owner's store — answer
// before admission, so cached lookups never wait on, or occupy, a
// simulation slot. A miss on everything either forwards the whole
// request to the key's live owner (cluster-wide coalescing; never
// when the request already carries the hop guard) or admits and
// simulates locally, with identical concurrent misses sharing one
// flight.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	cfg, scheme, bench, err := parseRunConfig(r.URL.Query())
	if err != nil {
		httpError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	if !validBenchmark(bench) {
		httpError(w, r, http.StatusBadRequest, "unknown benchmark %q (see /api/catalogue)", bench)
		return
	}
	key := gpusecmem.RunKey(cfg, bench)
	t0 := time.Now()

	view := s.newView(r.Context())
	if res, ok := view.Get(key); ok {
		view.count()
		s.writeRun(w, r, res, view.source(), scheme, bench, key, time.Since(t0))
		return
	}
	view.count()

	if cl := s.cfg.Cluster; cl != nil && r.Header.Get(cluster.HopHeader) == "" {
		if owner, self := cl.Owner(key); !self && cl.Up(owner) {
			resp, err := cl.Forward(r, owner)
			if err == nil {
				met.forwarded.Inc()
				proxyResponse(w, resp)
				return
			}
			// Owner unreachable: fail open to a local simulation (the
			// Forward call already marked the owner down, so the
			// write-through in Put will skip it too).
			met.forwardFallbacks.Inc()
		}
	}

	ctx, release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()

	res, source, shared, err := s.flights.do(ctx, key, func() (*gpusecmem.Result, string, error) {
		// Re-check the cache under the flight: a request that queued
		// behind the worker pool may find its result already landed.
		v := s.newView(ctx)
		if res, ok := v.Get(key); ok {
			v.count()
			return res, v.source(), nil
		}
		cfg := cfg
		cfg.Shards = s.cfg.Shards // json:"-": does not change the key
		var ck *ckptView
		var res *gpusecmem.Result
		var err error
		if s.cfg.Checkpoints != nil {
			ck = &ckptView{store: s.cfg.Checkpoints}
			res, err = gpusecmem.SimulateCheckpointed(ctx, cfg, bench, ck, s.cfg.CheckpointEvery)
		} else {
			res, err = gpusecmem.SimulateContext(ctx, cfg, bench)
		}
		if err != nil {
			return nil, "", err
		}
		v.Put(key, res)
		v.count()
		ck.count()
		return res, ck.sourceOr("simulated"), nil
	})
	if err != nil {
		httpError(w, r, s.failStatus(err), "%v", err)
		return
	}
	wall := time.Since(t0)
	if shared {
		met.coalesced.Inc()
	} else {
		// Only flight leaders feed the Retry-After mean: a coalesced
		// waiter's wall time restates the same simulation.
		observeRun(wall)
	}
	s.writeRun(w, r, res, source, scheme, bench, key, wall)
}

// --- experiment tables ---

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := gpusecmem.ExperimentByID(id)
	if !ok {
		httpError(w, r, http.StatusNotFound, "unknown experiment %q (see /api/catalogue)", id)
		return
	}
	q := r.URL.Query()
	format := q.Get("format")
	if format == "" {
		format = "text"
	}
	if !report.ValidFormat(format) {
		httpError(w, r, http.StatusBadRequest, "unknown format %q (text|csv|md)", format)
		return
	}
	opts := gpusecmem.Options{
		Audit:  q.Get("audit") == "true" || q.Get("audit") == "1",
		Shards: s.cfg.Shards,
	}
	if v := q.Get("cycles"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil || n == 0 {
			httpError(w, r, http.StatusBadRequest, "bad cycles %q", v)
			return
		}
		opts.Cycles = n
	}
	if v := q.Get("benchmarks"); v != "" {
		for _, b := range strings.Split(v, ",") {
			if !validBenchmark(b) {
				httpError(w, r, http.StatusBadRequest, "unknown benchmark %q (see /api/catalogue)", b)
				return
			}
			opts.Benchmarks = append(opts.Benchmarks, b)
		}
	}

	ctx, release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()

	view := s.newView(ctx)
	gctx := gpusecmem.NewContext(opts)
	gctx.SetResultCache(view)
	ckpt := s.armCheckpoints(gctx)
	defer view.count()
	defer ckpt.count()

	// The runner gives us planning, panic recovery, and render-order
	// determinism for free; one job keeps this request to its one
	// admission slot.
	t0 := time.Now()
	rep := runner.Run(ctx, gctx, []gpusecmem.Experiment{e}, runner.Options{Jobs: 1})
	if rep.Aborted {
		httpError(w, r, s.failStatus(ctx.Err()), "experiment aborted: %v", ctx.Err())
		return
	}
	res := rep.Results[0]
	if res.Err != nil {
		httpError(w, r, s.failStatus(res.Err), "experiment %s: %v", id, res.Err)
		return
	}
	wall := time.Since(t0)
	observeRun(wall)
	source := ckpt.sourceOr(view.source())
	met.runDur.With(source).Observe(uint64(wall.Microseconds()))

	switch format {
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	w.Header().Set("X-Run-Source", source)
	fmt.Fprintf(w, "# %s\n# paper: %s\n", e.Title, e.PaperFinding)
	for _, t := range res.Tables {
		if err := t.Write(w, format); err != nil {
			return // headers are out; nothing better to do
		}
		fmt.Fprintln(w)
	}
}

// --- health ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	payload := map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
		"workers":        s.cfg.Workers,
		"queue_depth":    s.cfg.QueueDepth,
		"metrics":        snapshotMetrics(),
		"mem_cache_len":  s.mem.len(),
	}
	s.storeStats(payload)
	enc.Encode(payload)
}

// storeStats adds the persistent stores' own counters (hits, misses,
// puts, self-heal errors) to the healthz payload when the configured
// implementations expose them — the on-disk stores do; test doubles
// need not. The same Stats feed the registry's Func views, so
// /healthz and /metrics read one source.
func (s *Server) storeStats(payload map[string]any) {
	if cs, ok := s.cfg.Cache.(interface{ Stats() resultcache.Stats }); ok {
		payload["result_cache"] = cs.Stats()
	}
	if ks, ok := s.cfg.Checkpoints.(interface{ Stats() checkpoint.Stats }); ok {
		payload["checkpoint_store"] = ks.Stats()
	}
}
