package daemon

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"gpusecmem"
)

// memCache is the daemon's in-process result store: a bounded LRU
// over canonical RunKeys, shared by every request. It only ever holds
// pointers to immutable completed Results, so concurrent readers need
// no copies. cap<=0 disables it (every Get misses, Put is a no-op) —
// useful when a disk cache is the only tier wanted.
type memCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recent
	entries map[string]*list.Element
}

type memEntry struct {
	key string
	res *gpusecmem.Result
}

func newMemCache(cap int) *memCache {
	return &memCache{cap: cap, order: list.New(), entries: make(map[string]*list.Element)}
}

func (m *memCache) get(key string) (*gpusecmem.Result, bool) {
	if m.cap <= 0 {
		return nil, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.entries[key]
	if !ok {
		return nil, false
	}
	m.order.MoveToFront(el)
	return el.Value.(*memEntry).res, true
}

func (m *memCache) put(key string, res *gpusecmem.Result) {
	if m.cap <= 0 || res == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.entries[key]; ok {
		el.Value.(*memEntry).res = res
		m.order.MoveToFront(el)
		return
	}
	m.entries[key] = m.order.PushFront(&memEntry{key: key, res: res})
	for m.order.Len() > m.cap {
		oldest := m.order.Back()
		m.order.Remove(oldest)
		delete(m.entries, oldest.Value.(*memEntry).key)
	}
}

func (m *memCache) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.order.Len()
}

// cacheView is a per-request gpusecmem.ResultCache over the shared
// tiers: memory first, then the persistent store (promoting disk hits
// into memory). Each request gets its own view so hit attribution —
// the "source" field the smoke tests assert on — is exact even under
// concurrent requests.
type cacheView struct {
	mem  *memCache
	disk gpusecmem.ResultCache // nil when the daemon has no -cache-dir

	memHits, memMisses, diskHits, diskMisses, puts atomic.Uint64
}

func (s *Server) newView() *cacheView {
	return &cacheView{mem: s.mem, disk: s.cfg.Cache}
}

func (v *cacheView) Get(key string) (*gpusecmem.Result, bool) {
	if res, ok := v.mem.get(key); ok {
		v.memHits.Add(1)
		return res, true
	}
	v.memMisses.Add(1)
	if v.disk != nil {
		if res, ok := v.disk.Get(key); ok {
			v.diskHits.Add(1)
			v.mem.put(key, res)
			return res, true
		}
		v.diskMisses.Add(1)
	}
	return nil, false
}

func (v *cacheView) Put(key string, res *gpusecmem.Result) {
	v.puts.Add(1)
	v.mem.put(key, res)
	if v.disk != nil {
		v.disk.Put(key, res)
	}
}

// source summarizes where this request's results came from, worst
// tier wins: any fresh simulation makes the whole request
// "simulated", else any disk read makes it "disk", else "memory".
func (v *cacheView) source() string {
	switch {
	case v.puts.Load() > 0:
		return "simulated"
	case v.diskHits.Load() > 0:
		return "disk"
	default:
		return "memory"
	}
}

// count folds the view's tallies into the registry's cache-tier
// counters. Local atomics exist only for per-request source
// attribution; the registry is the durable surface.
func (v *cacheView) count() {
	met.memHits.Add(v.memHits.Load())
	met.memMisses.Add(v.memMisses.Load())
	met.diskHits.Add(v.diskHits.Load())
	met.diskMisses.Add(v.diskMisses.Load())
	met.simulated.Add(v.puts.Load())
}

// ckptView is a per-request gpusecmem.CheckpointStore over the shared
// store. Like cacheView it exists for exact attribution: a Latest hit
// means this request's simulation started from a mid-run snapshot
// instead of cycle 0, which the response reports as source "resumed".
type ckptView struct {
	store gpusecmem.CheckpointStore

	resumes, saves atomic.Uint64
}

// armCheckpoints routes gctx's fresh simulations through the daemon's
// checkpoint store, when one is configured, and returns the request's
// attribution view (nil — and safe to use — when checkpointing is
// off). Shutdown checkpointing needs no extra plumbing: cancelling a
// checkpointed run snapshots it before the simulator returns.
func (s *Server) armCheckpoints(gctx *gpusecmem.Context) *ckptView {
	if s.cfg.Checkpoints == nil {
		return nil
	}
	v := &ckptView{store: s.cfg.Checkpoints}
	gctx.SetCheckpointStore(v, s.cfg.CheckpointEvery)
	return v
}

func (v *ckptView) Latest(key string, maxCycle uint64) (uint64, []byte, bool) {
	t0 := time.Now()
	cycle, state, ok := v.store.Latest(key, maxCycle)
	met.ckptRestoreUs.ObserveSince(t0)
	if ok {
		v.resumes.Add(1)
	}
	return cycle, state, ok
}

func (v *ckptView) Put(key string, cycle uint64, state []byte) error {
	v.saves.Add(1)
	t0 := time.Now()
	err := v.store.Put(key, cycle, state)
	met.ckptSaveUs.ObserveSince(t0)
	return err
}

// sourceOr returns "resumed" when this request's simulation restarted
// from a checkpoint — outranking the cache tiers, which only see
// whole-run results — and the cache-tier source otherwise.
func (v *ckptView) sourceOr(cacheSource string) string {
	if v != nil && v.resumes.Load() > 0 {
		return "resumed"
	}
	return cacheSource
}

// count folds the view's tallies into the registry's checkpoint
// counters.
func (v *ckptView) count() {
	if v == nil {
		return
	}
	met.resumed.Add(v.resumes.Load())
	met.saved.Add(v.saves.Load())
}
