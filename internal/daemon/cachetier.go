package daemon

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
	"time"

	"gpusecmem"
	"gpusecmem/internal/cluster"
	"gpusecmem/internal/resultcache"
)

// rawStore is the optional raw-envelope face of the persistent result
// store (internal/resultcache implements it). When the configured
// Cache exposes it, the daemon serves peer fetches and installs peer
// pushes without a decode/re-encode round trip.
type rawStore interface {
	GetRaw(key string) ([]byte, bool)
	PutRaw(key string, raw []byte) error
}

// memCache is the daemon's in-process result store: a bounded LRU
// over canonical RunKeys, shared by every request. It only ever holds
// pointers to immutable completed Results, so concurrent readers need
// no copies. cap<=0 disables it (every Get misses, Put is a no-op) —
// useful when a disk cache is the only tier wanted.
type memCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recent
	entries map[string]*list.Element

	// evictions counts capacity evictions (not overwrites); surfaced
	// as gpusecmem_cache_evictions_total so a thrashing LRU is visible
	// instead of silently re-simulating.
	evictions atomic.Uint64
}

type memEntry struct {
	key string
	res *gpusecmem.Result
}

func newMemCache(cap int) *memCache {
	return &memCache{cap: cap, order: list.New(), entries: make(map[string]*list.Element)}
}

func (m *memCache) get(key string) (*gpusecmem.Result, bool) {
	if m.cap <= 0 {
		return nil, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.entries[key]
	if !ok {
		return nil, false
	}
	m.order.MoveToFront(el)
	return el.Value.(*memEntry).res, true
}

func (m *memCache) put(key string, res *gpusecmem.Result) {
	if m.cap <= 0 || res == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.entries[key]; ok {
		el.Value.(*memEntry).res = res
		m.order.MoveToFront(el)
		return
	}
	m.entries[key] = m.order.PushFront(&memEntry{key: key, res: res})
	for m.order.Len() > m.cap {
		oldest := m.order.Back()
		m.order.Remove(oldest)
		delete(m.entries, oldest.Value.(*memEntry).key)
		m.evictions.Add(1)
	}
}

func (m *memCache) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.order.Len()
}

// cacheView is a per-request gpusecmem.ResultCache over the shared
// tiers, consulted in cost order: memory, then the persistent store
// (promoting disk hits into memory), then — in cluster mode, for keys
// another live member owns — the owner's store over HTTP (DESIGN.md
// §16). Each request gets its own view so hit attribution — the
// "source" field the smoke tests assert on — is exact even under
// concurrent requests.
type cacheView struct {
	mem   *memCache
	disk  gpusecmem.ResultCache // nil when the daemon has no -cache-dir
	peers *cluster.Cluster      // nil when the daemon is not clustered
	ctx   context.Context       // request context: peer calls carry its trace ID

	memHits, memMisses, diskHits, diskMisses, peerHits, peerMisses, puts atomic.Uint64
}

func (s *Server) newView(ctx context.Context) *cacheView {
	if ctx == nil {
		ctx = context.Background()
	}
	return &cacheView{mem: s.mem, disk: s.cfg.Cache, peers: s.cfg.Cluster, ctx: ctx}
}

func (v *cacheView) Get(key string) (*gpusecmem.Result, bool) {
	if res, ok := v.mem.get(key); ok {
		v.memHits.Add(1)
		return res, true
	}
	v.memMisses.Add(1)
	if v.disk != nil {
		if res, ok := v.disk.Get(key); ok {
			v.diskHits.Add(1)
			v.mem.put(key, res)
			return res, true
		}
		v.diskMisses.Add(1)
	}
	if v.peers != nil {
		if owner, self := v.peers.Owner(key); !self && v.peers.Up(owner) {
			if raw, ok := v.peers.FetchRaw(v.ctx, owner, key); ok {
				// The fetched envelope is validated on decode; a peer
				// serving garbage degrades to a miss, never to a wrong
				// result.
				if res, err := resultcache.DecodeEnvelope(raw, key); err == nil {
					v.peerHits.Add(1)
					v.mem.put(key, res)
					return res, true
				}
			}
			v.peerMisses.Add(1)
		}
	}
	return nil, false
}

func (v *cacheView) Put(key string, res *gpusecmem.Result) {
	v.puts.Add(1)
	v.mem.put(key, res)

	// In cluster mode a result simulated off-owner (fail-open, or an
	// experiment sub-run) is write-through replicated to the key's
	// owner, encoded exactly once: the same raw envelope feeds the
	// local store (PutRaw) and the peer push. Detached from the
	// request context — the response may already be leaving — but
	// bounded by the cluster client's own timeout.
	var raw []byte
	if v.peers != nil {
		if owner, self := v.peers.Owner(key); !self && v.peers.Up(owner) {
			if b, err := resultcache.EncodeEnvelope(key, res); err == nil {
				raw = b
				v.peers.PushRaw(context.WithoutCancel(v.ctx), owner, key, raw)
			}
		}
	}
	if v.disk != nil {
		if rs, ok := v.disk.(rawStore); ok && raw != nil {
			if err := rs.PutRaw(key, raw); err == nil {
				return
			}
			// A failed raw write must not strand a freshly simulated
			// result in memory only: fall through to the typed Put so
			// the disk tier still gets it (counted so a flaky store is
			// visible, not silent).
			met.putRawFallbacks.Inc()
		}
		v.disk.Put(key, res)
	}
}

// source summarizes where this request's results came from, worst
// tier wins: any fresh simulation makes the whole request
// "simulated", else any peer fetch makes it "peer", else any disk
// read makes it "disk", else "memory".
func (v *cacheView) source() string {
	switch {
	case v.puts.Load() > 0:
		return "simulated"
	case v.peerHits.Load() > 0:
		return "peer"
	case v.diskHits.Load() > 0:
		return "disk"
	default:
		return "memory"
	}
}

// count folds the view's tallies into the registry's cache-tier
// counters. Local atomics exist only for per-request source
// attribution; the registry is the durable surface. Call exactly once
// per view.
func (v *cacheView) count() {
	met.memHits.Add(v.memHits.Load())
	met.memMisses.Add(v.memMisses.Load())
	met.diskHits.Add(v.diskHits.Load())
	met.diskMisses.Add(v.diskMisses.Load())
	met.peerHits.Add(v.peerHits.Load())
	met.peerMisses.Add(v.peerMisses.Load())
	met.simulated.Add(v.puts.Load())
}

// ckptView is a per-request gpusecmem.CheckpointStore over the shared
// store. Like cacheView it exists for exact attribution: a Latest hit
// means this request's simulation started from a mid-run snapshot
// instead of cycle 0, which the response reports as source "resumed".
type ckptView struct {
	store gpusecmem.CheckpointStore

	resumes, saves atomic.Uint64
}

// armCheckpoints routes gctx's fresh simulations through the daemon's
// checkpoint store, when one is configured, and returns the request's
// attribution view (nil — and safe to use — when checkpointing is
// off). Shutdown checkpointing needs no extra plumbing: cancelling a
// checkpointed run snapshots it before the simulator returns.
func (s *Server) armCheckpoints(gctx *gpusecmem.Context) *ckptView {
	if s.cfg.Checkpoints == nil {
		return nil
	}
	v := &ckptView{store: s.cfg.Checkpoints}
	gctx.SetCheckpointStore(v, s.cfg.CheckpointEvery)
	return v
}

func (v *ckptView) Latest(key string, maxCycle uint64) (uint64, []byte, bool) {
	t0 := time.Now()
	cycle, state, ok := v.store.Latest(key, maxCycle)
	met.ckptRestoreUs.ObserveSince(t0)
	if ok {
		v.resumes.Add(1)
	}
	return cycle, state, ok
}

func (v *ckptView) Put(key string, cycle uint64, state []byte) error {
	v.saves.Add(1)
	t0 := time.Now()
	err := v.store.Put(key, cycle, state)
	met.ckptSaveUs.ObserveSince(t0)
	return err
}

// sourceOr returns "resumed" when this request's simulation restarted
// from a checkpoint — outranking the cache tiers, which only see
// whole-run results — and the cache-tier source otherwise.
func (v *ckptView) sourceOr(cacheSource string) string {
	if v != nil && v.resumes.Load() > 0 {
		return "resumed"
	}
	return cacheSource
}

// count folds the view's tallies into the registry's checkpoint
// counters.
func (v *ckptView) count() {
	if v == nil {
		return
	}
	met.resumed.Add(v.resumes.Load())
	met.saved.Add(v.saves.Load())
}
