package daemon

import (
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"gpusecmem/internal/checkpoint"
	"gpusecmem/internal/resultcache"
	"gpusecmem/internal/telemetry"
)

// instruments holds the daemon's handles into the telemetry registry.
// These are the *only* request counters the daemon keeps: the
// /healthz JSON, the gpusecmem_daemon expvar, and the /metrics
// exposition are all views over these same instruments, so the three
// surfaces cannot drift apart.
type instruments struct {
	admitted  *telemetry.Counter
	rejected  *telemetry.Counter
	failed    *telemetry.Counter
	cancelled *telemetry.Counter
	watchdog  *telemetry.Counter
	running   *telemetry.Gauge
	queued    *telemetry.Gauge
	completed *telemetry.Counter
	wallMS    *telemetry.Counter

	httpReqs *telemetry.CounterVec   // route, code
	httpDur  *telemetry.HistogramVec // route

	memHits         *telemetry.Counter
	memMisses       *telemetry.Counter
	diskHits        *telemetry.Counter
	diskMisses      *telemetry.Counter
	peerHits        *telemetry.Counter
	peerMisses      *telemetry.Counter
	putRawFallbacks *telemetry.Counter
	simulated       *telemetry.Counter
	resumed    *telemetry.Counter
	saved      *telemetry.Counter
	runDur     *telemetry.HistogramVec // tier: memory|disk|peer|simulated|resumed

	forwarded        *telemetry.Counter
	forwardFallbacks *telemetry.Counter
	coalesced        *telemetry.Counter

	ckptRestoreUs *telemetry.Histogram
	ckptSaveUs    *telemetry.Histogram
}

var (
	met     instruments
	metOnce sync.Once
)

// initInstruments registers the daemon's metric families in the
// process-wide registry, once. Label sets are fixed and tiny (route
// buckets, cache tiers, status codes) — run keys, benchmarks, and
// request parameters never become labels (the registry's cardinality
// contract; see internal/telemetry).
func initInstruments() {
	metOnce.Do(func() {
		reg := telemetry.Default
		met = instruments{
			admitted:  reg.Counter("gpusecmem_requests_admitted_total", "requests admitted to a simulation slot"),
			rejected:  reg.Counter("gpusecmem_admission_rejected_total", "429s from a full admission queue"),
			failed:    reg.Counter("gpusecmem_requests_failed_total", "simulation or render failures"),
			cancelled: reg.Counter("gpusecmem_requests_cancelled_total", "client disconnects, timeouts, and shutdown cancellations"),
			watchdog:  reg.Counter("gpusecmem_watchdog_fires_total", "served simulations killed by the forward-progress watchdog"),
			running:   reg.Gauge("gpusecmem_admission_running", "simulations running right now"),
			queued:    reg.Gauge("gpusecmem_admission_queued", "admitted requests waiting for a worker slot"),
			completed: reg.Counter("gpusecmem_runs_completed_total", "successfully served requests (feeds the Retry-After estimate)"),
			wallMS:    reg.Counter("gpusecmem_run_wall_ms_total", "summed wall milliseconds of completed requests"),

			httpReqs: reg.CounterVec("gpusecmem_http_requests_total", "HTTP requests by route bucket and status code", "route", "code"),
			httpDur:  reg.HistogramVec("gpusecmem_http_request_duration_us", "HTTP request duration in microseconds by route bucket", "route"),

			putRawFallbacks: reg.Counter("gpusecmem_cache_putraw_fallbacks_total", "raw envelope writes that failed and fell back to a typed disk Put"),
			simulated:       reg.Counter("gpusecmem_runs_simulated_total", "requests that ran a fresh simulation"),
			resumed:   reg.Counter("gpusecmem_checkpoint_restores_total", "served simulations resumed from a checkpoint"),
			saved:     reg.Counter("gpusecmem_checkpoint_saves_total", "checkpoints written while serving"),
			runDur:    reg.HistogramVec("gpusecmem_run_duration_us", "end-to-end request simulation time in microseconds by serving tier", "tier"),

			forwarded:        reg.Counter("gpusecmem_cluster_forwards_total", "/api/run requests proxied to the key's owner for cluster-wide coalescing"),
			forwardFallbacks: reg.Counter("gpusecmem_cluster_forward_fallbacks_total", "forwards abandoned for local simulation because the owner was down or unreachable"),
			coalesced:        reg.Counter("gpusecmem_coalesced_requests_total", "requests that shared another request's in-flight simulation instead of running their own"),

			ckptRestoreUs: reg.Histogram("gpusecmem_checkpoint_restore_us", "checkpoint store Latest (restore lookup) latency in microseconds"),
			ckptSaveUs:    reg.Histogram("gpusecmem_checkpoint_save_us", "checkpoint store Put (snapshot write) latency in microseconds"),
		}
		hits := reg.CounterVec("gpusecmem_cache_hits_total", "result-cache hits by tier", "tier")
		misses := reg.CounterVec("gpusecmem_cache_misses_total", "result-cache misses by tier", "tier")
		met.memHits, met.memMisses = hits.With("memory"), misses.With("memory")
		met.diskHits, met.diskMisses = hits.With("disk"), misses.With("disk")
		met.peerHits, met.peerMisses = hits.With("peer"), misses.With("peer")

		// The Retry-After inputs, surfaced so overload behaviour is
		// observable: the derived mean completed-run wall time and the
		// backlog (running + queued) it is multiplied by.
		reg.GaugeFunc("gpusecmem_retry_mean_run_ms", "observed mean completed-run wall time (ms), the Retry-After base", func() float64 {
			if n := met.completed.Value(); n > 0 {
				return float64(met.wallMS.Value()) / float64(n)
			}
			return 0
		})
		reg.GaugeFunc("gpusecmem_retry_backlog", "running + queued requests, the Retry-After multiplier", func() float64 {
			return met.running.Value() + met.queued.Value()
		})
	})
}

// registerServerViews wires the per-instance state of this Server —
// the memory-LRU fill level and the persistent stores' own counters —
// into the registry as Func views. Re-registration replaces the
// callback, so the newest Server wins: exactly the semantics the old
// activeServer expvar workaround existed to provide.
func (s *Server) registerServerViews() {
	reg := telemetry.Default
	reg.GaugeFunc("gpusecmem_memcache_entries", "entries in the in-process result LRU", func() float64 {
		return float64(s.mem.len())
	})
	reg.CounterFunc("gpusecmem_cache_evictions_total", "results evicted from the in-process LRU by capacity pressure", func() float64 {
		return float64(s.mem.evictions.Load())
	})
	if cs, ok := s.cfg.Cache.(interface{ Stats() resultcache.Stats }); ok {
		reg.CounterFunc("gpusecmem_resultcache_hits_total", "persistent result store hits", func() float64 { return float64(cs.Stats().Hits) })
		reg.CounterFunc("gpusecmem_resultcache_misses_total", "persistent result store misses", func() float64 { return float64(cs.Stats().Misses) })
		reg.CounterFunc("gpusecmem_resultcache_puts_total", "persistent result store writes", func() float64 { return float64(cs.Stats().Puts) })
		reg.CounterFunc("gpusecmem_resultcache_errors_total", "persistent result store self-healed corrupt entries and failed writes", func() float64 { return float64(cs.Stats().Errors) })
	}
	if ks, ok := s.cfg.Checkpoints.(interface{ Stats() checkpoint.Stats }); ok {
		reg.CounterFunc("gpusecmem_checkpoint_store_hits_total", "checkpoint store restore hits", func() float64 { return float64(ks.Stats().Hits) })
		reg.CounterFunc("gpusecmem_checkpoint_store_misses_total", "checkpoint store restore misses", func() float64 { return float64(ks.Stats().Misses) })
		reg.CounterFunc("gpusecmem_checkpoint_store_puts_total", "checkpoint store snapshot writes", func() float64 { return float64(ks.Stats().Puts) })
		reg.CounterFunc("gpusecmem_checkpoint_store_errors_total", "checkpoint store self-healed corrupt entries and failed writes", func() float64 { return float64(ks.Stats().Errors) })
	}
}

// routeLabel buckets a request path into the fixed route label set, so
// path cardinality (experiment IDs, probes for random URLs) can never
// leak into the registry.
func routeLabel(path string) string {
	switch {
	case path == "/api/run":
		return "/api/run"
	case path == "/api/catalogue":
		return "/api/catalogue"
	case path == "/api/cache":
		return "/api/cache"
	case path == "/api/cluster":
		return "/api/cluster"
	case strings.HasPrefix(path, "/api/experiment/"):
		return "/api/experiment"
	case path == "/healthz":
		return "/healthz"
	case path == "/metrics":
		return "/metrics"
	case path == "/progress":
		return "/progress"
	case strings.HasPrefix(path, "/debug/"):
		return "/debug"
	default:
		return "other"
	}
}

// statusWriter captures the response status code for the RED metrics
// and the request log line.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// withTelemetry is the daemon's outermost middleware: it mints (or
// validates and adopts) the request trace ID before admission, sets it
// on the response header immediately — even an early 429 carries it —
// threads it through the request context for every downstream log
// line and error body, and records the RED surface (rate by
// route+code, duration by route) once the handler returns.
func (s *Server) withTelemetry(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := telemetry.EnsureTraceID(r.Header.Get(telemetry.TraceHeader))
		r = r.WithContext(telemetry.WithTraceID(r.Context(), id))
		w.Header().Set(telemetry.TraceHeader, id)

		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(t0)

		route := routeLabel(r.URL.Path)
		met.httpReqs.With(route, strconv.Itoa(sw.code)).Inc()
		met.httpDur.With(route).Observe(uint64(elapsed.Microseconds()))

		if s.log == nil {
			return
		}
		// Scrape and liveness chatter logs at Debug; real work at Info.
		level := slog.LevelInfo
		switch route {
		case "/healthz", "/metrics", "/progress", "/debug":
			level = slog.LevelDebug
		}
		attrs := []slog.Attr{
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.code),
			slog.Duration("elapsed", elapsed),
		}
		if src := sw.Header().Get("X-Run-Source"); src != "" {
			attrs = append(attrs, slog.String("source", src))
		}
		s.log.LogAttrs(r.Context(), level, "request", attrs...)
	})
}
