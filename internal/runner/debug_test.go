package runner

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestDebugHandlerRoutes(t *testing.T) {
	activeSweep.Store(nil)
	srv := httptest.NewServer(NewDebugHandler())
	defer srv.Close()

	code, body := get(t, srv, "/")
	if code != http.StatusOK || !strings.Contains(body, "/progress") {
		t.Fatalf("index: code %d body %q", code, body)
	}
	if code, _ := get(t, srv, "/not-a-route"); code != http.StatusNotFound {
		t.Fatalf("unknown path returned %d", code)
	}

	// No sweep active: /progress serves JSON null.
	code, body = get(t, srv, "/progress")
	if code != http.StatusOK || strings.TrimSpace(body) != "null" {
		t.Fatalf("idle progress: code %d body %q", code, body)
	}

	// With an active sweep the snapshot carries the live counters.
	var done, failed atomic.Int64
	done.Store(7)
	failed.Store(1)
	activeSweep.Store(&sweepState{
		jobs: 4, planned: 20, done: &done, failed: &failed,
		start: time.Now().Add(-2 * time.Second),
	})
	defer activeSweep.Store(nil)

	code, body = get(t, srv, "/progress")
	if code != http.StatusOK {
		t.Fatalf("progress returned %d", code)
	}
	var snap ProgressSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("progress not JSON: %v\n%s", err, body)
	}
	if snap.Jobs != 4 || snap.PlannedRuns != 20 || snap.DoneRuns != 7 || snap.FailedRuns != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
	if snap.ElapsedSeconds <= 0 || snap.RunsPerSec <= 0 {
		t.Fatalf("derived rates missing: %+v", snap)
	}

	// expvar carries the same snapshot under gpusecmem_sweep.
	code, body = get(t, srv, "/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, `"gpusecmem_sweep"`) {
		t.Fatalf("expvar: code %d, gpusecmem_sweep missing", code)
	}

	// pprof index responds (profiles themselves are too slow for a unit
	// test).
	if code, _ := get(t, srv, "/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("pprof index returned %d", code)
	}

	// /metrics serves the Prometheus exposition of the shared registry,
	// including the sweep counters once a sweep has registered them.
	initSweepInstruments()
	code, body = get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics returned %d", code)
	}
	if !strings.Contains(body, "# TYPE gpusecmem_sweep_planned_runs gauge") ||
		!strings.Contains(body, "gpusecmem_sweeps_total") {
		t.Fatalf("/metrics missing sweep families:\n%s", body)
	}
	if !strings.Contains(get2(t, srv, "/"), "/metrics") {
		t.Fatal("index missing /metrics route")
	}
}

// get2 is get returning only the body, for inline assertions.
func get2(t *testing.T, srv *httptest.Server, path string) string {
	t.Helper()
	_, body := get(t, srv, path)
	return body
}

func TestStartDebugServerBindFailure(t *testing.T) {
	var log strings.Builder
	stop := startDebugServer("256.256.256.256:0", &log)
	stop() // must be a callable no-op
	if !strings.Contains(log.String(), "endpoint disabled") {
		t.Fatalf("bind failure not reported: %q", log.String())
	}
}

func TestStartDebugServerServes(t *testing.T) {
	var log strings.Builder
	stop := startDebugServer("127.0.0.1:0", &log)
	defer stop()
	out := log.String()
	if !strings.Contains(out, "serving http://") {
		t.Fatalf("no serving line: %q", out)
	}
	addr := strings.TrimPrefix(strings.Fields(out)[2], "http://")
	addr = strings.TrimSuffix(addr, "/")
	resp, err := http.Get("http://" + addr + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live server returned %d", resp.StatusCode)
	}
}
