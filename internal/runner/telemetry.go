package runner

import (
	"sync"

	"gpusecmem/internal/telemetry"
)

// sweepInstruments mirrors the sweep's progress counters into the
// process-wide telemetry registry so the /metrics exposition (on the
// runner's -debug-addr or on secmemd) shows sweep progress alongside
// the serving metrics. The atomics behind /progress remain the
// authoritative live view; these registry handles are written from the
// same worker goroutines and are safe for concurrent scrapes.
type sweepInstruments struct {
	planned *telemetry.Gauge
	runs    *telemetry.CounterVec // outcome: ok|failed|cancelled
	sweeps  *telemetry.Counter
}

var (
	sweepMet     sweepInstruments
	sweepMetOnce sync.Once
)

func initSweepInstruments() {
	sweepMetOnce.Do(func() {
		reg := telemetry.Default
		sweepMet = sweepInstruments{
			planned: reg.Gauge("gpusecmem_sweep_planned_runs", "deduplicated simulations the current sweep planned"),
			runs:    reg.CounterVec("gpusecmem_sweep_runs_total", "sweep worker-pool runs by outcome", "outcome"),
			sweeps:  reg.Counter("gpusecmem_sweeps_total", "sweeps started in this process"),
		}
	})
}
