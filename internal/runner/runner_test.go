package runner

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"gpusecmem"
)

// renderReport flattens a sweep's tables to bytes the way
// cmd/experiments does, for byte-identity comparisons.
func renderReport(t *testing.T, rep *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, res := range rep.Results {
		if res.Err != nil {
			fmt.Fprintf(&buf, "# %s: FAILED: %v\n", res.Experiment.ID, res.Err)
			continue
		}
		fmt.Fprintf(&buf, "# %s\n", res.Experiment.Title)
		for _, tab := range res.Tables {
			if err := tab.WriteMarkdown(&buf); err != nil {
				t.Fatal(err)
			}
		}
	}
	return buf.Bytes()
}

func experiments(t *testing.T, ids ...string) []gpusecmem.Experiment {
	t.Helper()
	var out []gpusecmem.Experiment
	for _, id := range ids {
		e, ok := gpusecmem.ExperimentByID(id)
		if !ok {
			t.Fatalf("unknown experiment %s", id)
		}
		out = append(out, e)
	}
	return out
}

func sweep(t *testing.T, opts gpusecmem.Options, jobs int, ids ...string) (*Report, []byte) {
	t.Helper()
	ctx := gpusecmem.NewContext(opts)
	rep := Run(context.Background(), ctx, experiments(t, ids...), Options{Jobs: jobs})
	return rep, renderReport(t, rep)
}

// TestDeterminismAcrossJobs is the core contract: output bytes do not
// depend on the worker count.
func TestDeterminismAcrossJobs(t *testing.T) {
	opts := gpusecmem.Options{Cycles: 1200, Benchmarks: []string{"nw", "fdtd2d"}}
	ids := []string{"table1", "fig8", "fig16", "fig4"}

	rep1, out1 := sweep(t, opts, 1, ids...)
	rep8, out8 := sweep(t, opts, 8, ids...)

	if !bytes.Equal(out1, out8) {
		t.Fatalf("output differs between -jobs 1 and -jobs 8:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", out1, out8)
	}
	if rep1.PlannedRuns != rep8.PlannedRuns || rep1.ExecutedRuns != rep8.ExecutedRuns {
		t.Fatalf("run counts differ: %d/%d vs %d/%d",
			rep1.PlannedRuns, rep1.ExecutedRuns, rep8.PlannedRuns, rep8.ExecutedRuns)
	}
	if rep8.FailedRuns != 0 || rep8.FailedExperiments() != 0 {
		t.Fatalf("unexpected failures: %d runs, %d experiments", rep8.FailedRuns, rep8.FailedExperiments())
	}
	if rep8.Jobs != 8 {
		t.Fatalf("jobs = %d", rep8.Jobs)
	}
}

// TestFullCatalogueDeterminism runs the entire registry (-exp all) at
// -jobs 1 and -jobs 8 on a reduced cycle budget and asserts identical
// bytes — the satellite determinism requirement.
func TestFullCatalogueDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full catalogue sweep")
	}
	opts := gpusecmem.Options{Cycles: 800, Benchmarks: []string{"fdtd2d", "nw"}}
	all := gpusecmem.Experiments()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	_, out1 := sweep(t, opts, 1, ids...)
	rep8, out8 := sweep(t, opts, 8, ids...)
	if !bytes.Equal(out1, out8) {
		t.Fatal("-exp all output differs between -jobs 1 and -jobs 8")
	}
	if rep8.FailedExperiments() != 0 {
		t.Fatalf("%d experiments failed", rep8.FailedExperiments())
	}
	if rep8.CacheMisses == 0 || rep8.ExecutedRuns != rep8.PlannedRuns {
		t.Fatalf("sweep shape off: %+v", rep8)
	}
}

// TestFailedRunContinuesSweep puts a nonexistent benchmark in the
// options: every simulation-backed experiment fails with a *RunError
// naming its config, static experiments still render, and the runner
// returns instead of panicking.
func TestFailedRunContinuesSweep(t *testing.T) {
	opts := gpusecmem.Options{Cycles: 800, Benchmarks: []string{"nw", "definitely-not-a-benchmark"}}
	ctx := gpusecmem.NewContext(opts)
	rep := Run(context.Background(), ctx, experiments(t, "table1", "fig8", "table7", "fig16"), Options{Jobs: 4})

	byID := map[string]ExperimentResult{}
	for _, res := range rep.Results {
		byID[res.Experiment.ID] = res
	}
	for _, id := range []string{"table1", "table7"} {
		if byID[id].Err != nil {
			t.Errorf("static experiment %s failed: %v", id, byID[id].Err)
		}
	}
	for _, id := range []string{"fig8", "fig16"} {
		res := byID[id]
		if res.Err == nil {
			t.Errorf("%s should have failed on the bad benchmark", id)
			continue
		}
		re, ok := res.Err.(*gpusecmem.RunError)
		if !ok {
			t.Errorf("%s error is %T, want *RunError", id, res.Err)
			continue
		}
		if re.Benchmark != "definitely-not-a-benchmark" {
			t.Errorf("%s failed on %q", id, re.Benchmark)
		}
	}
	if rep.FailedRuns == 0 || rep.FailedExperiments() != 2 {
		t.Fatalf("failure accounting: %d runs, %d experiments", rep.FailedRuns, rep.FailedExperiments())
	}
}

// TestStatsOutput checks the -stats-out payload: one record per run,
// valid config JSON, throughput populated, stable key digests.
func TestStatsOutput(t *testing.T) {
	opts := gpusecmem.Options{Cycles: 800, Benchmarks: []string{"nw"}}
	ctx := gpusecmem.NewContext(opts)
	rep := Run(context.Background(), ctx, experiments(t, "fig8"), Options{Jobs: 2})

	if len(rep.Runs) != rep.ExecutedRuns || len(rep.Runs) == 0 {
		t.Fatalf("%d run records for %d executed runs", len(rep.Runs), rep.ExecutedRuns)
	}
	for _, r := range rep.Runs {
		if r.Benchmark != "nw" || r.Cycles == 0 || r.WallSeconds <= 0 || r.CyclesPerSec <= 0 {
			t.Fatalf("incomplete run record: %+v", r)
		}
		if len(r.Key) != 12 {
			t.Fatalf("key digest %q", r.Key)
		}
		if !bytes.HasPrefix(r.Config, []byte("{")) {
			t.Fatalf("config not JSON: %s", r.Config[:20])
		}
	}

	if want := uint64(len(rep.Runs)) * 800; rep.TotalCycles() != want {
		t.Fatalf("TotalCycles = %d, want %d", rep.TotalCycles(), want)
	}
	if rep.AggregateCyclesPerSec() <= 0 {
		t.Fatalf("AggregateCyclesPerSec = %f", rep.AggregateCyclesPerSec())
	}

	var buf bytes.Buffer
	if err := rep.WriteStats(&buf, "experiments -exp fig8"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"command": "experiments -exp fig8"`, `"planned_runs"`, `"cycles_per_sec"`,
		`"cache_hits"`, `"total_cycles"`, `"aggregate_cycles_per_sec"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats JSON missing %s:\n%s", want, out)
		}
	}
}

// TestProgressTicker exercises the -progress path end to end.
func TestProgressTicker(t *testing.T) {
	var buf bytes.Buffer
	ctx := gpusecmem.NewContext(gpusecmem.Options{Cycles: 800, Benchmarks: []string{"nw"}})
	Run(context.Background(), ctx, experiments(t, "fig8"), Options{
		Jobs:             2,
		Progress:         true,
		ProgressOut:      &buf,
		ProgressInterval: time.Millisecond,
	})
	if !strings.Contains(buf.String(), "runs done") {
		t.Fatalf("no progress lines:\n%s", buf.String())
	}
}
