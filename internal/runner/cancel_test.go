package runner

// Sweep-level cancellation: a cancelled Run drains its pool within a
// bound, reports Aborted with a flushable partial stats file, leaks
// no goroutines, leaves the memo consistent for a re-run, and clears
// the live-progress state either way.

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime"
	"strings"
	"testing"
	"time"

	"gpusecmem"
)

func fig8(t *testing.T) []gpusecmem.Experiment {
	t.Helper()
	e, ok := gpusecmem.ExperimentByID("fig8")
	if !ok {
		t.Fatal("fig8 missing from catalogue")
	}
	return []gpusecmem.Experiment{e}
}

// TestRunCancelMidSweep cancels a sweep whose runs would take hours
// and asserts the pool drains promptly with a partial, Aborted
// report whose stats JSON carries "aborted": true.
func TestRunCancelMidSweep(t *testing.T) {
	before := runtime.NumGoroutine()

	gctx := gpusecmem.NewContext(gpusecmem.Options{
		Cycles:     1 << 40, // no run can finish; only cancellation ends them
		Benchmarks: []string{"nw"},
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()

	start := time.Now()
	rep := Run(ctx, gctx, fig8(t), Options{Jobs: 2})
	if took := time.Since(start); took > 30*time.Second {
		t.Fatalf("cancelled sweep took %s to drain", took)
	}
	if !rep.Aborted {
		t.Fatal("report not marked Aborted")
	}
	if len(rep.Results) != 0 {
		t.Fatal("aborted sweep rendered experiments")
	}
	if rep.FailedRuns != 0 {
		t.Fatalf("cancelled runs counted as failures: %d", rep.FailedRuns)
	}

	// The partial report still flushes, marked aborted — the contract
	// cmd/experiments' SIGINT path relies on.
	var buf bytes.Buffer
	if err := rep.WriteStats(&buf, "test sweep"); err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Aborted bool `json:"aborted"`
	}
	if err := json.Unmarshal(buf.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if !stats.Aborted {
		t.Fatalf("stats JSON missing aborted flag: %s", buf.Bytes())
	}
	if !strings.Contains(buf.String(), `"aborted": true`) {
		t.Fatalf("stats JSON not marked aborted: %s", buf.Bytes())
	}

	// No goroutine leaks: workers, ticker, and debug helpers are gone
	// once Run returns (allow the runtime a moment to reap).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestRunAfterCancelCompletes re-runs a sweep on the same Context
// after a cancelled attempt: the memo must be clean, so the second
// sweep simulates and renders normally.
func TestRunAfterCancelCompletes(t *testing.T) {
	gctx := gpusecmem.NewContext(gpusecmem.Options{Cycles: 1500, Benchmarks: []string{"nw"}})

	cancelled, cancel := context.WithCancel(context.Background())
	cancel() // pre-cancelled: dispatch never starts
	rep := Run(cancelled, gctx, fig8(t), Options{Jobs: 2})
	if !rep.Aborted || len(rep.Results) != 0 {
		t.Fatalf("pre-cancelled sweep: aborted=%v results=%d", rep.Aborted, len(rep.Results))
	}

	rep2 := Run(context.Background(), gctx, fig8(t), Options{Jobs: 2})
	if rep2.Aborted {
		t.Fatal("clean re-run reported Aborted")
	}
	if len(rep2.Results) != 1 || rep2.Results[0].Err != nil {
		t.Fatalf("re-run failed: %+v", rep2.Results)
	}
	if len(rep2.Results[0].Tables) == 0 {
		t.Fatal("re-run rendered no tables")
	}
}

// TestActiveSweepClearedAfterRun is the stale-progress bugfix: a
// finished sweep must not keep publishing its final snapshot through
// /progress and the gpusecmem_sweep expvar in a long-lived process.
func TestActiveSweepClearedAfterRun(t *testing.T) {
	gctx := gpusecmem.NewContext(gpusecmem.Options{Cycles: 1000, Benchmarks: []string{"nw"}})
	var out bytes.Buffer
	rep := Run(context.Background(), gctx, fig8(t), Options{Jobs: 2, DebugAddr: "localhost:0", ProgressOut: &out})
	if rep.Aborted || len(rep.Results) != 1 {
		t.Fatalf("sweep failed: %+v", rep)
	}
	if s := activeSweep.Load(); s != nil {
		t.Fatalf("activeSweep still set after Run: %+v", s.snapshot())
	}
}

// TestActiveSweepClearedAfterAbort covers the same fix on the
// cancelled path, where the defer is the only thing standing between
// a long-lived daemon and a frozen progress endpoint.
func TestActiveSweepClearedAfterAbort(t *testing.T) {
	gctx := gpusecmem.NewContext(gpusecmem.Options{Cycles: 1 << 40, Benchmarks: []string{"nw"}})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	var out bytes.Buffer
	rep := Run(ctx, gctx, fig8(t), Options{Jobs: 2, DebugAddr: "localhost:0", ProgressOut: &out})
	if !rep.Aborted {
		t.Fatal("sweep not aborted")
	}
	if s := activeSweep.Load(); s != nil {
		t.Fatalf("activeSweep still set after aborted Run: %+v", s.snapshot())
	}
}
