package runner

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"gpusecmem/internal/telemetry"
)

// ProgressSnapshot is the live view of a running sweep served by the
// debug endpoint's /progress route (and the gpusecmem_sweep expvar).
type ProgressSnapshot struct {
	Jobs           int     `json:"jobs"`
	PlannedRuns    int     `json:"planned_runs"`
	DoneRuns       int64   `json:"done_runs"`
	FailedRuns     int64   `json:"failed_runs"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	RunsPerSec     float64 `json:"runs_per_sec"`
}

// sweepState is the mutable counter set behind ProgressSnapshot. The
// debug endpoint reads it through an atomic pointer, so a scrape
// during a sweep races safely; when sweeps overlap, the last one to
// start wins the endpoint.
type sweepState struct {
	jobs    int
	planned int
	done    *atomic.Int64
	failed  *atomic.Int64
	start   time.Time
}

func (s *sweepState) snapshot() ProgressSnapshot {
	elapsed := time.Since(s.start).Seconds()
	done := s.done.Load()
	snap := ProgressSnapshot{
		Jobs:           s.jobs,
		PlannedRuns:    s.planned,
		DoneRuns:       done,
		FailedRuns:     s.failed.Load(),
		ElapsedSeconds: elapsed,
	}
	if elapsed > 0 {
		snap.RunsPerSec = float64(done) / elapsed
	}
	return snap
}

var activeSweep atomic.Pointer[sweepState]

// publishOnce guards expvar.Publish, which panics on duplicate names.
var publishOnce sync.Once

func publishSweepVar() {
	publishOnce.Do(func() {
		expvar.Publish("gpusecmem_sweep", expvar.Func(func() any {
			s := activeSweep.Load()
			if s == nil {
				return nil
			}
			return s.snapshot()
		}))
	})
}

// NewDebugHandler builds the sweep debug mux:
//
//	/          index of available routes
//	/progress  live sweep progress as JSON
//	/metrics   Prometheus text-format exposition of telemetry.Default
//	/debug/vars  expvar counters (includes gpusecmem_sweep)
//	/debug/pprof/*  net/http/pprof profiles for long sweeps
//
// The handler is safe to serve while a sweep runs.
func NewDebugHandler() http.Handler {
	publishSweepVar()
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "gpusecmem sweep debug endpoint\n\n"+
			"  /progress       live sweep progress (JSON)\n"+
			"  /metrics        Prometheus text-format exposition\n"+
			"  /debug/vars     expvar counters\n"+
			"  /debug/pprof/   CPU/heap/goroutine profiles\n")
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s := activeSweep.Load()
		if s == nil {
			fmt.Fprintln(w, "null")
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.snapshot())
	})
	mux.Handle("/metrics", telemetry.Default.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// startDebugServer binds addr and serves the debug mux until the
// returned stop function is called. Binding failures are reported to
// out rather than aborting the sweep — observability must never kill
// the work it observes.
func startDebugServer(addr string, out io.Writer) func() {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(out, "debug: %v (endpoint disabled)\n", err)
		return func() {}
	}
	srv := &http.Server{Handler: NewDebugHandler()}
	go srv.Serve(ln)
	fmt.Fprintf(out, "debug: serving http://%s/ (/progress, /metrics, /debug/vars, /debug/pprof)\n", ln.Addr())
	return func() { srv.Close() }
}
