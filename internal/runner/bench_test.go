package runner

// Benchmarks for sweep orchestration. BenchmarkSweepJobs* run the same
// small experiment set at different worker counts; on a multi-core
// host the ns/op ratio between Jobs1 and JobsMax approaches the core
// count (the run set is embarrassingly parallel), while on one core
// they coincide — both are worth tracking, because a regression in the
// singleflight path shows up at every width.

import (
	"context"
	"testing"

	"gpusecmem"
)

func benchSweep(b *testing.B, jobs int) {
	b.Helper()
	ids := []string{"fig8", "fig16"}
	var exps []gpusecmem.Experiment
	for _, id := range ids {
		e, ok := gpusecmem.ExperimentByID(id)
		if !ok {
			b.Fatalf("unknown experiment %s", id)
		}
		exps = append(exps, e)
	}
	opts := gpusecmem.Options{Cycles: 1000, Benchmarks: []string{"nw", "fdtd2d"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh context per iteration: the cost being measured is the
		// cold sweep, not memo hits.
		rep := Run(context.Background(), gpusecmem.NewContext(opts), exps, Options{Jobs: jobs})
		if rep.FailedExperiments() != 0 {
			b.Fatal("sweep failed")
		}
	}
}

func BenchmarkSweepJobs1(b *testing.B)   { benchSweep(b, 1) }
func BenchmarkSweepJobs4(b *testing.B)   { benchSweep(b, 4) }
func BenchmarkSweepJobsMax(b *testing.B) { benchSweep(b, 0) }

// BenchmarkPlan isolates the planning pass over the full registry.
func BenchmarkPlan(b *testing.B) {
	ctx := gpusecmem.NewContext(gpusecmem.Options{Cycles: 1000})
	exps := gpusecmem.Experiments()
	for i := 0; i < b.N; i++ {
		if len(ctx.PlanRuns(exps)) == 0 {
			b.Fatal("empty plan")
		}
	}
}
