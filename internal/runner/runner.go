// Package runner executes experiment sweeps concurrently. It
// pre-plans the deduplicated set of (config, benchmark) simulations
// the selected experiments need, drives them through a worker pool
// feeding the Context's singleflight memo cache, then renders every
// experiment in catalogue order from the memoized results — so output
// is byte-identical to a serial run at any worker count.
//
// Each simulator instance is self-contained (no shared mutable state;
// see DESIGN.md "Parallelism & determinism"), which makes the sweep
// embarrassingly parallel across runs. A failed run is reported with
// its configuration and fails only the experiments that need it; the
// rest of the sweep completes.
package runner

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"gpusecmem"
	"gpusecmem/internal/report"
)

// Options controls a sweep.
type Options struct {
	// Jobs is the worker-pool size; <=0 picks a default from the core
	// budget: runtime.GOMAXPROCS(0) divided by Shards (floored at 1),
	// so shards×jobs goroutines roughly match the available cores.
	Jobs int
	// Shards is the per-run shard-goroutine count the sweep's
	// simulations execute with (the Context applies it to each Config;
	// see gpusecmem.Options.Shards). Here it only informs the default
	// Jobs split — run results and output bytes are identical at any
	// value.
	Shards int
	// Progress enables a periodic one-line status ticker.
	Progress bool
	// ProgressOut receives ticker lines (default os.Stderr).
	ProgressOut io.Writer
	// ProgressInterval is the ticker period (default 1s).
	ProgressInterval time.Duration
	// DebugAddr, when non-empty, serves the sweep debug HTTP endpoint
	// (live progress, expvar, pprof) on that address for the duration
	// of the sweep. See NewDebugHandler.
	DebugAddr string
}

// ExperimentResult is one rendered experiment, or its failure.
type ExperimentResult struct {
	Experiment gpusecmem.Experiment
	Tables     []*report.Table
	// Err is non-nil when a simulation the experiment depends on
	// failed; it is the *gpusecmem.RunError of the failing run, or a
	// bare context error when the sweep was cancelled mid-render.
	Err     error
	Elapsed time.Duration
}

// RunRecord is the machine-readable per-run entry of -stats-out.
type RunRecord struct {
	// Key is a short digest of the canonical (config, benchmark) memo
	// key, for cross-referencing runs between sweeps.
	Key       string `json:"key"`
	Benchmark string `json:"benchmark"`
	// Config is the canonical JSON of the fully resolved Config.
	Config       json.RawMessage `json:"config"`
	WallSeconds  float64         `json:"wall_seconds"`
	Cycles       uint64          `json:"cycles"`
	CyclesPerSec float64         `json:"cycles_per_sec"`
	Error        string          `json:"error,omitempty"`
}

// Report summarizes one sweep.
type Report struct {
	Results      []ExperimentResult
	Runs         []RunRecord
	Jobs         int
	PlannedRuns  int
	ExecutedRuns int
	FailedRuns   int
	CacheHits    uint64
	CacheMisses  uint64
	// DiskHits counts runs served from the Context's persistent
	// ResultCache instead of simulating.
	DiskHits uint64
	Wall     time.Duration
	// Aborted reports that the sweep's context was cancelled before the
	// plan finished: Runs holds only the runs completed by then and no
	// experiments were rendered.
	Aborted bool
}

// FailedExperiments counts results with a non-nil Err.
func (r *Report) FailedExperiments() int {
	n := 0
	for _, res := range r.Results {
		if res.Err != nil {
			n++
		}
	}
	return n
}

// TotalCycles sums the simulated cycles across all executed runs.
func (r *Report) TotalCycles() uint64 {
	var n uint64
	for _, run := range r.Runs {
		n += run.Cycles
	}
	return n
}

// AggregateCyclesPerSec is the sweep's fleet throughput: total
// simulated cycles divided by sweep wall time. With parallel jobs this
// exceeds any single run's cycles/sec; it is the number to watch when
// judging simulator performance changes across sweeps.
func (r *Report) AggregateCyclesPerSec() float64 {
	if s := r.Wall.Seconds(); s > 0 {
		return float64(r.TotalCycles()) / s
	}
	return 0
}

// statsJSON is the wire form of WriteStats.
type statsJSON struct {
	Command           string      `json:"command,omitempty"`
	Aborted           bool        `json:"aborted"`
	Jobs              int         `json:"jobs"`
	PlannedRuns       int         `json:"planned_runs"`
	ExecutedRuns      int         `json:"executed_runs"`
	FailedRuns        int         `json:"failed_runs"`
	CacheHits         uint64      `json:"cache_hits"`
	CacheMisses       uint64      `json:"cache_misses"`
	DiskHits          uint64      `json:"disk_hits,omitempty"`
	WallSeconds       float64     `json:"wall_seconds"`
	TotalCycles       uint64      `json:"total_cycles"`
	AggCyclesPerSec   float64     `json:"aggregate_cycles_per_sec"`
	FailedExperiments int         `json:"failed_experiments"`
	Runs              []RunRecord `json:"runs"`
}

// WriteStats emits the machine-readable sweep summary (the -stats-out
// payload). command records the invocation for provenance. A partial
// report from a cancelled sweep carries "aborted": true with the runs
// completed before the cancellation.
func (r *Report) WriteStats(w io.Writer, command string) error {
	runs := r.Runs
	if runs == nil {
		runs = []RunRecord{} // "runs": [] — not null — when nothing completed
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(statsJSON{
		Command:           command,
		Aborted:           r.Aborted,
		Jobs:              r.Jobs,
		PlannedRuns:       r.PlannedRuns,
		ExecutedRuns:      r.ExecutedRuns,
		FailedRuns:        r.FailedRuns,
		CacheHits:         r.CacheHits,
		CacheMisses:       r.CacheMisses,
		DiskHits:          r.DiskHits,
		WallSeconds:       r.Wall.Seconds(),
		TotalCycles:       r.TotalCycles(),
		AggCyclesPerSec:   r.AggregateCyclesPerSec(),
		FailedExperiments: r.FailedExperiments(),
		Runs:              runs,
	})
}

// KeyDigest shortens a canonical run key to a stable 12-hex-digit id.
func KeyDigest(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:6])
}

// Run plans, executes, and renders the experiments. Rendering happens
// after the pool drains, in the order given, entirely from memoized
// results — output bytes do not depend on Jobs.
//
// ctx cancels the sweep cooperatively: dispatch stops, in-flight
// simulations abort at their next cancellation check, the pool drains,
// and the returned Report is marked Aborted with the runs completed so
// far (experiments are not rendered). The Report is always non-nil, so
// a partial stats file can still be flushed.
func Run(ctx context.Context, gctx *gpusecmem.Context, exps []gpusecmem.Experiment, opts Options) *Report {
	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
		if opts.Shards > 1 {
			// Each run already occupies Shards goroutines; divide the
			// cores between intra-run and across-run parallelism.
			jobs /= opts.Shards
		}
		if jobs < 1 {
			jobs = 1
		}
	}
	start := time.Now()
	gctx.SetBaseContext(ctx)

	plan := gctx.PlanRuns(exps)
	rep := &Report{Jobs: jobs, PlannedRuns: len(plan)}

	initSweepInstruments()
	sweepMet.sweeps.Inc()
	sweepMet.planned.Set(float64(len(plan)))

	var done, failed atomic.Int64
	if opts.DebugAddr != "" {
		out := opts.ProgressOut
		if out == nil {
			out = os.Stderr
		}
		state := &sweepState{jobs: jobs, planned: len(plan), done: &done, failed: &failed, start: start}
		activeSweep.Store(state)
		// Clear the live-progress state once this sweep returns so a
		// long-lived process (library use, secmemd) does not keep
		// reporting a finished sweep; the CAS leaves a newer overlapping
		// sweep's state alone.
		defer activeSweep.CompareAndSwap(state, nil)
		stopDebug := startDebugServer(opts.DebugAddr, out)
		defer stopDebug()
	}
	stopProgress := startProgress(opts, len(plan), &done, &failed, start)

	specs := make(chan gpusecmem.RunSpec)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range specs {
				outcome := "ok"
				if _, err := gctx.RunE(ctx, s.Cfg, s.Benchmark); err != nil {
					// A cancelled run is the sweep aborting, not a
					// failed configuration.
					if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
						outcome = "cancelled"
					} else {
						outcome = "failed"
						failed.Add(1)
					}
				}
				sweepMet.runs.With(outcome).Inc()
				done.Add(1)
			}
		}()
	}
dispatch:
	for _, s := range plan {
		select {
		case specs <- s:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(specs)
	wg.Wait()
	stopProgress()

	if ctx.Err() != nil {
		rep.Aborted = true
	} else {
		// Render serially, in catalogue order, from the warm cache.
		// Runs the planner missed (an experiment that bailed on
		// placeholder data) simulate here through the same singleflight
		// path.
		for _, e := range exps {
			rep.Results = append(rep.Results, renderOne(gctx, e))
		}
	}

	stats := gctx.CacheStats()
	rep.CacheHits, rep.CacheMisses, rep.DiskHits = stats.Hits, stats.Misses, stats.DiskHits
	rep.Wall = time.Since(start)

	byKey := make(map[string]gpusecmem.RunStat)
	for _, s := range gctx.RunStats() {
		byKey[s.Key] = s
		rep.ExecutedRuns++
		if s.Err != nil {
			rep.FailedRuns++
		}
	}
	for _, spec := range plan {
		s, ok := byKey[spec.Key]
		if !ok {
			continue
		}
		cfgJSON, err := json.Marshal(spec.Cfg)
		if err != nil {
			cfgJSON = []byte("null")
		}
		rec := RunRecord{
			Key:          KeyDigest(spec.Key),
			Benchmark:    spec.Benchmark,
			Config:       cfgJSON,
			WallSeconds:  s.Wall.Seconds(),
			Cycles:       s.Cycles,
			CyclesPerSec: s.CyclesPerSec(),
		}
		if s.Err != nil {
			rec.Error = s.Err.Error()
		}
		rep.Runs = append(rep.Runs, rec)
		delete(byKey, spec.Key)
	}
	// Runs discovered only at render time still get a record, after
	// the planned ones.
	for _, s := range gctx.RunStats() {
		if _, pending := byKey[s.Key]; !pending {
			continue
		}
		rec := RunRecord{
			Key:          KeyDigest(s.Key),
			Benchmark:    s.Benchmark,
			Config:       json.RawMessage("null"),
			WallSeconds:  s.Wall.Seconds(),
			Cycles:       s.Cycles,
			CyclesPerSec: s.CyclesPerSec(),
		}
		if s.Err != nil {
			rec.Error = s.Err.Error()
		}
		rep.Runs = append(rep.Runs, rec)
	}
	return rep
}

// renderOne runs one experiment body against the memoized context,
// converting any recovered panic into the result's Err so the sweep
// continues. A *RunError (a failed simulation) passes through with
// its config; a context cancellation (the base context died while
// rendering) passes through undecorated; any other panic — a bug in
// the experiment body — is wrapped, with its stack, instead of
// re-panicking and killing the remaining experiments.
func renderOne(gctx *gpusecmem.Context, e gpusecmem.Experiment) (out ExperimentResult) {
	out.Experiment = e
	t0 := time.Now()
	defer func() {
		out.Elapsed = time.Since(t0)
		if r := recover(); r != nil {
			if re, ok := r.(*gpusecmem.RunError); ok {
				out.Err = re
				return
			}
			if err, ok := r.(error); ok &&
				(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
				out.Err = err
				return
			}
			out.Err = &gpusecmem.RunError{
				Benchmark: "(experiment " + e.ID + ")",
				Err:       fmt.Errorf("experiment panic: %v", r),
				Stack:     string(debug.Stack()),
			}
		}
	}()
	out.Tables = e.Run(gctx)
	return out
}

// startProgress launches the ticker goroutine and returns its stop
// function (which prints a final line). A no-op when disabled.
func startProgress(opts Options, total int, done, failed *atomic.Int64, start time.Time) func() {
	if !opts.Progress {
		return func() {}
	}
	w := opts.ProgressOut
	if w == nil {
		w = os.Stderr
	}
	interval := opts.ProgressInterval
	if interval <= 0 {
		interval = time.Second
	}
	line := func() {
		d, f := done.Load(), failed.Load()
		fmt.Fprintf(w, "progress: %d/%d runs done (%d failed), %s elapsed\n",
			d, total, f, time.Since(start).Round(time.Second))
	}
	quit := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				line()
			case <-quit:
				line() // final line, printed from this goroutine so the writer has one writer
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(quit)
			<-finished
		})
	}
}
