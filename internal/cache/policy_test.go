package cache

import "testing"

func policyCfg(p Policy) Config {
	return Config{
		Name: "p", SizeBytes: 1024, LineSize: 128, Assoc: 8, // one set of 8
		NumMSHRs: 16, AllocOnFill: true, Policy: p,
	}
}

func fillLine(c *Cache, addr uint64) {
	r := c.Access(addr, false, addr)
	if r.NeedFetch {
		c.Fill(addr, r.Bypass, false)
	}
}

func TestPolicyStrings(t *testing.T) {
	for p, want := range map[Policy]string{
		PolicyLRU: "lru", PolicySRRIP: "srrip", PolicyBRRIP: "brrip", PolicyDIP: "dip",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %s", p, p.String())
		}
	}
}

// TestLRUThrashesOnStream: a cyclic working set one line larger than
// the cache misses every access under LRU (the Section V-D thrashing
// behaviour).
func TestLRUThrashesOnStream(t *testing.T) {
	c := New(policyCfg(PolicyLRU))
	// 9 lines cycling through an 8-way set.
	for pass := 0; pass < 5; pass++ {
		for i := uint64(0); i < 9; i++ {
			fillLine(c, i*1024) // same set (1 set total)
		}
	}
	if c.Stats.Hits != 0 {
		t.Fatalf("LRU hit %d times on a thrashing cycle", c.Stats.Hits)
	}
}

// TestBRRIPResistsThrashing: the same cyclic pattern gets hits under
// BRRIP because most insertions are predicted distant and evicted
// without displacing the protected subset.
func TestBRRIPResistsThrashing(t *testing.T) {
	c := New(policyCfg(PolicyBRRIP))
	for pass := 0; pass < 20; pass++ {
		for i := uint64(0); i < 12; i++ {
			fillLine(c, i*1024)
		}
	}
	if c.Stats.Hits == 0 {
		t.Fatal("BRRIP got no hits on a thrashing cycle")
	}
}

// TestSRRIPKeepsReusedLines: a hot line accessed between streaming
// fills stays resident under SRRIP.
func TestSRRIPKeepsReusedLines(t *testing.T) {
	c := New(policyCfg(PolicySRRIP))
	fillLine(c, 0) // hot line
	hits := uint64(0)
	for i := uint64(1); i <= 100; i++ {
		fillLine(c, i*1024) // stream
		r := c.Access(0, false, 1)
		if r.Outcome == Hit {
			hits++
		} else if r.NeedFetch {
			c.Fill(0, r.Bypass, false)
		}
	}
	if hits < 90 {
		t.Fatalf("hot line survived only %d/100 rounds under SRRIP", hits)
	}
}

// TestDIPFollowsWinner: under a pure thrashing workload DIP's
// follower sets should converge to the BRRIP side (PSEL grows as SRRIP
// leader sets miss).
func TestDIPFollowsWinner(t *testing.T) {
	cfg := Config{
		Name: "dip", SizeBytes: 64 * 1024, LineSize: 128, Assoc: 8,
		NumMSHRs: 512, MergeCap: 0, AllocOnFill: true, Policy: PolicyDIP,
	}
	c := New(cfg)
	// Thrash every set: 3x capacity, cycled.
	lines := uint64(3 * 64 * 1024 / 128)
	for pass := 0; pass < 40; pass++ {
		for i := uint64(0); i < lines; i++ {
			fillLine(c, i*128)
		}
	}
	if c.psel <= pselMax/2 {
		t.Fatalf("PSEL = %d, want BRRIP side (> %d) under thrashing", c.psel, pselMax/2)
	}
}

// TestRRIPAgingTerminates: pickVictim must terminate even when every
// way is near (ages until one becomes distant).
func TestRRIPAgingTerminates(t *testing.T) {
	c := New(policyCfg(PolicySRRIP))
	set := c.sets[0]
	for i := range set {
		set[i].valid = true
		set[i].tag = uint64(i * 1024)
		set[i].rrpv = rrpvNear
	}
	v := c.pickVictim(set)
	if v < 0 || v >= len(set) {
		t.Fatalf("victim %d", v)
	}
}

// TestPolicyCorrectnessUnchanged: replacement policy affects
// performance only; a write-read sequence still behaves correctly.
func TestPolicyCorrectnessUnchanged(t *testing.T) {
	for _, p := range []Policy{PolicyLRU, PolicySRRIP, PolicyBRRIP, PolicyDIP} {
		c := New(policyCfg(p))
		c.Access(0x80, true, 1)
		c.Fill(0x80, false, false)
		if r := c.Access(0x80, false, 2); r.Outcome != Hit {
			t.Errorf("%v: no hit after fill", p)
		}
		if !c.Present(0x80) {
			t.Errorf("%v: line not present", p)
		}
	}
}

// TestRoleAssignment: DIP leader sets appear at the documented stride.
func TestRoleAssignment(t *testing.T) {
	cfg := Config{
		Name: "dip", SizeBytes: 64 * 1024, LineSize: 128, Assoc: 8,
		NumMSHRs: 16, AllocOnFill: true, Policy: PolicyDIP,
	}
	c := New(cfg)
	if c.roleOf(0) != roleSRRIP {
		t.Error("set 0 should lead SRRIP")
	}
	if c.roleOf(duelingStride/2) != roleBRRIP {
		t.Error("set 8 should lead BRRIP")
	}
	if c.roleOf(1) != roleFollower {
		t.Error("set 1 should follow")
	}
	// Non-DIP caches have no leaders.
	c2 := New(policyCfg(PolicySRRIP))
	if c2.roleOf(0) != roleFollower {
		t.Error("SRRIP cache should have no leader sets")
	}
}
