package cache

// Replacement policies. The paper's Section V-D observes that GPU
// streaming thrashes a unified metadata cache under LRU and suggests
// "smart replacement policies" as the alternative to separate caches —
// while cautioning that CPU thrash-resistant policies cannot be
// adopted blindly because each metadata line is re-referenced many
// times right after the fill (one MAC line covers 16 data blocks).
//
// We implement the classic RRIP family so that suggestion can be
// evaluated (the ext-smartunified experiment):
//
//   - PolicyLRU: classic least-recently-used (the default).
//   - PolicySRRIP: static RRIP — insert with a "long" re-reference
//     prediction, promote to "near" on hit, evict the most "distant".
//   - PolicyBRRIP: bimodal RRIP — like SRRIP but most insertions are
//     predicted "distant", protecting the cache from streams.
//   - PolicyDIP: set-dueling between SRRIP and BRRIP with a policy
//     selector counter, following DIP/DRRIP.
type Policy int

// Replacement policy identifiers.
const (
	PolicyLRU Policy = iota
	PolicySRRIP
	PolicyBRRIP
	PolicyDIP
)

func (p Policy) String() string {
	switch p {
	case PolicyLRU:
		return "lru"
	case PolicySRRIP:
		return "srrip"
	case PolicyBRRIP:
		return "brrip"
	case PolicyDIP:
		return "dip"
	}
	return "policy?"
}

// RRIP constants: 2-bit re-reference prediction values.
const (
	rrpvBits = 2
	rrpvMax  = 1<<rrpvBits - 1 // 3 = distant
	rrpvLong = rrpvMax - 1     // 2 = long (SRRIP insertion)
	rrpvNear = 0
	// brripEpsilon: 1-in-N BRRIP insertions use the long prediction
	// instead of distant.
	brripEpsilon = 32
	// duelingStride: every duelingStride-th set leads SRRIP, and the
	// following set leads BRRIP (DIP set dueling).
	duelingStride = 16
	// pselMax bounds the policy selector counter.
	pselMax = 1023
)

// setRole classifies a set for DIP dueling.
type setRole int

const (
	roleFollower setRole = iota
	roleSRRIP
	roleBRRIP
)

func (c *Cache) roleOf(setIdx int) setRole {
	if c.cfg.Policy != PolicyDIP {
		return roleFollower
	}
	switch setIdx % duelingStride {
	case 0:
		return roleSRRIP
	case duelingStride / 2:
		return roleBRRIP
	}
	return roleFollower
}

// policyFor resolves the effective insertion policy for a set under
// DIP (followers obey the PSEL counter; leaders are fixed).
func (c *Cache) policyFor(setIdx int) Policy {
	switch c.cfg.Policy {
	case PolicyDIP:
		switch c.roleOf(setIdx) {
		case roleSRRIP:
			return PolicySRRIP
		case roleBRRIP:
			return PolicyBRRIP
		default:
			if c.psel <= pselMax/2 {
				return PolicySRRIP
			}
			return PolicyBRRIP
		}
	default:
		return c.cfg.Policy
	}
}

// duelMiss updates the PSEL counter on a leader-set miss: misses in
// SRRIP leader sets push toward BRRIP and vice versa.
func (c *Cache) duelMiss(setIdx int) {
	if c.cfg.Policy != PolicyDIP {
		return
	}
	switch c.roleOf(setIdx) {
	case roleSRRIP:
		if c.psel < pselMax {
			c.psel++
		}
	case roleBRRIP:
		if c.psel > 0 {
			c.psel--
		}
	}
}

// touchHit updates replacement state on a hit.
func (c *Cache) touchHit(w *way) {
	w.lastUse = c.seq
	if c.cfg.Policy != PolicyLRU {
		w.rrpv = rrpvNear
	}
}

// insertState initializes replacement state of a newly installed line.
func (c *Cache) insertState(w *way, setIdx int) {
	w.lastUse = c.seq
	switch c.policyFor(setIdx) {
	case PolicySRRIP:
		w.rrpv = rrpvLong
	case PolicyBRRIP:
		c.brripTick++
		if c.brripTick%brripEpsilon == 0 {
			w.rrpv = rrpvLong
		} else {
			w.rrpv = rrpvMax
		}
	default:
		w.rrpv = rrpvLong
	}
}

// pickVictim selects the way to evict from a set.
func (c *Cache) pickVictim(set []way) int {
	// Invalid ways first, under any policy.
	for i := range set {
		if !set[i].valid {
			return i
		}
	}
	if c.cfg.Policy == PolicyLRU {
		victim := 0
		for i := range set {
			if set[i].lastUse < set[victim].lastUse {
				victim = i
			}
		}
		return victim
	}
	// RRIP: find an rrpvMax way, aging everyone until one appears.
	for {
		for i := range set {
			if set[i].rrpv >= rrpvMax {
				return i
			}
		}
		for i := range set {
			set[i].rrpv++
		}
	}
}
