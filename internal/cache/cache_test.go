package cache

import (
	"math/rand"
	"testing"
)

func metaCfg(mshrs int) Config {
	return Config{
		Name: "meta", SizeBytes: 2048, LineSize: 128, Assoc: 8,
		Sectored: false, NumMSHRs: mshrs, MergeCap: 64, AllocOnFill: true,
	}
}

func l2Cfg() Config {
	return Config{
		Name: "L2", SizeBytes: 96 * 1024, LineSize: 128, Assoc: 16,
		Sectored: true, NumMSHRs: 64, MergeCap: 8, AllocOnFill: true,
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := New(metaCfg(64))
	r := c.Access(0x100, false, 1)
	if r.Outcome != MissPrimary || !r.NeedFetch || r.FetchBytes != 128 {
		t.Fatalf("cold access: %+v", r)
	}
	f := c.Fill(0x100, false, false)
	if len(f.Tokens) != 1 || f.Tokens[0] != 1 {
		t.Fatalf("fill tokens: %v", f.Tokens)
	}
	if r := c.Access(0x100, false, 2); r.Outcome != Hit {
		t.Fatalf("after fill: %v", r.Outcome)
	}
	// Another address in the same line also hits (non-sectored).
	if r := c.Access(0x17f, false, 3); r.Outcome != Hit {
		t.Fatalf("same line: %v", r.Outcome)
	}
}

// TestSecondaryMissMerges: with MSHRs, a second miss to an in-flight
// line merges and generates no traffic — the Figure 6 mechanism.
func TestSecondaryMissMerges(t *testing.T) {
	c := New(metaCfg(64))
	c.Access(0x100, false, 1)
	r := c.Access(0x100, false, 2)
	if r.Outcome != MissMerged || r.NeedFetch {
		t.Fatalf("secondary: %+v", r)
	}
	f := c.Fill(0x100, false, false)
	if len(f.Tokens) != 2 {
		t.Fatalf("fill should wake both: %v", f.Tokens)
	}
	if c.Stats.MissesSecondary != 1 || c.Stats.MissesPrimary != 1 {
		t.Fatalf("stats: %+v", c.Stats)
	}
}

// TestNoMSHRSecondaryBypasses: with MSHRs disabled every secondary
// miss refetches — redundant traffic, still classified secondary.
func TestNoMSHRSecondaryBypasses(t *testing.T) {
	c := New(metaCfg(0))
	r1 := c.Access(0x100, false, 1)
	if r1.Outcome != MissPrimary || !r1.NeedFetch {
		t.Fatalf("primary: %+v", r1)
	}
	r2 := c.Access(0x100, false, 2)
	if r2.Outcome != MissBypass || !r2.NeedFetch {
		t.Fatalf("secondary without MSHR: %+v", r2)
	}
	if c.Stats.MissesSecondary != 1 || c.Stats.MissesBypass != 1 {
		t.Fatalf("stats: %+v", c.Stats)
	}
	// Both fills arrive; first installs, second finds it present.
	c.Fill(0x100, true, false)
	c.Fill(0x100, true, false)
	if r := c.Access(0x100, false, 3); r.Outcome != Hit {
		t.Fatalf("after bypass fills: %v", r.Outcome)
	}
}

// TestMergeCapExhaustion: beyond MergeCap merged requests, further
// secondary misses bypass.
func TestMergeCapExhaustion(t *testing.T) {
	cfg := metaCfg(64)
	cfg.MergeCap = 2
	c := New(cfg)
	c.Access(0x100, false, 1)
	if r := c.Access(0x100, false, 2); r.Outcome != MissMerged {
		t.Fatalf("merge 1: %v", r.Outcome)
	}
	if r := c.Access(0x100, false, 3); r.Outcome != MissMerged {
		t.Fatalf("merge 2: %v", r.Outcome)
	}
	if r := c.Access(0x100, false, 4); r.Outcome != MissBypass {
		t.Fatalf("beyond cap: %v", r.Outcome)
	}
}

// TestMSHRExhaustion: when all entries are taken, new primary misses
// still fetch but cannot merge later requests.
func TestMSHRExhaustion(t *testing.T) {
	cfg := metaCfg(2)
	c := New(cfg)
	c.Access(0x0000, false, 1)
	c.Access(0x1000, false, 2)
	// Third distinct line: no MSHR left.
	if r := c.Access(0x2000, false, 3); r.Outcome != MissPrimary || !r.NeedFetch {
		t.Fatalf("3rd primary: %+v", r)
	}
	// Secondary to the unsheltered line bypasses.
	if r := c.Access(0x2000, false, 4); r.Outcome != MissBypass {
		t.Fatalf("unsheltered secondary: %v", r.Outcome)
	}
	// Fill of a tracked line frees its entry.
	c.Fill(0x0000, false, false)
	if r := c.Access(0x3000, false, 5); r.Outcome != MissPrimary {
		t.Fatalf("after free: %v", r.Outcome)
	}
	if c.InFlight(0x3000) != true {
		t.Fatal("expected MSHR tracking after free")
	}
}

func TestSectoredDistinctSectors(t *testing.T) {
	c := New(l2Cfg())
	// Four sectors of one line are four distinct fetch units.
	for s := uint64(0); s < 4; s++ {
		r := c.Access(s*32, false, s)
		if r.Outcome != MissPrimary || r.FetchBytes != 32 {
			t.Fatalf("sector %d: %+v", s, r)
		}
	}
	if c.Stats.MissesSecondary != 0 {
		t.Fatalf("distinct sectors misclassified: %+v", c.Stats)
	}
	// Fill sector 2 only: sector 2 hits, others still pending.
	c.Fill(64, false, false)
	if r := c.Access(64, false, 9); r.Outcome != Hit {
		t.Fatalf("sector 2 after fill: %v", r.Outcome)
	}
	if r := c.Access(0, false, 10); r.Outcome != MissMerged {
		t.Fatalf("sector 0 still pending: %v", r.Outcome)
	}
}

// TestSectoredSecondaryPattern reproduces the paper's Section V-B
// example: a streaming pattern {0x0,0x20,0x40,0x60} across a sectored
// L2 produces 4 misses that map to 1 primary + 3 secondary misses in
// the (non-sectored) metadata cache.
func TestSectoredSecondaryPattern(t *testing.T) {
	l2 := New(l2Cfg())
	meta := New(metaCfg(64))
	for i, a := range []uint64{0x00, 0x20, 0x40, 0x60} {
		r := l2.Access(a, false, uint64(i))
		if r.Outcome != MissPrimary {
			t.Fatalf("L2 %#x: %v", a, r.Outcome)
		}
		// Each L2 sector miss probes the metadata cache for the
		// same counter line.
		meta.Access(0x0, false, uint64(100+i))
	}
	if meta.Stats.MissesPrimary != 1 || meta.Stats.MissesSecondary != 3 {
		t.Fatalf("metadata stats: %+v", meta.Stats)
	}
	if got := meta.Stats.SecondaryRatio(); got != 0.75 {
		t.Fatalf("secondary ratio = %f", got)
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	cfg := Config{Name: "tiny", SizeBytes: 256, LineSize: 128, Assoc: 1,
		Sectored: false, NumMSHRs: 4, AllocOnFill: true}
	c := New(cfg)
	// Two sets of 1 way each. Fill a line dirty, then evict it with a
	// conflicting line (same set: stride 256).
	c.Access(0x000, true, 1)
	c.Fill(0x000, false, false)
	if !c.Present(0x000) {
		t.Fatal("not installed")
	}
	c.Access(0x200, false, 2)
	f := c.Fill(0x200, false, false)
	if f.Writeback == nil || f.Writeback.LineAddr != 0x000 || f.Writeback.DirtyBytes != 128 {
		t.Fatalf("writeback: %+v", f.Writeback)
	}
	if c.Stats.Writebacks != 1 || c.Stats.Evictions != 1 {
		t.Fatalf("stats: %+v", c.Stats)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	cfg := Config{Name: "tiny", SizeBytes: 256, LineSize: 128, Assoc: 1,
		Sectored: false, NumMSHRs: 4, AllocOnFill: true}
	c := New(cfg)
	c.Access(0x000, false, 1)
	c.Fill(0x000, false, false)
	c.Access(0x200, false, 2)
	f := c.Fill(0x200, false, false)
	if f.Writeback != nil {
		t.Fatalf("clean eviction produced writeback: %+v", f.Writeback)
	}
	if c.Stats.Evictions != 1 {
		t.Fatalf("stats: %+v", c.Stats)
	}
}

// TestWriteMissMarksDirtyOnFill: a write that misses marks the line
// dirty when the fill arrives, so its eventual eviction writes back.
func TestWriteMissMarksDirtyOnFill(t *testing.T) {
	cfg := Config{Name: "tiny", SizeBytes: 256, LineSize: 128, Assoc: 1,
		Sectored: false, NumMSHRs: 4, AllocOnFill: true}
	c := New(cfg)
	c.Access(0x000, true, 1)
	c.Fill(0x000, false, false) // write flag recorded at access time
	c.Access(0x200, false, 2)
	f := c.Fill(0x200, false, false)
	if f.Writeback == nil {
		t.Fatal("dirty-on-fill lost")
	}
}

func TestSectoredPartialDirtyWriteback(t *testing.T) {
	cfg := Config{Name: "l2", SizeBytes: 512, LineSize: 128, Assoc: 1,
		Sectored: true, NumMSHRs: 8, AllocOnFill: true}
	c := New(cfg)
	// 4 sets. Dirty two sectors of line 0.
	c.Access(0x00, true, 1)
	c.Fill(0x00, false, false)
	c.Access(0x20, true, 2)
	c.Fill(0x20, false, false)
	// Conflict: same set at stride 512.
	c.Access(0x200, false, 3)
	f := c.Fill(0x200, false, false)
	if f.Writeback == nil || f.Writeback.DirtyBytes != 64 {
		t.Fatalf("partial dirty writeback: %+v", f.Writeback)
	}
}

func TestLRUReplacement(t *testing.T) {
	cfg := Config{Name: "lru", SizeBytes: 2 * 128, LineSize: 128, Assoc: 2,
		Sectored: false, NumMSHRs: 8, AllocOnFill: true}
	c := New(cfg)
	// One set, two ways. Install A then B; touch A; install C -> B evicted.
	fill := func(a uint64) {
		c.Access(a, false, a)
		c.Fill(a, false, false)
	}
	fill(0x000)
	fill(0x080)
	c.Access(0x000, false, 99) // A more recent than B
	fill(0x100)                // evicts LRU = B
	if !c.Present(0x000) {
		t.Fatal("LRU evicted the recently used line")
	}
	if c.Present(0x080) {
		t.Fatal("expected 0x080 evicted")
	}
}

func TestPerfectCache(t *testing.T) {
	c := New(Config{Name: "perf", LineSize: 128, Perfect: true})
	for i := uint64(0); i < 100; i++ {
		if r := c.Access(i*128, false, i); r.Outcome != Hit {
			t.Fatalf("perfect cache missed: %v", r.Outcome)
		}
	}
	if c.Stats.Misses() != 0 {
		t.Fatalf("stats: %+v", c.Stats)
	}
}

func TestUnlimitedCacheOnlyColdMisses(t *testing.T) {
	c := New(Config{Name: "large", LineSize: 128, Unlimited: true, NumMSHRs: 64, AllocOnFill: true})
	for pass := 0; pass < 2; pass++ {
		for i := uint64(0); i < 1000; i++ {
			r := c.Access(i*128, false, i)
			if pass == 0 {
				if r.Outcome != MissPrimary {
					t.Fatalf("pass 0 line %d: %v", i, r.Outcome)
				}
				c.Fill(i*128, false, false)
			} else if r.Outcome != Hit {
				t.Fatalf("pass 1 line %d: %v", i, r.Outcome)
			}
		}
	}
	if c.Stats.Evictions != 0 {
		t.Fatal("unlimited cache evicted")
	}
}

// TestAllocOnMissEvictsEarly: with AllocOnFill=false, the dirty victim
// writeback happens at access time, not fill time.
func TestAllocOnMissEvictsEarly(t *testing.T) {
	cfg := Config{Name: "aom", SizeBytes: 256, LineSize: 128, Assoc: 1,
		Sectored: false, NumMSHRs: 4, AllocOnFill: false}
	c := New(cfg)
	c.Access(0x000, true, 1)
	c.Fill(0x000, false, false)
	r := c.Access(0x200, false, 2)
	if r.Writeback == nil || r.Writeback.LineAddr != 0x000 {
		t.Fatalf("alloc-on-miss did not evict at access: %+v", r)
	}
	f := c.Fill(0x200, false, false)
	if f.Writeback != nil {
		t.Fatal("double writeback")
	}
	if r := c.Access(0x200, false, 3); r.Outcome != Hit {
		t.Fatalf("after fill: %v", r.Outcome)
	}
}

func TestMarkDirty(t *testing.T) {
	c := New(metaCfg(8))
	if c.MarkDirty(0x100) {
		t.Fatal("MarkDirty on absent line")
	}
	c.Access(0x100, false, 1)
	c.Fill(0x100, false, false)
	if !c.MarkDirty(0x100) {
		t.Fatal("MarkDirty on resident line failed")
	}
}

func TestInFlight(t *testing.T) {
	c := New(metaCfg(8))
	if c.InFlight(0x100) {
		t.Fatal("idle line in flight")
	}
	c.Access(0x100, false, 1)
	if !c.InFlight(0x100) {
		t.Fatal("missed line not in flight")
	}
	c.Fill(0x100, false, false)
	if c.InFlight(0x100) {
		t.Fatal("filled line still in flight")
	}
}

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{Name: "a", LineSize: 0},
		{Name: "b", LineSize: 128, SizeBytes: 100, Assoc: 1},
		{Name: "c", LineSize: 128, SizeBytes: 1024, Assoc: 0},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: want panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

// TestStatsConsistency: accesses = hits + primary + secondary on a
// random workload, and fills retire every MSHR.
func TestStatsConsistency(t *testing.T) {
	c := New(metaCfg(16))
	rng := rand.New(rand.NewSource(11))
	pending := map[uint64][]bool{} // unit -> bypass flags
	for i := 0; i < 5000; i++ {
		addr := uint64(rng.Intn(64)) * 128
		r := c.Access(addr, rng.Intn(4) == 0, uint64(i))
		if r.NeedFetch {
			pending[addr] = append(pending[addr], r.Outcome == MissBypass ||
				(r.Outcome == MissPrimary && !c.InFlight(addr)))
		}
		// Randomly complete some fetches.
		if rng.Intn(3) == 0 {
			for a, flags := range pending {
				if len(flags) == 0 {
					continue
				}
				c.Fill(a, flags[0], false)
				pending[a] = flags[1:]
				break
			}
		}
	}
	s := c.Stats
	if s.Accesses != s.Hits+s.MissesPrimary+s.MissesSecondary {
		t.Fatalf("access accounting broken: %+v", s)
	}
	if s.MissesBypass > s.MissesSecondary {
		t.Fatalf("bypass > secondary: %+v", s)
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c := New(l2Cfg())
	for i := 0; i < b.N; i++ {
		addr := uint64(i%4096) * 32
		r := c.Access(addr, false, uint64(i))
		if r.NeedFetch {
			c.Fill(addr, r.Outcome == MissBypass, false)
		}
	}
}
