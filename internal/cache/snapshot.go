package cache

// Checkpoint snapshot/restore. A State is a deep copy of everything
// that determines a cache's future behavior: tag arrays with
// replacement state, MSHR entries with their merged tokens, the
// bypass-tracking table, the LRU sequence counter, the DIP/BRRIP
// policy counters, and the statistics. Scratch (the entry pool, token
// scratch, eviction scratch) is deliberately excluded: it only
// recycles capacity and never carries behavior, so Restore simply
// resets it — which is also why a restored cache is behaviorally
// identical to one that never stopped.
//
// Maps are serialized as slices sorted by key so the same machine
// state always encodes to the same bytes (checkpoint digests are
// compared across runs).

import (
	"fmt"
	"sort"
)

// WayState mirrors one way of a set (or one unlimited-directory line).
type WayState struct {
	Valid       bool
	Tag         uint64
	LastUse     uint64
	RRPV        uint8
	SectorValid [SectorsPerLine]bool
	SectorDirty [SectorsPerLine]bool
}

// MSHRState mirrors one in-flight MSHR entry.
type MSHRState struct {
	LineAddr      uint64
	SectorPending [SectorsPerLine]bool
	SectorWrite   [SectorsPerLine]bool
	Tokens        [SectorsPerLine][]uint64
	Merged        int
}

// BypassState is one pendingBypass table entry.
type BypassState struct {
	Key   uint64
	Count int
}

// State is a complete, detached snapshot of a Cache.
type State struct {
	// Sets is the tag array for set-associative caches (numSets rows of
	// assoc ways); nil for Unlimited/Perfect caches, which carry Dir
	// instead (sorted by tag).
	Sets [][]WayState
	Dir  []WayState

	Seq           uint64
	MSHRs         []MSHRState // sorted by LineAddr
	MSHRFree      int
	PendingBypass []BypassState // sorted by Key
	PSel          int
	BRRIPTick     uint64
	Stats         Stats
}

func wayState(w *way) WayState {
	return WayState{
		Valid:       w.valid,
		Tag:         w.tag,
		LastUse:     w.lastUse,
		RRPV:        w.rrpv,
		SectorValid: w.sectorValid,
		SectorDirty: w.sectorDirty,
	}
}

func (ws *WayState) toWay() way {
	return way{
		valid:       ws.Valid,
		tag:         ws.Tag,
		lastUse:     ws.LastUse,
		rrpv:        ws.RRPV,
		sectorValid: ws.SectorValid,
		sectorDirty: ws.SectorDirty,
	}
}

// Snapshot captures the cache's full behavioral state. The result
// shares no memory with the cache.
func (c *Cache) Snapshot() *State {
	st := &State{
		Seq:       c.seq,
		MSHRFree:  c.mshrFree,
		PSel:      c.psel,
		BRRIPTick: c.brripTick,
		Stats:     c.Stats,
	}
	if c.dir != nil {
		st.Dir = make([]WayState, 0, len(c.dir))
		for _, w := range c.dir {
			st.Dir = append(st.Dir, wayState(w))
		}
		sort.Slice(st.Dir, func(i, j int) bool { return st.Dir[i].Tag < st.Dir[j].Tag })
	} else {
		st.Sets = make([][]WayState, len(c.sets))
		for i, set := range c.sets {
			row := make([]WayState, len(set))
			for j := range set {
				row[j] = wayState(&set[j])
			}
			st.Sets[i] = row
		}
	}
	if len(c.mshrs) > 0 {
		st.MSHRs = make([]MSHRState, 0, len(c.mshrs))
		for _, e := range c.mshrs {
			m := MSHRState{
				LineAddr:      e.lineAddr,
				SectorPending: e.sectorPending,
				SectorWrite:   e.sectorWrite,
				Merged:        e.merged,
			}
			for s := 0; s < SectorsPerLine; s++ {
				if len(e.tokens[s]) > 0 {
					m.Tokens[s] = append([]uint64(nil), e.tokens[s]...)
				}
			}
			st.MSHRs = append(st.MSHRs, m)
		}
		sort.Slice(st.MSHRs, func(i, j int) bool { return st.MSHRs[i].LineAddr < st.MSHRs[j].LineAddr })
	}
	if len(c.pendingBypass) > 0 {
		st.PendingBypass = make([]BypassState, 0, len(c.pendingBypass))
		for k, n := range c.pendingBypass {
			st.PendingBypass = append(st.PendingBypass, BypassState{Key: k, Count: n})
		}
		sort.Slice(st.PendingBypass, func(i, j int) bool { return st.PendingBypass[i].Key < st.PendingBypass[j].Key })
	}
	return st
}

// Restore replaces the cache's state with a snapshot taken from a
// cache of identical configuration. Geometry is validated against the
// receiver (a snapshot from a differently shaped cache is rejected);
// scratch and pools are reset. On error the cache must be considered
// unusable — restore into a freshly constructed instance.
func (c *Cache) Restore(st *State) error {
	if c.dir != nil {
		if st.Sets != nil {
			return fmt.Errorf("cache %s: snapshot has a tag array but the cache is unlimited/perfect", c.cfg.Name)
		}
		dir := make(map[uint64]*way, len(st.Dir))
		for i := range st.Dir {
			w := st.Dir[i].toWay()
			dir[w.tag] = &w
		}
		c.dir = dir
	} else {
		if len(st.Sets) != len(c.sets) {
			return fmt.Errorf("cache %s: snapshot has %d sets, cache has %d", c.cfg.Name, len(st.Sets), len(c.sets))
		}
		for i, row := range st.Sets {
			if len(row) != len(c.sets[i]) {
				return fmt.Errorf("cache %s: snapshot set %d has %d ways, cache has %d", c.cfg.Name, i, len(row), len(c.sets[i]))
			}
			for j := range row {
				c.sets[i][j] = row[j].toWay()
			}
		}
	}
	c.seq = st.Seq
	c.mshrFree = st.MSHRFree
	c.psel = st.PSel
	c.brripTick = st.BRRIPTick
	c.Stats = st.Stats
	c.mshrs = make(map[uint64]*mshrEntry, len(st.MSHRs))
	for i := range st.MSHRs {
		m := &st.MSHRs[i]
		e := &mshrEntry{
			lineAddr:      m.LineAddr,
			sectorPending: m.SectorPending,
			sectorWrite:   m.SectorWrite,
			merged:        m.Merged,
		}
		for s := 0; s < SectorsPerLine; s++ {
			if len(m.Tokens[s]) > 0 {
				e.tokens[s] = append([]uint64(nil), m.Tokens[s]...)
			}
		}
		c.mshrs[m.LineAddr] = e
	}
	c.pendingBypass = make(map[uint64]int, len(st.PendingBypass))
	for _, b := range st.PendingBypass {
		c.pendingBypass[b.Key] = b.Count
	}
	c.entryPool = nil
	c.tokScratch = nil
	c.evScratch = Eviction{}
	return nil
}
