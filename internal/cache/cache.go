// Package cache models the set-associative caches of the simulator:
// the sectored GPU L1/L2 caches and the (non-sectored) metadata
// caches, together with their MSHRs (miss-status handling registers).
//
// The model is timing-oriented: it tracks tags, per-sector valid/dirty
// state, LRU, and in-flight fills, but carries no data (the functional
// data path lives in internal/secmem). Callers drive it with Access
// and Fill and move the resulting fetch/writeback traffic through the
// DRAM model themselves.
//
// The MSHR semantics follow the paper's Section V-B: a miss to a unit
// (sector or line) that is already in flight is a *secondary miss*.
// With an available MSHR entry the request merges and generates no
// memory traffic; with MSHRs disabled, full, or the entry's merge
// capacity exhausted, the request bypasses and issues a redundant
// fetch — exactly the traffic MSHRs exist to filter.
//
// Concurrency and aliasing contract: caches and MSHR tables are
// single-owner state with no internal locking. Each instance belongs
// to one SM (L1) or one memory partition (L2 banks, metadata caches),
// and under the parallel partition engine is only touched by the
// goroutine that owns that component for the window.
package cache

import "fmt"

// SectorsPerLine is the fixed sector count of sectored caches (128 B
// line, 32 B sectors).
const SectorsPerLine = 4

// Config describes one cache instance.
type Config struct {
	// Name labels the cache in stats output ("L2", "ctr$", ...).
	Name string
	// SizeBytes is the capacity. Must be a multiple of LineSize*Assoc
	// unless Unlimited or Perfect.
	SizeBytes int
	// LineSize is the line size in bytes (128 everywhere in the paper).
	LineSize int
	// Assoc is the set associativity.
	Assoc int
	// Sectored enables per-sector valid/dirty bits and sector-unit
	// fills (GPU L1/L2). Non-sectored caches fill whole lines
	// (metadata caches).
	Sectored bool
	// NumMSHRs is the number of MSHR entries; 0 disables MSHRs (every
	// secondary miss bypasses and refetches).
	NumMSHRs int
	// MergeCap bounds how many requests one MSHR entry can merge
	// (512/64/64 for counter/MAC/tree caches per the paper). 0 means
	// unlimited.
	MergeCap int
	// AllocOnFill installs lines at fill time (the paper's metadata
	// cache policy); the alternative (allocate-on-miss) reserves the
	// way at miss time, evicting earlier. Timing-wise the difference
	// is when the victim writeback happens; we model both for the
	// ablation bench.
	AllocOnFill bool
	// Perfect makes every access hit (the perf_mdc idealization).
	Perfect bool
	// Unlimited gives infinite capacity: only cold misses, no
	// evictions (the large_mdc idealization).
	Unlimited bool
	// Policy selects the replacement policy (PolicyLRU default; see
	// policy.go for the RRIP family used by the smart-unified-cache
	// extension).
	Policy Policy
}

// Outcome classifies an access.
type Outcome int

const (
	// Hit: the unit is present.
	Hit Outcome = iota
	// MissPrimary: first miss to the unit; the caller must fetch it.
	MissPrimary
	// MissMerged: secondary miss merged into an MSHR; no fetch.
	MissMerged
	// MissBypass: secondary miss that could not merge (no MSHR
	// available or merge capacity exhausted); the caller must issue a
	// redundant fetch.
	MissBypass
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case MissPrimary:
		return "miss-primary"
	case MissMerged:
		return "miss-merged"
	case MissBypass:
		return "miss-bypass"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// AccessResult is what the caller gets back from Access.
type AccessResult struct {
	Outcome Outcome
	// NeedFetch tells the caller to issue a memory fetch for the unit
	// (true for MissPrimary and MissBypass).
	NeedFetch bool
	// FetchBytes is the size of that fetch (sector or full line).
	FetchBytes int
	// Writeback is non-nil when an allocate-on-miss reservation
	// evicted a dirty victim at access time.
	Writeback *Eviction
	// Bypass is true when the fetch (if any) is untracked by an MSHR;
	// its completing Fill must pass bypass=true.
	Bypass bool
}

// Eviction describes a victim that must be written back.
type Eviction struct {
	LineAddr   uint64
	DirtyBytes int
}

// FillResult is what the caller gets back from Fill.
type FillResult struct {
	// Tokens are the merged request tokens completed by this fill
	// (including the primary's token).
	Tokens []uint64
	// Writeback is non-nil if installing the line evicted a dirty
	// victim.
	Writeback *Eviction
}

// Stats accumulates per-cache counters.
type Stats struct {
	Accesses        uint64
	Hits            uint64
	MissesPrimary   uint64
	MissesSecondary uint64 // merged + bypass
	MissesBypass    uint64
	Fills           uint64
	Evictions       uint64
	Writebacks      uint64
}

// Misses is the total miss count.
func (s Stats) Misses() uint64 { return s.MissesPrimary + s.MissesSecondary }

// MissRate is misses / accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses()) / float64(s.Accesses)
}

// SecondaryRatio is the fraction of misses that were secondary — the
// paper's Figure 5 metric.
func (s Stats) SecondaryRatio() float64 {
	m := s.Misses()
	if m == 0 {
		return 0
	}
	return float64(s.MissesSecondary) / float64(m)
}

type way struct {
	valid       bool
	tag         uint64
	lastUse     uint64
	rrpv        uint8
	sectorValid [SectorsPerLine]bool
	sectorDirty [SectorsPerLine]bool
}

type mshrEntry struct {
	lineAddr uint64
	// sectorPending marks sectors in flight (index 0 used for
	// non-sectored caches).
	sectorPending [SectorsPerLine]bool
	// sectorWrite marks sectors whose fill must install dirty.
	sectorWrite [SectorsPerLine]bool
	tokens      [SectorsPerLine][]uint64
	merged      int
}

// Cache is one cache instance. Not safe for concurrent use; the
// simulator is single-threaded per partition.
type Cache struct {
	cfg      Config
	sets     []([]way)
	numSets  int
	seq      uint64
	mshrs    map[uint64]*mshrEntry
	mshrFree int
	// unlimited directory for Unlimited mode.
	dir map[uint64]*way
	// pendingBypass tracks units in flight without an MSHR so
	// secondary misses are classified even with MSHRs disabled.
	pendingBypass map[uint64]int
	// psel is the DIP set-dueling policy selector; brripTick drives
	// the bimodal insertion epsilon.
	psel      int
	brripTick uint64
	// entryPool recycles retired MSHR entries (and their token-slice
	// capacity) so the miss path stops allocating in steady state.
	entryPool []*mshrEntry
	// tokScratch backs FillResult.Tokens; see the Fill aliasing
	// contract.
	tokScratch []uint64
	// evScratch backs the *Eviction results of Access, Fill, and
	// WriteValidate; see the Access aliasing contract.
	evScratch Eviction
	Stats     Stats
}

// New builds a cache from cfg.
func New(cfg Config) *Cache {
	if cfg.LineSize <= 0 {
		panic("cache: LineSize must be positive")
	}
	c := &Cache{
		cfg:           cfg,
		mshrs:         make(map[uint64]*mshrEntry),
		mshrFree:      cfg.NumMSHRs,
		pendingBypass: make(map[uint64]int),
	}
	if cfg.Unlimited || cfg.Perfect {
		c.dir = make(map[uint64]*way)
		return c
	}
	if cfg.Assoc <= 0 {
		panic("cache: Assoc must be positive")
	}
	lines := cfg.SizeBytes / cfg.LineSize
	if lines <= 0 || cfg.SizeBytes%cfg.LineSize != 0 {
		panic(fmt.Sprintf("cache %s: size %d not a positive multiple of line size %d", cfg.Name, cfg.SizeBytes, cfg.LineSize))
	}
	numSets := lines / cfg.Assoc
	if numSets == 0 {
		numSets = 1
	}
	// Round sets down to a power of two for cheap indexing; fold the
	// remainder into associativity so capacity is preserved.
	p2 := 1
	for p2*2 <= numSets {
		p2 *= 2
	}
	numSets = p2
	assoc := lines / numSets
	c.numSets = numSets
	c.sets = make([][]way, numSets)
	for i := range c.sets {
		c.sets[i] = make([]way, assoc)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// newEntry takes an MSHR entry from the pool (or allocates the pool's
// first tenants) with all sector state cleared and token slices
// emptied but capacity retained.
func (c *Cache) newEntry(lineAddr uint64) *mshrEntry {
	if n := len(c.entryPool); n > 0 {
		e := c.entryPool[n-1]
		c.entryPool = c.entryPool[:n-1]
		e.lineAddr = lineAddr
		e.merged = 0
		for s := 0; s < SectorsPerLine; s++ {
			e.sectorPending[s] = false
			e.sectorWrite[s] = false
			e.tokens[s] = e.tokens[s][:0]
		}
		return e
	}
	return &mshrEntry{lineAddr: lineAddr}
}

// evict books a dirty victim into the eviction scratch. The returned
// pointer is valid until the next Access/Fill/WriteValidate on this
// cache (see the Access aliasing contract).
func (c *Cache) evict(w *way) *Eviction {
	c.Stats.Evictions++
	db := c.dirtyBytes(w)
	if db == 0 {
		return nil
	}
	c.Stats.Writebacks++
	c.evScratch = Eviction{LineAddr: w.tag, DirtyBytes: db}
	return &c.evScratch
}

func (c *Cache) lineAddr(addr uint64) uint64 {
	return addr / uint64(c.cfg.LineSize) * uint64(c.cfg.LineSize)
}

func (c *Cache) sectorOf(addr uint64) int {
	if !c.cfg.Sectored {
		return 0
	}
	return int(addr % uint64(c.cfg.LineSize) / (uint64(c.cfg.LineSize) / SectorsPerLine))
}

// unitKey identifies a fetch unit (line for non-sectored, line+sector
// for sectored caches).
func (c *Cache) unitKey(lineAddr uint64, sector int) uint64 {
	return lineAddr | uint64(sector)
}

func (c *Cache) fetchBytes() int {
	if c.cfg.Sectored {
		return c.cfg.LineSize / SectorsPerLine
	}
	return c.cfg.LineSize
}

func (c *Cache) setIdxFor(lineAddr uint64) int {
	return int((lineAddr / uint64(c.cfg.LineSize)) & uint64(c.numSets-1))
}

func (c *Cache) setFor(lineAddr uint64) []way {
	return c.sets[c.setIdxFor(lineAddr)]
}

func (c *Cache) findWay(lineAddr uint64) *way {
	if c.dir != nil {
		return c.dir[lineAddr]
	}
	set := c.setFor(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			return &set[i]
		}
	}
	return nil
}

// Access performs a lookup for addr. write marks the target sector
// dirty (on hit immediately, on fill otherwise). token identifies the
// request; it is returned from the completing Fill for MissPrimary and
// MissMerged outcomes (bypass fetches complete with the token the
// caller attached to the fetch itself).
//
// Aliasing contract: a non-nil Writeback points at scratch owned by
// this cache and is valid only until the next Access, Fill, or
// WriteValidate on the *same* cache instance. Callers must read its
// fields before triggering any further access on this cache (the
// partition's writeback handlers consume LineAddr/DirtyBytes first,
// then recurse).
func (c *Cache) Access(addr uint64, write bool, token uint64) AccessResult {
	c.Stats.Accesses++
	if c.cfg.Perfect {
		c.Stats.Hits++
		return AccessResult{Outcome: Hit}
	}
	c.seq++
	lineAddr := c.lineAddr(addr)
	sector := c.sectorOf(addr)

	linePresent := false
	if w := c.findWay(lineAddr); w != nil {
		linePresent = true
		if w.sectorValid[sector] {
			c.touchHit(w)
			if write {
				w.sectorDirty[sector] = true
			}
			c.Stats.Hits++
			return AccessResult{Outcome: Hit}
		}
	}
	if c.dir == nil {
		c.duelMiss(c.setIdxFor(lineAddr))
	}

	// Miss. Classify primary vs secondary by in-flight state.
	if e, ok := c.mshrs[lineAddr]; ok {
		if e.sectorPending[sector] {
			// Secondary miss: merge if capacity allows.
			if c.cfg.Unlimited || c.cfg.MergeCap == 0 || e.merged < c.cfg.MergeCap {
				e.merged++
				e.tokens[sector] = append(e.tokens[sector], token)
				if write {
					e.sectorWrite[sector] = true
				}
				c.Stats.MissesSecondary++
				return AccessResult{Outcome: MissMerged}
			}
			c.Stats.MissesSecondary++
			c.Stats.MissesBypass++
			c.noteBypass(lineAddr, sector)
			return AccessResult{Outcome: MissBypass, NeedFetch: true, FetchBytes: c.fetchBytes(), Bypass: true}
		}
		// Same line, new sector: track it in the same entry; it needs
		// its own fetch (a sector is the fetch unit).
		e.sectorPending[sector] = true
		e.tokens[sector] = append(e.tokens[sector], token)
		if write {
			e.sectorWrite[sector] = true
		}
		c.Stats.MissesPrimary++
		return AccessResult{Outcome: MissPrimary, NeedFetch: true, FetchBytes: c.fetchBytes()}
	}

	if c.pendingBypass[c.unitKey(lineAddr, sector)] > 0 {
		// In flight without an MSHR entry: a secondary miss that must
		// refetch.
		c.Stats.MissesSecondary++
		c.Stats.MissesBypass++
		c.noteBypass(lineAddr, sector)
		return AccessResult{Outcome: MissBypass, NeedFetch: true, FetchBytes: c.fetchBytes(), Bypass: true}
	}

	// Primary miss to an idle unit.
	c.Stats.MissesPrimary++
	var reserveWB *Eviction
	if !c.cfg.AllocOnFill && !c.cfg.Unlimited && !linePresent {
		reserveWB = c.reserve(lineAddr)
	}
	if c.cfg.Unlimited {
		// The large_mdc idealization has "only cold misses": entries
		// and merge capacity are unbounded, so no redundant fetch is
		// ever issued.
		e := c.newEntry(lineAddr)
		e.sectorPending[sector] = true
		e.tokens[sector] = append(e.tokens[sector], token)
		if write {
			e.sectorWrite[sector] = true
		}
		c.mshrs[lineAddr] = e
		return AccessResult{Outcome: MissPrimary, NeedFetch: true, FetchBytes: c.fetchBytes()}
	}
	if c.mshrFree > 0 {
		e := c.newEntry(lineAddr)
		e.sectorPending[sector] = true
		e.tokens[sector] = append(e.tokens[sector], token)
		if write {
			e.sectorWrite[sector] = true
		}
		c.mshrs[lineAddr] = e
		c.mshrFree--
		return AccessResult{Outcome: MissPrimary, NeedFetch: true, FetchBytes: c.fetchBytes(), Writeback: reserveWB}
	}
	c.noteBypass(lineAddr, sector)
	return AccessResult{Outcome: MissPrimary, NeedFetch: true, FetchBytes: c.fetchBytes(), Writeback: reserveWB, Bypass: true}
}

// reserve implements allocate-on-miss: the victim way is claimed (and
// written back if dirty) at miss time, with no sector valid yet.
func (c *Cache) reserve(lineAddr uint64) *Eviction {
	setIdx := c.setIdxFor(lineAddr)
	set := c.sets[setIdx]
	victim := c.pickVictim(set)
	var ev *Eviction
	w := &set[victim]
	if w.valid {
		ev = c.evict(w)
	}
	*w = way{valid: true, tag: lineAddr}
	c.insertState(w, setIdx)
	return ev
}

func (c *Cache) noteBypass(lineAddr uint64, sector int) {
	c.pendingBypass[c.unitKey(lineAddr, sector)]++
}

// dirtyBytes computes the writeback size of a victim way.
func (c *Cache) dirtyBytes(w *way) int {
	if !c.cfg.Sectored {
		if w.sectorDirty[0] {
			return c.cfg.LineSize
		}
		return 0
	}
	n := 0
	for s := 0; s < SectorsPerLine; s++ {
		if w.sectorDirty[s] {
			n += c.cfg.LineSize / SectorsPerLine
		}
	}
	return n
}

// install places (lineAddr, sector) into the cache, evicting as
// needed, and returns any dirty victim.
func (c *Cache) install(lineAddr uint64, sector int, write bool) *Eviction {
	if c.dir != nil { // unlimited
		w := c.dir[lineAddr]
		if w == nil {
			w = &way{valid: true, tag: lineAddr}
			c.dir[lineAddr] = w
		}
		w.lastUse = c.seq
		w.sectorValid[sector] = true
		if write {
			w.sectorDirty[sector] = true
		}
		return nil
	}
	setIdx := c.setIdxFor(lineAddr)
	set := c.sets[setIdx]
	// Already present (another sector filled it, or a bypass raced)?
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			set[i].lastUse = c.seq
			set[i].sectorValid[sector] = true
			if write {
				set[i].sectorDirty[sector] = true
			}
			return nil
		}
	}
	victim := c.pickVictim(set)
	var ev *Eviction
	w := &set[victim]
	if w.valid {
		ev = c.evict(w)
	}
	*w = way{valid: true, tag: lineAddr}
	c.insertState(w, setIdx)
	w.sectorValid[sector] = true
	if write {
		w.sectorDirty[sector] = true
	}
	return ev
}

// Fill delivers the memory response for the unit containing addr.
// bypass must be true when the fetch was issued for a MissBypass (or
// MSHR-less primary miss); its completing token travels with the fetch
// and is not returned here.
//
// Aliasing contract: FillResult.Tokens and FillResult.Writeback point
// at scratch owned by this cache, valid only until the next
// Access/Fill/WriteValidate on the same instance. Callers consume them
// in the same dispatch (waking waiters, enqueueing the writeback)
// before anything else touches the cache.
func (c *Cache) Fill(addr uint64, bypass bool, write bool) FillResult {
	c.Stats.Fills++
	c.seq++
	lineAddr := c.lineAddr(addr)
	sector := c.sectorOf(addr)
	var res FillResult

	if bypass {
		key := c.unitKey(lineAddr, sector)
		if c.pendingBypass[key] > 0 {
			c.pendingBypass[key]--
			if c.pendingBypass[key] == 0 {
				delete(c.pendingBypass, key)
			}
		}
		if ev := c.install(lineAddr, sector, write); ev != nil {
			res.Writeback = ev
		}
		return res
	}

	e, ok := c.mshrs[lineAddr]
	if !ok || !e.sectorPending[sector] {
		// A fill with no waiting entry (e.g. MSHR-less primary):
		// install and return.
		if ev := c.install(lineAddr, sector, write); ev != nil {
			res.Writeback = ev
		}
		return res
	}
	if len(e.tokens[sector]) > 0 {
		res.Tokens = append(c.tokScratch[:0], e.tokens[sector]...)
		c.tokScratch = res.Tokens[:0]
	}
	wr := write || e.sectorWrite[sector]
	e.tokens[sector] = e.tokens[sector][:0]
	e.sectorPending[sector] = false
	e.sectorWrite[sector] = false
	if ev := c.install(lineAddr, sector, wr); ev != nil {
		res.Writeback = ev
	}
	// Retire the entry when no sector remains pending.
	done := true
	for s := 0; s < SectorsPerLine; s++ {
		if e.sectorPending[s] {
			done = false
			break
		}
	}
	if done {
		delete(c.mshrs, lineAddr)
		if !c.cfg.Unlimited {
			c.mshrFree++
		}
		c.entryPool = append(c.entryPool, e)
	}
	return res
}

// WriteValidate services a full-sector store without fetching: if the
// sector is present it is marked dirty (a write hit); otherwise the
// line is installed with just this sector valid and dirty. GPUs use
// this write-no-fetch policy for coalesced global stores, which is why
// store misses generate no read traffic. Returns the dirty victim, if
// any, and whether the store hit.
func (c *Cache) WriteValidate(addr uint64) (*Eviction, bool) {
	c.Stats.Accesses++
	if c.cfg.Perfect {
		c.Stats.Hits++
		return nil, true
	}
	c.seq++
	lineAddr := c.lineAddr(addr)
	sector := c.sectorOf(addr)
	if w := c.findWay(lineAddr); w != nil && w.sectorValid[sector] {
		c.touchHit(w)
		w.sectorDirty[sector] = true
		c.Stats.Hits++
		return nil, true
	}
	c.Stats.MissesPrimary++
	return c.install(lineAddr, sector, true), false
}

// MarkDirty marks the sector containing addr dirty if present (used
// for metadata updates that modify an already-resident line outside a
// normal Access, e.g. lazy tree updates).
func (c *Cache) MarkDirty(addr uint64) bool {
	lineAddr := c.lineAddr(addr)
	if w := c.findWay(lineAddr); w != nil {
		s := c.sectorOf(addr)
		if w.sectorValid[s] {
			w.sectorDirty[s] = true
			return true
		}
	}
	return false
}

// Present reports whether the unit containing addr is resident.
func (c *Cache) Present(addr uint64) bool {
	if c.cfg.Perfect {
		return true
	}
	w := c.findWay(c.lineAddr(addr))
	if w == nil {
		return false
	}
	return w.sectorValid[c.sectorOf(addr)]
}

// MSHRsInUse reports how many MSHR entries are currently allocated —
// the probe timeline's occupancy gauge. In Unlimited mode (no entry
// budget) it is simply the number of lines in flight.
func (c *Cache) MSHRsInUse() int { return len(c.mshrs) }

// PendingFills reports how many fetch units are currently in flight
// (MSHR-tracked sectors plus untracked bypass fetches) — used by the
// simulator's stall diagnostics.
func (c *Cache) PendingFills() int {
	n := 0
	for _, e := range c.mshrs {
		for s := 0; s < SectorsPerLine; s++ {
			if e.sectorPending[s] {
				n++
			}
		}
	}
	for _, cnt := range c.pendingBypass {
		n += cnt
	}
	return n
}

// AuditLeaks checks the cache's internal accounting invariants: MSHR
// free-list conservation, no phantom MSHR entries (an entry with no
// pending sector should have been retired by Fill), and no
// non-positive bypass counts. It returns nil when the books balance.
// The checks are O(entries in flight); the simulator runs them only
// when auditing is enabled.
func (c *Cache) AuditLeaks() error {
	if c.mshrFree < 0 {
		return fmt.Errorf("cache %s: mshrFree %d negative", c.cfg.Name, c.mshrFree)
	}
	if !c.cfg.Unlimited && !c.cfg.Perfect && c.cfg.NumMSHRs > 0 {
		if c.mshrFree+len(c.mshrs) != c.cfg.NumMSHRs {
			return fmt.Errorf("cache %s: MSHR leak: %d free + %d live != %d total",
				c.cfg.Name, c.mshrFree, len(c.mshrs), c.cfg.NumMSHRs)
		}
	}
	for lineAddr, e := range c.mshrs {
		live := false
		for s := 0; s < SectorsPerLine; s++ {
			if e.sectorPending[s] {
				live = true
			} else if len(e.tokens[s]) != 0 {
				return fmt.Errorf("cache %s: MSHR %#x sector %d holds %d tokens with no pending fill",
					c.cfg.Name, lineAddr, s, len(e.tokens[s]))
			}
		}
		if !live {
			return fmt.Errorf("cache %s: MSHR %#x has no pending sector (missed retirement)", c.cfg.Name, lineAddr)
		}
	}
	for key, n := range c.pendingBypass {
		if n <= 0 {
			return fmt.Errorf("cache %s: bypass count %d for unit %#x", c.cfg.Name, n, key)
		}
	}
	return nil
}

// InFlight reports whether the unit containing addr has a pending fill
// (via MSHR or bypass tracking).
func (c *Cache) InFlight(addr uint64) bool {
	lineAddr := c.lineAddr(addr)
	sector := c.sectorOf(addr)
	if e, ok := c.mshrs[lineAddr]; ok && e.sectorPending[sector] {
		return true
	}
	return c.pendingBypass[c.unitKey(lineAddr, sector)] > 0
}
