package geometry

import (
	"testing"
	"testing/quick"
)

const fourGB = 4 << 30

func TestTableIIBMT(t *testing.T) {
	l := MustLayout(fourGB, BMT)
	s := l.Storage()
	if got, want := s.CounterBytes, uint64(32<<20); got != want {
		t.Errorf("counter storage = %d, want %d (32MB)", got, want)
	}
	if got, want := s.MACBytes, uint64(256<<20); got != want {
		t.Errorf("MAC storage = %d, want %d (256MB)", got, want)
	}
	// Paper: 2.14 MB for the BMT excluding counter (leaf) blocks.
	gotMB := float64(s.TreeBytes) / (1 << 20)
	if gotMB < 2.0 || gotMB > 2.3 {
		t.Errorf("BMT storage = %.2f MB, want ~2.14 MB", gotMB)
	}
	if got, want := s.TreeLevelsIncLeaves, 6; got != want {
		t.Errorf("BMT levels (incl. leaves) = %d, want %d", got, want)
	}
	// Total ~290.14 MB.
	totMB := float64(s.TotalBytes()) / (1 << 20)
	if totMB < 289 || totMB > 291 {
		t.Errorf("total metadata = %.2f MB, want ~290.14 MB", totMB)
	}
}

func TestTableIIMT(t *testing.T) {
	l := MustLayout(fourGB, MT)
	s := l.Storage()
	if s.CounterBytes != 0 {
		t.Errorf("direct encryption has no counters, got %d bytes", s.CounterBytes)
	}
	if got, want := s.MACBytes, uint64(256<<20); got != want {
		t.Errorf("MAC storage = %d, want %d (256MB)", got, want)
	}
	gotMB := float64(s.TreeBytes) / (1 << 20)
	if gotMB < 16.8 || gotMB > 17.3 {
		t.Errorf("MT storage = %.2f MB, want ~17.1 MB", gotMB)
	}
	if got, want := s.TreeLevelsIncLeaves, 7; got != want {
		t.Errorf("MT levels (incl. leaves) = %d, want %d", got, want)
	}
	totMB := float64(s.TotalBytes()) / (1 << 20)
	if totMB < 272 || totMB > 274 {
		t.Errorf("total metadata = %.2f MB, want ~273.1 MB", totMB)
	}
}

func TestNewLayoutErrors(t *testing.T) {
	if _, err := NewLayout(0, BMT); err == nil {
		t.Error("want error for zero size")
	}
	if _, err := NewLayout(CounterCoverage+1, BMT); err == nil {
		t.Error("want error for unaligned size")
	}
}

func TestCounterMapping(t *testing.T) {
	l := MustLayout(1<<20, BMT) // 1 MB region: 64 counter lines
	if l.NumCounterLines != 64 {
		t.Fatalf("NumCounterLines = %d, want 64", l.NumCounterLines)
	}
	cases := []struct {
		addr uint64
		line uint64
		slot int
	}{
		{0, 0, 0},
		{127, 0, 0},
		{128, 0, 1},
		{16*1024 - 1, 0, 127},
		{16 * 1024, 1, 0},
		{1<<20 - 1, 63, 127},
	}
	for _, tc := range cases {
		if got := l.CounterLine(tc.addr); got != tc.line {
			t.Errorf("CounterLine(%#x) = %d, want %d", tc.addr, got, tc.line)
		}
		if got := l.CounterSlot(tc.addr); got != tc.slot {
			t.Errorf("CounterSlot(%#x) = %d, want %d", tc.addr, got, tc.slot)
		}
	}
}

func TestMACMapping(t *testing.T) {
	l := MustLayout(1<<20, BMT)
	// One MAC line covers 16 data lines = 2 KB.
	if got, want := l.NumMACLines, uint64(1<<20/2048); got != want {
		t.Fatalf("NumMACLines = %d, want %d", got, want)
	}
	if got := l.MACLine(0); got != 0 {
		t.Errorf("MACLine(0) = %d", got)
	}
	if got := l.MACLine(2048); got != 1 {
		t.Errorf("MACLine(2048) = %d, want 1", got)
	}
	if got := l.MACBlockSlot(128 * 5); got != 5 {
		t.Errorf("MACBlockSlot(line 5) = %d, want 5", got)
	}
	if got := l.MACBlockSlot(2048 + 128); got != 1 {
		t.Errorf("MACBlockSlot wraps per line: got %d, want 1", got)
	}
	// Sector MAC addresses are 2 bytes apart within a block slot.
	a0 := l.MACSectorAddr(0)
	a1 := l.MACSectorAddr(32)
	if a1 != a0+2 {
		t.Errorf("sector MACs not adjacent: %#x, %#x", a0, a1)
	}
	b0 := l.MACSectorAddr(128)
	if b0 != a0+8 {
		t.Errorf("block MACs not 8B apart: %#x, %#x", a0, b0)
	}
}

// TestMACSectorAddrsDistinct: every sector in a small region maps to a
// unique, in-range MAC address.
func TestMACSectorAddrsDistinct(t *testing.T) {
	l := MustLayout(64*1024, BMT)
	seen := map[uint64]uint64{}
	for addr := uint64(0); addr < l.DataBytes; addr += SectorSize {
		m := l.MACSectorAddr(addr)
		if m < l.MACBase || m >= l.TreeBase {
			t.Fatalf("MAC addr %#x for data %#x outside MAC region [%#x,%#x)", m, addr, l.MACBase, l.TreeBase)
		}
		if prev, dup := seen[m]; dup {
			t.Fatalf("data %#x and %#x share MAC address %#x", prev, addr, m)
		}
		seen[m] = addr
	}
}

func TestTreeShape(t *testing.T) {
	// 16 MB region: 1024 counter lines -> levels 64, 4, 1 (root last
	// in bottom-up, level 0 = root).
	l := MustLayout(16<<20, BMT)
	if l.NumCounterLines != 1024 {
		t.Fatalf("counter lines = %d", l.NumCounterLines)
	}
	want := []uint64{1, 4, 64}
	if len(l.LevelNodes) != len(want) {
		t.Fatalf("levels = %v, want %v", l.LevelNodes, want)
	}
	for i := range want {
		if l.LevelNodes[i] != want[i] {
			t.Fatalf("levels = %v, want %v", l.LevelNodes, want)
		}
	}
	if l.TreeNodes() != 69 {
		t.Fatalf("TreeNodes = %d, want 69", l.TreeNodes())
	}
}

// TestParentChainReachesRoot: from every leaf, following parents
// terminates at the root (level 0, index 0) in exactly TreeLevels steps.
func TestParentChainReachesRoot(t *testing.T) {
	l := MustLayout(16<<20, BMT)
	for leaf := uint64(0); leaf < l.NumLeaves(); leaf += 17 {
		level, idx, slot := l.LeafParent(leaf)
		if slot != int(leaf%TreeArity) {
			t.Fatalf("leaf %d slot = %d", leaf, slot)
		}
		steps := 1
		for {
			plevel, pidx, _, ok := l.Parent(level, idx)
			if !ok {
				break
			}
			if plevel != level-1 {
				t.Fatalf("parent level %d of level %d", plevel, level)
			}
			level, idx = plevel, pidx
			steps++
		}
		if level != 0 || idx != 0 {
			t.Fatalf("leaf %d chain ended at (%d,%d), not root", leaf, level, idx)
		}
		if steps != l.TreeLevels() {
			t.Fatalf("leaf %d chain length %d, want %d", leaf, steps, l.TreeLevels())
		}
	}
}

// TestNodeFlatIndexUnique: flat indices are dense and unique across
// all (level, idx) pairs.
func TestNodeFlatIndexUnique(t *testing.T) {
	l := MustLayout(16<<20, BMT)
	seen := make(map[uint64]bool)
	for level := 0; level < l.TreeLevels(); level++ {
		for idx := uint64(0); idx < l.LevelNodes[level]; idx++ {
			f := l.NodeFlatIndex(level, idx)
			if f >= l.TreeNodes() {
				t.Fatalf("flat index %d out of range %d", f, l.TreeNodes())
			}
			if seen[f] {
				t.Fatalf("duplicate flat index %d", f)
			}
			seen[f] = true
		}
	}
	if uint64(len(seen)) != l.TreeNodes() {
		t.Fatalf("flat indices not dense: %d of %d", len(seen), l.TreeNodes())
	}
}

// TestRegionsDisjoint: data, counter, MAC and tree regions must not
// overlap and must tile [0, TotalBytes).
func TestRegionsDisjoint(t *testing.T) {
	for _, kind := range []TreeKind{BMT, MT} {
		l := MustLayout(32<<20, kind)
		if l.CounterBase != l.DataBytes {
			t.Errorf("%v: counter base %#x != data end %#x", kind, l.CounterBase, l.DataBytes)
		}
		if l.MACBase != l.CounterBase+l.NumCounterLines*LineSize {
			t.Errorf("%v: MAC base misplaced", kind)
		}
		if l.TreeBase != l.MACBase+l.NumMACLines*LineSize {
			t.Errorf("%v: tree base misplaced", kind)
		}
		if l.TotalBytes != l.TreeBase+l.TreeBytes() {
			t.Errorf("%v: total bytes misplaced", kind)
		}
	}
}

// TestGeometryScalesProperty: for random region sizes, derived
// invariants hold (counter coverage ratio 128:1, MAC ratio 16:1,
// parent chain sound).
func TestGeometryScalesProperty(t *testing.T) {
	f := func(chunks uint16) bool {
		n := (uint64(chunks%512) + 1) * CounterCoverage
		l, err := NewLayout(n, BMT)
		if err != nil {
			return false
		}
		if l.NumDataLines != l.NumCounterLines*MinorCountersPerLine {
			return false
		}
		if l.NumDataLines != l.NumMACLines*BlocksPerMACLine {
			return false
		}
		if l.LevelNodes[0] != 1 {
			return false
		}
		for lv := 1; lv < len(l.LevelNodes); lv++ {
			if ceilDiv(l.LevelNodes[lv], TreeArity) != l.LevelNodes[lv-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPanicsOnOutOfRange(t *testing.T) {
	l := MustLayout(1<<20, BMT)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		fn()
	}
	mustPanic("CounterLine", func() { l.CounterLine(1 << 20) })
	mustPanic("MACLine", func() { l.MACLine(1 << 20) })
	mustPanic("CounterLineAddr", func() { l.CounterLineAddr(l.NumCounterLines) })
	mustPanic("MACLineAddr", func() { l.MACLineAddr(l.NumMACLines) })
	mustPanic("LeafParent", func() { l.LeafParent(l.NumLeaves()) })
	mustPanic("NodeFlatIndex", func() { l.NodeFlatIndex(0, 1) })
}

func TestRegionOfAndNodeByAddr(t *testing.T) {
	l := MustLayout(1<<20, BMT)
	cases := []struct {
		addr uint64
		want Region
	}{
		{0, RegionData},
		{l.DataBytes - 1, RegionData},
		{l.CounterBase, RegionCounter},
		{l.MACBase, RegionMAC},
		{l.TreeBase, RegionTree},
		{l.TotalBytes - 1, RegionTree},
	}
	for _, tc := range cases {
		if got := l.RegionOf(tc.addr); got != tc.want {
			t.Errorf("RegionOf(%#x) = %v, want %v", tc.addr, got, tc.want)
		}
	}
	for _, r := range []Region{RegionData, RegionCounter, RegionMAC, RegionTree} {
		if r.String() == "" {
			t.Error("empty region name")
		}
	}
	// NodeByAddr inverts TreeNodeAddr for every node.
	for level := 0; level < l.TreeLevels(); level++ {
		for idx := uint64(0); idx < l.LevelNodes[level]; idx++ {
			gl, gi := l.NodeByAddr(l.TreeNodeAddr(level, idx))
			if gl != level || gi != idx {
				t.Fatalf("NodeByAddr(TreeNodeAddr(%d,%d)) = (%d,%d)", level, idx, gl, gi)
			}
		}
	}
}

func TestRegionOfPanicsOutside(t *testing.T) {
	l := MustLayout(1<<20, BMT)
	for name, fn := range map[string]func(){
		"RegionOf":   func() { l.RegionOf(l.TotalBytes) },
		"NodeByAddr": func() { l.NodeByAddr(l.DataBytes) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTreeKindString(t *testing.T) {
	if BMT.String() != "BMT" || MT.String() != "MT" {
		t.Error("TreeKind strings")
	}
}
