// Package geometry defines the secure-memory metadata layout from the
// paper's Table II: split counters (one 128-bit major + 128 7-bit
// minor counters per 128 B counter line, covering 16 KB of data),
// per-block 64-bit MACs truncated to 16 bits per 32 B sector, and the
// 16-ary Bonsai Merkle Tree (over counter lines) or Merkle Tree (over
// MAC lines). All address math for counters, MACs, and tree nodes
// lives here so the functional engines and the timing simulator share
// one source of truth.
package geometry

import "fmt"

// Architectural constants fixed by the paper.
const (
	// LineSize is the data/metadata cache-line size in bytes.
	LineSize = 128
	// SectorSize is the L2 sector size in bytes (4 sectors per line).
	SectorSize = 32
	// SectorsPerLine is LineSize / SectorSize.
	SectorsPerLine = LineSize / SectorSize
	// CounterCoverage is the bytes of data covered by one counter
	// line: 128 minor counters x 128 B lines = 16 KB.
	CounterCoverage = 16 * 1024
	// MinorCountersPerLine is the number of 7-bit minor counters in a
	// counter line.
	MinorCountersPerLine = 128
	// MinorCounterMax is the largest representable minor counter value
	// (7 bits). Exceeding it forces a major-counter bump and regional
	// re-encryption.
	MinorCounterMax = 127
	// MACBytesPerBlock is the MAC width per 128 B data block (64-bit).
	MACBytesPerBlock = 8
	// MACBytesPerSector is the truncated MAC width per 32 B sector.
	MACBytesPerSector = 2
	// BlocksPerMACLine is how many data blocks one 128 B MAC line
	// covers (16).
	BlocksPerMACLine = LineSize / MACBytesPerBlock
	// TreeArity is the fan-in of the integrity trees.
	TreeArity = 16
	// HashBytes is the width of one tree hash (64-bit), so a 128 B
	// node holds TreeArity hashes.
	HashBytes = LineSize / TreeArity
)

// TreeKind selects which integrity tree a layout describes.
type TreeKind int

const (
	// BMT is the Bonsai Merkle Tree: leaves are counter lines
	// (counter-mode encryption).
	BMT TreeKind = iota
	// MT is the full Merkle Tree: leaves are MAC lines (direct
	// encryption).
	MT
)

func (k TreeKind) String() string {
	if k == BMT {
		return "BMT"
	}
	return "MT"
}

// Layout captures the complete metadata geometry for a protected
// region. All fields are derived in NewLayout and read-only afterward.
type Layout struct {
	// DataBytes is the protected data size (4 GB in the paper).
	DataBytes uint64
	// Kind selects BMT (counter mode) or MT (direct encryption).
	Kind TreeKind

	// NumDataLines is DataBytes / LineSize.
	NumDataLines uint64
	// NumCounterLines is DataBytes / CounterCoverage (0 for MT
	// layouts, which have no counters).
	NumCounterLines uint64
	// NumMACLines is DataBytes / (BlocksPerMACLine * LineSize).
	NumMACLines uint64

	// LevelNodes[l] is the number of 128 B nodes at tree level l,
	// where level 0 is the root and the last level is the lowest
	// interior level (the parents of the leaves). Leaves themselves
	// (counter lines or MAC lines) are not stored in LevelNodes.
	LevelNodes []uint64
	// levelStart[l] is the cumulative node index of the first node at
	// level l, used for flat node numbering.
	levelStart []uint64

	// Region base addresses in the backing store. Data occupies
	// [0, DataBytes); metadata regions follow contiguously.
	CounterBase uint64
	MACBase     uint64
	TreeBase    uint64
	// TotalBytes is the end of the tree region: the full backing-store
	// footprint for data + metadata.
	TotalBytes uint64
}

// NewLayout derives the layout for a protected region of dataBytes
// under the given tree kind. dataBytes must be a positive multiple of
// CounterCoverage (16 KB) so every counter line is fully populated.
func NewLayout(dataBytes uint64, kind TreeKind) (*Layout, error) {
	if dataBytes == 0 || dataBytes%CounterCoverage != 0 {
		return nil, fmt.Errorf("geometry: data size %d must be a positive multiple of %d", dataBytes, CounterCoverage)
	}
	l := &Layout{DataBytes: dataBytes, Kind: kind}
	l.NumDataLines = dataBytes / LineSize
	l.NumMACLines = dataBytes / (BlocksPerMACLine * LineSize)
	var leaves uint64
	if kind == BMT {
		l.NumCounterLines = dataBytes / CounterCoverage
		leaves = l.NumCounterLines
	} else {
		leaves = l.NumMACLines
	}

	// Build interior levels bottom-up, then reverse so level 0 is the
	// root. The lowest interior level has ceil(leaves/arity) nodes.
	var bottomUp []uint64
	n := ceilDiv(leaves, TreeArity)
	for {
		bottomUp = append(bottomUp, n)
		if n == 1 {
			break
		}
		n = ceilDiv(n, TreeArity)
	}
	l.LevelNodes = make([]uint64, len(bottomUp))
	for i, v := range bottomUp {
		l.LevelNodes[len(bottomUp)-1-i] = v
	}
	l.levelStart = make([]uint64, len(l.LevelNodes)+1)
	for i, v := range l.LevelNodes {
		l.levelStart[i+1] = l.levelStart[i] + v
	}

	l.CounterBase = dataBytes
	l.MACBase = l.CounterBase + l.NumCounterLines*LineSize
	l.TreeBase = l.MACBase + l.NumMACLines*LineSize
	l.TotalBytes = l.TreeBase + l.TreeNodes()*LineSize
	return l, nil
}

// MustLayout is like NewLayout but panics on error.
func MustLayout(dataBytes uint64, kind TreeKind) *Layout {
	l, err := NewLayout(dataBytes, kind)
	if err != nil {
		panic(err)
	}
	return l
}

func ceilDiv(a, b uint64) uint64 { return (a + b - 1) / b }

func (l *Layout) checkData(addr uint64) {
	if addr >= l.DataBytes {
		panic(fmt.Sprintf("geometry: data address %#x outside protected region %#x", addr, l.DataBytes))
	}
}

// --- Counters (BMT layouts only) ---

// CounterLine returns the counter-line index covering the data address.
func (l *Layout) CounterLine(dataAddr uint64) uint64 {
	l.checkData(dataAddr)
	return dataAddr / CounterCoverage
}

// CounterSlot returns the minor-counter index within the counter line
// for the 128 B data line containing dataAddr.
func (l *Layout) CounterSlot(dataAddr uint64) int {
	l.checkData(dataAddr)
	return int(dataAddr % CounterCoverage / LineSize)
}

// CounterLineAddr returns the backing-store address of counter line i.
func (l *Layout) CounterLineAddr(i uint64) uint64 {
	if i >= l.NumCounterLines {
		panic(fmt.Sprintf("geometry: counter line %d out of range %d", i, l.NumCounterLines))
	}
	return l.CounterBase + i*LineSize
}

// --- MACs ---

// MACLine returns the MAC-line index covering the data address.
func (l *Layout) MACLine(dataAddr uint64) uint64 {
	l.checkData(dataAddr)
	return dataAddr / (BlocksPerMACLine * LineSize)
}

// MACBlockSlot returns which of the 16 block-MAC slots within the MAC
// line covers the data line containing dataAddr.
func (l *Layout) MACBlockSlot(dataAddr uint64) int {
	l.checkData(dataAddr)
	return int(dataAddr / LineSize % BlocksPerMACLine)
}

// MACSectorAddr returns the backing-store address of the 2-byte sector
// MAC for the 32 B sector containing dataAddr.
func (l *Layout) MACSectorAddr(dataAddr uint64) uint64 {
	l.checkData(dataAddr)
	line := l.MACLine(dataAddr)
	blockSlot := l.MACBlockSlot(dataAddr)
	sector := int(dataAddr % LineSize / SectorSize)
	return l.MACBase + line*LineSize + uint64(blockSlot)*MACBytesPerBlock + uint64(sector)*MACBytesPerSector
}

// MACLineAddr returns the backing-store address of MAC line i.
func (l *Layout) MACLineAddr(i uint64) uint64 {
	if i >= l.NumMACLines {
		panic(fmt.Sprintf("geometry: MAC line %d out of range %d", i, l.NumMACLines))
	}
	return l.MACBase + i*LineSize
}

// --- Integrity tree ---

// TreeLevels returns the number of stored (interior) tree levels.
// The paper's "6-level BMT" / "7-level MT" counts the leaf level too,
// i.e. TreeLevels()+1.
func (l *Layout) TreeLevels() int { return len(l.LevelNodes) }

// TreeNodes returns the total number of stored 128 B tree nodes.
func (l *Layout) TreeNodes() uint64 { return l.levelStart[len(l.levelStart)-1] }

// TreeBytes returns the storage consumed by the stored tree nodes.
func (l *Layout) TreeBytes() uint64 { return l.TreeNodes() * LineSize }

// NumLeaves returns the number of tree leaves (counter lines for BMT,
// MAC lines for MT).
func (l *Layout) NumLeaves() uint64 {
	if l.Kind == BMT {
		return l.NumCounterLines
	}
	return l.NumMACLines
}

// LeafParent returns the (level, index) of the lowest interior node
// covering leaf i, and the child slot within that node.
func (l *Layout) LeafParent(leaf uint64) (level int, idx uint64, slot int) {
	if leaf >= l.NumLeaves() {
		panic(fmt.Sprintf("geometry: leaf %d out of range %d", leaf, l.NumLeaves()))
	}
	return len(l.LevelNodes) - 1, leaf / TreeArity, int(leaf % TreeArity)
}

// Parent returns the (level, index) of the parent of node (level, idx),
// and the child slot within the parent. The root (level 0) has no
// parent; ok is false.
func (l *Layout) Parent(level int, idx uint64) (plevel int, pidx uint64, slot int, ok bool) {
	if level <= 0 {
		return 0, 0, 0, false
	}
	return level - 1, idx / TreeArity, int(idx % TreeArity), true
}

// NodeFlatIndex returns a unique flat index for node (level, idx),
// usable as a cache tag or hash-mix input.
func (l *Layout) NodeFlatIndex(level int, idx uint64) uint64 {
	if level < 0 || level >= len(l.LevelNodes) || idx >= l.LevelNodes[level] {
		panic(fmt.Sprintf("geometry: node (%d,%d) out of range", level, idx))
	}
	return l.levelStart[level] + idx
}

// TreeNodeAddr returns the backing-store address of node (level, idx).
func (l *Layout) TreeNodeAddr(level int, idx uint64) uint64 {
	return l.TreeBase + l.NodeFlatIndex(level, idx)*LineSize
}

// NodeByAddr inverts TreeNodeAddr: it recovers (level, idx) from a
// backing-store address inside the tree region.
func (l *Layout) NodeByAddr(addr uint64) (level int, idx uint64) {
	if addr < l.TreeBase || addr >= l.TotalBytes {
		panic(fmt.Sprintf("geometry: address %#x outside tree region [%#x,%#x)", addr, l.TreeBase, l.TotalBytes))
	}
	flat := (addr - l.TreeBase) / LineSize
	for lv := 0; lv < len(l.LevelNodes); lv++ {
		if flat < l.levelStart[lv+1] {
			return lv, flat - l.levelStart[lv]
		}
	}
	panic("geometry: unreachable")
}

// Region classifies a backing-store address.
type Region int

// Region values, in address order.
const (
	RegionData Region = iota
	RegionCounter
	RegionMAC
	RegionTree
)

func (r Region) String() string {
	switch r {
	case RegionData:
		return "data"
	case RegionCounter:
		return "counter"
	case RegionMAC:
		return "mac"
	}
	return "tree"
}

// RegionOf classifies addr into data/counter/MAC/tree regions.
func (l *Layout) RegionOf(addr uint64) Region {
	switch {
	case addr < l.DataBytes:
		return RegionData
	case addr < l.MACBase:
		return RegionCounter
	case addr < l.TreeBase:
		return RegionMAC
	case addr < l.TotalBytes:
		return RegionTree
	}
	panic(fmt.Sprintf("geometry: address %#x outside layout", addr))
}

// --- Table II storage accounting ---

// Storage summarizes metadata storage for Table II.
type Storage struct {
	CounterBytes uint64
	MACBytes     uint64
	TreeBytes    uint64
	// TreeLevelsIncLeaves matches the paper's level count (interior
	// levels + the leaf level).
	TreeLevelsIncLeaves int
}

// TotalBytes is the full metadata footprint.
func (s Storage) TotalBytes() uint64 { return s.CounterBytes + s.MACBytes + s.TreeBytes }

// Storage returns the Table II numbers for this layout. For the
// paper's 4 GB region: counters 32 MB, MACs 256 MB, BMT 2.14 MB or MT
// 17.1 MB.
func (l *Layout) Storage() Storage {
	return Storage{
		CounterBytes:        l.NumCounterLines * LineSize,
		MACBytes:            l.NumMACLines * LineSize,
		TreeBytes:           l.TreeBytes(),
		TreeLevelsIncLeaves: l.TreeLevels() + 1,
	}
}
