package telemetry

import (
	"context"
	"strings"
	"testing"
)

func TestNewTraceID(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("len(%q) = %d, want 16", id, len(id))
		}
		if !ValidTraceID(id) {
			t.Fatalf("generated ID %q not valid", id)
		}
		if seen[id] {
			t.Fatalf("duplicate ID %q", id)
		}
		seen[id] = true
	}
}

func TestValidTraceID(t *testing.T) {
	valid := []string{"cafe1234", "CAFE1234deadbeef", strings.Repeat("a", 64),
		"550e8400-e29b-41d4-a716-446655440000"}
	for _, id := range valid {
		if !ValidTraceID(id) {
			t.Errorf("ValidTraceID(%q) = false, want true", id)
		}
	}
	invalid := []string{"", "short", strings.Repeat("a", 65),
		"cafe123z", "cafe 1234", "cafe\n1234", `cafe"1234`, "трасса12"}
	for _, id := range invalid {
		if ValidTraceID(id) {
			t.Errorf("ValidTraceID(%q) = true, want false", id)
		}
	}
}

func TestEnsureTraceID(t *testing.T) {
	if got := EnsureTraceID("cafe1234deadbeef"); got != "cafe1234deadbeef" {
		t.Fatalf("valid inbound ID replaced: %q", got)
	}
	got := EnsureTraceID("not a trace id\n")
	if !ValidTraceID(got) || strings.Contains(got, "\n") {
		t.Fatalf("invalid inbound ID not replaced: %q", got)
	}
}

func TestTraceIDContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := TraceID(ctx); got != "" {
		t.Fatalf("TraceID(empty ctx) = %q, want \"\"", got)
	}
	ctx = WithTraceID(ctx, "cafe1234deadbeef")
	if got := TraceID(ctx); got != "cafe1234deadbeef" {
		t.Fatalf("TraceID = %q", got)
	}
}
