package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a structured logger for the serving layer: format
// is "text" or "json", level one of debug|info|warn|error. The logger
// is wrapped so every record logged with a request context
// automatically carries that request's trace_id attribute — handlers
// never thread the ID by hand.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (text|json)", format)
	}
	return slog.New(&ContextHandler{h}), nil
}

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(level string) (slog.Level, error) {
	switch strings.ToLower(level) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("telemetry: unknown log level %q (debug|info|warn|error)", level)
}

// ContextHandler decorates a slog.Handler so records logged with a
// context that carries a trace ID (WithTraceID) gain a trace_id
// attribute. Wrapping survives With/WithGroup.
type ContextHandler struct {
	slog.Handler
}

// Handle appends the context's trace ID, when present, then delegates.
func (h *ContextHandler) Handle(ctx context.Context, rec slog.Record) error {
	if id := TraceID(ctx); id != "" {
		rec.AddAttrs(slog.String("trace_id", id))
	}
	return h.Handler.Handle(ctx, rec)
}

// WithAttrs preserves the wrapper around the derived handler.
func (h *ContextHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &ContextHandler{h.Handler.WithAttrs(attrs)}
}

// WithGroup preserves the wrapper around the derived handler.
func (h *ContextHandler) WithGroup(name string) slog.Handler {
	return &ContextHandler{h.Handler.WithGroup(name)}
}
