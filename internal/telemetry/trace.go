package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync/atomic"
	"time"
)

// TraceHeader is the HTTP header carrying a request's trace ID, on
// both requests (a client may supply its own) and every response.
const TraceHeader = "X-Secmem-Trace-Id"

// traceKey is the context key for the request trace ID.
type traceKey struct{}

// NewTraceID returns a fresh 16-hex-character request trace ID. IDs
// are generated at admission and threaded through the whole request
// path — daemon handler, cache tiers, runner, simulator context — so
// one ID correlates the response header, every log line, and any
// error body of a request.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand cannot realistically fail; degrade to a unique-
		// enough time+sequence ID rather than an empty one.
		binary.BigEndian.PutUint64(b[:], uint64(time.Now().UnixNano())^traceSeq.Add(1)<<40)
	}
	return hex.EncodeToString(b[:])
}

var traceSeq atomic.Uint64

// ValidTraceID accepts client-supplied trace IDs: 8 to 64 characters
// of lowercase/uppercase hex or dashes (covering our own IDs, UUIDs,
// and W3C-style hex IDs). Anything else is replaced rather than
// echoed, so a hostile header cannot inject log or exposition text.
func ValidTraceID(id string) bool {
	if len(id) < 8 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f', c >= 'A' && c <= 'F', c == '-':
		default:
			return false
		}
	}
	return true
}

// EnsureTraceID returns id when it is a valid inbound trace ID, and a
// freshly generated one otherwise.
func EnsureTraceID(id string) string {
	if ValidTraceID(id) {
		return id
	}
	return NewTraceID()
}

// WithTraceID returns a context carrying the trace ID.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceID extracts the context's trace ID ("" when none was set —
// e.g. a library call outside any request).
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}
