package telemetry

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): families in name order, series in
// sorted label order, histograms as cumulative le-bucketed series with
// _sum and _count. Log2 histograms expose exact integer boundaries —
// the cumulative count through bucket i holds every value v < 2^i, so
// its upper bound is le="2^i - 1" (le="0" for the zero bucket) and
// bucket counts are exact, not interpolated.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		f.writePrometheus(bw)
	}
	return bw.Flush()
}

// Handler serves WritePrometheus — mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

func (f *family) writePrometheus(w *bufio.Writer) {
	f.mu.Lock()
	defer f.mu.Unlock()

	w.WriteString("# HELP ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(escapeHelp(f.help))
	w.WriteString("\n# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(f.kind.String())
	w.WriteByte('\n')

	if isFunc(f.kind) {
		v := 0.0
		if f.fn != nil {
			v = f.fn()
		}
		w.WriteString(f.name)
		w.WriteByte(' ')
		w.WriteString(formatFloat(v))
		w.WriteByte('\n')
		return
	}

	keys := append([]string(nil), f.order...)
	sort.Strings(keys)
	for _, key := range keys {
		s := f.series[key]
		switch f.kind {
		case kindCounter:
			w.WriteString(f.name)
			writeLabels(w, f.labels, s.values)
			w.WriteByte(' ')
			w.WriteString(strconv.FormatUint(s.c.Load(), 10))
			w.WriteByte('\n')
		case kindGauge:
			w.WriteString(f.name)
			writeLabels(w, f.labels, s.values)
			w.WriteByte(' ')
			w.WriteString(formatFloat(math.Float64frombits(s.g.Load())))
			w.WriteByte('\n')
		case kindHistogram:
			s.hmu.Lock()
			h := s.h
			s.hmu.Unlock()
			// Cumulative buckets up to the highest populated one, then
			// +Inf. Upper bounds are exact for integer observations:
			// buckets 0..i together hold every v < 2^i.
			var cum uint64
			top := 0
			for i, c := range h.Buckets {
				if c > 0 {
					top = i
				}
			}
			for i := 0; i <= top; i++ {
				cum += h.Buckets[i]
				le := "0"
				if i > 0 {
					le = strconv.FormatUint(1<<uint(i)-1, 10)
				}
				writeBucket(w, f.name, f.labels, s.values, le, cum)
			}
			writeBucket(w, f.name, f.labels, s.values, "+Inf", h.Count)
			w.WriteString(f.name)
			w.WriteString("_sum")
			writeLabels(w, f.labels, s.values)
			w.WriteByte(' ')
			w.WriteString(strconv.FormatUint(h.Sum, 10))
			w.WriteByte('\n')
			w.WriteString(f.name)
			w.WriteString("_count")
			writeLabels(w, f.labels, s.values)
			w.WriteByte(' ')
			w.WriteString(strconv.FormatUint(h.Count, 10))
			w.WriteByte('\n')
		}
	}
}

func writeBucket(w *bufio.Writer, name string, labels, values []string, le string, count uint64) {
	w.WriteString(name)
	w.WriteString("_bucket{")
	for i, l := range labels {
		w.WriteString(l)
		w.WriteString(`="`)
		w.WriteString(escapeLabel(values[i]))
		w.WriteString(`",`)
	}
	w.WriteString(`le="`)
	w.WriteString(le)
	w.WriteString(`"} `)
	w.WriteString(strconv.FormatUint(count, 10))
	w.WriteByte('\n')
}

func writeLabels(w *bufio.Writer, labels, values []string) {
	if len(labels) == 0 {
		return
	}
	w.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(l)
		w.WriteString(`="`)
		w.WriteString(escapeLabel(values[i]))
		w.WriteByte('"')
	}
	w.WriteByte('}')
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline (quotes are
// legal there).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
