package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
	// Idempotent registration returns the same underlying series.
	if got := r.Counter("c_total", "help").Value(); got != 5 {
		t.Fatalf("re-registered counter Value = %d, want 5", got)
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "help")
	g.Set(2.5)
	g.Add(1.5)
	if got := g.Value(); got != 4 {
		t.Fatalf("Value = %v, want 4", got)
	}
	g.Add(-5)
	if got := g.Value(); got != -1 {
		t.Fatalf("Value = %v, want -1", got)
	}
}

func TestCounterVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "help", "route", "code")
	v.With("/api/run", "200").Add(3)
	v.With("/api/run", "500").Inc()
	if got := v.With("/api/run", "200").Value(); got != 3 {
		t.Fatalf("200 count = %d, want 3", got)
	}
	if got := v.With("/api/run", "500").Value(); got != 1 {
		t.Fatalf("500 count = %d, want 1", got)
	}
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_us", "help")
	for _, v := range []uint64{0, 1, 2, 3, 100} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if snap.Count != 5 {
		t.Fatalf("Count = %d, want 5", snap.Count)
	}
	if snap.Sum != 106 {
		t.Fatalf("Sum = %d, want 106", snap.Sum)
	}
	if snap.Max != 100 {
		t.Fatalf("Max = %d, want 100", snap.Max)
	}
	h.ObserveSince(time.Now())
	if got := h.Snapshot().Count; got != 6 {
		t.Fatalf("Count after ObserveSince = %d, want 6", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("x", "help")
}

func TestLabelArityMismatchPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("y", "help", "a", "b")
	t.Run("registration", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic on label-arity mismatch")
			}
		}()
		r.CounterVec("y", "help", "a")
	})
	t.Run("with", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic on With arity mismatch")
			}
		}()
		v.With("only-one")
	})
}

func TestFuncCollectorsReplaceOnReregister(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("f", "help", func() float64 { return 1 })
	r.GaugeFunc("f", "help", func() float64 { return 2 })
	snap := r.Snapshot()
	if got := snap["f"]; got != 2.0 {
		t.Fatalf("replaced GaugeFunc = %v, want 2", got)
	}
	r.CounterFunc("cf", "help", func() float64 { return 7 })
	r.CounterFunc("cf", "help", func() float64 { return 8 })
	if got := r.Snapshot()["cf"]; got != 8.0 {
		t.Fatalf("replaced CounterFunc = %v, want 8", got)
	}
}

func TestSeriesOverflowFoldsIntoOther(t *testing.T) {
	r := NewRegistry()
	r.SetMaxSeries(2)
	v := r.CounterVec("bounded_total", "help", "key")
	v.With("a").Inc()
	v.With("b").Inc()
	// At the cap: every further combination lands on the "_other"
	// series instead of growing the map.
	for i := 0; i < 100; i++ {
		v.With("c").Inc()
		v.With("d").Inc()
	}
	if got := v.With("_other").Value(); got != 200 {
		t.Fatalf("_other count = %d, want 200", got)
	}
	if got := v.With("a").Value(); got != 1 {
		t.Fatalf("a count = %d, want 1", got)
	}
}

func TestSnapshotShapes(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "help").Add(3)
	r.Gauge("g", "help").Set(1.5)
	r.CounterVec("v_total", "help", "tier").With("memory").Add(2)
	h := r.Histogram("h_us", "help")
	h.Observe(8)
	snap := r.Snapshot()
	if got := snap["c_total"]; got != uint64(3) {
		t.Fatalf("c_total = %v (%T), want uint64(3)", got, got)
	}
	if got := snap["g"]; got != 1.5 {
		t.Fatalf("g = %v, want 1.5", got)
	}
	m, ok := snap["v_total"].(map[string]any)
	if !ok || m["memory"] != uint64(2) {
		t.Fatalf("v_total = %v, want map with memory=2", snap["v_total"])
	}
	hm, ok := snap["h_us"].(map[string]any)
	if !ok || hm["count"] != uint64(1) || hm["sum"] != uint64(8) {
		t.Fatalf("h_us = %v, want histogram summary", snap["h_us"])
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	v := r.CounterVec("v_total", "help", "k")
	h := r.Histogram("h_us", "help")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				v.With("a").Inc()
				h.Observe(uint64(j))
			}
		}(i)
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := v.With("a").Value(); got != 8000 {
		t.Fatalf("vec counter = %d, want 8000", got)
	}
	if got := h.Snapshot().Count; got != 8000 {
		t.Fatalf("hist count = %d, want 8000", got)
	}
}
