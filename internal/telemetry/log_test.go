package telemetry

import (
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"":      slog.LevelInfo,
		"info":  slog.LevelInfo,
		"debug": slog.LevelDebug,
		"warn":  slog.LevelWarn,
		"WARN":  slog.LevelWarn,
		"error": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) = nil error")
	}
}

func TestNewLoggerFormats(t *testing.T) {
	var sb strings.Builder
	log, err := NewLogger(&sb, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hello", "k", "v")
	var rec map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &rec); err != nil {
		t.Fatalf("json log line not JSON: %v\n%s", err, sb.String())
	}
	if rec["msg"] != "hello" || rec["k"] != "v" {
		t.Fatalf("unexpected record: %v", rec)
	}

	sb.Reset()
	log, err = NewLogger(&sb, "text", "warn")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("dropped")
	if sb.Len() != 0 {
		t.Fatalf("info record leaked past warn level: %s", sb.String())
	}
	log.Warn("kept")
	if !strings.Contains(sb.String(), "msg=kept") {
		t.Fatalf("text record missing: %s", sb.String())
	}

	if _, err := NewLogger(&sb, "xml", "info"); err == nil {
		t.Fatal("NewLogger(xml) = nil error")
	}
	if _, err := NewLogger(&sb, "text", "loud"); err == nil {
		t.Fatal("NewLogger(bad level) = nil error")
	}
}

func TestContextHandlerInjectsTraceID(t *testing.T) {
	var sb strings.Builder
	log, err := NewLogger(&sb, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithTraceID(context.Background(), "cafe1234deadbeef")
	log.InfoContext(ctx, "traced")
	var rec map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["trace_id"] != "cafe1234deadbeef" {
		t.Fatalf("trace_id missing from record: %v", rec)
	}

	// No trace in the context: no attribute.
	sb.Reset()
	log.Info("untraced")
	if strings.Contains(sb.String(), "trace_id") {
		t.Fatalf("unexpected trace_id: %s", sb.String())
	}

	// The wrapper must survive With/WithGroup derivation.
	sb.Reset()
	log.With("a", 1).WithGroup("g").InfoContext(ctx, "derived", "b", 2)
	if !strings.Contains(sb.String(), "cafe1234deadbeef") {
		t.Fatalf("trace_id lost after With/WithGroup: %s", sb.String())
	}
}
