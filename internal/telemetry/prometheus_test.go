package telemetry

import (
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// parseExposition is a minimal exposition-format reader: it checks
// line-level validity (HELP/TYPE comments, `name{labels} value`
// samples) and returns the samples.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	typed := map[string]string{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			if parts[1] == "TYPE" {
				switch parts[3] {
				case "counter", "gauge", "histogram", "untyped":
				default:
					t.Fatalf("line %d: bad TYPE %q", ln+1, parts[3])
				}
				typed[parts[2]] = parts[3]
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, line)
		}
		key, valstr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valstr, 64)
		if err != nil && valstr != "+Inf" {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valstr, err)
		}
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("line %d: unterminated label set in %q", ln+1, line)
			}
		}
		if _, dup := samples[key]; dup {
			t.Fatalf("line %d: duplicate sample %q", ln+1, key)
		}
		samples[key] = val
	}
	if len(typed) == 0 {
		t.Fatal("no TYPE lines in exposition")
	}
	return samples
}

func scrape(t *testing.T, r *Registry) (string, map[string]float64) {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return sb.String(), parseExposition(t, sb.String())
}

func TestPrometheusScalars(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "a counter").Add(3)
	r.Gauge("g", "a gauge").Set(1.5)
	r.CounterVec("v_total", "labeled", "tier").With("memory").Add(2)
	r.GaugeFunc("fn", "func gauge", func() float64 { return 9 })
	text, samples := scrape(t, r)
	if samples["c_total"] != 3 {
		t.Fatalf("c_total = %v, want 3\n%s", samples["c_total"], text)
	}
	if samples["g"] != 1.5 {
		t.Fatalf("g = %v, want 1.5", samples["g"])
	}
	if samples[`v_total{tier="memory"}`] != 2 {
		t.Fatalf("labeled sample missing:\n%s", text)
	}
	if samples["fn"] != 9 {
		t.Fatalf("fn = %v, want 9", samples["fn"])
	}
	// Families are emitted in name order.
	idx := func(s string) int { return strings.Index(text, "# HELP "+s+" ") }
	order := []int{idx("c_total"), idx("fn"), idx("g"), idx("v_total")}
	if !sort.IntsAreSorted(order) || order[0] < 0 {
		t.Fatalf("families not in name order: %v\n%s", order, text)
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", `help with \ and newline`+"\n", "k").
		With("a\"b\\c\nd").Inc()
	text, _ := scrape(t, r)
	if !strings.Contains(text, `esc_total{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped:\n%s", text)
	}
	if !strings.Contains(text, `# HELP esc_total help with \\ and newline\n`) {
		t.Fatalf("help not escaped:\n%s", text)
	}
}

func TestPrometheusHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_us", "latency")
	// Values across several log2 buckets, including zeros.
	for _, v := range []uint64{0, 0, 1, 2, 3, 5, 100} {
		h.Observe(v)
	}
	text, samples := scrape(t, r)

	if samples[`lat_us_bucket{le="0"}`] != 2 {
		t.Fatalf("le=0 bucket = %v, want 2\n%s", samples[`lat_us_bucket{le="0"}`], text)
	}
	if samples[`lat_us_bucket{le="1"}`] != 3 { // 0,0,1
		t.Fatalf("le=1 bucket = %v, want 3", samples[`lat_us_bucket{le="1"}`])
	}
	if samples[`lat_us_bucket{le="3"}`] != 5 { // + 2,3
		t.Fatalf("le=3 bucket = %v, want 5", samples[`lat_us_bucket{le="3"}`])
	}
	if samples[`lat_us_bucket{le="+Inf"}`] != 7 {
		t.Fatalf("le=+Inf bucket = %v, want 7", samples[`lat_us_bucket{le="+Inf"}`])
	}
	if samples["lat_us_count"] != 7 || samples["lat_us_sum"] != 111 {
		t.Fatalf("count/sum = %v/%v, want 7/111", samples["lat_us_count"], samples["lat_us_sum"])
	}

	// Cumulative buckets must be monotonically non-decreasing in le
	// order, ending at +Inf == count.
	var les []float64
	byLe := map[float64]float64{}
	for key, v := range samples {
		if !strings.HasPrefix(key, `lat_us_bucket{le="`) {
			continue
		}
		lestr := strings.TrimSuffix(strings.TrimPrefix(key, `lat_us_bucket{le="`), `"}`)
		le := float64(1 << 62)
		if lestr != "+Inf" {
			var err error
			le, err = strconv.ParseFloat(lestr, 64)
			if err != nil {
				t.Fatalf("bad le %q", lestr)
			}
		}
		les = append(les, le)
		byLe[le] = v
	}
	sort.Float64s(les)
	prev := -1.0
	for _, le := range les {
		if byLe[le] < prev {
			t.Fatalf("bucket counts not monotone at le=%v: %v < %v\n%s", le, byLe[le], prev, text)
		}
		prev = byLe[le]
	}
	if prev != samples["lat_us_count"] {
		t.Fatalf("last bucket %v != count %v", prev, samples["lat_us_count"])
	}
}

func TestPrometheusBoundedCardinality(t *testing.T) {
	r := NewRegistry()
	r.SetMaxSeries(8)
	v := r.CounterVec("keys_total", "help", "key")
	// Many distinct label values — as if run keys leaked into labels.
	for i := 0; i < 10000; i++ {
		v.With("key-" + strconv.Itoa(i)).Inc()
	}
	text, samples := scrape(t, r)
	n := 0
	for key := range samples {
		if strings.HasPrefix(key, "keys_total{") {
			n++
		}
	}
	if n > 9 { // 8 distinct + the overflow series
		t.Fatalf("cardinality unbounded: %d series\n%s", n, text)
	}
	if samples[`keys_total{key="_other"}`] < 9000 {
		t.Fatalf("overflow series did not absorb the tail: %v", samples[`keys_total{key="_other"}`])
	}
}

func TestPrometheusHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "help").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "c_total 1") {
		t.Fatalf("body missing sample:\n%s", rec.Body.String())
	}
}

// TestConcurrentScrape races scrapes against updates and registration;
// run under -race this is the registry's central safety test.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	v := r.CounterVec("v_total", "help", "k")
	h := r.Histogram("h_us", "help")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; ; j++ {
				c.Inc()
				v.With("k" + strconv.Itoa(j%4)).Inc()
				h.Observe(uint64(j))
				r.GaugeFunc("fn", "help", func() float64 { return float64(n) })
				select {
				case <-stop:
					return
				default:
				}
			}
		}(i)
	}
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
		r.Snapshot()
	}
	close(stop)
	wg.Wait()
	_, samples := scrape(t, r)
	if samples["c_total"] == 0 {
		t.Fatal("no updates observed")
	}
}
