// Package telemetry is the serving-layer metrics registry: a
// dependency-free counter/gauge/histogram store with Prometheus
// text-format exposition (GET /metrics), request trace IDs threaded
// through context.Context, and structured-logging helpers on log/slog.
//
// It is the request/sweep/cache-domain sibling of internal/probe's
// cycle-domain instruments, under the same discipline: telemetry only
// *observes* the serving layer (daemon, runner, cache tiers) and is
// never consulted by the simulator, so simulation results are
// byte-identical whether or not anything scrapes /metrics — the golden
// digest suite enforces it. All serving-layer counters live in one
// Registry (normally Default) so the JSON /healthz view, the expvar
// view, and the /metrics exposition are views over the same
// instruments and can never drift apart.
//
// Cardinality contract: label values must come from small fixed sets
// (route buckets, cache tiers, status codes, outcomes) — never from
// run keys, benchmarks, or request parameters. As a backstop every
// family bounds its series count (MaxSeries); once full, new label
// combinations fold into a single overflow series whose label values
// are all "_other", so a cardinality bug degrades to a coarse counter
// instead of unbounded memory.
//
// Concurrency and aliasing contract: a Registry and every handle it
// returns (Counter, Gauge, Histogram and their Vec forms) are safe for
// concurrent use by any number of goroutines; scrapes may race freely
// with updates. Registration is idempotent — asking for an existing
// family by name returns the same family (a kind or label-arity
// mismatch panics, a programmer error) — and Func collectors replace
// their callback on re-registration, which is what lets a restarted
// server re-arm per-instance views without the expvar republish
// workaround.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gpusecmem/internal/probe"
)

// DefaultMaxSeries bounds the distinct label combinations of one
// family before new combinations fold into the "_other" overflow
// series.
const DefaultMaxSeries = 64

// Default is the process-wide registry, in the spirit of the expvar
// package: the daemon, the runner, and the cache tiers all register
// here, and both /metrics endpoints (secmemd and the runner's
// -debug-addr) expose it.
var Default = NewRegistry()

// kind discriminates metric families.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k kind) String() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry holds metric families. Create with NewRegistry, or use
// Default.
type Registry struct {
	mu sync.Mutex
	// MaxSeries bounds per-family label cardinality for families
	// created after it is set (0 means DefaultMaxSeries).
	maxSeries int
	families  map[string]*family
}

// NewRegistry builds an empty registry with the default series bound.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// SetMaxSeries overrides the per-family series bound for families
// created afterwards (tests use a tiny bound to exercise overflow).
func (r *Registry) SetMaxSeries(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.maxSeries = n
}

// family is one named metric with a fixed label schema.
type family struct {
	name   string
	help   string
	kind   kind
	labels []string

	mu       sync.Mutex
	series   map[string]*series // canonical label-value key -> series
	order    []string           // registration order (sorted at scrape)
	overflow *series            // all label values "_other"; lazily built
	max      int

	fn func() float64 // kindCounterFunc / kindGaugeFunc
}

// series is one label combination's live value. Exactly one of the
// value fields is used, per the family kind.
type series struct {
	values []string

	c atomic.Uint64 // counter
	g atomic.Uint64 // gauge, as math.Float64bits

	hmu sync.Mutex
	h   probe.Hist // histogram (log2 buckets, internal/probe's core)
}

// family returns (creating if needed) the named family, enforcing the
// idempotent-registration contract.
func (r *Registry) family(name, help string, k kind, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != k && !(isFunc(f.kind) && isFunc(k) && f.kind.String() == k.String()) {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)", name, k, f.kind))
		}
		if len(f.labels) != len(labels) {
			panic(fmt.Sprintf("telemetry: %s re-registered with %d labels (was %d)", name, len(labels), len(f.labels)))
		}
		return f
	}
	max := r.maxSeries
	if max <= 0 {
		max = DefaultMaxSeries
	}
	f := &family{name: name, help: help, kind: k, labels: labels, series: make(map[string]*series), max: max}
	r.families[name] = f
	return f
}

func isFunc(k kind) bool { return k == kindCounterFunc || k == kindGaugeFunc }

// with returns the series for one label-value combination, folding
// into the overflow series when the family is at its series bound.
func (f *family) with(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: %s needs %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	if len(f.series) >= f.max {
		if f.overflow == nil {
			vals := make([]string, len(f.labels))
			for i := range vals {
				vals[i] = "_other"
			}
			f.overflow = &series{values: vals}
			okey := seriesKey(vals)
			f.series[okey] = f.overflow
			f.order = append(f.order, okey)
		}
		return f.overflow
	}
	vals := append([]string(nil), values...)
	s := &series{values: vals}
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// seriesKey canonicalizes label values into a map key. \xff cannot
// appear in label values we emit (they are escaped at exposition, but
// the key only needs to be injective, and 0xff never appears in UTF-8
// text).
func seriesKey(values []string) string {
	if len(values) == 0 {
		return ""
	}
	n := 0
	for _, v := range values {
		n += len(v) + 1
	}
	b := make([]byte, 0, n)
	for _, v := range values {
		b = append(b, v...)
		b = append(b, 0xff)
	}
	return string(b)
}

// --- Counters ---

// Counter is a monotonically increasing uint64.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.s.c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.s.c.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.s.c.Load() }

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With returns the counter for one label-value combination.
func (v *CounterVec) With(values ...string) *Counter { return &Counter{v.f.with(values)} }

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return &Counter{r.family(name, help, kindCounter, nil).with(nil)}
}

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, kindCounter, labels)}
}

// --- Gauges ---

// Gauge is a float64 that can go up and down.
type Gauge struct{ s *series }

// Set stores v.
func (g *Gauge) Set(v float64) { g.s.g.Store(math.Float64bits(v)) }

// Add adds delta (atomically, CAS loop).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.s.g.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.s.g.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.s.g.Load()) }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the gauge for one label-value combination.
func (v *GaugeVec) With(values ...string) *Gauge { return &Gauge{v.f.with(values)} }

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return &Gauge{r.family(name, help, kindGauge, nil).with(nil)}
}

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, kindGauge, labels)}
}

// --- Func collectors ---

// CounterFunc registers a counter whose value is fn() at scrape time —
// the view mechanism for counters owned elsewhere (the resultcache and
// checkpoint stores' Stats). Re-registering replaces fn: the newest
// instance wins, which is what a restarted in-process server needs.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.family(name, help, kindCounterFunc, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// GaugeFunc registers a gauge whose value is fn() at scrape time.
// Re-registering replaces fn, like CounterFunc.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, kindGaugeFunc, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// --- Histograms ---

// Histogram is a log2-bucketed distribution (internal/probe's Hist
// core: bucket i counts values v with 2^(i-1) <= v < 2^i).
type Histogram struct{ s *series }

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.s.hmu.Lock()
	h.s.h.Observe(v)
	h.s.hmu.Unlock()
}

// ObserveSince records the microseconds elapsed since t0 — the
// convention for every latency histogram in the registry (the _us
// name suffix).
func (h *Histogram) ObserveSince(t0 time.Time) {
	us := time.Since(t0).Microseconds()
	if us < 0 {
		us = 0
	}
	h.Observe(uint64(us))
}

// Snapshot copies the histogram state (racing observers see a
// consistent copy).
func (h *Histogram) Snapshot() probe.Hist {
	h.s.hmu.Lock()
	defer h.s.hmu.Unlock()
	return h.s.h
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the histogram for one label-value combination.
func (v *HistogramVec) With(values ...string) *Histogram { return &Histogram{v.f.with(values)} }

// Histogram registers (or returns) an unlabeled histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	return &Histogram{r.family(name, help, kindHistogram, nil).with(nil)}
}

// HistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, labels ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, kindHistogram, labels)}
}

// --- Snapshots (the expvar / healthz view) ---

// Snapshot renders every family as plain JSON-ready values: scalars
// for unlabeled counters/gauges/funcs, a map keyed by joined label
// values for labeled families, and {count,sum,max,mean} objects for
// histograms. This is the single source the expvar view publishes.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make([]*family, 0, len(r.families))
	for n, f := range r.families {
		names = append(names, n)
		fams = append(fams, f)
	}
	r.mu.Unlock()

	out := make(map[string]any, len(names))
	for i, f := range fams {
		out[names[i]] = f.snapshotValue()
	}
	return out
}

func (f *family) snapshotValue() any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if isFunc(f.kind) {
		if f.fn == nil {
			return 0.0
		}
		return f.fn()
	}
	one := func(s *series) any {
		switch f.kind {
		case kindCounter:
			return s.c.Load()
		case kindGauge:
			return math.Float64frombits(s.g.Load())
		default: // histogram
			s.hmu.Lock()
			h := s.h
			s.hmu.Unlock()
			return map[string]any{"count": h.Count, "sum": h.Sum, "max": h.Max, "mean": h.Mean()}
		}
	}
	if len(f.labels) == 0 {
		if s, ok := f.series[""]; ok {
			return one(s)
		}
		return 0
	}
	m := make(map[string]any, len(f.series))
	for _, s := range f.series {
		m[joinValues(s.values)] = one(s)
	}
	return m
}

func joinValues(values []string) string {
	out := ""
	for i, v := range values {
		if i > 0 {
			out += ","
		}
		out += v
	}
	return out
}

// sortedFamilies returns the families in name order for deterministic
// exposition.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}
