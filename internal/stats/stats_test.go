package stats

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

func TestRatioAndPercent(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("Ratio(_, 0) != 0")
	}
	if Ratio(3, 4) != 0.75 {
		t.Error("Ratio(3,4)")
	}
	if Percent(1, 4) != 25 {
		t.Error("Percent(1,4)")
	}
}

func TestReuseColdOnly(t *testing.T) {
	p := NewReuseProfiler()
	for i := uint64(0); i < 10; i++ {
		if _, ok := p.Touch(i); ok {
			t.Fatalf("first touch of %d reported a distance", i)
		}
	}
	if p.Cold != 10 || p.Total != 10 {
		t.Fatalf("cold=%d total=%d", p.Cold, p.Total)
	}
}

func TestReuseDistanceZero(t *testing.T) {
	p := NewReuseProfiler()
	p.Touch(1)
	d, ok := p.Touch(1)
	if !ok || d != 0 {
		t.Fatalf("immediate re-touch: d=%d ok=%v", d, ok)
	}
	if p.Hist[0] != 1 {
		t.Fatalf("bucket 0 = %d", p.Hist[0])
	}
}

func TestReuseDistanceDistinct(t *testing.T) {
	p := NewReuseProfiler()
	// A, B, C, B, A: reuse(B)=1 (C), reuse(A)=2 (B, C).
	p.Touch('A')
	p.Touch('B')
	p.Touch('C')
	if d, _ := p.Touch('B'); d != 1 {
		t.Fatalf("reuse(B) = %d, want 1", d)
	}
	if d, _ := p.Touch('A'); d != 2 {
		t.Fatalf("reuse(A) = %d, want 2", d)
	}
}

// TestReuseCountsDistinctNotTotal: repeated touches of the same
// intervening line count once (stack distance, not time distance).
func TestReuseCountsDistinctNotTotal(t *testing.T) {
	p := NewReuseProfiler()
	p.Touch('A')
	for i := 0; i < 5; i++ {
		p.Touch('B')
	}
	if d, _ := p.Touch('A'); d != 1 {
		t.Fatalf("reuse(A) = %d, want 1 (B repeated)", d)
	}
}

func TestReuseStreamingPattern(t *testing.T) {
	// Streaming: 4 sequential touches per line, like sectored accesses
	// to the same metadata line — reuse distance 0 dominates.
	p := NewReuseProfiler()
	for line := uint64(0); line < 100; line++ {
		for s := 0; s < 4; s++ {
			p.Touch(line)
		}
	}
	if p.Hist[0] != 300 {
		t.Fatalf("bucket 0 = %d, want 300", p.Hist[0])
	}
	if p.Cold != 100 {
		t.Fatalf("cold = %d, want 100", p.Cold)
	}
}

func TestReuseBucketBoundaries(t *testing.T) {
	mk := func(distinct int) uint64 {
		p := NewReuseProfiler()
		p.Touch(^uint64(0))
		for i := 0; i < distinct; i++ {
			p.Touch(uint64(i))
		}
		d, ok := p.Touch(^uint64(0))
		if !ok {
			t.Fatal("not a reuse")
		}
		return d
	}
	if d := mk(8); d != 8 {
		t.Fatalf("d=%d", d)
	}
	cases := []struct {
		distinct int
		bucket   int
	}{
		{0, 0}, {1, 1}, {8, 1}, {9, 2}, {64, 2}, {65, 3}, {512, 3}, {513, 4},
	}
	for _, tc := range cases {
		p := NewReuseProfiler()
		p.Touch(^uint64(0))
		for i := 0; i < tc.distinct; i++ {
			p.Touch(uint64(i))
		}
		p.Touch(^uint64(0))
		if p.Hist[tc.bucket] != 1 {
			t.Errorf("distinct=%d: bucket %d not incremented (hist=%v)", tc.distinct, tc.bucket, p.Hist)
		}
	}
}

func TestReuseFractions(t *testing.T) {
	p := NewReuseProfiler()
	if f := p.Fractions(); f[0] != 0 {
		t.Fatal("empty profiler fractions should be zero")
	}
	p.Touch(1)
	p.Touch(1)
	p.Touch(1)
	f := p.Fractions()
	if f[0] != 1.0 {
		t.Fatalf("fractions[0] = %f", f[0])
	}
}

func TestReuseString(t *testing.T) {
	p := NewReuseProfiler()
	p.Touch(1)
	p.Touch(1)
	s := p.String()
	for _, want := range []string{"0:1", "cold:1", "total:2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

// TestReuseAgainstBruteForce cross-checks the Fenwick implementation
// against a naive O(n^2) stack-distance computation on a random trace.
func TestReuseAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	trace := make([]uint64, 600)
	for i := range trace {
		trace[i] = uint64(rng.Intn(40))
	}
	p := NewReuseProfiler()
	for i, line := range trace {
		got, ok := p.Touch(line)
		// Brute force: distinct lines since previous occurrence.
		last := -1
		for j := i - 1; j >= 0; j-- {
			if trace[j] == line {
				last = j
				break
			}
		}
		if last == -1 {
			if ok {
				t.Fatalf("pos %d: cold touch reported distance", i)
			}
			continue
		}
		distinct := map[uint64]bool{}
		for j := last + 1; j < i; j++ {
			distinct[trace[j]] = true
		}
		if !ok || got != uint64(len(distinct)) {
			t.Fatalf("pos %d line %d: got %d (ok=%v), want %d", i, line, got, ok, len(distinct))
		}
	}
}

func BenchmarkReuseProfiler(b *testing.B) {
	p := NewReuseProfiler()
	for i := 0; i < b.N; i++ {
		p.Touch(uint64(i % 4096))
	}
}

func TestPercentZeroDenominator(t *testing.T) {
	if Percent(5, 0) != 0 {
		t.Error("Percent(5, 0) != 0")
	}
	if Percent(0, 0) != 0 {
		t.Error("Percent(0, 0) != 0")
	}
}

// TestReuseGrowBoundaries: the Fenwick tree rebuild at each
// power-of-two boundary must preserve reported distances.
func TestReuseGrowBoundaries(t *testing.T) {
	p := NewReuseProfiler()
	p.Touch(0)
	p.Touch(1)
	// Alternating touches keep the true reuse distance at exactly 1
	// while time crosses every doubling boundary up to 128.
	for i := 0; i < 120; i++ {
		d, ok := p.Touch(uint64(i % 2))
		if !ok {
			t.Fatalf("touch %d reported cold", i)
		}
		if d != 1 {
			t.Fatalf("touch %d: distance %d, want 1 (tree size %d)", i, d, len(p.bit))
		}
	}
}

func TestReuseGrowSizing(t *testing.T) {
	p := NewReuseProfiler()
	p.grow(5) // empty tree doubles 2 -> 4 -> 8
	if len(p.bit) != 8 {
		t.Fatalf("grow(5) sized tree to %d, want 8", len(p.bit))
	}
	p.grow(7) // still fits: must not reallocate
	if len(p.bit) != 8 {
		t.Fatalf("grow(7) resized a fitting tree to %d", len(p.bit))
	}
	p.grow(8) // boundary: 8 <= 8 forces the next doubling
	if len(p.bit) != 16 {
		t.Fatalf("grow(8) sized tree to %d, want 16", len(p.bit))
	}
	if len(p.raw) < 16 {
		t.Fatalf("raw presence array not grown: %d", len(p.raw))
	}
}

func TestReuseProfilerMarshalJSON(t *testing.T) {
	p := NewReuseProfiler()
	for i := 0; i < 3; i++ {
		p.Touch(1) // one cold + two distance-0 reuses
	}
	p.Touch(2) // cold
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Buckets []struct {
			Label    string  `json:"label"`
			Count    uint64  `json:"count"`
			Fraction float64 `json:"fraction"`
		} `json:"buckets"`
		Cold  uint64 `json:"cold"`
		Total uint64 `json:"total"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Buckets) != len(ReuseBuckets) {
		t.Fatalf("%d buckets, want %d", len(out.Buckets), len(ReuseBuckets))
	}
	if out.Cold != 2 || out.Total != 4 {
		t.Fatalf("cold=%d total=%d, want 2/4", out.Cold, out.Total)
	}
	var n uint64
	var frac float64
	for _, bk := range out.Buckets {
		n += bk.Count
		frac += bk.Fraction
	}
	if n != out.Total-out.Cold {
		t.Fatalf("bucket counts sum to %d, want %d", n, out.Total-out.Cold)
	}
	if frac < 0.999 || frac > 1.001 {
		t.Fatalf("fractions sum to %g, want 1", frac)
	}
}
