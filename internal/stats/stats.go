// Package stats provides the measurement instruments of the
// simulator: plain counters, ratio helpers, and the reuse-distance
// profiler used for the paper's Figures 10 and 11.
//
// Concurrency and aliasing contract: counters and profilers are plain
// (non-atomic) single-owner state; each instance is embedded in one
// simulator component and updated only by that component's owning
// goroutine.
package stats

import (
	"encoding/json"
	"fmt"
)

// Ratio returns a/b as a float, 0 when b is 0.
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Percent returns 100*a/b, 0 when b is 0.
func Percent(a, b uint64) float64 { return 100 * Ratio(a, b) }

// ReuseBuckets are the reuse-distance histogram buckets used in
// Figures 10/11: distance 0 (same line re-touched with nothing else in
// between) and geometric ranges above.
var ReuseBuckets = []struct {
	Lo, Hi uint64
	Label  string
}{
	{0, 0, "0"},
	{1, 8, "[1,8]"},
	{9, 64, "[9,64]"},
	{65, 512, "[65,512]"},
	{513, 4096, "[513,4096]"},
	{4097, ^uint64(0), ">4096"},
}

// ReuseProfiler measures LRU stack distances of a line-address access
// stream: the reuse distance of an access is the number of *distinct*
// lines touched since the previous access to the same line (infinite
// -- counted as Cold -- for first touches).
//
// Implementation: classic Mattson stack-distance via a Fenwick tree
// over access timestamps, O(log n) per access.
type ReuseProfiler struct {
	lastAccess map[uint64]int // line -> timestamp of latest access
	bit        []int          // Fenwick tree over timestamps; 1 marks latest access of some line
	raw        []int8         // presence by timestamp, for rebuilds when the tree grows
	time       int
	// Hist counts accesses per ReuseBuckets index.
	Hist [6]uint64
	// Cold counts first-touch accesses (no reuse distance).
	Cold uint64
	// Total counts all accesses.
	Total uint64
}

// NewReuseProfiler creates an empty profiler.
func NewReuseProfiler() *ReuseProfiler {
	return &ReuseProfiler{lastAccess: make(map[uint64]int)}
}

func (p *ReuseProfiler) bitAdd(i, delta int) {
	p.raw[i] += int8(delta)
	for ; i < len(p.bit); i += i & (-i) {
		p.bit[i] += delta
	}
}

// grow doubles the tree until it can index t and rebuilds it from the
// raw presence array (amortized O(1) per access).
func (p *ReuseProfiler) grow(t int) {
	n := len(p.bit)
	if n == 0 {
		n = 2
	}
	for n <= t {
		n *= 2
	}
	if n == len(p.bit) {
		return
	}
	for len(p.raw) < n {
		p.raw = append(p.raw, 0)
	}
	p.bit = make([]int, n)
	for i := 1; i < n; i++ {
		if p.raw[i] != 0 {
			for j := i; j < n; j += j & (-j) {
				p.bit[j] += int(p.raw[i])
			}
		}
	}
}

func (p *ReuseProfiler) bitSum(i int) int {
	s := 0
	for ; i > 0; i -= i & (-i) {
		s += p.bit[i]
	}
	return s
}

// Touch records an access to line and returns its reuse distance
// (distinct-line stack distance), with ok=false for a cold first
// touch.
func (p *ReuseProfiler) Touch(line uint64) (dist uint64, ok bool) {
	p.Total++
	p.time++
	t := p.time
	p.grow(t)
	last, seen := p.lastAccess[line]
	if seen {
		// Distinct lines touched after `last`: ones in (last, t).
		d := uint64(p.bitSum(t-1) - p.bitSum(last))
		p.bitAdd(last, -1)
		dist = d
		for i, b := range ReuseBuckets {
			if d >= b.Lo && d <= b.Hi {
				p.Hist[i]++
				break
			}
		}
	} else {
		p.Cold++
	}
	p.bitAdd(t, 1)
	p.lastAccess[line] = t
	return dist, seen
}

// Fractions returns the histogram as fractions of non-cold accesses.
func (p *ReuseProfiler) Fractions() [6]float64 {
	var out [6]float64
	reuse := p.Total - p.Cold
	if reuse == 0 {
		return out
	}
	for i, v := range p.Hist {
		out[i] = float64(v) / float64(reuse)
	}
	return out
}

// reuseBucketJSON is one labelled histogram bucket in the wire form.
type reuseBucketJSON struct {
	Label    string  `json:"label"`
	Count    uint64  `json:"count"`
	Fraction float64 `json:"fraction"`
}

// MarshalJSON renders the profiler as the labelled histogram plus
// cold/total counts — the Figure 10/11 data in machine-readable form
// (fractions are of non-cold accesses, matching the figures).
func (p *ReuseProfiler) MarshalJSON() ([]byte, error) {
	frac := p.Fractions()
	buckets := make([]reuseBucketJSON, len(ReuseBuckets))
	for i, b := range ReuseBuckets {
		buckets[i] = reuseBucketJSON{Label: b.Label, Count: p.Hist[i], Fraction: frac[i]}
	}
	return json.Marshal(struct {
		Buckets []reuseBucketJSON `json:"buckets"`
		Cold    uint64            `json:"cold"`
		Total   uint64            `json:"total"`
	}{Buckets: buckets, Cold: p.Cold, Total: p.Total})
}

// String renders the histogram for reports.
func (p *ReuseProfiler) String() string {
	s := ""
	for i, b := range ReuseBuckets {
		s += fmt.Sprintf("%s:%d ", b.Label, p.Hist[i])
	}
	return s + fmt.Sprintf("cold:%d total:%d", p.Cold, p.Total)
}
