package cluster

import (
	"fmt"
	"testing"
)

func ringOf(t *testing.T, nodes ...string) *Ring {
	t.Helper()
	r, err := NewRing(nodes)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// syntheticKeys builds n keys shaped like real RunKeys: long JSON-ish
// prefixes differing in a few fields, so the balance test exercises
// the sha256 condensation rather than toy short strings.
func syntheticKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf(
			`{"NumSMs":80,"NumPartitions":32,"MaxCycles":%d,"Secure":{"Encryption":%d,"AESLatency":40}}|bench%d`,
			24000+i, i%3, i%7)
	}
	return keys
}

func TestOwnerOrderIndependent(t *testing.T) {
	a := ringOf(t, "http://n1:1", "http://n2:2", "http://n3:3")
	b := ringOf(t, "http://n3:3", "http://n1:1", "http://n2:2")
	c := ringOf(t, "http://n2:2", "http://n3:3", "http://n1:1")
	for _, key := range syntheticKeys(500) {
		oa, ob, oc := a.Owner(key), b.Owner(key), c.Owner(key)
		if oa != ob || oa != oc {
			t.Fatalf("owner differs across orderings for %q: %q %q %q", key, oa, ob, oc)
		}
	}
}

func TestRingDedupAndValidation(t *testing.T) {
	r := ringOf(t, "http://a", "http://b", "http://a")
	if r.Len() != 2 {
		t.Fatalf("dedup failed: %v", r.Nodes())
	}
	if _, err := NewRing(nil); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := NewRing([]string{"http://a", ""}); err == nil {
		t.Fatal("empty node name accepted")
	}
}

// TestPlacementBalance pins the balance bound the peer tier sizes
// itself on: over 10k synthetic keys the most loaded owner holds at
// most 1.3x the least loaded one's share.
func TestPlacementBalance(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("http://127.0.0.1:%d", 8000+i)
		}
		r := ringOf(t, nodes...)
		load := make(map[string]int, n)
		for _, key := range syntheticKeys(10000) {
			load[r.Owner(key)]++
		}
		if len(load) != n {
			t.Fatalf("n=%d: only %d nodes own keys: %v", n, len(load), load)
		}
		min, max := 1 << 30, 0
		for _, c := range load {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if ratio := float64(max) / float64(min); ratio > 1.3 {
			t.Fatalf("n=%d: owner load imbalance %.3f > 1.3 (%v)", n, ratio, load)
		}
	}
}

// TestMinimalMovement pins the rendezvous property the cluster's
// cache economics depend on: when a node joins, only the keys it now
// wins move (~1/(n+1) of them, and none move between survivors), and
// when a node leaves, only its keys are reassigned.
func TestMinimalMovement(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:2", "http://c:3"}
	joined := append(append([]string{}, nodes...), "http://d:4")
	before := ringOf(t, nodes...)
	after := ringOf(t, joined...)
	keys := syntheticKeys(10000)

	moved := 0
	for _, key := range keys {
		ob, oa := before.Owner(key), after.Owner(key)
		if ob != oa {
			moved++
			if oa != "http://d:4" {
				t.Fatalf("join moved %q between survivors: %q -> %q", key, ob, oa)
			}
		}
	}
	// Expect ~1/4 of keys to move to the new node; allow generous
	// slack either way but reject wholesale reshuffles.
	if frac := float64(moved) / float64(len(keys)); frac < 0.15 || frac > 0.35 {
		t.Fatalf("join moved %.3f of keys, want ~0.25", frac)
	}

	// Leave: remove b; every key b owned must land on a survivor, and
	// keys a or c owned must not move at all.
	left := ringOf(t, "http://a:1", "http://c:3")
	for _, key := range keys {
		ob, oa := before.Owner(key), left.Owner(key)
		if ob == "http://b:2" {
			continue // reassigned, necessarily
		}
		if ob != oa {
			t.Fatalf("leave moved %q between survivors: %q -> %q", key, ob, oa)
		}
	}
}

func BenchmarkOwner(b *testing.B) {
	r, _ := NewRing([]string{"http://a:1", "http://b:2", "http://c:3"})
	key := syntheticKeys(1)[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Owner(key)
	}
}
