// Package cluster turns a set of secmemd processes into one serving
// fleet: rendezvous-hash placement of canonical run keys over a
// static, flag-configured member set (Ring), health-checked
// membership, and the HTTP client half of the peer cache tier — raw
// result-envelope fetch/push against a peer daemon's /api/cache
// route, plus whole-request forwarding of /api/run to a key's owner
// so the owner's cross-request singleflight coalesces identical
// in-flight work cluster-wide (DESIGN.md §16).
//
// Failure model: everything fails open. A peer that cannot be reached
// is marked down immediately (passively, by the failing call) and
// re-probed periodically; while it is down the caller skips the peer
// tier and simulates locally, so a dead owner degrades the cluster to
// independent nodes rather than an outage. Results are immutable and
// content-addressed by the canonical RunKey, so there is no staleness
// to manage — any tier's hit is correct.
//
// Concurrency and aliasing contract: a Cluster is safe for concurrent
// use by any number of goroutines. The Ring and node list are
// immutable after New; per-peer health is an atomic flag; the HTTP
// client is the stdlib's (itself concurrency-safe). Byte slices
// returned by FetchRaw are fresh and owned by the caller; slices
// passed to PushRaw are only read during the call.
package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gpusecmem/internal/telemetry"
)

// HopHeader marks a request already forwarded once by a cluster
// member. A receiving daemon must answer such a request itself —
// never re-forward — so disagreeing member lists (a node restarted
// with different -peers) degrade to an extra hop, not a loop.
const HopHeader = "X-Secmem-Cluster-Hop"

// cachePath is the daemon route peers fetch/push raw result envelopes
// on; the canonical run key travels URL-encoded in the query string.
const cachePath = "/api/cache"

// Config configures a Cluster.
type Config struct {
	// Self is this node's own advertised base URL (scheme://host:port),
	// as it appears in the other members' peer lists.
	Self string
	// Peers lists the other members' base URLs.
	Peers []string
	// Timeout bounds one peer fetch/push/forward (default 5s).
	Timeout time.Duration
	// ProbeEvery is the health-probe interval (default 2s).
	ProbeEvery time.Duration
	// Client overrides the HTTP client (tests); nil builds one with
	// Timeout.
	Client *http.Client
}

// peerState is one remote member's health record.
type peerState struct {
	up atomic.Bool
}

// Cluster is the client half of the distributed serving tier: the
// placement ring over all members (self included), per-peer health,
// and the raw-envelope peer protocol.
type Cluster struct {
	self       string
	ring       *Ring
	client     *http.Client
	probeEvery time.Duration
	timeout    time.Duration         // per-call deadline (probes included)
	peers      map[string]*peerState // remote members only
}

// instruments are the cluster tier's registry handles; shared by every
// Cluster in the process (the label sets are per-peer and per-op, both
// small and bounded by the flag-configured member list).
var (
	met struct {
		up    *telemetry.GaugeVec     // peer
		reqs  *telemetry.CounterVec   // op, outcome
		dur   *telemetry.HistogramVec // op
		flaps *telemetry.CounterVec   // peer, to=up|down
	}
	metOnce sync.Once
)

func initInstruments() {
	metOnce.Do(func() {
		reg := telemetry.Default
		met.up = reg.GaugeVec("gpusecmem_peer_up", "1 when the peer answered its last health probe or call, else 0", "peer")
		met.reqs = reg.CounterVec("gpusecmem_peer_requests_total", "peer-protocol calls by operation and outcome", "op", "outcome")
		met.dur = reg.HistogramVec("gpusecmem_peer_request_duration_us", "peer-protocol call latency in microseconds by operation", "op")
		met.flaps = reg.CounterVec("gpusecmem_peer_transitions_total", "peer up/down health transitions", "peer", "to")
	})
}

// New builds a Cluster from a self URL and a peer list. The ring spans
// self plus every peer, so each member computes identical placement
// from its own flags. Call Start to begin health probing.
func New(cfg Config) (*Cluster, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: -self is required when -peers is set")
	}
	if _, err := url.Parse(cfg.Self); err != nil {
		return nil, fmt.Errorf("cluster: bad self URL %q: %w", cfg.Self, err)
	}
	ring, err := NewRing(append([]string{cfg.Self}, cfg.Peers...))
	if err != nil {
		return nil, err
	}
	if ring.Len() < 2 {
		return nil, fmt.Errorf("cluster: need at least one peer besides self")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = 2 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.Timeout}
	}
	initInstruments()
	c := &Cluster{
		self:       cfg.Self,
		ring:       ring,
		client:     client,
		probeEvery: cfg.ProbeEvery,
		timeout:    cfg.Timeout,
		peers:      make(map[string]*peerState),
	}
	for _, n := range ring.Nodes() {
		if n == cfg.Self {
			continue
		}
		ps := &peerState{}
		// Optimistic start: a cold cluster forwards immediately; the
		// first failing call or probe corrects the record.
		ps.up.Store(true)
		c.peers[n] = ps
		met.up.With(n).Set(1)
	}
	return c, nil
}

// Self returns this node's advertised URL.
func (c *Cluster) Self() string { return c.self }

// Nodes returns every member (self included) in canonical order.
func (c *Cluster) Nodes() []string { return c.ring.Nodes() }

// Owner places key and reports whether this node owns it.
func (c *Cluster) Owner(key string) (node string, self bool) {
	node = c.ring.Owner(key)
	return node, node == c.self
}

// Up reports whether node answered its last probe or peer call. Self
// is always up; unknown nodes never are.
func (c *Cluster) Up(node string) bool {
	if node == c.self {
		return true
	}
	ps, ok := c.peers[node]
	return ok && ps.up.Load()
}

// setUp records a health observation, counting transitions and
// keeping the per-peer gauge current.
func (c *Cluster) setUp(node string, up bool) {
	ps, ok := c.peers[node]
	if !ok {
		return
	}
	if ps.up.Swap(up) != up {
		if up {
			met.flaps.With(node, "up").Inc()
			met.up.With(node).Set(1)
		} else {
			met.flaps.With(node, "down").Inc()
			met.up.With(node).Set(0)
		}
	}
}

// Start launches the periodic health-probe loop; it stops when ctx is
// cancelled. Probing is advisory — peer calls already mark a failing
// peer down passively — but it is what brings a recovered peer back.
func (c *Cluster) Start(ctx context.Context) {
	go func() {
		t := time.NewTicker(c.probeEvery)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				c.ProbeAll(ctx)
			}
		}
	}()
}

// ProbeAll health-checks every peer once, concurrently, and returns
// when all probes resolve.
func (c *Cluster) ProbeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for node := range c.peers {
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			c.probe(ctx, node)
		}(node)
	}
	wg.Wait()
}

// probe GETs one peer's /healthz. The deadline is the configured
// per-call Timeout, NOT the probe interval: an aggressive -probe-every
// (say 100ms) must make probes more frequent, not less patient — a
// healthy peer whose /healthz takes longer than the interval would
// otherwise be flapped down on every tick.
func (c *Cluster) probe(ctx context.Context, node string) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	t0 := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/healthz", nil)
	if err != nil {
		c.setUp(node, false)
		return
	}
	resp, err := c.client.Do(req)
	met.dur.With("probe").ObserveSince(t0)
	if err != nil || resp.StatusCode != http.StatusOK {
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		met.reqs.With("probe", "error").Inc()
		c.setUp(node, false)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	met.reqs.With("probe", "ok").Inc()
	c.setUp(node, true)
}

// cacheURL builds the peer cache route for a key.
func cacheURL(node, key string) string {
	return node + cachePath + "?key=" + url.QueryEscape(key)
}

// FetchRaw asks node for the raw result envelope of key (the exact
// bytes its on-disk store holds; the caller decodes and validates).
// Any failure — transport error, non-200, empty body — reads as a
// miss, and transport errors additionally mark the peer down.
func (c *Cluster) FetchRaw(ctx context.Context, node, key string) ([]byte, bool) {
	t0 := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cacheURL(node, key), nil)
	if err != nil {
		met.reqs.With("fetch", "error").Inc()
		return nil, false
	}
	if id := telemetry.TraceID(ctx); id != "" {
		req.Header.Set(telemetry.TraceHeader, id)
	}
	resp, err := c.client.Do(req)
	met.dur.With("fetch").ObserveSince(t0)
	if err != nil {
		met.reqs.With("fetch", "error").Inc()
		c.setUp(node, false)
		return nil, false
	}
	defer resp.Body.Close()
	c.setUp(node, true)
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		met.reqs.With("fetch", "miss").Inc()
		return nil, false
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil || len(raw) == 0 {
		met.reqs.With("fetch", "error").Inc()
		return nil, false
	}
	met.reqs.With("fetch", "hit").Inc()
	return raw, true
}

// PushRaw write-through replicates a raw result envelope to node —
// the owner of key — so a result simulated off-owner (fail-open, or
// an experiment sub-run) still lands in the cluster-wide copy.
// Best-effort: errors are counted and reported, never fatal.
func (c *Cluster) PushRaw(ctx context.Context, node, key string, raw []byte) error {
	t0 := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, cacheURL(node, key), bytes.NewReader(raw))
	if err != nil {
		met.reqs.With("push", "error").Inc()
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if id := telemetry.TraceID(ctx); id != "" {
		req.Header.Set(telemetry.TraceHeader, id)
	}
	resp, err := c.client.Do(req)
	met.dur.With("push").ObserveSince(t0)
	if err != nil {
		met.reqs.With("push", "error").Inc()
		c.setUp(node, false)
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	c.setUp(node, true)
	if resp.StatusCode/100 != 2 {
		met.reqs.With("push", "error").Inc()
		return fmt.Errorf("cluster: push to %s: status %d", node, resp.StatusCode)
	}
	met.reqs.With("push", "ok").Inc()
	return nil
}

// Forward proxies an inbound HTTP request to node (the key's owner),
// stamped with the hop loop-guard, and returns the peer's response
// for the caller to stream back. A transport failure marks the peer
// down and returns the error so the caller can fail open to local
// work. The caller owns resp.Body.
func (c *Cluster) Forward(r *http.Request, node string) (*http.Response, error) {
	t0 := time.Now()
	req, err := http.NewRequestWithContext(r.Context(), r.Method, node+r.URL.RequestURI(), r.Body)
	if err != nil {
		met.reqs.With("forward", "error").Inc()
		return nil, err
	}
	req.ContentLength = r.ContentLength
	copyEndToEndHeaders(req.Header, r.Header)
	req.Header.Set(HopHeader, c.self)
	if id := telemetry.TraceID(r.Context()); id != "" {
		req.Header.Set(telemetry.TraceHeader, id)
	}
	resp, err := c.client.Do(req)
	met.dur.With("forward").ObserveSince(t0)
	if err != nil {
		met.reqs.With("forward", "error").Inc()
		c.setUp(node, false)
		return nil, err
	}
	c.setUp(node, true)
	met.reqs.With("forward", "ok").Inc()
	return resp, nil
}

// hopByHop lists the headers RFC 9110 §7.6.1 forbids a proxy from
// passing along; everything else on the inbound request is end-to-end
// and must survive the forward (Content-Type on a POST body,
// Accept/Accept-Encoding, auth headers a fronting proxy added).
var hopByHop = []string{
	"Connection",
	"Keep-Alive",
	"Proxy-Authenticate",
	"Proxy-Authorization",
	"Proxy-Connection",
	"Te",
	"Trailer",
	"Transfer-Encoding",
	"Upgrade",
}

// copyEndToEndHeaders copies src into dst minus the hop-by-hop set and
// anything the Connection header itself names.
func copyEndToEndHeaders(dst, src http.Header) {
	drop := make(map[string]bool, len(hopByHop))
	for _, h := range hopByHop {
		drop[h] = true
	}
	for _, v := range src.Values("Connection") {
		for _, name := range strings.Split(v, ",") {
			if name = strings.TrimSpace(name); name != "" {
				drop[http.CanonicalHeaderKey(name)] = true
			}
		}
	}
	for k, vs := range src {
		if drop[http.CanonicalHeaderKey(k)] {
			continue
		}
		dst[k] = append(dst[k], vs...)
	}
}

// Status is one member's row in the /api/cluster view.
type Status struct {
	Node string `json:"node"`
	Self bool   `json:"self"`
	Up   bool   `json:"up"`
}

// StatusAll reports every member's health in canonical order.
func (c *Cluster) StatusAll() []Status {
	out := make([]Status, 0, c.ring.Len())
	for _, n := range c.ring.Nodes() {
		out = append(out, Status{Node: n, Self: n == c.self, Up: c.Up(n)})
	}
	return out
}
