package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring places canonical run keys on a static node set by rendezvous
// (highest-random-weight) hashing: every node scores every key and the
// highest score owns it. Rendezvous hashing was chosen over a
// consistent-hash circle because the properties the cluster tier
// depends on fall out of the construction instead of needing virtual
// nodes and tuning:
//
//   - Order independence: the owner is an argmax over per-node scores,
//     so every node computes the same owner from any ordering of the
//     same member list (pinned by TestOwnerOrderIndependent).
//   - Balance: scores are splitmix64-mixed, so load divides near-
//     uniformly without virtual-node multiplication (pinned by
//     TestPlacementBalance: max/min owner load <= 1.3x over 10k keys).
//   - Minimal movement: removing a node reassigns only the keys it
//     owned, and adding one steals only the keys it now wins — no key
//     ever moves between two surviving nodes (pinned by
//     TestMinimalMovement).
//
// A Ring is immutable after New and therefore safe for concurrent use
// by any number of goroutines without synchronization.
type Ring struct {
	nodes  []string
	hashes []uint64 // fnv64a of each node, precomputed
}

// NewRing builds a ring over the given node URLs. Duplicates are
// collapsed and the stored order is canonical (sorted), so rings built
// from differently ordered flag values are identical. At least one
// node is required.
func NewRing(nodes []string) (*Ring, error) {
	seen := make(map[string]bool, len(nodes))
	uniq := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node name")
		}
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	sort.Strings(uniq)
	r := &Ring{nodes: uniq, hashes: make([]uint64, len(uniq))}
	for i, n := range uniq {
		h := fnv.New64a()
		h.Write([]byte(n))
		r.hashes[i] = h.Sum64()
	}
	return r, nil
}

// Nodes returns the member list in canonical (sorted) order. The
// slice is shared; callers must not mutate it.
func (r *Ring) Nodes() []string { return r.nodes }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// KeyPoint condenses a canonical run key to the 64-bit point the
// score mix uses: the first eight bytes of its sha256. Hashing the
// (possibly kilobyte-sized) key once and mixing per node keeps Owner
// O(nodes) cheap regardless of key size, and reuses the digest family
// the result cache already addresses entries with.
func KeyPoint(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// splitmix64 is the SplitMix64 finalizer: a full-avalanche bijection
// on uint64, the same mixer internal/faults uses for deterministic
// per-site hashing.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// score is the rendezvous weight of node i for a key point.
func (r *Ring) score(i int, point uint64) uint64 {
	return splitmix64(r.hashes[i] ^ point)
}

// Owner returns the node that owns key: the member with the highest
// rendezvous score (ties, should splitmix64 ever produce one, break
// to the lexicographically smaller node via the canonical order).
func (r *Ring) Owner(key string) string {
	return r.OwnerPoint(KeyPoint(key))
}

// OwnerPoint is Owner for a pre-condensed key point, for callers that
// cache KeyPoint across repeated placements of the same key.
func (r *Ring) OwnerPoint(point uint64) string {
	best, bestScore := 0, r.score(0, point)
	for i := 1; i < len(r.nodes); i++ {
		if s := r.score(i, point); s > bestScore {
			best, bestScore = i, s
		}
	}
	return r.nodes[best]
}
