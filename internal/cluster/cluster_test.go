package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func newCluster(t *testing.T, self string, peers ...string) *Cluster {
	t.Helper()
	c, err := New(Config{Self: self, Peers: peers, Timeout: 2 * time.Second, ProbeEvery: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Peers: []string{"http://a"}}); err == nil {
		t.Fatal("missing self accepted")
	}
	if _, err := New(Config{Self: "http://a"}); err == nil {
		t.Fatal("peerless cluster accepted")
	}
}

// TestHealthProbeMarksPeers drives the probe loop against a live and
// a dead peer: the live one stays up, the dead one goes down, and a
// recovered peer comes back.
func TestHealthProbeMarksPeers(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" || !healthy.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer peer.Close()

	c := newCluster(t, "http://self.invalid:1", peer.URL)
	ctx := context.Background()

	c.ProbeAll(ctx)
	if !c.Up(peer.URL) {
		t.Fatal("healthy peer marked down")
	}
	healthy.Store(false)
	c.ProbeAll(ctx)
	if c.Up(peer.URL) {
		t.Fatal("unhealthy peer still up")
	}
	healthy.Store(true)
	c.ProbeAll(ctx)
	if !c.Up(peer.URL) {
		t.Fatal("recovered peer not back up")
	}
	if !c.Up("http://self.invalid:1") {
		t.Fatal("self must always be up")
	}
	if c.Up("http://stranger.invalid:9") {
		t.Fatal("unknown node reported up")
	}
}

// TestFetchRawAndPassiveDown exercises the raw-envelope fetch path:
// hit, miss, and a dead peer marking itself down passively (no probe
// needed) so fail-open is immediate.
func TestFetchRawAndPassiveDown(t *testing.T) {
	payload := []byte("raw-envelope-bytes")
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/api/cache" && r.URL.Query().Get("key") == "have":
			w.Write(payload)
		case r.URL.Path == "/api/cache":
			http.NotFound(w, r)
		default:
			w.WriteHeader(http.StatusOK)
		}
	}))
	c := newCluster(t, "http://self.invalid:1", peer.URL)
	ctx := context.Background()

	raw, ok := c.FetchRaw(ctx, peer.URL, "have")
	if !ok || string(raw) != string(payload) {
		t.Fatalf("fetch hit = (%q, %v), want payload", raw, ok)
	}
	if _, ok := c.FetchRaw(ctx, peer.URL, "missing"); ok {
		t.Fatal("fetch of missing key reported a hit")
	}
	if !c.Up(peer.URL) {
		t.Fatal("a miss must not mark the peer down")
	}

	peer.Close()
	if _, ok := c.FetchRaw(ctx, peer.URL, "have"); ok {
		t.Fatal("fetch from dead peer reported a hit")
	}
	if c.Up(peer.URL) {
		t.Fatal("dead peer not marked down passively")
	}
}

func TestPushRaw(t *testing.T) {
	var gotKey atomic.Value
	var gotBody atomic.Value
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPut && r.URL.Path == "/api/cache" {
			b := make([]byte, r.ContentLength)
			r.Body.Read(b)
			gotKey.Store(r.URL.Query().Get("key"))
			gotBody.Store(string(b))
			w.WriteHeader(http.StatusNoContent)
			return
		}
		http.NotFound(w, r)
	}))
	defer peer.Close()
	c := newCluster(t, "http://self.invalid:1", peer.URL)

	// Keys are canonical RunKeys — JSON with spaces, braces, pipes —
	// and must survive URL transport verbatim.
	key := `{"NumSMs":80,"Secure":{"Unified":true}}|fdtd2d`
	if err := c.PushRaw(context.Background(), peer.URL, key, []byte("bytes")); err != nil {
		t.Fatal(err)
	}
	if gotKey.Load() != key {
		t.Fatalf("key mangled in transit: %q", gotKey.Load())
	}
	if gotBody.Load() != "bytes" {
		t.Fatalf("body mangled: %q", gotBody.Load())
	}
}

// TestForwardHopGuard checks the forwarded request carries the hop
// loop-guard header and the origin's URI verbatim.
func TestForwardHopGuard(t *testing.T) {
	var sawHop atomic.Value
	var sawURI atomic.Value
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sawHop.Store(r.Header.Get(HopHeader))
		sawURI.Store(r.URL.RequestURI())
		w.Write([]byte("owner-body"))
	}))
	defer owner.Close()
	c := newCluster(t, "http://self.invalid:1", owner.URL)

	in := httptest.NewRequest(http.MethodGet, "/api/run?bench=nw&cycles=2000", nil)
	resp, err := c.Forward(in, owner.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sawHop.Load() != "http://self.invalid:1" {
		t.Fatalf("hop header = %q, want self URL", sawHop.Load())
	}
	if sawURI.Load() != "/api/run?bench=nw&cycles=2000" {
		t.Fatalf("forwarded URI = %q", sawURI.Load())
	}

	owner.Close()
	if _, err := c.Forward(in, owner.URL); err == nil {
		t.Fatal("forward to dead owner did not error")
	}
	if c.Up(owner.URL) {
		t.Fatal("dead owner not marked down by failed forward")
	}
}

// TestProbeSlowHealthzNoFlap is the regression test for probe
// deadlines: probes are bounded by the configured per-call Timeout,
// not the probe interval. With an aggressive interval (20ms) and a
// /healthz slower than it (150ms) but well inside the 2s Timeout, a
// healthy peer must stay up; the old interval-derived deadline timed
// out every tick and flapped it down.
func TestProbeSlowHealthzNoFlap(t *testing.T) {
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(150 * time.Millisecond)
		w.WriteHeader(http.StatusOK)
	}))
	defer peer.Close()

	c, err := New(Config{
		Self:       "http://self.invalid:1",
		Peers:      []string{peer.URL},
		Timeout:    2 * time.Second,
		ProbeEvery: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		c.ProbeAll(context.Background())
		if !c.Up(peer.URL) {
			t.Fatalf("probe %d flapped a healthy-but-slow peer down", i)
		}
	}
}

// TestForwardPOSTRoundTrip pins the proxy contract for requests with
// bodies: the inbound body streams through to the owner, end-to-end
// headers (Content-Type, Accept, plus anything a fronting proxy
// added) survive, and hop-by-hop headers — both the fixed RFC set and
// whatever the Connection header names — are stripped.
func TestForwardPOSTRoundTrip(t *testing.T) {
	var gotBody, gotHeader atomic.Value
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b := make([]byte, 64)
		n, _ := r.Body.Read(b)
		gotBody.Store(string(b[:n]))
		gotHeader.Store(r.Header.Clone())
		w.WriteHeader(http.StatusOK)
	}))
	defer owner.Close()
	c := newCluster(t, "http://self.invalid:1", owner.URL)

	in := httptest.NewRequest(http.MethodPost, "/api/run?bench=nw", strings.NewReader(`{"p":1}`))
	in.Header.Set("Content-Type", "application/json")
	in.Header.Set("Accept", "text/csv")
	in.Header.Set("X-Forwarded-For", "10.0.0.9")
	in.Header.Set("Connection", "X-Per-Hop")
	in.Header.Set("X-Per-Hop", "drop-me")
	in.Header.Set("TE", "trailers")
	in.Header.Set("Upgrade", "h2c")

	resp, err := c.Forward(in, owner.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if gotBody.Load() != `{"p":1}` {
		t.Fatalf("forwarded body = %q, want the POST payload", gotBody.Load())
	}
	h := gotHeader.Load().(http.Header)
	for name, want := range map[string]string{
		"Content-Type":    "application/json",
		"Accept":          "text/csv",
		"X-Forwarded-For": "10.0.0.9",
		HopHeader:         "http://self.invalid:1",
	} {
		if got := h.Get(name); got != want {
			t.Errorf("end-to-end header %s = %q, want %q", name, got, want)
		}
	}
	for _, name := range []string{"X-Per-Hop", "TE", "Upgrade", "Connection"} {
		if got := h.Get(name); got != "" {
			t.Errorf("hop-by-hop header %s leaked through the forward: %q", name, got)
		}
	}
}

func TestStatusAll(t *testing.T) {
	c := newCluster(t, "http://b:2", "http://a:1", "http://c:3")
	st := c.StatusAll()
	if len(st) != 3 {
		t.Fatalf("got %d rows", len(st))
	}
	// Canonical (sorted) order, self flagged.
	if st[0].Node != "http://a:1" || st[1].Node != "http://b:2" || st[2].Node != "http://c:3" {
		t.Fatalf("order: %+v", st)
	}
	if !st[1].Self || st[0].Self || st[2].Self {
		t.Fatalf("self flags: %+v", st)
	}
}
