package smcore

import "testing"

// scriptGen replays a fixed per-warp script of ops.
type scriptGen struct {
	warps int
	sms   int
	ops   []WarpOp
}

func (g *scriptGen) Name() string    { return "script" }
func (g *scriptGen) WarpsPerSM() int { return g.warps }
func (g *scriptGen) ActiveSMs() int  { return g.sms }
func (g *scriptGen) Next(sm, warp, iter int) WarpOp {
	return g.ops[iter%len(g.ops)]
}

func drainTick(sm *SM, cycles int) {
	for c := uint64(1); c <= uint64(cycles); c++ {
		sm.Tick(c, func(MemIssue) int { return 0 })
	}
}

func TestComputeOnlyIPC(t *testing.T) {
	// 1 warp, spacing 1: one instruction per cycle per issue slot used.
	g := &scriptGen{warps: 1, ops: []WarpOp{{ComputeInstrs: 100, ComputeSpacing: 1, ActiveLanes: 32}}}
	sm := New(0, g, 2)
	drainTick(sm, 100)
	// A single warp with spacing 1 can issue once per cycle.
	want := uint64(100 * 32)
	if sm.Instructions != want {
		t.Fatalf("instructions = %d, want %d", sm.Instructions, want)
	}
}

func TestIssueWidthCapsThroughput(t *testing.T) {
	// Many warps, width 2: exactly 2 warp-instructions per cycle.
	g := &scriptGen{warps: 8, ops: []WarpOp{{ComputeInstrs: 1000, ComputeSpacing: 1, ActiveLanes: 32}}}
	sm := New(0, g, 2)
	drainTick(sm, 50)
	want := uint64(50 * 2 * 32)
	if sm.Instructions != want {
		t.Fatalf("instructions = %d, want %d", sm.Instructions, want)
	}
}

func TestSpacingThrottles(t *testing.T) {
	// 1 warp with spacing 4: one instruction every 4 cycles.
	g := &scriptGen{warps: 1, ops: []WarpOp{{ComputeInstrs: 1000, ComputeSpacing: 4, ActiveLanes: 32}}}
	sm := New(0, g, 2)
	drainTick(sm, 100)
	want := uint64(100 / 4 * 32)
	if sm.Instructions < want-32 || sm.Instructions > want+32 {
		t.Fatalf("instructions = %d, want ~%d", sm.Instructions, want)
	}
}

func TestActiveLanesScaleIPC(t *testing.T) {
	g := &scriptGen{warps: 1, ops: []WarpOp{{ComputeInstrs: 10, ComputeSpacing: 1, ActiveLanes: 8}}}
	sm := New(0, g, 2)
	drainTick(sm, 10)
	if sm.Instructions != 10*8 {
		t.Fatalf("instructions = %d, want %d", sm.Instructions, 10*8)
	}
}

func TestLoadBlocksWarp(t *testing.T) {
	g := &scriptGen{warps: 1, ops: []WarpOp{
		{ComputeInstrs: 1, ComputeSpacing: 1, Sectors: []uint64{0, 32}, ActiveLanes: 32},
	}}
	sm := New(0, g, 2)
	var issued []MemIssue
	issue := func(mi MemIssue) int {
		issued = append(issued, mi)
		return len(mi.Sectors)
	}
	sm.Tick(1, issue) // compute
	sm.Tick(2, issue) // mem -> blocked
	if len(issued) != 1 || len(issued[0].Sectors) != 2 {
		t.Fatalf("mem issue: %+v", issued)
	}
	if sm.BlockedWarps() != 1 {
		t.Fatal("warp should be blocked")
	}
	// No further issue while blocked.
	before := sm.Instructions
	sm.Tick(3, issue)
	if sm.Instructions != before {
		t.Fatal("blocked warp issued")
	}
	// One completion is not enough (two sectors outstanding).
	sm.Complete(0, 3)
	if sm.BlockedWarps() != 1 {
		t.Fatal("warp resumed too early")
	}
	sm.Complete(0, 4)
	if sm.BlockedWarps() != 0 {
		t.Fatal("warp did not resume")
	}
	sm.Tick(6, issue)
	if sm.Instructions == before {
		t.Fatal("resumed warp did not issue")
	}
}

func TestStoreDoesNotBlock(t *testing.T) {
	g := &scriptGen{warps: 1, ops: []WarpOp{
		{ComputeInstrs: 1, ComputeSpacing: 1, Sectors: []uint64{0}, Write: true, ActiveLanes: 32},
	}}
	sm := New(0, g, 2)
	issue := func(mi MemIssue) int {
		if !mi.Write {
			t.Fatal("expected store")
		}
		return 0
	}
	for c := uint64(1); c <= 10; c++ {
		sm.Tick(c, issue)
	}
	if sm.BlockedWarps() != 0 {
		t.Fatal("store blocked the warp")
	}
	if sm.MemOps < 4 {
		t.Fatalf("too few stores issued: %d", sm.MemOps)
	}
}

// TestLatencyTolerance is the paper's Section VI-A property: with
// enough warps, extra memory latency does not reduce throughput.
func TestLatencyTolerance(t *testing.T) {
	run := func(warps, compute int, latency uint64) uint64 {
		g := &scriptGen{warps: warps, ops: []WarpOp{
			{ComputeInstrs: compute, ComputeSpacing: 1, Sectors: []uint64{0}, ActiveLanes: 32},
		}}
		sm := New(0, g, 2)
		type pend struct {
			warp int
			at   uint64
		}
		var pending []pend
		for c := uint64(1); c <= 3000; c++ {
			var next []pend
			for _, p := range pending {
				if p.at <= c {
					sm.Complete(p.warp, c)
				} else {
					next = append(next, p)
				}
			}
			pending = next
			sm.Tick(c, func(mi MemIssue) int {
				pending = append(pending, pend{warp: mi.Warp, at: c + latency})
				return 1
			})
		}
		return sm.Instructions
	}
	// Few warps with little compute: quadrupling latency hurts.
	few40, few160 := run(2, 8, 40), run(2, 8, 160)
	if float64(few160) > 0.8*float64(few40) {
		t.Fatalf("2 warps should be latency-sensitive: %d vs %d", few40, few160)
	}
	// Many warps with enough work in flight: the same latency increase
	// is nearly free (warps x instructions per round must exceed the
	// issue rate x latency for full tolerance).
	many40, many160 := run(48, 30, 40), run(48, 30, 160)
	if float64(many160) < 0.85*float64(many40) {
		t.Fatalf("48 warps should tolerate latency: %d vs %d", many40, many160)
	}
}

func TestGreedyThenOldest(t *testing.T) {
	// Two warps; the scheduler should stick with one warp while it is
	// ready rather than alternating.
	g := &scriptGen{warps: 2, ops: []WarpOp{{ComputeInstrs: 4, ComputeSpacing: 2, ActiveLanes: 32}}}
	sm := New(0, g, 1)
	sm.Tick(1, func(MemIssue) int { return 0 })
	first := sm.greedy
	sm.Tick(2, func(MemIssue) int { return 0 }) // greedy not ready (spacing 2) -> other warp
	if sm.greedy == first {
		t.Fatal("scheduler did not fall back to the other warp")
	}
}

func TestCompletePanicsWhenNotBlocked(t *testing.T) {
	g := &scriptGen{warps: 1, ops: []WarpOp{{ComputeInstrs: 1, ComputeSpacing: 1, ActiveLanes: 32}}}
	sm := New(0, g, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	sm.Complete(0, 1)
}

func TestDegenerateOpDoesNotSpin(t *testing.T) {
	g := &scriptGen{warps: 1, ops: []WarpOp{{}}} // zero everything
	sm := New(0, g, 1)
	drainTick(sm, 100) // must not hang or panic
	if sm.Instructions == 0 {
		t.Fatal("degenerate ops issued nothing")
	}
}

func TestStallAccounting(t *testing.T) {
	g := &scriptGen{warps: 1, ops: []WarpOp{{ComputeInstrs: 1, ComputeSpacing: 10, ActiveLanes: 32}}}
	sm := New(0, g, 2)
	drainTick(sm, 100)
	if sm.Stalls == 0 {
		t.Fatal("expected stalled issue slots with a single slow warp")
	}
}
