// Package smcore models the streaming multiprocessors: warp state,
// greedy-then-oldest scheduling, and the latency tolerance that makes
// GPUs insensitive to decryption latency (the paper's Section VI-A
// observation). Instruction semantics are abstract — warps alternate
// compute batches and memory operations produced by a workload
// generator — because the paper's experiments exercise the memory
// system, not the ALUs.
//
// Concurrency and aliasing contract: an SM is single-owner state. The
// parallel partition engine keeps every SM on the coordinator
// goroutine (only partitions shard out), so SM code never observes
// concurrency at all.
package smcore

import "fmt"

// WarpOp is one generator-produced step of a warp: a batch of compute
// instructions followed by an optional memory operation.
type WarpOp struct {
	// ComputeInstrs is the number of compute instructions issued
	// back-to-back before the memory operation.
	ComputeInstrs int
	// ComputeSpacing is the issue-to-issue distance in cycles of those
	// compute instructions (dependency chains; 1 = fully independent).
	ComputeSpacing int
	// Sectors are the coalesced 32-byte sector addresses of the memory
	// operation (empty for a pure-compute step).
	Sectors []uint64
	// Write marks the memory operation as a store (non-blocking).
	Write bool
	// ActiveLanes is the SIMT occupancy of every instruction in this
	// step (1..32); it scales the thread-instruction count (IPC) the
	// way divergence does on real hardware.
	ActiveLanes int
}

// Generator produces the instruction stream of a workload. Next must
// be deterministic in (sm, warp, iter).
type Generator interface {
	// Name is the benchmark name.
	Name() string
	// WarpsPerSM is the resident warp count per SM.
	WarpsPerSM() int
	// ActiveSMs caps how many SMs run the kernel (small kernels like
	// nw cannot fill the machine); 0 means all.
	ActiveSMs() int
	// Next returns the iter-th step of the given warp.
	Next(sm, warp, iter int) WarpOp
}

// MemIssue is the memory operation an SM hands to the memory
// subsystem.
type MemIssue struct {
	SM      int
	Warp    int
	Sectors []uint64
	Write   bool
}

type warpPhase int

const (
	phaseCompute warpPhase = iota
	phaseMem
	phaseBlocked
)

type warpState struct {
	iter        int
	op          WarpOp
	phase       warpPhase
	computeLeft int
	readyAt     uint64
	outstanding int
	// lastIssued orders the greedy-then-oldest policy.
	lastIssued uint64
}

// SM is one streaming multiprocessor.
type SM struct {
	id         int
	gen        Generator
	issueWidth int
	warps      []warpState
	greedy     int // warp the scheduler is currently stuck to

	// Instructions counts issued thread-instructions (warp
	// instructions x active lanes); IPC is Instructions / cycles.
	Instructions uint64
	// Stalls counts cycles in which an issue slot found no ready warp.
	Stalls uint64
	// MemOps counts memory operations issued.
	MemOps uint64
}

// New builds an SM running gen with the given issue width.
func New(id int, gen Generator, issueWidth int) *SM {
	n := gen.WarpsPerSM()
	sm := &SM{id: id, gen: gen, issueWidth: issueWidth, warps: make([]warpState, n)}
	for w := range sm.warps {
		sm.loadOp(w)
	}
	return sm
}

func (s *SM) loadOp(w int) {
	ws := &s.warps[w]
	ws.op = s.gen.Next(s.id, w, ws.iter)
	ws.iter++
	if ws.op.ActiveLanes <= 0 || ws.op.ActiveLanes > 32 {
		ws.op.ActiveLanes = 32
	}
	if ws.op.ComputeSpacing <= 0 {
		ws.op.ComputeSpacing = 1
	}
	if ws.op.ComputeInstrs <= 0 && len(ws.op.Sectors) == 0 {
		ws.op.ComputeInstrs = 1 // degenerate op: behave as a no-op instruction
	}
	ws.computeLeft = ws.op.ComputeInstrs
	if ws.computeLeft > 0 {
		ws.phase = phaseCompute
	} else {
		ws.phase = phaseMem
	}
}

func (s *SM) ready(w int, now uint64) bool {
	ws := &s.warps[w]
	return ws.phase != phaseBlocked && ws.readyAt <= now
}

// Tick issues up to issueWidth instructions at cycle now. Memory
// operations are handed to issueMem; loads block the warp until
// Complete is called once per sector. issueMem returns how many
// completions the warp must wait for (0 for stores or fully
// short-circuited loads).
func (s *SM) Tick(now uint64, issueMem func(MemIssue) int) {
	for slot := 0; slot < s.issueWidth; slot++ {
		w := s.pick(now)
		if w < 0 {
			s.Stalls++
			continue
		}
		ws := &s.warps[w]
		ws.lastIssued = now
		switch ws.phase {
		case phaseCompute:
			s.Instructions += uint64(ws.op.ActiveLanes)
			ws.computeLeft--
			ws.readyAt = now + uint64(ws.op.ComputeSpacing)
			if ws.computeLeft == 0 {
				if len(ws.op.Sectors) > 0 {
					ws.phase = phaseMem
				} else {
					s.loadOp(w)
				}
			}
		case phaseMem:
			s.Instructions += uint64(ws.op.ActiveLanes)
			s.MemOps++
			n := issueMem(MemIssue{SM: s.id, Warp: w, Sectors: ws.op.Sectors, Write: ws.op.Write})
			if n > 0 {
				ws.phase = phaseBlocked
				ws.outstanding = n
			} else {
				ws.readyAt = now + 1
				s.loadOp(w)
			}
		}
	}
}

// NextReady returns the earliest cycle >= now at which some warp can
// issue, or ^uint64(0) when every warp is blocked on memory (the SM
// can then only be woken by a Complete). A Tick before the returned
// cycle would find no ready warp and only accrue full-stall cycles —
// which AccountIdle settles in bulk — so the cycle loop may skip the
// SM until then without changing any machine state.
func (s *SM) NextReady(now uint64) uint64 {
	next := ^uint64(0)
	for w := range s.warps {
		ws := &s.warps[w]
		if ws.phase == phaseBlocked {
			continue
		}
		t := ws.readyAt
		if t < now {
			t = now
		}
		if t < next {
			next = t
		}
	}
	return next
}

// AccountIdle books `cycles` skipped full-stall cycles: a Tick with no
// ready warp issues nothing, moves no scheduler state (pick leaves the
// greedy pointer alone when it finds nothing), and adds exactly one
// stall per issue slot — so skipping it and settling the stalls later
// is state-identical to having ticked.
func (s *SM) AccountIdle(cycles uint64) {
	s.Stalls += cycles * uint64(s.issueWidth)
}

// pick implements greedy-then-oldest: keep issuing from the current
// warp while it is ready; otherwise choose the ready warp that issued
// least recently.
func (s *SM) pick(now uint64) int {
	if s.greedy < len(s.warps) && s.ready(s.greedy, now) {
		return s.greedy
	}
	best := -1
	for w := range s.warps {
		if !s.ready(w, now) {
			continue
		}
		if best < 0 || s.warps[w].lastIssued < s.warps[best].lastIssued {
			best = w
		}
	}
	if best >= 0 {
		s.greedy = best
	}
	return best
}

// Complete notifies the SM that one outstanding sector of warp w
// returned. When the last one arrives the warp resumes.
func (s *SM) Complete(w int, now uint64) {
	ws := &s.warps[w]
	if ws.phase != phaseBlocked || ws.outstanding <= 0 {
		panic("smcore: completion for a warp that is not blocked")
	}
	ws.outstanding--
	if ws.outstanding == 0 {
		ws.readyAt = now + 1
		ws.phase = phaseCompute
		s.loadOp(w)
	}
}

// Counters returns the SM's cumulative issue counters plus its
// instantaneous blocked-warp count in one call — the probe timeline's
// per-SM sampling hook.
func (s *SM) Counters() (instructions, stalls, memOps uint64, blockedWarps int) {
	return s.Instructions, s.Stalls, s.MemOps, s.BlockedWarps()
}

// WarpState mirrors one warp's scheduler state in a checkpoint
// snapshot. Op is stored verbatim (post-normalization, Sectors
// deep-copied) so Restore must not re-run loadOp's normalization.
type WarpState struct {
	Iter        int
	Op          WarpOp
	Phase       int
	ComputeLeft int
	ReadyAt     uint64
	Outstanding int
	LastIssued  uint64
}

// State is a complete, detached snapshot of an SM.
type State struct {
	Warps        []WarpState
	Greedy       int
	Instructions uint64
	Stalls       uint64
	MemOps       uint64
}

// Snapshot captures the SM's full behavioral state. The result shares
// no memory with the SM (warp Sectors slices are deep-copied).
func (s *SM) Snapshot() *State {
	st := &State{
		Warps:        make([]WarpState, len(s.warps)),
		Greedy:       s.greedy,
		Instructions: s.Instructions,
		Stalls:       s.Stalls,
		MemOps:       s.MemOps,
	}
	for w := range s.warps {
		ws := &s.warps[w]
		op := ws.op
		op.Sectors = append([]uint64(nil), ws.op.Sectors...)
		st.Warps[w] = WarpState{
			Iter:        ws.iter,
			Op:          op,
			Phase:       int(ws.phase),
			ComputeLeft: ws.computeLeft,
			ReadyAt:     ws.readyAt,
			Outstanding: ws.outstanding,
			LastIssued:  ws.lastIssued,
		}
	}
	return st
}

// Restore replaces the SM's state with a snapshot taken from an SM of
// identical shape (same generator and warp count). The stored WarpOp
// is installed verbatim — it was already normalized by loadOp when the
// snapshot was taken.
func (s *SM) Restore(st *State) error {
	if len(st.Warps) != len(s.warps) {
		return fmt.Errorf("smcore: snapshot has %d warps, SM has %d", len(st.Warps), len(s.warps))
	}
	for w := range st.Warps {
		sw := &st.Warps[w]
		op := sw.Op
		op.Sectors = append([]uint64(nil), sw.Op.Sectors...)
		s.warps[w] = warpState{
			iter:        sw.Iter,
			op:          op,
			phase:       warpPhase(sw.Phase),
			computeLeft: sw.ComputeLeft,
			readyAt:     sw.ReadyAt,
			outstanding: sw.Outstanding,
			lastIssued:  sw.LastIssued,
		}
	}
	s.greedy = st.Greedy
	s.Instructions = st.Instructions
	s.Stalls = st.Stalls
	s.MemOps = st.MemOps
	return nil
}

// BlockedWarps reports how many warps are waiting on memory.
func (s *SM) BlockedWarps() int {
	n := 0
	for w := range s.warps {
		if s.warps[w].phase == phaseBlocked {
			n++
		}
	}
	return n
}

// OutstandingLoads sums the sector completions the SM's blocked warps
// still await — the SM side of the simulator's conservation audit
// (every issued load retires exactly once).
func (s *SM) OutstandingLoads() int {
	n := 0
	for w := range s.warps {
		if s.warps[w].phase == phaseBlocked {
			n += s.warps[w].outstanding
		}
	}
	return n
}
