package area

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestScaleQuadratic(t *testing.T) {
	approx(t, "half node", Scale(4.0, 28, 14), 1.0, 1e-9)
	approx(t, "identity", Scale(3.3, 12, 12), 3.3, 1e-9)
}

// TestTableVII pins the paper's scaled numbers: AES 0.0036 mm^2,
// 64KB cache 0.01769 mm^2, 96KB cache 0.01801 mm^2 at 12 nm.
func TestTableVII(t *testing.T) {
	m := NewModel()
	approx(t, "AES engine", m.AESEngineMM2, 0.0036, 0.0002)
	approx(t, "64KB cache", m.Cache64KBMM2, 0.01769, 0.0002)
	approx(t, "96KB cache", m.Cache96KBMM2, 0.01801, 0.0002)
}

// TestSectionVFBudget pins the L2-reduction arithmetic: 32 AES engines
// cost 614 KB of L2-equivalent area, metadata caches 283 KB, and the
// full 32-engine budget (AES + MAC + caches) about 1511-1526 KB
// (~25% of the 6 MB L2).
func TestSectionVFBudget(t *testing.T) {
	m := NewModel()
	aes32 := 32 * m.AESEngineMM2
	approx(t, "32 engines in L2-KB", m.L2EquivalentKB(aes32), 614, 10)
	caches := 3 * m.Cache64KBMM2
	approx(t, "meta caches in L2-KB", m.L2EquivalentKB(caches), 283, 10)

	b := m.SecureMemoryBudget(1, 32)
	if b.AESEngines != 32 || b.MACUnits != 32 {
		t.Fatalf("budget engines: %+v", b)
	}
	approx(t, "L2 reduction KB", b.L2ReducedKB, 1520, 25)
	approx(t, "L2 reduction pct", b.L2ReducedPct, 24.84, 0.8)
}

func TestBudgetScalesWithEngines(t *testing.T) {
	m := NewModel()
	b1 := m.SecureMemoryBudget(1, 32)
	b2 := m.SecureMemoryBudget(2, 32)
	if b2.AESAreaMM2 <= b1.AESAreaMM2 {
		t.Fatal("2 engines not larger than 1")
	}
	approx(t, "AES area doubles", b2.AESAreaMM2, 2*b1.AESAreaMM2, 1e-9)
	if b2.L2ReducedKB <= b1.L2ReducedKB {
		t.Fatal("L2 reduction should grow with engines")
	}
}

func TestPublishedTables(t *testing.T) {
	if len(PublishedAES()) != 3 {
		t.Fatal("Table VI should have 3 designs")
	}
	if len(CACTIAreas()) != 2 {
		t.Fatal("Table VII should have 2 cache points")
	}
	for _, d := range PublishedAES() {
		if d.AreaMM2 <= 0 || d.TechNm <= 0 {
			t.Fatalf("bad design %+v", d)
		}
	}
}
