// Package area reproduces the paper's die-area analysis (Section V-F,
// Tables VI and VII): published AES-engine areas, technology-node
// scaling to the GPU's 12 nm process, CACTI-derived cache areas, and
// the resulting L2-capacity reduction needed to fit the secure-memory
// hardware on the die.
package area

// AESDesign is one published AES implementation (Table VI).
type AESDesign struct {
	Source string
	TechNm float64
	// AreaMM2 is the die area in mm^2 at the design's own node.
	AreaMM2 float64
}

// PublishedAES returns the Table VI data points.
func PublishedAES() []AESDesign {
	return []AESDesign{
		{Source: "JSSC'11", TechNm: 45, AreaMM2: 0.15},
		{Source: "JSSC'19", TechNm: 130, AreaMM2: 13241e-6},
		{Source: "JSSC'20", TechNm: 14, AreaMM2: 4900e-6},
	}
}

// Scale shrinks an area from one technology node to another assuming
// ideal quadratic scaling with feature size — the same first-order
// model the paper applies.
func Scale(areaMM2, fromNm, toNm float64) float64 {
	r := toNm / fromNm
	return areaMM2 * r * r
}

// CacheArea is a CACTI v6.5 area estimate at 32 nm (the tool's node),
// as used in Table VII.
type CacheArea struct {
	SizeKB  int
	AreaMM2 float64 // at 32 nm
}

// CACTIAreas returns the paper's CACTI data points.
func CACTIAreas() []CacheArea {
	return []CacheArea{
		{SizeKB: 64, AreaMM2: 0.125821},
		{SizeKB: 96, AreaMM2: 0.128101},
	}
}

// Model holds the scaled Table VII quantities and the L2-reduction
// arithmetic.
type Model struct {
	TargetNm float64
	// AESEngineMM2 is one engine at the target node (paper: 0.0036).
	AESEngineMM2 float64
	// Cache64KBMM2 / Cache96KBMM2 at the target node (paper: 0.01769
	// and 0.01801).
	Cache64KBMM2 float64
	Cache96KBMM2 float64
}

// NewModel builds the model at the paper's 12 nm target node from the
// published data points.
func NewModel() Model {
	return Model{
		TargetNm:     12,
		AESEngineMM2: Scale(4900e-6, 14, 12),
		Cache64KBMM2: Scale(0.125821, 32, 12),
		Cache96KBMM2: Scale(0.128101, 32, 12),
	}
}

// L2EquivalentKB converts an area to the L2 capacity with the same
// footprint, via the 96 KB L2-bank data point.
func (m Model) L2EquivalentKB(areaMM2 float64) float64 {
	return areaMM2 / m.Cache96KBMM2 * 96
}

// Budget is the paper's bottom line: how much L2 must shrink to house
// the secure-memory hardware.
type Budget struct {
	AESEngines   int
	MACUnits     int
	MetaCaches   int // number of per-type caches (3), each 64 KB aggregate
	AESAreaMM2   float64
	MACAreaMM2   float64
	CachesMM2    float64
	TotalMM2     float64
	L2ReducedKB  float64
	L2TotalKB    float64
	L2ReducedPct float64
}

// SecureMemoryBudget computes the Table VII / Section V-F numbers for
// the given engine count per partition (the paper evaluates 32 and 64
// total, i.e. 1 or 2 per partition; MAC units are assumed
// area-equivalent to AES engines).
func (m Model) SecureMemoryBudget(enginesPerPartition, partitions int) Budget {
	b := Budget{
		AESEngines: enginesPerPartition * partitions,
		MACUnits:   enginesPerPartition * partitions,
		MetaCaches: 3,
	}
	b.AESAreaMM2 = float64(b.AESEngines) * m.AESEngineMM2
	b.MACAreaMM2 = float64(b.MACUnits) * m.AESEngineMM2
	// Each metadata cache type aggregates to 64 KB across partitions
	// (2 KB x 32), the granularity CACTI can model.
	b.CachesMM2 = float64(b.MetaCaches) * m.Cache64KBMM2
	b.TotalMM2 = b.AESAreaMM2 + b.MACAreaMM2 + b.CachesMM2
	b.L2ReducedKB = m.L2EquivalentKB(b.AESAreaMM2) + m.L2EquivalentKB(b.MACAreaMM2) + m.L2EquivalentKB(b.CachesMM2)
	b.L2TotalKB = 6 * 1024
	b.L2ReducedPct = 100 * b.L2ReducedKB / b.L2TotalKB
	return b
}
