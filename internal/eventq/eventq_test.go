package eventq

import (
	"container/heap"
	"math/rand"
	"testing"
)

// ev mirrors the simulator's event shapes: a time key plus a payload
// that distinguishes equal-time events.
type ev struct {
	at  uint64
	seq int
}

func (e ev) When() uint64 { return e.at }

// refHeap is the container/heap implementation the Queue replaces; the
// test asserts pop-order bit-compatibility against it, including ties.
type refHeap []ev

func (h refHeap) Len() int            { return len(h) }
func (h refHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(ev)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TestOrderMatchesContainerHeap drives both heaps with an identical
// interleaved push/pop sequence, heavy on duplicate keys, and requires
// every popped element (not just its key) to match. This is the
// property the simulator's byte-identity rests on.
func TestOrderMatchesContainerHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var q Queue[ev]
	var ref refHeap
	seq := 0
	for step := 0; step < 20000; step++ {
		if q.Len() == 0 || rng.Intn(3) != 0 {
			e := ev{at: uint64(rng.Intn(50)), seq: seq}
			seq++
			q.Push(e)
			heap.Push(&ref, e)
		} else {
			got := q.Pop()
			want := heap.Pop(&ref).(ev)
			if got != want {
				t.Fatalf("step %d: pop mismatch: got %+v want %+v", step, got, want)
			}
		}
	}
	for q.Len() > 0 {
		got := q.Pop()
		want := heap.Pop(&ref).(ev)
		if got != want {
			t.Fatalf("drain: pop mismatch: got %+v want %+v", got, want)
		}
	}
	if ref.Len() != 0 {
		t.Fatalf("reference heap not drained: %d left", ref.Len())
	}
}

func TestNextWhen(t *testing.T) {
	var q Queue[ev]
	if got := q.NextWhen(); got != ^uint64(0) {
		t.Fatalf("empty NextWhen = %d, want max", got)
	}
	q.Push(ev{at: 9})
	q.Push(ev{at: 4})
	q.Push(ev{at: 7})
	if got := q.NextWhen(); got != 4 {
		t.Fatalf("NextWhen = %d, want 4", got)
	}
	if got := q.Min(); got.at != 4 {
		t.Fatalf("Min = %+v, want at=4", got)
	}
}

// TestSteadyStateAllocs verifies the drain/refill pattern of the cycle
// loop reuses the backing array.
func TestSteadyStateAllocs(t *testing.T) {
	var q Queue[ev]
	for i := 0; i < 64; i++ {
		q.Push(ev{at: uint64(i)})
	}
	for q.Len() > 0 {
		q.Pop()
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			q.Push(ev{at: uint64(64 - i)})
		}
		for q.Len() > 0 {
			q.Pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state allocs = %v, want 0", allocs)
	}
}
