// Package eventq provides the simulator's time-ordered event queue: a
// min-heap keyed by an element's When() value.
//
// It exists to replace container/heap on the hot cycle path. The
// standard library's heap boxes every element into an interface{} on
// Push and Pop, which costs one allocation per event — one per memory
// reply and one per DRAM completion, millions per run. This queue
// stores elements in a typed slice and never boxes.
//
// The sift-up / sift-down algorithms are copied move-for-move from
// container/heap, and ordering uses the same strict less-than the old
// heap types used, so the pop order of equal-keyed elements — which
// feeds directly into simulation output — is bit-compatible with the
// code it replaces.
//
// Concurrency and aliasing contract: a Queue is single-owner state
// with no internal locking — all operations on one queue must come
// from one goroutine at a time, with any cross-goroutine handoff
// externally synchronized (the parallel partition engine confines
// each partition's queues to whichever shard owns that partition for
// the window, with the shard pool's fork/join barrier providing the
// handoff edges). Elements are stored by value in the queue's backing
// slice; pointers into that slice are invalidated by any Push or Pop.
package eventq

// Timed is an event with a ready time. Equal-time events pop in the
// heap's (deterministic) sift order, exactly as container/heap would.
type Timed interface {
	When() uint64
}

// Queue is a min-heap of E ordered by When(). The zero value is an
// empty queue ready to use. Queue retains its backing array across
// drain/refill cycles, so a steady-state Push/Pop mix allocates
// nothing.
type Queue[E Timed] struct {
	a []E
}

// Len reports the number of queued events.
func (q *Queue[E]) Len() int { return len(q.a) }

// Min returns the earliest event without removing it. It must not be
// called on an empty queue.
func (q *Queue[E]) Min() E { return q.a[0] }

// NextWhen returns the earliest event time, or ^uint64(0) when empty —
// the "nothing scheduled" sentinel the activity-driven loop skips past.
func (q *Queue[E]) NextWhen() uint64 {
	if len(q.a) == 0 {
		return ^uint64(0)
	}
	return q.a[0].When()
}

// Push adds an event.
func (q *Queue[E]) Push(e E) {
	q.a = append(q.a, e)
	q.up(len(q.a) - 1)
}

// Pop removes and returns the earliest event. It must not be called on
// an empty queue.
func (q *Queue[E]) Pop() E {
	n := len(q.a) - 1
	q.a[0], q.a[n] = q.a[n], q.a[0]
	q.down(0, n)
	e := q.a[n]
	var zero E
	q.a[n] = zero // release references held by pointer-bearing elements
	q.a = q.a[:n]
	return e
}

// Elems returns a copy of the queue's backing array in raw heap
// layout. It exists for checkpointing: the layout — not just the
// multiset of elements — determines the pop order of equal-keyed
// events, so serializing it verbatim and feeding it back through
// SetElems reproduces the exact event order a never-snapshotted queue
// would have produced. The copy shares nothing with the queue.
func (q *Queue[E]) Elems() []E {
	if len(q.a) == 0 {
		return nil
	}
	out := make([]E, len(q.a))
	copy(out, q.a)
	return out
}

// SetElems replaces the queue's contents with a copy of a, which must
// be an array previously captured by Elems (i.e. already in valid heap
// layout — SetElems does not re-heapify).
func (q *Queue[E]) SetElems(a []E) {
	q.a = q.a[:0]
	q.a = append(q.a, a...)
}

func (q *Queue[E]) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || q.a[i].When() <= q.a[j].When() {
			break
		}
		q.a[i], q.a[j] = q.a[j], q.a[i]
		j = i
	}
}

func (q *Queue[E]) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && q.a[j2].When() < q.a[j1].When() {
			j = j2
		}
		if q.a[j].When() >= q.a[i].When() {
			break
		}
		q.a[i], q.a[j] = q.a[j], q.a[i]
		i = j
	}
}
