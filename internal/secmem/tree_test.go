package secmem

import (
	"testing"
	"testing/quick"

	"gpusecmem/internal/crypto"
	"gpusecmem/internal/geometry"
	"gpusecmem/internal/mem"
)

func newTestTree(t *testing.T, dataBytes uint64) (*integrityTree, [][]byte) {
	t.Helper()
	lay, err := geometry.NewLayout(dataBytes, geometry.BMT)
	if err != nil {
		t.Fatal(err)
	}
	backing := mem.NewSparse((lay.TotalBytes + mem.PageSize) / mem.PageSize * mem.PageSize)
	tr := &integrityTree{lay: lay, hash: crypto.MustCMAC(make([]byte, 16)), backing: backing}
	leaves := make([][]byte, lay.NumLeaves())
	for i := range leaves {
		leaves[i] = make([]byte, geometry.LineSize)
		for j := range leaves[i] {
			leaves[i][j] = byte(i + j)
		}
	}
	tr.init(func(leaf uint64) []byte { return leaves[leaf] })
	return tr, leaves
}

func TestTreeInitVerifiesAllLeaves(t *testing.T) {
	tr, leaves := newTestTree(t, 1<<20) // 64 leaves
	for i, content := range leaves {
		if err := tr.verifyLeaf(uint64(i), content, uint64(i)); err != nil {
			t.Fatalf("leaf %d does not verify after init: %v", i, err)
		}
	}
}

func TestTreeDetectsWrongLeafContent(t *testing.T) {
	tr, leaves := newTestTree(t, 1<<20)
	bad := append([]byte(nil), leaves[5]...)
	bad[0] ^= 1
	err := tr.verifyLeaf(5, bad, 0x500)
	if err == nil {
		t.Fatal("corrupted leaf verified")
	}
	ie, ok := err.(*IntegrityError)
	if !ok || ie.Kind != "tree" {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestTreeDetectsLeafSwap: two leaves with swapped contents fail even
// though each content is individually valid somewhere — the position
// binding property.
func TestTreeDetectsLeafSwap(t *testing.T) {
	tr, leaves := newTestTree(t, 1<<20)
	if err := tr.verifyLeaf(3, leaves[4], 0); err == nil {
		t.Fatal("leaf 4's content verified at position 3")
	}
}

func TestTreeUpdatePropagatesToRoot(t *testing.T) {
	tr, leaves := newTestTree(t, 1<<20)
	oldRoot := tr.root
	leaves[7][10] ^= 0xff
	tr.updateLeaf(7, leaves[7])
	if tr.root == oldRoot {
		t.Fatal("root register unchanged after leaf update")
	}
	if err := tr.verifyLeaf(7, leaves[7], 0); err != nil {
		t.Fatalf("updated leaf does not verify: %v", err)
	}
	// Unrelated leaves still verify (update did not corrupt siblings).
	for _, i := range []uint64{0, 6, 8, 63} {
		if err := tr.verifyLeaf(i, leaves[i], 0); err != nil {
			t.Fatalf("leaf %d broken by update of leaf 7: %v", i, err)
		}
	}
}

func TestTreeDetectsInteriorTamper(t *testing.T) {
	tr, leaves := newTestTree(t, 16<<20) // 1024 leaves, 3 interior levels
	// Corrupt a middle-level node.
	addr := tr.lay.TreeNodeAddr(1, 2)
	raw := tr.backing.Snapshot(addr, 1)
	tr.backing.Write(addr, []byte{raw[0] ^ 0x55})
	// Some leaf under that node must fail; leaf index covered by node
	// (1,2): subtree spans leaves [2*16*16, 3*16*16).
	leaf := uint64(2 * 256)
	if err := tr.verifyLeaf(leaf, leaves[leaf], 0); err == nil {
		t.Fatal("interior tamper undetected")
	}
	// A leaf in a different subtree still verifies.
	if err := tr.verifyLeaf(0, leaves[0], 0); err != nil {
		t.Fatalf("unrelated subtree broken: %v", err)
	}
}

func TestTreeDetectsRootRegisterMismatch(t *testing.T) {
	tr, leaves := newTestTree(t, 1<<20)
	tr.root ^= 1
	err := tr.verifyLeaf(0, leaves[0], 0)
	ie, ok := err.(*IntegrityError)
	if !ok || ie.Kind != "root" {
		t.Fatalf("want root mismatch, got %v", err)
	}
}

// TestTreeRandomUpdatesStayConsistent: a random sequence of updates
// keeps every leaf verifiable (quick-check over update schedules).
func TestTreeRandomUpdatesStayConsistent(t *testing.T) {
	f := func(schedule []uint16) bool {
		lay, _ := geometry.NewLayout(1<<20, geometry.BMT)
		backing := mem.NewSparse((lay.TotalBytes + mem.PageSize) / mem.PageSize * mem.PageSize)
		tr := &integrityTree{lay: lay, hash: crypto.MustCMAC(make([]byte, 16)), backing: backing}
		leaves := make([][]byte, lay.NumLeaves())
		for i := range leaves {
			leaves[i] = make([]byte, geometry.LineSize)
		}
		tr.init(func(leaf uint64) []byte { return leaves[leaf] })
		for step, s := range schedule {
			leaf := uint64(s) % lay.NumLeaves()
			leaves[leaf][step%geometry.LineSize]++
			tr.updateLeaf(leaf, leaves[leaf])
		}
		for i := range leaves {
			if tr.verifyLeaf(uint64(i), leaves[i], 0) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestEnginePropertyRoundTrip: quick-check both engines over random
// (address, data) write/read sequences.
func TestEnginePropertyRoundTrip(t *testing.T) {
	type op struct {
		Line uint16
		Data [16]byte
	}
	mkCheck := func(build func() Engine) func(ops []op) bool {
		return func(ops []op) bool {
			e := build()
			shadow := map[uint64][]byte{}
			for _, o := range ops {
				addr := uint64(o.Line) % (testRegion / geometry.LineSize) * geometry.LineSize
				line := make([]byte, geometry.LineSize)
				for i := range line {
					line[i] = o.Data[i%16]
				}
				if e.WriteLine(addr, line) != nil {
					return false
				}
				shadow[addr] = line
			}
			for addr, want := range shadow {
				got := make([]byte, geometry.LineSize)
				if e.ReadLine(addr, got) != nil {
					return false
				}
				for i := range want {
					if got[i] != want[i] {
						return false
					}
				}
			}
			return true
		}
	}
	cfgs := &quick.Config{MaxCount: 15}
	if err := quick.Check(mkCheck(func() Engine { return MustCounterMode(testRegion, testKeys(), FullProtection) }), cfgs); err != nil {
		t.Fatalf("counter mode: %v", err)
	}
	if err := quick.Check(mkCheck(func() Engine { return MustDirect(testRegion, testKeys(), FullProtection) }), cfgs); err != nil {
		t.Fatalf("direct: %v", err)
	}
}

// TestEnginePropertyTamperAlwaysDetected: flipping any single random
// bit of a written line's ciphertext is always detected under full
// protection.
func TestEnginePropertyTamperAlwaysDetected(t *testing.T) {
	f := func(lineSel uint16, byteSel uint16, bit uint8, seed byte) bool {
		e := MustCounterMode(testRegion, testKeys(), FullProtection)
		addr := uint64(lineSel) % (testRegion / geometry.LineSize) * geometry.LineSize
		line := make([]byte, geometry.LineSize)
		fillPattern(line, seed)
		if e.WriteLine(addr, line) != nil {
			return false
		}
		off := uint64(byteSel) % geometry.LineSize
		raw := e.Backing().Snapshot(addr+off, 1)
		e.Backing().Write(addr+off, []byte{raw[0] ^ (1 << (bit % 8))})
		return e.ReadLine(addr, make([]byte, geometry.LineSize)) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTreeUpdateLeaf(b *testing.B) {
	lay, _ := geometry.NewLayout(16<<20, geometry.BMT)
	backing := mem.NewSparse((lay.TotalBytes + mem.PageSize) / mem.PageSize * mem.PageSize)
	tr := &integrityTree{lay: lay, hash: crypto.MustCMAC(make([]byte, 16)), backing: backing}
	zero := make([]byte, geometry.LineSize)
	tr.init(func(uint64) []byte { return zero })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.updateLeaf(uint64(i)%lay.NumLeaves(), zero)
	}
}

func BenchmarkTreeVerifyLeaf(b *testing.B) {
	lay, _ := geometry.NewLayout(16<<20, geometry.BMT)
	backing := mem.NewSparse((lay.TotalBytes + mem.PageSize) / mem.PageSize * mem.PageSize)
	tr := &integrityTree{lay: lay, hash: crypto.MustCMAC(make([]byte, 16)), backing: backing}
	zero := make([]byte, geometry.LineSize)
	tr.init(func(uint64) []byte { return zero })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.verifyLeaf(uint64(i)%lay.NumLeaves(), zero, 0); err != nil {
			b.Fatal(err)
		}
	}
}
