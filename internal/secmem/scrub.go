package secmem

import "gpusecmem/internal/geometry"

// This file implements offline integrity scrubbing: a full sweep of
// the protected region that verifies every written line against its
// MACs and the integrity tree without returning data. Real secure
// processors run equivalent scrubs after suspend/resume or before
// attestation; the library exposes it so users can bound the staleness
// of "speculative" verification.

// ScrubReport summarizes a VerifyAll sweep.
type ScrubReport struct {
	// LinesChecked counts data lines that were verified.
	LinesChecked uint64
	// LinesSkipped counts lines never written through the engine
	// (they carry no MACs to check).
	LinesSkipped uint64
	// Violations lists every integrity failure found, in address
	// order.
	Violations []*IntegrityError
}

// OK reports whether the sweep found no violations.
func (r *ScrubReport) OK() bool { return len(r.Violations) == 0 }

// VerifyAll scans the whole protected region of a counter-mode engine:
// each touched line's counter is authenticated through the BMT and its
// sector MACs are recomputed from the stored ciphertext. The engine
// state is not modified.
func (e *CounterMode) VerifyAll() *ScrubReport {
	rep := &ScrubReport{}
	buf := make([]byte, geometry.LineSize)
	for addr := uint64(0); addr < e.lay.DataBytes; addr += geometry.LineSize {
		if !e.touched[addr/geometry.LineSize] {
			rep.LinesSkipped++
			continue
		}
		rep.LinesChecked++
		line := e.lay.CounterLine(addr)
		slot := e.lay.CounterSlot(addr)
		cl, err := e.verifyCounterLine(line, addr)
		if err != nil {
			if ie, ok := err.(*IntegrityError); ok {
				rep.Violations = append(rep.Violations, ie)
				continue
			}
		}
		if err := e.decryptLine(addr, &cl, slot, buf); err != nil {
			if ie, ok := err.(*IntegrityError); ok {
				rep.Violations = append(rep.Violations, ie)
			}
		}
	}
	return rep
}

// VerifyAll scans the whole protected region of a direct-encryption
// engine: each touched line's MAC line is authenticated through the MT
// and its sector MACs are recomputed from the stored ciphertext.
func (e *Direct) VerifyAll() *ScrubReport {
	rep := &ScrubReport{}
	var leaf [geometry.LineSize]byte
	for addr := uint64(0); addr < e.lay.DataBytes; addr += geometry.LineSize {
		if !e.touched[addr/geometry.LineSize] {
			rep.LinesSkipped++
			continue
		}
		rep.LinesChecked++
		if e.prot.Tree {
			line := e.lay.MACLine(addr)
			e.macLineImage(line, leaf[:])
			if err := e.tree.verifyLeaf(line, leaf[:], addr); err != nil {
				if ie, ok := err.(*IntegrityError); ok {
					rep.Violations = append(rep.Violations, ie)
					continue
				}
			}
		}
		if e.prot.MAC {
			var ct [geometry.LineSize]byte
			e.backing.Read(addr, ct[:])
			for s := 0; s < geometry.SectorsPerLine; s++ {
				sa := addr + uint64(s)*geometry.SectorSize
				sector := ct[s*geometry.SectorSize : (s+1)*geometry.SectorSize]
				want := e.backing.ReadUint16(e.lay.MACSectorAddr(sa))
				if got := e.mac.AddressMAC(sector, sa); got != want {
					rep.Violations = append(rep.Violations, &IntegrityError{
						Kind: "mac", Addr: sa, Detail: "sector MAC mismatch (scrub)",
					})
				}
			}
		}
	}
	return rep
}
