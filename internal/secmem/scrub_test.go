package secmem

import (
	"testing"

	"gpusecmem/internal/geometry"
)

func TestScrubCleanCounterMode(t *testing.T) {
	e := MustCounterMode(testRegion, testKeys(), FullProtection)
	for i := uint64(0); i < 20; i++ {
		line := make([]byte, geometry.LineSize)
		fillPattern(line, byte(i))
		if err := e.WriteLine(i*geometry.LineSize, line); err != nil {
			t.Fatal(err)
		}
	}
	rep := e.VerifyAll()
	if !rep.OK() {
		t.Fatalf("clean memory failed scrub: %v", rep.Violations[0])
	}
	if rep.LinesChecked != 20 {
		t.Fatalf("checked %d lines, want 20", rep.LinesChecked)
	}
	if rep.LinesSkipped != testRegion/geometry.LineSize-20 {
		t.Fatalf("skipped %d", rep.LinesSkipped)
	}
}

func TestScrubFindsSilentTamperCounterMode(t *testing.T) {
	e := MustCounterMode(testRegion, testKeys(), FullProtection)
	for i := uint64(0); i < 10; i++ {
		if err := e.WriteLine(i*geometry.LineSize, make([]byte, geometry.LineSize)); err != nil {
			t.Fatal(err)
		}
	}
	// Tamper two lines that are never read again — a scrub must still
	// find them.
	for _, a := range []uint64{2 * geometry.LineSize, 7 * geometry.LineSize} {
		raw := e.Backing().Snapshot(a, 1)
		e.Backing().Write(a, []byte{raw[0] ^ 0x01})
	}
	rep := e.VerifyAll()
	if len(rep.Violations) != 2 {
		t.Fatalf("violations = %d, want 2", len(rep.Violations))
	}
	if rep.Violations[0].Addr > rep.Violations[1].Addr {
		t.Fatal("violations not in address order")
	}
}

func TestScrubFindsCounterReplay(t *testing.T) {
	e := MustCounterMode(testRegion, testKeys(), FullProtection)
	if err := e.WriteLine(0x400, make([]byte, geometry.LineSize)); err != nil {
		t.Fatal(err)
	}
	lay := e.Layout()
	ctrAddr := lay.CounterLineAddr(lay.CounterLine(0x400))
	old := e.Backing().Snapshot(ctrAddr, geometry.LineSize)
	if err := e.WriteLine(0x400, make([]byte, geometry.LineSize)); err != nil {
		t.Fatal(err)
	}
	e.Backing().Write(ctrAddr, old)
	rep := e.VerifyAll()
	if rep.OK() {
		t.Fatal("scrub missed a counter replay")
	}
	if rep.Violations[0].Kind != "tree" {
		t.Fatalf("kind = %s", rep.Violations[0].Kind)
	}
}

func TestScrubCleanDirect(t *testing.T) {
	e := MustDirect(testRegion, testKeys(), FullProtection)
	for i := uint64(0); i < 20; i++ {
		line := make([]byte, geometry.LineSize)
		fillPattern(line, byte(i))
		if err := e.WriteLine(i*geometry.LineSize, line); err != nil {
			t.Fatal(err)
		}
	}
	rep := e.VerifyAll()
	if !rep.OK() || rep.LinesChecked != 20 {
		t.Fatalf("scrub: ok=%v checked=%d", rep.OK(), rep.LinesChecked)
	}
}

func TestScrubFindsTamperDirect(t *testing.T) {
	e := MustDirect(testRegion, testKeys(), FullProtection)
	if err := e.WriteLine(0x800, make([]byte, geometry.LineSize)); err != nil {
		t.Fatal(err)
	}
	raw := e.Backing().Snapshot(0x800+32, 1)
	e.Backing().Write(0x800+32, []byte{raw[0] ^ 0xff})
	rep := e.VerifyAll()
	if rep.OK() {
		t.Fatal("scrub missed a direct-mode tamper")
	}
}

// TestScrubDoesNotPerturbState: VerifyAll is read-only — a scrub
// between writes and reads changes nothing.
func TestScrubDoesNotPerturbState(t *testing.T) {
	e := MustCounterMode(testRegion, testKeys(), FullProtection)
	line := make([]byte, geometry.LineSize)
	fillPattern(line, 0x5a)
	if err := e.WriteLine(0, line); err != nil {
		t.Fatal(err)
	}
	before := e.Backing().Snapshot(0, geometry.LineSize)
	e.VerifyAll()
	after := e.Backing().Snapshot(0, geometry.LineSize)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("scrub modified ciphertext")
		}
	}
	got := make([]byte, geometry.LineSize)
	if err := e.ReadLine(0, got); err != nil {
		t.Fatal(err)
	}
}

// TestSHA256TreeHashEngines: both engines work end to end with the
// keyed-SHA256 hash-tree option, including tamper and replay
// detection.
func TestSHA256TreeHashEngines(t *testing.T) {
	prot := Protection{MAC: true, Tree: true, TreeHash: TreeHashSHA256}
	for name, e := range map[string]Engine{
		"counter-mode": MustCounterMode(testRegion, testKeys(), prot),
		"direct":       MustDirect(testRegion, testKeys(), prot),
	} {
		line := make([]byte, geometry.LineSize)
		fillPattern(line, 0x3a)
		if err := e.WriteLine(0x400, line); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := make([]byte, geometry.LineSize)
		if err := e.ReadLine(0x400, got); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Replay the metadata region covering the line.
		lay := e.Layout()
		var metaAddr uint64
		if lay.NumCounterLines > 0 {
			metaAddr = lay.CounterLineAddr(lay.CounterLine(0x400))
		} else {
			metaAddr = lay.MACLineAddr(lay.MACLine(0x400))
		}
		old := e.Backing().Snapshot(metaAddr, geometry.LineSize)
		oldData := e.Backing().Snapshot(0x400, geometry.LineSize)
		var oldMACs []byte
		macLine := lay.MACLineAddr(lay.MACLine(0x400))
		oldMACs = e.Backing().Snapshot(macLine, geometry.LineSize)
		if err := e.WriteLine(0x400, make([]byte, geometry.LineSize)); err != nil {
			t.Fatal(err)
		}
		e.Backing().Write(metaAddr, old)
		e.Backing().Write(0x400, oldData)
		e.Backing().Write(macLine, oldMACs)
		if err := e.ReadLine(0x400, got); err == nil {
			t.Fatalf("%s: replay undetected under SHA-256 tree", name)
		}
	}
}

// TestTreeHashKindsIncompatible: trees built under different hash
// kinds produce different roots (no silent downgrade).
func TestTreeHashKindsIncompatible(t *testing.T) {
	cm := MustCounterMode(testRegion, testKeys(), Protection{MAC: true, Tree: true, TreeHash: TreeHashCMAC})
	sh := MustCounterMode(testRegion, testKeys(), Protection{MAC: true, Tree: true, TreeHash: TreeHashSHA256})
	if cm.tree.root == sh.tree.root {
		t.Fatal("CMAC and SHA-256 trees share a root")
	}
}
