package secmem

import (
	"encoding/binary"
	"fmt"

	"gpusecmem/internal/crypto"
	"gpusecmem/internal/geometry"
	"gpusecmem/internal/mem"
)

// integrityTree maintains a 16-ary hash tree over metadata leaves
// (counter lines for the BMT, MAC lines for the MT). Interior nodes
// are stored in the untrusted backing memory; only the 64-bit hash of
// the root node lives in a trusted on-chip register. Every leaf
// verification therefore walks the full chain to the register, and
// every leaf update rewrites the chain — the functional equivalent of
// the paper's tree traversal (caching of that traversal is a timing
// concern modelled in internal/sim).
type integrityTree struct {
	lay     *geometry.Layout
	hash    crypto.NodeHasher
	backing *mem.Sparse
	// root is the trusted on-chip register: the hash of the level-0
	// node.
	root uint64
}

// leafFlat gives leaves their own index space, disjoint from stored
// node flat indices, for position-binding hashes.
func (t *integrityTree) leafFlat(leaf uint64) uint64 {
	return t.lay.TreeNodes() + leaf
}

func (t *integrityTree) leafHash(leaf uint64, content []byte) uint64 {
	return t.hash.NodeHash(content, t.leafFlat(leaf))
}

func (t *integrityTree) nodeHash(level int, idx uint64, content []byte) uint64 {
	return t.hash.NodeHash(content, t.lay.NodeFlatIndex(level, idx))
}

func (t *integrityTree) readNode(level int, idx uint64, dst []byte) {
	t.backing.Read(t.lay.TreeNodeAddr(level, idx), dst[:geometry.LineSize])
}

func (t *integrityTree) writeNode(level int, idx uint64, src []byte) {
	t.backing.Write(t.lay.TreeNodeAddr(level, idx), src[:geometry.LineSize])
}

// init builds the whole tree from leaf content and sets the root
// register. leafContent must return the 128-byte image of leaf i.
func (t *integrityTree) init(leafContent func(leaf uint64) []byte) {
	// Fill the lowest interior level from leaf hashes.
	lowest := t.lay.TreeLevels() - 1
	var node [geometry.LineSize]byte
	numLeaves := t.lay.NumLeaves()
	for n := uint64(0); n < t.lay.LevelNodes[lowest]; n++ {
		for i := range node {
			node[i] = 0
		}
		for s := 0; s < geometry.TreeArity; s++ {
			leaf := n*geometry.TreeArity + uint64(s)
			if leaf >= numLeaves {
				break
			}
			h := t.leafHash(leaf, leafContent(leaf))
			binary.BigEndian.PutUint64(node[s*geometry.HashBytes:], h)
		}
		t.writeNode(lowest, n, node[:])
	}
	// Fill each level above from the hashes of the level below.
	for level := lowest - 1; level >= 0; level-- {
		var child [geometry.LineSize]byte
		for n := uint64(0); n < t.lay.LevelNodes[level]; n++ {
			for i := range node {
				node[i] = 0
			}
			for s := 0; s < geometry.TreeArity; s++ {
				ci := n*geometry.TreeArity + uint64(s)
				if ci >= t.lay.LevelNodes[level+1] {
					break
				}
				t.readNode(level+1, ci, child[:])
				h := t.nodeHash(level+1, ci, child[:])
				binary.BigEndian.PutUint64(node[s*geometry.HashBytes:], h)
			}
			t.writeNode(level, n, node[:])
		}
	}
	var rootNode [geometry.LineSize]byte
	t.readNode(0, 0, rootNode[:])
	t.root = t.nodeHash(0, 0, rootNode[:])
}

// updateLeaf recomputes the hash chain from leaf to the root register
// after the leaf content changed.
func (t *integrityTree) updateLeaf(leaf uint64, content []byte) {
	h := t.leafHash(leaf, content)
	level, idx, slot := t.lay.LeafParent(leaf)
	var node [geometry.LineSize]byte
	for {
		t.readNode(level, idx, node[:])
		binary.BigEndian.PutUint64(node[slot*geometry.HashBytes:], h)
		t.writeNode(level, idx, node[:])
		h = t.nodeHash(level, idx, node[:])
		plevel, pidx, pslot, ok := t.lay.Parent(level, idx)
		if !ok {
			t.root = h
			return
		}
		level, idx, slot = plevel, pidx, pslot
	}
}

// verifyLeaf walks the chain from leaf content to the root register
// and reports the first mismatch. dataAddr is only for error
// reporting.
func (t *integrityTree) verifyLeaf(leaf uint64, content []byte, dataAddr uint64) error {
	h := t.leafHash(leaf, content)
	level, idx, slot := t.lay.LeafParent(leaf)
	var node [geometry.LineSize]byte
	for {
		t.readNode(level, idx, node[:])
		stored := binary.BigEndian.Uint64(node[slot*geometry.HashBytes:])
		if stored != h {
			return &IntegrityError{
				Kind: "tree", Addr: dataAddr,
				Detail: fmt.Sprintf("%s level %d node %d slot %d: stored hash %#x != computed %#x",
					t.lay.Kind, level, idx, slot, stored, h),
			}
		}
		h = t.nodeHash(level, idx, node[:])
		plevel, pidx, pslot, ok := t.lay.Parent(level, idx)
		if !ok {
			if h != t.root {
				return &IntegrityError{
					Kind: "root", Addr: dataAddr,
					Detail: fmt.Sprintf("%s root register %#x != computed %#x", t.lay.Kind, t.root, h),
				}
			}
			return nil
		}
		level, idx, slot = plevel, pidx, pslot
	}
}
