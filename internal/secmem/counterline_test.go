package secmem

import (
	"testing"
	"testing/quick"

	"gpusecmem/internal/geometry"
)

func TestCounterLineRoundTrip(t *testing.T) {
	f := func(major uint64, seed uint8) bool {
		var cl CounterLine
		cl.Major = major
		for i := range cl.Minors {
			cl.Minors[i] = uint8(int(seed)+i*3) % 128
		}
		var buf [geometry.LineSize]byte
		EncodeCounterLine(&cl, buf[:])
		got := DecodeCounterLine(buf[:])
		if got.Major != cl.Major {
			return false
		}
		return got.Minors == cl.Minors
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestCounterLinePackingExact: 16B major + 128x7bit = exactly 128B, so
// the top minor must land in the last byte and nothing overflows.
func TestCounterLinePackingExact(t *testing.T) {
	var cl CounterLine
	cl.Minors[127] = 127
	var buf [geometry.LineSize]byte
	EncodeCounterLine(&cl, buf[:])
	// Minor 127 occupies bits [889, 896) of the minors area, i.e. the
	// final byte of the line.
	if buf[geometry.LineSize-1] == 0 {
		t.Fatal("top minor counter did not reach the last byte")
	}
	got := DecodeCounterLine(buf[:])
	if got.Minors[127] != 127 {
		t.Fatalf("minor 127 = %d", got.Minors[127])
	}
	if got.Minors[126] != 0 {
		t.Fatalf("minor 126 contaminated: %d", got.Minors[126])
	}
}

// TestCounterLineMinorIsolation: setting one minor leaves every other
// minor and the major untouched.
func TestCounterLineMinorIsolation(t *testing.T) {
	for _, slot := range []int{0, 1, 63, 64, 126, 127} {
		var cl CounterLine
		cl.Major = 0xdeadbeef
		cl.Minors[slot] = 0x55 % 128
		var buf [geometry.LineSize]byte
		EncodeCounterLine(&cl, buf[:])
		got := DecodeCounterLine(buf[:])
		if got.Major != cl.Major {
			t.Fatalf("slot %d: major corrupted", slot)
		}
		for i := range got.Minors {
			want := uint8(0)
			if i == slot {
				want = 0x55 % 128
			}
			if got.Minors[i] != want {
				t.Fatalf("slot %d: minor %d = %d, want %d", slot, i, got.Minors[i], want)
			}
		}
	}
}

// TestCounterValueMonotone: bumping a minor or the major strictly
// increases the combined counter — the no-reuse invariant.
func TestCounterValueMonotone(t *testing.T) {
	var cl CounterLine
	prev := cl.CounterValue(5)
	for i := 0; i < geometry.MinorCounterMax; i++ {
		cl.Minors[5]++
		v := cl.CounterValue(5)
		if v <= prev {
			t.Fatalf("counter did not increase: %d -> %d", prev, v)
		}
		prev = v
	}
	// Overflow handling: major++ with minors reset still increases.
	cl.Major++
	cl.Minors[5] = 0
	if v := cl.CounterValue(5); v <= prev {
		t.Fatalf("major bump did not increase counter: %d -> %d", prev, v)
	}
}

// TestCounterValueUnique: distinct (major, minor) pairs give distinct
// combined counters.
func TestCounterValueUnique(t *testing.T) {
	seen := map[uint64]bool{}
	var cl CounterLine
	for major := uint64(0); major < 4; major++ {
		cl.Major = major
		for minor := uint8(0); minor < 128; minor++ {
			cl.Minors[0] = minor
			v := cl.CounterValue(0)
			if seen[v] {
				t.Fatalf("counter %d repeats at major=%d minor=%d", v, major, minor)
			}
			seen[v] = true
		}
	}
}

func TestBitsHelpers(t *testing.T) {
	buf := make([]byte, 16)
	putBits(buf, 3, 7, 0x55)
	if got := getBits(buf, 3, 7); got != 0x55 {
		t.Fatalf("getBits = %#x, want 0x55", got)
	}
	// Overwrite with a different value clears old bits.
	putBits(buf, 3, 7, 0x2a)
	if got := getBits(buf, 3, 7); got != 0x2a {
		t.Fatalf("after overwrite getBits = %#x, want 0x2a", got)
	}
	// Neighbours untouched.
	if got := getBits(buf, 0, 3); got != 0 {
		t.Fatalf("low neighbour contaminated: %#x", got)
	}
	if got := getBits(buf, 10, 7); got != 0 {
		t.Fatalf("high neighbour contaminated: %#x", got)
	}
}

func TestEncodeDecodePanicOnShortBuffer(t *testing.T) {
	var cl CounterLine
	short := make([]byte, geometry.LineSize-1)
	for name, fn := range map[string]func(){
		"encode": func() { EncodeCounterLine(&cl, short) },
		"decode": func() { DecodeCounterLine(short) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}
