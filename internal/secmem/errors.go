// Package secmem implements functional secure-memory engines for the
// two architectures the paper analyzes:
//
//   - CounterMode: counter-mode encryption with split major/minor
//     counters, stateful per-sector MACs over the ciphertext, and a
//     Bonsai Merkle Tree (BMT) protecting counter integrity, with the
//     tree root held in an on-chip register.
//   - Direct: direct (address-tweaked) encryption with per-sector MACs
//     and a full Merkle Tree (MT) over the MAC lines.
//
// "Functional" means these engines really encrypt, really MAC, and
// really hash: data stored in the backing mem.Sparse (the untrusted
// DRAM) is ciphertext plus metadata, and any tampering or replay of
// that storage is detected on read, exactly per the paper's threat
// model (Section II-B). The timing behaviour of the same architecture
// (metadata caches, MSHRs, AES engine throughput) is modelled
// separately in internal/sim.
package secmem

import "fmt"

// IntegrityError reports a failed integrity verification. The paper's
// hardware would raise an exception at this point (speculative
// verification delivers data first and faults later); the functional
// engine surfaces it as an error from the access.
type IntegrityError struct {
	// Kind identifies which check failed: "mac", "tree", or "root".
	Kind string
	// Addr is the data address whose verification failed.
	Addr uint64
	// Detail describes the failing comparison.
	Detail string
}

func (e *IntegrityError) Error() string {
	return fmt.Sprintf("secmem: integrity violation (%s) at %#x: %s", e.Kind, e.Addr, e.Detail)
}

// AccessError reports a malformed access (misaligned or out of range).
type AccessError struct {
	Op   string
	Addr uint64
	Why  string
}

func (e *AccessError) Error() string {
	return fmt.Sprintf("secmem: bad %s at %#x: %s", e.Op, e.Addr, e.Why)
}
