package secmem

import (
	"gpusecmem/internal/crypto"
	"gpusecmem/internal/geometry"
	"gpusecmem/internal/mem"
)

// Keys holds the three independent on-chip secret keys of an engine.
type Keys struct {
	// Encryption is the AES-128 data encryption key (OTP generation
	// for counter mode, block cipher for direct mode).
	Encryption [16]byte
	// MAC keys the per-sector data MACs.
	MAC [16]byte
	// Tree keys the integrity-tree node hashes.
	Tree [16]byte
}

// TreeHashKind selects the integrity tree's node hash.
type TreeHashKind int

// Tree hash functions.
const (
	// TreeHashCMAC uses AES-CMAC (the default; fast, keyed).
	TreeHashCMAC TreeHashKind = iota
	// TreeHashSHA256 uses keyed SHA-256, the classic Merkle-tree
	// construction of the original secure processors.
	TreeHashSHA256
)

// Protection selects which integrity mechanisms an engine enables,
// matching the design points of Table VIII (ctr, ctr_bmt,
// ctr_mac_bmt, direct, direct_mac, direct_mac_mt).
type Protection struct {
	// MAC enables per-sector data MACs.
	MAC bool
	// Tree enables the integrity tree (BMT over counters for counter
	// mode, MT over MAC lines for direct encryption; requires MAC for
	// direct mode since MAC lines are the leaves).
	Tree bool
	// TreeHash selects the node hash function (TreeHashCMAC default).
	TreeHash TreeHashKind
}

// treeHasher builds the configured node hasher over the tree key.
func (p Protection) treeHasher(key []byte) crypto.NodeHasher {
	if p.TreeHash == TreeHashSHA256 {
		return crypto.NewSHA256Hasher(key)
	}
	return crypto.MustCMAC(key)
}

// FullProtection is encryption + MACs + tree: the complete secure
// memory design.
var FullProtection = Protection{MAC: true, Tree: true}

// CounterMode is the functional counter-mode secure-memory engine
// (Section V): split-counter OTP encryption, stateful sector MACs, and
// a BMT over the counter lines with its root in a trusted register.
//
// Data lines are protected from their first write (or first read,
// which zero-initializes through the full secure path).
type CounterMode struct {
	lay     *geometry.Layout
	backing *mem.Sparse
	otp     *crypto.OTP
	mac     *crypto.CMAC
	tree    integrityTree
	prot    Protection
	// touched tracks data lines that have been written through the
	// engine (and are therefore covered by MACs).
	touched map[uint64]bool
	// Stats counts re-encryptions triggered by minor-counter overflow.
	OverflowReencryptions int
}

// NewCounterMode builds an engine protecting dataBytes of memory
// (a positive multiple of 16 KB). Construction materializes the
// counter region and the BMT, so it is O(dataBytes/16KB).
func NewCounterMode(dataBytes uint64, keys Keys, prot Protection) (*CounterMode, error) {
	lay, err := geometry.NewLayout(dataBytes, geometry.BMT)
	if err != nil {
		return nil, err
	}
	backingSize := (lay.TotalBytes + mem.PageSize - 1) / mem.PageSize * mem.PageSize
	e := &CounterMode{
		lay:     lay,
		backing: mem.NewSparse(backingSize),
		otp:     crypto.MustOTP(keys.Encryption[:]),
		mac:     crypto.MustCMAC(keys.MAC[:]),
		prot:    prot,
		touched: make(map[uint64]bool),
	}
	e.tree = integrityTree{lay: lay, hash: prot.treeHasher(keys.Tree[:]), backing: e.backing}
	if prot.Tree {
		zero := make([]byte, geometry.LineSize) // all counters start at zero
		e.tree.init(func(uint64) []byte { return zero })
	}
	return e, nil
}

// MustCounterMode is like NewCounterMode but panics on error.
func MustCounterMode(dataBytes uint64, keys Keys, prot Protection) *CounterMode {
	e, err := NewCounterMode(dataBytes, keys, prot)
	if err != nil {
		panic(err)
	}
	return e
}

// Backing exposes the untrusted store; tests use it to play the
// physical attacker (snoop, tamper, replay).
func (e *CounterMode) Backing() *mem.Sparse { return e.backing }

// Layout exposes the metadata geometry.
func (e *CounterMode) Layout() *geometry.Layout { return e.lay }

// Protection reports the enabled integrity mechanisms.
func (e *CounterMode) Protection() Protection { return e.prot }

func (e *CounterMode) checkLine(op string, addr uint64) error {
	if addr%geometry.LineSize != 0 {
		return &AccessError{Op: op, Addr: addr, Why: "not 128B-aligned"}
	}
	if addr >= e.lay.DataBytes {
		return &AccessError{Op: op, Addr: addr, Why: "outside protected region"}
	}
	return nil
}

func (e *CounterMode) loadCounterLine(line uint64) CounterLine {
	var buf [geometry.LineSize]byte
	e.backing.Read(e.lay.CounterLineAddr(line), buf[:])
	return DecodeCounterLine(buf[:])
}

func (e *CounterMode) storeCounterLine(line uint64, cl *CounterLine) {
	var buf [geometry.LineSize]byte
	EncodeCounterLine(cl, buf[:])
	e.backing.Write(e.lay.CounterLineAddr(line), buf[:])
	if e.prot.Tree {
		e.tree.updateLeaf(line, buf[:])
	}
}

// verifyCounterLine checks the counter line against the BMT before its
// counters are trusted for decryption or MAC verification.
func (e *CounterMode) verifyCounterLine(line uint64, dataAddr uint64) (CounterLine, error) {
	var buf [geometry.LineSize]byte
	e.backing.Read(e.lay.CounterLineAddr(line), buf[:])
	if e.prot.Tree {
		if err := e.tree.verifyLeaf(line, buf[:], dataAddr); err != nil {
			return CounterLine{}, err
		}
	}
	return DecodeCounterLine(buf[:]), nil
}

// encryptLineWith encrypts 128 B of plaintext into the backing store
// at addr under the given counter value and refreshes the sector MACs.
func (e *CounterMode) encryptLineWith(addr uint64, plaintext []byte, ctr uint64) {
	var ct [geometry.LineSize]byte
	copy(ct[:], plaintext)
	for s := 0; s < geometry.SectorsPerLine; s++ {
		sa := addr + uint64(s)*geometry.SectorSize
		sector := ct[s*geometry.SectorSize : (s+1)*geometry.SectorSize]
		e.otp.XORPad(sector, sa, ctr)
		if e.prot.MAC {
			tag := e.mac.StatefulMAC(sector, sa, ctr)
			e.backing.WriteUint16(e.lay.MACSectorAddr(sa), tag)
		}
	}
	e.backing.Write(addr, ct[:])
}

// WriteLine encrypts and stores one 128-byte data line. The line's
// minor counter is incremented first (counters must never be reused);
// a minor-counter overflow bumps the shared major counter and
// re-encrypts the whole 16 KB region under fresh counters.
func (e *CounterMode) WriteLine(addr uint64, plaintext []byte) error {
	if err := e.checkLine("write", addr); err != nil {
		return err
	}
	if len(plaintext) != geometry.LineSize {
		return &AccessError{Op: "write", Addr: addr, Why: "plaintext must be exactly 128B"}
	}
	line := e.lay.CounterLine(addr)
	slot := e.lay.CounterSlot(addr)
	cl, err := e.verifyCounterLine(line, addr)
	if err != nil {
		return err
	}
	if cl.Minors[slot] == geometry.MinorCounterMax {
		if err := e.reencryptRegion(line, &cl); err != nil {
			return err
		}
	}
	cl.Minors[slot]++
	e.encryptLineWith(addr, plaintext, cl.CounterValue(slot))
	e.storeCounterLine(line, &cl)
	e.touched[addr/geometry.LineSize] = true
	return nil
}

// reencryptRegion handles minor-counter overflow: it decrypts every
// touched line in the 16 KB region under the old counters, bumps the
// major counter, resets all minors, and re-encrypts.
func (e *CounterMode) reencryptRegion(line uint64, cl *CounterLine) error {
	base := line * geometry.CounterCoverage
	var plains [geometry.MinorCountersPerLine][]byte
	for i := 0; i < geometry.MinorCountersPerLine; i++ {
		la := base + uint64(i)*geometry.LineSize
		if !e.touched[la/geometry.LineSize] {
			continue
		}
		buf := make([]byte, geometry.LineSize)
		if err := e.decryptLine(la, cl, i, buf); err != nil {
			return err
		}
		plains[i] = buf
	}
	cl.Major++
	for i := range cl.Minors {
		cl.Minors[i] = 0
	}
	e.OverflowReencryptions++
	for i, p := range plains {
		if p == nil {
			continue
		}
		la := base + uint64(i)*geometry.LineSize
		e.encryptLineWith(la, p, cl.CounterValue(i))
	}
	return nil
}

// decryptLine reads ciphertext at addr, verifies sector MACs, and
// decrypts into dst using the counter from cl/slot.
func (e *CounterMode) decryptLine(addr uint64, cl *CounterLine, slot int, dst []byte) error {
	ctr := cl.CounterValue(slot)
	var ct [geometry.LineSize]byte
	e.backing.Read(addr, ct[:])
	for s := 0; s < geometry.SectorsPerLine; s++ {
		sa := addr + uint64(s)*geometry.SectorSize
		sector := ct[s*geometry.SectorSize : (s+1)*geometry.SectorSize]
		if e.prot.MAC {
			want := e.backing.ReadUint16(e.lay.MACSectorAddr(sa))
			got := e.mac.StatefulMAC(sector, sa, ctr)
			if got != want {
				return &IntegrityError{Kind: "mac", Addr: sa, Detail: "sector MAC mismatch"}
			}
		}
		e.otp.XORPad(sector, sa, ctr)
	}
	copy(dst, ct[:])
	return nil
}

// ReadLine verifies and decrypts one 128-byte data line into dst.
// Reading a line never written through the engine zero-initializes it
// first (through the full secure path) so that every line a caller has
// observed is covered by MACs and the BMT.
func (e *CounterMode) ReadLine(addr uint64, dst []byte) error {
	if err := e.checkLine("read", addr); err != nil {
		return err
	}
	if len(dst) != geometry.LineSize {
		return &AccessError{Op: "read", Addr: addr, Why: "dst must be exactly 128B"}
	}
	if !e.touched[addr/geometry.LineSize] {
		zero := make([]byte, geometry.LineSize)
		if err := e.WriteLine(addr, zero); err != nil {
			return err
		}
	}
	line := e.lay.CounterLine(addr)
	slot := e.lay.CounterSlot(addr)
	cl, err := e.verifyCounterLine(line, addr)
	if err != nil {
		return err
	}
	return e.decryptLine(addr, &cl, slot, dst)
}

// ReadSector verifies and decrypts one 32-byte sector. The whole line
// shares a counter, so only the sector's ciphertext and MAC are
// touched.
func (e *CounterMode) ReadSector(addr uint64, dst []byte) error {
	if addr%geometry.SectorSize != 0 {
		return &AccessError{Op: "read", Addr: addr, Why: "not 32B-aligned"}
	}
	lineAddr := addr / geometry.LineSize * geometry.LineSize
	var buf [geometry.LineSize]byte
	if err := e.ReadLine(lineAddr, buf[:]); err != nil {
		return err
	}
	off := addr - lineAddr
	copy(dst, buf[off:off+geometry.SectorSize])
	return nil
}

// Write is a convenience that writes arbitrary 128B-aligned spans.
func (e *CounterMode) Write(addr uint64, data []byte) error {
	if len(data)%geometry.LineSize != 0 {
		return &AccessError{Op: "write", Addr: addr, Why: "length must be a multiple of 128B"}
	}
	for off := 0; off < len(data); off += geometry.LineSize {
		if err := e.WriteLine(addr+uint64(off), data[off:off+geometry.LineSize]); err != nil {
			return err
		}
	}
	return nil
}

// Read is a convenience that reads arbitrary 128B-aligned spans.
func (e *CounterMode) Read(addr uint64, dst []byte) error {
	if len(dst)%geometry.LineSize != 0 {
		return &AccessError{Op: "read", Addr: addr, Why: "length must be a multiple of 128B"}
	}
	for off := 0; off < len(dst); off += geometry.LineSize {
		if err := e.ReadLine(addr+uint64(off), dst[off:off+geometry.LineSize]); err != nil {
			return err
		}
	}
	return nil
}
