package secmem

import (
	"bytes"
	"testing"

	"gpusecmem/internal/geometry"
)

// FuzzCounterLineCodec: decode(encode(x)) == x for arbitrary minor
// values, and encode(decode(y)) is stable for arbitrary 128-byte
// images modulo the 7-bit truncation.
func FuzzCounterLineCodec(f *testing.F) {
	f.Add(uint64(0), []byte{})
	f.Add(uint64(1<<40), []byte{1, 2, 3, 127, 128, 255})
	f.Fuzz(func(t *testing.T, major uint64, minors []byte) {
		var cl CounterLine
		cl.Major = major
		for i := range cl.Minors {
			if i < len(minors) {
				cl.Minors[i] = minors[i] & 0x7f
			}
		}
		var buf [geometry.LineSize]byte
		EncodeCounterLine(&cl, buf[:])
		got := DecodeCounterLine(buf[:])
		if got.Major != cl.Major || got.Minors != cl.Minors {
			t.Fatalf("round trip: %+v != %+v", got, cl)
		}
		// Re-encode is byte-stable.
		var buf2 [geometry.LineSize]byte
		EncodeCounterLine(&got, buf2[:])
		if buf != buf2 {
			t.Fatal("encode not canonical")
		}
	})
}

// FuzzCounterModeRoundTrip: arbitrary line contents written through
// the engine read back identically, and a one-byte ciphertext
// corruption is always detected.
func FuzzCounterModeRoundTrip(f *testing.F) {
	f.Add([]byte("seed"), uint16(0), uint16(5))
	f.Fuzz(func(t *testing.T, data []byte, lineSel uint16, corrupt uint16) {
		e := MustCounterMode(32*1024, testKeys(), FullProtection)
		addr := uint64(lineSel) % (32 * 1024 / geometry.LineSize) * geometry.LineSize
		line := make([]byte, geometry.LineSize)
		copy(line, data)
		if err := e.WriteLine(addr, line); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, geometry.LineSize)
		if err := e.ReadLine(addr, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, line) {
			t.Fatal("round trip mismatch")
		}
		off := uint64(corrupt) % geometry.LineSize
		raw := e.Backing().Snapshot(addr+off, 1)
		e.Backing().Write(addr+off, []byte{raw[0] ^ 0x01})
		if err := e.ReadLine(addr, got); err == nil {
			t.Fatal("corruption undetected")
		}
	})
}
