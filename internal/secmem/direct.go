package secmem

import (
	"gpusecmem/internal/crypto"
	"gpusecmem/internal/geometry"
	"gpusecmem/internal/mem"
)

// Direct is the functional direct-encryption secure-memory engine
// (Section VI): each sector is encrypted with an address-tweaked AES
// construction, optionally MACed per sector, and the MAC lines are
// optionally covered by a full Merkle Tree whose root lives in a
// trusted register.
//
// Unlike counter mode, confidentiality here does not depend on any
// integrity metadata — dropping the MT (or even the MACs) weakens
// tamper/replay detection but never exposes plaintext. The engine's
// tests demonstrate both sides: with the MT, replayed (ciphertext,
// MAC) pairs are detected; with MACs alone they are not.
type Direct struct {
	lay     *geometry.Layout
	backing *mem.Sparse
	cipher  *crypto.DirectCipher
	mac     *crypto.CMAC
	tree    integrityTree
	prot    Protection
	touched map[uint64]bool
}

// NewDirect builds a direct-encryption engine protecting dataBytes
// (a positive multiple of 16 KB). Protection.Tree requires
// Protection.MAC since MAC lines are the tree leaves.
func NewDirect(dataBytes uint64, keys Keys, prot Protection) (*Direct, error) {
	if prot.Tree && !prot.MAC {
		return nil, &AccessError{Op: "configure", Addr: 0, Why: "MT requires MACs (MAC lines are the tree leaves)"}
	}
	lay, err := geometry.NewLayout(dataBytes, geometry.MT)
	if err != nil {
		return nil, err
	}
	backingSize := (lay.TotalBytes + mem.PageSize - 1) / mem.PageSize * mem.PageSize
	// The tweak key is derived from the encryption key by a fixed
	// xor-constant; independent keys would also do.
	tweakKey := keys.Encryption
	for i := range tweakKey {
		tweakKey[i] ^= 0x5c
	}
	e := &Direct{
		lay:     lay,
		backing: mem.NewSparse(backingSize),
		cipher:  crypto.MustDirectCipher(keys.Encryption[:], tweakKey[:]),
		mac:     crypto.MustCMAC(keys.MAC[:]),
		prot:    prot,
		touched: make(map[uint64]bool),
	}
	e.tree = integrityTree{lay: lay, hash: prot.treeHasher(keys.Tree[:]), backing: e.backing}
	if prot.Tree {
		zero := make([]byte, geometry.LineSize) // all MACs start at zero
		e.tree.init(func(uint64) []byte { return zero })
	}
	return e, nil
}

// MustDirect is like NewDirect but panics on error.
func MustDirect(dataBytes uint64, keys Keys, prot Protection) *Direct {
	e, err := NewDirect(dataBytes, keys, prot)
	if err != nil {
		panic(err)
	}
	return e
}

// Backing exposes the untrusted store for attacker-role tests.
func (e *Direct) Backing() *mem.Sparse { return e.backing }

// Layout exposes the metadata geometry.
func (e *Direct) Layout() *geometry.Layout { return e.lay }

// Protection reports the enabled integrity mechanisms.
func (e *Direct) Protection() Protection { return e.prot }

func (e *Direct) checkLine(op string, addr uint64) error {
	if addr%geometry.LineSize != 0 {
		return &AccessError{Op: op, Addr: addr, Why: "not 128B-aligned"}
	}
	if addr >= e.lay.DataBytes {
		return &AccessError{Op: op, Addr: addr, Why: "outside protected region"}
	}
	return nil
}

// macLineImage reads the full 128-byte MAC line covering dataAddr,
// used as tree leaf content.
func (e *Direct) macLineImage(line uint64, dst []byte) {
	e.backing.Read(e.lay.MACLineAddr(line), dst[:geometry.LineSize])
}

// WriteLine encrypts and stores one 128-byte data line, refreshes its
// sector MACs, and (if enabled) updates the MT chain for the MAC line.
func (e *Direct) WriteLine(addr uint64, plaintext []byte) error {
	if err := e.checkLine("write", addr); err != nil {
		return err
	}
	if len(plaintext) != geometry.LineSize {
		return &AccessError{Op: "write", Addr: addr, Why: "plaintext must be exactly 128B"}
	}
	var ct [geometry.LineSize]byte
	copy(ct[:], plaintext)
	for s := 0; s < geometry.SectorsPerLine; s++ {
		sa := addr + uint64(s)*geometry.SectorSize
		sector := ct[s*geometry.SectorSize : (s+1)*geometry.SectorSize]
		e.cipher.Encrypt(sector, sa)
		if e.prot.MAC {
			tag := e.mac.AddressMAC(sector, sa)
			e.backing.WriteUint16(e.lay.MACSectorAddr(sa), tag)
		}
	}
	e.backing.Write(addr, ct[:])
	if e.prot.Tree {
		line := e.lay.MACLine(addr)
		var leaf [geometry.LineSize]byte
		e.macLineImage(line, leaf[:])
		e.tree.updateLeaf(line, leaf[:])
	}
	e.touched[addr/geometry.LineSize] = true
	return nil
}

// ReadLine verifies and decrypts one 128-byte data line into dst.
// Reading a never-written line zero-initializes it through the full
// secure path first.
func (e *Direct) ReadLine(addr uint64, dst []byte) error {
	if err := e.checkLine("read", addr); err != nil {
		return err
	}
	if len(dst) != geometry.LineSize {
		return &AccessError{Op: "read", Addr: addr, Why: "dst must be exactly 128B"}
	}
	if !e.touched[addr/geometry.LineSize] {
		zero := make([]byte, geometry.LineSize)
		if err := e.WriteLine(addr, zero); err != nil {
			return err
		}
	}
	// Verify the MAC line through the MT before trusting its MACs
	// ("every newly fetched MAC block must be authenticated").
	if e.prot.Tree {
		line := e.lay.MACLine(addr)
		var leaf [geometry.LineSize]byte
		e.macLineImage(line, leaf[:])
		if err := e.tree.verifyLeaf(line, leaf[:], addr); err != nil {
			return err
		}
	}
	var ct [geometry.LineSize]byte
	e.backing.Read(addr, ct[:])
	for s := 0; s < geometry.SectorsPerLine; s++ {
		sa := addr + uint64(s)*geometry.SectorSize
		sector := ct[s*geometry.SectorSize : (s+1)*geometry.SectorSize]
		if e.prot.MAC {
			want := e.backing.ReadUint16(e.lay.MACSectorAddr(sa))
			got := e.mac.AddressMAC(sector, sa)
			if got != want {
				return &IntegrityError{Kind: "mac", Addr: sa, Detail: "sector MAC mismatch"}
			}
		}
		e.cipher.Decrypt(sector, sa)
	}
	copy(dst, ct[:])
	return nil
}

// ReadSector verifies and decrypts one 32-byte sector.
func (e *Direct) ReadSector(addr uint64, dst []byte) error {
	if addr%geometry.SectorSize != 0 {
		return &AccessError{Op: "read", Addr: addr, Why: "not 32B-aligned"}
	}
	lineAddr := addr / geometry.LineSize * geometry.LineSize
	var buf [geometry.LineSize]byte
	if err := e.ReadLine(lineAddr, buf[:]); err != nil {
		return err
	}
	off := addr - lineAddr
	copy(dst, buf[off:off+geometry.SectorSize])
	return nil
}

// Write writes arbitrary 128B-aligned spans.
func (e *Direct) Write(addr uint64, data []byte) error {
	if len(data)%geometry.LineSize != 0 {
		return &AccessError{Op: "write", Addr: addr, Why: "length must be a multiple of 128B"}
	}
	for off := 0; off < len(data); off += geometry.LineSize {
		if err := e.WriteLine(addr+uint64(off), data[off:off+geometry.LineSize]); err != nil {
			return err
		}
	}
	return nil
}

// Read reads arbitrary 128B-aligned spans.
func (e *Direct) Read(addr uint64, dst []byte) error {
	if len(dst)%geometry.LineSize != 0 {
		return &AccessError{Op: "read", Addr: addr, Why: "length must be a multiple of 128B"}
	}
	for off := 0; off < len(dst); off += geometry.LineSize {
		if err := e.ReadLine(addr+uint64(off), dst[off:off+geometry.LineSize]); err != nil {
			return err
		}
	}
	return nil
}

// Engine is the interface both functional engines satisfy; the
// examples and the root-package API accept either.
type Engine interface {
	ReadLine(addr uint64, dst []byte) error
	WriteLine(addr uint64, src []byte) error
	ReadSector(addr uint64, dst []byte) error
	Read(addr uint64, dst []byte) error
	Write(addr uint64, data []byte) error
	Backing() *mem.Sparse
	Layout() *geometry.Layout
	Protection() Protection
	// VerifyAll scrubs the whole protected region offline, reporting
	// every MAC or tree violation without returning data.
	VerifyAll() *ScrubReport
}

var (
	_ Engine = (*CounterMode)(nil)
	_ Engine = (*Direct)(nil)
)
