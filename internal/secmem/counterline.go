package secmem

import (
	"encoding/binary"

	"gpusecmem/internal/geometry"
)

// CounterLine is the in-engine view of one 128-byte counter line:
// one 128-bit major counter shared by a 16 KB data chunk plus 128
// 7-bit minor counters, one per 128 B data line. The packing is exact:
// 16 B major + 112 B of packed minors = 128 B, which is why one
// counter line covers precisely 16 KB (Table II).
type CounterLine struct {
	// Major is the shared major counter. 128 bits in hardware; 64 bits
	// of dynamic range is unreachable in simulation, so the top 64
	// bits are kept only in the serialized form.
	Major uint64
	// Minors holds the 128 per-line minor counters, each 0..127.
	Minors [geometry.MinorCountersPerLine]uint8
}

// counterLineBytes is the serialized size, equal to the cache-line size.
const counterLineBytes = geometry.LineSize

// EncodeCounterLine packs the line into its 128-byte memory image.
func EncodeCounterLine(cl *CounterLine, dst []byte) {
	if len(dst) < counterLineBytes {
		panic("secmem: counter line buffer too small")
	}
	for i := range dst[:counterLineBytes] {
		dst[i] = 0
	}
	binary.BigEndian.PutUint64(dst[8:16], cl.Major) // low 64 bits of the 128-bit major
	// Pack 128 x 7-bit minors into dst[16:128].
	for i, m := range cl.Minors {
		putBits(dst[16:counterLineBytes], uint(i)*7, 7, uint64(m&0x7f))
	}
}

// DecodeCounterLine unpacks a 128-byte memory image.
func DecodeCounterLine(src []byte) CounterLine {
	if len(src) < counterLineBytes {
		panic("secmem: counter line buffer too small")
	}
	var cl CounterLine
	cl.Major = binary.BigEndian.Uint64(src[8:16])
	for i := range cl.Minors {
		cl.Minors[i] = uint8(getBits(src[16:counterLineBytes], uint(i)*7, 7))
	}
	return cl
}

// CounterValue combines the major and a minor counter into the single
// logical counter fed to the OTP: ctr = major<<7 | minor. Incrementing
// the minor, or bumping the major on minor overflow, always yields a
// fresh value, which is the no-reuse invariant counter-mode security
// rests on.
func (cl *CounterLine) CounterValue(slot int) uint64 {
	return cl.Major<<7 | uint64(cl.Minors[slot])
}

// putBits writes the low `width` bits of v at bit offset off in buf
// (LSB-first within each byte).
func putBits(buf []byte, off, width uint, v uint64) {
	for i := uint(0); i < width; i++ {
		bit := (v >> i) & 1
		idx := off + i
		if bit != 0 {
			buf[idx/8] |= 1 << (idx % 8)
		} else {
			buf[idx/8] &^= 1 << (idx % 8)
		}
	}
}

// getBits reads `width` bits at bit offset off in buf.
func getBits(buf []byte, off, width uint) uint64 {
	var v uint64
	for i := uint(0); i < width; i++ {
		idx := off + i
		if buf[idx/8]&(1<<(idx%8)) != 0 {
			v |= 1 << i
		}
	}
	return v
}
