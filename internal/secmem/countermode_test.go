package secmem

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"gpusecmem/internal/geometry"
)

const testRegion = 64 * 1024 // 4 counter lines; small but multi-leaf

func testKeys() Keys {
	var k Keys
	for i := range k.Encryption {
		k.Encryption[i] = byte(i + 1)
		k.MAC[i] = byte(i + 101)
		k.Tree[i] = byte(i + 201)
	}
	return k
}

func fillPattern(buf []byte, seed byte) {
	for i := range buf {
		buf[i] = seed ^ byte(i*7)
	}
}

func TestCounterModeRoundTrip(t *testing.T) {
	e := MustCounterMode(testRegion, testKeys(), FullProtection)
	want := make([]byte, geometry.LineSize)
	fillPattern(want, 0x3c)
	if err := e.WriteLine(0x400, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, geometry.LineSize)
	if err := e.ReadLine(0x400, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("round trip mismatch")
	}
}

// TestCiphertextAtRest: the backing store must never contain the
// plaintext of a written line — the confidentiality property itself.
func TestCiphertextAtRest(t *testing.T) {
	e := MustCounterMode(testRegion, testKeys(), FullProtection)
	plain := make([]byte, geometry.LineSize)
	fillPattern(plain, 0x77)
	if err := e.WriteLine(0, plain); err != nil {
		t.Fatal(err)
	}
	raw := e.Backing().Snapshot(0, geometry.LineSize)
	if bytes.Equal(raw, plain) {
		t.Fatal("plaintext visible in untrusted memory")
	}
	if bytes.Contains(raw, plain[:16]) {
		t.Fatal("plaintext fragment visible in untrusted memory")
	}
}

// TestFreshCounterFreshCiphertext: writing the same plaintext to the
// same address twice must produce different ciphertexts, because the
// counter advances on every write. Identical ciphertexts would leak
// "the value was rewritten unchanged" and enable pad reuse.
func TestFreshCounterFreshCiphertext(t *testing.T) {
	e := MustCounterMode(testRegion, testKeys(), FullProtection)
	plain := make([]byte, geometry.LineSize)
	fillPattern(plain, 0x11)
	if err := e.WriteLine(0, plain); err != nil {
		t.Fatal(err)
	}
	ct1 := e.Backing().Snapshot(0, geometry.LineSize)
	if err := e.WriteLine(0, plain); err != nil {
		t.Fatal(err)
	}
	ct2 := e.Backing().Snapshot(0, geometry.LineSize)
	if bytes.Equal(ct1, ct2) {
		t.Fatal("counter reuse: identical ciphertext for rewrite")
	}
}

func TestReadUnwrittenLineIsZero(t *testing.T) {
	e := MustCounterMode(testRegion, testKeys(), FullProtection)
	got := make([]byte, geometry.LineSize)
	if err := e.ReadLine(0x2000, got); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, b)
		}
	}
	// And subsequently the line is fully protected: tampering it is
	// detected.
	e.Backing().WriteUint16(0x2000, 0xffff)
	if err := e.ReadLine(0x2000, got); err == nil {
		t.Fatal("tamper after zero-init not detected")
	}
}

func TestReadSector(t *testing.T) {
	e := MustCounterMode(testRegion, testKeys(), FullProtection)
	line := make([]byte, geometry.LineSize)
	fillPattern(line, 0xaa)
	if err := e.WriteLine(0x800, line); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < geometry.SectorsPerLine; s++ {
		got := make([]byte, geometry.SectorSize)
		if err := e.ReadSector(0x800+uint64(s)*geometry.SectorSize, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, line[s*geometry.SectorSize:(s+1)*geometry.SectorSize]) {
			t.Fatalf("sector %d mismatch", s)
		}
	}
}

func TestAccessValidation(t *testing.T) {
	e := MustCounterMode(testRegion, testKeys(), FullProtection)
	buf := make([]byte, geometry.LineSize)
	var accessErr *AccessError
	cases := []struct {
		name string
		err  error
	}{
		{"misaligned write", e.WriteLine(3, buf)},
		{"out of range write", e.WriteLine(testRegion, buf)},
		{"misaligned read", e.ReadLine(3, buf)},
		{"short write", e.WriteLine(0, buf[:5])},
		{"short read", e.ReadLine(0, buf[:5])},
		{"misaligned sector", e.ReadSector(7, make([]byte, 32))},
		{"ragged span write", e.Write(0, make([]byte, 130))},
		{"ragged span read", e.Read(0, make([]byte, 130))},
	}
	for _, tc := range cases {
		if tc.err == nil || !errors.As(tc.err, &accessErr) {
			t.Errorf("%s: got %v, want AccessError", tc.name, tc.err)
		}
	}
}

func TestSpanReadWrite(t *testing.T) {
	e := MustCounterMode(testRegion, testKeys(), FullProtection)
	data := make([]byte, 4*geometry.LineSize)
	fillPattern(data, 0x5a)
	if err := e.Write(0x1000, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := e.Read(0x1000, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("span round trip mismatch")
	}
}

// TestMinorCounterOverflow: 128 writes to the same line overflow the
// 7-bit minor counter; the engine must bump the major counter,
// re-encrypt the 16KB region, and keep every line readable.
func TestMinorCounterOverflow(t *testing.T) {
	e := MustCounterMode(testRegion, testKeys(), FullProtection)
	// Populate two other lines in the same 16KB region.
	other1 := make([]byte, geometry.LineSize)
	fillPattern(other1, 0x01)
	other2 := make([]byte, geometry.LineSize)
	fillPattern(other2, 0x02)
	if err := e.WriteLine(0x080, other1); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteLine(0x100, other2); err != nil {
		t.Fatal(err)
	}
	hot := make([]byte, geometry.LineSize)
	for i := 0; i < 130; i++ {
		fillPattern(hot, byte(i))
		if err := e.WriteLine(0, hot); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if e.OverflowReencryptions == 0 {
		t.Fatal("no overflow re-encryption after 130 writes")
	}
	got := make([]byte, geometry.LineSize)
	if err := e.ReadLine(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, hot) {
		t.Fatal("hot line corrupted after overflow")
	}
	if err := e.ReadLine(0x080, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, other1) {
		t.Fatal("neighbour line 1 corrupted after region re-encryption")
	}
	if err := e.ReadLine(0x100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, other2) {
		t.Fatal("neighbour line 2 corrupted after region re-encryption")
	}
	// Major counter advanced, minors reset.
	cl := e.loadCounterLine(0)
	if cl.Major == 0 {
		t.Fatal("major counter did not advance")
	}
}

// TestManyLinesRandomized: a randomized workload over the whole region
// with interleaved reads and writes stays consistent.
func TestManyLinesRandomized(t *testing.T) {
	e := MustCounterMode(testRegion, testKeys(), FullProtection)
	rng := rand.New(rand.NewSource(42))
	shadow := map[uint64][]byte{}
	for i := 0; i < 500; i++ {
		lineAddr := uint64(rng.Intn(testRegion/geometry.LineSize)) * geometry.LineSize
		if rng.Intn(2) == 0 {
			buf := make([]byte, geometry.LineSize)
			rng.Read(buf)
			if err := e.WriteLine(lineAddr, buf); err != nil {
				t.Fatal(err)
			}
			shadow[lineAddr] = buf
		} else {
			got := make([]byte, geometry.LineSize)
			if err := e.ReadLine(lineAddr, got); err != nil {
				t.Fatal(err)
			}
			want, ok := shadow[lineAddr]
			if !ok {
				want = make([]byte, geometry.LineSize)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("iteration %d: line %#x mismatch", i, lineAddr)
			}
		}
	}
}

// TestDistinctEnginesDistinctCiphertext: two engines with different
// keys produce different ciphertext for the same plaintext/address.
func TestDistinctEnginesDistinctCiphertext(t *testing.T) {
	k2 := testKeys()
	k2.Encryption[0] ^= 1
	e1 := MustCounterMode(testRegion, testKeys(), FullProtection)
	e2 := MustCounterMode(testRegion, k2, FullProtection)
	plain := make([]byte, geometry.LineSize)
	fillPattern(plain, 0x42)
	if err := e1.WriteLine(0, plain); err != nil {
		t.Fatal(err)
	}
	if err := e2.WriteLine(0, plain); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(e1.Backing().Snapshot(0, 128), e2.Backing().Snapshot(0, 128)) {
		t.Fatal("ciphertext independent of key")
	}
}

func TestNewCounterModeErrors(t *testing.T) {
	if _, err := NewCounterMode(1000, testKeys(), FullProtection); err == nil {
		t.Fatal("want error for unaligned region")
	}
}

func BenchmarkCounterModeWriteLine(b *testing.B) {
	e := MustCounterMode(1<<20, testKeys(), FullProtection)
	buf := make([]byte, geometry.LineSize)
	b.SetBytes(geometry.LineSize)
	for i := 0; i < b.N; i++ {
		addr := uint64(i%8192) * geometry.LineSize
		if err := e.WriteLine(addr, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCounterModeReadLine(b *testing.B) {
	e := MustCounterMode(1<<20, testKeys(), FullProtection)
	buf := make([]byte, geometry.LineSize)
	for a := uint64(0); a < 1<<20; a += geometry.LineSize {
		if err := e.WriteLine(a, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.SetBytes(geometry.LineSize)
	for i := 0; i < b.N; i++ {
		addr := uint64(i%8192) * geometry.LineSize
		if err := e.ReadLine(addr, buf); err != nil {
			b.Fatal(err)
		}
	}
}
