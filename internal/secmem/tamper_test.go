package secmem

import (
	"bytes"
	"errors"
	"testing"

	"gpusecmem/internal/geometry"
)

// These tests play the paper's physical attacker (Section II-B): they
// snoop, tamper with, and replay the contents of the untrusted backing
// store directly, and check that the engines detect exactly what their
// configured protection level promises — and, just as importantly,
// fail to detect what it does not promise (the weaknesses that justify
// BMT/MT in the first place).

func writeKnown(t *testing.T, e Engine, addr uint64, seed byte) []byte {
	t.Helper()
	buf := make([]byte, geometry.LineSize)
	fillPattern(buf, seed)
	if err := e.WriteLine(addr, buf); err != nil {
		t.Fatal(err)
	}
	return buf
}

func wantIntegrity(t *testing.T, err error, kind string) {
	t.Helper()
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("got %v, want IntegrityError", err)
	}
	if kind != "" && ie.Kind != kind {
		t.Fatalf("got kind %q (%v), want %q", ie.Kind, ie, kind)
	}
}

// --- Counter-mode attacks ---

func TestCtrTamperDataDetected(t *testing.T) {
	e := MustCounterMode(testRegion, testKeys(), FullProtection)
	writeKnown(t, e, 0x400, 1)
	raw := e.Backing().Snapshot(0x400, 1)
	e.Backing().Write(0x400, []byte{raw[0] ^ 0x01})
	err := e.ReadLine(0x400, make([]byte, geometry.LineSize))
	wantIntegrity(t, err, "mac")
}

func TestCtrTamperMACDetected(t *testing.T) {
	e := MustCounterMode(testRegion, testKeys(), FullProtection)
	writeKnown(t, e, 0x400, 2)
	macAddr := e.Layout().MACSectorAddr(0x400)
	e.Backing().WriteUint16(macAddr, e.Backing().ReadUint16(macAddr)^1)
	err := e.ReadLine(0x400, make([]byte, geometry.LineSize))
	wantIntegrity(t, err, "mac")
}

func TestCtrTamperCounterDetected(t *testing.T) {
	e := MustCounterMode(testRegion, testKeys(), FullProtection)
	writeKnown(t, e, 0x400, 3)
	ctrAddr := e.Layout().CounterLineAddr(e.Layout().CounterLine(0x400))
	raw := e.Backing().Snapshot(ctrAddr, 1)
	e.Backing().Write(ctrAddr+20, []byte{raw[0] ^ 0xff})
	err := e.ReadLine(0x400, make([]byte, geometry.LineSize))
	wantIntegrity(t, err, "tree")
}

// TestCtrCounterReplayDetected: the classic counter-replay attack —
// record the counter line, let the victim write (advancing the
// counter), then restore the old counter line together with the old
// ciphertext and MACs. Only the BMT catches this.
func TestCtrCounterReplayDetected(t *testing.T) {
	e := MustCounterMode(testRegion, testKeys(), FullProtection)
	writeKnown(t, e, 0x400, 4)
	lay := e.Layout()
	ctrAddr := lay.CounterLineAddr(lay.CounterLine(0x400))
	macLineAddr := lay.MACLineAddr(lay.MACLine(0x400))
	oldCtr := e.Backing().Snapshot(ctrAddr, geometry.LineSize)
	oldData := e.Backing().Snapshot(0x400, geometry.LineSize)
	oldMACs := e.Backing().Snapshot(macLineAddr, geometry.LineSize)

	writeKnown(t, e, 0x400, 5) // victim advances the state

	e.Backing().Write(ctrAddr, oldCtr)
	e.Backing().Write(0x400, oldData)
	e.Backing().Write(macLineAddr, oldMACs)
	err := e.ReadLine(0x400, make([]byte, geometry.LineSize))
	wantIntegrity(t, err, "tree")
}

// TestCtrCounterReplayUndetectedWithoutBMT demonstrates why
// counter-mode encryption "fundamentally relies on counter integrity
// protection" (Section VI-B): without the BMT the same replay attack
// succeeds silently, returning stale data as if it were fresh.
func TestCtrCounterReplayUndetectedWithoutBMT(t *testing.T) {
	e := MustCounterMode(testRegion, testKeys(), Protection{MAC: true, Tree: false})
	old := writeKnown(t, e, 0x400, 4)
	lay := e.Layout()
	ctrAddr := lay.CounterLineAddr(lay.CounterLine(0x400))
	macLineAddr := lay.MACLineAddr(lay.MACLine(0x400))
	oldCtr := e.Backing().Snapshot(ctrAddr, geometry.LineSize)
	oldData := e.Backing().Snapshot(0x400, geometry.LineSize)
	oldMACs := e.Backing().Snapshot(macLineAddr, geometry.LineSize)

	writeKnown(t, e, 0x400, 5)

	e.Backing().Write(ctrAddr, oldCtr)
	e.Backing().Write(0x400, oldData)
	e.Backing().Write(macLineAddr, oldMACs)
	got := make([]byte, geometry.LineSize)
	if err := e.ReadLine(0x400, got); err != nil {
		t.Fatalf("replay unexpectedly detected without BMT: %v", err)
	}
	if !bytes.Equal(got, old) {
		t.Fatal("replay did not restore stale data")
	}
}

func TestCtrTamperTreeNodeDetected(t *testing.T) {
	e := MustCounterMode(testRegion, testKeys(), FullProtection)
	writeKnown(t, e, 0x400, 6)
	lay := e.Layout()
	// Corrupt the lowest interior node covering this counter line.
	leaf := lay.CounterLine(0x400)
	level, idx, _ := lay.LeafParent(leaf)
	nodeAddr := lay.TreeNodeAddr(level, idx)
	raw := e.Backing().Snapshot(nodeAddr, 1)
	e.Backing().Write(nodeAddr, []byte{raw[0] ^ 0x80})
	err := e.ReadLine(0x400, make([]byte, geometry.LineSize))
	// Either the leaf-vs-node comparison or the node-vs-root chain
	// breaks, depending on which direction was corrupted.
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("tree-node tamper not detected: %v", err)
	}
}

// TestCtrSpliceDetected: relocating valid ciphertext (and its MAC) to
// a different address must fail, because the stateful MAC binds the
// address.
func TestCtrSpliceDetected(t *testing.T) {
	e := MustCounterMode(testRegion, testKeys(), FullProtection)
	writeKnown(t, e, 0x000, 7)
	writeKnown(t, e, 0x080, 8) // same counter line, adjacent slot
	lay := e.Layout()
	// Copy line 0's ciphertext and sector MACs over line 1's.
	ct := e.Backing().Snapshot(0x000, geometry.LineSize)
	e.Backing().Write(0x080, ct)
	for s := uint64(0); s < geometry.SectorsPerLine; s++ {
		src := lay.MACSectorAddr(0x000 + s*geometry.SectorSize)
		dst := lay.MACSectorAddr(0x080 + s*geometry.SectorSize)
		e.Backing().WriteUint16(dst, e.Backing().ReadUint16(src))
	}
	err := e.ReadLine(0x080, make([]byte, geometry.LineSize))
	wantIntegrity(t, err, "mac")
}

// TestCtrTamperUndetectedWithoutMAC: encryption-only counter mode
// (scheme "ctr"/"ctr_bmt" without MACs) cannot detect ciphertext
// tampering; the read succeeds and returns garbage. This is the
// spoofing weakness MACs exist to close.
func TestCtrTamperUndetectedWithoutMAC(t *testing.T) {
	e := MustCounterMode(testRegion, testKeys(), Protection{MAC: false, Tree: true})
	want := writeKnown(t, e, 0x400, 9)
	raw := e.Backing().Snapshot(0x400, 1)
	e.Backing().Write(0x400, []byte{raw[0] ^ 0xff})
	got := make([]byte, geometry.LineSize)
	if err := e.ReadLine(0x400, got); err != nil {
		t.Fatalf("unexpected detection without MACs: %v", err)
	}
	if bytes.Equal(got, want) {
		t.Fatal("tampered ciphertext decrypted to original plaintext")
	}
}

// --- Direct-encryption attacks ---

func TestDirectTamperDataDetected(t *testing.T) {
	e := MustDirect(testRegion, testKeys(), FullProtection)
	writeKnown(t, e, 0x400, 1)
	raw := e.Backing().Snapshot(0x400, 1)
	e.Backing().Write(0x400, []byte{raw[0] ^ 0x01})
	err := e.ReadLine(0x400, make([]byte, geometry.LineSize))
	wantIntegrity(t, err, "mac")
}

func TestDirectTamperMACDetected(t *testing.T) {
	e := MustDirect(testRegion, testKeys(), FullProtection)
	writeKnown(t, e, 0x400, 2)
	macAddr := e.Layout().MACSectorAddr(0x400)
	e.Backing().WriteUint16(macAddr, e.Backing().ReadUint16(macAddr)^1)
	err := e.ReadLine(0x400, make([]byte, geometry.LineSize))
	// The MT over the MAC line catches the modified MAC line before
	// the per-sector comparison runs.
	wantIntegrity(t, err, "tree")
}

// TestDirectReplayDetectedWithMT: record (ciphertext, MAC line), let
// the victim overwrite, then restore both. The MT over MAC lines
// catches it — "the MT is needed to prevent replay attacks".
func TestDirectReplayDetectedWithMT(t *testing.T) {
	e := MustDirect(testRegion, testKeys(), FullProtection)
	writeKnown(t, e, 0x400, 3)
	lay := e.Layout()
	macLineAddr := lay.MACLineAddr(lay.MACLine(0x400))
	oldData := e.Backing().Snapshot(0x400, geometry.LineSize)
	oldMACs := e.Backing().Snapshot(macLineAddr, geometry.LineSize)

	writeKnown(t, e, 0x400, 4)

	e.Backing().Write(0x400, oldData)
	e.Backing().Write(macLineAddr, oldMACs)
	err := e.ReadLine(0x400, make([]byte, geometry.LineSize))
	wantIntegrity(t, err, "tree")
}

// TestDirectReplayUndetectedWithoutMT: with MACs alone (scheme
// direct_mac) the same replay succeeds — a consistent stale
// (ciphertext, MAC) pair verifies. This is exactly the gap between
// Fig 17's direct_mac and direct_mac_mt designs.
func TestDirectReplayUndetectedWithoutMT(t *testing.T) {
	e := MustDirect(testRegion, testKeys(), Protection{MAC: true, Tree: false})
	old := writeKnown(t, e, 0x400, 3)
	lay := e.Layout()
	macLineAddr := lay.MACLineAddr(lay.MACLine(0x400))
	oldData := e.Backing().Snapshot(0x400, geometry.LineSize)
	oldMACs := e.Backing().Snapshot(macLineAddr, geometry.LineSize)

	writeKnown(t, e, 0x400, 4)

	e.Backing().Write(0x400, oldData)
	e.Backing().Write(macLineAddr, oldMACs)
	got := make([]byte, geometry.LineSize)
	if err := e.ReadLine(0x400, got); err != nil {
		t.Fatalf("replay unexpectedly detected without MT: %v", err)
	}
	if !bytes.Equal(got, old) {
		t.Fatal("replay did not restore stale data")
	}
}

func TestDirectSpliceDetected(t *testing.T) {
	e := MustDirect(testRegion, testKeys(), Protection{MAC: true, Tree: false})
	writeKnown(t, e, 0x000, 7)
	writeKnown(t, e, 0x080, 8)
	lay := e.Layout()
	ct := e.Backing().Snapshot(0x000, geometry.LineSize)
	e.Backing().Write(0x080, ct)
	for s := uint64(0); s < geometry.SectorsPerLine; s++ {
		src := lay.MACSectorAddr(0x000 + s*geometry.SectorSize)
		dst := lay.MACSectorAddr(0x080 + s*geometry.SectorSize)
		e.Backing().WriteUint16(dst, e.Backing().ReadUint16(src))
	}
	err := e.ReadLine(0x080, make([]byte, geometry.LineSize))
	wantIntegrity(t, err, "mac")
}

func TestDirectTamperUndetectedWithoutMAC(t *testing.T) {
	e := MustDirect(testRegion, testKeys(), Protection{})
	want := writeKnown(t, e, 0x400, 9)
	raw := e.Backing().Snapshot(0x400, 1)
	e.Backing().Write(0x400, []byte{raw[0] ^ 0xff})
	got := make([]byte, geometry.LineSize)
	if err := e.ReadLine(0x400, got); err != nil {
		t.Fatalf("unexpected detection without MACs: %v", err)
	}
	if bytes.Equal(got, want) {
		t.Fatal("tampered ciphertext decrypted to original plaintext")
	}
}

// TestIntegrityErrorMessages: errors identify kind and address.
func TestIntegrityErrorMessages(t *testing.T) {
	e := MustCounterMode(testRegion, testKeys(), FullProtection)
	writeKnown(t, e, 0x400, 1)
	raw := e.Backing().Snapshot(0x400, 1)
	e.Backing().Write(0x400, []byte{raw[0] ^ 1})
	err := e.ReadLine(0x400, make([]byte, geometry.LineSize))
	if err == nil {
		t.Fatal("want error")
	}
	msg := err.Error()
	if !bytes.Contains([]byte(msg), []byte("mac")) || !bytes.Contains([]byte(msg), []byte("0x400")) {
		t.Fatalf("uninformative error: %q", msg)
	}
}
