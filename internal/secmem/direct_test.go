package secmem

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"gpusecmem/internal/geometry"
)

func TestDirectRoundTrip(t *testing.T) {
	e := MustDirect(testRegion, testKeys(), FullProtection)
	want := make([]byte, geometry.LineSize)
	fillPattern(want, 0x3c)
	if err := e.WriteLine(0x400, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, geometry.LineSize)
	if err := e.ReadLine(0x400, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("round trip mismatch")
	}
}

func TestDirectCiphertextAtRest(t *testing.T) {
	e := MustDirect(testRegion, testKeys(), FullProtection)
	plain := make([]byte, geometry.LineSize)
	fillPattern(plain, 0x77)
	if err := e.WriteLine(0, plain); err != nil {
		t.Fatal(err)
	}
	raw := e.Backing().Snapshot(0, geometry.LineSize)
	if bytes.Equal(raw, plain) || bytes.Contains(raw, plain[:16]) {
		t.Fatal("plaintext visible in untrusted memory")
	}
}

// TestDirectDeterministicCiphertext: unlike counter mode, direct
// encryption is deterministic — rewriting the same plaintext yields
// the same ciphertext. This is the information leak counter-mode
// avoids, and a documented property of the design.
func TestDirectDeterministicCiphertext(t *testing.T) {
	e := MustDirect(testRegion, testKeys(), FullProtection)
	plain := make([]byte, geometry.LineSize)
	fillPattern(plain, 0x11)
	if err := e.WriteLine(0, plain); err != nil {
		t.Fatal(err)
	}
	ct1 := e.Backing().Snapshot(0, geometry.LineSize)
	if err := e.WriteLine(0, plain); err != nil {
		t.Fatal(err)
	}
	ct2 := e.Backing().Snapshot(0, geometry.LineSize)
	if !bytes.Equal(ct1, ct2) {
		t.Fatal("direct encryption should be deterministic per (addr, plaintext)")
	}
}

// TestDirectConfidentialityWithoutIntegrity: with all integrity
// disabled, data still round-trips and is still ciphertext at rest —
// "with direct encryption, confidentiality does not necessarily
// require integrity protection" (Section II-C).
func TestDirectConfidentialityWithoutIntegrity(t *testing.T) {
	e := MustDirect(testRegion, testKeys(), Protection{})
	plain := make([]byte, geometry.LineSize)
	fillPattern(plain, 0x66)
	if err := e.WriteLine(0x800, plain); err != nil {
		t.Fatal(err)
	}
	raw := e.Backing().Snapshot(0x800, geometry.LineSize)
	if bytes.Equal(raw, plain) {
		t.Fatal("plaintext at rest")
	}
	got := make([]byte, geometry.LineSize)
	if err := e.ReadLine(0x800, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plain) {
		t.Fatal("round trip mismatch")
	}
}

func TestDirectTreeRequiresMAC(t *testing.T) {
	if _, err := NewDirect(testRegion, testKeys(), Protection{MAC: false, Tree: true}); err == nil {
		t.Fatal("MT without MACs must be rejected")
	}
}

func TestDirectReadUnwrittenLineIsZero(t *testing.T) {
	e := MustDirect(testRegion, testKeys(), FullProtection)
	got := make([]byte, geometry.LineSize)
	if err := e.ReadLine(0x2000, got); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, b)
		}
	}
}

func TestDirectReadSector(t *testing.T) {
	e := MustDirect(testRegion, testKeys(), FullProtection)
	line := make([]byte, geometry.LineSize)
	fillPattern(line, 0xaa)
	if err := e.WriteLine(0x800, line); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < geometry.SectorsPerLine; s++ {
		got := make([]byte, geometry.SectorSize)
		if err := e.ReadSector(0x800+uint64(s)*geometry.SectorSize, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, line[s*geometry.SectorSize:(s+1)*geometry.SectorSize]) {
			t.Fatalf("sector %d mismatch", s)
		}
	}
}

func TestDirectAccessValidation(t *testing.T) {
	e := MustDirect(testRegion, testKeys(), FullProtection)
	buf := make([]byte, geometry.LineSize)
	var accessErr *AccessError
	cases := []struct {
		name string
		err  error
	}{
		{"misaligned write", e.WriteLine(3, buf)},
		{"out of range write", e.WriteLine(testRegion, buf)},
		{"misaligned read", e.ReadLine(3, buf)},
		{"short write", e.WriteLine(0, buf[:5])},
		{"short read", e.ReadLine(0, buf[:5])},
		{"misaligned sector", e.ReadSector(7, make([]byte, 32))},
	}
	for _, tc := range cases {
		if tc.err == nil || !errors.As(tc.err, &accessErr) {
			t.Errorf("%s: got %v, want AccessError", tc.name, tc.err)
		}
	}
}

func TestDirectRandomizedConsistency(t *testing.T) {
	e := MustDirect(testRegion, testKeys(), FullProtection)
	rng := rand.New(rand.NewSource(7))
	shadow := map[uint64][]byte{}
	for i := 0; i < 500; i++ {
		lineAddr := uint64(rng.Intn(testRegion/geometry.LineSize)) * geometry.LineSize
		if rng.Intn(2) == 0 {
			buf := make([]byte, geometry.LineSize)
			rng.Read(buf)
			if err := e.WriteLine(lineAddr, buf); err != nil {
				t.Fatal(err)
			}
			shadow[lineAddr] = buf
		} else {
			got := make([]byte, geometry.LineSize)
			if err := e.ReadLine(lineAddr, got); err != nil {
				t.Fatal(err)
			}
			want, ok := shadow[lineAddr]
			if !ok {
				want = make([]byte, geometry.LineSize)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("iteration %d: line %#x mismatch", i, lineAddr)
			}
		}
	}
}

// TestEnginesInteroperability: both engines satisfy Engine and behave
// identically at the API level for a simple workload.
func TestEnginesInteroperability(t *testing.T) {
	engines := map[string]Engine{
		"counter-mode": MustCounterMode(testRegion, testKeys(), FullProtection),
		"direct":       MustDirect(testRegion, testKeys(), FullProtection),
	}
	data := make([]byte, 2*geometry.LineSize)
	fillPattern(data, 0x99)
	for name, e := range engines {
		if err := e.Write(0x1000, data); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := make([]byte, len(data))
		if err := e.Read(0x1000, got); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s: span mismatch", name)
		}
	}
}

func BenchmarkDirectWriteLine(b *testing.B) {
	e := MustDirect(1<<20, testKeys(), FullProtection)
	buf := make([]byte, geometry.LineSize)
	b.SetBytes(geometry.LineSize)
	for i := 0; i < b.N; i++ {
		addr := uint64(i%8192) * geometry.LineSize
		if err := e.WriteLine(addr, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDirectReadLine(b *testing.B) {
	e := MustDirect(1<<20, testKeys(), FullProtection)
	buf := make([]byte, geometry.LineSize)
	for a := uint64(0); a < 1<<20; a += geometry.LineSize {
		if err := e.WriteLine(a, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.SetBytes(geometry.LineSize)
	for i := 0; i < b.N; i++ {
		addr := uint64(i%8192) * geometry.LineSize
		if err := e.ReadLine(addr, buf); err != nil {
			b.Fatal(err)
		}
	}
}
