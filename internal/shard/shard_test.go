package shard

import (
	"sync/atomic"
	"testing"
)

// TestPoolRunsEveryWorker: each Fork must invoke the closure exactly
// once per worker, with distinct worker indices.
func TestPoolRunsEveryWorker(t *testing.T) {
	const n = 7
	p := NewPool(n)
	defer p.Close()
	for round := 0; round < 100; round++ {
		var seen [n]int32
		p.Run(func(w int) {
			atomic.AddInt32(&seen[w], 1)
		})
		for w, c := range seen {
			if c != 1 {
				t.Fatalf("round %d: worker %d ran %d times", round, w, c)
			}
		}
	}
}

// TestPoolBarrierVisibility: writes made by workers before Join must
// be visible to the coordinator after Join without extra
// synchronization, and coordinator writes before Fork must be visible
// to workers — the happens-before edges the parallel engine relies on.
func TestPoolBarrierVisibility(t *testing.T) {
	const n = 4
	p := NewPool(n)
	defer p.Close()
	input := make([]uint64, n)
	output := make([]uint64, n)
	var total uint64
	for round := uint64(1); round <= 500; round++ {
		for w := range input {
			input[w] = round * uint64(w+1)
		}
		p.Fork(func(w int) {
			output[w] = input[w] * 2
		})
		// Coordinator work overlapping the window.
		total += round
		p.Join()
		for w := range output {
			if want := round * uint64(w+1) * 2; output[w] != want {
				t.Fatalf("round %d: worker %d wrote %d, want %d", round, w, output[w], want)
			}
		}
	}
}

// TestPoolSizeOne: a single-worker pool must still complete windows
// (degenerate sharding).
func TestPoolSizeOne(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	ran := false
	p.Run(func(w int) {
		if w != 0 {
			t.Errorf("worker index = %d, want 0", w)
		}
		ran = true
	})
	if !ran {
		t.Fatal("closure did not run")
	}
}

func TestPoolRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPool(0) did not panic")
		}
	}()
	NewPool(0)
}
