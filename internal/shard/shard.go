// Package shard provides the persistent worker pool behind the
// simulator's barrier-synchronized parallel partition engine. A Pool
// owns N goroutines that sit parked between windows; each Fork hands
// every worker the same closure (called with its worker index), and
// Join blocks until all of them have returned.
//
// Concurrency contract: the pool provides the only synchronization the
// parallel engine relies on. Fork happens-before every worker's
// closure invocation, and every closure return happens-before Join
// returns (both edges ride on channel operations), so state a worker
// wrote during a window is visible to the coordinator after Join — and
// state the coordinator wrote before Fork is visible to the workers —
// without any additional locking. Between a Fork and its Join the
// caller must not touch data a worker may be writing. Pools are not
// reentrant: calls to Fork/Join/Close must come from one goroutine,
// and every Fork must be matched by a Join before the next Fork or
// Close.
//
// Workers park on channel receives rather than spinning, so a pool
// wider than GOMAXPROCS (or a pool on a single-core host) degrades
// into cheap sequential dispatch instead of burning cycles.
package shard

// Pool is a fixed set of parked worker goroutines. The zero value is
// not usable; use NewPool.
type Pool struct {
	work []chan func(int)
	done chan struct{}
}

// NewPool starts n parked workers. n must be positive.
func NewPool(n int) *Pool {
	if n <= 0 {
		panic("shard: pool size must be positive")
	}
	p := &Pool{done: make(chan struct{}, n)}
	for w := 0; w < n; w++ {
		ch := make(chan func(int), 1)
		p.work = append(p.work, ch)
		go func(w int, ch chan func(int)) {
			for fn := range ch {
				fn(w)
				p.done <- struct{}{}
			}
		}(w, ch)
	}
	return p
}

// Size reports the worker count.
func (p *Pool) Size() int { return len(p.work) }

// Fork dispatches fn to every worker; each invocation receives the
// worker's index in [0, Size). Fork returns immediately so the caller
// can do its own share of the window before Join.
func (p *Pool) Fork(fn func(worker int)) {
	for _, ch := range p.work {
		ch <- fn
	}
}

// Join blocks until every worker has finished the closure from the
// matching Fork.
func (p *Pool) Join() {
	for range p.work {
		<-p.done
	}
}

// Run is Fork immediately followed by Join.
func (p *Pool) Run(fn func(worker int)) {
	p.Fork(fn)
	p.Join()
}

// Close releases the workers. The pool must be quiescent (no Fork
// without its Join). Close is idempotent-unsafe: call it exactly once.
func (p *Pool) Close() {
	for _, ch := range p.work {
		close(ch)
	}
}
