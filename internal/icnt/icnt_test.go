package icnt

import "testing"

func TestFixedLatency(t *testing.T) {
	q := NewDelayQueue[int](5)
	q.Push(10, 42)
	for now := uint64(10); now < 15; now++ {
		if got := q.PopReady(now); len(got) != 0 {
			t.Fatalf("item ready early at %d: %v", now, got)
		}
	}
	got := q.PopReady(15)
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("PopReady(15) = %v", got)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestOrderPreserved(t *testing.T) {
	q := NewDelayQueue[int](2)
	q.Push(0, 1)
	q.Push(0, 2)
	q.Push(1, 3)
	got := q.PopReady(2)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("PopReady(2) = %v", got)
	}
	got = q.PopReady(3)
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("PopReady(3) = %v", got)
	}
}

func TestPushAfter(t *testing.T) {
	q := NewDelayQueue[string](3)
	q.PushAfter(10, 7, "x")
	if got := q.PopReady(19); len(got) != 0 {
		t.Fatal("early")
	}
	if got := q.PopReady(20); len(got) != 1 || got[0] != "x" {
		t.Fatalf("got %v", got)
	}
}

func TestZeroLatency(t *testing.T) {
	q := NewDelayQueue[int](0)
	q.Push(5, 9)
	if got := q.PopReady(5); len(got) != 1 {
		t.Fatalf("zero-latency item not ready: %v", got)
	}
}

// TestCompaction: the internal buffer must not grow without bound
// under sustained traffic.
func TestCompaction(t *testing.T) {
	q := NewDelayQueue[int](1)
	for now := uint64(0); now < 100000; now++ {
		q.Push(now, int(now))
		q.PopReady(now) // drains the item pushed at now-1
	}
	if len(q.items) > 5000 {
		t.Fatalf("queue buffer grew to %d entries", len(q.items))
	}
}

func TestLen(t *testing.T) {
	q := NewDelayQueue[int](4)
	if q.Len() != 0 {
		t.Fatal("fresh queue not empty")
	}
	q.Push(0, 1)
	q.Push(0, 2)
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	q.PopReady(4)
	if q.Len() != 0 {
		t.Fatalf("Len after drain = %d", q.Len())
	}
}

// drainReference replays a queue cycle-by-cycle with PopReady and
// records (cycle, item) pairs — the ground truth DrainThrough must
// reproduce.
type delivery struct {
	at   uint64
	item int
}

func popReference(q *DelayQueue[int], from, through uint64) []delivery {
	var out []delivery
	for now := from; now <= through; now++ {
		for _, it := range q.PopReady(now) {
			out = append(out, delivery{now, it})
		}
	}
	return out
}

// TestDrainThroughMatchesPopReady: pre-draining a window must deliver
// the same items at the same effective cycles as popping every cycle,
// including head-of-line blocking from out-of-order ready times
// (PushAfter extras) and items left behind for the next window.
func TestDrainThroughMatchesPopReady(t *testing.T) {
	build := func() *DelayQueue[int] {
		q := NewDelayQueue[int](3)
		q.Push(0, 1)        // ready 3
		q.PushAfter(0, 9, 2) // ready 12, blocks...
		q.Push(1, 3)        // ready 4, but behind 2 -> effective 12
		q.PushAfter(2, 1, 4) // ready 6 -> effective 12
		q.Push(11, 5)       // ready 14
		q.Push(20, 6)       // ready 23, beyond the window
		return q
	}
	ref := popReference(build(), 0, 15)

	q := build()
	var got []delivery
	q.DrainThrough(15, func(at uint64, it int) {
		got = append(got, delivery{at, it})
	})
	if len(got) != len(ref) {
		t.Fatalf("drained %d items, reference delivered %d (%v vs %v)", len(got), len(ref), got, ref)
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("delivery %d: drain %v, reference %v", i, got[i], ref[i])
		}
	}
	if q.Len() != 1 {
		t.Fatalf("residual Len = %d, want 1", q.Len())
	}
	// The leftover item drains in the next window at its own cycle.
	q.DrainThrough(30, func(at uint64, it int) {
		if at != 23 || it != 6 {
			t.Fatalf("residual drained at %d (%d), want 23 (6)", at, it)
		}
	})
}

// TestDrainThroughWindowed: splitting one drain into consecutive
// windows must deliver the same schedule as one big drain — the
// running maximum needs no cross-call state.
func TestDrainThroughWindowed(t *testing.T) {
	build := func() *DelayQueue[int] {
		q := NewDelayQueue[int](2)
		for i := 0; i < 40; i++ {
			q.PushAfter(uint64(i), uint64((i*7)%5), i)
		}
		return q
	}
	var whole []delivery
	build().DrainThrough(100, func(at uint64, it int) { whole = append(whole, delivery{at, it}) })

	q := build()
	var windowed []delivery
	for limit := uint64(0); limit <= 100; limit += 7 {
		q.DrainThrough(limit, func(at uint64, it int) { windowed = append(windowed, delivery{at, it}) })
	}
	if len(whole) != len(windowed) {
		t.Fatalf("whole drain %d items, windowed %d", len(whole), len(windowed))
	}
	for i := range whole {
		if whole[i] != windowed[i] {
			t.Fatalf("delivery %d: whole %v, windowed %v", i, whole[i], windowed[i])
		}
	}
}

// TestDrainThroughTap: a delivery tap must behave identically under
// DrainThrough and PopReady — drops vanish, duplicates visit twice,
// stats count both.
func TestDrainThroughTap(t *testing.T) {
	q := NewDelayQueue[int](1)
	q.SetTap(func(it int) int {
		switch {
		case it%3 == 0:
			return 0
		case it%3 == 1:
			return 2
		}
		return 1
	})
	for i := 0; i < 9; i++ {
		q.Push(uint64(i), i)
	}
	var got []int
	q.DrainThrough(100, func(at uint64, it int) { got = append(got, it) })
	want := []int{1, 1, 2, 4, 4, 5, 7, 7, 8}
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v, want %v", got, want)
		}
	}
	if q.Stats.Dropped != 3 || q.Stats.Duplicated != 3 || q.Stats.Delivered != 9 {
		t.Fatalf("stats = %+v", q.Stats)
	}
}

// TestPushAt: an item re-injected with a precomputed ready cycle must
// behave exactly like the original push it replays.
func TestPushAt(t *testing.T) {
	q := NewDelayQueue[int](5)
	q.PushAt(12, 1) // as if pushed at 7
	q.Push(8, 2)    // ready 13
	if got := q.PopReady(11); len(got) != 0 {
		t.Fatalf("early delivery: %v", got)
	}
	if got := q.PopReady(12); len(got) != 1 || got[0] != 1 {
		t.Fatalf("PopReady(12) = %v", got)
	}
	if got := q.PopReady(13); len(got) != 1 || got[0] != 2 {
		t.Fatalf("PopReady(13) = %v", got)
	}
	if q.Stats.Pushed != 2 {
		t.Fatalf("Pushed = %d", q.Stats.Pushed)
	}
}
