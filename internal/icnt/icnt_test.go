package icnt

import "testing"

func TestFixedLatency(t *testing.T) {
	q := NewDelayQueue[int](5)
	q.Push(10, 42)
	for now := uint64(10); now < 15; now++ {
		if got := q.PopReady(now); len(got) != 0 {
			t.Fatalf("item ready early at %d: %v", now, got)
		}
	}
	got := q.PopReady(15)
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("PopReady(15) = %v", got)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestOrderPreserved(t *testing.T) {
	q := NewDelayQueue[int](2)
	q.Push(0, 1)
	q.Push(0, 2)
	q.Push(1, 3)
	got := q.PopReady(2)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("PopReady(2) = %v", got)
	}
	got = q.PopReady(3)
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("PopReady(3) = %v", got)
	}
}

func TestPushAfter(t *testing.T) {
	q := NewDelayQueue[string](3)
	q.PushAfter(10, 7, "x")
	if got := q.PopReady(19); len(got) != 0 {
		t.Fatal("early")
	}
	if got := q.PopReady(20); len(got) != 1 || got[0] != "x" {
		t.Fatalf("got %v", got)
	}
}

func TestZeroLatency(t *testing.T) {
	q := NewDelayQueue[int](0)
	q.Push(5, 9)
	if got := q.PopReady(5); len(got) != 1 {
		t.Fatalf("zero-latency item not ready: %v", got)
	}
}

// TestCompaction: the internal buffer must not grow without bound
// under sustained traffic.
func TestCompaction(t *testing.T) {
	q := NewDelayQueue[int](1)
	for now := uint64(0); now < 100000; now++ {
		q.Push(now, int(now))
		q.PopReady(now) // drains the item pushed at now-1
	}
	if len(q.items) > 5000 {
		t.Fatalf("queue buffer grew to %d entries", len(q.items))
	}
}

func TestLen(t *testing.T) {
	q := NewDelayQueue[int](4)
	if q.Len() != 0 {
		t.Fatal("fresh queue not empty")
	}
	q.Push(0, 1)
	q.Push(0, 2)
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	q.PopReady(4)
	if q.Len() != 0 {
		t.Fatalf("Len after drain = %d", q.Len())
	}
}
