// Package icnt models the on-chip interconnect between the SMs and
// the L2 banks as a fixed-latency, FIFO delay queue per direction.
// Bandwidth contention on the NoC is not the paper's subject (the
// bottlenecks under study are the L2, the metadata caches, and DRAM),
// so the interconnect adds latency and ordering only.
//
// Concurrency and aliasing contract: a DelayQueue is single-owner
// state — all methods must be called from one goroutine at a time,
// with any cross-goroutine handoff externally synchronized (the
// parallel engine only touches its queues between windows, under the
// shard pool's barrier). The slice PopReady returns is scratch owned
// by the queue, valid only until the next PopReady on the same queue;
// callers consume it immediately and never retain it. The fixed
// latency also gives the parallel engine its conservative lookahead:
// nothing pushed at cycle t can be delivered before t+latency, so two
// components that only communicate through a queue cannot affect each
// other within a window shorter than the latency.
package icnt

// DelayQueue delivers items a fixed number of cycles after they are
// pushed, preserving push order among items that become ready on the
// same cycle. The zero value is not usable; use NewDelayQueue.
type DelayQueue[T any] struct {
	latency uint64
	items   []entry[T]
	head    int
	tap     func(T) int
	// out is PopReady's reusable scratch; see the PopReady aliasing
	// contract.
	out []T

	// Stats counts what the queue moved (and what a fault tap did to
	// it); cheap enough to keep unconditionally.
	Stats Stats
}

// Stats counts queue traffic.
type Stats struct {
	Pushed, Delivered uint64
	// Dropped/Duplicated count fault-tap interventions (see SetTap).
	Dropped, Duplicated uint64
}

type entry[T any] struct {
	readyAt uint64
	item    T
}

// NewDelayQueue creates a queue with the given latency in cycles.
func NewDelayQueue[T any](latency uint64) *DelayQueue[T] {
	return &DelayQueue[T]{latency: latency}
}

// SetTap installs a delivery interceptor used by fault injection: at
// delivery time tap(item) returns how many copies of the item to
// deliver — 0 drops it (a lost message), 1 is normal, >1 duplicates
// it (a replayed message). A nil tap (the default) costs nothing.
func (q *DelayQueue[T]) SetTap(tap func(T) int) { q.tap = tap }

// Push enqueues an item at cycle now; it becomes ready at now+latency.
func (q *DelayQueue[T]) Push(now uint64, item T) {
	q.Stats.Pushed++
	q.items = append(q.items, entry[T]{readyAt: now + q.latency, item: item})
}

// PushAfter enqueues with an extra delay on top of the base latency.
func (q *DelayQueue[T]) PushAfter(now uint64, extra uint64, item T) {
	q.Stats.Pushed++
	q.items = append(q.items, entry[T]{readyAt: now + q.latency + extra, item: item})
}

// PushAt enqueues an item whose absolute ready cycle has already been
// computed (push cycle + latency + extra). It exists for the parallel
// engine's barrier merge, which replays a window's pushes in canonical
// order after the fact; FIFO position is append order, exactly as if
// the item had been pushed with Push/PushAfter at its original cycle.
func (q *DelayQueue[T]) PushAt(readyAt uint64, item T) {
	q.Stats.Pushed++
	q.items = append(q.items, entry[T]{readyAt: readyAt, item: item})
}

// PopReady returns all items ready at cycle now, in arrival order.
// Items are pushed with monotonically non-decreasing ready times as
// long as callers push with non-decreasing now, which the simulator
// guarantees; the queue exploits that for O(1) amortized pops.
//
// Aliasing contract: the returned slice is scratch owned by the queue
// and is valid only until the next PopReady call on the same queue.
// Callers must consume it immediately (the cycle loop drains it in the
// same step) and must not retain it or push-back items that alias it.
func (q *DelayQueue[T]) PopReady(now uint64) []T {
	out := q.out[:0]
	for q.head < len(q.items) && q.items[q.head].readyAt <= now {
		item := q.items[q.head].item
		q.head++
		copies := 1
		if q.tap != nil {
			copies = q.tap(item)
			switch {
			case copies <= 0:
				q.Stats.Dropped++
			case copies > 1:
				q.Stats.Duplicated += uint64(copies - 1)
			}
		}
		for c := 0; c < copies; c++ {
			out = append(out, item)
			q.Stats.Delivered++
		}
	}
	q.maybeCompact()
	q.out = out
	return out
}

// maybeCompact reclaims the consumed prefix once it dominates the
// backing array.
func (q *DelayQueue[T]) maybeCompact() {
	if q.head > 1024 && q.head*2 > len(q.items) {
		n := copy(q.items, q.items[q.head:])
		clearTail(q.items[n:])
		q.items = q.items[:n]
		q.head = 0
	}
}

// DrainThrough delivers ahead of time every item whose effective
// delivery cycle is <= limit, calling visit(at, item) for each in FIFO
// order, where at is the cycle a per-cycle PopReady loop would have
// returned it. Because PopReady only pops from the head, an item
// behind a later-ready head is blocked until that head pops: the
// effective delivery cycle of item j is the running maximum of ready
// cycles from the head through j. DrainThrough reproduces that
// exactly, so pre-draining a window at a barrier is observationally
// identical to popping cycle-by-cycle inside it.
//
// The running maximum needs no cross-call state: the drain stops at
// the first item whose effective cycle exceeds limit, and since every
// drained item's effective cycle was <= limit, the stopping item's own
// ready cycle must exceed limit — it dominates the drained prefix, so
// a later drain restarting the maximum from the new head is exact.
//
// A delivery tap (SetTap) is applied per item just as in PopReady:
// visit runs once per surviving copy and Stats count drops and
// duplicates identically.
func (q *DelayQueue[T]) DrainThrough(limit uint64, visit func(at uint64, item T)) {
	eff := uint64(0)
	for q.head < len(q.items) {
		e := q.items[q.head]
		if e.readyAt > eff {
			eff = e.readyAt
		}
		if eff > limit {
			break
		}
		q.head++
		copies := 1
		if q.tap != nil {
			copies = q.tap(e.item)
			switch {
			case copies <= 0:
				q.Stats.Dropped++
			case copies > 1:
				q.Stats.Duplicated += uint64(copies - 1)
			}
		}
		for c := 0; c < copies; c++ {
			q.Stats.Delivered++
			visit(eff, e.item)
		}
	}
	q.maybeCompact()
}

// clearTail zeroes vacated entries so pointer-bearing payloads do not
// outlive their delivery.
func clearTail[T any](s []entry[T]) {
	var zero entry[T]
	for i := range s {
		s[i] = zero
	}
}

// Delayed is one undelivered queue item in a checkpoint snapshot:
// the item together with its absolute ready cycle.
type Delayed[T any] struct {
	ReadyAt uint64
	Item    T
}

// Snapshot returns the undelivered items — items[head:] with their
// absolute ready cycles — as a fresh slice sharing nothing with the
// queue. Restoring it into an empty queue reproduces delivery exactly:
// PopReady and DrainThrough only ever consume from the head, so the
// consumed prefix carries no future behavior, and head-blocking (an
// item behind a later-ready head waits for it) depends only on the
// order and ready cycles of the remaining items, which the snapshot
// preserves verbatim.
func (q *DelayQueue[T]) Snapshot() []Delayed[T] {
	if q.head >= len(q.items) {
		return nil
	}
	out := make([]Delayed[T], 0, len(q.items)-q.head)
	for _, e := range q.items[q.head:] {
		out = append(out, Delayed[T]{ReadyAt: e.readyAt, Item: e.item})
	}
	return out
}

// Restore replaces the queue's contents with the given snapshot and
// statistics. The latency and any installed tap are kept; the scratch
// buffer is reset.
func (q *DelayQueue[T]) Restore(items []Delayed[T], stats Stats) {
	q.items = q.items[:0]
	for _, d := range items {
		q.items = append(q.items, entry[T]{readyAt: d.ReadyAt, item: d.Item})
	}
	q.head = 0
	q.out = nil
	q.Stats = stats
}

// NextReady returns the cycle at which the head item becomes ready, or
// ^uint64(0) when the queue is empty. Because PopReady only ever
// delivers from the head, this is exactly the next cycle a PopReady
// can return anything, even when PushAfter extras make ready times
// non-monotone behind the head.
func (q *DelayQueue[T]) NextReady() uint64 {
	if q.head >= len(q.items) {
		return ^uint64(0)
	}
	return q.items[q.head].readyAt
}

// Len reports items still queued.
func (q *DelayQueue[T]) Len() int { return len(q.items) - q.head }
