// Package faults provides deterministic, seeded fault injection for
// the cycle-level simulator — the active physical adversary of the
// paper's Section II-B threat model, expressed at cycle granularity.
//
// A Plan describes *what* the adversary does (which sites, at what
// rate, from which seed); an Injector executes it. Every injection
// decision is a pure function of (seed, site, per-site event counter,
// address), so a run with a given plan is exactly reproducible, a run
// with a nil plan is untouched, and a plan with Rate 0 is
// byte-identical to no plan at all (the simulator never perturbs
// timing on the no-fault path).
//
// The package carries no simulator dependencies: internal/sim,
// internal/icnt and internal/dram consume it behind nil checks, and
// the functional ground-truth experiment replays the same plan
// against internal/secmem's real engines.
//
// Concurrency and aliasing contract: an Injector is single-owner
// state — its per-site event counters advance in global simulation
// order, one goroutine at a time. That ordering is exactly what
// sharded execution cannot preserve, so the parallel partition engine
// falls back to the sequential engine whenever a fault plan is
// active.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Site identifies one class of injection point in the memory
// hierarchy.
type Site int

// Injection sites.
const (
	// SiteDRAMData flips bits in a DRAM-resident *data* line as it is
	// read (an active adversary rewriting the DIMM contents).
	SiteDRAMData Site = iota
	// SiteDRAMMeta flips bits in a DRAM-resident *metadata* line
	// (counter, MAC, or integrity-tree storage) as it is read.
	SiteDRAMMeta
	// SiteMetaFill corrupts a metadata-cache fill on the way into the
	// cache (a bus/row-hammer style disturbance between the DRAM pins
	// and the on-chip metadata cache).
	SiteMetaFill
	// SiteIcntDrop drops an in-flight message at an interconnect
	// queue (a lost response; the victim request never completes).
	SiteIcntDrop
	// SiteIcntDup duplicates an in-flight message at an interconnect
	// queue (a replayed response).
	SiteIcntDup
	// NumSites bounds the site space for per-site accounting arrays.
	NumSites
)

var siteNames = [NumSites]string{
	SiteDRAMData: "data",
	SiteDRAMMeta: "meta",
	SiteMetaFill: "metafill",
	SiteIcntDrop: "drop",
	SiteIcntDup:  "dup",
}

func (s Site) String() string {
	if s >= 0 && s < NumSites {
		return siteNames[s]
	}
	return fmt.Sprintf("site(%d)", int(s))
}

// SiteMask is a bit set of Sites.
type SiteMask uint32

// Mask returns the mask bit of a site.
func (s Site) Mask() SiteMask { return 1 << uint(s) }

// Has reports whether the mask includes site s.
func (m SiteMask) Has(s Site) bool { return m&s.Mask() != 0 }

// AllSites enables every injection site.
const AllSites SiteMask = 1<<uint(NumSites) - 1

// FlipSites are the bit-corruption sites (no drops/duplicates): the
// subset whose faults a MAC/tree design is supposed to *detect*
// rather than merely survive.
const FlipSites = SiteMask(1<<uint(SiteDRAMData) | 1<<uint(SiteDRAMMeta) | 1<<uint(SiteMetaFill))

func (m SiteMask) String() string {
	if m == 0 {
		return "none"
	}
	var parts []string
	for s := Site(0); s < NumSites; s++ {
		if m.Has(s) {
			parts = append(parts, s.String())
		}
	}
	return strings.Join(parts, ",")
}

// ParseSites parses a comma-separated site list ("data,meta,drop").
// The special names "all" and "flips" expand to AllSites and
// FlipSites.
func ParseSites(spec string) (SiteMask, error) {
	var m SiteMask
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		switch tok {
		case "all":
			m |= AllSites
			continue
		case "flips":
			m |= FlipSites
			continue
		}
		found := false
		for s := Site(0); s < NumSites; s++ {
			if tok == siteNames[s] {
				m |= s.Mask()
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("faults: unknown site %q (known: %s,all,flips)", tok, AllSites.String())
		}
	}
	return m, nil
}

// Plan is a deterministic fault-injection campaign: a seed, a per-
// opportunity rate, and the set of sites the adversary attacks. The
// zero value (and a nil *Plan) injects nothing. Plan is a plain value
// struct so it participates in the canonical JSON memo key of a
// simulator Config.
type Plan struct {
	// Seed selects the deterministic fault stream.
	Seed uint64
	// Rate is the probability an opportunity at an enabled site
	// faults, in [0,1]. 1 faults every opportunity.
	Rate float64
	// Sites selects which injection points are active.
	Sites SiteMask
}

// Enabled reports whether the plan can ever inject a fault.
func (p *Plan) Enabled() bool {
	return p != nil && p.Rate > 0 && p.Sites != 0
}

// Validate reports malformed plans.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	if p.Rate < 0 || p.Rate > 1 {
		return fmt.Errorf("faults: rate %v outside [0,1]", p.Rate)
	}
	if p.Sites&^AllSites != 0 {
		return fmt.Errorf("faults: unknown site bits %#x", uint32(p.Sites&^AllSites))
	}
	return nil
}

// String renders the plan in the -faults CLI syntax.
func (p *Plan) String() string {
	if p == nil {
		return "none"
	}
	return fmt.Sprintf("seed=%d,rate=%g,sites=%s", p.Seed, p.Rate, p.Sites)
}

// ParsePlan parses the -faults CLI syntax:
// "seed=N,rate=F,sites=a,b,c" (sites consumes the rest of the spec;
// keys may appear in any order before it). An empty spec is a nil
// plan.
func ParsePlan(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return nil, nil
	}
	p := &Plan{Sites: FlipSites, Rate: 1e-3}
	rest := spec
	for rest != "" {
		var kv string
		if i := strings.Index(rest, ","); i >= 0 {
			kv, rest = rest[:i], rest[i+1:]
		} else {
			kv, rest = rest, ""
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("faults: malformed %q (want key=value)", kv)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseUint(v, 0, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q: %v", v, err)
			}
			p.Seed = n
		case "rate":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad rate %q: %v", v, err)
			}
			p.Rate = f
		case "sites":
			// sites consumes the remainder: site lists are themselves
			// comma-separated.
			if rest != "" {
				v = v + "," + rest
				rest = ""
			}
			m, err := ParseSites(v)
			if err != nil {
				return nil, err
			}
			p.Sites = m
		default:
			return nil, fmt.Errorf("faults: unknown key %q (want seed/rate/sites)", k)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Stats counts injections per site.
type Stats struct {
	Injected [NumSites]uint64
}

// Total sums injections over all sites.
func (s Stats) Total() uint64 {
	var t uint64
	for _, v := range s.Injected {
		t += v
	}
	return t
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	for i := range s.Injected {
		s.Injected[i] += other.Injected[i]
	}
}

// splitmix64 is the same deterministic mixer internal/trace uses for
// irregular access patterns.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Injector executes a Plan. One injector serves one single-threaded
// simulator instance (one GPU); two injectors built from the same
// plan make identical decisions given identical event streams.
type Injector struct {
	seed      uint64
	threshold uint64 // Fire iff hash < threshold
	sites     SiteMask
	// events counts opportunities per site; it is part of the
	// deterministic decision input, so the n-th opportunity at a site
	// always resolves the same way for a given seed.
	events [NumSites]uint64
	stats  Stats
}

// NewInjector builds an injector for p, or nil when the plan cannot
// inject (nil, rate 0, or no sites) — callers gate every hook on a
// nil check so the no-fault path costs nothing.
func NewInjector(p *Plan) *Injector {
	if !p.Enabled() {
		return nil
	}
	thr := uint64(p.Rate * float64(1<<63) * 2)
	if p.Rate >= 1 {
		thr = ^uint64(0)
	}
	return &Injector{seed: splitmix64(p.Seed ^ 0xfa017), threshold: thr, sites: p.Sites}
}

// Fire decides whether the current opportunity at site faults. addr
// folds the affected address into the decision so campaigns spread
// over the address space rather than clustering on event parity.
// Deterministic: the decision depends only on the plan and the
// sequence of prior Fire calls for the same site.
func (in *Injector) Fire(site Site, addr uint64) bool {
	if !in.sites.Has(site) {
		return false
	}
	n := in.events[site]
	in.events[site]++
	h := splitmix64(in.seed ^ uint64(site)<<56 ^ n*0x9e3779b97f4a7c15 ^ splitmix64(addr))
	if in.threshold != ^uint64(0) && h >= in.threshold {
		return false
	}
	in.stats.Injected[site]++
	return true
}

// Stats reports the injections performed so far.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return in.stats
}

// FlipAddrs derives n deterministic byte addresses (with a bit index
// each) inside [0, limit) from the plan's seed — the functional
// ground-truth experiments replay the same campaign against a real
// secmem engine by flipping exactly these bits in its backing store.
// Addresses are returned sorted and deduplicated, so n is an upper
// bound.
func (p *Plan) FlipAddrs(n int, limit uint64) []BitFlip {
	if p == nil || n <= 0 || limit == 0 {
		return nil
	}
	seen := make(map[uint64]bool, n)
	var out []BitFlip
	base := splitmix64(p.Seed ^ 0xb17f11b5)
	for i := 0; len(out) < n && i < 4*n+16; i++ {
		h := splitmix64(base + uint64(i)*0x9e3779b97f4a7c15)
		addr := h % limit
		if seen[addr] {
			continue
		}
		seen[addr] = true
		out = append(out, BitFlip{Addr: addr, Bit: uint(h >> 56 & 7)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// BitFlip is one byte-granular corruption: flip bit Bit of the byte
// at Addr.
type BitFlip struct {
	Addr uint64
	Bit  uint
}
