package faults

import (
	"math"
	"testing"
)

func TestParseSites(t *testing.T) {
	cases := []struct {
		spec string
		want SiteMask
	}{
		{"data", SiteDRAMData.Mask()},
		{"data,meta", SiteDRAMData.Mask() | SiteDRAMMeta.Mask()},
		{"drop,dup", SiteIcntDrop.Mask() | SiteIcntDup.Mask()},
		{"all", AllSites},
		{"flips", FlipSites},
		{"metafill", SiteMetaFill.Mask()},
	}
	for _, tc := range cases {
		got, err := ParseSites(tc.spec)
		if err != nil {
			t.Fatalf("ParseSites(%q): %v", tc.spec, err)
		}
		if got != tc.want {
			t.Errorf("ParseSites(%q) = %v, want %v", tc.spec, got, tc.want)
		}
	}
	if _, err := ParseSites("data,bogus"); err == nil {
		t.Error("unknown site accepted")
	}
}

func TestSiteMaskRoundTrip(t *testing.T) {
	for m := SiteMask(1); m <= AllSites; m++ {
		back, err := ParseSites(m.String())
		if err != nil {
			t.Fatalf("mask %v: %v", m, err)
		}
		if back != m {
			t.Fatalf("mask %v round-trips to %v", m, back)
		}
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("seed=7,rate=0.25,sites=data,meta")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.Rate != 0.25 || p.Sites != SiteDRAMData.Mask()|SiteDRAMMeta.Mask() {
		t.Fatalf("parsed %+v", p)
	}
	if p2, err := ParsePlan(""); err != nil || p2 != nil {
		t.Fatalf("empty spec: %v, %v", p2, err)
	}
	if p2, err := ParsePlan("none"); err != nil || p2 != nil {
		t.Fatalf("none spec: %v, %v", p2, err)
	}
	for _, bad := range []string{"seed=x", "rate=2,sites=data", "sites=huh", "what=1"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
	// String() output re-parses to the same plan.
	back, err := ParsePlan(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if *back != *p {
		t.Fatalf("round trip: %+v != %+v", back, p)
	}
}

func TestPlanValidate(t *testing.T) {
	var nilPlan *Plan
	if err := nilPlan.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (&Plan{Rate: -0.1}).Validate(); err == nil {
		t.Error("negative rate accepted")
	}
	if err := (&Plan{Rate: 1.5}).Validate(); err == nil {
		t.Error("rate > 1 accepted")
	}
	if err := (&Plan{Rate: 0.5, Sites: AllSites + 1}).Validate(); err == nil {
		t.Error("unknown site bits accepted")
	}
}

func TestInjectorNilWhenDisabled(t *testing.T) {
	if NewInjector(nil) != nil {
		t.Error("nil plan built an injector")
	}
	if NewInjector(&Plan{Rate: 0, Sites: AllSites}) != nil {
		t.Error("rate-0 plan built an injector")
	}
	if NewInjector(&Plan{Rate: 0.5}) != nil {
		t.Error("no-site plan built an injector")
	}
}

// TestInjectorDeterministic: two injectors from the same plan make
// identical decisions over identical event streams.
func TestInjectorDeterministic(t *testing.T) {
	plan := &Plan{Seed: 42, Rate: 0.01, Sites: AllSites}
	a, b := NewInjector(plan), NewInjector(plan)
	for i := 0; i < 100000; i++ {
		site := Site(i % int(NumSites))
		addr := uint64(i) * 32
		if a.Fire(site, addr) != b.Fire(site, addr) {
			t.Fatalf("decision %d diverged", i)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if a.Stats().Total() == 0 {
		t.Fatal("no injections at rate 0.01 over 100k events")
	}
}

// TestInjectorRate: the observed rate tracks the plan rate.
func TestInjectorRate(t *testing.T) {
	const n = 200000
	for _, rate := range []float64{0.001, 0.05, 0.5, 1.0} {
		in := NewInjector(&Plan{Seed: 1, Rate: rate, Sites: SiteDRAMData.Mask()})
		for i := 0; i < n; i++ {
			in.Fire(SiteDRAMData, uint64(i)*64)
		}
		got := float64(in.Stats().Injected[SiteDRAMData]) / n
		if math.Abs(got-rate) > 0.2*rate+0.001 {
			t.Errorf("rate %g: observed %g", rate, got)
		}
	}
}

// TestInjectorRateOne: rate 1 fires on every opportunity at an
// enabled site and never at a disabled one.
func TestInjectorRateOne(t *testing.T) {
	in := NewInjector(&Plan{Rate: 1, Sites: SiteDRAMData.Mask()})
	for i := 0; i < 1000; i++ {
		if !in.Fire(SiteDRAMData, uint64(i)) {
			t.Fatal("rate-1 opportunity did not fire")
		}
		if in.Fire(SiteIcntDrop, uint64(i)) {
			t.Fatal("disabled site fired")
		}
	}
	if got := in.Stats().Injected[SiteDRAMData]; got != 1000 {
		t.Fatalf("injected %d, want 1000", got)
	}
}

func TestFlipAddrs(t *testing.T) {
	p := &Plan{Seed: 9}
	flips := p.FlipAddrs(64, 1<<20)
	if len(flips) != 64 {
		t.Fatalf("got %d flips", len(flips))
	}
	seen := map[uint64]bool{}
	for i, f := range flips {
		if f.Addr >= 1<<20 {
			t.Fatalf("flip %d out of range: %#x", i, f.Addr)
		}
		if f.Bit > 7 {
			t.Fatalf("flip %d bit %d", i, f.Bit)
		}
		if seen[f.Addr] {
			t.Fatalf("duplicate address %#x", f.Addr)
		}
		seen[f.Addr] = true
		if i > 0 && flips[i-1].Addr > f.Addr {
			t.Fatal("addresses not sorted")
		}
	}
	again := p.FlipAddrs(64, 1<<20)
	for i := range flips {
		if flips[i] != again[i] {
			t.Fatal("FlipAddrs not deterministic")
		}
	}
	if (&Plan{Seed: 10}).FlipAddrs(64, 1<<20)[0] == flips[0] && (&Plan{Seed: 10}).FlipAddrs(64, 1<<20)[1] == flips[1] {
		t.Fatal("different seeds produced the same campaign")
	}
	var nilPlan *Plan
	if nilPlan.FlipAddrs(4, 100) != nil {
		t.Fatal("nil plan produced flips")
	}
}

func TestStatsAdd(t *testing.T) {
	var a, b Stats
	a.Injected[SiteDRAMData] = 3
	b.Injected[SiteDRAMData] = 4
	b.Injected[SiteIcntDrop] = 2
	a.Add(b)
	if a.Injected[SiteDRAMData] != 7 || a.Injected[SiteIcntDrop] != 2 || a.Total() != 9 {
		t.Fatalf("add: %+v", a)
	}
}
