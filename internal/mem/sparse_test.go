package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestNewSparseValidation(t *testing.T) {
	for _, bad := range []uint64{0, 1, PageSize - 1, PageSize + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSparse(%d): want panic", bad)
				}
			}()
			NewSparse(bad)
		}()
	}
}

func TestZeroFill(t *testing.T) {
	s := NewSparse(4 * PageSize)
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = 0xff
	}
	s.Read(100, buf)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("untouched byte %d = %#x, want 0", i, b)
		}
	}
	if s.AllocatedPages() != 0 {
		t.Fatalf("read allocated %d pages", s.AllocatedPages())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := NewSparse(16 * PageSize)
	data := []byte("secure memory for GPUs")
	s.Write(5, data)
	got := make([]byte, len(data))
	s.Read(5, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q, want %q", got, data)
	}
}

func TestCrossPageAccess(t *testing.T) {
	s := NewSparse(4 * PageSize)
	data := make([]byte, 3*PageSize)
	for i := range data {
		data[i] = byte(i % 251)
	}
	s.Write(PageSize/2, data)
	got := make([]byte, len(data))
	s.Read(PageSize/2, got)
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page round trip failed")
	}
	if s.AllocatedPages() != 4 {
		t.Fatalf("allocated %d pages, want 4", s.AllocatedPages())
	}
}

func TestBoundsChecks(t *testing.T) {
	s := NewSparse(2 * PageSize)
	cases := []struct {
		name string
		fn   func()
	}{
		{"read past end", func() { s.Read(2*PageSize-1, make([]byte, 2)) }},
		{"read at end", func() { s.Read(2*PageSize, make([]byte, 1)) }},
		{"write past end", func() { s.Write(2*PageSize-1, make([]byte, 2)) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
	// Zero-length access at the boundary is fine.
	s.Read(2*PageSize, nil)
	s.Write(0, nil)
}

func TestUint64RoundTrip(t *testing.T) {
	s := NewSparse(PageSize)
	f := func(addr uint16, v uint64) bool {
		a := uint64(addr) % (PageSize - 8)
		s.WriteUint64(a, v)
		return s.ReadUint64(a) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUint16RoundTrip(t *testing.T) {
	s := NewSparse(PageSize)
	f := func(addr uint16, v uint16) bool {
		a := uint64(addr) % (PageSize - 2)
		s.WriteUint16(a, v)
		return s.ReadUint16(a) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBigEndianLayout(t *testing.T) {
	s := NewSparse(PageSize)
	s.WriteUint64(0, 0x0102030405060708)
	var b [8]byte
	s.Read(0, b[:])
	want := [8]byte{1, 2, 3, 4, 5, 6, 7, 8}
	if b != want {
		t.Fatalf("layout %v, want %v", b, want)
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	s := NewSparse(PageSize)
	s.Write(0, []byte{1, 2, 3})
	snap := s.Snapshot(0, 3)
	s.Write(0, []byte{9, 9, 9})
	if !bytes.Equal(snap, []byte{1, 2, 3}) {
		t.Fatalf("snapshot mutated: %v", snap)
	}
}

// TestSparseOver4GB: the full paper-scale address space (4 GB data +
// metadata) is addressable without materializing pages.
func TestSparseOver4GB(t *testing.T) {
	s := NewSparse(5 << 30)
	s.WriteUint64(4<<30+123*8, 42)
	if got := s.ReadUint64(4<<30 + 123*8); got != 42 {
		t.Fatalf("high address readback = %d", got)
	}
	if s.AllocatedPages() != 1 {
		t.Fatalf("allocated %d pages, want 1", s.AllocatedPages())
	}
}

func BenchmarkSparseWrite128(b *testing.B) {
	s := NewSparse(1 << 30)
	buf := make([]byte, 128)
	b.SetBytes(128)
	for i := 0; i < b.N; i++ {
		s.Write(uint64(i%1000)*128, buf)
	}
}
