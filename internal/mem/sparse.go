// Package mem provides the functional backing store that plays the
// role of the untrusted off-chip GPU DRAM. It is byte-addressable over
// the full protected range (4 GB by default) but only allocates pages
// that are actually touched, so tests and examples can address the
// whole space cheaply.
//
// Because the store models *untrusted* memory, it deliberately exposes
// raw access (Read/Write with no protection): the secure-memory engines
// in internal/secmem layer confidentiality and integrity on top, and
// the tamper tests use the raw interface to play the attacker.
//
// Concurrency and aliasing contract: a Sparse store is single-owner —
// no
// internal locking; concurrent readers and writers must synchronize
// externally. Read copies into the caller's buffer and Write copies
// out of it, so callers may reuse their buffers immediately.
package mem

import (
	"fmt"
	"sort"
)

// PageSize is the sparse-allocation granularity. It is an
// implementation detail (not an architectural parameter) chosen to
// amortize map overhead.
const PageSize = 4096

// Sparse is a sparse byte-addressable memory. The zero value is not
// usable; use NewSparse. Sparse is not safe for concurrent mutation.
type Sparse struct {
	size  uint64
	pages map[uint64]*[PageSize]byte
}

// NewSparse creates a memory of the given byte size. Size must be a
// positive multiple of PageSize.
func NewSparse(size uint64) *Sparse {
	if size == 0 || size%PageSize != 0 {
		panic(fmt.Sprintf("mem: size %d must be a positive multiple of %d", size, PageSize))
	}
	return &Sparse{size: size, pages: make(map[uint64]*[PageSize]byte)}
}

// Size returns the addressable size in bytes.
func (s *Sparse) Size() uint64 { return s.size }

// AllocatedPages returns how many pages have been materialized.
func (s *Sparse) AllocatedPages() int { return len(s.pages) }

func (s *Sparse) check(addr uint64, n int) {
	if n < 0 || addr > s.size || uint64(n) > s.size-addr {
		panic(fmt.Sprintf("mem: access [%#x, %#x) outside memory of size %#x", addr, addr+uint64(n), s.size))
	}
}

// Read copies len(dst) bytes starting at addr into dst. Untouched
// memory reads as zero.
func (s *Sparse) Read(addr uint64, dst []byte) {
	s.check(addr, len(dst))
	for len(dst) > 0 {
		pageID := addr / PageSize
		off := addr % PageSize
		n := PageSize - off
		if uint64(len(dst)) < n {
			n = uint64(len(dst))
		}
		if page, ok := s.pages[pageID]; ok {
			copy(dst[:n], page[off:off+n])
		} else {
			for i := uint64(0); i < n; i++ {
				dst[i] = 0
			}
		}
		dst = dst[n:]
		addr += n
	}
}

// Write copies src into memory starting at addr, materializing pages
// as needed.
func (s *Sparse) Write(addr uint64, src []byte) {
	s.check(addr, len(src))
	for len(src) > 0 {
		pageID := addr / PageSize
		off := addr % PageSize
		n := PageSize - off
		if uint64(len(src)) < n {
			n = uint64(len(src))
		}
		page, ok := s.pages[pageID]
		if !ok {
			page = new([PageSize]byte)
			s.pages[pageID] = page
		}
		copy(page[off:off+n], src[:n])
		src = src[n:]
		addr += n
	}
}

// ReadUint64 reads an 8-byte big-endian word at addr.
func (s *Sparse) ReadUint64(addr uint64) uint64 {
	var b [8]byte
	s.Read(addr, b[:])
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

// WriteUint64 writes an 8-byte big-endian word at addr.
func (s *Sparse) WriteUint64(addr uint64, v uint64) {
	b := [8]byte{byte(v >> 56), byte(v >> 48), byte(v >> 40), byte(v >> 32),
		byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
	s.Write(addr, b[:])
}

// ReadUint16 reads a 2-byte big-endian half-word at addr.
func (s *Sparse) ReadUint16(addr uint64) uint16 {
	var b [2]byte
	s.Read(addr, b[:])
	return uint16(b[0])<<8 | uint16(b[1])
}

// WriteUint16 writes a 2-byte big-endian half-word at addr.
func (s *Sparse) WriteUint16(addr uint64, v uint16) {
	b := [2]byte{byte(v >> 8), byte(v)}
	s.Write(addr, b[:])
}

// Snapshot copies n bytes at addr; a convenience for replay attacks in
// tests (the attacker records old memory content to play back later).
func (s *Sparse) Snapshot(addr uint64, n int) []byte {
	buf := make([]byte, n)
	s.Read(addr, buf)
	return buf
}

// PageState is one materialized page in a whole-store State.
type PageState struct {
	ID   uint64
	Data []byte
}

// State is a complete, detached snapshot of a Sparse store, with pages
// sorted by ID so identical contents always serialize identically.
type State struct {
	Size  uint64
	Pages []PageState
}

// SaveState captures the whole store — size and every materialized
// page — for checkpointing. The result shares no memory with the
// store. (Snapshot, above, copies a byte range; SaveState copies the
// store.)
func (s *Sparse) SaveState() *State {
	st := &State{Size: s.size}
	if len(s.pages) == 0 {
		return st
	}
	ids := make([]uint64, 0, len(s.pages))
	for id := range s.pages {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	st.Pages = make([]PageState, 0, len(ids))
	for _, id := range ids {
		st.Pages = append(st.Pages, PageState{ID: id, Data: append([]byte(nil), s.pages[id][:]...)})
	}
	return st
}

// LoadState replaces the store's contents with a previously saved
// State. The snapshot's size must match the store's.
func (s *Sparse) LoadState(st *State) error {
	if st.Size != s.size {
		return fmt.Errorf("mem: snapshot size %d does not match store size %d", st.Size, s.size)
	}
	s.pages = make(map[uint64]*[PageSize]byte, len(st.Pages))
	for _, p := range st.Pages {
		if len(p.Data) != PageSize {
			return fmt.Errorf("mem: snapshot page %d has %d bytes, want %d", p.ID, len(p.Data), PageSize)
		}
		page := new([PageSize]byte)
		copy(page[:], p.Data)
		s.pages[p.ID] = page
	}
	return nil
}
