package crypto

import (
	"encoding/hex"
	"testing"
	"testing/quick"
)

// RFC 4493 test vectors (AES-128 key 2b7e1516...).
var rfc4493Key = "2b7e151628aed2a6abf7158809cf4f3c"

var rfc4493Cases = []struct {
	msg  string
	want string
}{
	{"", "bb1d6929e95937287fa37d129b756746"},
	{"6bc1bee22e409f96e93d7e117393172a", "070a16b46b4d4144f79bdd9dd04a287c"},
	{"6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411", "dfa66747de9ae63030ca32611497c827"},
	{"6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710", "51f0bebf7e3b9d92fc49741779363cfe"},
}

func TestCMACVectors(t *testing.T) {
	key := mustHex(t, rfc4493Key)
	m, err := NewCMAC(key)
	if err != nil {
		t.Fatal(err)
	}
	for i, tc := range rfc4493Cases {
		msg := mustHex(t, tc.msg)
		want := mustHex(t, tc.want)
		got := m.Sum(msg)
		if hex.EncodeToString(got[:]) != hex.EncodeToString(want) {
			t.Errorf("case %d: Sum = %x, want %x", i, got, want)
		}
	}
}

func TestCMACSubkeys(t *testing.T) {
	// RFC 4493 section 4: K1 and K2 for the standard key.
	key := mustHex(t, rfc4493Key)
	m := MustCMAC(key)
	wantK1 := "fbeed618357133667c85e08f7236a8de"
	wantK2 := "f7ddac306ae266ccf90bc11ee46d513b"
	if hex.EncodeToString(m.k1[:]) != wantK1 {
		t.Errorf("K1 = %x, want %s", m.k1, wantK1)
	}
	if hex.EncodeToString(m.k2[:]) != wantK2 {
		t.Errorf("K2 = %x, want %s", m.k2, wantK2)
	}
}

func TestCMACBadKey(t *testing.T) {
	if _, err := NewCMAC(make([]byte, 7)); err == nil {
		t.Fatal("want error for short key")
	}
}

func TestMustCMACPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	MustCMAC(nil)
}

// TestCMACDeterministic: identical inputs yield identical tags, and a
// single flipped bit yields a different tag (with overwhelming
// probability; the vectors pin exact values, this pins sensitivity).
func TestCMACSensitivity(t *testing.T) {
	m := MustCMAC(make([]byte, 16))
	msg := make([]byte, 48)
	base := m.Sum(msg)
	for i := 0; i < len(msg); i += 5 {
		alt := append([]byte(nil), msg...)
		alt[i] ^= 0x01
		if m.Sum(alt) == base {
			t.Fatalf("flipping byte %d did not change the tag", i)
		}
	}
	if m.Sum(msg) != base {
		t.Fatal("CMAC is not deterministic")
	}
}

// TestCMACLengthExtension: messages that are prefixes of each other
// must not collide (CMAC domain separation via K1/K2).
func TestCMACPrefixDistinct(t *testing.T) {
	m := MustCMAC(make([]byte, 16))
	msg := make([]byte, 32)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	seen := map[[16]byte]int{}
	for n := 0; n <= 32; n++ {
		tag := m.Sum(msg[:n])
		if prev, dup := seen[tag]; dup {
			t.Fatalf("length %d collides with length %d", n, prev)
		}
		seen[tag] = n
	}
}

func TestTruncations(t *testing.T) {
	m := MustCMAC(make([]byte, 16))
	msg := []byte("gpusecmem")
	full := m.Sum(msg)
	if got := m.Sum64(msg); got != uint64(full[0])<<56|uint64(full[1])<<48|uint64(full[2])<<40|uint64(full[3])<<32|uint64(full[4])<<24|uint64(full[5])<<16|uint64(full[6])<<8|uint64(full[7]) {
		t.Fatalf("Sum64 does not match the tag prefix: %x vs %x", got, full[:8])
	}
	if got := m.Sum16(msg); got != uint16(full[0])<<8|uint16(full[1]) {
		t.Fatalf("Sum16 does not match the tag prefix: %x vs %x", got, full[:2])
	}
}

// TestStatefulMACBindsAll: the stateful MAC must change when any of
// ciphertext, address, or counter changes — this is the property the
// paper relies on for data integrity without covering data with the
// tree.
func TestStatefulMACBindsAll(t *testing.T) {
	m := MustCMAC(make([]byte, 16))
	ct := make([]byte, 32)
	base := m.StatefulMAC(ct, 0x1000, 7)
	alt := append([]byte(nil), ct...)
	alt[3] ^= 1
	if m.StatefulMAC(alt, 0x1000, 7) == base {
		t.Error("MAC did not bind ciphertext")
	}
	if m.StatefulMAC(ct, 0x1020, 7) == base {
		t.Error("MAC did not bind address")
	}
	if m.StatefulMAC(ct, 0x1000, 8) == base {
		t.Error("MAC did not bind counter")
	}
	if m.StatefulMAC(ct, 0x1000, 7) != base {
		t.Error("MAC not deterministic")
	}
}

func TestAddressMACBindsAddress(t *testing.T) {
	m := MustCMAC(make([]byte, 16))
	ct := make([]byte, 32)
	if m.AddressMAC(ct, 0) == m.AddressMAC(ct, 32) {
		t.Error("AddressMAC did not bind address")
	}
}

// TestNodeHashBindsPosition: identical child bytes at different node
// indexes must hash differently.
func TestNodeHashBindsPosition(t *testing.T) {
	m := MustCMAC(make([]byte, 16))
	child := make([]byte, 128)
	if m.NodeHash(child, 1) == m.NodeHash(child, 2) {
		t.Error("NodeHash did not bind the node index")
	}
}

// TestOTPInvolution: XORPad applied twice is the identity (encrypt ==
// decrypt in counter mode).
func TestOTPInvolution(t *testing.T) {
	f := func(key [16]byte, data [32]byte, addr uint64, ctr uint64) bool {
		o := MustOTP(key[:])
		buf := data
		o.XORPad(buf[:], addr, ctr)
		if buf == data {
			return false // pad must not be all-zero
		}
		o.XORPad(buf[:], addr, ctr)
		return buf == data
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestOTPCounterUniqueness: the pad must differ across counters and
// across addresses — counter reuse is exactly what breaks counter-mode
// encryption (Section VI-B), so distinctness here is the crypto-level
// invariant.
func TestOTPCounterUniqueness(t *testing.T) {
	o := MustOTP(make([]byte, 16))
	pads := map[[32]byte]string{}
	for addr := uint64(0); addr < 4; addr++ {
		for ctr := uint64(0); ctr < 4; ctr++ {
			var p [32]byte
			o.Pad(p[:], addr*32, ctr)
			if prev, dup := pads[p]; dup {
				t.Fatalf("pad for (addr=%d,ctr=%d) collides with %s", addr, ctr, prev)
			}
			pads[p] = "seen"
		}
	}
}

func TestOTPLaneDistinct(t *testing.T) {
	o := MustOTP(make([]byte, 16))
	var p [32]byte
	o.Pad(p[:], 0x80, 3)
	var lane0, lane1 [16]byte
	copy(lane0[:], p[:16])
	copy(lane1[:], p[16:])
	if lane0 == lane1 {
		t.Fatal("the two 16B lanes of a sector pad are identical")
	}
}

func TestOTPPanicsOnRagged(t *testing.T) {
	o := MustOTP(make([]byte, 16))
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	o.Pad(make([]byte, 17), 0, 0)
}

// TestDirectCipherRoundTrip: Decrypt(Encrypt(x)) == x for the
// address-tweaked direct cipher, and the tweak binds the address.
func TestDirectCipherRoundTrip(t *testing.T) {
	f := func(dk, tk [16]byte, data [32]byte, addr uint64) bool {
		d := MustDirectCipher(dk[:], tk[:])
		buf := data
		d.Encrypt(buf[:], addr)
		ct := buf
		d.Decrypt(buf[:], addr)
		return buf == data && ct != data
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectCipherAddressTweak(t *testing.T) {
	d := MustDirectCipher(make([]byte, 16), append(make([]byte, 15), 1))
	a := make([]byte, 32)
	b := make([]byte, 32)
	d.Encrypt(a, 0x00)
	d.Encrypt(b, 0x20)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("identical plaintext at different addresses produced identical ciphertext")
	}
}

func TestDirectCipherBadKeys(t *testing.T) {
	if _, err := NewDirectCipher(make([]byte, 16), make([]byte, 5)); err == nil {
		t.Fatal("want error for bad tweak key")
	}
	if _, err := NewDirectCipher(make([]byte, 5), make([]byte, 16)); err == nil {
		t.Fatal("want error for bad data key")
	}
}

func TestDirectCipherPanicsOnRagged(t *testing.T) {
	d := MustDirectCipher(make([]byte, 16), make([]byte, 16))
	for _, fn := range []func(){
		func() { d.Encrypt(make([]byte, 15), 0) },
		func() { d.Decrypt(make([]byte, 15), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("want panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkCMAC128B(b *testing.B) {
	m := MustCMAC(make([]byte, 16))
	msg := make([]byte, 128)
	b.SetBytes(128)
	for i := 0; i < b.N; i++ {
		m.Sum(msg)
	}
}

func BenchmarkOTPSector(b *testing.B) {
	o := MustOTP(make([]byte, 16))
	buf := make([]byte, 32)
	b.SetBytes(32)
	for i := 0; i < b.N; i++ {
		o.XORPad(buf, uint64(i)*32, uint64(i))
	}
}
