package crypto

import (
	stdaes "crypto/aes"
	"testing"
)

// FuzzAESAgainstStdlib: our AES-128 must agree with crypto/aes on
// arbitrary keys and blocks, both directions.
func FuzzAESAgainstStdlib(f *testing.F) {
	f.Add(make([]byte, 16), make([]byte, 16))
	f.Add([]byte("0123456789abcdef"), []byte("fedcba9876543210"))
	f.Fuzz(func(t *testing.T, key, block []byte) {
		if len(key) != 16 || len(block) != 16 {
			t.Skip()
		}
		ours := MustCipher(key)
		std, err := stdaes.NewCipher(key)
		if err != nil {
			t.Skip()
		}
		var a, b [16]byte
		ours.Encrypt(a[:], block)
		std.Encrypt(b[:], block)
		if a != b {
			t.Fatalf("encrypt mismatch: %x vs %x", a, b)
		}
		var da [16]byte
		ours.Decrypt(da[:], a[:])
		for i := range da {
			if da[i] != block[i] {
				t.Fatal("decrypt does not invert")
			}
		}
	})
}

// FuzzCMACDeterministic: tags are deterministic and sensitive to the
// last byte.
func FuzzCMACDeterministic(f *testing.F) {
	f.Add([]byte("0123456789abcdef"), []byte("message"))
	f.Fuzz(func(t *testing.T, key, msg []byte) {
		if len(key) != 16 {
			t.Skip()
		}
		m := MustCMAC(key)
		t1 := m.Sum(msg)
		t2 := m.Sum(msg)
		if t1 != t2 {
			t.Fatal("nondeterministic")
		}
		if len(msg) > 0 {
			alt := append([]byte(nil), msg...)
			alt[len(alt)-1] ^= 1
			if m.Sum(alt) == t1 {
				t.Fatal("insensitive to last byte")
			}
		}
	})
}

// FuzzDirectCipherRoundTrip: the XEX construction inverts for
// arbitrary sector contents and addresses.
func FuzzDirectCipherRoundTrip(f *testing.F) {
	f.Add(make([]byte, 32), uint64(0))
	f.Fuzz(func(t *testing.T, sector []byte, addr uint64) {
		if len(sector) == 0 || len(sector)%16 != 0 || len(sector) > 512 {
			t.Skip()
		}
		d := MustDirectCipher(make([]byte, 16), append(make([]byte, 15), 1))
		orig := append([]byte(nil), sector...)
		d.Encrypt(sector, addr)
		d.Decrypt(sector, addr)
		for i := range orig {
			if sector[i] != orig[i] {
				t.Fatal("round trip mismatch")
			}
		}
	})
}
