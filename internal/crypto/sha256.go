package crypto

import "encoding/binary"

// SHA-256 (FIPS 180-4), implemented from scratch like the AES side of
// this package. The secure-memory engines can hash integrity-tree
// nodes with either AES-CMAC (keyed, the default) or keyed SHA-256
// (hash-tree style, as in the original Merkle-tree secure processors);
// this file provides the latter.

var sha256K = [64]uint32{
	0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
	0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
	0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
	0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
	0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
	0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
	0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
	0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
}

func rotr(x uint32, n uint) uint32 { return x>>n | x<<(32-n) }

// SHA256 computes the SHA-256 digest of msg.
func SHA256(msg []byte) [32]byte {
	h := [8]uint32{
		0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
		0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
	}
	// Padding: 0x80, zeros, 64-bit big-endian bit length.
	bitLen := uint64(len(msg)) * 8
	padded := make([]byte, 0, len(msg)+72)
	padded = append(padded, msg...)
	padded = append(padded, 0x80)
	for len(padded)%64 != 56 {
		padded = append(padded, 0)
	}
	var lenb [8]byte
	binary.BigEndian.PutUint64(lenb[:], bitLen)
	padded = append(padded, lenb[:]...)

	var w [64]uint32
	for blk := 0; blk < len(padded); blk += 64 {
		chunk := padded[blk : blk+64]
		for i := 0; i < 16; i++ {
			w[i] = binary.BigEndian.Uint32(chunk[4*i:])
		}
		for i := 16; i < 64; i++ {
			s0 := rotr(w[i-15], 7) ^ rotr(w[i-15], 18) ^ w[i-15]>>3
			s1 := rotr(w[i-2], 17) ^ rotr(w[i-2], 19) ^ w[i-2]>>10
			w[i] = w[i-16] + s0 + w[i-7] + s1
		}
		a, b, c, d, e, f, g, hh := h[0], h[1], h[2], h[3], h[4], h[5], h[6], h[7]
		for i := 0; i < 64; i++ {
			s1 := rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25)
			ch := (e & f) ^ (^e & g)
			t1 := hh + s1 + ch + sha256K[i] + w[i]
			s0 := rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22)
			maj := (a & b) ^ (a & c) ^ (b & c)
			t2 := s0 + maj
			hh, g, f, e, d, c, b, a = g, f, e, d+t1, c, b, a, t1+t2
		}
		h[0] += a
		h[1] += b
		h[2] += c
		h[3] += d
		h[4] += e
		h[5] += f
		h[6] += g
		h[7] += hh
	}
	var out [32]byte
	for i, v := range h {
		binary.BigEndian.PutUint32(out[4*i:], v)
	}
	return out
}

// NodeHasher computes the 64-bit position-bound hash of an
// integrity-tree node. CMAC satisfies it (the default engine
// configuration); SHA256Hasher provides the hash-tree alternative.
type NodeHasher interface {
	NodeHash(childData []byte, nodeIndex uint64) uint64
}

// SHA256Hasher hashes tree nodes with keyed SHA-256: the 16-byte key
// is prepended (secret-prefix keying is sound here because messages
// are fixed-length node images, closing the length-extension door).
type SHA256Hasher struct {
	key [16]byte
}

// NewSHA256Hasher builds a hasher over a 16-byte key.
func NewSHA256Hasher(key []byte) *SHA256Hasher {
	h := &SHA256Hasher{}
	copy(h.key[:], key)
	return h
}

// NodeHash implements NodeHasher.
func (h *SHA256Hasher) NodeHash(childData []byte, nodeIndex uint64) uint64 {
	buf := make([]byte, 0, 16+len(childData)+8)
	buf = append(buf, h.key[:]...)
	buf = append(buf, childData...)
	var idx [8]byte
	binary.BigEndian.PutUint64(idx[:], nodeIndex)
	buf = append(buf, idx[:]...)
	d := SHA256(buf)
	return binary.BigEndian.Uint64(d[:8])
}

var _ NodeHasher = (*CMAC)(nil)
var _ NodeHasher = (*SHA256Hasher)(nil)
