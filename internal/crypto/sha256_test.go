package crypto

import (
	stdsha "crypto/sha256"
	"encoding/hex"
	"strings"
	"testing"
	"testing/quick"
)

// TestSHA256NISTVectors covers the FIPS 180-4 examples.
func TestSHA256NISTVectors(t *testing.T) {
	cases := []struct {
		msg  string
		want string
	}{
		{"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
		{"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
		{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
			"248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
		{strings.Repeat("a", 1000000),
			"cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"},
	}
	for i, tc := range cases {
		got := SHA256([]byte(tc.msg))
		if hex.EncodeToString(got[:]) != tc.want {
			t.Errorf("case %d: %x", i, got)
		}
	}
}

// TestSHA256AgainstStdlib cross-checks random lengths.
func TestSHA256AgainstStdlib(t *testing.T) {
	f := func(msg []byte) bool {
		ours := SHA256(msg)
		std := stdsha.Sum256(msg)
		return ours == std
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSHA256PaddingBoundaries exercises the message lengths around the
// 56-byte padding boundary where length-encoding bugs live.
func TestSHA256PaddingBoundaries(t *testing.T) {
	for n := 0; n <= 130; n++ {
		msg := make([]byte, n)
		for i := range msg {
			msg[i] = byte(i)
		}
		if SHA256(msg) != stdsha.Sum256(msg) {
			t.Fatalf("mismatch at length %d", n)
		}
	}
}

func TestSHA256HasherBindsAll(t *testing.T) {
	h := NewSHA256Hasher([]byte("0123456789abcdef"))
	data := make([]byte, 128)
	base := h.NodeHash(data, 1)
	if h.NodeHash(data, 2) == base {
		t.Error("index not bound")
	}
	alt := append([]byte(nil), data...)
	alt[5] ^= 1
	if h.NodeHash(alt, 1) == base {
		t.Error("content not bound")
	}
	h2 := NewSHA256Hasher([]byte("fedcba9876543210"))
	if h2.NodeHash(data, 1) == base {
		t.Error("key not bound")
	}
	if h.NodeHash(data, 1) != base {
		t.Error("not deterministic")
	}
}

func BenchmarkSHA256_128B(b *testing.B) {
	msg := make([]byte, 128)
	b.SetBytes(128)
	for i := 0; i < b.N; i++ {
		SHA256(msg)
	}
}
