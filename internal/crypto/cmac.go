package crypto

import "encoding/binary"

// CMAC computes AES-CMAC (RFC 4493) tags. It is used as the MAC
// function for data blocks (stateful MACs over ciphertext, address and
// counter) and as the keyed hash for Merkle/Bonsai-Merkle tree nodes.
//
// A CMAC value is stateless with respect to messages: each call to Sum
// is independent. The struct is safe for concurrent use.
type CMAC struct {
	c  *Cipher
	k1 [BlockSize]byte
	k2 [BlockSize]byte
}

// NewCMAC builds a CMAC instance over an AES-128 key.
func NewCMAC(key []byte) (*CMAC, error) {
	c, err := NewCipher(key)
	if err != nil {
		return nil, err
	}
	m := &CMAC{c: c}
	var l [BlockSize]byte
	c.Encrypt(l[:], l[:])
	m.k1 = dbl(l)
	m.k2 = dbl(m.k1)
	return m, nil
}

// MustCMAC is like NewCMAC but panics on error.
func MustCMAC(key []byte) *CMAC {
	m, err := NewCMAC(key)
	if err != nil {
		panic(err)
	}
	return m
}

// dbl doubles a 128-bit value in GF(2^128) with the CMAC polynomial.
func dbl(in [BlockSize]byte) [BlockSize]byte {
	var out [BlockSize]byte
	carry := byte(0)
	for i := BlockSize - 1; i >= 0; i-- {
		out[i] = in[i]<<1 | carry
		carry = in[i] >> 7
	}
	if carry != 0 {
		out[BlockSize-1] ^= 0x87
	}
	return out
}

// Sum returns the 16-byte CMAC tag of msg.
func (m *CMAC) Sum(msg []byte) [BlockSize]byte {
	var x [BlockSize]byte
	n := len(msg)
	full := n / BlockSize
	rem := n % BlockSize
	last := full
	complete := rem == 0 && n > 0
	if complete {
		last = full - 1
	}
	for i := 0; i < last; i++ {
		for j := 0; j < BlockSize; j++ {
			x[j] ^= msg[i*BlockSize+j]
		}
		m.c.Encrypt(x[:], x[:])
	}
	var final [BlockSize]byte
	if complete {
		copy(final[:], msg[last*BlockSize:])
		for j := 0; j < BlockSize; j++ {
			final[j] ^= m.k1[j]
		}
	} else {
		copy(final[:], msg[last*BlockSize:])
		final[rem] = 0x80
		for j := 0; j < BlockSize; j++ {
			final[j] ^= m.k2[j]
		}
	}
	for j := 0; j < BlockSize; j++ {
		x[j] ^= final[j]
	}
	m.c.Encrypt(x[:], x[:])
	return x
}

// Sum64 returns the tag truncated to 64 bits, the per-128B-block MAC
// width used throughout the paper (8 B per 128 B data block).
func (m *CMAC) Sum64(msg []byte) uint64 {
	t := m.Sum(msg)
	return binary.BigEndian.Uint64(t[:8])
}

// Sum16 returns the tag truncated to 16 bits, the per-32B-sector MAC
// width ("truncated MAC, i.e., 16-bit MAC for each 32B sector").
func (m *CMAC) Sum16(msg []byte) uint16 {
	t := m.Sum(msg)
	return binary.BigEndian.Uint16(t[:2])
}

// StatefulMAC computes the paper's stateful data MAC: a tag over the
// ciphertext sector, its address, and the counter value that encrypted
// it. Including the counter makes replayed (ciphertext, MAC) pairs
// detectable without covering data with the integrity tree.
func (m *CMAC) StatefulMAC(ciphertext []byte, addr uint64, counter uint64) uint16 {
	buf := make([]byte, 0, len(ciphertext)+16)
	buf = append(buf, ciphertext...)
	var meta [16]byte
	binary.BigEndian.PutUint64(meta[0:8], addr)
	binary.BigEndian.PutUint64(meta[8:16], counter)
	buf = append(buf, meta[:]...)
	return m.Sum16(buf)
}

// AddressMAC computes the direct-encryption data MAC: a tag over the
// ciphertext sector and its address (no counter exists).
func (m *CMAC) AddressMAC(ciphertext []byte, addr uint64) uint16 {
	buf := make([]byte, 0, len(ciphertext)+8)
	buf = append(buf, ciphertext...)
	var meta [8]byte
	binary.BigEndian.PutUint64(meta[:], addr)
	buf = append(buf, meta[:]...)
	return m.Sum16(buf)
}

// NodeHash computes the 64-bit keyed hash of a tree node's child
// content used for Merkle/BMT interior nodes. The node index is mixed
// in so identical child content at different tree positions hashes
// differently (defeats node-relocation attacks).
func (m *CMAC) NodeHash(childData []byte, nodeIndex uint64) uint64 {
	buf := make([]byte, 0, len(childData)+8)
	buf = append(buf, childData...)
	var idx [8]byte
	binary.BigEndian.PutUint64(idx[:], nodeIndex)
	buf = append(buf, idx[:]...)
	return m.Sum64(buf)
}
