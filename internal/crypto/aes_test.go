package crypto

import (
	"bytes"
	stdaes "crypto/aes"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// TestFIPS197Vector checks the AES-128 example vector from FIPS-197
// Appendix B.
func TestFIPS197Vector(t *testing.T) {
	key := mustHex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	pt := mustHex(t, "3243f6a8885a308d313198a2e0370734")
	want := mustHex(t, "3925841d02dc09fbdc118597196a0b32")
	c, err := NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	c.Encrypt(got, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("encrypt = %x, want %x", got, want)
	}
	dec := make([]byte, 16)
	c.Decrypt(dec, got)
	if !bytes.Equal(dec, pt) {
		t.Fatalf("decrypt = %x, want %x", dec, pt)
	}
}

// TestFIPS197AppendixC covers the AES-128 known-answer test from
// FIPS-197 Appendix C.1.
func TestFIPS197AppendixC(t *testing.T) {
	key := mustHex(t, "000102030405060708090a0b0c0d0e0f")
	pt := mustHex(t, "00112233445566778899aabbccddeeff")
	want := mustHex(t, "69c4e0d86a7b0430d8cdb78070b4c55a")
	c, err := NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	c.Encrypt(got, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("encrypt = %x, want %x", got, want)
	}
}

func TestNewCipherBadKey(t *testing.T) {
	for _, n := range []int{0, 1, 15, 17, 24, 32} {
		if _, err := NewCipher(make([]byte, n)); err == nil {
			t.Errorf("NewCipher with %d-byte key: want error", n)
		}
	}
}

func TestMustCipherPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCipher with bad key did not panic")
		}
	}()
	MustCipher(make([]byte, 3))
}

// TestEncryptDecryptRoundTrip is a property test: Decrypt(Encrypt(x)) == x
// for random keys and blocks.
func TestEncryptDecryptRoundTrip(t *testing.T) {
	f := func(key [16]byte, block [16]byte) bool {
		c := MustCipher(key[:])
		var ct, pt [16]byte
		c.Encrypt(ct[:], block[:])
		c.Decrypt(pt[:], ct[:])
		return pt == block
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestAgainstStdlib cross-checks our AES against crypto/aes on random
// inputs: identical ciphertexts for identical keys and blocks.
func TestAgainstStdlib(t *testing.T) {
	f := func(key [16]byte, block [16]byte) bool {
		ours := MustCipher(key[:])
		std, err := stdaes.NewCipher(key[:])
		if err != nil {
			return false
		}
		var a, b [16]byte
		ours.Encrypt(a[:], block[:])
		std.Encrypt(b[:], block[:])
		if a != b {
			return false
		}
		var da, db [16]byte
		ours.Decrypt(da[:], a[:])
		std.Decrypt(db[:], b[:])
		return da == db && da == block
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEncryptInPlace(t *testing.T) {
	key := mustHex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	pt := mustHex(t, "3243f6a8885a308d313198a2e0370734")
	want := mustHex(t, "3925841d02dc09fbdc118597196a0b32")
	c := MustCipher(key)
	buf := append([]byte(nil), pt...)
	c.Encrypt(buf, buf)
	if !bytes.Equal(buf, want) {
		t.Fatalf("in-place encrypt = %x, want %x", buf, want)
	}
	c.Decrypt(buf, buf)
	if !bytes.Equal(buf, pt) {
		t.Fatalf("in-place decrypt = %x, want %x", buf, pt)
	}
}

func TestEncryptBlocks(t *testing.T) {
	key := make([]byte, 16)
	c := MustCipher(key)
	src := make([]byte, 64)
	rng := rand.New(rand.NewSource(1))
	rng.Read(src)
	dst := make([]byte, 64)
	c.EncryptBlocks(dst, src)
	for i := 0; i < 4; i++ {
		var one [16]byte
		c.Encrypt(one[:], src[i*16:(i+1)*16])
		if !bytes.Equal(one[:], dst[i*16:(i+1)*16]) {
			t.Fatalf("block %d mismatch", i)
		}
	}
	back := make([]byte, 64)
	c.DecryptBlocks(back, dst)
	if !bytes.Equal(back, src) {
		t.Fatal("DecryptBlocks did not invert EncryptBlocks")
	}
}

func TestEncryptBlocksPanicsOnRagged(t *testing.T) {
	c := MustCipher(make([]byte, 16))
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for ragged input")
		}
	}()
	c.EncryptBlocks(make([]byte, 17), make([]byte, 17))
}

func TestGmulIdentity(t *testing.T) {
	for i := 0; i < 256; i++ {
		b := byte(i)
		if gmul(b, 1) != b {
			t.Fatalf("gmul(%#x, 1) != %#x", b, b)
		}
		if gmul(b, 2) != xtime(b) {
			t.Fatalf("gmul(%#x, 2) != xtime", b)
		}
	}
}

// TestMixColumnsInverse checks invMixColumns . mixColumns = identity.
func TestMixColumnsInverse(t *testing.T) {
	f := func(in [16]byte) bool {
		s := state(in)
		s.mixColumns()
		s.invMixColumns()
		return s == state(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestShiftRowsInverse checks invShiftRows . shiftRows = identity.
func TestShiftRowsInverse(t *testing.T) {
	var s state
	for i := range s {
		s[i] = byte(i)
	}
	orig := s
	s.shiftRows()
	if s == orig {
		t.Fatal("shiftRows was a no-op")
	}
	s.invShiftRows()
	if s != orig {
		t.Fatalf("invShiftRows(shiftRows(x)) != x: %v", s)
	}
}

func TestSboxInverse(t *testing.T) {
	for i := 0; i < 256; i++ {
		if invSbox[sbox[i]] != byte(i) {
			t.Fatalf("invSbox[sbox[%d]] = %d", i, invSbox[sbox[i]])
		}
	}
}

// TestAvalanche checks a weak avalanche property: flipping one
// plaintext bit changes at least 30 of the 128 ciphertext bits.
func TestAvalanche(t *testing.T) {
	key := mustHex(t, "000102030405060708090a0b0c0d0e0f")
	c := MustCipher(key)
	base := make([]byte, 16)
	var ct0 [16]byte
	c.Encrypt(ct0[:], base)
	for bit := 0; bit < 128; bit += 13 {
		alt := make([]byte, 16)
		alt[bit/8] = 1 << (bit % 8)
		var ct1 [16]byte
		c.Encrypt(ct1[:], alt)
		diff := 0
		for i := range ct0 {
			x := ct0[i] ^ ct1[i]
			for ; x != 0; x &= x - 1 {
				diff++
			}
		}
		if diff < 30 {
			t.Fatalf("bit %d: only %d output bits changed", bit, diff)
		}
	}
}

func BenchmarkAESEncrypt(b *testing.B) {
	c := MustCipher(make([]byte, 16))
	var buf [16]byte
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.Encrypt(buf[:], buf[:])
	}
}

func BenchmarkAESDecrypt(b *testing.B) {
	c := MustCipher(make([]byte, 16))
	var buf [16]byte
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.Decrypt(buf[:], buf[:])
	}
}
