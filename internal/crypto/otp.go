package crypto

import "encoding/binary"

// OTP implements the counter-mode one-time-pad construction used by
// the paper's counter-mode encryption: pad = AES_K(addr || counter),
// extended across a 32-byte sector with a per-16B lane index. The
// plaintext is recovered as C XOR pad, which takes one cycle in
// hardware once the pad is available — this is how counter mode hides
// the decryption latency behind the memory fetch.
type OTP struct {
	c *Cipher
}

// NewOTP builds the pad generator over an AES-128 key.
func NewOTP(key []byte) (*OTP, error) {
	c, err := NewCipher(key)
	if err != nil {
		return nil, err
	}
	return &OTP{c: c}, nil
}

// MustOTP is like NewOTP but panics on error.
func MustOTP(key []byte) *OTP {
	o, err := NewOTP(key)
	if err != nil {
		panic(err)
	}
	return o
}

// Pad fills dst with pad bytes for the sector at addr encrypted under
// counter. len(dst) must be a multiple of 16. Each 16-byte lane uses a
// distinct seed block so a 32-byte sector consumes two AES invocations
// (matching the 16 B/cycle pipelined-engine throughput model).
func (o *OTP) Pad(dst []byte, addr uint64, counter uint64) {
	if len(dst)%BlockSize != 0 {
		panic("crypto: OTP pad length not a multiple of the block size")
	}
	var seed [BlockSize]byte
	for lane := 0; lane*BlockSize < len(dst); lane++ {
		binary.BigEndian.PutUint64(seed[0:8], addr)
		binary.BigEndian.PutUint64(seed[8:16], counter)
		seed[15] ^= byte(lane) // distinct pad per 16B lane within the sector
		o.c.Encrypt(dst[lane*BlockSize:(lane+1)*BlockSize], seed[:])
	}
}

// XORPad encrypts or decrypts buf in place with the pad for (addr,
// counter). Encryption and decryption are the same operation.
func (o *OTP) XORPad(buf []byte, addr uint64, counter uint64) {
	pad := make([]byte, len(buf))
	o.Pad(pad, addr, counter)
	for i := range buf {
		buf[i] ^= pad[i]
	}
}

// DirectCipher implements the direct-encryption data path: each 16-byte
// lane of a sector is encrypted with AES under an address-derived tweak
// (an XEX/XTS-style construction). Unlike counter mode the cipher must
// run after the ciphertext arrives from memory, exposing its latency on
// the read critical path — the property Section VI evaluates.
type DirectCipher struct {
	c     *Cipher
	tweak *Cipher
}

// NewDirectCipher builds a direct cipher from a data key and a tweak
// key. Both must be 16 bytes.
func NewDirectCipher(dataKey, tweakKey []byte) (*DirectCipher, error) {
	c, err := NewCipher(dataKey)
	if err != nil {
		return nil, err
	}
	t, err := NewCipher(tweakKey)
	if err != nil {
		return nil, err
	}
	return &DirectCipher{c: c, tweak: t}, nil
}

// MustDirectCipher is like NewDirectCipher but panics on error.
func MustDirectCipher(dataKey, tweakKey []byte) *DirectCipher {
	d, err := NewDirectCipher(dataKey, tweakKey)
	if err != nil {
		panic(err)
	}
	return d
}

func (d *DirectCipher) tweakFor(addr uint64, lane int) [BlockSize]byte {
	var t [BlockSize]byte
	binary.BigEndian.PutUint64(t[0:8], addr)
	t[8] = byte(lane)
	d.tweak.Encrypt(t[:], t[:])
	return t
}

// Encrypt encrypts buf (length a multiple of 16) in place, tweaked by
// the sector address.
func (d *DirectCipher) Encrypt(buf []byte, addr uint64) {
	if len(buf)%BlockSize != 0 {
		panic("crypto: DirectCipher input not a multiple of the block size")
	}
	for lane := 0; lane*BlockSize < len(buf); lane++ {
		b := buf[lane*BlockSize : (lane+1)*BlockSize]
		tw := d.tweakFor(addr, lane)
		for i := range b {
			b[i] ^= tw[i]
		}
		d.c.Encrypt(b, b)
		for i := range b {
			b[i] ^= tw[i]
		}
	}
}

// Decrypt decrypts buf (length a multiple of 16) in place, tweaked by
// the sector address.
func (d *DirectCipher) Decrypt(buf []byte, addr uint64) {
	if len(buf)%BlockSize != 0 {
		panic("crypto: DirectCipher input not a multiple of the block size")
	}
	for lane := 0; lane*BlockSize < len(buf); lane++ {
		b := buf[lane*BlockSize : (lane+1)*BlockSize]
		tw := d.tweakFor(addr, lane)
		for i := range b {
			b[i] ^= tw[i]
		}
		d.c.Decrypt(b, b)
		for i := range b {
			b[i] ^= tw[i]
		}
	}
}
