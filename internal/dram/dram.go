// Package dram models the timing of one GPU memory partition's DRAM
// channel: banked with row buffers, FR-FCFS-style scheduling, and a
// data bus whose bandwidth matches the paper's baseline (868 GB/s
// aggregate over 32 partitions, i.e. 24 bytes per core cycle per
// partition with the 850 MHz memory / 1132 MHz core clock ratio).
//
// Time is kept in thirds of a core cycle so the 4/3-cycle cost of a
// 32-byte beat is exact integer arithmetic.
//
// Concurrency and aliasing contract: a DRAM channel is single-owner
// state owned by its memory partition — no internal locking; under
// the parallel partition engine it is only ever touched by the shard
// that owns that partition for the window.
package dram

import (
	"fmt"

	"gpusecmem/internal/eventq"
)

// Config holds the timing parameters of one partition's channel.
type Config struct {
	// Banks is the number of DRAM banks.
	Banks int
	// RowHitCycles / RowMissCycles are access latencies in core
	// cycles (CAS only vs precharge+activate+CAS).
	RowHitCycles  int
	RowMissCycles int
	// BeatBytes is the data-bus transfer granularity (32).
	BeatBytes int
	// BeatThirds is the bus occupancy of one beat in thirds of a core
	// cycle (4 -> 24 B/cycle -> 868 GB/s aggregate).
	BeatThirds int
	// MaxIssuePerCycle bounds scheduler issues per cycle.
	MaxIssuePerCycle int
}

// Validate reports invalid channel parameters. sim.Config.Validate
// calls it so a bad DRAM configuration fails before simulation starts
// instead of panicking inside New.
func (c Config) Validate() error {
	switch {
	case c.Banks <= 0:
		return fmt.Errorf("dram: Banks must be positive (got %d)", c.Banks)
	case c.RowHitCycles < 0 || c.RowMissCycles < 0:
		return fmt.Errorf("dram: negative access latency (hit %d, miss %d)", c.RowHitCycles, c.RowMissCycles)
	case c.RowHitCycles > c.RowMissCycles:
		return fmt.Errorf("dram: RowHitCycles %d exceeds RowMissCycles %d", c.RowHitCycles, c.RowMissCycles)
	case c.BeatBytes <= 0:
		return fmt.Errorf("dram: BeatBytes must be positive (got %d)", c.BeatBytes)
	case c.BeatThirds <= 0:
		return fmt.Errorf("dram: BeatThirds must be positive (got %d)", c.BeatThirds)
	case c.MaxIssuePerCycle <= 0:
		return fmt.Errorf("dram: MaxIssuePerCycle must be positive (got %d)", c.MaxIssuePerCycle)
	}
	return nil
}

// DefaultConfig returns the paper's baseline channel timing.
func DefaultConfig() Config {
	return Config{
		Banks:            16,
		RowHitCycles:     20,
		RowMissCycles:    50,
		BeatBytes:        32,
		BeatThirds:       4,
		MaxIssuePerCycle: 4,
	}
}

// Request is one DRAM transaction.
type Request struct {
	Addr  uint64
	Bytes int
	Write bool
	// Token identifies the request to the caller on completion; 0
	// means fire-and-forget (posted writes).
	Token uint64
	// Kind is an opaque traffic class used for per-type accounting
	// (data/counter/MAC/tree/writeback).
	Kind int
}

// Stats accumulates channel counters.
type Stats struct {
	Reads, Writes         uint64
	BytesRead, BytesWrite uint64
	RowHits, RowMisses    uint64
	// RequestsByKind / BytesByKind index by Request.Kind (bounded by
	// the caller's kind space; grown on demand).
	RequestsByKind []uint64
	BytesByKind    []uint64
	// PeakQueue tracks the maximum queue occupancy observed.
	PeakQueue int
}

func (s *Stats) addKind(kind, bytes int) {
	for len(s.RequestsByKind) <= kind {
		s.RequestsByKind = append(s.RequestsByKind, 0)
		s.BytesByKind = append(s.BytesByKind, 0)
	}
	s.RequestsByKind[kind]++
	s.BytesByKind[kind] += uint64(bytes)
}

type pending struct {
	req  Request
	dead bool // tombstone: issued and awaiting compaction
}

// scanDepth bounds how far past the queue head the FR-FCFS scheduler
// (and NextEvent, which must see the same candidates) looks for
// issuable requests.
const scanDepth = 32

type completion struct {
	at3   uint64
	token uint64
}

// When orders completions (in thirds of a core cycle) for the eventq.
func (c completion) When() uint64 { return c.at3 }

// DRAM is one partition's channel. Drive it with Enqueue and Tick.
type DRAM struct {
	cfg       Config
	queue     []pending
	head      int // first live entry; issued entries become tombstones
	live      int
	bankBusy3 []uint64
	bankRow   []uint64
	busFree3  uint64
	compl     eventq.Queue[completion]
	// done is Tick's reusable completion-token scratch; see the Tick
	// aliasing contract.
	done  []uint64
	Stats Stats
}

// New builds a channel from cfg. Callers should Validate first; New
// only guards the parameters that would corrupt its arithmetic.
func New(cfg Config) *DRAM {
	if cfg.Banks <= 0 || cfg.BeatBytes <= 0 || cfg.BeatThirds <= 0 {
		panic("dram: invalid config")
	}
	return &DRAM{
		cfg:       cfg,
		bankBusy3: make([]uint64, cfg.Banks),
		bankRow:   make([]uint64, cfg.Banks),
	}
}

// Enqueue adds a request to the channel queue.
func (d *DRAM) Enqueue(r Request) {
	if r.Bytes <= 0 {
		panic("dram: request with no bytes")
	}
	d.queue = append(d.queue, pending{req: r})
	d.live++
	if d.live > d.Stats.PeakQueue {
		d.Stats.PeakQueue = d.live
	}
}

// QueueLen reports current queue occupancy.
func (d *DRAM) QueueLen() int { return d.live }

// InFlight reports queued plus issued-but-incomplete requests.
func (d *DRAM) InFlight() int { return d.live + d.compl.Len() }

// BusyBanks reports how many banks are mid-access at core cycle now —
// the probe timeline's bank-utilization gauge.
func (d *DRAM) BusyBanks(now uint64) int {
	now3 := now * 3
	n := 0
	for _, b := range d.bankBusy3 {
		if b > now3 {
			n++
		}
	}
	return n
}

func (d *DRAM) bankOf(addr uint64) int { return int(addr>>8) % d.cfg.Banks }
func (d *DRAM) rowOf(addr uint64) uint64 {
	return addr >> 12 // 4 KB row granularity
}

// issue schedules queue[i] at time now3 and removes it from the queue.
func (d *DRAM) issue(i int, now3 uint64) {
	p := d.queue[i]
	r := p.req
	bank := d.bankOf(r.Addr)
	row := d.rowOf(r.Addr)
	beats := (r.Bytes + d.cfg.BeatBytes - 1) / d.cfg.BeatBytes
	xfer3 := uint64(beats * d.cfg.BeatThirds)
	lat3 := uint64(d.cfg.RowMissCycles * 3)
	// Row hits pipeline on an open row (CAS-to-CAS), so the bank is
	// only occupied for the transfer; a row miss occupies the bank for
	// the full precharge+activate window.
	occupancy3 := xfer3
	if d.bankRow[bank] == row+1 { // +1 so row 0 != "no open row"
		lat3 = uint64(d.cfg.RowHitCycles * 3)
		d.Stats.RowHits++
	} else {
		d.Stats.RowMisses++
		d.bankRow[bank] = row + 1
		occupancy3 = lat3
	}
	bankDone3 := now3 + lat3
	start3 := bankDone3
	if d.busFree3 > start3 {
		start3 = d.busFree3
	}
	end3 := start3 + xfer3
	d.busFree3 = end3
	d.bankBusy3[bank] = now3 + occupancy3
	if r.Write {
		d.Stats.Writes++
		d.Stats.BytesWrite += uint64(r.Bytes)
	} else {
		d.Stats.Reads++
		d.Stats.BytesRead += uint64(r.Bytes)
	}
	d.Stats.addKind(r.Kind, r.Bytes)
	if r.Token != 0 {
		d.compl.Push(completion{at3: end3, token: r.Token})
	}
	d.queue[i].dead = true
	d.live--
	for d.head < len(d.queue) && d.queue[d.head].dead {
		d.head++
	}
	// Compact once tombstones dominate (mid-queue ones accumulate when
	// FR-FCFS issues out of order).
	if dead := len(d.queue) - d.head - d.live; d.head+dead > 4096 && (d.head+dead)*2 > len(d.queue) {
		out := d.queue[:0]
		for _, p := range d.queue[d.head:] {
			if !p.dead {
				out = append(out, p)
			}
		}
		d.queue = out
		d.head = 0
	}
}

// Tick advances the channel to core cycle `now` and returns the tokens
// of requests whose data transfer completed at or before it.
//
// Aliasing contract: the returned slice is scratch owned by the DRAM
// and is valid only until the next Tick call; callers must consume it
// immediately and not retain it.
func (d *DRAM) Tick(now uint64) []uint64 {
	now3 := now * 3
	// Issue phase: FR-FCFS-lite. First pass prefers row hits on free
	// banks; second pass takes the oldest request on any free bank.
	for issued := 0; issued < d.cfg.MaxIssuePerCycle; issued++ {
		pick := -1
		seen := 0
		for i := d.head; i < len(d.queue) && seen < scanDepth; i++ {
			if d.queue[i].dead {
				continue
			}
			seen++
			bank := d.bankOf(d.queue[i].req.Addr)
			if d.bankBusy3[bank] > now3 {
				continue
			}
			if d.bankRow[bank] == d.rowOf(d.queue[i].req.Addr)+1 {
				pick = i
				break
			}
			if pick < 0 {
				pick = i
			}
		}
		if pick < 0 {
			break
		}
		d.issue(pick, now3)
	}
	// Completion phase.
	d.done = d.done[:0]
	for d.compl.Len() > 0 && d.compl.Min().at3 <= now3 {
		d.done = append(d.done, d.compl.Pop().token)
	}
	return d.done
}

// NextEvent returns the earliest core cycle after `now` at which a Tick
// could do anything — issue a queued request or retire a completion —
// assuming no Enqueue happens in between. ^uint64(0) means the channel
// is fully drained.
//
// The estimate is a lower bound by construction: it scans the same
// scanDepth issue window as Tick and takes the earliest bank-free time
// among those candidates plus the earliest completion. It may
// undershoot (a Tick at the returned cycle may still find nothing
// issuable, e.g. when MaxIssuePerCycle arbitration defers a request),
// which costs a no-op tick; it never overshoots, which would skip real
// work and break cycle accuracy.
func (d *DRAM) NextEvent(now uint64) uint64 {
	next := ^uint64(0)
	if d.compl.Len() > 0 {
		next = (d.compl.Min().at3 + 2) / 3 // first cycle with at3 <= now*3
	}
	if d.live > 0 {
		seen := 0
		for i := d.head; i < len(d.queue) && seen < scanDepth; i++ {
			if d.queue[i].dead {
				continue
			}
			seen++
			t := (d.bankBusy3[d.bankOf(d.queue[i].req.Addr)] + 2) / 3
			if t < next {
				next = t
			}
		}
	}
	if next <= now && next != ^uint64(0) {
		next = now + 1
	}
	return next
}

// Drained reports whether no work remains.
func (d *DRAM) Drained() bool { return d.live == 0 && d.compl.Len() == 0 }
