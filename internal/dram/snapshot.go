package dram

// Checkpoint snapshot/restore. Tombstoned queue entries are dropped:
// the FR-FCFS scheduler and NextEvent skip dead entries and count only
// live ones against the scan window, so a queue rebuilt from the live
// entries in order behaves identically to the original (compaction
// thresholds differ, but compaction is invisible to scheduling). The
// completion heap is serialized in raw heap layout so equal-time
// completions keep their pop order (see eventq.Elems).

import "fmt"

// CompletionState mirrors one pending completion event.
type CompletionState struct {
	At3   uint64
	Token uint64
}

// State is a complete, detached snapshot of a DRAM channel.
type State struct {
	// Queue holds the live (unissued) requests in queue order.
	Queue       []Request
	BankBusy3   []uint64
	BankRow     []uint64
	BusFree3    uint64
	Completions []CompletionState // raw heap layout
	Stats       Stats
}

// Snapshot captures the channel's full behavioral state. The result
// shares no memory with the channel.
func (d *DRAM) Snapshot() *State {
	st := &State{
		BankBusy3: append([]uint64(nil), d.bankBusy3...),
		BankRow:   append([]uint64(nil), d.bankRow...),
		BusFree3:  d.busFree3,
		Stats:     d.Stats,
	}
	st.Stats.RequestsByKind = append([]uint64(nil), d.Stats.RequestsByKind...)
	st.Stats.BytesByKind = append([]uint64(nil), d.Stats.BytesByKind...)
	if d.live > 0 {
		st.Queue = make([]Request, 0, d.live)
		for _, p := range d.queue[d.head:] {
			if !p.dead {
				st.Queue = append(st.Queue, p.req)
			}
		}
	}
	for _, c := range d.compl.Elems() {
		st.Completions = append(st.Completions, CompletionState{At3: c.at3, Token: c.token})
	}
	return st
}

// Restore replaces the channel's state with a snapshot taken from a
// channel of identical configuration (bank count is validated).
func (d *DRAM) Restore(st *State) error {
	if len(st.BankBusy3) != d.cfg.Banks || len(st.BankRow) != d.cfg.Banks {
		return fmt.Errorf("dram: snapshot has %d/%d banks, channel has %d",
			len(st.BankBusy3), len(st.BankRow), d.cfg.Banks)
	}
	d.queue = d.queue[:0]
	for _, r := range st.Queue {
		d.queue = append(d.queue, pending{req: r})
	}
	d.head = 0
	d.live = len(st.Queue)
	copy(d.bankBusy3, st.BankBusy3)
	copy(d.bankRow, st.BankRow)
	d.busFree3 = st.BusFree3
	compl := make([]completion, 0, len(st.Completions))
	for _, c := range st.Completions {
		compl = append(compl, completion{at3: c.At3, token: c.Token})
	}
	d.compl.SetElems(compl)
	d.done = nil
	d.Stats = st.Stats
	d.Stats.RequestsByKind = append([]uint64(nil), st.Stats.RequestsByKind...)
	d.Stats.BytesByKind = append([]uint64(nil), st.Stats.BytesByKind...)
	return nil
}
