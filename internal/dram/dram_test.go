package dram

import "testing"

func run(d *DRAM, until uint64) map[uint64]uint64 {
	done := map[uint64]uint64{}
	for now := uint64(0); now <= until; now++ {
		for _, tok := range d.Tick(now) {
			done[tok] = now
		}
	}
	return done
}

func TestSingleReadLatency(t *testing.T) {
	d := New(DefaultConfig())
	d.Enqueue(Request{Addr: 0, Bytes: 32, Token: 1})
	done := run(d, 200)
	at, ok := done[1]
	if !ok {
		t.Fatal("request never completed")
	}
	// Row miss (50) + ~1.33 transfer, issued at cycle 0.
	if at < 50 || at > 55 {
		t.Fatalf("completion at %d, want ~51", at)
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	d := New(DefaultConfig())
	d.Enqueue(Request{Addr: 0, Bytes: 32, Token: 1})
	run(d, 200)
	// Same row again: row hit.
	d.Enqueue(Request{Addr: 32, Bytes: 32, Token: 2})
	start := uint64(201)
	var at uint64
	for now := start; now < start+200; now++ {
		for _, tok := range d.Tick(now) {
			if tok == 2 {
				at = now
			}
		}
	}
	lat := at - start
	if lat < 20 || lat > 25 {
		t.Fatalf("row-hit latency %d, want ~21", lat)
	}
	if d.Stats.RowHits != 1 || d.Stats.RowMisses != 1 {
		t.Fatalf("row stats: %+v", d.Stats)
	}
}

// TestBandwidthCeiling: a saturating stream of 32B reads must sustain
// ~24 bytes/cycle (the paper's 868 GB/s / 32 partitions).
func TestBandwidthCeiling(t *testing.T) {
	d := New(DefaultConfig())
	const n = 3000
	for i := 0; i < n; i++ {
		// Stride across banks so banks never bottleneck.
		d.Enqueue(Request{Addr: uint64(i) * 32, Bytes: 32, Token: uint64(i + 1)})
	}
	var lastDone uint64
	completed := 0
	for now := uint64(0); completed < n && now < 100000; now++ {
		toks := d.Tick(now)
		completed += len(toks)
		if len(toks) > 0 {
			lastDone = now
		}
	}
	if completed != n {
		t.Fatalf("only %d of %d completed", completed, n)
	}
	bpc := float64(n*32) / float64(lastDone)
	if bpc < 20 || bpc > 25 {
		t.Fatalf("sustained bandwidth %.2f B/cycle, want ~24", bpc)
	}
}

// TestWritesConsumeBandwidth: writes are posted (no completion token)
// but still occupy the bus, slowing a concurrent read stream.
func TestWritesConsumeBandwidth(t *testing.T) {
	timeReads := func(writes bool) uint64 {
		d := New(DefaultConfig())
		tok := uint64(1)
		for i := 0; i < 500; i++ {
			d.Enqueue(Request{Addr: uint64(i) * 32, Bytes: 32, Token: tok})
			tok++
			if writes {
				d.Enqueue(Request{Addr: uint64(1<<20) + uint64(i)*32, Bytes: 32, Write: true})
			}
		}
		completed := 0
		var now uint64
		for ; completed < 500 && now < 100000; now++ {
			completed += len(d.Tick(now))
		}
		return now
	}
	plain := timeReads(false)
	mixed := timeReads(true)
	if float64(mixed) < 1.5*float64(plain) {
		t.Fatalf("writes too cheap: reads-only %d cycles, mixed %d", plain, mixed)
	}
}

func TestLargerRequestsMoreBeats(t *testing.T) {
	d := New(DefaultConfig())
	d.Enqueue(Request{Addr: 0, Bytes: 128, Token: 1})
	d.Enqueue(Request{Addr: 4096, Bytes: 32, Token: 2})
	done := run(d, 500)
	if d.Stats.BytesRead != 160 {
		t.Fatalf("bytes read %d", d.Stats.BytesRead)
	}
	if done[1] == 0 || done[2] == 0 {
		t.Fatal("requests incomplete")
	}
}

func TestKindAccounting(t *testing.T) {
	d := New(DefaultConfig())
	d.Enqueue(Request{Addr: 0, Bytes: 32, Token: 1, Kind: 0})
	d.Enqueue(Request{Addr: 64, Bytes: 128, Token: 2, Kind: 3})
	run(d, 300)
	if d.Stats.RequestsByKind[0] != 1 || d.Stats.RequestsByKind[3] != 1 {
		t.Fatalf("kind requests: %v", d.Stats.RequestsByKind)
	}
	if d.Stats.BytesByKind[3] != 128 {
		t.Fatalf("kind bytes: %v", d.Stats.BytesByKind)
	}
}

func TestBankParallelism(t *testing.T) {
	// Requests to distinct banks overlap their access latencies; to
	// the same bank they serialize.
	sameBank := New(DefaultConfig())
	for i := 0; i < 8; i++ {
		sameBank.Enqueue(Request{Addr: uint64(i) * 4096 * 16, Bytes: 32, Token: uint64(i + 1)}) // same bank, diff rows
	}
	diffBank := New(DefaultConfig())
	for i := 0; i < 8; i++ {
		diffBank.Enqueue(Request{Addr: uint64(i) * 256, Bytes: 32, Token: uint64(i + 1)})
	}
	finish := func(d *DRAM) uint64 {
		completed := 0
		var now uint64
		for ; completed < 8 && now < 100000; now++ {
			completed += len(d.Tick(now))
		}
		return now
	}
	same := finish(sameBank)
	diff := finish(diffBank)
	if float64(same) < 2*float64(diff) {
		t.Fatalf("bank conflicts too cheap: same-bank %d, diff-bank %d", same, diff)
	}
}

func TestDrained(t *testing.T) {
	d := New(DefaultConfig())
	if !d.Drained() {
		t.Fatal("fresh channel not drained")
	}
	d.Enqueue(Request{Addr: 0, Bytes: 32, Token: 1})
	if d.Drained() {
		t.Fatal("queued channel drained")
	}
	run(d, 300)
	if !d.Drained() {
		t.Fatal("channel not drained after completion")
	}
}

func TestEnqueueValidation(t *testing.T) {
	d := New(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for zero-byte request")
		}
	}()
	d.Enqueue(Request{Addr: 0, Bytes: 0})
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for bad config")
		}
	}()
	New(Config{})
}

func TestPeakQueue(t *testing.T) {
	d := New(DefaultConfig())
	for i := 0; i < 10; i++ {
		d.Enqueue(Request{Addr: uint64(i) * 32, Bytes: 32, Token: uint64(i + 1)})
	}
	if d.Stats.PeakQueue != 10 {
		t.Fatalf("peak queue %d", d.Stats.PeakQueue)
	}
}

func BenchmarkDRAMTick(b *testing.B) {
	d := New(DefaultConfig())
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			d.Enqueue(Request{Addr: uint64(i) * 32, Bytes: 32, Token: uint64(i + 1)})
		}
		d.Tick(uint64(i))
	}
}
