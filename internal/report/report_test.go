package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := New("demo", "name", "value", "note")
	t.AddRow("alpha", 1.5, "x")
	t.AddRow("beta", 1234.5678, "y,z")
	t.AddRow("gamma", 42, `quote"me`)
	return t
}

func TestWriteTextAligned(t *testing.T) {
	var b strings.Builder
	if err := sample().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, separator, 3 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: every data line's second column starts at the
	// same offset.
	idx := strings.Index(lines[1], "value")
	for _, l := range lines[2:] {
		if len(l) < idx {
			t.Fatalf("short line %q", l)
		}
	}
}

func TestWriteCSVQuoting(t *testing.T) {
	var b strings.Builder
	if err := sample().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"y,z"`) {
		t.Errorf("comma cell not quoted:\n%s", out)
	}
	if !strings.Contains(out, `"quote""me"`) {
		t.Errorf("quote cell not escaped:\n%s", out)
	}
	if !strings.HasPrefix(out, "name,value,note\n") {
		t.Errorf("header wrong:\n%s", out)
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := map[float64]string{
		42:        "42",
		1.5:       "1.500",
		1234.5678: "1234.6",
		0.123456:  "0.123",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestHelpers(t *testing.T) {
	if Pct(0.1234) != "12.34%" {
		t.Errorf("Pct: %s", Pct(0.1234))
	}
	if F3(0.12345) != "0.123" {
		t.Errorf("F3: %s", F3(0.12345))
	}
}

func TestUntitledTable(t *testing.T) {
	tab := New("", "a")
	tab.AddRow("x")
	var b strings.Builder
	if err := tab.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "==") {
		t.Error("untitled table printed a title bar")
	}
}

func TestWriteMarkdown(t *testing.T) {
	var b strings.Builder
	if err := sample().WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "### demo") {
		t.Error("missing heading")
	}
	if !strings.Contains(out, "| name | value | note |") {
		t.Errorf("header row missing:\n%s", out)
	}
	if !strings.Contains(out, "|---|---|---|") {
		t.Error("separator missing")
	}
	if !strings.Contains(out, "| alpha | 1.500 | x |") {
		t.Errorf("data row missing:\n%s", out)
	}
}

func TestMarkdownEscapesPipes(t *testing.T) {
	tab := New("t", "a")
	tab.AddRow("x|y")
	var b strings.Builder
	if err := tab.WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `x\|y`) {
		t.Errorf("pipe not escaped:\n%s", b.String())
	}
}

func TestFormatDispatch(t *testing.T) {
	for _, f := range Formats {
		if !ValidFormat(f) {
			t.Errorf("%s should be valid", f)
		}
	}
	if ValidFormat("yaml") {
		t.Error("yaml should be invalid")
	}
	if Ext("md") != "md" || Ext("csv") != "csv" || Ext("text") != "txt" {
		t.Error("extension mapping wrong")
	}
	// Write dispatches on format name.
	for format, marker := range map[string]string{
		"text": "== demo ==",
		"csv":  "name,value,note",
		"md":   "### demo",
	} {
		var b strings.Builder
		if err := sample().Write(&b, format); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(b.String(), marker) {
			t.Errorf("%s output missing %q:\n%s", format, marker, b.String())
		}
	}
}
