// Package report renders experiment output as aligned text tables and
// CSV, the two formats the harness emits for every reproduced table
// and figure.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-oriented table builder.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// formatFloat picks a compact precision: integers print bare, small
// magnitudes keep 3 significant decimals.
func formatFloat(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15 && v > -1e15:
		return fmt.Sprintf("%d", int64(v))
	case v >= 100 || v <= -100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// WriteText renders an aligned, boxed text table.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as RFC-4180-ish CSV (quotes only when
// needed).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteMarkdown renders a GitHub-flavoured markdown table (with the
// title as a heading), for inclusion in EXPERIMENTS.md-style reports.
func (t *Table) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	esc := func(c string) string { return strings.ReplaceAll(c, "|", "\\|") }
	b.WriteString("|")
	for _, h := range t.Headers {
		b.WriteString(" " + esc(h) + " |")
	}
	b.WriteString("\n|")
	for range t.Headers {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		b.WriteString("|")
		for _, c := range row {
			b.WriteString(" " + esc(c) + " |")
		}
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Formats supported by Write, in CLI-help order.
var Formats = []string{"text", "csv", "md"}

// ValidFormat reports whether Write accepts the format name.
func ValidFormat(format string) bool {
	for _, f := range Formats {
		if f == format {
			return true
		}
	}
	return false
}

// Write renders the table in the named format ("text", "csv" or
// "md"); unknown names fall back to text, matching the CLI's default.
func (t *Table) Write(w io.Writer, format string) error {
	switch format {
	case "csv":
		return t.WriteCSV(w)
	case "md":
		return t.WriteMarkdown(w)
	default:
		return t.WriteText(w)
	}
}

// Ext returns the file extension for a format.
func Ext(format string) string {
	switch format {
	case "csv", "md":
		return format
	default:
		return "txt"
	}
}

// Pct formats a ratio as a percentage string.
func Pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

// F3 formats with three decimals (normalized IPC convention).
func F3(v float64) string { return fmt.Sprintf("%.3f", v) }
