package atomicfile

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileCommits(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "hello\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "hello\n" {
		t.Fatalf("content = %q", b)
	}
}

func TestFailedFillLeavesOldContent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	wantErr := fmt.Errorf("boom")
	err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return wantErr
	})
	if err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "old" {
		t.Fatalf("destination overwritten with %q", b)
	}
}

func TestAbortLeavesNoFileOrTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(f, "half-written")
	f.Abort()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("destination exists after abort (stat err %v)", err)
	}
	assertNoTempFiles(t, dir)
}

func TestCommitRemovesTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(f, "x")
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	f.Abort() // post-commit abort must be a no-op
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "x" {
		t.Fatalf("content %q err %v", b, err)
	}
	assertNoTempFiles(t, dir)
}

func TestDoubleCommitErrors(t *testing.T) {
	f, err := Create(filepath.Join(t.TempDir(), "out.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err == nil {
		t.Fatal("second Commit succeeded")
	}
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}
