// Package atomicfile writes files crash-safely: content goes to a
// temporary file in the destination directory and is renamed over the
// target only on Commit. A mid-write error, a kill, or an abandoned
// writer leaves either the old file or no file — never a truncated
// artifact that parses as corrupt. Every artifact writer in the repo
// (timelines, traces, stats reports, profiles, experiment tables,
// cache entries) goes through this package.
//
// Concurrency and aliasing contract: one File is single-owner — its
// Write/Commit/Abort must come from one goroutine at a time. Distinct
// writers targeting the same path need no coordination with each
// other: each stages into its own unique temp file and the final
// rename is atomic, so concurrent committers race only over which
// complete file wins, never over partial content (this is what lets
// many resultcache writers share a directory).
package atomicfile

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// File is an in-progress atomic write. It implements io.Writer so
// streaming producers (pprof, encoders) can target it directly.
type File struct {
	tmp  *os.File
	path string
	done bool
}

// Create starts an atomic write of path. The temporary file lives in
// path's directory so the final rename stays on one filesystem.
func Create(path string) (*File, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, err
	}
	return &File{tmp: tmp, path: path}, nil
}

// Write appends to the temporary file.
func (f *File) Write(p []byte) (int, error) { return f.tmp.Write(p) }

// Commit flushes the temporary file to stable storage and renames it
// over the destination. After Commit the File is spent.
func (f *File) Commit() error {
	if f.done {
		return fmt.Errorf("atomicfile: %s already committed or aborted", f.path)
	}
	f.done = true
	if err := f.tmp.Sync(); err != nil {
		f.cleanup()
		return err
	}
	if err := f.tmp.Close(); err != nil {
		os.Remove(f.tmp.Name())
		return err
	}
	if err := os.Rename(f.tmp.Name(), f.path); err != nil {
		os.Remove(f.tmp.Name())
		return err
	}
	return nil
}

// Abort discards the temporary file, leaving any existing destination
// untouched. Safe to call after Commit (a no-op), so callers can
// `defer f.Abort()` and Commit on the success path.
func (f *File) Abort() {
	if f.done {
		return
	}
	f.done = true
	f.cleanup()
}

func (f *File) cleanup() {
	f.tmp.Close()
	os.Remove(f.tmp.Name())
}

// WriteFile writes path atomically with the content produced by fill.
// Any error — from fill or the filesystem — leaves the destination
// untouched.
func WriteFile(path string, fill func(io.Writer) error) error {
	f, err := Create(path)
	if err != nil {
		return err
	}
	defer f.Abort()
	if err := fill(f); err != nil {
		return err
	}
	return f.Commit()
}
