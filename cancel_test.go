package gpusecmem

// Cancellation semantics of the singleflight memo: a cancelled run
// propagates the bare context error, is never memoized, and never
// poisons waiters — they retry and the next attempt completes.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// blockingSimulate returns a simulate stub whose first call blocks
// until its context dies (reporting the context error) and whose
// later calls succeed immediately.
func blockingSimulate(calls *atomic.Int64, started chan<- struct{}) func(context.Context, Config, string) (*Result, error) {
	return func(ctx context.Context, cfg Config, benchmark string) (*Result, error) {
		if calls.Add(1) == 1 {
			close(started)
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return &Result{Benchmark: benchmark, Cycles: cfg.MaxCycles, Instructions: 1}, nil
	}
}

func TestRunECancelledNotMemoized(t *testing.T) {
	gctx := NewContext(Options{Cycles: 1000})
	var calls atomic.Int64
	started := make(chan struct{})
	gctx.simulate = blockingSimulate(&calls, started)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := gctx.RunE(ctx, BaselineConfig(), "nw")
		errc <- err
	}()
	<-started
	cancel()
	err := <-errc

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var re *RunError
	if errors.As(err, &re) {
		t.Fatalf("cancellation wrapped in *RunError: %v", err)
	}

	// The failure is NOT memoized: a retry simulates again and
	// completes.
	res, err := gctx.RunE(context.Background(), BaselineConfig(), "nw")
	if err != nil {
		t.Fatalf("retry after cancel failed: %v", err)
	}
	if res == nil || res.Instructions != 1 {
		t.Fatalf("retry returned %+v", res)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("simulate called %d times, want 2 (cancelled + retry)", n)
	}
}

// TestCancelWaitersRetry pins the waiter contract: goroutines blocked
// on a flight whose owner gets cancelled must not inherit the
// cancellation — they retry the run under their own context.
func TestCancelWaitersRetry(t *testing.T) {
	gctx := NewContext(Options{Cycles: 1000})
	var calls atomic.Int64
	started := make(chan struct{})
	gctx.simulate = blockingSimulate(&calls, started)

	ctxA, cancelA := context.WithCancel(context.Background())
	errA := make(chan error, 1)
	go func() {
		_, err := gctx.RunE(ctxA, BaselineConfig(), "nw")
		errA <- err
	}()
	<-started

	// B joins the in-flight run with an independent context.
	const waiters = 8
	var wg sync.WaitGroup
	results := make([]*Result, waiters)
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = gctx.RunE(context.Background(), BaselineConfig(), "nw")
		}(i)
	}
	// Give the waiters a moment to park on the flight, then cancel the
	// owner out from under them.
	time.Sleep(10 * time.Millisecond)
	cancelA()

	if err := <-errA; !errors.Is(err, context.Canceled) {
		t.Fatalf("owner err = %v, want context.Canceled", err)
	}
	wg.Wait()
	for i := 0; i < waiters; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d inherited the cancellation: %v", i, errs[i])
		}
		if results[i] == nil || results[i].Instructions != 1 {
			t.Fatalf("waiter %d result = %+v", i, results[i])
		}
	}
	// Exactly one retry ran for all waiters (singleflight held).
	if n := calls.Load(); n != 2 {
		t.Fatalf("simulate called %d times, want 2 (cancelled + one shared retry)", n)
	}
}

// TestRunECancelledSkipsDiskCache asserts a cancelled attempt leaves
// the persistent tier untouched and the retry populates it normally.
func TestRunECancelledSkipsDiskCache(t *testing.T) {
	gctx := NewContext(Options{Cycles: 1000})
	var calls atomic.Int64
	started := make(chan struct{})
	gctx.simulate = blockingSimulate(&calls, started)
	disk := &mapCache{m: make(map[string]*Result)}
	gctx.SetResultCache(disk)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := gctx.RunE(ctx, BaselineConfig(), "nw")
		errc <- err
	}()
	<-started
	cancel()
	<-errc

	if n := len(disk.m); n != 0 {
		t.Fatalf("cancelled run wrote %d disk entries", n)
	}
	if _, err := gctx.RunE(context.Background(), BaselineConfig(), "nw"); err != nil {
		t.Fatal(err)
	}
	if n := len(disk.m); n != 1 {
		t.Fatalf("retry wrote %d disk entries, want 1", n)
	}
	st := gctx.CacheStats()
	if st.DiskHits != 0 {
		t.Fatalf("unexpected disk hits: %+v", st)
	}
}

// TestRunEDiskHit verifies the persistent tier short-circuits
// simulation and is counted.
func TestRunEDiskHit(t *testing.T) {
	gctx := NewContext(Options{Cycles: 1000})
	var calls atomic.Int64
	gctx.simulate = func(context.Context, Config, string) (*Result, error) {
		calls.Add(1)
		return nil, errors.New("should not simulate")
	}
	want := &Result{Benchmark: "nw", Instructions: 42}
	keyCfg := BaselineConfig()
	keyCfg.MaxCycles = 1000 // RunE applies Options.Cycles before keying
	disk := &mapCache{m: map[string]*Result{
		RunKey(keyCfg, "nw"): want,
	}}
	gctx.SetResultCache(disk)

	res, err := gctx.RunE(context.Background(), BaselineConfig(), "nw")
	if err != nil {
		t.Fatal(err)
	}
	if res != want {
		t.Fatalf("res = %+v, want the disk entry", res)
	}
	if calls.Load() != 0 {
		t.Fatal("disk hit still simulated")
	}
	if st := gctx.CacheStats(); st.DiskHits != 1 {
		t.Fatalf("stats = %+v, want 1 disk hit", st)
	}
	// And the memo now holds it: a second call is a memory hit, no
	// second disk read.
	disk.m = nil
	if _, err := gctx.RunE(context.Background(), BaselineConfig(), "nw"); err != nil {
		t.Fatal(err)
	}
	if st := gctx.CacheStats(); st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 memo hit", st)
	}
}

// mapCache is a trivial in-memory ResultCache for tests. Method
// receivers take the lock so concurrent RunE calls stay race-clean.
type mapCache struct {
	mu sync.Mutex
	m  map[string]*Result
}

func (c *mapCache) Get(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[key]
	return r, ok
}

func (c *mapCache) Put(key string, res *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[string]*Result)
	}
	c.m[key] = res
}
