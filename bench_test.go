package gpusecmem

// One testing.B per reproduced table and figure. Each bench regenerates
// its experiment through the shared memoized context (so the suite as a
// whole simulates each distinct configuration once) and reports the
// experiment's headline number as a custom metric where one exists.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Absolute IPC values are not expected to match the paper (the
// substrate is a from-scratch simulator, not the authors' GPGPU-Sim
// testbed); the *shape* — which scheme wins, by roughly what factor —
// is the reproduction target and is recorded in EXPERIMENTS.md.

import (
	"io"
	"sync"
	"testing"
)

// benchCycles keeps the full suite tractable while preserving the
// steady-state comparisons; cmd/experiments defaults to 24000.
const benchCycles = 6000

var (
	benchCtxOnce sync.Once
	benchCtx     *Context
)

func sharedCtx() *Context {
	benchCtxOnce.Do(func() {
		benchCtx = NewContext(Options{Cycles: benchCycles})
	})
	return benchCtx
}

// runExperiment drives one experiment end to end, rendering its tables
// to io.Discard so formatting cost is included but output is not.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := ExperimentByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	ctx := sharedCtx()
	for i := 0; i < b.N; i++ {
		tables := e.Run(ctx)
		if len(tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
		for _, t := range tables {
			if err := t.WriteText(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func reportGmean(b *testing.B, cfg Config) {
	b.Helper()
	b.ReportMetric(GmeanNormalizedIPC(sharedCtx(), cfg), "gmeanNormIPC")
}

func BenchmarkTable1Baseline(b *testing.B)        { runExperiment(b, "table1") }
func BenchmarkTable2MetadataStorage(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkTable3MetaCacheConfig(b *testing.B) { runExperiment(b, "table3") }
func BenchmarkTable4Workloads(b *testing.B)       { runExperiment(b, "table4") }
func BenchmarkTable5DesignMatrix(b *testing.B)    { runExperiment(b, "table5") }

func BenchmarkFig3CounterModeOverhead(b *testing.B) {
	runExperiment(b, "fig3")
	cfg := SecureMemConfig()
	cfg.Secure.MetaMSHRs = 0
	reportGmean(b, cfg)
}

func BenchmarkFig4TrafficBreakdown(b *testing.B) { runExperiment(b, "fig4") }

func BenchmarkFig5SecondaryMisses(b *testing.B) { runExperiment(b, "fig5") }

func BenchmarkFig6MSHRSweep(b *testing.B) {
	runExperiment(b, "fig6")
	reportGmean(b, SecureMemConfig()) // mshr_64 point
}

func BenchmarkFig7MetaCacheSize(b *testing.B) { runExperiment(b, "fig7") }

func BenchmarkFig8UnifiedVsSeparate(b *testing.B) { runExperiment(b, "fig8") }

func BenchmarkFig9MissRates(b *testing.B) { runExperiment(b, "fig9") }

func BenchmarkFig10CounterReuse(b *testing.B) { runExperiment(b, "fig10") }

func BenchmarkFig11MACReuse(b *testing.B) { runExperiment(b, "fig11") }

func BenchmarkFig12AESEngines(b *testing.B) { runExperiment(b, "fig12") }

func BenchmarkTable6AESAreas(b *testing.B) { runExperiment(b, "table6") }

func BenchmarkTable7Area(b *testing.B) { runExperiment(b, "table7") }

func BenchmarkFig13L2Capacity(b *testing.B) { runExperiment(b, "fig13") }

func BenchmarkFig14L2MissRate(b *testing.B) { runExperiment(b, "fig14") }

func BenchmarkFig15DirectLatency(b *testing.B) {
	runExperiment(b, "fig15")
	reportGmean(b, DirectMemConfig(40, false, false))
}

func BenchmarkFig16DirectVsCounter(b *testing.B) { runExperiment(b, "fig16") }

func BenchmarkFig17Integrity(b *testing.B) {
	runExperiment(b, "fig17")
	reportGmean(b, SecureMemConfig()) // ctr_mac_bmt point
}

// --- Ablation benches for the design choices DESIGN.md calls out ---

func BenchmarkAblationMergeCap(b *testing.B)    { runExperiment(b, "ablation-mergecap") }
func BenchmarkAblationAllocPolicy(b *testing.B) { runExperiment(b, "ablation-allocpolicy") }
func BenchmarkAblationSpecVerify(b *testing.B)  { runExperiment(b, "ablation-specverify") }
func BenchmarkAblationLazyUpdate(b *testing.B)  { runExperiment(b, "ablation-lazyupdate") }
func BenchmarkAblationSectoredL2(b *testing.B)  { runExperiment(b, "ablation-sectoredl2") }

// BenchmarkExtSmartUnified evaluates the paper's Section V-D
// suggestion of thrash-resistant replacement for the unified cache.
func BenchmarkExtSmartUnified(b *testing.B) { runExperiment(b, "ext-smartunified") }

// BenchmarkExtSelective evaluates the related-work trade-off of
// protecting only part of device memory.
func BenchmarkExtSelective(b *testing.B) { runExperiment(b, "ext-selective") }

// BenchmarkExtFaultCoverage measures fault detection across
// protection levels under a deterministic injection campaign.
func BenchmarkExtFaultCoverage(b *testing.B) { runExperiment(b, "ext-faultcoverage") }

// BenchmarkContextMemoHit measures the singleflight cache's hit path
// — key canonicalization plus map lookup — which every memoized
// request pays. It is the fixed overhead the parallel runner adds per
// shared run.
func BenchmarkContextMemoHit(b *testing.B) {
	ctx := NewContext(Options{Cycles: 1000, Benchmarks: []string{"nw"}})
	cfg := SecureMemConfig()
	ctx.Run(cfg, "nw") // warm the one entry
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Run(cfg, "nw")
	}
}

// BenchmarkContextMemoHitParallel hammers the hit path from all procs,
// the contention profile of a sweep whose workers mostly share runs.
func BenchmarkContextMemoHitParallel(b *testing.B) {
	ctx := NewContext(Options{Cycles: 1000, Benchmarks: []string{"nw"}})
	cfg := SecureMemConfig()
	ctx.Run(cfg, "nw")
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			ctx.Run(cfg, "nw")
		}
	})
}

// BenchmarkRunKey isolates canonical-key construction (JSON encoding
// of the full Config).
func BenchmarkRunKey(b *testing.B) {
	cfg := SecureMemConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if RunKey(cfg, "nw") == "" {
			b.Fatal("empty key")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed
// (cycles/sec) on the heaviest configuration, for performance-tracking
// rather than paper reproduction.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := SecureMemConfig()
	cfg.MaxCycles = 2000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg, "fdtd2d"); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cfg.MaxCycles), "cycles/op")
}
