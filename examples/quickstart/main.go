// Quickstart: a functional secure GPU memory in thirty lines.
//
// Builds a counter-mode secure memory (split counters + sector MACs +
// Bonsai Merkle Tree), writes and reads data through it, and shows
// that the untrusted backing store only ever sees ciphertext.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	"gpusecmem"
)

func main() {
	var keys gpusecmem.Keys
	copy(keys.Encryption[:], "quickstart-enc-k")
	copy(keys.MAC[:], "quickstart-mac-k")
	copy(keys.Tree[:], "quickstart-tree")

	// 1 MB protected region with encryption + MACs + BMT.
	mem, err := gpusecmem.NewCounterModeMemory(1<<20, keys, gpusecmem.FullProtection)
	if err != nil {
		log.Fatal(err)
	}

	secret := make([]byte, 128)
	copy(secret, "model weights: [0.23, -1.17, 4.2, ...]")
	if err := mem.WriteLine(0x1000, secret); err != nil {
		log.Fatal(err)
	}

	// The device DRAM (untrusted) holds only ciphertext.
	raw := mem.Backing().Snapshot(0x1000, 128)
	fmt.Printf("plaintext:  %q\n", secret[:38])
	fmt.Printf("in DRAM:    %x...\n", raw[:24])
	if bytes.Contains(raw, secret[:16]) {
		log.Fatal("plaintext leaked to DRAM!")
	}

	// Reading back verifies MACs and the BMT chain, then decrypts.
	got := make([]byte, 128)
	if err := mem.ReadLine(0x1000, got); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back:  %q\n", got[:38])

	// A physical attacker flips one DRAM bit...
	mem.Backing().Write(0x1000, []byte{raw[0] ^ 0x01})
	if err := mem.ReadLine(0x1000, got); err != nil {
		fmt.Printf("tamper:     detected -> %v\n", err)
	} else {
		log.Fatal("tampering was not detected")
	}
}
