// Workloadstudy characterizes the fourteen Table IV workloads on the
// baseline (insecure) GPU: bandwidth utilization, IPC, cache miss
// rates, and the resulting intensity class, side by side with the
// paper's reported values. It is the reproduction of Table IV plus
// Figure 14.
//
//	go run ./examples/workloadstudy
package main

import (
	"flag"
	"fmt"
	"log"

	"gpusecmem"
)

func main() {
	cycles := flag.Uint64("cycles", 20000, "simulated cycles per benchmark")
	flag.Parse()

	cfg := gpusecmem.BaselineConfig()
	cfg.MaxCycles = *cycles

	fmt.Printf("%-14s %9s %10s %8s %8s %8s\n",
		"benchmark", "IPC", "paper-IPC", "bw-util", "L1-miss", "L2-miss")
	for _, b := range gpusecmem.Benchmarks() {
		res, err := gpusecmem.Simulate(cfg, b)
		if err != nil {
			log.Fatal(err)
		}
		paperIPC := map[string]float64{
			"heartwall": 1195.37, "lavaMD": 4615.23, "nw": 23.90, "b+tree": 2768.61,
			"backprop": 3067.61, "cfd": 1076.98, "dwt2d": 784.70, "kmeans": 97.04,
			"bfs": 699.51, "srad_v2": 3306.82, "streamcluster": 1178.18,
			"2Dconvolution": 2487.22, "fdtd2d": 1773.95, "lbm": 552.12,
		}[b]
		fmt.Printf("%-14s %9.1f %10.1f %7.1f%% %7.1f%% %7.1f%%\n",
			b, res.IPC(), paperIPC,
			100*res.BandwidthUtilization(),
			100*res.L1.MissRate(), 100*res.L2.MissRate())
	}
	fmt.Println("\nclasses: <20% non-intensive, 20-50% medium, >50% memory-intensive (Table IV)")
}
