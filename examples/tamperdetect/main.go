// Tamperdetect plays the paper's physical attacker (Section II-B)
// against both secure-memory architectures at several protection
// levels, and prints which attacks each level stops:
//
//   - bus snooping (reading DRAM): defeated by encryption alone
//   - data tampering: needs MACs
//   - splicing (relocating valid ciphertext): needs address-bound MACs
//   - replay (restoring stale data+metadata): needs the integrity tree
//     (BMT over counters, or MT over MAC lines)
//
// The run demonstrates the paper's Section VI-B argument concretely:
// counter-mode encryption without a BMT loses to replay, and direct
// encryption with MACs but no MT does too.
//
//	go run ./examples/tamperdetect
package main

import (
	"bytes"
	"fmt"
	"log"

	"gpusecmem"
)

const region = 64 * 1024

func buildEngines() map[string]gpusecmem.SecureMemory {
	var keys gpusecmem.Keys
	copy(keys.Encryption[:], "tamper-demo-enc!")
	copy(keys.MAC[:], "tamper-demo-mac!")
	copy(keys.Tree[:], "tamper-demo-tree")
	mk := func(e gpusecmem.SecureMemory, err error) gpusecmem.SecureMemory {
		if err != nil {
			log.Fatal(err)
		}
		return e
	}
	return map[string]gpusecmem.SecureMemory{
		"ctr (enc only)":        mk(gpusecmem.NewCounterModeMemory(region, keys, gpusecmem.Protection{})),
		"ctr+mac":               mk(gpusecmem.NewCounterModeMemory(region, keys, gpusecmem.Protection{MAC: true})),
		"ctr+mac+bmt":           mk(gpusecmem.NewCounterModeMemory(region, keys, gpusecmem.FullProtection)),
		"direct (enc only)":     mk(gpusecmem.NewDirectMemory(region, keys, gpusecmem.Protection{})),
		"direct+mac":            mk(gpusecmem.NewDirectMemory(region, keys, gpusecmem.Protection{MAC: true})),
		"direct+mac+merkletree": mk(gpusecmem.NewDirectMemory(region, keys, gpusecmem.FullProtection)),
	}
}

// attack returns "detected", "undetected", or "n/a".
type attack func(e gpusecmem.SecureMemory) string

func outcome(e gpusecmem.SecureMemory, addr uint64) string {
	buf := make([]byte, 128)
	if err := e.ReadLine(addr, buf); err != nil {
		return "detected"
	}
	return "UNDETECTED"
}

func snoop(e gpusecmem.SecureMemory) string {
	secret := make([]byte, 128)
	copy(secret, "sixteen byte key")
	if err := e.WriteLine(0, secret); err != nil {
		log.Fatal(err)
	}
	raw := e.Backing().Snapshot(0, 128)
	if bytes.Contains(raw, secret[:16]) {
		return "PLAINTEXT VISIBLE"
	}
	return "ciphertext only"
}

func tamper(e gpusecmem.SecureMemory) string {
	if err := e.WriteLine(0x400, make([]byte, 128)); err != nil {
		log.Fatal(err)
	}
	b := e.Backing().Snapshot(0x400, 1)
	e.Backing().Write(0x400, []byte{b[0] ^ 0xff})
	return outcome(e, 0x400)
}

func splice(e gpusecmem.SecureMemory) string {
	a := make([]byte, 128)
	copy(a, "line A")
	b := make([]byte, 128)
	copy(b, "line B")
	if err := e.WriteLine(0x000, a); err != nil {
		log.Fatal(err)
	}
	if err := e.WriteLine(0x080, b); err != nil {
		log.Fatal(err)
	}
	// Move A's ciphertext (and its MACs) over B.
	ct := e.Backing().Snapshot(0x000, 128)
	e.Backing().Write(0x080, ct)
	lay := e.Layout()
	for s := uint64(0); s < 4; s++ {
		src := lay.MACSectorAddr(0x000 + s*32)
		dst := lay.MACSectorAddr(0x080 + s*32)
		e.Backing().WriteUint16(dst, e.Backing().ReadUint16(src))
	}
	got := make([]byte, 128)
	if err := e.ReadLine(0x080, got); err != nil {
		return "detected"
	}
	if bytes.HasPrefix(got, []byte("line A")) {
		return "UNDETECTED (A spliced over B)"
	}
	return "UNDETECTED (garbage)"
}

func replay(e gpusecmem.SecureMemory) string {
	old := make([]byte, 128)
	copy(old, "stale balance $1000000")
	if err := e.WriteLine(0x800, old); err != nil {
		log.Fatal(err)
	}
	lay := e.Layout()
	macLine := lay.MACLineAddr(lay.MACLine(0x800))
	snapData := e.Backing().Snapshot(0x800, 128)
	snapMAC := e.Backing().Snapshot(macLine, 128)
	var snapCtr []byte
	var ctrAddr uint64
	if lay.NumCounterLines > 0 {
		ctrAddr = lay.CounterLineAddr(lay.CounterLine(0x800))
		snapCtr = e.Backing().Snapshot(ctrAddr, 128)
	}

	fresh := make([]byte, 128)
	copy(fresh, "fresh balance $5")
	if err := e.WriteLine(0x800, fresh); err != nil {
		log.Fatal(err)
	}

	e.Backing().Write(0x800, snapData)
	e.Backing().Write(macLine, snapMAC)
	if snapCtr != nil {
		e.Backing().Write(ctrAddr, snapCtr)
	}
	got := make([]byte, 128)
	if err := e.ReadLine(0x800, got); err != nil {
		return "detected"
	}
	if bytes.HasPrefix(got, []byte("stale balance")) {
		return "UNDETECTED (stale data restored)"
	}
	return "UNDETECTED (garbage)"
}

func main() {
	attacks := []struct {
		name string
		fn   attack
	}{
		{"bus snooping", snoop},
		{"data tamper", tamper},
		{"splice", splice},
		{"replay", replay},
	}
	names := []string{
		"ctr (enc only)", "ctr+mac", "ctr+mac+bmt",
		"direct (enc only)", "direct+mac", "direct+mac+merkletree",
	}
	fmt.Printf("%-22s", "scheme")
	for _, a := range attacks {
		fmt.Printf("  %-30s", a.name)
	}
	fmt.Println()
	for _, n := range names {
		// Fresh engines per attack so state does not leak between
		// scenarios.
		fmt.Printf("%-22s", n)
		for _, a := range attacks {
			e := buildEngines()[n]
			fmt.Printf("  %-30s", a.fn(e))
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("Note how replay is UNDETECTED for ctr+mac (no BMT) and direct+mac (no MT):")
	fmt.Println("this is exactly why the paper's Section VI-B insists counter integrity")
	fmt.Println("needs the BMT, and why the MT exists despite its Figure 17 cost.")
}
