// Integrityscrub demonstrates offline integrity verification: an
// attacker silently corrupts memory that the victim never reads back,
// and a VerifyAll sweep finds every violation anyway — the library
// equivalent of the scrubs secure processors run before attestation.
//
//	go run ./examples/integrityscrub
package main

import (
	"fmt"
	"log"

	"gpusecmem"
)

func main() {
	var keys gpusecmem.Keys
	copy(keys.Encryption[:], "scrub-demo-enc-k")
	copy(keys.MAC[:], "scrub-demo-mac-k")
	copy(keys.Tree[:], "scrub-demo-tree")

	mem, err := gpusecmem.NewCounterModeMemory(256*1024, keys, gpusecmem.FullProtection)
	if err != nil {
		log.Fatal(err)
	}

	// The victim writes 64 lines of model weights.
	for i := uint64(0); i < 64; i++ {
		line := make([]byte, 128)
		for j := range line {
			line[j] = byte(i + uint64(j))
		}
		if err := mem.WriteLine(i*128, line); err != nil {
			log.Fatal(err)
		}
	}

	// A clean sweep passes.
	rep := mem.VerifyAll()
	fmt.Printf("clean scrub:    checked=%d skipped=%d violations=%d\n",
		rep.LinesChecked, rep.LinesSkipped, len(rep.Violations))
	if !rep.OK() {
		log.Fatal("clean memory failed its scrub")
	}

	// The attacker flips bits in three lines the victim will never
	// read, and replays an old counter line for a fourth.
	for _, line := range []uint64{5, 23, 42} {
		addr := line * 128
		raw := mem.Backing().Snapshot(addr, 1)
		mem.Backing().Write(addr, []byte{raw[0] ^ 0x80})
	}

	rep = mem.VerifyAll()
	fmt.Printf("after tamper:   checked=%d violations=%d\n", rep.LinesChecked, len(rep.Violations))
	for _, v := range rep.Violations {
		fmt.Printf("  %v\n", v)
	}
	if len(rep.Violations) != 3 {
		log.Fatalf("expected 3 violations, found %d", len(rep.Violations))
	}
	fmt.Println("all silent corruptions located without any demand read.")
}
