// Designsweep runs a miniature version of the paper's design-space
// exploration on a selectable set of workloads: it sweeps the
// metadata cache size and MSHR count for counter-mode encryption and
// compares counter mode against direct encryption, printing
// normalized-IPC tables like Figures 6, 7 and 17.
//
//	go run ./examples/designsweep
//	go run ./examples/designsweep -benchmarks fdtd2d,lbm -cycles 30000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gpusecmem"
)

func main() {
	var (
		benchmarks = flag.String("benchmarks", "nw,kmeans,fdtd2d", "comma-separated Table IV benchmarks")
		cycles     = flag.Uint64("cycles", 12000, "simulated cycles per run")
	)
	flag.Parse()

	ctx := gpusecmem.NewContext(gpusecmem.Options{
		Cycles:     *cycles,
		Benchmarks: strings.Split(*benchmarks, ","),
	})

	for _, id := range []string{"fig6", "fig7", "fig17"} {
		e, ok := gpusecmem.ExperimentByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "missing experiment %s\n", id)
			os.Exit(1)
		}
		fmt.Printf("# %s\n", e.Title)
		for _, t := range e.Run(ctx) {
			if err := t.WriteText(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println()
		}
	}
	fmt.Printf("(%d distinct simulations, memoized across the three figures)\n", ctx.CachedRuns())
}
