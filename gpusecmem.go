// Package gpusecmem reproduces "Analyzing Secure Memory Architecture
// for GPUs" (Yuan, Yudha, Solihin, Zhou — ISPASS 2021).
//
// The package has two halves, mirroring the paper:
//
//   - A *functional* secure-memory library: real counter-mode and
//     direct-encryption engines (AES-128, AES-CMAC, split counters,
//     Bonsai Merkle Tree / Merkle Tree, on-chip root register) that
//     encrypt, authenticate, and detect tampering and replay of an
//     untrusted backing store. See NewCounterModeMemory and
//     NewDirectMemory.
//
//   - A cycle-level GPU *timing simulator* of the same architectures:
//     80 Volta-class SMs, sectored L2, 32 memory partitions, per-
//     partition metadata caches with MSHRs, pipelined AES engines, and
//     banked DRAM. See BaselineConfig, SecureMemConfig, Simulate, and
//     the Experiments registry, which regenerates every table and
//     figure in the paper's evaluation.
package gpusecmem

import (
	"context"
	"fmt"
	"io"

	"gpusecmem/internal/faults"
	"gpusecmem/internal/geometry"
	"gpusecmem/internal/probe"
	"gpusecmem/internal/secmem"
	"gpusecmem/internal/sim"
	"gpusecmem/internal/trace"
)

// --- Functional secure memory ---

// Keys holds the engine's three on-chip secret keys (encryption, MAC,
// tree).
type Keys = secmem.Keys

// Protection selects MAC and integrity-tree coverage.
type Protection = secmem.Protection

// Integrity-tree node hash functions for Protection.TreeHash.
const (
	// TreeHashCMAC hashes tree nodes with AES-CMAC (default).
	TreeHashCMAC = secmem.TreeHashCMAC
	// TreeHashSHA256 hashes tree nodes with keyed SHA-256, the classic
	// Merkle-tree construction.
	TreeHashSHA256 = secmem.TreeHashSHA256
)

// FullProtection enables encryption, MACs and the integrity tree.
var FullProtection = secmem.FullProtection

// SecureMemory is the functional engine interface: line/sector reads
// and writes over an encrypted, integrity-protected address space,
// plus raw access to the untrusted backing store for attack studies.
type SecureMemory = secmem.Engine

// IntegrityError is returned when a read fails MAC or tree
// verification (tamper or replay detected).
type IntegrityError = secmem.IntegrityError

// ScrubReport is the outcome of SecureMemory.VerifyAll: an offline
// integrity sweep of the whole protected region.
type ScrubReport = secmem.ScrubReport

// NewCounterModeMemory builds a counter-mode engine (split counters,
// stateful sector MACs, Bonsai Merkle Tree) protecting size bytes.
// size must be a positive multiple of 16 KB.
func NewCounterModeMemory(size uint64, keys Keys, prot Protection) (SecureMemory, error) {
	return secmem.NewCounterMode(size, keys, prot)
}

// NewDirectMemory builds a direct-encryption engine (address-tweaked
// AES, sector MACs, Merkle Tree over MAC lines) protecting size bytes.
func NewDirectMemory(size uint64, keys Keys, prot Protection) (SecureMemory, error) {
	return secmem.NewDirect(size, keys, prot)
}

// MetadataStorage reports the Table II storage footprint for a
// protected region: counter bytes, MAC bytes, and tree bytes.
func MetadataStorage(dataBytes uint64, counterMode bool) (counter, mac, tree uint64, err error) {
	kind := geometry.MT
	if counterMode {
		kind = geometry.BMT
	}
	lay, err := geometry.NewLayout(dataBytes, kind)
	if err != nil {
		return 0, 0, 0, err
	}
	s := lay.Storage()
	return s.CounterBytes, s.MACBytes, s.TreeBytes, nil
}

// --- Timing simulation ---

// Config is the full machine configuration (Table I + Table III).
type Config = sim.Config

// SecureConfig is the per-partition secure-engine configuration.
type SecureConfig = sim.SecureConfig

// Result is the outcome of one simulation run.
type Result = sim.Result

// Encryption kinds for SecureConfig.Encryption.
const (
	EncNone    = sim.EncNone
	EncCounter = sim.EncCounter
	EncDirect  = sim.EncDirect
	// EncScattered is secret-shared line placement (Secure Scattered
	// Memory, arXiv:2402.15824): no AES/MAC/BMT; reads fan out to
	// ScatterShares shares gated by a share-map cache.
	EncScattered = sim.EncScattered
	// EncSWCrypto is a MemShield-style software-encryption baseline
	// (arXiv:2004.09252): per-sector software cipher cycles plus
	// key-table reads through a single software key register.
	EncSWCrypto = sim.EncSWCrypto
)

// BaselineConfig returns the paper's Table I GPU with secure memory
// disabled.
func BaselineConfig() Config { return sim.Baseline() }

// SecureMemConfig returns the Table I GPU with counter-mode + MAC +
// BMT secure memory (the paper's secureMem design with 64 MSHRs per
// metadata cache).
func SecureMemConfig() Config { return sim.SecureMem() }

// DirectMemConfig returns the Table I GPU with direct encryption at
// the given AES latency and integrity level.
func DirectMemConfig(aesLatency int, mac, tree bool) Config {
	return sim.DirectMem(aesLatency, mac, tree)
}

// ScatteredMemConfig returns the Table I GPU with secret-shared line
// placement at the given share fan-out (2..8).
func ScatteredMemConfig(shares int) Config { return sim.Scattered(shares) }

// SWCryptoConfig returns the Table I GPU with MemShield-style software
// encryption at the given per-sector software cipher latency.
func SWCryptoConfig(cycles int) Config { return sim.SWCrypto(cycles) }

// Simulate runs one benchmark on one configuration.
func Simulate(cfg Config, benchmark string) (*Result, error) {
	return sim.Run(cfg, benchmark)
}

// SimulateContext is Simulate with cooperative cancellation: when ctx
// is cancelled the simulation stops at the next check boundary and
// returns (nil, ctx.Err()) rather than a partial Result. A run whose
// context is never cancelled produces bit-identical results to
// Simulate.
func SimulateContext(ctx context.Context, cfg Config, benchmark string) (*Result, error) {
	return sim.RunContext(ctx, cfg, benchmark)
}

// --- Checkpoint/restore ---

// CheckpointStore persists mid-run machine snapshots for crash-safe
// long-horizon runs and incremental horizon extension (DESIGN.md §14).
// Latest returns the newest valid snapshot for a checkpoint key with
// cycle <= maxCycle; Put stores one. Implementations must treat any
// invalid entry as a miss (internal/checkpoint is the on-disk
// implementation) and must be safe for concurrent use.
type CheckpointStore interface {
	Latest(key string, maxCycle uint64) (cycle uint64, state []byte, ok bool)
	Put(key string, cycle uint64, state []byte) error
}

// CheckpointKey is the canonical checkpoint-lineage key for one
// (config, benchmark) pair: the RunKey with MaxCycles zeroed, so runs
// of the same machine at different horizons share one checkpoint
// lineage — a 4k-cycle run's final checkpoint resumes a 16k-cycle
// request.
func CheckpointKey(cfg Config, benchmark string) string {
	cfg.MaxCycles = 0
	return RunKey(cfg, benchmark)
}

// SimulateCheckpointed is SimulateContext with crash-safe
// checkpointing: the run resumes from the newest valid checkpoint at
// or before the horizon (or cycle 0 when none exists), snapshots into
// cs every `every` cycles and at completion or cancellation, and
// produces a Result bit-identical to an uninterrupted SimulateContext
// run. Configurations checkpointing does not cover — fault injection,
// probes, auditing, reuse profiling — and a nil store or zero interval
// silently run plain.
func SimulateCheckpointed(ctx context.Context, cfg Config, benchmark string, cs CheckpointStore, every uint64) (*Result, error) {
	if cs == nil || every == 0 ||
		cfg.Audit || cfg.Faults != nil || cfg.Probe != nil || cfg.ProfileReuse {
		return sim.RunContext(ctx, cfg, benchmark)
	}
	key := CheckpointKey(cfg, benchmark)
	sink := func(cycle uint64, st *sim.MachineState) {
		b, err := sim.EncodeState(st)
		if err != nil {
			return
		}
		cs.Put(key, cycle, b)
	}
	build := func() (*sim.GPU, error) {
		gen, err := trace.New(benchmark)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		g, err := sim.New(cfg, gen)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		return g, nil
	}
	g, err := build()
	if err != nil {
		return nil, err
	}
	if _, state, ok := cs.Latest(key, cfg.MaxCycles); ok {
		// Any failure along the resume path — undecodable bytes, a stale
		// StateVersion, a shape mismatch — degrades to a fresh run from
		// cycle 0 on a rebuilt machine, never to wrong state.
		st, err := sim.DecodeState(state)
		if err == nil {
			if err := g.Restore(st); err != nil {
				if g, err = build(); err != nil {
					return nil, err
				}
			}
		}
	}
	g.SetCheckpoint(every, sink)
	return g.RunContext(ctx)
}

// ResumedFrom reports the cycle a SimulateCheckpointed run would
// resume from given the store's current contents: the newest valid
// checkpoint at or before the horizon, or 0 for a fresh run. It is a
// read-only preview (no store counters change semantics beyond a
// Latest probe) used for attribution and logging.
func ResumedFrom(cfg Config, benchmark string, cs CheckpointStore) uint64 {
	if cs == nil {
		return 0
	}
	cycle, _, ok := cs.Latest(CheckpointKey(cfg, benchmark), cfg.MaxCycles)
	if !ok {
		return 0
	}
	return cycle
}

// --- Fault injection & self-checking ---

// FaultPlan is a deterministic fault-injection campaign for
// Config.Faults: a seed, a per-opportunity rate, and the set of
// injection sites (DRAM data/metadata flips, metadata-fill corruption,
// interconnect drops/duplicates). nil injects nothing.
type FaultPlan = faults.Plan

// FaultStats summarizes a campaign's injections and how the configured
// protection level classified them (Result.Faults).
type FaultStats = sim.FaultStats

// ParseFaultPlan parses the -faults CLI syntax,
// "seed=N,rate=F,sites=a,b,c" (sites: data, meta, metafill, drop, dup,
// all, flips). Empty or "none" returns nil.
func ParseFaultPlan(spec string) (*FaultPlan, error) { return faults.ParsePlan(spec) }

// StallError is returned by Simulate when the watchdog detects a
// forward-progress stall; it carries a machine-state dump.
type StallError = sim.StallError

// AuditError is returned by Simulate when a per-cycle invariant
// auditor (Config.Audit) finds the simulator's books out of balance.
type AuditError = sim.AuditError

// Benchmarks lists the Table IV workloads in paper order.
func Benchmarks() []string { return trace.Names() }

// --- Observability ---

// ProbeConfig selects the cycle-domain observability instruments of a
// run (Config.Probe): request-lifecycle spans with per-stage latency
// attribution, a windowed timeline sampler, and Chrome trace-event
// records. A nil Config.Probe disables everything at zero cost and
// leaves results byte-identical to an uninstrumented run.
type ProbeConfig = probe.Config

// ProbeReport is the observability output of a probed run
// (Result.Probe): the latency-attribution breakdown plus timeline
// samples.
type ProbeReport = probe.Report

// TimelineSample is one windowed timeline sample (ProbeReport
// .Timeline).
type TimelineSample = probe.Sample

// WriteTimelineNDJSON writes timeline samples as newline-delimited
// JSON, one window per line.
func WriteTimelineNDJSON(w io.Writer, samples []TimelineSample) error {
	return probe.WriteTimelineNDJSON(w, samples)
}

// WriteTimelineCSV writes timeline samples as CSV with a stable
// header.
func WriteTimelineCSV(w io.Writer, samples []TimelineSample) error {
	return probe.WriteTimelineCSV(w, samples)
}

// WriteChromeTrace writes a probed run's retained span records in
// Chrome trace-event JSON, viewable in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
func WriteChromeTrace(w io.Writer, r *ProbeReport) error {
	return probe.WriteChromeTrace(w, r)
}
