package gpusecmem

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"gpusecmem/internal/area"
	"gpusecmem/internal/cache"
	"gpusecmem/internal/faults"
	"gpusecmem/internal/geometry"
	"gpusecmem/internal/probe"
	"gpusecmem/internal/report"
	"gpusecmem/internal/sim"
	"gpusecmem/internal/stats"
	"gpusecmem/internal/trace"
)

// Options controls how experiments run.
type Options struct {
	// Cycles per simulation (default 24000). The paper simulates 4M
	// cycles; the workloads here reach steady state within a few
	// thousand, so shorter windows preserve the comparisons.
	Cycles uint64
	// Benchmarks to include (default: all of Table IV).
	Benchmarks []string
	// Audit enables the simulator's per-cycle invariant auditors on
	// every run (see `make audit`). Auditing reads state only — results
	// are byte-identical — but audited and unaudited runs memoize under
	// different keys because Audit is part of the Config.
	Audit bool
	// Shards > 1 runs each simulation on the parallel partition engine
	// with that many shard goroutines (Config.Shards; see DESIGN.md
	// "Parallel partition engine"). Results are bit-identical to the
	// sequential engine and Shards is excluded from Config's JSON, so
	// memo keys, disk-cache entries, and golden digests are shared
	// across shard settings. 0 and 1 select the sequential engine.
	Shards int
}

func (o Options) withDefaults() Options {
	if o.Cycles == 0 {
		o.Cycles = 24000
	}
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = Benchmarks()
	}
	return o
}

// RunKey is the canonical memoization key for one (config, benchmark)
// simulation: the deterministic JSON encoding of the fully resolved
// Config, a separator, and the benchmark name. encoding/json writes
// struct fields in declaration order and sorts map keys, so the key
// stays canonical even if Config later grows pointer or map fields —
// unlike the fmt "%+v" key it replaces, which prints pointer addresses.
func RunKey(cfg Config, benchmark string) string {
	b, err := json.Marshal(cfg)
	if err != nil {
		// Config is a plain value struct; marshalling cannot fail
		// unless a future field breaks that invariant, which tests
		// should catch immediately.
		panic(fmt.Sprintf("gpusecmem: config not canonicalizable: %v", err))
	}
	return string(b) + "|" + benchmark
}

// RunSpec identifies one deduplicated simulation in an execution plan:
// the fully resolved configuration (MaxCycles applied) plus the
// benchmark and the canonical key.
type RunSpec struct {
	Cfg       Config
	Benchmark string
	Key       string
}

// RunError wraps a failed simulation with enough context to report
// which configuration died without aborting the rest of a sweep.
type RunError struct {
	Benchmark string
	Cfg       Config
	Err       error
	// Stack is the goroutine stack at the point of a recovered panic;
	// empty for ordinary simulator errors (stalls, audits, bad
	// configs), which are diagnosable from Err alone.
	Stack string
}

func (e *RunError) Error() string {
	return fmt.Sprintf("simulate %q: %v", e.Benchmark, e.Err)
}

// Unwrap exposes the underlying simulator error to errors.Is/As.
func (e *RunError) Unwrap() error { return e.Err }

// ConfigJSON renders the failing configuration canonically, for
// diagnostics.
func (e *RunError) ConfigJSON() string {
	b, err := json.Marshal(e.Cfg)
	if err != nil {
		return fmt.Sprintf("%+v", e.Cfg)
	}
	return string(b)
}

// flight is one memoized simulation, possibly still in progress.
// Concurrent requests for the same key block on done instead of
// duplicating the run (singleflight semantics).
type flight struct {
	seq  int // start order, for stable stats reporting
	done chan struct{}
	res  *Result
	err  error
	wall time.Duration
	// cancelled marks a flight whose owning request's context was
	// cancelled mid-run. The flight is removed from the memo map before
	// done closes, so waiters retry instead of inheriting the
	// cancellation — a cancelled run never poisons the cache.
	cancelled bool
}

// CacheStats counts memo-cache behaviour across a Context's lifetime.
// Hits include requests that blocked on an in-flight run. DiskHits
// counts memo misses that were then served from the persistent
// ResultCache instead of simulating; cancelled attempts count as
// misses (and miss again when retried).
type CacheStats struct {
	Hits     uint64
	Misses   uint64
	DiskHits uint64
}

// ResultCache is a persistent result store layered under the in-memory
// singleflight memo: on a memo miss the Context consults Get before
// simulating and calls Put with every freshly simulated result.
// Implementations must be safe for concurrent use and are expected to
// be content-addressed by the canonical RunKey (internal/resultcache
// is the on-disk implementation). A cache hit must return a Result
// that renders byte-identically to a fresh simulation.
type ResultCache interface {
	Get(key string) (*Result, bool)
	Put(key string, res *Result)
}

// RunStat describes one completed simulation for observability
// (-stats-out and the -progress ticker).
type RunStat struct {
	Key       string
	Benchmark string
	Wall      time.Duration
	Cycles    uint64
	Err       error
}

// CyclesPerSec is simulated cycles per wall-clock second.
func (s RunStat) CyclesPerSec() float64 {
	if sec := s.Wall.Seconds(); sec > 0 {
		return float64(s.Cycles) / sec
	}
	return 0
}

// Context memoizes simulation runs across experiments: many figures
// share configurations (e.g. the secureMem design appears in Figures
// 6, 7, 8, 12, 16 and 17), so each (config, benchmark) pair simulates
// once. Memoization uses singleflight semantics — concurrent requests
// for the same key block on the one in-flight simulation — so a worker
// pool can drive the same Context from many goroutines without
// duplicated or racing runs.
type Context struct {
	opts Options
	// simulate is the simulation entry point; tests substitute it to
	// count calls and inject failures.
	simulate func(context.Context, Config, string) (*Result, error)

	// base is the context consulted by the ctx-less Run entry point
	// experiment bodies use; context.Background() until SetBaseContext.
	base context.Context
	// disk is the optional persistent cache layered under the memo.
	disk ResultCache

	mu       sync.Mutex
	cache    map[string]*flight
	hits     uint64
	misses   uint64
	diskHits uint64

	// Planning mode: Run records specs instead of simulating, so a
	// runner can pre-plan the deduplicated work set of a sweep.
	planning bool
	planSeen map[string]bool
	plan     []RunSpec
}

// NewContext builds a run context.
func NewContext(opts Options) *Context {
	return &Context{
		opts:     opts.withDefaults(),
		simulate: SimulateContext,
		base:     context.Background(),
		cache:    make(map[string]*flight),
	}
}

// SetBaseContext sets the context consulted by Run, the ctx-less entry
// point experiment bodies use (RunE takes its context explicitly).
// Cancelling it makes subsequent Run calls panic with the cancellation
// error, which the runner recovers and reports per experiment.
func (c *Context) SetBaseContext(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.base = ctx
}

// SetResultCache layers a persistent result store under the in-memory
// memo (see ResultCache). Pass nil to detach. Not safe to call while
// runs are in flight.
func (c *Context) SetResultCache(rc ResultCache) { c.disk = rc }

// SetCheckpointStore routes every fresh simulation this Context owns
// through SimulateCheckpointed against cs, snapshotting every `every`
// cycles: sweeps survive crashes and re-runs resume instead of
// restarting. A nil store or zero interval restores the plain path.
// Not safe to call while runs are in flight, and it replaces the
// simulation entry point (tests that substitute it should not also
// arm checkpointing).
func (c *Context) SetCheckpointStore(cs CheckpointStore, every uint64) {
	if cs == nil || every == 0 {
		c.simulate = SimulateContext
		return
	}
	c.simulate = func(ctx context.Context, cfg Config, benchmark string) (*Result, error) {
		return SimulateCheckpointed(ctx, cfg, benchmark, cs, every)
	}
}

// Benchmarks returns the benchmark list in effect.
func (c *Context) Benchmarks() []string { return c.opts.Benchmarks }

// planPlaceholder is what Run returns while planning: a non-nil Result
// whose derived metrics (IPC, miss rates, shares) are all defined, so
// experiment bodies can do their arithmetic harmlessly while their
// requests are being recorded.
func planPlaceholder(benchmark string) *Result {
	return &Result{
		Benchmark:          benchmark,
		Cycles:             1,
		Instructions:       1,
		PeakBandwidthBytes: 1,
	}
}

// RunE simulates (cfg, benchmark), memoized with singleflight
// semantics, and propagates simulator failures as *RunError instead of
// panicking. Errors are memoized too: a deterministic failure is
// reported once per key, not retried per requester.
//
// Cancellation follows the request, not the cache: when ctx is
// cancelled RunE returns (nil, ctx.Err()) — whether it was waiting on
// another request's in-flight run or owned the run itself — and a
// cancelled run is removed from the memo before its waiters wake, so
// a later request re-simulates cleanly. A persistent ResultCache, when
// attached, is consulted on memo misses and fed every fresh result.
func (c *Context) RunE(ctx context.Context, cfg Config, benchmark string) (*Result, error) {
	cfg.MaxCycles = c.opts.Cycles
	if c.opts.Audit {
		cfg.Audit = true
	}
	if c.opts.Shards != 0 {
		cfg.Shards = c.opts.Shards
	}
	key := RunKey(cfg, benchmark)

	for {
		c.mu.Lock()
		if c.planning {
			if !c.planSeen[key] {
				c.planSeen[key] = true
				c.plan = append(c.plan, RunSpec{Cfg: cfg, Benchmark: benchmark, Key: key})
			}
			c.mu.Unlock()
			return planPlaceholder(benchmark), nil
		}
		if f, ok := c.cache[key]; ok {
			c.hits++
			c.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if f.cancelled {
				// The owning request was cancelled and the flight
				// un-memoized; this requester is still live, so retry.
				continue
			}
			return f.res, f.err
		}
		f := &flight{seq: len(c.cache), done: make(chan struct{})}
		c.cache[key] = f
		c.misses++
		c.mu.Unlock()
		return c.runFlight(ctx, f, key, cfg, benchmark)
	}
}

// runFlight executes one owned memo entry: persistent-cache lookup,
// simulation, cancellation un-memoization, and write-back.
func (c *Context) runFlight(ctx context.Context, f *flight, key string, cfg Config, benchmark string) (*Result, error) {
	start := time.Now()
	if c.disk != nil {
		if res, ok := c.disk.Get(key); ok {
			c.mu.Lock()
			c.diskHits++
			c.mu.Unlock()
			f.wall = time.Since(start)
			f.res = res
			close(f.done)
			return res, nil
		}
	}
	res, err, stack := safeSimulate(ctx, c.simulate, cfg, benchmark)
	f.wall = time.Since(start)
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		// A cancelled run is the requester's fate, not the key's:
		// remove the flight so the next request simulates afresh, and
		// mark it so current waiters retry instead of inheriting the
		// cancellation.
		c.mu.Lock()
		delete(c.cache, key)
		c.mu.Unlock()
		f.cancelled = true
		f.err = err
		close(f.done)
		return nil, err
	}
	f.res = res
	if err != nil {
		f.err = &RunError{Benchmark: benchmark, Cfg: cfg, Err: err, Stack: stack}
	} else if c.disk != nil && res != nil {
		c.disk.Put(key, res)
	}
	close(f.done)
	return f.res, f.err
}

// safeSimulate converts a simulator panic into an error plus the
// captured stack, so one bad run fails its experiments instead of
// killing the whole sweep — worker goroutines must never die.
func safeSimulate(ctx context.Context, sim func(context.Context, Config, string) (*Result, error), cfg Config, benchmark string) (r *Result, err error, stack string) {
	defer func() {
		if p := recover(); p != nil {
			r, err, stack = nil, fmt.Errorf("simulator panic: %v", p), string(debug.Stack())
		}
	}()
	r, err = sim(ctx, cfg, benchmark)
	return r, err, ""
}

// Run simulates (cfg, benchmark), memoized. A failed simulation
// panics with the *RunError so existing experiment bodies need no
// error plumbing; the runner (internal/runner) recovers it per
// experiment, reports the failing config, and continues the sweep.
// Run consults the Context's base context (SetBaseContext) for
// cancellation; a cancelled run panics with the context error.
func (c *Context) Run(cfg Config, benchmark string) *Result {
	r, err := c.RunE(c.base, cfg, benchmark)
	if err != nil {
		panic(err)
	}
	return r
}

// PlanRuns replays the experiments against a recording shadow context
// and returns the deduplicated (config, benchmark) pairs they need, in
// first-request order. Nothing is simulated. An experiment that
// chokes on placeholder results simply contributes the requests it
// made before bailing; any runs it hides are discovered (and memoized)
// at render time.
func (c *Context) PlanRuns(exps []Experiment) []RunSpec {
	shadow := &Context{
		opts:     c.opts,
		base:     context.Background(),
		planning: true,
		planSeen: make(map[string]bool),
	}
	for _, e := range exps {
		func() {
			defer func() { _ = recover() }()
			e.Run(shadow)
		}()
	}
	return shadow.plan
}

// CachedRuns reports how many distinct runs have been started.
func (c *Context) CachedRuns() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cache)
}

// CacheStats reports memo hit/miss counts so far.
func (c *Context) CacheStats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, DiskHits: c.diskHits}
}

// RunStats returns per-run observability records for every completed
// simulation, in start order. In-flight runs are skipped (their
// fields are not yet safe to read).
func (c *Context) RunStats() []RunStat {
	c.mu.Lock()
	flights := make([]*flight, 0, len(c.cache))
	keys := make(map[*flight]string, len(c.cache))
	for k, f := range c.cache {
		flights = append(flights, f)
		keys[f] = k
	}
	c.mu.Unlock()

	sort.Slice(flights, func(i, j int) bool { return flights[i].seq < flights[j].seq })
	out := make([]RunStat, 0, len(flights))
	for _, f := range flights {
		select {
		case <-f.done:
		default:
			continue
		}
		s := RunStat{Key: keys[f], Wall: f.wall, Err: f.err}
		if f.res != nil {
			s.Benchmark = f.res.Benchmark
			s.Cycles = f.res.Cycles
		} else if re, ok := f.err.(*RunError); ok {
			s.Benchmark = re.Benchmark
		}
		out = append(out, s)
	}
	return out
}

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	// ID is the lookup key ("table1".."table7", "fig3".."fig17",
	// "ablation-*").
	ID string
	// Title is the paper's caption.
	Title string
	// PaperFinding summarizes what the paper reports, for comparison.
	PaperFinding string
	// Run produces the result tables.
	Run func(*Context) []*report.Table
}

// geomean of a slice (zeros clamped to a floor to stay defined).
func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vs {
		if v < 1e-9 {
			v = 1e-9
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vs)))
}

// --- Configuration presets (Tables V and VIII) ---

func cfgSecureNoMSHR() Config {
	cfg := SecureMemConfig()
	cfg.Secure.MetaMSHRs = 0
	return cfg
}

func cfgZeroCrypto() Config {
	cfg := cfgSecureNoMSHR()
	cfg.Secure.AESLatency = 0
	cfg.Secure.MACLatency = 0
	return cfg
}

func cfgPerfMdc() Config {
	cfg := cfgSecureNoMSHR()
	cfg.Secure.PerfectMeta = true
	return cfg
}

func cfgLargeMdc() Config {
	cfg := cfgSecureNoMSHR()
	cfg.Secure.UnlimitedMeta = true
	cfg.Secure.MetaMSHRs = 64
	return cfg
}

func cfgMSHR(n int) Config {
	cfg := SecureMemConfig()
	cfg.Secure.MetaMSHRs = n
	return cfg
}

func cfgMetaSize(kb int) Config {
	cfg := SecureMemConfig()
	cfg.Secure.MetaCacheBytes = kb * 1024
	return cfg
}

func cfgUnified() Config {
	cfg := SecureMemConfig()
	cfg.Secure.Unified = true
	return cfg
}

func cfgEngines(n int) Config {
	cfg := SecureMemConfig()
	cfg.Secure.AESEngines = n
	return cfg
}

// cfgL2 sets the total L2 capacity in KB (64 banks).
func cfgL2(totalKB int, secure bool) Config {
	var cfg Config
	if secure {
		cfg = SecureMemConfig()
	} else {
		cfg = BaselineConfig()
	}
	cfg.L2BankBytes = totalKB * 1024 / (cfg.NumPartitions * cfg.L2BanksPerPartition)
	return cfg
}

func cfgDirect(latency int) Config { return DirectMemConfig(latency, false, false) }

func cfgCtr() Config {
	cfg := SecureMemConfig()
	cfg.Secure.MAC = false
	cfg.Secure.Tree = false
	return cfg
}

func cfgCtrBMT() Config {
	cfg := SecureMemConfig()
	cfg.Secure.MAC = false
	return cfg
}

// --- The per-benchmark normalized-IPC table shared by most figures ---

func normalizedIPCTable(c *Context, title string, schemes []struct {
	Name string
	Cfg  Config
}) *report.Table {
	headers := append([]string{"benchmark"}, func() []string {
		out := make([]string, len(schemes))
		for i, s := range schemes {
			out[i] = s.Name
		}
		return out
	}()...)
	t := report.New(title, headers...)
	perScheme := make([][]float64, len(schemes))
	for _, b := range c.Benchmarks() {
		base := c.Run(BaselineConfig(), b)
		row := []interface{}{b}
		for i, s := range schemes {
			n := c.Run(s.Cfg, b).NormalizedIPC(base)
			perScheme[i] = append(perScheme[i], n)
			row = append(row, report.F3(n))
		}
		t.AddRow(row...)
	}
	grow := []interface{}{"gmean"}
	for i := range schemes {
		grow = append(grow, report.F3(geomean(perScheme[i])))
	}
	t.AddRow(grow...)
	return t
}

// Experiments returns the full registry, in paper order.
func Experiments() []Experiment {
	return []Experiment{
		expTable1(), expTable2(), expTable3(), expTable4(), expTable5(),
		expFig3(), expFig4(), expFig5(), expFig6(), expFig7(),
		expFig8(), expFig9(), expFig10(), expFig11(), expFig12(),
		expTable6(), expTable7(), expFig13(), expFig14(),
		expFig15(), expFig16(), expFig17(),
		expAblationMergeCap(), expAblationAllocPolicy(), expAblationSpecVerify(),
		expAblationLazyUpdate(), expAblationSectoredL2(),
		expExtSmartUnified(), expExtSelective(), expExtFaultCoverage(),
		expExtLatency(), expExtDesignspace(),
	}
}

// ExperimentByID finds one experiment; ok is false for unknown ids.
func ExperimentByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func expTable1() Experiment {
	return Experiment{
		ID:           "table1",
		Title:        "Table I: Baseline GPU configuration",
		PaperFinding: "Volta-class: 80 SMs @1132MHz, 6MB L2, 868GB/s over 32 partitions",
		Run: func(c *Context) []*report.Table {
			cfg := BaselineConfig()
			t := report.New("Table I: baseline GPU configuration", "parameter", "value")
			t.AddRow("SMs", fmt.Sprintf("%d", cfg.NumSMs))
			t.AddRow("issue width / SM", fmt.Sprintf("%d", cfg.IssueWidth))
			t.AddRow("L1 D-cache / SM", fmt.Sprintf("%dKB, %d-way, sectored", cfg.L1Bytes/1024, cfg.L1Assoc))
			t.AddRow("L2 cache", fmt.Sprintf("%d banks/partition, %dKB/bank, %dKB total",
				cfg.L2BanksPerPartition, cfg.L2BankBytes/1024,
				cfg.L2BanksPerPartition*cfg.NumPartitions*cfg.L2BankBytes/1024))
			t.AddRow("DRAM", fmt.Sprintf("%d partitions, 24B/core-cycle each (868GB/s aggregate)", cfg.NumPartitions))
			t.AddRow("DRAM banks / partition", fmt.Sprintf("%d", cfg.DRAM.Banks))
			t.AddRow("protected memory", fmt.Sprintf("%dGB", cfg.ProtectedBytes>>30))
			return []*report.Table{t}
		},
	}
}

func expTable2() Experiment {
	return Experiment{
		ID:           "table2",
		Title:        "Table II: Metadata organization and storage",
		PaperFinding: "counter 32MB, MAC 256MB, BMT 2.14MB (6 levels) / MT 17.1MB (7 levels)",
		Run: func(c *Context) []*report.Table {
			t := report.New("Table II: metadata organization and storage (4GB protected)",
				"metadata", "counter-mode", "direct")
			bmt := geometry.MustLayout(4<<30, geometry.BMT).Storage()
			mt := geometry.MustLayout(4<<30, geometry.MT).Storage()
			mb := func(b uint64) string { return fmt.Sprintf("%.2fMB", float64(b)/(1<<20)) }
			t.AddRow("counter (128B/16KB, 7b/blk)", mb(bmt.CounterBytes), "-")
			t.AddRow("MAC (8B/blk, 2B/sector)", mb(bmt.MACBytes), mb(mt.MACBytes))
			t.AddRow(fmt.Sprintf("tree (16-ary, %d/%d levels)", bmt.TreeLevelsIncLeaves, mt.TreeLevelsIncLeaves),
				mb(bmt.TreeBytes), mb(mt.TreeBytes))
			t.AddRow("total", mb(bmt.TotalBytes()), mb(mt.TotalBytes()))
			return []*report.Table{t}
		},
	}
}

func expTable3() Experiment {
	return Experiment{
		ID:           "table3",
		Title:        "Table III: Metadata cache organization",
		PaperFinding: "2KB/type/partition default, 64 MSHRs, allocate-on-fill; unified 6KB/192 MSHRs",
		Run: func(c *Context) []*report.Table {
			sc := SecureMemConfig().Secure
			t := report.New("Table III: metadata cache organization", "cache", "configuration")
			per := fmt.Sprintf("{2,4,8,16,32,64}KB/partition, %dKB default, 128B lines, %d MSHRs, allocate-on-fill",
				sc.MetaCacheBytes/1024, sc.MetaMSHRs)
			t.AddRow("counter cache", per+fmt.Sprintf(", merge cap %d", sc.MergeCapCounter))
			t.AddRow("MAC cache", per+fmt.Sprintf(", merge cap %d", sc.MergeCapMAC))
			t.AddRow("(Bonsai) Merkle tree cache", per+fmt.Sprintf(", merge cap %d", sc.MergeCapTree))
			t.AddRow("unified metadata cache", fmt.Sprintf("%dKB/partition, 128B lines, %d MSHRs, allocate-on-fill",
				sc.UnifiedBytes/1024, sc.UnifiedMSHRs))
			t.AddRow("hash/MAC latency", fmt.Sprintf("%d cycles", sc.MACLatency))
			t.AddRow("AES engines", fmt.Sprintf("{1,2}/partition, %d default, pipelined 16B/mem-cycle", sc.AESEngines))
			return []*report.Table{t}
		},
	}
}

func expTable4() Experiment {
	return Experiment{
		ID:           "table4",
		Title:        "Table IV: Benchmarks (bandwidth utilization and IPC)",
		PaperFinding: "3 classes: <20%, 20-50%, >50% of peak DRAM bandwidth",
		Run: func(c *Context) []*report.Table {
			t := report.New("Table IV: baseline benchmark characterization",
				"benchmark", "bw-util", "IPC", "paper-IPC", "class", "paper-class")
			for _, b := range c.Benchmarks() {
				r := c.Run(BaselineConfig(), b)
				bw := r.BandwidthUtilization()
				var cls trace.Class
				switch {
				case bw < 0.20:
					cls = trace.NonIntensive
				case bw <= 0.50:
					cls = trace.MediumIntensive
				default:
					cls = trace.MemoryIntensive
				}
				t.AddRow(b, report.Pct(bw), fmt.Sprintf("%.1f", r.IPC()),
					fmt.Sprintf("%.1f", trace.PaperIPC(b)), cls.String(), trace.PaperClass(b).String())
			}
			return []*report.Table{t}
		},
	}
}

func expTable5() Experiment {
	return Experiment{
		ID:           "table5",
		Title:        "Table V: Evaluated designs for counter-mode encryption",
		PaperFinding: "baseline / secureMem / 0_crypto / perf_mdc / large_mdc / mshr_x / separate / unified",
		Run: func(c *Context) []*report.Table {
			t := report.New("Table V: counter-mode design matrix", "scheme", "what it represents")
			t.AddRow("baseline", "GPU without secure memory support")
			t.AddRow("secureMem", "counter-mode encryption + MAC + BMT (no metadata MSHRs in Fig 3/4/5)")
			t.AddRow("0_crypto", "secureMem with 0-cycle MAC and AES latency")
			t.AddRow("perf_mdc", "secureMem with perfect metadata caches")
			t.AddRow("large_mdc", "secureMem with unlimited-capacity metadata caches")
			t.AddRow("mshr_x", "secureMem with x MSHRs per metadata cache")
			t.AddRow("separate", "per-type 2KB metadata caches per partition")
			t.AddRow("unified", "one 6KB metadata cache per partition")
			return []*report.Table{t}
		},
	}
}

func expFig3() Experiment {
	return Experiment{
		ID:           "fig3",
		Title:        "Fig 3: Normalized IPC of counter-mode encryption with BMT",
		PaperFinding: "secureMem -65.9% gmean (up to -91% for lbm); 0_crypto does not help; perf/large metadata caches recover to ~baseline",
		Run: func(c *Context) []*report.Table {
			return []*report.Table{normalizedIPCTable(c, "Fig 3: normalized IPC (counter mode + BMT)",
				[]struct {
					Name string
					Cfg  Config
				}{
					{"secureMem", cfgSecureNoMSHR()},
					{"0_crypto", cfgZeroCrypto()},
					{"perf_mdc", cfgPerfMdc()},
					{"large_mdc", cfgLargeMdc()},
				})}
		},
	}
}

func expFig4() Experiment {
	return Experiment{
		ID:           "fig4",
		Title:        "Fig 4: Distribution of memory-request types (secureMem)",
		PaperFinding: "MACs 25.6% and counters 21.8% of requests on average; BMT high for bfs/b+tree/kmeans/nw/lbm",
		Run: func(c *Context) []*report.Table {
			t := report.New("Fig 4: DRAM request distribution under secureMem",
				"benchmark", "data", "ctr", "mac", "bmt", "wb")
			cfg := cfgSecureNoMSHR()
			var sums [5]float64
			for _, b := range c.Benchmarks() {
				r := c.Run(cfg, b)
				row := []interface{}{b}
				for k := sim.KindData; k <= sim.KindWB; k++ {
					share := r.RequestShare(k)
					sums[int(k)] += share
					row = append(row, report.Pct(share))
				}
				t.AddRow(row...)
			}
			n := float64(len(c.Benchmarks()))
			t.AddRow("mean", report.Pct(sums[0]/n), report.Pct(sums[1]/n),
				report.Pct(sums[2]/n), report.Pct(sums[3]/n), report.Pct(sums[4]/n))
			return []*report.Table{t}
		},
	}
}

func expFig5() Experiment {
	return Experiment{
		ID:           "fig5",
		Title:        "Fig 5: Secondary misses in metadata caches",
		PaperFinding: "secondary misses: ctr 64.96%, MAC 59.67%, BMT 85.63% on average; >90% for streamcluster",
		Run: func(c *Context) []*report.Table {
			t := report.New("Fig 5: secondary-miss ratio of metadata cache misses",
				"benchmark", "ctr", "mac", "bmt")
			cfg := cfgSecureNoMSHR()
			var sums [3]float64
			for _, b := range c.Benchmarks() {
				r := c.Run(cfg, b)
				row := []interface{}{b}
				for m := sim.MetaCounter; m <= sim.MetaTree; m++ {
					v := r.Meta[m].SecondaryRatio()
					sums[int(m)] += v
					row = append(row, report.Pct(v))
				}
				t.AddRow(row...)
			}
			n := float64(len(c.Benchmarks()))
			t.AddRow("mean", report.Pct(sums[0]/n), report.Pct(sums[1]/n), report.Pct(sums[2]/n))
			return []*report.Table{t}
		},
	}
}

func expFig6() Experiment {
	return Experiment{
		ID:           "fig6",
		Title:        "Fig 6: Normalized IPC vs metadata-cache MSHR count",
		PaperFinding: "64 MSHRs per metadata cache is the sweet spot of performance vs cost",
		Run: func(c *Context) []*report.Table {
			var schemes []struct {
				Name string
				Cfg  Config
			}
			for _, n := range []int{0, 8, 16, 32, 64, 128} {
				schemes = append(schemes, struct {
					Name string
					Cfg  Config
				}{fmt.Sprintf("mshr_%d", n), cfgMSHR(n)})
			}
			return []*report.Table{normalizedIPCTable(c, "Fig 6: normalized IPC vs MSHRs", schemes)}
		},
	}
}

func expFig7() Experiment {
	return Experiment{
		ID:           "fig7",
		Title:        "Fig 7: Normalized IPC vs metadata cache size",
		PaperFinding: "even 64KB/type (6MB total) leaves 46.17% average degradation; kmeans/srad_v2/lbm stay >65% slower",
		Run: func(c *Context) []*report.Table {
			var schemes []struct {
				Name string
				Cfg  Config
			}
			for _, kb := range []int{2, 4, 8, 16, 32, 64} {
				schemes = append(schemes, struct {
					Name string
					Cfg  Config
				}{fmt.Sprintf("%dKB", kb), cfgMetaSize(kb)})
			}
			return []*report.Table{normalizedIPCTable(c, "Fig 7: normalized IPC vs metadata cache size", schemes)}
		},
	}
}

func expFig8() Experiment {
	return Experiment{
		ID:           "fig8",
		Title:        "Fig 8: Unified vs separate metadata caches",
		PaperFinding: "separate metadata caches outperform a same-capacity unified cache on GPUs (opposite of CPUs)",
		Run: func(c *Context) []*report.Table {
			return []*report.Table{normalizedIPCTable(c, "Fig 8: unified vs separate metadata caches",
				[]struct {
					Name string
					Cfg  Config
				}{
					{"separate", SecureMemConfig()},
					{"unified", cfgUnified()},
				})}
		},
	}
}

func expFig9() Experiment {
	return Experiment{
		ID:           "fig9",
		Title:        "Fig 9: Metadata miss rates, unified vs separate",
		PaperFinding: "unified raises miss rates: ctr 22.77->24.03%, MAC 31.75->31.82%, BMT 4.02->5.93%; unified writebacks 1.47x",
		Run: func(c *Context) []*report.Table {
			t := report.New("Fig 9: metadata miss rates (averages over benchmarks)",
				"metadata", "separate", "unified")
			var sep, uni [3]float64
			var sepWB, uniWB float64
			for _, b := range c.Benchmarks() {
				rs := c.Run(SecureMemConfig(), b)
				ru := c.Run(cfgUnified(), b)
				for m := 0; m < 3; m++ {
					sep[m] += rs.Meta[m].MissRate()
					uni[m] += ru.Meta[m].MissRate()
				}
				sepWB += float64(rs.MetaCacheWritebacks)
				uniWB += float64(ru.MetaCacheWritebacks)
			}
			n := float64(len(c.Benchmarks()))
			for m := sim.MetaCounter; m <= sim.MetaTree; m++ {
				t.AddRow(m.String(), report.Pct(sep[m]/n), report.Pct(uni[m]/n))
			}
			ratio := 0.0
			if sepWB > 0 {
				ratio = uniWB / sepWB
			}
			t.AddRow("writeback ratio (unified/separate)", "1.000", report.F3(ratio))
			return []*report.Table{t}
		},
	}
}

func reuseTable(title string, p *stats.ReuseProfiler) *report.Table {
	t := report.New(title, "reuse distance", "accesses", "fraction")
	fr := p.Fractions()
	for i, b := range stats.ReuseBuckets {
		t.AddRow(b.Label, fmt.Sprintf("%d", p.Hist[i]), report.Pct(fr[i]))
	}
	t.AddRow("cold", fmt.Sprintf("%d", p.Cold), "-")
	return t
}

func profiledRun(c *Context, bench string) *Result {
	cfg := SecureMemConfig()
	cfg.ProfileReuse = true
	return c.Run(cfg, bench)
}

func expFig10() Experiment {
	return Experiment{
		ID:           "fig10",
		Title:        "Fig 10: Reuse distance of counters (fdtd2d)",
		PaperFinding: "most counter accesses have reuse distance 0 (streaming); a long [65,512] tail needs capacity",
		Run: func(c *Context) []*report.Table {
			r := profiledRun(c, "fdtd2d")
			if r.CounterReuse == nil {
				return nil
			}
			return []*report.Table{reuseTable("Fig 10: counter reuse distance, fdtd2d (partition 0)", r.CounterReuse)}
		},
	}
}

func expFig11() Experiment {
	return Experiment{
		ID:           "fig11",
		Title:        "Fig 11: Reuse distance of MACs (fdtd2d)",
		PaperFinding: "MAC accesses mirror the counter pattern: distance 0 dominates",
		Run: func(c *Context) []*report.Table {
			r := profiledRun(c, "fdtd2d")
			if r.MACReuse == nil {
				return nil
			}
			return []*report.Table{reuseTable("Fig 11: MAC reuse distance, fdtd2d (partition 0)", r.MACReuse)}
		},
	}
}

func expFig12() Experiment {
	return Experiment{
		ID:           "fig12",
		Title:        "Fig 12: Normalized IPC with 1 vs 2 AES engines per partition",
		PaperFinding: "one pipelined AES engine per partition is enough; metadata traffic, not AES throughput, is the bottleneck",
		Run: func(c *Context) []*report.Table {
			return []*report.Table{normalizedIPCTable(c, "Fig 12: AES engines per partition",
				[]struct {
					Name string
					Cfg  Config
				}{
					{"1 engine", cfgEngines(1)},
					{"2 engines", cfgEngines(2)},
				})}
		},
	}
}

func expTable6() Experiment {
	return Experiment{
		ID:           "table6",
		Title:        "Table VI: Published AES engine die areas",
		PaperFinding: "most recent: 4900 um^2 at 14nm (JSSC'20)",
		Run: func(c *Context) []*report.Table {
			t := report.New("Table VI: published AES die areas", "source", "tech", "area (mm^2)")
			for _, d := range area.PublishedAES() {
				t.AddRow(d.Source, fmt.Sprintf("%.0fnm", d.TechNm), fmt.Sprintf("%g", d.AreaMM2))
			}
			return []*report.Table{t}
		},
	}
}

func expTable7() Experiment {
	return Experiment{
		ID:           "table7",
		Title:        "Table VII: Areas scaled to 12nm and the L2 budget",
		PaperFinding: "AES 0.0036mm^2; security hardware costs ~1526KB of L2-equivalent area (24.84% of L2)",
		Run: func(c *Context) []*report.Table {
			m := area.NewModel()
			t := report.New("Table VII: scaled die areas (12nm)", "component", "area (mm^2)")
			t.AddRow("AES engine", fmt.Sprintf("%.4f", m.AESEngineMM2))
			t.AddRow("64KB cache", fmt.Sprintf("%.5f", m.Cache64KBMM2))
			t.AddRow("96KB cache", fmt.Sprintf("%.5f", m.Cache96KBMM2))

			b := report.New("Section V-F: L2-capacity budget", "configuration", "area (mm^2)", "L2-equivalent (KB)", "% of 6MB L2")
			for _, engines := range []int{1, 2} {
				bud := m.SecureMemoryBudget(engines, 32)
				b.AddRow(fmt.Sprintf("%d engine(s)/partition + MAC units + 3x64KB caches", engines),
					fmt.Sprintf("%.4f", bud.TotalMM2),
					fmt.Sprintf("%.0f", bud.L2ReducedKB),
					fmt.Sprintf("%.2f%%", bud.L2ReducedPct))
			}
			return []*report.Table{t, b}
		},
	}
}

func expFig13() Experiment {
	return Experiment{
		ID:           "fig13",
		Title:        "Fig 13: Normalized IPC with reduced L2 capacities (secureMem)",
		PaperFinding: "a few medium-intensive benchmarks are L2-sensitive; compute- and fully-streaming ones are not",
		Run: func(c *Context) []*report.Table {
			var schemes []struct {
				Name string
				Cfg  Config
			}
			for _, mb := range []int{4096, 4608, 5120, 5632, 6144} {
				schemes = append(schemes, struct {
					Name string
					Cfg  Config
				}{fmt.Sprintf("%.1fMB", float64(mb)/1024), cfgL2(mb, true)})
			}
			return []*report.Table{normalizedIPCTable(c, "Fig 13: secureMem IPC vs L2 capacity", schemes)}
		},
	}
}

func expFig14() Experiment {
	return Experiment{
		ID:           "fig14",
		Title:        "Fig 14: Baseline L2 miss rates",
		PaperFinding: "streamcluster ~97% L2 miss; compute-bound kernels have few L2 accesses",
		Run: func(c *Context) []*report.Table {
			t := report.New("Fig 14: baseline L2 miss rate", "benchmark", "L2 miss rate", "L2 accesses")
			for _, b := range c.Benchmarks() {
				r := c.Run(BaselineConfig(), b)
				t.AddRow(b, report.Pct(r.L2.MissRate()), fmt.Sprintf("%d", r.L2.Accesses))
			}
			return []*report.Table{t}
		},
	}
}

func expFig15() Experiment {
	return Experiment{
		ID:           "fig15",
		Title:        "Fig 15: Direct encryption with different latencies",
		PaperFinding: "slowdowns of only 1.33% / 3.02% / 5.93% at 40/80/160 cycles; >10% for b+tree, nw, streamcluster at 160",
		Run: func(c *Context) []*report.Table {
			return []*report.Table{normalizedIPCTable(c, "Fig 15: direct encryption latency sweep",
				[]struct {
					Name string
					Cfg  Config
				}{
					{"direct_40", cfgDirect(40)},
					{"direct_80", cfgDirect(80)},
					{"direct_160", cfgDirect(160)},
				})}
		},
	}
}

func expFig16() Experiment {
	return Experiment{
		ID:           "fig16",
		Title:        "Fig 16: Direct vs counter-mode encryption",
		PaperFinding: "counter mode without integrity already costs 33.06% (66.44% for lbm); +BMT raises it to 43.94%; direct is near-free",
		Run: func(c *Context) []*report.Table {
			return []*report.Table{normalizedIPCTable(c, "Fig 16: direct vs counter-mode encryption",
				[]struct {
					Name string
					Cfg  Config
				}{
					{"direct_40", cfgDirect(40)},
					{"ctr", cfgCtr()},
					{"ctr_bmt", cfgCtrBMT()},
				})}
		},
	}
}

func expFig17() Experiment {
	return Experiment{
		ID:           "fig17",
		Title:        "Fig 17: Encryption with integrity protection",
		PaperFinding: "direct_mac -42.65% beats ctr_mac_bmt -63.45%; direct_mac_mt is worst at -71.87% (taller tree)",
		Run: func(c *Context) []*report.Table {
			return []*report.Table{normalizedIPCTable(c, "Fig 17: integrity protection designs",
				[]struct {
					Name string
					Cfg  Config
				}{
					{"ctr_mac_bmt", SecureMemConfig()},
					{"direct_mac", DirectMemConfig(40, true, false)},
					{"direct_mac_mt", DirectMemConfig(40, true, true)},
				})}
		},
	}
}

// --- Ablations of design choices called out in DESIGN.md ---

func ablationBenchmarks(c *Context) []string {
	// One per class keeps ablations cheap but representative.
	all := map[string]bool{}
	for _, b := range c.Benchmarks() {
		all[b] = true
	}
	var out []string
	for _, b := range []string{"b+tree", "kmeans", "fdtd2d", "lbm"} {
		if all[b] {
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		out = c.Benchmarks()
	}
	return out
}

func ablationTable(c *Context, title string, schemes []struct {
	Name string
	Cfg  Config
}) *report.Table {
	headers := append([]string{"benchmark"}, func() []string {
		out := make([]string, len(schemes))
		for i, s := range schemes {
			out[i] = s.Name
		}
		return out
	}()...)
	t := report.New(title, headers...)
	for _, b := range ablationBenchmarks(c) {
		base := c.Run(BaselineConfig(), b)
		row := []interface{}{b}
		for _, s := range schemes {
			row = append(row, report.F3(c.Run(s.Cfg, b).NormalizedIPC(base)))
		}
		t.AddRow(row...)
	}
	return t
}

func expAblationMergeCap() Experiment {
	return Experiment{
		ID:           "ablation-mergecap",
		Title:        "Ablation: MSHR merge capacity 512/64/64 vs uniform small caps",
		PaperFinding: "(design choice) counter MSHRs must merge up to 512 requests (one counter line covers 512 sectors)",
		Run: func(c *Context) []*report.Table {
			small := SecureMemConfig()
			small.Secure.MergeCapCounter = 8
			small.Secure.MergeCapMAC = 8
			small.Secure.MergeCapTree = 8
			return []*report.Table{ablationTable(c, "Ablation: MSHR merge capacity",
				[]struct {
					Name string
					Cfg  Config
				}{
					{"cap 512/64/64", SecureMemConfig()},
					{"cap 8/8/8", small},
				})}
		},
	}
}

func expAblationAllocPolicy() Experiment {
	return Experiment{
		ID:           "ablation-allocpolicy",
		Title:        "Ablation: allocate-on-fill vs allocate-on-miss metadata caches",
		PaperFinding: "(design choice) the paper uses allocate-on-fill",
		Run: func(c *Context) []*report.Table {
			aom := SecureMemConfig()
			aom.Secure.AllocOnFill = false
			return []*report.Table{ablationTable(c, "Ablation: metadata cache allocation policy",
				[]struct {
					Name string
					Cfg  Config
				}{
					{"allocate-on-fill", SecureMemConfig()},
					{"allocate-on-miss", aom},
				})}
		},
	}
}

func expAblationSpecVerify() Experiment {
	return Experiment{
		ID:           "ablation-specverify",
		Title:        "Ablation: speculative vs blocking integrity verification",
		PaperFinding: "(design choice) state-of-the-art CPUs use speculative verification; blocking exposes MAC latency",
		Run: func(c *Context) []*report.Table {
			blocking := SecureMemConfig()
			blocking.Secure.SpeculativeVerify = false
			return []*report.Table{ablationTable(c, "Ablation: verification policy",
				[]struct {
					Name string
					Cfg  Config
				}{
					{"speculative", SecureMemConfig()},
					{"blocking", blocking},
				})}
		},
	}
}

func expAblationLazyUpdate() Experiment {
	return Experiment{
		ID:           "ablation-lazyupdate",
		Title:        "Ablation: lazy vs eager integrity-tree update",
		PaperFinding: "(design choice) lazy update defers parent hashing to metadata eviction time",
		Run: func(c *Context) []*report.Table {
			eager := SecureMemConfig()
			eager.Secure.LazyTreeUpdate = false
			return []*report.Table{ablationTable(c, "Ablation: tree update policy",
				[]struct {
					Name string
					Cfg  Config
				}{
					{"lazy", SecureMemConfig()},
					{"eager", eager},
				})}
		},
	}
}

func expAblationSectoredL2() Experiment {
	return Experiment{
		ID:           "ablation-sectoredl2",
		Title:        "Ablation: sectored vs non-sectored L2",
		PaperFinding: "the sectored L2 is the root cause of secondary metadata misses (Section V-B)",
		Run: func(c *Context) []*report.Table {
			nonsec := cfgSecureNoMSHR()
			nonsec.SectoredL2 = false
			nonsecBase := BaselineConfig()
			nonsecBase.SectoredL2 = false
			t := report.New("Ablation: sectored L2 and secondary metadata misses",
				"benchmark", "sectored ctr-2ndary", "non-sectored ctr-2ndary", "sectored mac-2ndary", "non-sectored mac-2ndary")
			for _, b := range ablationBenchmarks(c) {
				rs := c.Run(cfgSecureNoMSHR(), b)
				rn := c.Run(nonsec, b)
				t.AddRow(b,
					report.Pct(rs.Meta[sim.MetaCounter].SecondaryRatio()),
					report.Pct(rn.Meta[sim.MetaCounter].SecondaryRatio()),
					report.Pct(rs.Meta[sim.MetaMAC].SecondaryRatio()),
					report.Pct(rn.Meta[sim.MetaMAC].SecondaryRatio()))
			}
			return []*report.Table{t}
		},
	}
}

func expExtSmartUnified() Experiment {
	return Experiment{
		ID:    "ext-smartunified",
		Title: "Extension: smart replacement policies for the unified metadata cache",
		PaperFinding: "(suggested future work, Section V-D) 'use separate metadata caches or adopt smart " +
			"replacement policies to avoid the thrashing behavior'",
		Run: func(c *Context) []*report.Table {
			mkUnified := func(p cache.Policy) Config {
				cfg := cfgUnified()
				cfg.Secure.UnifiedPolicy = p
				return cfg
			}
			return []*report.Table{normalizedIPCTable(c, "Extension: unified metadata cache replacement policies",
				[]struct {
					Name string
					Cfg  Config
				}{
					{"separate (lru)", SecureMemConfig()},
					{"unified lru", mkUnified(cache.PolicyLRU)},
					{"unified srrip", mkUnified(cache.PolicySRRIP)},
					{"unified brrip", mkUnified(cache.PolicyBRRIP)},
					{"unified dip", mkUnified(cache.PolicyDIP)},
				})}
		},
	}
}

func expExtSelective() Experiment {
	return Experiment{
		ID:    "ext-selective",
		Title: "Extension: selective encryption coverage",
		PaperFinding: "(related work, Zuo et al.) selective memory encryption trades coverage for " +
			"overhead; the paper's design protects everything",
		Run: func(c *Context) []*report.Table {
			mk := func(frac float64) Config {
				cfg := SecureMemConfig()
				cfg.Secure.ProtectedFraction = frac
				return cfg
			}
			return []*report.Table{normalizedIPCTable(c, "Extension: fraction of memory protected (ctr_mac_bmt)",
				[]struct {
					Name string
					Cfg  Config
				}{
					{"100%", mk(1.0)},
					{"50%", mk(0.5)},
					{"25%", mk(0.25)},
					{"0%", mk(0.0)},
				})}
		},
	}
}

func expExtFaultCoverage() Experiment {
	return Experiment{
		ID:    "ext-faultcoverage",
		Title: "Extension: fault-injection detection coverage",
		PaperFinding: "(Section II threat model) the active adversary tampers with off-chip data " +
			"and metadata; sector MACs catch data corruption, the BMT catches counter " +
			"corruption — coverage falls as protection layers are removed",
		Run: func(c *Context) []*report.Table {
			plan := &faults.Plan{Seed: 0xfa17, Rate: 5e-3, Sites: faults.FlipSites}
			levels := []struct {
				Name string
				Cfg  Config
			}{
				{"baseline (no protection)", BaselineConfig()},
				{"ctr (encryption only)", schemes["ctr"]()},
				{"ctr_bmt (no data MACs)", schemes["ctr_bmt"]()},
				{"ctr_mac_bmt (secureMem)", SecureMemConfig()},
			}
			t := report.New("Cycle-level campaign: DRAM data/metadata bit-flips ("+plan.String()+")",
				"protection", "benchmark", "corruptions", "detected", "silent", "coverage")
			for _, lv := range levels {
				var det, sil uint64
				for _, b := range ablationBenchmarks(c) {
					cfg := lv.Cfg
					cfg.Faults = plan
					f := c.Run(cfg, b).Faults
					det += f.Detected
					sil += f.Silent
					t.AddRow(lv.Name, b, f.Corruptions(), f.Detected, f.Silent,
						report.Pct(f.DetectionRate()))
				}
				t.AddRow(lv.Name, "all", det+sil, det, sil, report.Pct(stats.Ratio(det, det+sil)))
			}
			return []*report.Table{t, faultGroundTruth(plan)}
		},
	}
}

// faultGroundTruth replays the campaign's bit-flips against the real
// functional secure-memory engine — the cycle-level table above models
// detection structurally; this one actually corrupts a backing store
// and lets the cryptography speak for itself.
func faultGroundTruth(plan *FaultPlan) *report.Table {
	const size = 1 << 18 // 256 KB protected region
	t := report.New("Functional ground truth: the same flips against the real engine (VerifyAll scrub)",
		"protection", "flip target", "flips", "violations", "outcome")

	for _, p := range []struct {
		Name string
		Prot Protection
	}{
		{"full (enc+MAC+BMT)", FullProtection},
		{"none (Protection{})", Protection{}},
	} {
		for _, target := range []string{"data", "counters"} {
			eng, err := NewCounterModeMemory(size, Keys{}, p.Prot)
			if err != nil {
				panic(err)
			}
			line := make([]byte, geometry.LineSize)
			for addr := uint64(0); addr < size; addr += geometry.LineSize {
				for i := range line {
					line[i] = byte(addr>>7) + byte(i)*3
				}
				if err := eng.WriteLine(addr, line); err != nil {
					panic(err)
				}
			}
			lay := eng.Layout()
			base, limit := uint64(0), lay.DataBytes
			if target == "counters" {
				base, limit = lay.CounterBase, lay.MACBase-lay.CounterBase
			}
			flips := plan.FlipAddrs(64, limit)
			b := eng.Backing()
			var one [1]byte
			for _, f := range flips {
				b.Read(base+f.Addr, one[:])
				one[0] ^= 1 << f.Bit
				b.Write(base+f.Addr, one[:])
			}
			rep := eng.VerifyAll()
			outcome := "all flips silent"
			if !rep.OK() {
				outcome = "tampering detected"
			}
			t.AddRow(p.Name, target, len(flips), len(rep.Violations), outcome)
		}
	}
	return t
}

// expExtLatency turns the probe layer on the paper's protection
// ladder: request-lifecycle spans partition every data-request cycle
// across pipeline stages (queue/l2/dram/meta/aes/verify), and the
// metadata traffic kinds (ctr/mac/bmt) carry their own DRAM-residency
// totals. The second table settles the "is it the AES latency or the
// metadata traffic?" question quantitatively: metadata cycles are the
// data path's meta-wait stage plus the total cycles of the ctr/mac/bmt
// spans the scheme generated; AES cycles are the data path's aes
// stage. With speculative verification the data path rarely *waits* on
// metadata, but the metadata traffic itself occupies the memory system
// for far more cycles than encryption ever does.
func expExtLatency() Experiment {
	return Experiment{
		ID:    "ext-latency",
		Title: "Extension: cycle-domain latency attribution",
		PaperFinding: "(Section IV-B analysis) secure-memory slowdown comes from extra metadata " +
			"traffic, not AES latency — attribution shows metadata cycles dwarf AES cycles " +
			"for ctr_mac_bmt on memory-bound workloads",
		Run: func(c *Context) []*report.Table {
			levels := []struct {
				Name string
				Cfg  Config
			}{
				{"baseline", BaselineConfig()},
				{"ctr", schemes["ctr"]()},
				{"ctr_bmt", schemes["ctr_bmt"]()},
				{"ctr_mac_bmt", SecureMemConfig()},
				{"direct_mac_mt", schemes["direct_mac_mt"]()},
				{"scattered", schemes["scattered"]()},
				{"sw_crypto", schemes["sw_crypto"]()},
			}
			pc := &probe.Config{Spans: true}
			stagesT := report.New("Data-request latency attribution (share of data-path cycles)",
				"scheme", "benchmark", "spans", "mean", "p95",
				"queue", "l2", "dram", "meta", "aes", "verify", "share", "combine")
			metaT := report.New("Metadata cycles vs AES cycles (data meta-wait + metadata traffic residency)",
				"scheme", "benchmark", "data meta", "ctr", "mac", "bmt", "smap", "key", "metadata total", "aes", "meta/aes")
			for _, lv := range levels {
				for _, b := range ablationBenchmarks(c) {
					cfg := lv.Cfg
					cfg.Probe = pc
					res := c.Run(cfg, b)
					sp := probeSpans(res)
					if sp == nil {
						continue // planning placeholder
					}
					data := sp.Kind("data")
					if data == nil {
						continue
					}
					share := func(stage string) string {
						return report.Pct(stats.Ratio(sp.Stage("data", stage), data.TotalCycles))
					}
					stagesT.AddRow(lv.Name, b, data.Spans,
						fmt.Sprintf("%.0f", data.MeanLatency), data.P95,
						share("queue"), share("l2"), share("dram"),
						share("meta"), share("aes"), share("verify"),
						share("share"), share("combine"))
					traffic := func(kind string) uint64 {
						if k := sp.Kind(kind); k != nil {
							return k.TotalCycles
						}
						return 0
					}
					dmeta := sp.Stage("data", "meta")
					ctr, mac, bmt := traffic("ctr"), traffic("mac"), traffic("bmt")
					smap, key := traffic("smap"), traffic("key")
					metaTotal := dmeta + ctr + mac + bmt + smap + key
					aes := sp.Stage("data", "aes")
					ratio := "-"
					if aes > 0 {
						ratio = report.F3(float64(metaTotal) / float64(aes))
					}
					metaT.AddRow(lv.Name, b, dmeta, ctr, mac, bmt, smap, key, metaTotal, aes, ratio)
				}
			}
			return []*report.Table{stagesT, metaT}
		},
	}
}

// expExtDesignspace grows the paper's design space sideways: the
// hardware schemes it evaluates (counter mode, direct encryption) are
// compared against two post-paper families — Secure Scattered Memory
// (secret-shared placement, arXiv:2402.15824) and MemShield-style
// software encryption (arXiv:2004.09252) — on the same benchmarks,
// with the same normalized-IPC metric plus each family's own traffic
// and metadata-structure costs. Scattered trades the whole AES/MAC/BMT
// stack for a k-times data-traffic multiplier and a share-map cache;
// software crypto trades all hardware for a serial software cipher
// whose key reads are uncached.
func expExtDesignspace() Experiment {
	return Experiment{
		ID:    "ext-designspace",
		Title: "Extension: design-space comparison across scheme families",
		PaperFinding: "(beyond the paper) finding 4 generalizes: the families win or lose on " +
			"memory traffic and critical-path serialization, not cipher strength — scattered's " +
			"k-way fan-out behaves like a bandwidth tax, software crypto like a latency wall",
		Run: func(c *Context) []*report.Table {
			families := []struct {
				Name string
				Cfg  Config
			}{
				{"ctr_mac_bmt", SecureMemConfig()},
				{"direct_mac_mt", schemes["direct_mac_mt"]()},
				{"scattered_k2", ScatteredMemConfig(2)},
				{"scattered_k4", ScatteredMemConfig(4)},
				{"sw_crypto_80", SWCryptoConfig(80)},
				{"sw_crypto_320", SWCryptoConfig(320)},
			}
			ipcT := normalizedIPCTable(c, "Normalized IPC across scheme families", families)
			trafficT := report.New("DRAM request mix by traffic kind (share of the scheme's requests)",
				"scheme", "benchmark", "requests",
				"data", "ctr", "mac", "bmt", "wb", "share", "smap", "key", "vs baseline")
			metaT := report.New("Metadata structures: accesses and miss behaviour",
				"scheme", "benchmark", "type", "accesses", "miss rate", "secondary")
			for _, f := range families {
				for _, b := range ablationBenchmarks(c) {
					res := c.Run(f.Cfg, b)
					base := c.Run(BaselineConfig(), b)
					row := []interface{}{f.Name, b, res.TotalRequests()}
					for k := sim.KindData; k < sim.TrafficKind(len(res.RequestsByKind)); k++ {
						row = append(row, report.Pct(res.RequestShare(k)))
					}
					overhead := "-"
					if br := base.TotalRequests(); br > 0 {
						overhead = report.F3(float64(res.TotalRequests()) / float64(br))
					}
					row = append(row, overhead)
					trafficT.AddRow(row...)
					for m := sim.MetaKind(0); m < sim.MetaKind(len(res.Meta)); m++ {
						ms := res.Meta[m]
						if ms.Accesses == 0 {
							continue
						}
						metaT.AddRow(f.Name, b, m.String(), ms.Accesses,
							report.Pct(ms.MissRate()), report.Pct(ms.SecondaryRatio()))
					}
				}
			}
			return []*report.Table{ipcT, trafficT, metaT}
		},
	}
}

// probeSpans extracts a run's span report, nil when the run was a
// planning placeholder or carried no probe.
func probeSpans(res *Result) *probe.SpansReport {
	if res.Probe == nil {
		return nil
	}
	return res.Probe.Spans
}

// SortedIDs returns the experiment ids in registry order (useful for
// CLI help).
func SortedIDs() []string {
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	return ids
}

// GmeanNormalizedIPC is a convenience used by benches and tests: the
// geometric-mean normalized IPC of cfg across the context's
// benchmarks.
func GmeanNormalizedIPC(c *Context, cfg Config) float64 {
	var vs []float64
	for _, b := range c.Benchmarks() {
		base := c.Run(BaselineConfig(), b)
		vs = append(vs, c.Run(cfg, b).NormalizedIPC(base))
	}
	sort.Float64s(vs)
	return geomean(vs)
}
